// Package pvm provides the PVM-like message-passing substrate the
// parallel tabu search runs on: spawn tasks on cluster machines, send
// typed-tag messages, receive selectively, and charge compute time.
//
// Two interchangeable runtimes implement the same Env interface:
//
//   - RunVirtual executes on the deterministic discrete-event kernel
//     (pts/internal/vtime): compute time is charged against the modeled
//     machine speeds/loads and messages take modeled LAN latency. All
//     experiment figures use this runtime — results are bit-identical
//     across hosts and runs.
//   - RunReal executes on plain goroutines with wall-clock time; it
//     demonstrates the same algorithm code running genuinely in parallel.
//
// Task random streams are derived from the task's spawn path (e.g.
// "root/tsw2/clw1"), so both runtimes sample identically.
package pvm

import (
	"context"
	"math/rand"

	"pts/internal/cluster"
)

// Tag labels a message's purpose; receivers select on it.
type Tag int32

// TagExit is the reserved tag of task-exit notifications, modeled on
// PVM's pvm_notify(PvmTaskExit): a task that registered interest in a
// peer via NotifyExit receives a Message{From: peer, Tag: TagExit}
// when the transport loses the process hosting that peer. Negative so
// it can never collide with program tags. Transports whose tasks
// cannot be lost (the virtual kernel, in-process goroutines) never
// deliver it.
const TagExit Tag = -1

// TaskID identifies a spawned task within one run.
type TaskID int32

// Message is what Recv returns.
type Message struct {
	From TaskID
	Tag  Tag
	Data any
}

// Sized lets payloads report their size in 4-byte items so the virtual
// runtime can model transfer latency; unsized payloads count as one item.
type Sized interface {
	PVMItems() int
}

// payloadItems returns the modeled size of a payload.
func payloadItems(data any) int {
	if s, ok := data.(Sized); ok {
		if n := s.PVMItems(); n > 0 {
			return n
		}
	}
	return 1
}

// TaskFunc is a task body.
type TaskFunc func(Env)

// Env is a task's handle to the runtime. Not safe for concurrent use by
// other goroutines: each task calls its own Env only.
type Env interface {
	// Self returns this task's ID.
	Self() TaskID
	// Name returns this task's full spawn path (e.g. "root/tsw0/clw2").
	Name() string
	// MachineIndex returns the cluster machine this task runs on.
	MachineIndex() int
	// Spawn starts fn as a new task on the given cluster machine
	// (wrapped modulo the cluster size) and returns its ID. The task is
	// bound to this process: transports that place tasks in other
	// processes reject it — portable programs use SpawnSpec.
	Spawn(name string, machine int, fn TaskFunc) TaskID
	// SpawnSpec starts a task described portably: in-process transports
	// run spec.Fn directly (bit-identical to Spawn), network transports
	// rebuild the body from spec.Kind and spec.Data on whichever process
	// owns the target machine.
	SpawnSpec(name string, machine int, spec Spec) TaskID
	// Send delivers data to the task `to` with the given tag,
	// asynchronously.
	Send(to TaskID, tag Tag, data any)
	// Recv blocks until a message with one of the tags (any tag if none
	// given) is available, and returns the oldest such message.
	Recv(tags ...Tag) Message
	// TryRecv is Recv without blocking; ok reports whether a message
	// matched.
	TryRecv(tags ...Tag) (Message, bool)
	// Work charges `seconds` of reference compute (the time the work
	// would take on an idle speed-1.0 machine); the runtime converts it
	// to this machine's speed and load.
	Work(seconds float64)
	// Now returns seconds since the run started (virtual or wall).
	Now() float64
	// Rand returns the task's deterministic random stream.
	Rand() *rand.Rand
	// Cancelled reports whether the run's context (Options.Context) has
	// been cancelled or has passed its deadline. Task bodies poll it at
	// loop boundaries and wind down cooperatively: the runtimes never
	// kill a task, so protocols drain cleanly and no goroutine leaks.
	// Always false when no context was supplied.
	Cancelled() bool
}

// ExitNotifier is an optional Env capability: transports that can lose
// remote tasks implement it so programs may register for TagExit
// notifications instead of having the whole run abort. A task loss is
// survivable exactly when every task on the lost node is watched.
type ExitNotifier interface {
	// NotifyExit requests a Message{From: id, Tag: TagExit} should the
	// process hosting task id be lost mid-run.
	NotifyExit(id TaskID)
}

// NotifyExit registers interest in a peer task's loss when env's
// transport supports it, and reports whether it did. On transports
// where tasks cannot be lost it is a no-op returning false — the
// caller's TagExit branch simply never fires there.
func NotifyExit(env Env, id TaskID) bool {
	if n, ok := env.(ExitNotifier); ok {
		n.NotifyExit(id)
		return true
	}
	return false
}

// RespawnPlacer is an optional Env capability: transports that track
// node liveness resolve where a replacement task should be spawned
// after a loss — absorbed elastic spare capacity first (a live slot
// hosting nothing), else the least-loaded surviving node. Transports
// whose tasks cannot be lost need not implement it; respawn never
// happens there.
type RespawnPlacer interface {
	// RespawnSlot returns the machine slot a replacement for a task
	// lost on (or near) the preferred slot should be placed on. The
	// returned slot is live at the time of the call.
	RespawnSlot(preferred int) int
}

// RespawnSlotOf resolves a replacement task's machine slot through
// env, falling back to the preferred slot on transports that do not
// track liveness (where the preferred slot cannot have died).
func RespawnSlotOf(env Env, preferred int) int {
	if p, ok := env.(RespawnPlacer); ok {
		return p.RespawnSlot(preferred)
	}
	return preferred
}

// RunAborter is an optional Env capability: tear the whole run down
// from inside a task when the program decides a loss is unrecoverable
// (e.g. a worker lost before any recovery state was captured). The
// transport unwinds every task and Run returns an error wrapping
// ErrAborted; state the program assembled before the abort stays
// intact.
type RunAborter interface {
	AbortRun(cause error)
}

// AbortRunOf aborts the run through env when the transport supports
// it, reporting whether it did. On transports that cannot lose tasks
// it returns false — the unrecoverable-loss situation cannot arise
// there.
func AbortRunOf(env Env, cause error) bool {
	if a, ok := env.(RunAborter); ok {
		a.AbortRun(cause)
		return true
	}
	return false
}

// SpeedReporter is an optional Env capability: the declared relative
// compute speed of a machine slot, the heterogeneity knob schedulers
// seed their initial work shares from.
type SpeedReporter interface {
	// MachineSpeed returns the declared relative speed of the given
	// machine index (wrapped like Spawn wraps it); 1.0 is the reference.
	MachineSpeed(machine int) float64
}

// MachineSpeedOf resolves a machine slot's declared speed through env,
// defaulting to 1.0 when the transport does not expose speeds.
func MachineSpeedOf(env Env, machine int) float64 {
	if s, ok := env.(SpeedReporter); ok {
		if sp := s.MachineSpeed(machine); sp > 0 {
			return sp
		}
	}
	return 1.0
}

// Counters reports what a run did; attach one to Options to collect.
type Counters struct {
	// Spawns is the number of tasks started (including the root).
	Spawns int64
	// Sends is the number of messages sent.
	Sends int64
	// Events is the number of kernel events processed (virtual runtime
	// only).
	Events int64
}

// Options configure a run.
type Options struct {
	// Context, when non-nil, exposes cancellation to every task via
	// Env.Cancelled. Cancellation is cooperative: tasks observe it and
	// shut their protocol down; the runtimes keep running until all
	// tasks finished. Virtual runs driven by a never-cancelled context
	// remain fully deterministic.
	Context context.Context
	// Cluster supplies machines and the message cost model. Defaults to
	// a single idle speed-1.0 machine.
	Cluster cluster.Cluster
	// Seed drives every task's random stream.
	Seed uint64
	// MaxEvents bounds the virtual kernel (0 = default 500M events).
	MaxEvents uint64
	// RealWorkScale, when positive, makes the real runtime emulate
	// machine speed by sleeping seconds*RealWorkScale/speed for each
	// Work call; 0 (default) makes Work a no-op in real mode, where
	// compute costs wall time anyway.
	RealWorkScale float64
	// Counters, when non-nil, receives run statistics.
	Counters *Counters
	// Transport, when non-nil, hosts real-mode runs; nil selects the
	// in-process goroutine transport. The virtual runtime ignores it.
	Transport Transport
	// JobPayload is an opaque program description a network transport
	// ships to every worker process when the run starts (problem
	// fingerprint, search configuration, ...). It must be gob-encodable
	// with its concrete type registered. In-process transports ignore
	// it.
	JobPayload any
	// Spawner rebuilds portable task bodies from their Spec kind and
	// data. Network transports call it to host tasks whose SpawnSpec was
	// issued by a task living in another process; in-process transports
	// fall back to it only for specs without an inline Fn.
	Spawner TaskFactory
	// Elastic lets network transports grow a running job: a worker
	// process joining after the run started is absorbed as spare
	// capacity (new machine slots appended to the slot ring) instead of
	// parking in the lobby for the next job. In-process transports
	// ignore it.
	Elastic bool
}

// TaskFactory rebuilds a portable task body from its Spec kind and
// data — the one signature shared by Options.Spawner and the worker
// side of network transports.
type TaskFactory func(kind string, data any) (TaskFunc, error)

// withDefaults normalizes options.
func (o Options) withDefaults() Options {
	if len(o.Cluster.Machines) == 0 {
		o.Cluster = cluster.Homogeneous(1, 1.0)
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 500_000_000
	}
	return o
}

// doneChan extracts the cancellation channel of an optional context; a
// nil channel never fires, so Cancelled stays false without one.
func doneChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelled polls a done channel without blocking.
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// matches reports whether tag is in tags (empty = match all).
func matches(tag Tag, tags []Tag) bool {
	if len(tags) == 0 {
		return true
	}
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// scanInbox removes and returns the oldest message matching tags.
func scanInbox(inbox *[]Message, tags []Tag) (Message, bool) {
	for i, m := range *inbox {
		if matches(m.Tag, tags) {
			*inbox = append((*inbox)[:i], (*inbox)[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// ScanInbox removes and returns the oldest message matching tags (any
// tag if none given) — the selective-receive primitive shared by every
// transport's Env implementation.
func ScanInbox(inbox *[]Message, tags []Tag) (Message, bool) {
	return scanInbox(inbox, tags)
}

// AbortTask unwinds the calling task immediately: it panics with a
// sentinel that RunTask recovers, so a task blocked at any depth can be
// torn down when its transport aborts the run. Only transport Env
// implementations call it.
func AbortTask() {
	panic(taskAbort{})
}

// RunTask executes a task body under the abort protocol: an AbortTask
// unwind ends the task quietly, any other panic propagates. Transports
// wrap every hosted task goroutine in it.
func RunTask(env Env, fn TaskFunc) {
	defer recoverAbort()
	fn(env)
}
