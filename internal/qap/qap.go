// Package qap implements the quadratic assignment problem as a second
// domain for the tabu engine.
//
// QAP is where the Kelly, Laguna and Glover diversification study the
// paper adopts was developed [10], which makes it the natural
// cross-check that the engine (and its diversification) is not
// placement-specific. Instances are synthetic: symmetric random distance
// and flow matrices with zero diagonals, deterministic in the seed.
package qap

import (
	"fmt"

	"pts/internal/rng"
	"pts/internal/tabu"
)

// Instance is a QAP instance: assign n facilities to n locations
// minimizing sum_{i,j} Flow[i][j] * Dist[loc(i)][loc(j)].
type Instance struct {
	N    int
	Dist [][]float64 // location-to-location distances, symmetric, zero diagonal
	Flow [][]float64 // facility-to-facility flows, symmetric, zero diagonal
}

// New builds an instance from explicit distance and flow matrices,
// validating that both are square, of equal size, and nonnegative.
func New(dist, flow [][]float64) (*Instance, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("qap: empty distance matrix")
	}
	if len(flow) != n {
		return nil, fmt.Errorf("qap: flow is %dx?, distance %dx?", len(flow), n)
	}
	for name, m := range map[string][][]float64{"distance": dist, "flow": flow} {
		for i, row := range m {
			if len(row) != n {
				return nil, fmt.Errorf("qap: %s row %d has %d entries, want %d", name, i, len(row), n)
			}
			for j, v := range row {
				if v < 0 {
					return nil, fmt.Errorf("qap: negative %s[%d][%d]", name, i, j)
				}
			}
		}
	}
	return &Instance{N: n, Dist: dist, Flow: flow}, nil
}

// Random generates a random symmetric instance of size n with entries in
// [1, 100), deterministic in seed.
func Random(n int, seed uint64) *Instance {
	r := rng.New(rng.Derive(seed, "qap"))
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := 1 + r.Float64()*99
				m[i][j], m[j][i] = v, v
			}
		}
		return m
	}
	return &Instance{N: n, Dist: mk(), Flow: mk()}
}

// Cost evaluates an assignment: perm[i] is the location of facility i.
func (ins *Instance) Cost(perm []int32) float64 {
	total := 0.0
	for i := 0; i < ins.N; i++ {
		fi := ins.Flow[i]
		di := ins.Dist[perm[i]]
		for j := 0; j < ins.N; j++ {
			total += fi[j] * di[perm[j]]
		}
	}
	return total
}

// State is a mutable assignment implementing the tabu engine's Problem
// interface.
type State struct {
	ins  *Instance
	perm []int32
	cost float64
}

// NewState creates a state with a random assignment drawn from seed.
func NewState(ins *Instance, seed uint64) *State {
	r := rng.New(rng.Derive(seed, "qap.state"))
	perm := make([]int32, ins.N)
	for i, v := range r.Perm(ins.N) {
		perm[i] = int32(v)
	}
	return &State{ins: ins, perm: perm, cost: ins.Cost(perm)}
}

// NewStateAt creates a state positioned at the assignment snap,
// validating it is a permutation of the instance's size.
func NewStateAt(ins *Instance, snap []int32) (*State, error) {
	s := &State{ins: ins, perm: make([]int32, ins.N)}
	if err := s.Restore(snap); err != nil {
		return nil, err
	}
	return s, nil
}

// Instance returns the underlying instance.
func (s *State) Instance() *Instance { return s.ins }

// Cost returns the current assignment cost.
func (s *State) Cost() float64 { return s.cost }

// Size returns the number of facilities.
func (s *State) Size() int32 { return int32(s.ins.N) }

// DeltaSwap returns the exact cost change of exchanging the locations of
// facilities a and b, in O(n).
func (s *State) DeltaSwap(a, b int32) float64 {
	if a == b {
		return 0
	}
	ins := s.ins
	pa, pb := s.perm[a], s.perm[b]
	d := 0.0
	for k := int32(0); k < int32(ins.N); k++ {
		if k == a || k == b {
			continue
		}
		pk := s.perm[k]
		// Symmetric instance: each unordered interaction appears twice in
		// the objective, once from each side.
		d += 2 * (ins.Flow[a][k] - ins.Flow[b][k]) * (ins.Dist[pb][pk] - ins.Dist[pa][pk])
	}
	// a<->b interaction: symmetric distances make it invariant.
	return d
}

// DeltaSwapBatch evaluates a whole candidate batch of facility
// exchanges in one pass; out[i] is bit-for-bit what
// DeltaSwap(cands[i].A, cands[i].B) would return. Implements
// tabu.BatchEvaluator: the flow rows of both facilities and the
// distance rows of both locations are hoisted per candidate, and the
// inner loop accumulates in the same ascending-k order with the same
// expression tree as the scalar kernel.
func (s *State) DeltaSwapBatch(cands []tabu.SwapCand, out []float64) {
	ins := s.ins
	perm := s.perm
	n := int32(ins.N)
	for i, c := range cands {
		a, b := c.A, c.B
		if a == b {
			out[i] = 0
			continue
		}
		pa, pb := perm[a], perm[b]
		fa, fb := ins.Flow[a], ins.Flow[b]
		da, db := ins.Dist[pa], ins.Dist[pb]
		d := 0.0
		for k := int32(0); k < n; k++ {
			if k == a || k == b {
				continue
			}
			pk := perm[k]
			d += 2 * (fa[k] - fb[k]) * (db[pk] - da[pk])
		}
		out[i] = d
	}
}

// ApplySwap exchanges the locations of facilities a and b.
func (s *State) ApplySwap(a, b int32) {
	if a == b {
		return
	}
	s.cost += s.DeltaSwap(a, b)
	s.perm[a], s.perm[b] = s.perm[b], s.perm[a]
}

// Snapshot copies the current assignment.
func (s *State) Snapshot() []int32 { return append([]int32(nil), s.perm...) }

// SnapshotInto copies the current assignment into dst, reusing its
// storage when large enough; the allocation-free variant the parallel
// engine prefers.
func (s *State) SnapshotInto(dst []int32) []int32 {
	if cap(dst) < len(s.perm) {
		dst = make([]int32, len(s.perm))
	}
	dst = dst[:len(s.perm)]
	copy(dst, s.perm)
	return dst
}

// Restore replaces the assignment with a snapshot and recomputes the
// cost exactly.
func (s *State) Restore(snap []int32) error {
	if len(snap) != s.ins.N {
		return fmt.Errorf("qap: snapshot length %d != %d", len(snap), s.ins.N)
	}
	seen := make([]bool, s.ins.N)
	for _, v := range snap {
		if v < 0 || int(v) >= s.ins.N || seen[v] {
			return fmt.Errorf("qap: snapshot is not a permutation")
		}
		seen[v] = true
	}
	copy(s.perm, snap)
	s.cost = s.ins.Cost(s.perm)
	return nil
}

// Refresh recomputes the cost from scratch, clearing incremental drift.
func (s *State) Refresh() { s.cost = s.ins.Cost(s.perm) }

// BruteForceOptimum exhaustively finds the optimal cost for tiny
// instances (n <= 10); the test oracle.
func BruteForceOptimum(ins *Instance) float64 {
	if ins.N > 10 {
		panic("qap: brute force limited to n <= 10")
	}
	perm := make([]int32, ins.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	best := ins.Cost(perm)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			if c := ins.Cost(perm); c < best {
				best = c
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
