package placement

import (
	"math/rand"
	"testing"

	"pts/internal/netlist"
)

// The hot-path microbenchmarks of the trial-evaluation kernel, run on
// the paper's c532-scale synthetic circuit (395 cells). These are the
// numbers cmd/ptsbench -hotpath reports and the CI alloc-regression
// test guards; regenerate the recorded results with
//
//	go test ./internal/placement ./internal/cost -bench 'SwapDelta|ApplySwap' -benchmem
func benchPlacement(b *testing.B, circuit string) *Placement {
	b.Helper()
	nl := netlist.MustBenchmark(circuit)
	p, err := New(nl, AutoLayout(nl, 0.9))
	if err != nil {
		b.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(1)))
	return p
}

// benchPairs is the shared deterministic trial workload.
func benchPairs(n int, cells int) [][2]netlist.CellID {
	return netlist.BenchmarkPairs(n, cells)
}

func BenchmarkSwapDeltaHPWL(b *testing.B) {
	for _, circuit := range []string{"c532", "c1355"} {
		b.Run(circuit, func(b *testing.B) {
			p := benchPlacement(b, circuit)
			pairs := benchPairs(1024, p.Netlist().NumCells())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := pairs[i&1023]
				p.HPWLDeltaSwap(pr[0], pr[1])
			}
		})
	}
}

func BenchmarkMaxRowWidthAfterSwap(b *testing.B) {
	p := benchPlacement(b, "c532")
	pairs := benchPairs(1024, p.Netlist().NumCells())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i&1023]
		p.MaxRowWidthAfterSwap(pr[0], pr[1])
	}
}

// BenchmarkSwapObjectivesBatch isolates the placement batch kernel from
// the cost-layer membership fold; its ns/trial versus
// cost.BenchmarkDeltaSwapBatch's shows where batch time goes.
func BenchmarkSwapObjectivesBatch(b *testing.B) {
	const batch = 64
	for _, circuit := range []string{"c532", "c1355"} {
		b.Run(circuit, func(b *testing.B) {
			p := benchPlacement(b, circuit)
			pairs := benchPairs(1024, p.Netlist().NumCells())
			w := make([]float64, p.Netlist().NumNets())
			for i := range w {
				w[i] = 1 / float64(i+1)
			}
			batches := make([][]SwapCand, len(pairs)/batch)
			for bi := range batches {
				cands := make([]SwapCand, batch)
				for i := range cands {
					pr := pairs[bi*batch+i]
					cands[i] = SwapCand{A: pr[0], B: pr[1]}
				}
				batches[bi] = cands
			}
			dLen := make([]float64, batch)
			dW := make([]float64, batch)
			area := make([]float64, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SwapObjectivesBatch(batches[i%len(batches)], w, dLen, dW, area)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/trial")
		})
	}
}

// BenchmarkSwapObjectivesBatchRelaxed measures the reassociated
// (multi-lane) batch kernel for side-by-side comparison with the strict
// kernel above.
func BenchmarkSwapObjectivesBatchRelaxed(b *testing.B) {
	const batch = 64
	for _, circuit := range []string{"c532", "c1355"} {
		b.Run(circuit, func(b *testing.B) {
			p := benchPlacement(b, circuit)
			p.SetRelaxedAccumulation(true)
			pairs := benchPairs(1024, p.Netlist().NumCells())
			w := make([]float64, p.Netlist().NumNets())
			for i := range w {
				w[i] = 1 / float64(i+1)
			}
			batches := make([][]SwapCand, len(pairs)/batch)
			for bi := range batches {
				cands := make([]SwapCand, batch)
				for i := range cands {
					pr := pairs[bi*batch+i]
					cands[i] = SwapCand{A: pr[0], B: pr[1]}
				}
				batches[bi] = cands
			}
			dLen := make([]float64, batch)
			dW := make([]float64, batch)
			area := make([]float64, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SwapObjectivesBatch(batches[i%len(batches)], w, dLen, dW, area)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/trial")
		})
	}
}

func BenchmarkApplySwap(b *testing.B) {
	p := benchPlacement(b, "c532")
	pairs := benchPairs(1024, p.Netlist().NumCells())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i&1023]
		p.SwapCells(pr[0], pr[1])
	}
}
