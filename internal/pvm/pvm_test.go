package pvm

import (
	"math"
	"sync/atomic"
	"testing"

	"pts/internal/cluster"
)

const (
	tagPing Tag = iota + 1
	tagPong
	tagData
	tagStop
)

func TestVirtualPingPong(t *testing.T) {
	var rounds int
	elapsed, err := RunVirtual(Options{Seed: 1}, func(env Env) {
		me := env.Self()
		child := env.Spawn("child", 0, func(c Env) {
			for {
				m := c.Recv(tagPing, tagStop)
				if m.Tag == tagStop {
					return
				}
				c.Send(m.From, tagPong, m.Data)
			}
		})
		for i := 0; i < 5; i++ {
			env.Send(child, tagPing, i)
			m := env.Recv(tagPong)
			if m.Data.(int) != i {
				t.Errorf("round %d: got %v", i, m.Data)
			}
			if m.From != child {
				t.Errorf("From = %v, want %v", m.From, child)
			}
			rounds++
		}
		env.Send(child, tagStop, nil)
		_ = me
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("rounds = %d", rounds)
	}
	if elapsed <= 0 {
		t.Fatal("messages should take virtual time")
	}
}

func TestVirtualTagFiltering(t *testing.T) {
	_, err := RunVirtual(Options{Seed: 2}, func(env Env) {
		child := env.Spawn("c", 0, func(c Env) {
			parent := TaskID(0)
			c.Send(parent, tagData, "third")
			c.Send(parent, tagPong, "first")
			c.Send(parent, tagData, "fourth")
			c.Send(parent, tagPing, "second")
		})
		_ = child
		// Selective receive out of arrival order.
		if m := env.Recv(tagPong); m.Data.(string) != "first" {
			t.Errorf("want first, got %v", m.Data)
		}
		if m := env.Recv(tagPing); m.Data.(string) != "second" {
			t.Errorf("want second, got %v", m.Data)
		}
		if m := env.Recv(tagData); m.Data.(string) != "third" {
			t.Errorf("want third (FIFO within tag), got %v", m.Data)
		}
		if m := env.Recv(); m.Data.(string) != "fourth" {
			t.Errorf("want fourth, got %v", m.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTryRecv(t *testing.T) {
	_, err := RunVirtual(Options{Seed: 3}, func(env Env) {
		if _, ok := env.TryRecv(); ok {
			t.Error("TryRecv on empty inbox returned a message")
		}
		self := env.Self()
		env.Send(self, tagData, 42) // self-send
		env.Work(1e-3)              // let the delivery event fire
		m, ok := env.TryRecv(tagData)
		if !ok || m.Data.(int) != 42 {
			t.Errorf("TryRecv = %v %v", m, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualWorkHeterogeneous(t *testing.T) {
	// Two tasks doing identical work on machines of speed 1.0 and 0.5
	// must finish 2x apart in virtual time.
	c := cluster.Cluster{
		Machines: []cluster.Machine{
			{Name: "fast", Speed: 1.0},
			{Name: "slow", Speed: 0.5},
		},
	}
	var tFast, tSlow float64
	_, err := RunVirtual(Options{Cluster: c, Seed: 4}, func(env Env) {
		done := make(chan struct{}) // unused; tasks communicate via messages
		close(done)
		f := env.Spawn("fast", 0, func(e Env) {
			e.Work(2.0)
			tFast = e.Now()
			e.Send(0, tagStop, nil)
		})
		s := env.Spawn("slow", 1, func(e Env) {
			e.Work(2.0)
			tSlow = e.Now()
			e.Send(0, tagStop, nil)
		})
		_, _ = f, s
		env.Recv(tagStop)
		env.Recv(tagStop)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tFast-2.0) > 1e-9 {
		t.Errorf("fast finished at %v, want 2.0", tFast)
	}
	if math.Abs(tSlow-4.0) > 1e-9 {
		t.Errorf("slow finished at %v, want 4.0", tSlow)
	}
}

func TestVirtualDeterministic(t *testing.T) {
	run := func() (float64, uint64) {
		var sum uint64
		elapsed, err := RunVirtual(Options{Cluster: cluster.Testbed12(5), Seed: 9}, func(env Env) {
			n := 6
			for i := 0; i < n; i++ {
				env.Spawn("w", i, func(e Env) {
					v := uint64(0)
					for j := 0; j < 50; j++ {
						e.Work(1e-3)
						v = v*31 + e.Rand().Uint64()%1000
					}
					e.Send(0, tagData, v)
				})
			}
			for i := 0; i < n; i++ {
				m := env.Recv(tagData)
				sum += m.Data.(uint64)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, sum
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("virtual runs diverged: (%v,%v) vs (%v,%v)", e1, s1, e2, s2)
	}
}

func TestVirtualStalledTaskReported(t *testing.T) {
	_, err := RunVirtual(Options{Seed: 6}, func(env Env) {
		env.Spawn("waiter", 0, func(e Env) {
			e.Recv(tagData) // never sent
		})
		env.Work(1e-3)
	})
	if err == nil {
		t.Fatal("stalled task not reported")
	}
}

func TestVirtualSizedPayloadSlower(t *testing.T) {
	big := sizedPayload(100000)
	small := sizedPayload(1)
	timeFor := func(p sizedPayload) float64 {
		var arrived float64
		_, err := RunVirtual(Options{Seed: 7}, func(env Env) {
			child := env.Spawn("c", 0, func(e Env) {
				e.Recv(tagData)
				arrived = e.Now()
			})
			env.Send(child, tagData, p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return arrived
	}
	if !(timeFor(big) > timeFor(small)) {
		t.Fatal("bigger payload should arrive later")
	}
}

type sizedPayload int

func (s sizedPayload) PVMItems() int { return int(s) }

func TestVirtualCrossMachineSlowerThanLocal(t *testing.T) {
	c := cluster.Homogeneous(2, 1)
	arrival := func(machine int) float64 {
		var at float64
		_, err := RunVirtual(Options{Cluster: c, Seed: 8}, func(env Env) {
			child := env.Spawn("c", machine, func(e Env) {
				e.Recv(tagData)
				at = e.Now()
			})
			env.Send(child, tagData, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	if !(arrival(1) > arrival(0)) {
		t.Fatal("cross-machine message should be slower than same-machine")
	}
}

func TestRealPingPong(t *testing.T) {
	var rounds int32
	_, err := RunReal(Options{Seed: 1}, func(env Env) {
		child := env.Spawn("child", 0, func(c Env) {
			for {
				m := c.Recv(tagPing, tagStop)
				if m.Tag == tagStop {
					return
				}
				c.Send(m.From, tagPong, m.Data)
			}
		})
		for i := 0; i < 10; i++ {
			env.Send(child, tagPing, i)
			m := env.Recv(tagPong)
			if m.Data.(int) != i {
				t.Errorf("round %d: got %v", i, m.Data)
			}
			atomic.AddInt32(&rounds, 1)
		}
		env.Send(child, tagStop, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 10 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestRealFanOutFanIn(t *testing.T) {
	const workers = 16
	var total int64
	_, err := RunReal(Options{Cluster: cluster.Homogeneous(4, 1), Seed: 2}, func(env Env) {
		for i := 0; i < workers; i++ {
			i := i
			env.Spawn("w", i, func(e Env) {
				e.Send(0, tagData, i)
			})
		}
		for i := 0; i < workers; i++ {
			m := env.Recv(tagData)
			atomic.AddInt64(&total, int64(m.Data.(int)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != workers*(workers-1)/2 {
		t.Fatalf("total = %d", total)
	}
}

func TestRandStreamsMatchAcrossRuntimes(t *testing.T) {
	grab := func(run func(Options, TaskFunc) (float64, error)) []uint64 {
		var vals []uint64
		if _, err := run(Options{Seed: 11}, func(env Env) {
			child := env.Spawn("w", 0, func(e Env) {
				var v []uint64
				for i := 0; i < 4; i++ {
					v = append(v, e.Rand().Uint64())
				}
				e.Send(0, tagData, v)
			})
			_ = child
			vals = env.Recv(tagData).Data.([]uint64)
		}); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	v := grab(RunVirtual)
	r := grab(RunReal)
	for i := range v {
		if v[i] != r[i] {
			t.Fatalf("random streams differ between runtimes at %d", i)
		}
	}
}

func TestInvalidClusterRejected(t *testing.T) {
	bad := Options{Cluster: cluster.Cluster{Machines: []cluster.Machine{{Speed: 0}}}}
	if _, err := RunVirtual(bad, func(Env) {}); err == nil {
		t.Error("virtual accepted invalid cluster")
	}
	if _, err := RunReal(bad, func(Env) {}); err == nil {
		t.Error("real accepted invalid cluster")
	}
}

func TestMachineIndexWraps(t *testing.T) {
	_, err := RunVirtual(Options{Cluster: cluster.Homogeneous(3, 1), Seed: 12}, func(env Env) {
		done := env.Spawn("w", 7, func(e Env) {
			if e.MachineIndex() != 1 { // 7 mod 3
				t.Errorf("MachineIndex = %d, want 1", e.MachineIndex())
			}
			e.Send(0, tagStop, nil)
		})
		_ = done
		env.Recv(tagStop)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVirtualMessageRoundTrip(b *testing.B) {
	_, err := RunVirtual(Options{Seed: 1}, func(env Env) {
		child := env.Spawn("child", 0, func(c Env) {
			for {
				m := c.Recv(tagPing, tagStop)
				if m.Tag == tagStop {
					return
				}
				c.Send(m.From, tagPong, nil)
			}
		})
		for i := 0; i < b.N; i++ {
			env.Send(child, tagPing, nil)
			env.Recv(tagPong)
		}
		env.Send(child, tagStop, nil)
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRealMessageRoundTrip(b *testing.B) {
	_, err := RunReal(Options{Seed: 1}, func(env Env) {
		child := env.Spawn("child", 0, func(c Env) {
			for {
				m := c.Recv(tagPing, tagStop)
				if m.Tag == tagStop {
					return
				}
				c.Send(m.From, tagPong, nil)
			}
		})
		for i := 0; i < b.N; i++ {
			env.Send(child, tagPing, nil)
			env.Recv(tagPong)
		}
		env.Send(child, tagStop, nil)
	})
	if err != nil {
		b.Fatal(err)
	}
}
