package main

import (
	"os"
	"path/filepath"
	"testing"

	"pts/internal/netlist"
)

func TestLoadCircuitBenchmarkName(t *testing.T) {
	p, err := loadCircuit("", "highway")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells() != 56 {
		t.Errorf("cells = %d", p.Cells())
	}
	if _, err := loadCircuit("", "nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestLoadCircuitTextFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.net")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	src := netlist.MustGenerate(netlist.GenConfig{Name: "file", Cells: 40, Seed: 1})
	if err := netlist.Write(f, src); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := loadCircuit(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells() != 40 || p.Name() != "file" {
		t.Errorf("loaded %s with %d cells", p.Name(), p.Cells())
	}
}

func TestLoadCircuitBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.bench")
	src := `INPUT(A)
INPUT(B)
OUTPUT(Z)
Z = NAND(A, B)
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadCircuit(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "tiny" {
		t.Errorf("name = %q, want base of file", p.Name())
	}
	if p.Cells() != 3 {
		t.Errorf("cells = %d, want 3", p.Cells())
	}
}

func TestLoadCircuitMissingFile(t *testing.T) {
	if _, err := loadCircuit("/nonexistent/x.net", ""); err == nil {
		t.Error("missing file accepted")
	}
}
