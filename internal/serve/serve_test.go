package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/pvm"
)

// fakeFleet is a capacity counter standing in for a nettrans master.
type fakeFleet struct {
	mu     sync.Mutex
	total  int
	free   int
	notify func() // wired to Scheduler.Notify after construction
}

func newFakeFleet(workers int) *fakeFleet {
	return &fakeFleet{total: workers, free: workers}
}

func (f *fakeFleet) Lease(n int) (Lease, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > f.free {
		return nil, fmt.Errorf("%w: %d idle, %d requested", ErrNoCapacity, f.free, n)
	}
	f.free -= n
	return &fakeLease{f: f, n: n}, nil
}

func (f *fakeFleet) FreeWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.free
}

func (f *fakeFleet) TotalWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

func (f *fakeFleet) Nodes() []NodeInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeInfo, f.total)
	for i := range out {
		out[i] = NodeInfo{Name: fmt.Sprintf("w%d", i), Speed: 1, Capacity: 1, Busy: i >= f.free}
	}
	return out
}

type fakeLease struct {
	f        *fakeFleet
	n        int
	mu       sync.Mutex
	released bool
}

func (l *fakeLease) Run(opts pvm.Options, root pvm.TaskFunc) (float64, error) {
	// Delegate to the in-process transport: a genuine run of the full
	// task tree, just without remote processes.
	opts.Transport = nil
	return pvm.InProcess().Run(opts, root)
}

func (l *fakeLease) Finish(summary any) error {
	l.Release()
	return nil
}

func (l *fakeLease) Workers() []string {
	names := make([]string, l.n)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	return names
}

func (l *fakeLease) Release() {
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return
	}
	l.released = true
	l.mu.Unlock()
	l.f.mu.Lock()
	l.f.free += l.n
	notify := l.f.notify
	l.f.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// testResolve resolves placement specs over the built-in benchmark
// circuits, the facade resolver's internal twin.
func testResolve(spec core.ProblemSpec) (core.Problem, error) {
	if spec.Kind != "placement" {
		return nil, fmt.Errorf("test resolver: unsupported kind %q", spec.Kind)
	}
	nl, err := netlist.Benchmark(spec.Circuit)
	if err != nil {
		return nil, err
	}
	return cost.NewPlacementProblem(nl, 0.9, cost.DefaultConfig()), nil
}

// tinyCfg is a fast static configuration for scheduler tests.
func tinyCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.TSWs = 1
	cfg.CLWs = 1
	cfg.GlobalIters = 2
	cfg.LocalIters = 2
	cfg.HalfSync = false
	cfg.WorkPerTrial = 0
	cfg.RecordTrace = false
	return cfg
}

// newTestScheduler assembles a scheduler over a fake fleet with the
// runner stubbed out by runJob (nil keeps the real solver).
func newTestScheduler(t *testing.T, fleet *fakeFleet, queueDepth int, runJob func(ctx context.Context, j *Job, lease Lease) (*core.Result, error)) *Scheduler {
	t.Helper()
	s, err := New(Config{
		Fleet:      fleet,
		Resolve:    testResolve,
		Cluster:    cluster.Homogeneous(4, 1),
		QueueDepth: queueDepth,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fleet.mu.Lock()
	fleet.notify = s.Notify
	fleet.mu.Unlock()
	if runJob != nil {
		s.runJob = runJob
	}
	return s
}

func submitReq(workers int) Request {
	return Request{
		Spec:    core.ProblemSpec{Kind: "placement", Circuit: "highway"},
		Workers: workers,
		Cfg:     tinyCfg(),
	}
}

func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if st := j.Status(); st == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %s, want %s", j.ID(), j.Status(), want)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// blockingRunner returns a stub runner that reports each started job id
// on started and holds it until the returned step function is called
// (or the job's context fires).
func blockingRunner(started chan<- string) (runner func(ctx context.Context, j *Job, lease Lease) (*core.Result, error), step func()) {
	proceed := make(chan struct{})
	runner = func(ctx context.Context, j *Job, lease Lease) (*core.Result, error) {
		started <- j.ID()
		select {
		case <-proceed:
			return &core.Result{Problem: "fake", Rounds: 1}, nil
		case <-ctx.Done():
			return &core.Result{Problem: "fake", Interrupted: true}, nil
		}
	}
	return runner, func() { proceed <- struct{}{} }
}

func TestSubmitQueueFullRejection(t *testing.T) {
	fleet := newFakeFleet(1)
	started := make(chan string, 16)
	runner, step := blockingRunner(started)
	s := newTestScheduler(t, fleet, 2, runner)

	// First job occupies the single worker; two more fill the queue.
	j1, err := s.Submit(submitReq(1))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(submitReq(1)); err != nil {
			t.Fatalf("submit queued %d: %v", i, err)
		}
	}
	if _, err := s.Submit(submitReq(1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	// Drain the pipeline: each step finishes the running job, admitting
	// the next queued one.
	step() // finishes j1
	<-started
	step() // finishes the second job
	<-started
	step() // finishes the third
	waitStatus(t, j1, Done)
	if got := s.Queued(); got != 0 {
		t.Fatalf("queue length %d after drain-through, want 0", got)
	}
	j4, err := s.Submit(submitReq(1))
	if err != nil {
		t.Fatalf("submit after queue drained: %v", err)
	}
	<-started
	if err := s.Cancel(j4.ID()); err != nil {
		t.Fatalf("cancel tail job: %v", err)
	}
	waitStatus(t, j4, Cancelled)
}

func TestSubmitAdmissionRefusal(t *testing.T) {
	fleet := newFakeFleet(2)
	s := newTestScheduler(t, fleet, 4, nil)
	if _, err := s.Submit(submitReq(3)); !errors.Is(err, ErrNeverAdmissible) {
		t.Fatalf("submit 3 of 2: err = %v, want ErrNeverAdmissible", err)
	}
	if _, err := s.Submit(submitReq(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	// A bad search config is refused at submission.
	req := submitReq(1)
	req.Cfg.GlobalIters = 0
	if _, err := s.Submit(req); err == nil {
		t.Fatal("invalid config accepted")
	}
	// An unknown circuit is refused at submission.
	req = submitReq(1)
	req.Spec.Circuit = "no-such-circuit"
	if _, err := s.Submit(req); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestFIFOFairnessConcurrentSubmitters(t *testing.T) {
	fleet := newFakeFleet(1)
	started := make(chan string, 32)
	runner, step := blockingRunner(started)
	s := newTestScheduler(t, fleet, 32, runner)

	// Occupy the worker so every concurrent submission queues.
	if _, err := s.Submit(submitReq(1)); err != nil {
		t.Fatalf("submit head: %v", err)
	}
	first := <-started

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(submitReq(1)); err != nil {
				t.Errorf("concurrent submit: %v", err)
			}
		}()
	}
	wg.Wait()

	// Submission order is the id-assignment order under the scheduler's
	// lock; jobs must start in exactly that order.
	var wantOrder []string
	for _, j := range s.Jobs() {
		if j.ID() != first {
			wantOrder = append(wantOrder, j.ID())
		}
	}
	var gotOrder []string
	for i := 0; i < n; i++ {
		step() // finish the currently running job, admitting the next
		gotOrder = append(gotOrder, <-started)
	}
	step() // finish the last one
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("start order %v, want submission order %v", gotOrder, wantOrder)
		}
	}
}

func TestCancelQueuedAndRunningReleasesSlots(t *testing.T) {
	fleet := newFakeFleet(2)
	started := make(chan string, 8)
	runner, _ := blockingRunner(started)
	s := newTestScheduler(t, fleet, 8, runner)

	running, err := s.Submit(submitReq(2))
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	<-started
	queued, err := s.Submit(submitReq(1))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	// Cancelling the queued job removes it without touching capacity.
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	waitStatus(t, queued, Cancelled)
	if got := s.Queued(); got != 0 {
		t.Fatalf("queue length %d after cancel, want 0", got)
	}

	// Cancelling the running job interrupts it and frees both slots.
	if err := s.Cancel(running.ID()); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitStatus(t, running, Cancelled)
	if running.Result() == nil || !running.Result().Interrupted {
		t.Fatalf("cancelled job result = %+v, want interrupted best-so-far", running.Result())
	}
	if free := fleet.FreeWorkers(); free != 2 {
		t.Fatalf("fleet free = %d after cancel, want 2 (leaked lease)", free)
	}
	s.mu.Lock()
	leaked := s.ledger.Outstanding()
	s.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("ledger still holds %d claim(s) after cancel", leaked)
	}

	// Cancelling a terminal job is refused.
	if err := s.Cancel(running.ID()); !errors.Is(err, ErrTerminal) {
		t.Fatalf("re-cancel: err = %v, want ErrTerminal", err)
	}
}

func TestFailureReleasesSlots(t *testing.T) {
	fleet := newFakeFleet(2)
	boom := errors.New("searcher exploded")
	s := newTestScheduler(t, fleet, 8, func(ctx context.Context, j *Job, lease Lease) (*core.Result, error) {
		return nil, boom
	})
	j, err := s.Submit(submitReq(2))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, j, Failed)
	if j.Err() == "" {
		t.Fatal("failed job has no error message")
	}
	if free := fleet.FreeWorkers(); free != 2 {
		t.Fatalf("fleet free = %d after failure, want 2 (leaked lease)", free)
	}
	s.mu.Lock()
	leaked := s.ledger.Outstanding()
	s.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("ledger still holds %d claim(s) after failure", leaked)
	}
	// The freed capacity must admit a subsequent job.
	s.runJob = func(ctx context.Context, j *Job, lease Lease) (*core.Result, error) {
		return &core.Result{Problem: "fake"}, nil
	}
	j2, err := s.Submit(submitReq(2))
	if err != nil {
		t.Fatalf("submit after failure: %v", err)
	}
	waitStatus(t, j2, Done)
}

func TestDrainCancelsQueuedAndRunning(t *testing.T) {
	fleet := newFakeFleet(1)
	started := make(chan string, 8)
	runner, _ := blockingRunner(started)
	s := newTestScheduler(t, fleet, 8, runner)

	running, err := s.Submit(submitReq(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	queued, err := s.Submit(submitReq(1))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitStatus(t, queued, Cancelled)
	waitStatus(t, running, Cancelled)
	if _, err := s.Submit(submitReq(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
}

// TestSchedulerRealRunOverFakeLease exercises the production runner
// end to end over the in-process transport: a real tabu search run with
// one progress event per global iteration.
func TestSchedulerRealRunOverFakeLease(t *testing.T) {
	fleet := newFakeFleet(2)
	s := newTestScheduler(t, fleet, 4, nil)
	req := submitReq(2)
	req.Cfg.GlobalIters = 3
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitStatus(t, j, Done)
	res := j.Result()
	if res == nil || res.Problem != "highway" || res.Rounds != 3 {
		t.Fatalf("result = %+v, want 3 completed rounds on highway", res)
	}
	evs, terminal, _ := j.EventsSince(0)
	if !terminal {
		t.Fatal("event log not terminal after Done")
	}
	var progress int
	for _, e := range evs {
		if e.Kind == "progress" {
			progress++
		}
	}
	if progress != 3 {
		t.Fatalf("progress events = %d, want one per global iteration (3); log: %+v", progress, evs)
	}
	if evs[0].Kind != "queued" || evs[len(evs)-1].Kind != "done" {
		t.Fatalf("event log endpoints = %s..%s, want queued..done", evs[0].Kind, evs[len(evs)-1].Kind)
	}
}
