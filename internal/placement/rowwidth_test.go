package placement

import (
	"fmt"
	"math/rand"
	"testing"

	"pts/internal/netlist"
)

// Edge-case coverage for the top-two row-width tracking behind
// MaxRowWidthAfterSwap/AfterMove: equal-width cells, same-row swaps,
// cross-row swaps involving one or both of the top-two rows, and tied
// row widths. Every case is checked against the brute-force oracle
// (clone, commit, recompute), so the O(1) answers must be exact.

// widthNetlist builds a minimal netlist whose cells carry the given
// widths (one chain net keeps Finish happy).
func widthNetlist(t *testing.T, widths []int) *netlist.Netlist {
	t.Helper()
	nl := &netlist.Netlist{Name: "widths"}
	for i, w := range widths {
		nl.Cells = append(nl.Cells, netlist.Cell{Name: fmt.Sprintf("c%d", i), Width: w})
	}
	for i := 0; i+1 < len(widths); i++ {
		nl.Nets = append(nl.Nets, netlist.Net{
			Name:   fmt.Sprintf("n%d", i),
			Driver: netlist.CellID(i),
			Sinks:  []netlist.CellID{netlist.CellID(i + 1)},
		})
	}
	if err := nl.Finish(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// bruteAfterSwap commits the swap on a clone and reads the recomputed
// maximum row width.
func bruteAfterSwap(p *Placement, a, b netlist.CellID) int {
	q := p.Clone()
	q.SwapCells(a, b)
	return fullMaxRowWidth(q)
}

func TestMaxRowWidthAfterSwapEdgeCases(t *testing.T) {
	// 2x3 grid, placed in index order:
	//   row 0: c0 c1 c2     row 1: c3 c4 c5
	for _, tc := range []struct {
		name   string
		widths []int
		a, b   int
	}{
		{"equal-width-cross-row", []int{2, 2, 2, 2, 2, 2}, 0, 3},
		{"same-row", []int{5, 1, 1, 2, 2, 2}, 0, 1},
		{"cross-row-widens-top", []int{5, 1, 1, 2, 2, 2}, 1, 3},
		{"cross-row-shrinks-top", []int{5, 1, 1, 2, 2, 2}, 0, 3},
		{"tied-rows", []int{2, 2, 2, 3, 2, 1}, 0, 5},
		{"both-top-rows-touched", []int{4, 4, 4, 4, 4, 4}, 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl := widthNetlist(t, tc.widths)
			p, err := New(nl, Layout{Rows: 2, Cols: 3})
			if err != nil {
				t.Fatal(err)
			}
			a, b := netlist.CellID(tc.a), netlist.CellID(tc.b)
			want := bruteAfterSwap(p, a, b)
			if got := p.MaxRowWidthAfterSwap(a, b); got != want {
				t.Fatalf("MaxRowWidthAfterSwap(%d,%d) = %d, brute force = %d", a, b, got, want)
			}
		})
	}
}

func TestMaxRowWidthAfterSwapExhaustiveRandom(t *testing.T) {
	// Random widths over a 4-row grid: every cell pair, repeatedly, with
	// commits between rounds so the top-two cache ages through updates
	// and fallback rescans.
	r := rand.New(rand.NewSource(23))
	widths := make([]int, 24)
	for i := range widths {
		widths[i] = 1 + r.Intn(4)
	}
	nl := widthNetlist(t, widths)
	p, err := New(nl, Layout{Rows: 4, Cols: 6})
	if err != nil {
		t.Fatal(err)
	}
	n := nl.NumCells()
	for round := 0; round < 20; round++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := netlist.CellID(i), netlist.CellID(j)
				if got, want := p.MaxRowWidthAfterSwap(a, b), bruteAfterSwap(p, a, b); got != want {
					t.Fatalf("round %d: MaxRowWidthAfterSwap(%d,%d) = %d, brute force = %d",
						round, a, b, got, want)
				}
			}
		}
		a, b := randomPair(r, n)
		p.SwapCells(a, b)
	}
}

func TestMaxRowWidthAfterMoveEdgeCases(t *testing.T) {
	// 2x4 grid with 6 cells: slots 6 and 7 (row 1) start empty.
	widths := []int{5, 1, 1, 1, 2, 2}
	nl := widthNetlist(t, widths)
	p, err := New(nl, Layout{Rows: 2, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(29))
	for step := 0; step < 300; step++ {
		c := netlist.CellID(r.Intn(nl.NumCells()))
		slot := p.RandomEmptySlot(r)
		if slot < 0 {
			t.Fatal("expected empty slots")
		}
		to := p.L.SlotPos(slot)
		q := p.Clone()
		if err := q.MoveToSlot(c, to); err != nil {
			t.Fatal(err)
		}
		want := fullMaxRowWidth(q)
		if got := p.MaxRowWidthAfterMove(c, to); got != want {
			t.Fatalf("step %d: MaxRowWidthAfterMove(%d,%v) = %d, brute force = %d", step, c, to, got, want)
		}
		if err := p.MoveToSlot(c, to); err != nil {
			t.Fatal(err)
		}
	}
}
