package vtime

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property: regardless of how sleep durations interleave, every process
// observes its own wake times in exactly the order and at exactly the
// cumulative sums it asked for, and globally events fire in
// nondecreasing time order.
func TestQuickSleepSchedule(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		// Partition raw into up to 4 processes' sleep sequences.
		k := NewKernel()
		type obs struct {
			proc int
			at   Time
		}
		var log []obs
		nProcs := 1 + len(raw)%4
		for pi := 0; pi < nProcs; pi++ {
			pi := pi
			var durations []Time
			for j := pi; j < len(raw); j += nProcs {
				durations = append(durations, Time(raw[j])/16)
			}
			k.Spawn("p", func(p *Proc) {
				for _, d := range durations {
					p.Sleep(d)
					log = append(log, obs{proc: pi, at: p.Now()})
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		// Global: observation times nondecreasing.
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
		}
		// Per process: wake times are the prefix sums of its durations.
		perProc := map[int][]Time{}
		for _, o := range log {
			perProc[o.proc] = append(perProc[o.proc], o.at)
		}
		for pi, times := range perProc {
			sum := Time(0)
			j := 0
			for idx := pi; idx < len(raw); idx += nProcs {
				sum += Time(raw[idx]) / 16
				if times[j] != sum {
					return false
				}
				j++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: After callbacks at arbitrary delays run in sorted-time
// order with FIFO tie-breaking.
func TestQuickAfterOrdering(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		k := NewKernel()
		type ev struct {
			at  Time
			seq int
		}
		var fired []ev
		for i, r := range raw {
			i, at := i, Time(r%16)
			k.After(at, func() { fired = append(fired, ev{at: at, seq: i}) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		// Expected: stable sort by time, preserving registration order.
		expect := append([]ev(nil), fired...)
		sort.SliceStable(expect, func(a, b int) bool { return expect[a].seq < expect[b].seq })
		sort.SliceStable(expect, func(a, b int) bool { return expect[a].at < expect[b].at })
		for i := range fired {
			if fired[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
