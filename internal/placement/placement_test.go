package placement

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pts/internal/netlist"
	"pts/internal/rng"
)

func testNetlist(t *testing.T, cells int, seed uint64) *netlist.Netlist {
	t.Helper()
	return netlist.MustGenerate(netlist.GenConfig{Name: "p", Cells: cells, Seed: seed})
}

// fullHPWL recomputes the total wirelength from positions alone, the
// oracle for all incremental checks.
func fullHPWL(p *Placement) float64 {
	nl := p.Netlist()
	total := 0.0
	for n := 0; n < nl.NumNets(); n++ {
		net := &nl.Nets[n]
		q := p.PosOf(net.Driver)
		minX, maxX, minY, maxY := q.Col, q.Col, q.Row, q.Row
		for _, s := range net.Sinks {
			q := p.PosOf(s)
			if q.Col < minX {
				minX = q.Col
			}
			if q.Col > maxX {
				maxX = q.Col
			}
			if q.Row < minY {
				minY = q.Row
			}
			if q.Row > maxY {
				maxY = q.Row
			}
		}
		total += float64(maxX-minX) + float64(maxY-minY)
	}
	return total
}

func fullMaxRowWidth(p *Placement) int {
	nl := p.Netlist()
	widths := make([]int, p.Layout().Rows)
	for c := 0; c < nl.NumCells(); c++ {
		widths[p.PosOf(netlist.CellID(c)).Row] += nl.Cells[c].Width
	}
	max := 0
	for _, w := range widths {
		if w > max {
			max = w
		}
	}
	return max
}

func TestAutoLayout(t *testing.T) {
	nl := testNetlist(t, 100, 1)
	l := AutoLayout(nl, 0.9)
	if l.Slots() < 100 {
		t.Fatalf("layout too small: %+v", l)
	}
	if l.Rows < 5 || l.Cols < 5 {
		t.Errorf("layout should be near-square: %+v", l)
	}
	// Default utilization for out-of-range values.
	l2 := AutoLayout(nl, -3)
	if l2.Slots() < 100 {
		t.Errorf("default utilization broken: %+v", l2)
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := (Layout{Rows: 0, Cols: 5}).Validate(); err == nil {
		t.Error("want error for zero rows")
	}
	if err := (Layout{Rows: 5, Cols: 5}).Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestSlotIndexRoundTrip(t *testing.T) {
	l := Layout{Rows: 7, Cols: 11}
	for i := 0; i < l.Slots(); i++ {
		if got := l.SlotIndex(l.SlotPos(i)); got != i {
			t.Fatalf("slot %d round-trips to %d", i, got)
		}
	}
}

func TestNewRejectsTooSmall(t *testing.T) {
	nl := testNetlist(t, 50, 1)
	if _, err := New(nl, Layout{Rows: 2, Cols: 3}); err == nil {
		t.Fatal("want error for too-small layout")
	}
	if _, err := New(nl, Layout{Rows: 0, Cols: 9}); err == nil {
		t.Fatal("want error for degenerate layout")
	}
}

func TestInitialConsistency(t *testing.T) {
	nl := testNetlist(t, 60, 2)
	p, err := New(nl, AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.HPWL(), fullHPWL(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("HPWL %v != full %v", got, want)
	}
	if got, want := p.MaxRowWidth(), fullMaxRowWidth(p); got != want {
		t.Errorf("MaxRowWidth %d != full %d", got, want)
	}
	// Every cell is where slot says it is.
	for c := 0; c < nl.NumCells(); c++ {
		if p.CellAt(p.PosOf(netlist.CellID(c))) != netlist.CellID(c) {
			t.Fatalf("cell %d slot mismatch", c)
		}
	}
}

func TestSwapCellsIncremental(t *testing.T) {
	nl := testNetlist(t, 80, 3)
	p, _ := New(nl, AutoLayout(nl, 0.85))
	r := rng.New(10)
	p.Randomize(r)
	for i := 0; i < 500; i++ {
		a := netlist.CellID(r.Intn(nl.NumCells()))
		b := netlist.CellID(r.Intn(nl.NumCells()))
		wantDelta := p.HPWLDeltaSwap(a, b)
		before := p.HPWL()
		p.SwapCells(a, b)
		if got := p.HPWL() - before; math.Abs(got-wantDelta) > 1e-6 {
			t.Fatalf("step %d: delta %v != predicted %v", i, got, wantDelta)
		}
		if full := fullHPWL(p); math.Abs(p.HPWL()-full) > 1e-6 {
			t.Fatalf("step %d: incremental HPWL %v != full %v", i, p.HPWL(), full)
		}
		if full := fullMaxRowWidth(p); p.MaxRowWidth() != full {
			t.Fatalf("step %d: incremental maxRowWidth %d != full %d", i, p.MaxRowWidth(), full)
		}
	}
}

func TestSwapSelfIsNoop(t *testing.T) {
	nl := testNetlist(t, 40, 4)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	before := p.HPWL()
	p.SwapCells(5, 5)
	if p.HPWL() != before {
		t.Error("self-swap changed HPWL")
	}
}

func TestSwapIsInvolution(t *testing.T) {
	nl := testNetlist(t, 60, 5)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	r := rng.New(77)
	p.Randomize(r)
	before := p.Export()
	beforeHPWL := p.HPWL()
	p.SwapCells(3, 17)
	p.SwapCells(3, 17)
	after := p.Export()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("double swap changed assignment at cell %d", i)
		}
	}
	if math.Abs(p.HPWL()-beforeHPWL) > 1e-9 {
		t.Errorf("double swap changed HPWL: %v vs %v", p.HPWL(), beforeHPWL)
	}
}

func TestMaxRowWidthAfterSwap(t *testing.T) {
	nl := testNetlist(t, 70, 6)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	r := rng.New(9)
	p.Randomize(r)
	for i := 0; i < 200; i++ {
		a := netlist.CellID(r.Intn(nl.NumCells()))
		b := netlist.CellID(r.Intn(nl.NumCells()))
		want := p.MaxRowWidthAfterSwap(a, b)
		q := p.Clone()
		q.SwapCells(a, b)
		if got := q.MaxRowWidth(); got != want {
			t.Fatalf("step %d: predicted maxRowWidth %d, got %d", i, want, got)
		}
	}
}

func TestVisitSwapDeltasSamePosition(t *testing.T) {
	nl := testNetlist(t, 30, 7)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	called := false
	p.VisitSwapDeltas(4, 4, func(netlist.NetID, float64, float64) { called = true })
	if called {
		t.Error("VisitSwapDeltas fired for identical positions")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	nl := testNetlist(t, 90, 8)
	p, _ := New(nl, AutoLayout(nl, 0.8))
	r := rng.New(123)
	p.Randomize(r)
	perm := p.Export()
	hp := p.HPWL()

	q, _ := New(nl, p.Layout())
	if err := q.Import(perm); err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.HPWL()-hp) > 1e-9 {
		t.Errorf("imported HPWL %v != %v", q.HPWL(), hp)
	}
	for c := 0; c < nl.NumCells(); c++ {
		if q.PosOf(netlist.CellID(c)) != p.PosOf(netlist.CellID(c)) {
			t.Fatalf("cell %d position differs after import", c)
		}
	}
}

func TestImportValidation(t *testing.T) {
	nl := testNetlist(t, 30, 9)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	if err := p.Import(make([]int32, 5)); err == nil {
		t.Error("want length error")
	}
	bad := p.Export()
	bad[0] = -1
	if err := p.Import(bad); err == nil {
		t.Error("want range error")
	}
	dup := p.Export()
	dup[0] = dup[1]
	if err := p.Import(dup); err == nil {
		t.Error("want duplicate error")
	}
}

func TestCloneIndependence(t *testing.T) {
	nl := testNetlist(t, 50, 10)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	q := p.Clone()
	q.SwapCells(1, 2)
	if p.PosOf(1) == q.PosOf(1) {
		t.Error("clone shares state with original")
	}
	if math.Abs(fullHPWL(p)-p.HPWL()) > 1e-9 {
		t.Error("original corrupted by clone mutation")
	}
	if math.Abs(fullHPWL(q)-q.HPWL()) > 1e-9 {
		t.Error("clone bookkeeping wrong after mutation")
	}
}

func TestRandomizeKeepsInvariants(t *testing.T) {
	nl := testNetlist(t, 64, 11)
	p, _ := New(nl, AutoLayout(nl, 0.75))
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		p.Randomize(r)
		seen := map[Pos]bool{}
		for c := 0; c < nl.NumCells(); c++ {
			at := p.PosOf(netlist.CellID(c))
			if seen[at] {
				t.Fatal("two cells in one slot after Randomize")
			}
			seen[at] = true
			if p.CellAt(at) != netlist.CellID(c) {
				t.Fatal("slot table inconsistent after Randomize")
			}
		}
		if math.Abs(p.HPWL()-fullHPWL(p)) > 1e-9 {
			t.Fatal("HPWL wrong after Randomize")
		}
	}
}

// Property: for random circuits and random swap sequences the maintained
// HPWL equals the recomputed one.
func TestQuickIncrementalHPWL(t *testing.T) {
	f := func(seed uint64, swapsRaw []uint16) bool {
		nl := netlist.MustGenerate(netlist.GenConfig{Name: "q", Cells: 40, Seed: seed})
		p, err := New(nl, AutoLayout(nl, 0.9))
		if err != nil {
			return false
		}
		p.Randomize(rng.New(seed))
		n := nl.NumCells()
		for _, sw := range swapsRaw {
			a := netlist.CellID(int(sw>>8) % n)
			b := netlist.CellID(int(sw&0xff) % n)
			p.SwapCells(a, b)
		}
		return math.Abs(p.HPWL()-fullHPWL(p)) < 1e-6 &&
			p.MaxRowWidth() == fullMaxRowWidth(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestASCII(t *testing.T) {
	nl := testNetlist(t, 30, 12)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	art := p.ASCII(40)
	if !strings.Contains(art, "pi0") {
		t.Error("ASCII grid missing cell names")
	}
	summary := p.ASCII(2)
	if !strings.Contains(summary, "hpwl") {
		t.Error("ASCII summary missing")
	}
}

func BenchmarkSwapCells(b *testing.B) {
	nl := netlist.MustBenchmark("c1355")
	p, _ := New(nl, AutoLayout(nl, 0.9))
	r := rng.New(1)
	p.Randomize(r)
	n := nl.NumCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := netlist.CellID(r.Intn(n))
		c := netlist.CellID(r.Intn(n))
		p.SwapCells(a, c)
	}
}

func BenchmarkHPWLDeltaSwap(b *testing.B) {
	nl := netlist.MustBenchmark("c1355")
	p, _ := New(nl, AutoLayout(nl, 0.9))
	r := rng.New(1)
	p.Randomize(r)
	n := nl.NumCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := netlist.CellID(r.Intn(n))
		c := netlist.CellID(r.Intn(n))
		_ = p.HPWLDeltaSwap(a, c)
	}
}

// BenchmarkFullRecompute quantifies what the incremental bookkeeping
// saves (ablation for DESIGN.md §6).
func BenchmarkFullRecompute(b *testing.B) {
	nl := netlist.MustBenchmark("c1355")
	p, _ := New(nl, AutoLayout(nl, 0.9))
	p.Randomize(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.recomputeAll()
	}
}
