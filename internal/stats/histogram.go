package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations (net degrees, fan-outs,
// logic levels); used by the netlist analysis reports.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns how many observations had value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Values returns the observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Mean returns the mean observation, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return Mean(nil)
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.total)
}

// Mode returns the most frequent value (smallest on ties) and its
// count; (0, 0) when empty.
func (h *Histogram) Mode() (value, count int) {
	for _, v := range h.Values() {
		if c := h.counts[v]; c > count {
			value, count = v, c
		}
	}
	return value, count
}

// String renders a bar per value, scaled to a 40-character bar for the
// mode.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty histogram)\n"
	}
	_, max := h.Mode()
	var sb strings.Builder
	for _, v := range h.Values() {
		c := h.counts[v]
		bar := strings.Repeat("#", (c*40+max-1)/max)
		fmt.Fprintf(&sb, "%6d %6d %s\n", v, c, bar)
	}
	return sb.String()
}
