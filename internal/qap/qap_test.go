package qap

import (
	"math"
	"testing"
	"testing/quick"

	"pts/internal/rng"
	"pts/internal/tabu"
)

func TestRandomInstanceShape(t *testing.T) {
	ins := Random(8, 1)
	if ins.N != 8 {
		t.Fatalf("N = %d", ins.N)
	}
	for i := 0; i < 8; i++ {
		if ins.Dist[i][i] != 0 || ins.Flow[i][i] != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := 0; j < 8; j++ {
			if ins.Dist[i][j] != ins.Dist[j][i] || ins.Flow[i][j] != ins.Flow[j][i] {
				t.Fatal("matrices must be symmetric")
			}
			if ins.Dist[i][j] < 0 || ins.Flow[i][j] < 0 {
				t.Fatal("entries must be nonnegative")
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(6, 42), Random(6, 42)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if a.Dist[i][j] != b.Dist[i][j] || a.Flow[i][j] != b.Flow[i][j] {
				t.Fatal("instances differ for equal seed")
			}
		}
	}
	c := Random(6, 43)
	same := true
	for i := 0; i < 6 && same; i++ {
		for j := 0; j < 6; j++ {
			if a.Dist[i][j] != c.Dist[i][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical distance matrices")
	}
}

func TestDeltaSwapMatchesFullCost(t *testing.T) {
	ins := Random(12, 7)
	s := NewState(ins, 3)
	r := rng.New(9)
	for i := 0; i < 300; i++ {
		a := int32(r.Intn(ins.N))
		b := int32(r.Intn(ins.N))
		predicted := s.DeltaSwap(a, b)
		before := s.Cost()
		s.ApplySwap(a, b)
		wantAfter := ins.Cost(s.Snapshot())
		if math.Abs(s.Cost()-wantAfter) > 1e-6 {
			t.Fatalf("step %d: incremental cost %v != full %v", i, s.Cost(), wantAfter)
		}
		if math.Abs((s.Cost()-before)-predicted) > 1e-6 {
			t.Fatalf("step %d: delta %v != predicted %v", i, s.Cost()-before, predicted)
		}
	}
}

func TestApplySwapInvolution(t *testing.T) {
	ins := Random(10, 2)
	s := NewState(ins, 5)
	before := s.Snapshot()
	costBefore := s.Cost()
	s.ApplySwap(2, 7)
	s.ApplySwap(2, 7)
	after := s.Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("double swap changed permutation")
		}
	}
	if math.Abs(s.Cost()-costBefore) > 1e-9 {
		t.Fatalf("double swap changed cost: %v vs %v", s.Cost(), costBefore)
	}
}

func TestSelfSwapNoop(t *testing.T) {
	s := NewState(Random(6, 3), 1)
	if s.DeltaSwap(4, 4) != 0 {
		t.Error("self delta nonzero")
	}
	before := s.Cost()
	s.ApplySwap(4, 4)
	if s.Cost() != before {
		t.Error("self swap changed cost")
	}
}

func TestRestoreValidation(t *testing.T) {
	s := NewState(Random(5, 4), 2)
	if err := s.Restore([]int32{0, 1}); err == nil {
		t.Error("short snapshot accepted")
	}
	if err := s.Restore([]int32{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range snapshot accepted")
	}
	if err := s.Restore([]int32{0, 1, 2, 2, 3}); err == nil {
		t.Error("duplicate snapshot accepted")
	}
	good := s.Snapshot()
	if err := s.Restore(good); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

func TestRefreshClearsDrift(t *testing.T) {
	ins := Random(15, 5)
	s := NewState(ins, 6)
	r := rng.New(4)
	for i := 0; i < 2000; i++ {
		s.ApplySwap(int32(r.Intn(ins.N)), int32(r.Intn(ins.N)))
	}
	s.Refresh()
	if math.Abs(s.Cost()-ins.Cost(s.Snapshot())) > 1e-9 {
		t.Fatal("Refresh did not resynchronize cost")
	}
}

// Property: cost is invariant under relabeling both matrices... too
// strong; instead: cost of identity assignment equals direct sum.
func TestQuickCostNonNegative(t *testing.T) {
	f := func(seed uint64, permSeed uint64) bool {
		ins := Random(7, seed)
		s := NewState(ins, permSeed)
		return s.Cost() >= 0 && math.Abs(s.Cost()-ins.Cost(s.Snapshot())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceOptimumIsLowerBound(t *testing.T) {
	ins := Random(6, 11)
	opt := BruteForceOptimum(ins)
	r := rng.New(8)
	for trial := 0; trial < 20; trial++ {
		s := NewState(ins, uint64(trial))
		if s.Cost() < opt-1e-9 {
			t.Fatalf("random assignment %v beats brute-force optimum %v", s.Cost(), opt)
		}
		_ = r
	}
}

func BenchmarkDeltaSwapN64(b *testing.B) {
	ins := Random(64, 1)
	s := NewState(ins, 2)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.DeltaSwap(int32(r.Intn(64)), int32(r.Intn(64)))
	}
}

// TestDeltaSwapBatchMatchesScalar fuzzes the batched QAP kernel against
// per-candidate DeltaSwap bit-for-bit, across many states, batch sizes
// and degenerate a==b candidates.
func TestDeltaSwapBatchMatchesScalar(t *testing.T) {
	s := NewState(Random(40, 6), 7)
	r := rng.New(11)
	const maxBatch = 48
	cands := make([]tabu.SwapCand, 0, maxBatch)
	out := make([]float64, maxBatch)
	for batch := 0; batch < 500; batch++ {
		n := 1 + r.Intn(maxBatch)
		cands = cands[:0]
		for i := 0; i < n; i++ {
			cands = append(cands, tabu.SwapCand{
				A: int32(r.Intn(40)),
				B: int32(r.Intn(40)), // a == b allowed
			})
		}
		s.DeltaSwapBatch(cands, out[:n])
		for i, c := range cands {
			want := s.DeltaSwap(c.A, c.B)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("batch %d cand %d (%d,%d): batch %v, scalar %v",
					batch, i, c.A, c.B, out[i], want)
			}
		}
		s.ApplySwap(int32(r.Intn(40)), int32(r.Intn(40)))
	}
}
