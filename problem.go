package pts

import "pts/internal/core"

// State is the mutable search state one worker drives: a solution over
// elements 0..Size()-1 whose neighborhood is pairwise swaps, encoded
// compactly as a permutation. Implementations need not be safe for
// concurrent use — every worker owns its own State.
//
// A State may additionally implement `Refresh()` to resynchronize
// cached models (the placement evaluator re-runs timing analysis
// there); the engine calls it at synchronization points when present.
type State interface {
	// Cost returns the current solution cost; lower is better.
	Cost() float64
	// Size returns the number of swappable elements.
	Size() int32
	// DeltaSwap returns the cost change of swapping elements a and b
	// without applying it.
	DeltaSwap(a, b int32) float64
	// ApplySwap swaps elements a and b and updates the cost. A swap is
	// its own inverse.
	ApplySwap(a, b int32)
	// Snapshot captures the current solution as a permutation.
	Snapshot() []int32
	// Restore replaces the current solution with a prior snapshot,
	// leaving the state fully consistent (cached costs recomputed).
	Restore(snap []int32) error
}

// Problem is the pluggable workload boundary of the solver: anything
// that can mint independent search States over a shared permutation
// encoding can be solved by Solve. The built-in implementations are
// VLSI standard-cell placement (PlacementProblem) and the quadratic
// assignment problem (QAPProblem); external problems implement exactly
// this interface.
type Problem interface {
	// Name identifies the problem instance in results and progress
	// snapshots.
	Name() string
	// Size returns the number of swappable elements; snapshots are
	// permutations of [0, Size()).
	Size() int32
	// Initial derives the run's shared initial State deterministically
	// from seed. It is called exactly once per run, before any worker
	// starts; implementations may derive run-scoped shared context
	// (e.g. the placement fuzzy goals) here.
	Initial(seed uint64) (State, error)
	// NewState builds an independent worker State positioned at the
	// snapshot snap. After Initial has returned it may be called
	// concurrently from worker goroutines and must be safe for that.
	NewState(snap []int32) (State, error)
}

// Detailer is an optional Problem capability: exact, problem-specific
// scoring of the final best solution. When the solved Problem
// implements it, Solve stores the returned value in Result.Details
// (PlacementProblem yields PlacementDetails, QAPProblem QAPDetails).
type Detailer interface {
	Details(best []int32) (any, error)
}

// coreProblem adapts the public Problem to the engine's internal
// boundary. State values cross the two structurally identical
// interfaces unchanged, so the adapter costs one pointer hop.
type coreProblem struct{ p Problem }

func (a coreProblem) Name() string { return a.p.Name() }
func (a coreProblem) Size() int32  { return a.p.Size() }
func (a coreProblem) Initial(seed uint64) (core.State, error) {
	return a.p.Initial(seed)
}
func (a coreProblem) NewState(snap []int32) (core.State, error) {
	return a.p.NewState(snap)
}

// coreProblemDetailed additionally forwards the Detailer capability as
// the engine's Finalizer, so Details land in the result.
type coreProblemDetailed struct {
	coreProblem
	d Detailer
}

func (a coreProblemDetailed) Finalize(best []int32) (any, error) {
	return a.d.Details(best)
}

// adapt wraps a public Problem for the engine, preserving the optional
// Detailer capability.
func adapt(p Problem) core.Problem {
	cp := coreProblem{p: p}
	if d, ok := p.(Detailer); ok {
		return coreProblemDetailed{coreProblem: cp, d: d}
	}
	return cp
}
