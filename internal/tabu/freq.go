package tabu

import "math/rand"

// Frequency is the long-term memory: how often each element has been
// moved. The Kelly et al. diversification scheme the paper uses forces
// moves of rarely-moved elements to push the search into unexplored
// regions.
type Frequency struct {
	count []int64
	total int64
}

// NewFrequency creates a frequency memory for n elements.
func NewFrequency(n int32) *Frequency {
	return &Frequency{count: make([]int64, n)}
}

// BumpSwap records that elements a and b were moved.
func (f *Frequency) BumpSwap(a, b int32) {
	f.count[a]++
	f.count[b]++
	f.total += 2
}

// BumpMove records every element of a compound move.
func (f *Frequency) BumpMove(m *CompoundMove) {
	for _, s := range m.Swaps {
		f.BumpSwap(s.A, s.B)
	}
}

// Count returns how often element e has moved.
func (f *Frequency) Count(e int32) int64 { return f.count[e] }

// Total returns the total number of element moves recorded.
func (f *Frequency) Total() int64 { return f.total }

// LeastMoved returns the element within [lo, hi) with the lowest move
// count, breaking ties uniformly at random with r. The half-open range
// is the caller's diversification range (its subset of cells). Panics if
// the range is empty.
func (f *Frequency) LeastMoved(r *rand.Rand, lo, hi int32) int32 {
	if hi <= lo {
		panic("tabu: empty range in LeastMoved")
	}
	best := lo
	ties := 1
	for e := lo + 1; e < hi; e++ {
		switch c := f.count[e]; {
		case c < f.count[best]:
			best = e
			ties = 1
		case c == f.count[best]:
			ties++
			if r.Intn(ties) == 0 {
				best = e
			}
		}
	}
	return best
}

// Export returns a copy of the per-element move counts — the
// long-term-memory half of a worker checkpoint.
func (f *Frequency) Export() []int64 {
	return append([]int64(nil), f.count...)
}

// Import replaces the counts with an exported snapshot; entries beyond
// the memory's size are ignored, missing ones count as zero.
func (f *Frequency) Import(counts []int64) {
	f.total = 0
	for i := range f.count {
		if i < len(counts) {
			f.count[i] = counts[i]
		} else {
			f.count[i] = 0
		}
		f.total += f.count[i]
	}
}

// Reset clears all counts.
func (f *Frequency) Reset() {
	for i := range f.count {
		f.count[i] = 0
	}
	f.total = 0
}
