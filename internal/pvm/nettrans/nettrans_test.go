package nettrans

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pts/internal/pvm"
)

// The toy protocol the transport tests run: root spawns echo tasks,
// pings each once, and sums the pongs.
const (
	tagPing pvm.Tag = iota + 1
	tagPong
)

const kindEcho = "test.echo"

// echoSpec rebuilds an echo task wherever it lands.
type echoSpec struct {
	Parent pvm.TaskID
	Bias   int
}

// testSummary is the finale payload of the toy program.
type testSummary struct {
	Total int
}

func init() {
	gob.Register(echoSpec{})
	gob.Register(testSummary{})
	gob.Register(0)
}

// echoFactory is both the worker-side TaskFactory and the master-side
// Spawner of the toy protocol.
func echoFactory(kind string, data any) (pvm.TaskFunc, error) {
	if kind != kindEcho {
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	spec, ok := data.(echoSpec)
	if !ok {
		return nil, fmt.Errorf("kind %q wants echoSpec, got %T", kind, data)
	}
	return func(env pvm.Env) {
		m := env.Recv(tagPing)
		env.Send(spec.Parent, tagPong, m.Data.(int)+spec.Bias)
	}, nil
}

// echoHandler is the worker-side program handler; it records the job
// payload and final summary it saw.
type echoHandler struct {
	factory TaskFactory // defaults to echoFactory

	mu      sync.Mutex
	payload any
	summary any
}

func (h *echoHandler) Start(payload any) (TaskFactory, error) {
	h.mu.Lock()
	h.payload = payload
	h.mu.Unlock()
	if h.factory != nil {
		return h.factory, nil
	}
	return echoFactory, nil
}

func (h *echoHandler) Done(summary any) {
	h.mu.Lock()
	h.summary = summary
	h.mu.Unlock()
}

// startWorkers launches n worker daemons against addr, each serving one
// job, and returns their handlers plus a wait-and-check func.
func startWorkers(t *testing.T, addr string, n int, speeds []float64, factory TaskFactory) ([]*echoHandler, func()) {
	t.Helper()
	handlers := make([]*echoHandler, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		handlers[i] = &echoHandler{factory: factory}
		cfg := WorkerConfig{
			Addr: addr, Name: fmt.Sprintf("w%d", i),
			Speed: speeds[i%len(speeds)], Capacity: 1, Jobs: 1,
		}
		go func(h *echoHandler, cfg WorkerConfig) {
			errs <- RunWorker(context.Background(), cfg, h)
		}(handlers[i], cfg)
	}
	return handlers, func() {
		t.Helper()
		for i := 0; i < n; i++ {
			select {
			case err := <-errs:
				if err != nil {
					t.Errorf("worker: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("worker did not finish")
			}
		}
	}
}

// runEcho executes the toy program over the given transport: root
// spawns `tasks` echo tasks spread over machines 1.., pings each with
// its index, and sums the answers. The expected total for bias 100 is
// Σ(i+100).
func runEcho(t *testing.T, tr pvm.Transport, tasks int, counters *pvm.Counters) int {
	t.Helper()
	total, err := runEchoErr(tr, tasks, counters)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return total
}

// runEchoErr is runEcho for goroutines: it reports the run error
// instead of failing the test from off the test goroutine.
func runEchoErr(tr pvm.Transport, tasks int, counters *pvm.Counters) (int, error) {
	total := 0
	opts := pvm.Options{
		Seed:     7,
		Counters: counters,
		Spawner:  echoFactory,
	}
	opts.Transport = tr
	_, err := pvm.RunReal(opts, func(env pvm.Env) {
		ids := make([]pvm.TaskID, tasks)
		for i := range ids {
			ids[i] = env.SpawnSpec(fmt.Sprintf("echo%d", i), 1+i, pvm.Spec{
				Kind: kindEcho,
				Data: echoSpec{Parent: env.Self(), Bias: 100},
				Fn:   nil, // forces transports to go through the factory path off-process
			})
		}
		for i, id := range ids {
			env.Send(id, tagPing, i)
		}
		for range ids {
			total += env.Recv(tagPong).Data.(int)
		}
	})
	return total, err
}

// waitFree polls the registry until n workers are idle in the lobby.
func waitFree(t *testing.T, m *Master, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.FreeWorkers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("lobby never reached %d idle workers (now %d)", n, m.FreeWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// inProcessEcho runs the same program on the default transport (specs
// resolve to closures through the Spawner there too, matching what the
// distributed run executes).
func inProcessEcho(t *testing.T, tasks int, counters *pvm.Counters) int {
	t.Helper()
	total := 0
	_, err := pvm.RunReal(pvm.Options{Seed: 7, Counters: counters}, func(env pvm.Env) {
		ids := make([]pvm.TaskID, tasks)
		for i := range ids {
			fn, ferr := echoFactory(kindEcho, echoSpec{Parent: 0, Bias: 100})
			if ferr != nil {
				t.Error(ferr)
				return
			}
			ids[i] = env.SpawnSpec(fmt.Sprintf("echo%d", i), 1+i, pvm.Spec{Kind: kindEcho, Fn: fn})
		}
		for i, id := range ids {
			env.Send(id, tagPing, i)
		}
		for range ids {
			total += env.Recv(tagPong).Data.(int)
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return total
}

func TestLoopbackRun(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	handlers, wait := startWorkers(t, m.Addr(), 2, []float64{1.0, 0.5}, nil)

	var c pvm.Counters
	total := runEcho(t, m, 6, &c)
	want := 0
	for i := 0; i < 6; i++ {
		want += i + 100
	}
	if total != want {
		t.Errorf("total = %d, want %d", total, want)
	}
	if c.Spawns != 7 { // root + 6 echoes
		t.Errorf("Spawns = %d, want 7", c.Spawns)
	}
	// Every ping and every pong is exactly one send, wherever the
	// endpoints live.
	if c.Sends != 12 {
		t.Errorf("Sends = %d, want 12", c.Sends)
	}

	if err := m.Finish(testSummary{Total: total}); err != nil {
		t.Errorf("finish: %v", err)
	}
	wait()
	for i, h := range handlers {
		h.mu.Lock()
		payload, summary := h.payload, h.summary
		h.mu.Unlock()
		if payload != nil {
			t.Errorf("worker %d: unexpected job payload %v", i, payload)
		}
		ts, ok := summary.(testSummary)
		if !ok || ts.Total != total {
			t.Errorf("worker %d: summary = %#v, want total %d", i, summary, total)
		}
	}
}

func TestCountersMatchInProcessTransport(t *testing.T) {
	var inproc pvm.Counters
	wantTotal := inProcessEcho(t, 5, &inproc)

	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, wait := startWorkers(t, m.Addr(), 3, []float64{1, 0.55, 0.3}, nil)
	var dist pvm.Counters
	total := runEcho(t, m, 5, &dist)
	m.Finish(nil)
	wait()

	if total != wantTotal {
		t.Errorf("program outcome differs: %d vs %d", total, wantTotal)
	}
	if dist.Spawns != inproc.Spawns || dist.Sends != inproc.Sends {
		t.Errorf("counters differ across transports: distributed %+v, in-process %+v", dist, inproc)
	}
}

// rawDial opens a plain TCP connection to the master.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

func TestMalformedFrameRejected(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Garbage bytes: not even a gob stream.
	nc := rawDial(t, m.Addr())
	nc.Write([]byte{0, 0, 0, 8, 'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'})
	if !connClosedByPeer(nc) {
		t.Error("garbage frame: connection not dropped")
	}

	// An absurd length prefix must be refused without allocating it.
	nc = rawDial(t, m.Addr())
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31)
	nc.Write(hdr[:])
	if !connClosedByPeer(nc) {
		t.Error("oversized frame: connection not dropped")
	}

	// The master must still be healthy: a well-formed join succeeds.
	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "ok", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.read()
	if err != nil || ack.Type != fJoinAck || ack.Err != "" {
		t.Fatalf("healthy join after malformed peers failed: %+v, %v", ack, err)
	}
	c.close()
}

// connClosedByPeer reports whether the peer closes nc (or stops
// talking) within the admission window.
func connClosedByPeer(nc net.Conn) bool {
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(12 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := nc.Read(buf); err != nil {
			ne, ok := err.(net.Error)
			return !(ok && ne.Timeout())
		}
	}
}

func TestDoubleJoinRefused(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	first := newConn(rawDial(t, m.Addr()))
	defer first.close()
	if err := first.write(&frame{Type: fJoin, Worker: "dup", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := first.read(); err != nil || ack.Err != "" {
		t.Fatalf("first join: %+v, %v", ack, err)
	}

	err = RunWorker(context.Background(), WorkerConfig{Addr: m.Addr(), Name: "dup", Jobs: 1}, &echoHandler{})
	if !errors.Is(err, ErrJoinRefused) {
		t.Fatalf("second join of %q: got %v, want ErrJoinRefused", "dup", err)
	}
}

func TestWorkerKilledMidRunAborts(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A hand-rolled worker that dies the moment it is given a task —
	// the wire-level equivalent of kill -9 mid-round.
	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "doomed", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	go func() {
		for {
			f, err := c.read()
			if err != nil {
				return
			}
			if f.Type == fSpawn {
				c.close() // dies holding the task
				return
			}
		}
	}()

	progress := make(chan int, 16)
	_, err = m.Run(pvm.Options{Seed: 1, Spawner: echoFactory}, func(env pvm.Env) {
		id := env.SpawnSpec("echo0", 1, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 1},
		})
		env.Send(id, tagPing, 41)
		progress <- 1
		env.Recv(tagPong) // never answered: the worker is gone
		progress <- 2
	})
	if !errors.Is(err, pvm.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if got := len(progress); got != 1 {
		t.Errorf("root made %d progress steps, want 1 (blocked Recv must unwind, not complete)", got)
	}
	if err := m.Finish(nil); err != nil {
		t.Logf("finish after abort: %v", err)
	}
}

func TestReconnectBackoff(t *testing.T) {
	// Grab an address with nothing listening, start the worker first,
	// then bring the master up: the daemon's backoff loop must find it.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	h := &echoHandler{}
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{Addr: addr, Name: "late", Jobs: 1}, h)
	}()
	time.Sleep(300 * time.Millisecond) // let a few dials fail

	m, err := Listen(MasterConfig{Addr: addr, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	total := runEcho(t, m, 2, nil)
	if want := 100 + 101; total != want {
		t.Errorf("total = %d, want %d", total, want)
	}
	m.Finish(nil)
	if err := <-done; err != nil {
		t.Errorf("worker: %v", err)
	}
}

func TestCooperativeCancelDrainsCleanly(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, wait := startWorkers(t, m.Addr(), 1, []float64{1}, pollFactory)

	ctx, cancel := context.WithCancel(context.Background())
	sawCancel := false
	_, err = m.Run(pvm.Options{Seed: 3, Context: ctx, Spawner: pollFactory}, func(env pvm.Env) {
		id := env.SpawnSpec("poll0", 1, pvm.Spec{
			Kind: kindPoll, Data: echoSpec{Parent: env.Self()},
		})
		cancel()
		// The remote task watches Cancelled() and reports back; the run
		// then drains normally — no abort.
		m := env.Recv(tagPong)
		sawCancel = m.Data.(int) == 1
		_ = id
	})
	if err != nil {
		t.Fatalf("cancelled run must drain cleanly, got %v", err)
	}
	if !sawCancel {
		t.Error("remote task never observed the cancellation")
	}
	m.Finish(nil)
	wait()
}

func TestBoundedWorkerGivesUpWhenMasterDies(t *testing.T) {
	// A Jobs=1 worker whose master vanishes before any job ran must
	// return an error instead of redialing the dead address forever.
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(),
			WorkerConfig{Addr: m.Addr(), Name: "orphan", Jobs: 1, MaxBackoff: 200 * time.Millisecond},
			&echoHandler{})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(m.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("orphaned bounded worker returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("orphaned bounded worker kept retrying a dead master")
	}
}

func TestLobbyDisconnectFreesName(t *testing.T) {
	// A worker that drops while idle in the lobby must be retired
	// promptly — its name freed for the daemon's reconnect and its dead
	// connection kept out of the next run.
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "flaky", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	c.close() // network blip before any job starts

	// The same name must be able to re-register once the master notices
	// the dead connection (milliseconds on loopback).
	deadline := time.Now().Add(10 * time.Second)
	for {
		c2 := newConn(rawDial(t, m.Addr()))
		if err := c2.write(&frame{Type: fJoin, Worker: "flaky", Speed: 1, Capacity: 1}); err != nil {
			t.Fatal(err)
		}
		ack, err := c2.read()
		if err != nil {
			t.Fatalf("rejoin: %v", err)
		}
		if ack.Err == "" {
			c2.close() // rejoined under the previously held name
			return
		}
		c2.close()
		if time.Now().After(deadline) {
			t.Fatalf("name still held after lobby disconnect: %s", ack.Err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestBoundedWorkerReturnsAfterAbortedJob(t *testing.T) {
	// When a sibling worker dies and the run aborts, a Jobs=1 daemon's
	// job has ended for good — it must return the abort error, not
	// redial the closed master forever.
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	survivor := make(chan error, 1)
	go func() {
		survivor <- RunWorker(context.Background(),
			WorkerConfig{Addr: m.Addr(), Name: "survivor", Jobs: 1, MaxBackoff: 200 * time.Millisecond},
			&echoHandler{})
	}()

	// The doomed sibling joins raw and dies on its first task.
	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "doomed", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	go func() {
		for {
			f, err := c.read()
			if err != nil {
				return
			}
			if f.Type == fSpawn {
				c.close()
				return
			}
		}
	}()

	_, err = m.Run(pvm.Options{Seed: 5, Spawner: echoFactory}, func(env pvm.Env) {
		// One echo per worker node; the doomed one kills the run.
		a := env.SpawnSpec("echo0", 1, pvm.Spec{Kind: kindEcho, Data: echoSpec{Parent: env.Self()}})
		b := env.SpawnSpec("echo1", 2, pvm.Spec{Kind: kindEcho, Data: echoSpec{Parent: env.Self()}})
		env.Send(a, tagPing, 1)
		env.Send(b, tagPing, 2)
		env.Recv(tagPong)
		env.Recv(tagPong)
	})
	if !errors.Is(err, pvm.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	m.Finish(nil)
	select {
	case err := <-survivor:
		if err == nil {
			t.Error("surviving bounded worker returned nil for an aborted job")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving bounded worker hung after the job aborted")
	}
}

func TestWorkerCtxCancelWhileConnected(t *testing.T) {
	// A daemon parked on an idle master (joined, no job yet) must honor
	// context cancellation promptly, not only between sessions.
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{Addr: m.Addr(), Name: "idle", Jobs: 0}, &echoHandler{})
	}()
	time.Sleep(200 * time.Millisecond) // let it join and block reading
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunWorker = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWorker ignored the cancelled context while connected")
	}
}

// TestExitWatchToleratesWorkerLoss is the transport-level loss
// tolerance contract: when every task a dying worker hosted is watched
// (pvm.NotifyExit), the run must NOT abort — the watchers receive
// pvm.TagExit notifications and the run drains to a clean finish on
// the survivors.
func TestExitWatchToleratesWorkerLoss(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Worker 1: a real daemon that survives the whole job.
	_, wait := startWorkers(t, m.Addr(), 1, []float64{1}, nil)

	// Worker 2: hand-rolled; it accepts the spawn, then dies on the
	// first message sent to its task — a kill -9 mid-round.
	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "doomed", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	go func() {
		for {
			f, err := c.read()
			if err != nil {
				return
			}
			if f.Type == fMsg {
				c.close() // dies holding a watched task
				return
			}
		}
	}()

	var exitFrom pvm.TaskID
	total := 0
	_, err = m.Run(pvm.Options{Seed: 2, Spawner: echoFactory}, func(env pvm.Env) {
		// "w0" joined first (startWorkers) or second — place by name:
		// find the doomed node's slot by spawning the victim wherever the
		// registry put it. Slots: 1 and 2; the victim is wherever writing
		// a message kills the connection, so spawn one echo per worker
		// and watch only the doomed one's.
		var victim, survivorTask pvm.TaskID
		for slot := 1; slot <= 2; slot++ {
			id := env.SpawnSpec(fmt.Sprintf("echo%d", slot), slot, pvm.Spec{
				Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 100},
			})
			pvm.NotifyExit(env, id)
			if slot == 1 {
				victim = id
			} else {
				survivorTask = id
			}
		}
		// Ping both; one of them is hosted by the doomed worker, which
		// dies on receipt. The other answers.
		env.Send(victim, tagPing, 1)
		env.Send(survivorTask, tagPing, 2)
		got := 0
		for got < 2 {
			msg := env.Recv(tagPong, pvm.TagExit)
			got++
			if msg.Tag == pvm.TagExit {
				exitFrom = msg.From
				continue
			}
			total += msg.Data.(int)
		}
	})
	if err != nil {
		t.Fatalf("watched worker loss aborted the run: %v", err)
	}
	if exitFrom == 0 {
		t.Error("no TagExit notification delivered")
	}
	if total == 0 {
		t.Error("surviving worker's pong never arrived")
	}
	if err := m.Finish(testSummary{Total: total}); err != nil {
		t.Errorf("finish: %v", err)
	}
	wait()
}

// TestUnwatchedLossStillAborts pins the static behavior: without a
// registered watch, a lost worker aborts the run exactly as before the
// scheduler existed.
func TestUnwatchedLossStillAborts(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "doomed", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	go func() {
		for {
			f, err := c.read()
			if err != nil {
				return
			}
			if f.Type == fMsg {
				c.close()
				return
			}
		}
	}()

	_, err = m.Run(pvm.Options{Seed: 3, Spawner: echoFactory}, func(env pvm.Env) {
		id := env.SpawnSpec("echo0", 1, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 1},
		})
		env.Send(id, tagPing, 41)
		env.Recv(tagPong)
	})
	if !errors.Is(err, pvm.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted for an unwatched loss", err)
	}
	m.Finish(nil)
}

// TestElasticAbsorbsLateJoiner covers elastic membership: a worker
// joining after the run started is claimed for the running job as
// spare capacity — new slots on the ring that later spawns can land
// on — instead of idling in the lobby.
func TestElasticAbsorbsLateJoiner(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, waitFirst := startWorkers(t, m.Addr(), 1, []float64{1}, nil)

	lateStarted := make(chan struct{})
	lateDone := make(chan error, 1)
	go func() {
		<-lateStarted
		lateDone <- RunWorker(context.Background(),
			WorkerConfig{Addr: m.Addr(), Name: "late", Speed: 2, Capacity: 1, Jobs: 1},
			&echoHandler{})
	}()

	total := 0
	opts := pvm.Options{Seed: 4, Spawner: echoFactory, Elastic: true}
	_, err = m.Run(opts, func(env pvm.Env) {
		// Phase 1: normal echo on the original worker.
		a := env.SpawnSpec("echo0", 1, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 100},
		})
		env.Send(a, tagPing, 1)
		total += env.Recv(tagPong).Data.(int)

		// Phase 2: a late worker joins mid-run and must be absorbed.
		close(lateStarted)
		deadline := time.Now().Add(10 * time.Second)
		for len(m.Nodes()) < 2 {
			if time.Now().After(deadline) {
				t.Error("late joiner never absorbed")
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		// The absorbed node owns the appended slot 2 (ring was master=0,
		// w0=1). A spawn aimed there must be hosted by it.
		b := env.SpawnSpec("echo1", 2, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 1000},
		})
		env.Send(b, tagPing, 2)
		total += env.Recv(tagPong).Data.(int)
	})
	if err != nil {
		t.Fatalf("elastic run: %v", err)
	}
	if want := (1 + 100) + (2 + 1000); total != want {
		t.Errorf("total = %d, want %d (late worker did not host the spawned task)", total, want)
	}
	if err := m.Finish(testSummary{Total: total}); err != nil {
		t.Errorf("finish: %v", err)
	}
	waitFirst()
	select {
	case err := <-lateDone:
		if err != nil {
			t.Errorf("late worker: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("late worker did not finish")
	}
}

const kindPoll = "test.poll"

// pollFactory builds a task that waits for Cancelled() and reports it.
func pollFactory(kind string, data any) (pvm.TaskFunc, error) {
	if kind == kindEcho {
		return echoFactory(kind, data)
	}
	spec := data.(echoSpec)
	return func(env pvm.Env) {
		for i := 0; i < 10_000; i++ {
			if env.Cancelled() {
				env.Send(spec.Parent, tagPong, 1)
				return
			}
			time.Sleep(time.Millisecond)
		}
		env.Send(spec.Parent, tagPong, 0)
	}, nil
}

// TestRetroactiveExitWatchAndRespawnSlot covers the respawn substrate:
// (1) a watch registered on a task already written off with its dying
// node is answered immediately, PVM pvm_notify style — the recovery
// protocol re-arms watches on tasks adopted from a checkpoint and must
// not silently miss ones that died in the unwatched gap; (2) the
// respawn placement capability resolves to a slot backed by a live
// process, so the replacement spawn cannot land on the dead node and
// abort the run.
func TestRetroactiveExitWatchAndRespawnSlot(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A hand-rolled worker that dies on the first task message — a
	// kill -9 while hosting a watched task.
	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "doomed", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	go func() {
		for {
			f, err := c.read()
			if err != nil {
				return
			}
			if f.Type == fMsg {
				c.close()
				return
			}
		}
	}()

	var retro bool
	var slot int
	total := 0
	_, err = m.Run(pvm.Options{Seed: 5, Spawner: echoFactory}, func(env pvm.Env) {
		victim := env.SpawnSpec("echo0", 1, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 100},
		})
		pvm.NotifyExit(env, victim)
		env.Send(victim, tagPing, 1)
		if msg := env.Recv(pvm.TagExit); msg.From != victim {
			t.Errorf("TagExit from %d, want %d", msg.From, victim)
		}

		// Re-arming a watch on the already-dead task must answer
		// immediately instead of never.
		pvm.NotifyExit(env, victim)
		if msg, ok := env.TryRecv(pvm.TagExit); ok && msg.From == victim {
			retro = true
		}

		// The placement capability must steer the replacement to live
		// capacity: the only live slot left is the master's own 0.
		slot = pvm.RespawnSlotOf(env, 1)
		replacement := env.SpawnSpec("echo0-r1", slot, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 100},
		})
		env.Send(replacement, tagPing, 2)
		total = env.Recv(tagPong).Data.(int)
	})
	if err != nil {
		t.Fatalf("watched worker loss aborted the run: %v", err)
	}
	if !retro {
		t.Error("watch on an already-lost task was not answered retroactively")
	}
	if slot != 0 {
		t.Errorf("respawn slot = %d, want 0 (the only live slot)", slot)
	}
	if total != 102 {
		t.Errorf("replacement pong = %d, want 102", total)
	}
	m.Finish(nil)
}

// startFleet launches n unbounded worker daemons (serving jobs until
// the returned stop func cancels them) for lease tests.
func startFleet(t *testing.T, addr string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			//nolint:errcheck // the fleet ends by cancellation
			RunWorker(ctx, WorkerConfig{Addr: addr, Name: fmt.Sprintf("fleet%d", i)}, &echoHandler{})
		}(i)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestLeaseConcurrentJobsDisjoint is the serving-mode isolation
// contract: two leases claim disjoint worker subsets, host two runs
// concurrently over one master, and return their workers — connections
// intact — for the fleet to be leased again.
func TestLeaseConcurrentJobsDisjoint(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	stop := startFleet(t, m.Addr(), 4)
	defer stop()
	waitFree(t, m, 4)

	l1, err := m.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := m.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lease(1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("lease beyond the fleet = %v, want ErrNoCapacity", err)
	}
	seen := map[string]bool{}
	for _, l := range []*Lease{l1, l2} {
		names := l.Workers()
		if len(names) != 2 {
			t.Fatalf("lease holds %d workers, want 2", len(names))
		}
		for _, name := range names {
			if seen[name] {
				t.Fatalf("worker %q leased twice", name)
			}
			seen[name] = true
		}
	}

	// Host both runs at once; each must complete independently.
	type outcome struct {
		total int
		err   error
	}
	results := make(chan outcome, 2)
	for _, l := range []*Lease{l1, l2} {
		go func(l *Lease) {
			total, err := runEchoErr(l, 4, nil)
			if ferr := l.Finish(testSummary{Total: total}); ferr != nil && err == nil {
				err = ferr
			}
			results <- outcome{total, err}
		}(l)
	}
	want := 100 + 101 + 102 + 103
	for i := 0; i < 2; i++ {
		got := <-results
		if got.err != nil {
			t.Fatalf("leased run: %v", got.err)
		}
		if got.total != want {
			t.Errorf("leased run total = %d, want %d", got.total, want)
		}
	}

	// Finish returned every worker to the lobby; the fleet is reusable.
	waitFree(t, m, 4)
	l3, err := m.Lease(4)
	if err != nil {
		t.Fatal(err)
	}
	if total := runEcho(t, l3, 5, nil); total != want+104 {
		t.Errorf("second-generation run total = %d, want %d", total, want+104)
	}
	if err := l3.Finish(nil); err != nil {
		t.Errorf("finish: %v", err)
	}
	waitFree(t, m, 4)
}

// TestLeaseReleaseWithoutRun covers the abandoned-lease path: a lease
// that never hosts a run must hand its workers back on Release, and
// releasing twice is harmless.
func TestLeaseReleaseWithoutRun(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	stop := startFleet(t, m.Addr(), 2)
	defer stop()
	waitFree(t, m, 2)

	l, err := m.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if free := m.FreeWorkers(); free != 0 {
		t.Fatalf("FreeWorkers = %d with everything leased, want 0", free)
	}
	l.Release()
	l.Release()
	waitFree(t, m, 2)
	if _, err := l.Run(pvm.Options{Seed: 1}, func(pvm.Env) {}); err == nil {
		t.Error("Run on a released lease succeeded")
	}
	if total := m.TotalWorkers(); total != 2 {
		t.Errorf("TotalWorkers = %d, want 2", total)
	}
}

// TestLeaseWorkerLossIsolated kills a worker mid-run in one lease while
// a sibling lease's run is in flight: only the leasing job may abort,
// and the dead worker must not leak back into the lobby.
func TestLeaseWorkerLossIsolated(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// The doomed worker joins first so the first lease claims it (FIFO).
	c := newConn(rawDial(t, m.Addr()))
	if err := c.write(&frame{Type: fJoin, Worker: "doomed", Speed: 1, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := c.read(); err != nil || ack.Err != "" {
		t.Fatalf("join: %+v, %v", ack, err)
	}
	go func() {
		for {
			f, err := c.read()
			if err != nil {
				return
			}
			if f.Type == fSpawn {
				c.close() // dies holding the task
				return
			}
		}
	}()
	waitFree(t, m, 1)
	doomedLease, err := m.Lease(1)
	if err != nil {
		t.Fatal(err)
	}

	stop := startFleet(t, m.Addr(), 2)
	defer stop()
	waitFree(t, m, 2)
	healthyLease, err := m.Lease(2)
	if err != nil {
		t.Fatal(err)
	}

	healthyDone := make(chan error, 1)
	var healthyTotal int
	go func() {
		total, err := runEchoErr(healthyLease, 3, nil)
		healthyTotal = total
		if ferr := healthyLease.Finish(nil); ferr != nil && err == nil {
			err = ferr
		}
		healthyDone <- err
	}()

	_, err = runEchoErr(doomedLease, 1, nil)
	if !errors.Is(err, pvm.ErrAborted) {
		t.Fatalf("doomed lease run = %v, want ErrAborted", err)
	}
	doomedLease.Finish(nil)

	if err := <-healthyDone; err != nil {
		t.Fatalf("healthy lease run was disturbed: %v", err)
	}
	if want := 100 + 101 + 102; healthyTotal != want {
		t.Errorf("healthy run total = %d, want %d", healthyTotal, want)
	}
	// Only the two healthy workers come back; the dead one is retired.
	waitFree(t, m, 2)
	if total := m.TotalWorkers(); total != 2 {
		t.Errorf("TotalWorkers = %d after the loss, want 2", total)
	}
}

// TestWorkerDrainIdleDeregisters covers the graceful-drain satellite:
// an idle daemon told to drain announces fLeave, leaves the registry
// cleanly (name freed), and RunWorker returns nil without reconnecting.
func TestWorkerDrainIdleDeregisters(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	drain := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(),
			WorkerConfig{Addr: m.Addr(), Name: "drainer", Drain: drain}, &echoHandler{})
	}()
	waitFree(t, m, 1)
	close(drain)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drained worker returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drained worker never returned")
	}
	waitFree(t, m, 0)
	if total := m.TotalWorkers(); total != 0 {
		t.Errorf("TotalWorkers = %d after drain, want 0", total)
	}
}

// TestWorkerDrainMidJob drains a worker while it hosts a task of a
// static run: the master writes the task off deliberately (here
// unwatched, so the run aborts exactly like a loss) and the draining
// daemon still exits cleanly with nil.
func TestWorkerDrainMidJob(t *testing.T) {
	m, err := Listen(MasterConfig{Addr: "127.0.0.1:0", Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	drain := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(),
			WorkerConfig{Addr: m.Addr(), Name: "drainer", Drain: drain}, &echoHandler{})
	}()

	_, err = m.Run(pvm.Options{Seed: 1, Spawner: echoFactory}, func(env pvm.Env) {
		// The echo task blocks awaiting a ping that never comes, so it is
		// guaranteed unfinished — and unwatched — when the drain arrives.
		env.SpawnSpec("echo0", 1, pvm.Spec{
			Kind: kindEcho, Data: echoSpec{Parent: env.Self(), Bias: 1},
		})
		close(drain) // SIGTERM arrives while the task is in flight
		env.Recv(tagPong)
	})
	if !errors.Is(err, pvm.ErrAborted) {
		t.Fatalf("run = %v, want ErrAborted (unwatched drained task)", err)
	}
	m.Finish(nil)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("draining worker returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("draining worker never returned")
	}
}
