package core

import (
	"math"
	"testing"
	"testing/quick"

	"pts/internal/cluster"
	"pts/internal/netlist"
)

// quickCfg returns a small, fast configuration for tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.TSWs = 3
	cfg.CLWs = 2
	cfg.GlobalIters = 4
	cfg.LocalIters = 12
	cfg.Trials = 6
	cfg.Depth = 3
	cfg.Seed = 7
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.TSWs = 0 },
		func(c *Config) { c.CLWs = 0 },
		func(c *Config) { c.GlobalIters = 0 },
		func(c *Config) { c.LocalIters = 0 },
		func(c *Config) { c.Trials = 0 },
		func(c *Config) { c.Depth = 0 },
		func(c *Config) { c.Tenure = 0 },
		func(c *Config) { c.DiversifyDepth = -1 },
		func(c *Config) { c.WorkPerTrial = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRangesPartition(t *testing.T) {
	f := func(nRaw uint16, kRaw uint8) bool {
		n := int32(nRaw%5000) + 1
		k := int(kRaw%16) + 1
		rs := ranges(n, k)
		if len(rs) != k {
			return false
		}
		if rs[0][0] != 0 || rs[k-1][1] != n {
			return false
		}
		for i := 1; i < k; i++ {
			if rs[i][0] != rs[i-1][1] {
				return false
			}
		}
		// Near-equal sizes: max-min <= 1.
		min, max := n, int32(0)
		for _, r := range rs {
			sz := r[1] - r[0]
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunImprovesCost(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	res, err := Run(nl, cluster.Homogeneous(12, 1), quickCfg(), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("no improvement: %v -> %v", res.InitialCost, res.BestCost)
	}
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed must be positive in virtual time")
	}
	if res.Stats.MovesAccepted == 0 || res.Stats.LocalIters == 0 {
		t.Errorf("implausible stats: %+v", res.Stats)
	}
}

func TestRunDeterministicVirtual(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Testbed12(5)
	cfg := quickCfg()
	a, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Elapsed != b.Elapsed {
		t.Fatalf("virtual runs diverged: (%v,%v) vs (%v,%v)",
			a.BestCost, a.Elapsed, b.BestCost, b.Elapsed)
	}
	for i := range a.BestPerm {
		if a.BestPerm[i] != b.BestPerm[i] {
			t.Fatal("best permutations differ between identical runs")
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Homogeneous(12, 1)
	cfg := quickCfg()
	a, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost == b.BestCost {
		t.Error("different seeds produced identical best costs (suspicious)")
	}
}

func TestTraceShape(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	res, err := Run(nl, cluster.Homogeneous(12, 1), quickCfg(), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() < res.Rounds {
		t.Fatalf("trace has %d points for %d rounds", res.Trace.Len(), res.Rounds)
	}
	pts := res.Trace.Points
	if pts[0].Cost != res.InitialCost || pts[0].Time != 0 {
		t.Errorf("first trace point should be the initial solution at t=0: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Fatal("trace times not nondecreasing")
		}
		if pts[i].Cost > pts[i-1].Cost+1e-12 {
			t.Fatal("incumbent best increased along the trace")
		}
	}
	if got := res.Trace.Final(); got != res.BestCost {
		t.Errorf("trace final %v != best %v", got, res.BestCost)
	}
}

func TestBestPermScoresClose(t *testing.T) {
	// The reported best cost was computed by a worker with slightly
	// stale criticalities; rescoring the permutation exactly must land
	// close (same goals, fresh timing analysis).
	nl := netlist.MustBenchmark("highway")
	res, err := Run(nl, cluster.Homogeneous(12, 1), quickCfg(), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objectives.Wirelength <= 0 || res.Objectives.Area <= 0 {
		t.Fatalf("degenerate objectives: %+v", res.Objectives)
	}
	if res.CriticalPath <= 0 {
		t.Error("critical path must be positive")
	}
	// Permutation validity: Run would have errored otherwise; check
	// length as a sanity guard.
	if len(res.BestPerm) != nl.NumCells() {
		t.Fatalf("best perm has %d entries, want %d", len(res.BestPerm), nl.NumCells())
	}
}

func TestHalfSyncFasterOnHeterogeneousCluster(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Testbed12(3)
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 4, 3
	cfg.GlobalIters, cfg.LocalIters = 4, 15

	cfg.HalfSync = true
	het, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HalfSync = false
	hom, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if het.Elapsed >= hom.Elapsed {
		t.Fatalf("half-sync (%.4fs) not faster than full sync (%.4fs)",
			het.Elapsed, hom.Elapsed)
	}
	if het.Stats.ForcedReports == 0 {
		t.Error("half-sync on a heterogeneous cluster forced no reports")
	}
	if hom.Stats.ForcedReports != 0 {
		t.Error("full sync must not force reports")
	}
}

func TestSingleWorkerDegenerate(t *testing.T) {
	// 1 TSW x 1 CLW is the speedup baseline; must run fine.
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 1, 1
	res, err := Run(nl, cluster.Homogeneous(2, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("single worker did not improve: %v -> %v", res.InitialCost, res.BestCost)
	}
	if res.Stats.ForcedReports != 0 {
		t.Error("nothing to force with one child each")
	}
}

func TestDiversificationOffStillWorks(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.DiversifyDepth = 0
	res, err := Run(nl, cluster.Homogeneous(12, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Diversifications != 0 {
		t.Error("diversifications counted with DiversifyDepth=0")
	}
	if res.BestCost >= res.InitialCost {
		t.Error("no improvement without diversification")
	}
}

func TestRunRealMode(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.GlobalIters, cfg.LocalIters = 3, 8
	cfg.WorkPerTrial = 0 // no artificial sleeps in real mode
	res, err := Run(nl, cluster.Homogeneous(4, 1), cfg, Real)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("real mode did not improve: %v -> %v", res.InitialCost, res.BestCost)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestRunErrors(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	bad := quickCfg()
	bad.TSWs = 0
	if _, err := Run(nl, cluster.Homogeneous(2, 1), bad, Virtual); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(nl, cluster.Cluster{}, quickCfg(), Virtual); err == nil {
		t.Error("invalid cluster accepted")
	}
	if _, err := Run(nl, cluster.Homogeneous(2, 1), quickCfg(), Mode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	res, err := Run(nl, cluster.Homogeneous(12, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	maxLocal := int64(cfg.TSWs * cfg.GlobalIters * cfg.LocalIters)
	if res.Stats.LocalIters > maxLocal {
		t.Errorf("LocalIters %d exceeds budget %d", res.Stats.LocalIters, maxLocal)
	}
	if res.Stats.MovesAccepted > res.Stats.LocalIters {
		t.Errorf("accepted %d > iterations %d", res.Stats.MovesAccepted, res.Stats.LocalIters)
	}
	// Every local iteration asks every CLW for one candidate.
	if res.Stats.CandidatesBuilt < res.Stats.LocalIters {
		t.Errorf("candidates %d < iterations %d", res.Stats.CandidatesBuilt, res.Stats.LocalIters)
	}
	if res.Stats.Diversifications != int64(cfg.TSWs*cfg.GlobalIters) {
		t.Errorf("diversifications = %d, want %d",
			res.Stats.Diversifications, cfg.TSWs*cfg.GlobalIters)
	}
}

func TestMoreLocalWorkHelps(t *testing.T) {
	// Sanity for the experiment harness: a 4x larger local iteration
	// budget should not end up markedly worse on the same seed set.
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Homogeneous(12, 1)
	small := quickCfg()
	small.GlobalIters, small.LocalIters = 2, 6
	large := quickCfg()
	large.GlobalIters, large.LocalIters = 2, 48

	s, err := Run(nl, clus, small, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Run(nl, clus, large, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if l.BestCost > s.BestCost+0.05 {
		t.Fatalf("8x budget much worse: %v vs %v", l.BestCost, s.BestCost)
	}
	if !(l.Elapsed > s.Elapsed) {
		t.Error("more iterations should take longer")
	}
}

func TestCostsAreComparableAcrossWorkers(t *testing.T) {
	// The master's best must never exceed the initial cost, and the
	// cost must be a valid fuzzy cost.
	nl := netlist.MustBenchmark("highway")
	res, err := Run(nl, cluster.Homogeneous(12, 1), quickCfg(), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost < 0 || res.BestCost > 1 || math.IsNaN(res.BestCost) {
		t.Fatalf("best cost %v outside [0,1]", res.BestCost)
	}
}
