package core

import (
	"fmt"
	"sort"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/pvm"
	"pts/internal/stats"
	"pts/internal/tabu"
)

// masterState is what the master process writes back to Run.
type masterState struct {
	bestCost float64
	bestPerm []int32
	trace    stats.Trace
	stats    WorkerStats
	rounds   int
}

// masterRun is the master process body (paper Fig. 2): spawn the TSWs,
// give every one the same initial solution, then per global iteration
// collect their bests (half-sync in heterogeneous mode), select the
// overall best and broadcast it together with its tabu list.
func masterRun(env pvm.Env, nl *netlist.Netlist, cfg Config, goals cost.Goals,
	initPerm []int32, initCost float64, out *masterState) {

	out.bestCost = initCost
	out.bestPerm = append([]int32(nil), initPerm...)
	// raw gathers every incumbent improvement any TSW observed; the
	// monotone envelope becomes the run's trace at the end.
	var raw []improvement
	raw = append(raw, improvement{Time: env.Now(), Cost: initCost})

	// The master occupies machine 0; workers go where the assignment
	// policy says.
	tswIDs := make([]pvm.TaskID, cfg.TSWs)
	for i := 0; i < cfg.TSWs; i++ {
		i := i
		tswIDs[i] = env.Spawn(fmt.Sprintf("tsw%d", i), cfg.tswMachine(i), func(e pvm.Env) {
			tswRun(e, nl, cfg, goals, env.Self())
		})
	}
	divRanges := ranges(int32(nl.NumCells()), cfg.TSWs)
	for i, id := range tswIDs {
		env.Send(id, TagInit, initMsg{
			Perm:      initPerm,
			RangeLo:   divRanges[i][0],
			RangeHi:   divRanges[i][1],
			WorkerIdx: i,
		})
	}

	var bestTabu []tabu.Entry
	for g := 0; g < cfg.GlobalIters; g++ {
		reports := collectBests(env, tswIDs, cfg.HalfSync)
		env.Work(float64(len(reports)) * cfg.WorkPerTrial)
		for _, r := range reports {
			raw = append(raw, r.Points...)
			if r.Cost < out.bestCost {
				out.bestCost = r.Cost
				out.bestPerm = append(out.bestPerm[:0], r.Perm...)
				bestTabu = r.Tabu
			}
		}
		out.rounds++
		// The round-end observation keeps the trace's time axis spanning
		// the full run even when no TSW improved this round.
		raw = append(raw, improvement{Time: env.Now(), Cost: out.bestCost})
		// Broadcast the global best (solution + its tabu list) so every
		// TSW restarts the next round from it.
		gm := globalMsg{Perm: out.bestPerm, Tabu: bestTabu}
		for _, id := range tswIDs {
			env.Send(id, TagGlobal, gm)
		}
	}

	// Shut down and gather counters.
	for _, id := range tswIDs {
		env.Send(id, TagStop, nil)
	}
	for range tswIDs {
		m := env.Recv(TagStats)
		out.stats.add(m.Data.(WorkerStats))
	}

	if cfg.RecordTrace {
		out.trace = envelope(raw)
	}
}

// envelope turns raw improvement observations from many workers into
// the monotone best-cost-versus-time trace: sorted by time, keeping
// only points that improve on everything earlier.
func envelope(raw []improvement) stats.Trace {
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].Time != raw[j].Time {
			return raw[i].Time < raw[j].Time
		}
		return raw[i].Cost < raw[j].Cost
	})
	var tr stats.Trace
	best := 0.0
	for i, p := range raw {
		if i == 0 || p.Cost < best {
			best = p.Cost
			tr.Record(p.Time, best)
		} else if i == len(raw)-1 {
			// Keep the final observation so End() reflects the real
			// make-span of the search phase.
			tr.Record(p.Time, best)
		}
	}
	return tr
}

// collectBests gathers one bestMsg per TSW; in half-sync mode it forces
// the stragglers once half have reported.
func collectBests(env pvm.Env, tswIDs []pvm.TaskID, halfSync bool) []bestMsg {
	n := len(tswIDs)
	out := make([]bestMsg, 0, n)
	reported := make(map[pvm.TaskID]bool, n)
	take := func() {
		m := env.Recv(TagBest)
		reported[m.From] = true
		out = append(out, m.Data.(bestMsg))
	}
	if halfSync && n > 1 {
		half := (n + 1) / 2
		for len(out) < half {
			take()
		}
		for _, id := range tswIDs {
			if !reported[id] {
				env.Send(id, TagReportNow, nil)
			}
		}
	}
	for len(out) < n {
		take()
	}
	return out
}
