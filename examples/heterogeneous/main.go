// Heterogeneous-vs-homogeneous walkthrough: the paper's §4.2/§5.4
// claim, reproduced head to head — the half-sync collection scheme
// reaches the same quality in substantially less runtime on a cluster
// with mixed machine speeds and background load.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/netlist"
)

func main() {
	nl := netlist.MustBenchmark("c532")
	clus := cluster.Testbed12(12) // 7 fast / 3 medium / 2 slow, loaded

	fmt.Println("machines:")
	for i, m := range clus.Machines {
		load := "idle"
		if len(m.Load.Levels) > 0 {
			load = fmt.Sprintf("loaded (period %.2fs)", m.Load.Period)
		}
		fmt.Printf("  %2d %-8s speed %.2f  %s\n", i, m.Name, m.Speed, load)
	}

	run := func(half bool) *core.Result {
		cfg := core.DefaultConfig()
		cfg.TSWs, cfg.CLWs = 4, 4
		cfg.GlobalIters, cfg.LocalIters = 10, 30
		cfg.HalfSync = half
		cfg.Seed = 3
		res, err := core.Run(nl, clus, cfg, core.Virtual)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("\nidentical search, two collection strategies:")
	het := run(true)
	hom := run(false)

	fmt.Printf("\n%-14s %12s %14s %14s\n", "mode", "best cost", "virtual time", "forced reports")
	fmt.Printf("%-14s %12.4f %13.3fs %14d\n", "heterogeneous", het.BestCost, het.Elapsed, het.Stats.ForcedReports)
	fmt.Printf("%-14s %12.4f %13.3fs %14d\n", "homogeneous", hom.BestCost, hom.Elapsed, hom.Stats.ForcedReports)
	fmt.Printf("\nhalf-sync finishes %.2fx sooner at %+.1f%% cost difference\n",
		hom.Elapsed/het.Elapsed, 100*(het.BestCost-hom.BestCost)/hom.BestCost)

	fmt.Println("\nbest-cost traces (time -> cost):")
	fmt.Printf("%-8s %-22s %-22s\n", "round", "heterogeneous", "homogeneous")
	n := het.Trace.Len()
	if hom.Trace.Len() < n {
		n = hom.Trace.Len()
	}
	for i := 0; i < n; i++ {
		hp, op := het.Trace.Points[i], hom.Trace.Points[i]
		fmt.Printf("%-8d %8.3fs -> %-8.4f %8.3fs -> %-8.4f\n", i, hp.Time, hp.Cost, op.Time, op.Cost)
	}
}
