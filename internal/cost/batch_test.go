package cost

import (
	"math"
	"math/rand"
	"testing"

	"pts/internal/tabu"
)

// TestDeltaSwapBatchMatchesScalar fuzzes the batched evaluator path
// against SwapDelta: random batches (including degenerate a==b
// candidates and sizes straddling the placement kernel's sort
// threshold), each output compared bit-for-bit, with the evaluator
// mutating between batches so many placements and maintained costs are
// covered.
func TestDeltaSwapBatchMatchesScalar(t *testing.T) {
	ev := benchEvaluator(t, "c532")
	prob := Problem{Ev: ev}
	r := rand.New(rand.NewSource(41))
	cells := int(ev.NumCells())
	const maxBatch = 64
	cands := make([]tabu.SwapCand, 0, maxBatch)
	out := make([]float64, maxBatch)
	for batch := 0; batch < 1000; batch++ {
		n := 1 + r.Intn(maxBatch)
		cands = cands[:0]
		for i := 0; i < n; i++ {
			cands = append(cands, tabu.SwapCand{
				A: int32(r.Intn(cells)),
				B: int32(r.Intn(cells)), // a == b allowed
			})
		}
		prob.DeltaSwapBatch(cands, out[:n])
		for i, c := range cands {
			want := prob.DeltaSwap(c.A, c.B)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("batch %d cand %d (%d,%d): batch %v, scalar %v",
					batch, i, c.A, c.B, out[i], want)
			}
		}
		prob.ApplySwap(int32(r.Intn(cells)), int32(r.Intn(cells)))
		if batch%200 == 199 {
			prob.Refresh() // move the goals' operating point too
		}
	}
}

// TestDeltaSwapBatchAllocFree asserts the batched trial path allocates
// nothing once the evaluator's scratch is warm; the CI bench-smoke job
// enforces the same contract by numbers.
func TestDeltaSwapBatchAllocFree(t *testing.T) {
	ev := benchEvaluator(t, "c532")
	r := rand.New(rand.NewSource(2))
	cells := int(ev.NumCells())
	cands := make([]tabu.SwapCand, 64)
	for i := range cands {
		cands[i] = tabu.SwapCand{A: int32(r.Intn(cells)), B: int32(r.Intn(cells))}
	}
	out := make([]float64, len(cands))
	ev.DeltaSwapBatch(cands, out) // warm batch scratch
	if allocs := testing.AllocsPerRun(200, func() {
		ev.DeltaSwapBatch(cands, out)
	}); allocs != 0 {
		t.Errorf("DeltaSwapBatch allocates %.1f per batch, want 0", allocs)
	}

	// The relaxed kernels and the evaluation pool hold the same
	// contract: lanes are locals, the pool's goroutines are persistent
	// and its spans are value sends on a buffered channel.
	ev.SetRelaxedAccumulation(true)
	ev.DeltaSwapBatch(cands, out)
	if allocs := testing.AllocsPerRun(200, func() {
		ev.DeltaSwapBatch(cands, out)
	}); allocs != 0 {
		t.Errorf("relaxed DeltaSwapBatch allocates %.1f per batch, want 0", allocs)
	}
	ev.SetEvalWorkers(3)
	defer ev.Close()
	ev.DeltaSwapBatch(cands, out)
	if allocs := testing.AllocsPerRun(200, func() {
		ev.DeltaSwapBatch(cands, out)
	}); allocs != 0 {
		t.Errorf("pooled DeltaSwapBatch allocates %.1f per batch, want 0", allocs)
	}
}

// BenchmarkDeltaSwapBatch measures the batched trial kernel at the
// engine's hot-path batch size; ns/op is per 64-candidate batch and the
// ns/trial metric is the directly comparable counterpart of
// BenchmarkSwapDelta's ns/op.
func BenchmarkDeltaSwapBatch(b *testing.B) {
	const batch = 64
	for _, circuit := range []string{"c532", "c1355"} {
		b.Run(circuit, func(b *testing.B) {
			ev := benchEvaluator(b, circuit)
			pairs := benchCellPairs(1024, int(ev.NumCells()))
			// Pre-built rotating batches: the same 1024-pair workload the
			// scalar benchmark draws from, grouped 64 at a time, so the
			// timer sees only the kernel.
			batches := make([][]tabu.SwapCand, len(pairs)/batch)
			for bi := range batches {
				cands := make([]tabu.SwapCand, batch)
				for i := range cands {
					pr := pairs[bi*batch+i]
					cands[i] = tabu.SwapCand{A: int32(pr[0]), B: int32(pr[1])}
				}
				batches[bi] = cands
			}
			out := make([]float64, batch)
			ev.DeltaSwapBatch(batches[0], out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.DeltaSwapBatch(batches[i%len(batches)], out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/trial")
		})
	}
}

// BenchmarkDeltaSwapBatchRelaxed is BenchmarkDeltaSwapBatch through the
// relaxed-accumulation kernels (reassociated placement walk +
// reciprocal-multiply fold); the side-by-side for the strict column.
func BenchmarkDeltaSwapBatchRelaxed(b *testing.B) {
	const batch = 64
	for _, circuit := range []string{"c532", "c1355"} {
		b.Run(circuit, func(b *testing.B) {
			ev := benchEvaluator(b, circuit)
			ev.SetRelaxedAccumulation(true)
			pairs := benchCellPairs(1024, int(ev.NumCells()))
			batches := make([][]tabu.SwapCand, len(pairs)/batch)
			for bi := range batches {
				cands := make([]tabu.SwapCand, batch)
				for i := range cands {
					pr := pairs[bi*batch+i]
					cands[i] = tabu.SwapCand{A: int32(pr[0]), B: int32(pr[1])}
				}
				batches[bi] = cands
			}
			out := make([]float64, batch)
			ev.DeltaSwapBatch(batches[0], out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.DeltaSwapBatch(batches[i%len(batches)], out)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/trial")
		})
	}
}
