// Package fuzzy implements the fuzzy goal-directed evaluation the paper
// uses to combine the three noisy placement objectives (wire length,
// critical path delay, area) into one cost.
//
// Each objective x gets a membership μ(x) ∈ [0,1] describing how well it
// satisfies its goal: 1 at or below the goal value, falling linearly to 0
// at a ceiling. The per-objective memberships are combined with an
// ordered weighted averaging (OWA) "and-like" operator
//
//	μ = β·min(μ₁..μₖ) + (1−β)·mean(μ₁..μₖ)
//
// following the fuzzy simulated-evolution placement formulation of Sait,
// Youssef and Ali that the paper cites as [5]. The search minimizes
// cost = 1 − μ.
package fuzzy

import (
	"fmt"
	"math"
)

// Membership is a decreasing linear membership function for a
// minimization objective: full satisfaction at or below Goal, none at or
// above Ceiling.
type Membership struct {
	Goal    float64
	Ceiling float64
}

// Valid reports whether the function is well formed.
func (m Membership) Valid() error {
	if math.IsNaN(m.Goal) || math.IsNaN(m.Ceiling) {
		return fmt.Errorf("fuzzy: NaN membership bounds")
	}
	if !(m.Ceiling > m.Goal) {
		return fmt.Errorf("fuzzy: ceiling %v must exceed goal %v", m.Ceiling, m.Goal)
	}
	return nil
}

// Eval returns μ(x) ∈ [0,1].
func (m Membership) Eval(x float64) float64 {
	switch {
	case x <= m.Goal:
		return 1
	case x >= m.Ceiling:
		return 0
	default:
		return (m.Ceiling - x) / (m.Ceiling - m.Goal)
	}
}

// OWA is the ordered-weighted-averaging and-like aggregation operator.
// Beta ∈ [0,1] controls how conjunctive it is: 1 is pure min (every goal
// must be met), 0 is pure mean (objectives trade off freely).
type OWA struct {
	Beta float64
}

// Valid reports whether Beta is in range.
func (o OWA) Valid() error {
	if math.IsNaN(o.Beta) || o.Beta < 0 || o.Beta > 1 {
		return fmt.Errorf("fuzzy: OWA beta %v outside [0,1]", o.Beta)
	}
	return nil
}

// Combine aggregates memberships; it returns 0 for an empty list.
func (o OWA) Combine(mu ...float64) float64 {
	if len(mu) == 0 {
		return 0
	}
	min, sum := mu[0], 0.0
	for _, m := range mu {
		if m < min {
			min = m
		}
		sum += m
	}
	return o.Beta*min + (1-o.Beta)*sum/float64(len(mu))
}

// And is the Mamdani conjunction (min), provided for completeness and
// ablation experiments against OWA.
func And(mu ...float64) float64 {
	if len(mu) == 0 {
		return 0
	}
	min := mu[0]
	for _, m := range mu {
		if m < min {
			min = m
		}
	}
	return min
}

// Or is the Mamdani disjunction (max).
func Or(mu ...float64) float64 {
	max := 0.0
	for _, m := range mu {
		if m > max {
			max = m
		}
	}
	return max
}

// Product is the probabilistic conjunction.
func Product(mu ...float64) float64 {
	p := 1.0
	for _, m := range mu {
		p *= m
	}
	if len(mu) == 0 {
		return 0
	}
	return p
}
