// Quickstart: run the parallel tabu search on one of the paper's
// circuits through the public API, watch it converge, and print what it
// achieved.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
)

func main() {
	// One of the paper's four circuits (a synthetic stand-in with the
	// same size and connectivity statistics; see DESIGN.md §4).
	p, err := pts.PlacementBenchmark("c532")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %s\n\n", p.Name(), p.Describe())

	// 4 tabu search workers, 2 candidate-list workers each, on the
	// paper's 12 heterogeneous workstations (7 fast, 3 medium, 2 slow,
	// with background load) — all defaults except the CLW count. The
	// progress callback streams one line per master synchronization.
	res, err := pts.Solve(context.Background(), p,
		pts.WithWorkers(4, 2),
		pts.WithProgress(func(s pts.Snapshot) {
			fmt.Printf("  round %2d/%d  best %.4f  t=%.3fs\n",
				s.Round, s.Rounds, s.BestCost, s.Elapsed)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	d := res.Details.(pts.PlacementDetails)
	fmt.Printf("\ninitial cost   %.4f\n", res.InitialCost)
	fmt.Printf("best cost      %.4f (%.1f%% better)\n", res.BestCost, 100*res.Improvement())
	fmt.Printf("wirelength     %.0f slot units\n", d.Wirelength)
	fmt.Printf("critical path  %.2f ns\n", d.CriticalPath)
	fmt.Printf("layout width   %.0f units (widest row)\n", d.Area)
	fmt.Printf("virtual time   %.3f s on the 12-machine testbed\n", res.Elapsed)
}
