// QAP walkthrough: the tabu engine is problem-agnostic. This example
// runs it on the quadratic assignment problem — the domain where the
// diversification scheme the paper adopts (Kelly, Laguna, Glover [10])
// was originally studied — and verifies against a brute-force optimum
// on a tiny instance.
//
// Part 3 runs the full two-level parallel search on QAP through the
// public API — the same Solve call the placement examples use, proving
// the solver boundary is problem-agnostic.
//
//	go run ./examples/qap
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
	"pts/internal/qap"
	"pts/internal/tabu"
)

func main() {
	// Part 1: exactness check on a tiny instance.
	tiny := qap.Random(8, 4)
	opt := qap.BruteForceOptimum(tiny)
	st := qap.NewState(tiny, 1)
	s := tabu.NewSearch(st, tabu.Params{Tenure: 6, Trials: 12, Depth: 2, Seed: 2})
	s.Run(500)
	fmt.Printf("n=8 instance: brute-force optimum %.1f, tabu search found %.1f\n", opt, s.BestCost())
	if s.BestCost() <= opt+1e-9 {
		fmt.Println("=> optimum reached")
	}

	// Part 2: a larger instance, with and without diversification.
	ins := qap.Random(60, 9)
	run := func(diversify bool) float64 {
		st := qap.NewState(ins, 3)
		s := tabu.NewSearch(st, tabu.Params{Tenure: 12, Trials: 16, Depth: 3, Seed: 7})
		for round := 0; round < 10; round++ {
			if diversify {
				// Kelly-style kick within a rotating range, as the
				// paper's TSWs do at every global iteration.
				lo := int32(round % 6 * 10)
				s.Diversify(6, lo, lo+10)
			}
			s.Run(150)
		}
		return s.BestCost()
	}
	start := qap.NewState(ins, 3).Cost()
	plain := run(false)
	div := run(true)
	fmt.Printf("\nn=60 instance: initial %.0f\n", start)
	fmt.Printf("  without diversification: %.0f (%.1f%% better)\n", plain, 100*(start-plain)/start)
	fmt.Printf("  with    diversification: %.0f (%.1f%% better)\n", div, 100*(start-div)/start)

	// Part 3: the parallel engine on QAP, through the public API — the
	// identical Solve call that drives placement.
	res, err := pts.Solve(context.Background(), pts.RandomQAP(60, 9),
		pts.WithWorkers(4, 2),
		pts.WithIterations(10, 150),
		pts.WithTabu(12, 16, 3),
		pts.WithDiversification(6),
		pts.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel (4 TSWs x 2 CLWs): %.0f (%.1f%% better) in %.2fs virtual time\n",
		res.BestCost, 100*res.Improvement(), res.Elapsed)
	fmt.Printf("exact recheck: %.0f\n", res.Details.(pts.QAPDetails).Cost)
}
