package schedinst

import (
	"embed"
	"fmt"
	"sort"
)

// Embedded standard benchmark instances, so the scheduling workloads
// need no external files: SPMD problem construction (every process
// builds the problem from its own inputs) degenerates to "every binary
// carries the same instance bytes".
//
//go:embed instances/*.txt
var instancesFS embed.FS

// flowShopFiles and jobShopFiles name the embedded instances per
// family; the parser to apply is a property of the family, not the
// file.
var (
	flowShopFiles = map[string]string{
		"ta001": "instances/ta001.txt",
	}
	jobShopFiles = map[string]string{
		"ft06": "instances/ft06.txt",
		"ft10": "instances/ft10.txt",
		"la01": "instances/la01.txt",
	}
)

// FlowShopNames lists the embedded flow shop instances, sorted.
func FlowShopNames() []string { return sortedKeys(flowShopFiles) }

// JobShopNames lists the embedded job shop instances, sorted.
func JobShopNames() []string { return sortedKeys(jobShopFiles) }

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FlowShopByName parses the embedded Taillard instance with this name.
func FlowShopByName(name string) (*FlowShop, error) {
	path, ok := flowShopFiles[name]
	if !ok {
		return nil, fmt.Errorf("schedinst: unknown flow shop instance %q (have %v)", name, FlowShopNames())
	}
	f, err := instancesFS.Open(path)
	if err != nil {
		return nil, fmt.Errorf("schedinst: opening embedded %s: %w", path, err)
	}
	defer f.Close()
	return ParseTaillard(name, f)
}

// JobShopByName parses the embedded OR-Library instance with this name.
func JobShopByName(name string) (*JobShop, error) {
	path, ok := jobShopFiles[name]
	if !ok {
		return nil, fmt.Errorf("schedinst: unknown job shop instance %q (have %v)", name, JobShopNames())
	}
	f, err := instancesFS.Open(path)
	if err != nil {
		return nil, fmt.Errorf("schedinst: opening embedded %s: %w", path, err)
	}
	defer f.Close()
	return ParseORLib(name, f)
}
