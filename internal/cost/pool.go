package cost

import (
	"sync"

	"pts/internal/placement"
	"pts/internal/tabu"
)

// The per-CLW evaluation pool: a bounded set of persistent worker
// goroutines that shard one DeltaSwapBatch call across cores. Every
// candidate of a batch is a trial move against the same frozen
// placement — batch evaluation never mutates state — so candidates are
// independent by construction and a shard is just a contiguous index
// range: each worker runs the placement kernel and the relaxed fold
// over its range, writing disjoint output ranges.
//
// The pool exists only in relaxed mode (SetEvalWorkers is ignored by
// DeltaSwapBatch otherwise): sharding per se does not reorder any
// accumulation — each candidate's sums stay inside its shard — but the
// pool is only race-audited against the relaxed kernels and strict
// mode's contract is "the PR 7 single-threaded path, bit-identical",
// which a pool would dilute for no gain.
//
// Workers are persistent (started once by SetEvalWorkers, stopped by
// Close) because the hot path's zero-allocation contract rules out
// per-batch goroutine spawns: a go statement with a capturing closure
// allocates. Dispatch is a buffered channel of small value structs and
// a WaitGroup — none of which allocate in steady state.

// poolMinBatch is the smallest batch worth sharding; below it the
// dispatch overhead (channel round trips plus a WaitGroup wait)
// outweighs the overlap and DeltaSwapBatch runs the shard inline.
const poolMinBatch = 32

// poolSpan is one dispatched shard: a candidate index range [lo, hi).
type poolSpan struct{ lo, hi int }

// evalPool runs DeltaSwapBatch shards on persistent workers.
type evalPool struct {
	e       *Evaluator
	workers int
	work    chan poolSpan
	quit    chan struct{}
	wg      sync.WaitGroup

	// Per-batch context, written by run before any dispatch and read by
	// workers after receiving a span (the channel send orders the two).
	cands []tabu.SwapCand
	pc    []placement.SwapCand
	crit  []float64
	dLen  []float64
	dW    []float64
	area  []float64
	out   []float64
}

// newEvalPool starts `workers` persistent evaluation goroutines.
func newEvalPool(e *Evaluator, workers int) *evalPool {
	p := &evalPool{
		e:       e,
		workers: workers,
		work:    make(chan poolSpan, workers),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// worker processes shards until the pool closes.
func (p *evalPool) worker() {
	for {
		select {
		case <-p.quit:
			return
		case s := <-p.work:
			p.e.evalRange(p.cands, p.pc, p.crit, p.dLen, p.dW, p.area, p.out, s.lo, s.hi)
			p.wg.Done()
		}
	}
}

// run shards one batch across the workers and blocks until every shard
// completed. Shard size targets an even split per worker, capped at
// placement.MaxConcurrentBatch so the placement kernel stays race-free.
func (p *evalPool) run(cands []tabu.SwapCand, pc []placement.SwapCand, crit, dLen, dW, area, out []float64) {
	n := len(cands)
	shard := (n + p.workers - 1) / p.workers
	if shard > placement.MaxConcurrentBatch {
		shard = placement.MaxConcurrentBatch
	}
	p.cands, p.pc, p.crit = cands, pc, crit
	p.dLen, p.dW, p.area, p.out = dLen, dW, area, out
	spans := (n + shard - 1) / shard
	p.wg.Add(spans)
	for lo := 0; lo < n; lo += shard {
		hi := lo + shard
		if hi > n {
			hi = n
		}
		p.work <- poolSpan{lo: lo, hi: hi}
	}
	p.wg.Wait()
	p.cands, p.pc, p.crit = nil, nil, nil
	p.dLen, p.dW, p.area, p.out = nil, nil, nil, nil
}

// close stops the workers; idempotent via Evaluator.Close's nil-out.
func (p *evalPool) close() { close(p.quit) }
