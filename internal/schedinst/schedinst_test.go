package schedinst

import (
	"strings"
	"testing"
)

const taGood = `# comment line
3 2 999 50 40
1 2 3
4 5 6
`

func TestParseTaillardRoundTrip(t *testing.T) {
	ins, err := ParseTaillard("t", strings.NewReader(taGood))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Jobs != 3 || ins.Machines != 2 {
		t.Fatalf("dims %dx%d, want 3x2", ins.Jobs, ins.Machines)
	}
	if ins.Seed != 999 || ins.Upper != 50 || ins.Lower != 40 {
		t.Fatalf("header %d/%d/%d, want 999/50/40", ins.Seed, ins.Upper, ins.Lower)
	}
	want := [][]int{{1, 2, 3}, {4, 5, 6}}
	for i := range want {
		for j := range want[i] {
			if ins.Proc[i][j] != want[i][j] {
				t.Fatalf("Proc[%d][%d] = %d, want %d", i, j, ins.Proc[i][j], want[i][j])
			}
		}
	}
}

func TestParseTaillardBareHeader(t *testing.T) {
	ins, err := ParseTaillard("t", strings.NewReader("2 2\n1 2\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Seed != 0 || ins.Upper != 0 || ins.Lower != 0 {
		t.Fatal("bare header must leave the bounds zero")
	}
}

func TestParseTaillardMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"empty":             "",
		"truncated header":  "3",
		"truncated matrix":  "3 2\n1 2 3\n4 5\n",
		"negative duration": "3 2\n1 2 3\n4 -5 6\n",
		"non-integer":       "3 2\n1 2 3\n4 x 6\n",
		"zero jobs":         "0 2\n",
		"zero machines":     "3 0\n",
		"huge dims":         "99999999 2\n",
		"trailing garbage":  "3 2\n1 2 3\n4 5 6\n7\n",
		"inverted bounds":   "3 2 1 40 50\n1 2 3\n4 5 6\n",
	} {
		if _, err := ParseTaillard("t", strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

const orGood = `# comment line
2 2 9
0 5 1 7
1 4 0 6
`

func TestParseORLibRoundTrip(t *testing.T) {
	ins, err := ParseORLib("j", strings.NewReader(orGood))
	if err != nil {
		t.Fatal(err)
	}
	if ins.Jobs != 2 || ins.Machines != 2 || ins.Optimum != 9 {
		t.Fatalf("dims %dx%d opt %d, want 2x2 opt 9", ins.Jobs, ins.Machines, ins.Optimum)
	}
	if ins.Machine[0][0] != 0 || ins.Dur[0][0] != 5 || ins.Machine[1][0] != 1 || ins.Dur[1][1] != 6 {
		t.Fatalf("routing misparsed: %v %v", ins.Machine, ins.Dur)
	}
}

func TestParseORLibMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"empty":             "",
		"truncated header":  "2",
		"truncated rows":    "2 2\n0 5 1 7\n",
		"truncated pairs":   "2 2\n0 5 1 7\n1 4 0\n",
		"machine range":     "2 2\n0 5 2 7\n1 4 0 6\n",
		"repeated machine":  "2 2\n0 5 0 7\n1 4 0 6\n",
		"negative duration": "2 2\n0 5 1 -7\n1 4 0 6\n",
		"negative optimum":  "2 2 -1\n0 5 1 7\n1 4 0 6\n",
		"trailing garbage":  "2 2\n0 5 1 7\n1 4 0 6\n8\n",
	} {
		if _, err := ParseORLib("j", strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEmbeddedInstancesParse loads every embedded instance through its
// family's accessor, verifying the bytes baked into the binary always
// parse and carry the published dimensions.
func TestEmbeddedInstancesParse(t *testing.T) {
	wantFS := map[string][2]int{"ta001": {20, 5}}
	for _, name := range FlowShopNames() {
		ins, err := FlowShopByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d, ok := wantFS[name]; ok && (ins.Jobs != d[0] || ins.Machines != d[1]) {
			t.Fatalf("%s is %dx%d, want %dx%d", name, ins.Jobs, ins.Machines, d[0], d[1])
		}
	}
	wantJS := map[string][3]int{
		"ft06": {6, 6, 55},
		"ft10": {10, 10, 930},
		"la01": {10, 5, 666},
	}
	for _, name := range JobShopNames() {
		ins, err := JobShopByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, ok := wantJS[name]
		if !ok {
			continue
		}
		if ins.Jobs != d[0] || ins.Machines != d[1] || ins.Optimum != d[2] {
			t.Fatalf("%s is %dx%d opt %d, want %dx%d opt %d",
				name, ins.Jobs, ins.Machines, ins.Optimum, d[0], d[1], d[2])
		}
	}
	if _, err := FlowShopByName("nope"); err == nil {
		t.Error("unknown flow shop name accepted")
	}
	if _, err := JobShopByName("nope"); err == nil {
		t.Error("unknown job shop name accepted")
	}
}
