// Package flowshop implements the permutation flow shop scheduling
// problem (makespan objective) as a third domain for the tabu engine —
// the first whose delta evaluation is not O(1)-ish.
//
// A solution is one job sequence processed in the same order by every
// machine; the cost is the makespan of the induced schedule. The state
// keeps Taillard-style head and tail critical-path matrices: completion
// times of every operation under the current sequence (heads) and the
// longest path from every operation to the end of the schedule (tails).
// A candidate swap of positions a < b then needs the DP recomputed only
// over columns a..b — the unchanged suffix folds in through the tails,
// since every critical path crosses the column boundary b|b+1 on
// exactly one machine:
//
//	makespan' = max_i ( C'[i][b] + tail[i][b+1] )
//
// Both matrices depend only on the current sequence, so a whole
// candidate batch amortizes one O(nm) rebuild across all its
// evaluations — the incremental structure the batched CLW hot loop is
// designed to exploit. All schedule arithmetic is integral (int32,
// guarded by the instance parser), so the batched path is bit-identical
// to the scalar path by construction, with no floating-point
// accumulation-order discipline needed.
package flowshop

import (
	"fmt"

	"pts/internal/rng"
	"pts/internal/schedinst"
	"pts/internal/tabu"
)

// New validates a processing-time matrix (machine-major: proc[i][j] is
// job j's time on machine i) and wraps it as an instance.
func New(name string, proc [][]int) (*schedinst.FlowShop, error) {
	if len(proc) == 0 || len(proc[0]) == 0 {
		return nil, fmt.Errorf("flowshop: empty processing-time matrix")
	}
	ins := &schedinst.FlowShop{
		Name:     name,
		Jobs:     len(proc[0]),
		Machines: len(proc),
		Proc:     proc,
	}
	total := int64(0)
	for i, row := range proc {
		if len(row) != ins.Jobs {
			return nil, fmt.Errorf("flowshop: machine %d has %d entries, want %d", i, len(row), ins.Jobs)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("flowshop: negative processing time %d (job %d, machine %d)", v, j, i)
			}
			total += int64(v)
		}
	}
	if total > 1<<31-1 {
		return nil, fmt.Errorf("flowshop: total processing time %d overflows the schedule arithmetic", total)
	}
	return ins, nil
}

// Random generates a random instance with durations in [1, 100),
// deterministic in seed — the Taillard generation recipe, handy for
// fuzzing and brute-force oracles.
func Random(jobs, machines int, seed uint64) *schedinst.FlowShop {
	r := rng.New(rng.Derive(seed, "flowshop"))
	proc := make([][]int, machines)
	for i := range proc {
		row := make([]int, jobs)
		for j := range row {
			row[j] = 1 + r.Intn(99)
		}
		proc[i] = row
	}
	ins, err := New(fmt.Sprintf("fs%dx%d", jobs, machines), proc)
	if err != nil {
		panic(err) // unreachable: the generator respects the invariants
	}
	return ins
}

// Makespan evaluates a job sequence from scratch with the standard
// completion-time DP — the independent exact oracle the incremental
// state is tested against.
func Makespan(ins *schedinst.FlowShop, seq []int32) (int, error) {
	if err := checkPerm(seq, ins.Jobs); err != nil {
		return 0, err
	}
	c := make([]int, ins.Machines)
	for _, job := range seq {
		prev := 0
		for i := 0; i < ins.Machines; i++ {
			if prev > c[i] {
				c[i] = prev
			}
			c[i] += ins.Proc[i][job]
			prev = c[i]
		}
	}
	return c[ins.Machines-1], nil
}

// LowerBound is the classic machine-based makespan lower bound: for
// each machine, its total load plus the smallest possible head and tail
// around it; and no schedule beats the longest single job either.
func LowerBound(ins *schedinst.FlowShop) int {
	lb := 0
	for i := 0; i < ins.Machines; i++ {
		load, minHead, minTail := 0, -1, -1
		for j := 0; j < ins.Jobs; j++ {
			load += ins.Proc[i][j]
			head, tail := 0, 0
			for k := 0; k < i; k++ {
				head += ins.Proc[k][j]
			}
			for k := i + 1; k < ins.Machines; k++ {
				tail += ins.Proc[k][j]
			}
			if minHead < 0 || head < minHead {
				minHead = head
			}
			if minTail < 0 || tail < minTail {
				minTail = tail
			}
		}
		if v := load + minHead + minTail; v > lb {
			lb = v
		}
	}
	for j := 0; j < ins.Jobs; j++ {
		total := 0
		for i := 0; i < ins.Machines; i++ {
			total += ins.Proc[i][j]
		}
		if total > lb {
			lb = total
		}
	}
	return lb
}

// BruteForceOptimum exhaustively finds the optimal makespan; limited to
// tiny instances (n <= 8), the test oracle.
func BruteForceOptimum(ins *schedinst.FlowShop) int {
	if ins.Jobs > 8 {
		panic("flowshop: brute force limited to 8 jobs")
	}
	seq := make([]int32, ins.Jobs)
	for i := range seq {
		seq[i] = int32(i)
	}
	best, _ := Makespan(ins, seq)
	var rec func(k int)
	rec = func(k int) {
		if k == len(seq) {
			if mk, _ := Makespan(ins, seq); mk < best {
				best = mk
			}
			return
		}
		for i := k; i < len(seq); i++ {
			seq[k], seq[i] = seq[i], seq[k]
			rec(k + 1)
			seq[k], seq[i] = seq[i], seq[k]
		}
	}
	rec(0)
	return best
}

// State is a mutable job sequence implementing the tabu engine's
// Problem interface plus the batched evaluation boundary. Element
// indices are sequence positions; ApplySwap(a, b) exchanges the jobs at
// positions a and b.
type State struct {
	ins  *schedinst.FlowShop
	n, m int32
	// proc is the machine-major flat copy of the processing times:
	// proc[i*n+j] is job j's time on machine i.
	proc []int32
	// seq[pos] is the job at sequence position pos.
	seq      []int32
	makespan int32
	// head[i*n+p]: completion time of the op at (machine i, position p)
	// under seq. tail[i*(n+1)+p]: longest path from the start of that op
	// to the schedule's end; the extra column p = n is zero so the
	// boundary fold needs no edge case. Both are rebuilt lazily after a
	// sequence change — a whole candidate batch shares one rebuild.
	head, tail []int32
	cachesOK   bool
	// col is the m-length DP column scratch of the section recompute.
	col []int32
}

// NewState creates a state with a random sequence drawn from seed.
func NewState(ins *schedinst.FlowShop, seed uint64) *State {
	s := newState(ins)
	r := rng.New(rng.Derive(seed, "flowshop.state"))
	for i, v := range r.Perm(ins.Jobs) {
		s.seq[i] = int32(v)
	}
	s.recompute()
	return s
}

// NewStateAt creates a state positioned at the sequence snap,
// validating it is a permutation of the instance's size.
func NewStateAt(ins *schedinst.FlowShop, snap []int32) (*State, error) {
	s := newState(ins)
	if err := s.Restore(snap); err != nil {
		return nil, err
	}
	return s, nil
}

func newState(ins *schedinst.FlowShop) *State {
	n, m := int32(ins.Jobs), int32(ins.Machines)
	s := &State{
		ins: ins, n: n, m: m,
		proc: make([]int32, int(n)*int(m)),
		seq:  make([]int32, n),
		head: make([]int32, int(n)*int(m)),
		tail: make([]int32, int(n+1)*int(m)),
		col:  make([]int32, m),
	}
	for i := 0; i < ins.Machines; i++ {
		for j := 0; j < ins.Jobs; j++ {
			s.proc[i*int(n)+j] = int32(ins.Proc[i][j])
		}
	}
	return s
}

// Instance returns the underlying instance.
func (s *State) Instance() *schedinst.FlowShop { return s.ins }

// Cost returns the current makespan. Integral by construction, so the
// float64 view is exact.
func (s *State) Cost() float64 { return float64(s.makespan) }

// Makespan returns the current makespan as the integer it is.
func (s *State) Makespan() int { return int(s.makespan) }

// Size returns the number of sequence positions.
func (s *State) Size() int32 { return s.n }

// recompute rebuilds the makespan and both critical-path matrices from
// the sequence, in O(nm).
func (s *State) recompute() {
	n, m := s.n, s.m
	// Heads: C[i][p] = max(C[i-1][p], C[i][p-1]) + proc[i][seq[p]].
	for i := int32(0); i < m; i++ {
		row := s.head[i*n : (i+1)*n]
		var up []int32
		if i > 0 {
			up = s.head[(i-1)*n : i*n]
		}
		left := int32(0)
		for p := int32(0); p < n; p++ {
			c := left
			if up != nil && up[p] > c {
				c = up[p]
			}
			c += s.proc[i*n+s.seq[p]]
			row[p] = c
			left = c
		}
	}
	s.makespan = s.head[(m-1)*n+n-1]
	// Tails: Q[i][p] = max(Q[i+1][p], Q[i][p+1]) + proc[i][seq[p]],
	// with the p = n column fixed at zero.
	w := n + 1
	for i := m - 1; i >= 0; i-- {
		row := s.tail[i*w : (i+1)*w]
		row[n] = 0
		var down []int32
		if i < m-1 {
			down = s.tail[(i+1)*w : (i+2)*w]
		}
		right := int32(0)
		for p := n - 1; p >= 0; p-- {
			q := right
			if down != nil && down[p] > q {
				q = down[p]
			}
			q += s.proc[i*n+s.seq[p]]
			row[p] = q
			right = q
		}
	}
	s.cachesOK = true
}

// ensure rebuilds the critical-path matrices if a sequence change
// invalidated them.
func (s *State) ensure() {
	if !s.cachesOK {
		s.recompute()
	}
}

// makespanSwapped evaluates the makespan of the sequence with positions
// a < b exchanged: DP over columns a..b seeded from the head column
// a-1, folded into the unchanged suffix through the tail column b+1.
// O(m * (b - a + 1)); requires valid caches.
func (s *State) makespanSwapped(lo, hi int32) int32 {
	n, m, w := s.n, s.m, s.n+1
	col := s.col
	for i := int32(0); i < m; i++ {
		if lo > 0 {
			col[i] = s.head[i*n+lo-1]
		} else {
			col[i] = 0
		}
	}
	for p := lo; p <= hi; p++ {
		job := s.seq[p]
		switch p {
		case lo:
			job = s.seq[hi]
		case hi:
			job = s.seq[lo]
		}
		prev := int32(0)
		for i := int32(0); i < m; i++ {
			c := col[i]
			if prev > c {
				c = prev
			}
			c += s.proc[i*n+job]
			col[i] = c
			prev = c
		}
	}
	mk := int32(0)
	for i := int32(0); i < m; i++ {
		if v := col[i] + s.tail[i*w+hi+1]; v > mk {
			mk = v
		}
	}
	return mk
}

// DeltaSwap returns the exact makespan change of exchanging the jobs at
// positions a and b without applying it.
func (s *State) DeltaSwap(a, b int32) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	s.ensure()
	return float64(s.makespanSwapped(a, b) - s.makespan)
}

// DeltaSwapBatch evaluates a whole candidate batch in one call; out[i]
// is bit-for-bit what DeltaSwap(cands[i].A, cands[i].B) would return.
// Implements tabu.BatchEvaluator: one lazy O(nm) head/tail rebuild is
// amortized over the batch, then each candidate costs only its own
// O(m * span) section recompute — the incremental structure that makes
// a non-O(1)-delta workload viable in the batched hot loop.
func (s *State) DeltaSwapBatch(cands []tabu.SwapCand, out []float64) {
	s.ensure()
	for i, c := range cands {
		a, b := c.A, c.B
		if a == b {
			out[i] = 0
			continue
		}
		if a > b {
			a, b = b, a
		}
		out[i] = float64(s.makespanSwapped(a, b) - s.makespan)
	}
}

// ApplySwap exchanges the jobs at positions a and b and updates the
// makespan exactly; the critical-path matrices are rebuilt lazily at
// the next evaluation.
func (s *State) ApplySwap(a, b int32) {
	if a == b {
		return
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	s.ensure()
	s.makespan = s.makespanSwapped(lo, hi)
	s.seq[a], s.seq[b] = s.seq[b], s.seq[a]
	s.cachesOK = false
}

// Snapshot copies the current sequence.
func (s *State) Snapshot() []int32 { return append([]int32(nil), s.seq...) }

// SnapshotInto copies the current sequence into dst, reusing its
// storage when large enough; the allocation-free variant the parallel
// engine prefers.
func (s *State) SnapshotInto(dst []int32) []int32 {
	if cap(dst) < len(s.seq) {
		dst = make([]int32, len(s.seq))
	}
	dst = dst[:len(s.seq)]
	copy(dst, s.seq)
	return dst
}

// Restore replaces the sequence with a snapshot and recomputes the
// makespan exactly.
func (s *State) Restore(snap []int32) error {
	if err := checkPerm(snap, s.ins.Jobs); err != nil {
		return err
	}
	copy(s.seq, snap)
	s.recompute()
	return nil
}

// checkPerm validates that snap is a permutation of [0, n).
func checkPerm(snap []int32, n int) error {
	if len(snap) != n {
		return fmt.Errorf("flowshop: snapshot length %d != %d", len(snap), n)
	}
	seen := make([]bool, n)
	for _, v := range snap {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("flowshop: snapshot is not a permutation")
		}
		seen[v] = true
	}
	return nil
}
