// Package cost combines the three placement objectives — wirelength,
// timing, area — into the single fuzzy goal-directed cost the tabu search
// minimizes, with exact incremental evaluation of trial swaps.
//
// Objective values:
//
//   - Wirelength: total half-perimeter wirelength (placement.HPWL).
//   - Delay: the criticality-weighted interconnect delay surrogate
//     (timing.WeightedWireDelay). Gate delays are placement-independent
//     under cell swaps, so the surrogate captures exactly the part of the
//     critical path the search can change; criticalities are refreshed by
//     full STA at synchronization points (Refresh).
//   - Area: the width of the widest row (placement.MaxRowWidth).
//
// Goals and ceilings are derived from the initial solution: goal_i =
// GoalFrac_i × initial_i and ceiling_i = CeilingFrac_i × initial_i, per
// the fuzzy goal-directed search formulation the paper cites.
// Cost = 1 − OWA_β(μ_wl, μ_delay, μ_area) ∈ [0,1]; lower is better.
package cost

import (
	"fmt"

	"pts/internal/fuzzy"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/timing"
)

// Objectives holds one value per placement objective.
type Objectives struct {
	Wirelength float64
	Delay      float64
	Area       float64
}

// Config parameterizes the evaluator.
type Config struct {
	// GoalFrac scales the initial objective values into goals (μ = 1).
	GoalFrac Objectives
	// CeilingFrac scales the initial objective values into ceilings (μ = 0).
	CeilingFrac Objectives
	// Beta is the OWA and-likeness in [0,1].
	Beta float64
	// Timing configures the delay model.
	Timing timing.Config
}

// DefaultConfig returns the goal fractions used throughout the
// experiments: ambitious wirelength and delay goals, a modest area goal
// (swaps move little area), and a mostly-conjunctive OWA.
func DefaultConfig() Config {
	return Config{
		GoalFrac:    Objectives{Wirelength: 0.5, Delay: 0.6, Area: 0.85},
		CeilingFrac: Objectives{Wirelength: 1.2, Delay: 1.2, Area: 1.15},
		Beta:        0.65,
		Timing:      timing.DefaultConfig(),
	}
}

// Goals is the fuzzy goal set of a run. Every worker of a parallel
// search must score with the same goals or their costs are not
// comparable; the master derives Goals once from the initial solution
// and workers build evaluators with NewEvaluatorWithGoals.
type Goals struct {
	Wirelength fuzzy.Membership
	Delay      fuzzy.Membership
	Area       fuzzy.Membership
	Beta       float64
}

// Validate reports malformed goal sets.
func (g Goals) Validate() error {
	if err := g.Wirelength.Valid(); err != nil {
		return err
	}
	if err := g.Delay.Valid(); err != nil {
		return err
	}
	if err := g.Area.Valid(); err != nil {
		return err
	}
	return (fuzzy.OWA{Beta: g.Beta}).Valid()
}

// Evaluator maintains the fuzzy cost of one placement and evaluates
// swaps incrementally. Not safe for concurrent use; parallel workers
// clone it.
type Evaluator struct {
	p   *placement.Placement
	t   *timing.Analyzer
	owa fuzzy.OWA

	memWL, memDelay, memArea fuzzy.Membership

	cur  Objectives
	cost float64

	// batch holds reusable buffers for DeltaSwapBatch; like the rest of
	// the evaluator it is per-worker state (clones start with fresh,
	// empty scratch).
	batch batchScratch

	// relaxed selects the reassociated batch kernels (placement walk and
	// cost fold); scalar evaluation is strict in either mode. pool, when
	// non-nil and relaxed, shards batches across persistent workers.
	relaxed bool
	pool    *evalPool
}

// SetRelaxedAccumulation switches batch evaluation (DeltaSwapBatch and
// the placement batch kernel under it) between the strict
// bit-identity contract and the relaxed reassociated kernels. Relaxed
// results remain deterministic — same inputs, same outputs — but may
// differ from the scalar path in final-ulp rounding. Scalar SwapDelta /
// ApplySwap always stay strict, so committed trajectories evaluate
// moves the same way on every worker regardless of who scored them.
func (e *Evaluator) SetRelaxedAccumulation(on bool) {
	e.relaxed = on
	e.p.SetRelaxedAccumulation(on)
}

// RelaxedAccumulation reports the batch accumulation mode.
func (e *Evaluator) RelaxedAccumulation() bool { return e.relaxed }

// SetEvalWorkers sets the size of the batch evaluation pool: workers > 1
// starts that many persistent goroutines sharding each DeltaSwapBatch
// call, anything lower tears the pool down. The pool only engages in
// relaxed mode (see pool.go); callers owning a pooled evaluator must
// Close it when done.
func (e *Evaluator) SetEvalWorkers(workers int) {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
	if workers > 1 {
		e.pool = newEvalPool(e, workers)
	}
}

// EvalWorkers returns the configured evaluation pool size (0 when the
// pool is off).
func (e *Evaluator) EvalWorkers() int {
	if e.pool == nil {
		return 0
	}
	return e.pool.workers
}

// Close releases the evaluation pool's goroutines, if any. Safe to call
// multiple times and on evaluators that never had a pool.
func (e *Evaluator) Close() { e.SetEvalWorkers(0) }

// NewEvaluator builds an evaluator over p, deriving goals and ceilings
// from p's current (initial) objective values. It runs one full timing
// analysis to seed net criticalities.
func NewEvaluator(p *placement.Placement, cfg Config) (*Evaluator, error) {
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("cost: beta %v outside [0,1]", cfg.Beta)
	}
	e := &Evaluator{
		p:   p,
		t:   timing.New(p.Netlist(), cfg.Timing),
		owa: fuzzy.OWA{Beta: cfg.Beta},
	}
	e.t.Analyze(p)
	init := Objectives{
		Wirelength: p.HPWL(),
		Delay:      e.t.WeightedWireDelay(p),
		Area:       float64(p.MaxRowWidth()),
	}
	mk := func(v, gf, cf float64) (fuzzy.Membership, error) {
		// Degenerate objectives (e.g. zero wirelength on a one-net
		// circuit) get a unit-width band so membership stays defined.
		if v <= 0 {
			v = 1
		}
		m := fuzzy.Membership{Goal: gf * v, Ceiling: cf * v}
		return m, m.Valid()
	}
	var err error
	if e.memWL, err = mk(init.Wirelength, cfg.GoalFrac.Wirelength, cfg.CeilingFrac.Wirelength); err != nil {
		return nil, err
	}
	if e.memDelay, err = mk(init.Delay, cfg.GoalFrac.Delay, cfg.CeilingFrac.Delay); err != nil {
		return nil, err
	}
	if e.memArea, err = mk(init.Area, cfg.GoalFrac.Area, cfg.CeilingFrac.Area); err != nil {
		return nil, err
	}
	e.cur = init
	e.cost = e.CostOf(init)
	return e, nil
}

// GoalSet returns the evaluator's goals for sharing with other workers.
func (e *Evaluator) GoalSet() Goals {
	return Goals{
		Wirelength: e.memWL,
		Delay:      e.memDelay,
		Area:       e.memArea,
		Beta:       e.owa.Beta,
	}
}

// NewEvaluatorWithGoals builds an evaluator over p scoring against an
// externally supplied goal set (instead of deriving goals from p's
// current state). It runs one full timing analysis to seed net
// criticalities.
func NewEvaluatorWithGoals(p *placement.Placement, tcfg timing.Config, g Goals) (*Evaluator, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{
		p:        p,
		t:        timing.New(p.Netlist(), tcfg),
		owa:      fuzzy.OWA{Beta: g.Beta},
		memWL:    g.Wirelength,
		memDelay: g.Delay,
		memArea:  g.Area,
	}
	e.Refresh()
	return e, nil
}

// Placement returns the underlying placement.
func (e *Evaluator) Placement() *placement.Placement { return e.p }

// Timing returns the underlying analyzer (for exact CPD reporting).
func (e *Evaluator) Timing() *timing.Analyzer { return e.t }

// Objectives returns the maintained objective values.
func (e *Evaluator) Objectives() Objectives { return e.cur }

// Cost returns the maintained fuzzy cost in [0,1]; lower is better.
func (e *Evaluator) Cost() float64 { return e.cost }

// CostOf evaluates the fuzzy cost of an arbitrary objective vector using
// this evaluator's goals.
func (e *Evaluator) CostOf(o Objectives) float64 {
	mu := e.owa.Combine(
		e.memWL.Eval(o.Wirelength),
		e.memDelay.Eval(o.Delay),
		e.memArea.Eval(o.Area),
	)
	return 1 - mu
}

// swapObjectives computes the objective vector that would result from
// swapping cells a and b, in one allocation-free pass over the affected
// nets: the placement folds the plain and criticality-weighted HPWL
// deltas together, and the area objective reads the top-two row cache.
func (e *Evaluator) swapObjectives(a, b netlist.CellID) Objectives {
	dWL, dCrit := e.p.SwapDeltaWeighted(a, b, e.t.Criticalities())
	return Objectives{
		Wirelength: e.cur.Wirelength + dWL,
		Delay:      e.cur.Delay + e.t.Config().WireDelayPerUnit*dCrit,
		Area:       float64(e.p.MaxRowWidthAfterSwap(a, b)),
	}
}

// SwapDelta returns the cost change if cells a and b exchanged
// positions, without modifying anything.
func (e *Evaluator) SwapDelta(a, b netlist.CellID) float64 {
	if a == b {
		return 0
	}
	return e.CostOf(e.swapObjectives(a, b)) - e.cost
}

// moveObjectives computes the objective vector that would result from
// relocating cell c to the empty slot at `to`; the allocation-free
// relocation counterpart of swapObjectives.
func (e *Evaluator) moveObjectives(c netlist.CellID, to placement.Pos) Objectives {
	dWL, dCrit := e.p.MoveDeltaWeighted(c, to, e.t.Criticalities())
	return Objectives{
		Wirelength: e.cur.Wirelength + dWL,
		Delay:      e.cur.Delay + e.t.Config().WireDelayPerUnit*dCrit,
		Area:       float64(e.p.MaxRowWidthAfterMove(c, to)),
	}
}

// MoveDelta returns the cost change if cell c relocated to the empty
// slot at `to`, without modifying anything. The slot must be empty.
func (e *Evaluator) MoveDelta(c netlist.CellID, to placement.Pos) float64 {
	return e.CostOf(e.moveObjectives(c, to)) - e.cost
}

// ApplyMove commits the relocation of cell c to the empty slot at `to`
// and updates the maintained objectives and cost incrementally.
func (e *Evaluator) ApplyMove(c netlist.CellID, to placement.Pos) error {
	o := e.moveObjectives(c, to)
	if err := e.p.MoveToSlot(c, to); err != nil {
		return err
	}
	e.cur = o
	e.cost = e.CostOf(o)
	return nil
}

// ApplySwap commits the swap of cells a and b and updates the maintained
// objectives and cost incrementally. Swaps are involutions: applying the
// same pair again restores the previous solution (and, bar float
// round-off that Refresh clears, the previous cost).
func (e *Evaluator) ApplySwap(a, b netlist.CellID) {
	if a == b {
		return
	}
	o := e.swapObjectives(a, b)
	e.p.SwapCells(a, b)
	e.cur = o
	e.cost = e.CostOf(o)
}

// Refresh reruns full timing analysis (updating net criticalities) and
// recomputes the objectives and cost from scratch, clearing any
// incremental drift. Call at search synchronization points; the cost may
// step slightly as criticalities move.
func (e *Evaluator) Refresh() {
	e.t.Analyze(e.p)
	e.cur = Objectives{
		Wirelength: e.p.HPWL(),
		Delay:      e.t.WeightedWireDelay(e.p),
		Area:       float64(e.p.MaxRowWidth()),
	}
	e.cost = e.CostOf(e.cur)
}

// CriticalPath returns the exact critical path delay from the last
// Refresh (or construction).
func (e *Evaluator) CriticalPath() float64 { return e.t.CriticalPath() }

// ExportPerm returns the current solution as a slot permutation.
func (e *Evaluator) ExportPerm() []int32 { return e.p.Export() }

// ExportPermInto writes the current solution into dst (reusing its
// storage when large enough) and returns it.
func (e *Evaluator) ExportPermInto(dst []int32) []int32 { return e.p.ExportInto(dst) }

// ImportPerm replaces the current solution and refreshes everything.
func (e *Evaluator) ImportPerm(perm []int32) error {
	if err := e.p.Import(perm); err != nil {
		return err
	}
	e.Refresh()
	return nil
}

// Clone returns an independent evaluator over a cloned placement with
// identical goals, criticalities and maintained values.
func (e *Evaluator) Clone() *Evaluator {
	p2 := e.p.Clone()
	t2 := timing.New(p2.Netlist(), e.t.Config())
	copy(t2.Criticalities(), e.t.Criticalities())
	return &Evaluator{
		p:        p2,
		t:        t2,
		owa:      e.owa,
		memWL:    e.memWL,
		memDelay: e.memDelay,
		memArea:  e.memArea,
		cur:      e.cur,
		cost:     e.cost,
		relaxed:  e.relaxed, // mode travels with the clone; pools do not
	}
}

// NumCells returns the number of movable cells, the move-space dimension
// the tabu engine partitions among workers.
func (e *Evaluator) NumCells() int32 { return int32(e.p.Netlist().NumCells()) }
