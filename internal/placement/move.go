package placement

import (
	"fmt"
	"math/rand"

	"pts/internal/netlist"
)

// This file adds the second move kind row-based placers use alongside
// pairwise swaps: relocating a cell into an empty slot. The paper's
// search uses swaps only; relocation exists for layouts with spare
// capacity (utilization < 1) and for the density analysis below.

// EmptySlots returns the linear indexes of all unoccupied slots.
func (p *Placement) EmptySlots() []int {
	var out []int
	for i, c := range p.slot {
		if c == netlist.None {
			out = append(out, i)
		}
	}
	return out
}

// RandomEmptySlot returns a uniformly random empty slot, or -1 when the
// grid is full. O(slots) worst case but typically a few probes at the
// utilizations in use.
func (p *Placement) RandomEmptySlot(r *rand.Rand) int {
	free := p.L.Slots() - p.nl.NumCells()
	if free <= 0 {
		return -1
	}
	// Rejection sampling: expected probes = slots/free.
	for {
		i := r.Intn(p.L.Slots())
		if p.slot[i] == netlist.None {
			return i
		}
	}
}

// MoveDeltaWeighted returns the total HPWL change and the w-weighted
// HPWL change if cell c relocated to `to`, without modifying the
// placement and without allocating. Pass w == nil to skip the weighted
// sum. O(1) per net of c (see netBox.trialDelta).
func (p *Placement) MoveDeltaWeighted(c netlist.CellID, to Pos, w []float64) (dLen, dWeighted float64) {
	if p.boxes16 != nil {
		return moveDeltaWeighted(p, p.boxes16, c, to, w)
	}
	return moveDeltaWeighted(p, p.boxes, c, to, w)
}

// moveDeltaWeighted is MoveDeltaWeighted's generic body over one box
// layout.
func moveDeltaWeighted[C coord](p *Placement, boxes []netBoxT[C], c netlist.CellID, to Pos, w []float64) (dLen, dWeighted float64) {
	from := p.pos[c]
	if from == to {
		return 0, 0
	}
	var di int32
	for _, n := range p.nl.CellNets(c) {
		if d := trialDelta(&boxes[n], from, to); d != 0 {
			di += d
			if w != nil {
				dWeighted += w[n] * float64(d)
			}
		}
	}
	return float64(di), dWeighted
}

// HPWLDeltaMove returns the total HPWL change if cell c moved to the
// empty slot at `to`, without modifying the placement.
func (p *Placement) HPWLDeltaMove(c netlist.CellID, to Pos) (float64, error) {
	if p.CellAt(to) != netlist.None {
		return 0, fmt.Errorf("placement: slot %v is occupied", to)
	}
	d, _ := p.MoveDeltaWeighted(c, to, nil)
	return d, nil
}

// VisitMoveDeltas calls fn for every net whose bounding box changes if
// cell c moved to the (empty) slot at `to`, with old and new
// half-perimeters; the relocation counterpart of VisitSwapDeltas.
func (p *Placement) VisitMoveDeltas(c netlist.CellID, to Pos, fn func(n netlist.NetID, oldLen, newLen float64)) {
	from := p.pos[c]
	if from == to {
		return
	}
	for _, n := range p.nl.CellNets(c) {
		b := p.boxAt(n)
		if d := trialDelta(&b, from, to); d != 0 {
			old := boxLength(&b)
			fn(n, old, old+float64(d))
		}
	}
}

// MaxRowWidthAfterMove returns the area objective's value if cell c
// moved to slot `to`, without modifying the placement. O(1) via the
// top-two row cache.
func (p *Placement) MaxRowWidthAfterMove(c netlist.CellID, to Pos) int {
	from := p.pos[c]
	if from.Row == to.Row {
		return p.top1W
	}
	w := p.nl.Cells[c].Width
	na := p.rowWidth[from.Row] - w
	nb := p.rowWidth[to.Row] + w
	m := p.topExcluding(from.Row, to.Row)
	if na > m {
		m = na
	}
	if nb > m {
		m = nb
	}
	return m
}

// MoveToSlot relocates cell c into an empty slot, updating all
// maintained quantities incrementally.
func (p *Placement) MoveToSlot(c netlist.CellID, to Pos) error {
	if p.CellAt(to) != netlist.None {
		return fmt.Errorf("placement: slot %v is occupied", to)
	}
	from := p.pos[c]
	if from == to {
		return nil
	}
	if p.boxes16 != nil {
		for _, n := range p.nl.CellNets(c) {
			commitPinMove(p, p.boxes16, n, from, to)
		}
	} else {
		for _, n := range p.nl.CellNets(c) {
			commitPinMove(p, p.boxes, n, from, to)
		}
	}
	if from.Row != to.Row {
		w := p.nl.Cells[c].Width
		p.updateRowWidth(from.Row, -w)
		p.updateRowWidth(to.Row, w)
	}
	p.pos[c] = to
	p.slot[p.L.SlotIndex(from)] = netlist.None
	p.slot[p.L.SlotIndex(to)] = c
	p.flushRescans()
	return nil
}

// PinDensity returns a Rows x Cols grid counting, per slot, the pins of
// nets whose bounding box covers that slot — a congestion estimate used
// for reports and the density example.
func (p *Placement) PinDensity() [][]float64 {
	grid := make([][]float64, p.L.Rows)
	for r := range grid {
		grid[r] = make([]float64, p.L.Cols)
	}
	for n := 0; n < p.nl.NumNets(); n++ {
		b := p.boxAt(netlist.NetID(n))
		area := float64((b.maxX - b.minX + 1) * (b.maxY - b.minY + 1))
		weight := float64(p.nl.Nets[n].Degree()) / area
		for r := b.minY; r <= b.maxY; r++ {
			for c := b.minX; c <= b.maxX; c++ {
				grid[r][c] += weight
			}
		}
	}
	return grid
}
