package pts

import (
	"fmt"

	"pts/internal/qap"
	"pts/internal/rng"
)

// QAPProblem is the quadratic assignment problem — assign n facilities
// to n locations minimizing total flow × distance — as a second
// built-in workload. It implements Problem over the same engine the
// placement runs on, which is exactly how the Kelly–Laguna–Glover
// diversification the paper adopts was originally studied.
type QAPProblem struct {
	ins *qap.Instance
}

// RandomQAP generates a random symmetric instance of size n with
// entries in [1, 100), deterministic in seed.
func RandomQAP(n int, seed uint64) *QAPProblem {
	return &QAPProblem{ins: qap.Random(n, seed)}
}

// NewQAP builds an instance from explicit location-to-location distance
// and facility-to-facility flow matrices (square, equal size,
// nonnegative).
func NewQAP(dist, flow [][]float64) (*QAPProblem, error) {
	ins, err := qap.New(dist, flow)
	if err != nil {
		return nil, err
	}
	return &QAPProblem{ins: ins}, nil
}

// Name identifies the instance by its size.
func (q *QAPProblem) Name() string { return fmt.Sprintf("qap%d", q.ins.N) }

// Size returns the number of facilities.
func (q *QAPProblem) Size() int32 { return int32(q.ins.N) }

// Initial derives the run's shared initial assignment from seed.
func (q *QAPProblem) Initial(seed uint64) (State, error) {
	return qap.NewState(q.ins, rng.Derive(seed, "pts.qap.initial")), nil
}

// NewState builds an independent assignment state positioned at snap.
func (q *QAPProblem) NewState(snap []int32) (State, error) {
	return qap.NewStateAt(q.ins, snap)
}

// Details recomputes the exact cost of a solution from scratch and
// returns a QAPDetails.
func (q *QAPProblem) Details(best []int32) (any, error) {
	if len(best) != q.ins.N {
		return nil, fmt.Errorf("qap: solution length %d != %d", len(best), q.ins.N)
	}
	return QAPDetails{Cost: q.ins.Cost(best)}, nil
}

// Cost evaluates an assignment exactly: perm[i] is the location of
// facility i.
func (q *QAPProblem) Cost(perm []int32) float64 { return q.ins.Cost(perm) }

// BruteForceOptimum exhaustively finds the optimal cost; limited to
// tiny instances (n <= 10), the test oracle.
func (q *QAPProblem) BruteForceOptimum() float64 { return qap.BruteForceOptimum(q.ins) }

// QAPDetails is the exact scoring of a QAP solution.
type QAPDetails struct {
	// Cost is the assignment cost recomputed from scratch.
	Cost float64
}
