package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/pvm/nettrans"
)

// Recovery benchmark: fold-only degradation (PR-4 behavior,
// WithRespawn(false)) versus full recovery (the default) when a
// CLW-hosting worker process is killed mid-run. Both sides run the
// identical fixed-seed adaptive search over a real loopback-TCP
// cluster — one master process plus three single-slot worker daemons
// (emulated as goroutines with independent connections) — with
// WorkScale speed emulation so modeled work costs genuine wall time.
// The doomed worker's connection is severed once the configured round
// is reported, exactly like the CI e2e kill. Fold-only finishes the
// budget on two CLW hosts; recovery respawns a replacement onto
// surviving capacity and finishes on three.

// RecoveryOpts configures the -recovery scenario.
type RecoveryOpts struct {
	// Context bounds the runs (nil = background).
	Context context.Context
	// Circuit names the benchmark circuit (default "c532" — large
	// enough that the fuzzy cost does not bottom out at this budget,
	// so the final-cost comparison stays informative).
	Circuit string
	// WorkScale is the wall-seconds-per-modeled-second emulation factor
	// (default 30).
	WorkScale float64
	// GlobalIters and LocalIters set the iteration budget (defaults 6
	// and 20 — identical for both sides, by construction).
	GlobalIters, LocalIters int
	// KillRound is the progress round whose report triggers the kill
	// (default 2).
	KillRound int
	// Scale multiplies the local iteration budget (ptsbench -scale);
	// <= 0 means 1.0.
	Scale float64
	// Seed fixes the run seed (default 7).
	Seed uint64
}

func (o RecoveryOpts) withDefaults() RecoveryOpts {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Circuit == "" {
		o.Circuit = "c532"
	}
	if o.WorkScale <= 0 {
		o.WorkScale = 30
	}
	if o.GlobalIters <= 0 {
		o.GlobalIters = 6
	}
	if o.LocalIters <= 0 {
		o.LocalIters = 20
	}
	if o.KillRound <= 0 {
		o.KillRound = 2
	}
	if o.Scale > 0 && o.Scale != 1 {
		o.LocalIters = int(float64(o.LocalIters)*o.Scale + 0.5)
		if o.LocalIters < 1 {
			o.LocalIters = 1
		}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// RecoverySide is one side (fold-only or respawn) of the comparison.
type RecoverySide struct {
	WallSeconds      float64 `json:"wall_seconds"`
	BestCost         float64 `json:"best_cost"`
	Rounds           int     `json:"rounds"`
	Interrupted      bool    `json:"interrupted"`
	WorkersLost      int64   `json:"workers_lost"`
	WorkersRespawned int64   `json:"workers_respawned"`
	Rebalances       int64   `json:"rebalances"`
}

// RecoveryReport is the BENCH_recovery.json schema.
type RecoveryReport struct {
	Note        string `json:"note"`
	GoVersion   string `json:"go_version"`
	GeneratedAt string `json:"generated_at"`

	Circuit     string  `json:"circuit"`
	WorkScale   float64 `json:"work_scale"`
	GlobalIters int     `json:"global_iters"`
	LocalIters  int     `json:"local_iters"`
	KillRound   int     `json:"kill_round"`
	Seed        uint64  `json:"seed"`

	FoldOnly RecoverySide `json:"fold_only"`
	Respawn  RecoverySide `json:"respawn"`
	// Speedup is fold-only wall time over respawn wall time at the
	// equal iteration budget: > 1 means restoring the lost parallelism
	// beat limping home on the survivors.
	Speedup float64 `json:"speedup"`
}

// Recovery runs the fold-only-vs-respawn comparison and returns the
// report.
func Recovery(o RecoveryOpts) (*RecoveryReport, error) {
	o = o.withDefaults()
	nl, err := netlist.Benchmark(o.Circuit)
	if err != nil {
		return nil, err
	}

	run := func(disableRespawn bool) (RecoverySide, error) {
		cfg := core.DefaultConfig()
		cfg.TSWs, cfg.CLWs = 1, 3
		cfg.GlobalIters, cfg.LocalIters = o.GlobalIters, o.LocalIters
		cfg.Seed = o.Seed
		// Full collection and one wide sampling step per candidate, like
		// the hetero scenario: each iteration's critical path is the
		// per-step trial budget the scheduler balances.
		cfg.HalfSync = false
		cfg.Trials, cfg.Depth = 64, 1
		cfg.Adaptive = true
		cfg.DisableRespawn = disableRespawn
		cfg.WorkScale = o.WorkScale

		master, err := nettrans.Listen(nettrans.MasterConfig{Addr: "127.0.0.1:0", Workers: 3})
		if err != nil {
			return RecoverySide{}, err
		}
		defer master.Close()
		cfg.Transport = master

		// Three single-slot workers joined in order (the ring: TSW on
		// w1, CLWs on w2, w3 and the master process); w3 — hosting one
		// CLW — is the doomed one.
		newProblem := func() core.Problem {
			return cost.NewPlacementProblem(nl, cfg.Utilization, cfg.Cost)
		}
		doomedCtx, kill := context.WithCancel(o.Context)
		defer kill()
		workerErrs := make(chan error, 3)
		for i := 1; i <= 3; i++ {
			wctx := o.Context
			if i == 3 {
				wctx = doomedCtx
			}
			name := fmt.Sprintf("r%d", i)
			go func(ctx context.Context, name string) {
				workerErrs <- core.ServeWorker(ctx, newProblem(), core.WorkerOptions{
					Addr: master.Addr(), Name: name, Jobs: 1,
				}, nil)
			}(wctx, name)
			// Join order fixes slot assignment; wait for each registration.
			deadline := time.Now().Add(10 * time.Second)
			for len(master.Nodes()) < i {
				if time.Now().After(deadline) {
					return RecoverySide{}, fmt.Errorf("bench: only %d of %d workers joined", len(master.Nodes()), i)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}

		killed := false
		cfg.Progress = func(s core.Snapshot) {
			if s.Round == o.KillRound && !killed {
				killed = true
				kill()
			}
		}

		res, err := core.RunProblem(o.Context, newProblem(), cluster.Homogeneous(4, 1), cfg, core.Real)
		if err != nil {
			return RecoverySide{}, err
		}
		for i := 0; i < 3; i++ {
			<-workerErrs // the doomed worker's error is expected; drain all
		}
		return RecoverySide{
			WallSeconds:      res.Elapsed,
			BestCost:         res.BestCost,
			Rounds:           res.Rounds,
			Interrupted:      res.Interrupted,
			WorkersLost:      res.Stats.WorkersLost,
			WorkersRespawned: res.Stats.WorkersRespawned,
			Rebalances:       res.Stats.Rebalances,
		}, nil
	}

	rep := &RecoveryReport{
		Note:        "worker-loss recovery: fold-only (PR 4) vs respawn at equal iteration budget, one CLW host killed mid-run; regenerate with: ptsbench -recovery",
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Circuit:     o.Circuit,
		WorkScale:   o.WorkScale,
		GlobalIters: o.GlobalIters,
		LocalIters:  o.LocalIters,
		KillRound:   o.KillRound,
		Seed:        o.Seed,
	}
	if rep.FoldOnly, err = run(true); err != nil {
		return nil, err
	}
	if rep.Respawn, err = run(false); err != nil {
		return nil, err
	}
	if rep.Respawn.WallSeconds > 0 {
		rep.Speedup = rep.FoldOnly.WallSeconds / rep.Respawn.WallSeconds
	}
	return rep, nil
}

// RenderRecovery formats the report for the terminal.
func RenderRecovery(rep *RecoveryReport) string {
	out := fmt.Sprintf("recovery scenario: %s, 1 TSW x 3 CLW hosts, kill one CLW host at round %d/%d, workscale %.0f\n",
		rep.Circuit, rep.KillRound, rep.GlobalIters, rep.WorkScale)
	side := func(name string, s RecoverySide) string {
		return fmt.Sprintf("  %-9s %8.3fs wall   best %.4f   lost %d respawned %d (%d rebalances)\n",
			name, s.WallSeconds, s.BestCost, s.WorkersLost, s.WorkersRespawned, s.Rebalances)
	}
	out += side("fold-only", rep.FoldOnly)
	out += side("respawn", rep.Respawn)
	out += fmt.Sprintf("  speedup   %.2fx wall time from restoring parallelism at equal budget\n", rep.Speedup)
	return out
}

// WriteRecovery writes the report as <dir>/BENCH_recovery.json.
func WriteRecovery(rep *RecoveryReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_recovery.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
