// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, online accumulators, data
// series, and best-cost-versus-time traces with the "time to reach
// quality x" query that the paper's speedup definition needs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or NaN for an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies xs and leaves the
// input unmodified. Returns NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Accumulator computes running mean and variance using Welford's
// algorithm. The zero value is an empty accumulator ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased running variance (NaN when n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample seen (NaN when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest sample seen (NaN when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// Summary is a compact printable digest of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Med, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Med:  Median(xs),
		Max:  Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Med, s.Max)
}

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, ordered by X, used for figure
// data (e.g. quality versus number of workers).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Ys returns the Y values of the series in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Xs returns the X values of the series in order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}
