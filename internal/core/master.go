package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"pts/internal/pvm"
	"pts/internal/sched"
	"pts/internal/stats"
	"pts/internal/tabu"
)

// masterState is what the master process writes back to RunProblem.
type masterState struct {
	bestCost    float64
	bestPerm    []int32
	trace       stats.Trace
	stats       WorkerStats
	rounds      int
	interrupted bool
}

// masterSnapshot is the master's durable run state — everything a
// restarted master needs to resume the run where the dead one left
// off. It is persisted (gob under "runs/<RunID>") at every resync
// barrier: the point where the TSW checkpoint ledger is freshest (one
// piggybacked checkpoint per report with the default cadence) and the
// incumbent best was just re-selected. Problem/Size/Seed fingerprint
// the run so a stale snapshot from different inputs is refused rather
// than resumed.
type masterSnapshot struct {
	Problem string
	Size    int32
	Seed    uint64
	// Round is the number of completed global iterations; the resumed
	// run continues with round index Round.
	Round    int
	BestCost float64
	BestPerm []int32
	BestTabu []tabu.Entry
	// Checkpoints is the recovery ledger: TSW index → latest
	// checkpoint. An entry with OK unset belongs to a TSW none ever
	// arrived from — it restarts from the global best instead. (A
	// value wrapper rather than a nil pointer: gob cannot encode nil
	// pointers inside a slice.)
	Checkpoints []snapCheckpoint
	// Latest carries each TSW's cumulative counters at snapshot time,
	// for stats continuity across the restart.
	Latest []WorkerStats
	// Lost and Respawned carry the recovery counters across restarts.
	Lost, Respawned int64
}

// snapCheckpoint is one TSW's slot in the persisted recovery ledger.
type snapCheckpoint struct {
	OK bool
	CK tswCheckpoint
}

// encodeSnapshot serializes a snapshot for the store.
func encodeSnapshot(snap *masterSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: encoding run snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeSnapshot deserializes a stored snapshot.
func decodeSnapshot(b []byte) (*masterSnapshot, error) {
	var snap masterSnapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding run snapshot: %w", err)
	}
	return &snap, nil
}

// persistSnapshot writes the run's durable state to the store at a
// resync barrier. Best-effort: a failing store degrades durability, not
// the run in flight — the previous snapshot (if any) stays valid.
func persistSnapshot(prob Problem, cfg Config, ts *tswSet, out *masterState, bestTabu []tabu.Entry) {
	if cfg.Store == nil {
		return
	}
	snap := &masterSnapshot{
		Problem:  prob.Name(),
		Size:     prob.Size(),
		Seed:     cfg.Seed,
		Round:    out.rounds,
		BestCost: out.bestCost,
		BestPerm: out.bestPerm,
		BestTabu: bestTabu,
		Latest:   make([]WorkerStats, cfg.TSWs),
	}
	if ts.rec != nil {
		snap.Checkpoints = make([]snapCheckpoint, len(ts.rec.cks))
		for i, ck := range ts.rec.cks {
			if ck != nil {
				snap.Checkpoints[i] = snapCheckpoint{OK: true, CK: *ck}
			}
		}
		snap.Lost, snap.Respawned = ts.rec.lost, ts.rec.respawned
	}
	for id, i := range ts.idx {
		if i < len(snap.Latest) {
			snap.Latest[i] = ts.latest[id]
		}
	}
	if b, err := encodeSnapshot(snap); err == nil {
		_ = cfg.Store.Put(cfg.runKey(), b)
	}
}

// masterRun is the master process body (paper Fig. 2): spawn the TSWs,
// give every one the same initial solution, then per global iteration
// collect their bests (half-sync in heterogeneous mode), select the
// overall best and broadcast it together with its tabu list.
//
// When the run's context is cancelled, the master finishes collecting
// the round in flight, skips the remaining rounds and proceeds straight
// to the shutdown handshake, so every worker drains cleanly and the
// best-so-far is preserved.
//
// With recovery enabled (adaptive runs, Config.respawn) the master is
// also the cluster's undertaker: it spawns replacement CLWs on live
// capacity when a TSW reports a loss (TagRespawn), remembers every
// TSW's latest checkpoint (piggybacked on TagBest, plus the spawn-time
// TagCheckpoint), watches the TSWs themselves, and resurrects a lost
// TSW from its checkpoint — re-attaching its surviving CLWs — so no
// single worker process is fatal to the run.
func masterRun(env pvm.Env, prob Problem, cfg Config,
	initPerm []int32, initCost float64, snap *masterSnapshot, out *masterState) {

	out.bestCost = initCost
	out.bestPerm = append([]int32(nil), initPerm...)
	// raw gathers every incumbent improvement any TSW observed; the
	// monotone envelope becomes the run's trace at the end.
	var raw []improvement
	raw = append(raw, improvement{Time: env.Now(), Cost: initCost})

	var bestTabu []tabu.Entry
	startRound := 0
	if snap != nil {
		// Resuming from a persisted snapshot: adopt the incumbent and
		// continue the round count where the dead master stopped.
		startRound = snap.Round
		out.bestCost = snap.BestCost
		out.bestPerm = append(out.bestPerm[:0], snap.BestPerm...)
		out.rounds = snap.Round
		bestTabu = snap.BestTabu
		raw = append(raw, improvement{Time: env.Now(), Cost: snap.BestCost})
	}

	// The master occupies machine 0; workers go where the assignment
	// policy says.
	ts := &tswSet{
		env:    env,
		cfg:    cfg,
		ids:    make([]pvm.TaskID, cfg.TSWs),
		idx:    make(map[pvm.TaskID]int, cfg.TSWs),
		latest: make(map[pvm.TaskID]WorkerStats, cfg.TSWs),
	}
	if cfg.respawn() || cfg.durable() {
		ts.rec = newRecovery(env, prob, cfg)
		if snap != nil {
			// Seed the recovery ledger from the snapshot — marked Restart,
			// because the checkpointed CLW task IDs died with the old run: a
			// resumed TSW dying again before its first fresh checkpoint is
			// resurrected onto a fresh CLW set, never onto stale IDs.
			for i := range snap.Checkpoints {
				if i < len(ts.rec.cks) && snap.Checkpoints[i].OK {
					c := snap.Checkpoints[i].CK
					c.Restart = true
					ts.rec.cks[i] = &c
				}
			}
			ts.rec.lost = snap.Lost
			ts.rec.respawned = snap.Respawned
		}
	}
	resumed := make([]bool, cfg.TSWs)
	for i := 0; i < cfg.TSWs; i++ {
		var resume *tswCheckpoint
		if snap != nil && i < len(snap.Checkpoints) && snap.Checkpoints[i].OK {
			// This TSW restarts from its persisted checkpoint: fresh CLWs
			// (the old ones died with the old master), straight to the
			// verdict wait — its checkpointed round is already in the
			// snapshot's round count.
			ck := snap.Checkpoints[i].CK
			ck.Restart = true
			ck.SkipRound = true
			resume = &ck
			resumed[i] = true
		}
		rs := resume
		ts.ids[i] = env.SpawnSpec(fmt.Sprintf("tsw%d", i), cfg.tswMachine(i), pvm.Spec{
			Kind: taskKindTSW,
			Data: tswSpec{Master: env.Self(), Resume: rs},
			Fn: func(e pvm.Env) {
				tswRun(e, prob, cfg, env.Self(), rs)
			},
		})
		// Recovery: watch the TSWs themselves, so a lost one can be
		// resurrected from its checkpoint instead of aborting the run.
		// (Durable-only runs — static with a store — keep the static
		// loss semantics: no watch, a lost worker aborts the run; the
		// persisted snapshot is then what makes the abort recoverable.)
		if cfg.respawn() {
			pvm.NotifyExit(env, ts.ids[i])
		}
	}
	// Diversification ranges over the TSWs: the static equal split, or
	// (adaptive) speed-seeded shares re-partitioned by each TSW's
	// observed iteration throughput — the master-level half of the
	// scheduler.
	divRanges := ranges(prob.Size(), cfg.TSWs)
	var track *sched.Tracker
	if cfg.Adaptive {
		track = seededTracker(env, prob.Size(), cfg.TSWs, cfg.tswMachine)
		divRanges = track.Partition()
	}
	kickoff := globalMsg{Perm: out.bestPerm, Tabu: bestTabu}
	for i, id := range ts.ids {
		ts.idx[id] = i
		if snap != nil && i < len(snap.Latest) {
			ts.latest[id] = snap.Latest[i]
		}
		if resumed[i] {
			// The resumed TSW waits at the verdict boundary; the kick-off
			// broadcast — the TagGlobal the dead master never sent — starts
			// its next round. Skipped when the snapshot already covers the
			// full budget: the TSW then waits for the TagStop below.
			if startRound < cfg.GlobalIters {
				env.Send(id, TagGlobal, kickoff)
			}
			continue
		}
		// Fresh TSWs — none in a fresh run's resume, all of them in a
		// plain run, the pre-first-checkpoint stragglers in a resume —
		// start from the global best-so-far (the initial solution when
		// there is none yet).
		env.Send(id, TagInit, initMsg{
			Perm:      out.bestPerm,
			RangeLo:   divRanges[i][0],
			RangeHi:   divRanges[i][1],
			WorkerIdx: i,
		})
	}

	roundStart := env.Now()
	for g := startRound; g < cfg.GlobalIters; g++ {
		reports := ts.collect(cfg.HalfSync)
		env.Work(float64(len(reports.msgs)) * cfg.WorkPerTrial)
		improved := false
		forced := 0
		for i, r := range reports.msgs {
			raw = append(raw, r.Points...)
			idx := ts.idx[reports.from[i]]
			if track != nil {
				// One throughput observation per TSW per round: local
				// iterations completed this round over the TSW's report
				// latency from the round start — all on the master's own
				// clock. Latency (not the shared collection time) is what
				// still discriminates under full sync, where every TSW does
				// identical per-round work by construction and only how
				// long it took differs.
				dIters := float64(r.Stats.LocalIters - ts.latest[reports.from[i]].LocalIters)
				track.ObserveWindow(idx, dIters, reports.at[i]-roundStart)
			}
			ts.latest[reports.from[i]] = r.Stats
			if r.Forced {
				forced++
			}
			if r.Cost < out.bestCost {
				out.bestCost = r.Cost
				out.bestPerm = append(out.bestPerm[:0], r.Perm...)
				bestTabu = r.Tabu
				improved = true
			}
		}
		out.rounds++
		// The round-end observation keeps the trace's time axis spanning
		// the full run even when no TSW improved this round.
		raw = append(raw, improvement{Time: env.Now(), Cost: out.bestCost})
		// Durable runs snapshot here — the barrier, where the checkpoint
		// ledger is freshest and the incumbent was just re-selected. A
		// round collected after cancellation fired is never persisted:
		// its reports may come from cancel-truncated local searches,
		// and resuming from it would fork off the uninterrupted
		// trajectory. The previous snapshot stays, and a restart
		// re-runs this round at full length instead.
		if !env.Cancelled() {
			persistSnapshot(prob, cfg, ts, out, bestTabu)
		}

		if cfg.Progress != nil {
			snap := Snapshot{
				Round:       g + 1,
				Rounds:      cfg.GlobalIters,
				BestCost:    out.bestCost,
				InitialCost: initCost,
				Elapsed:     env.Now(),
				Improved:    improved,
				Reports:     len(reports.msgs),
				Forced:      forced,
			}
			if track != nil {
				snap.Shares = track.Shares()
			}
			for _, ws := range ts.latest {
				snap.Stats.add(ws)
			}
			if ts.rec != nil {
				snap.Stats.WorkersLost += ts.rec.lost
				snap.Stats.WorkersRespawned += ts.rec.respawned
			}
			cfg.Progress(snap)
		}

		if env.Cancelled() {
			out.interrupted = true
			break
		}
		if g == cfg.GlobalIters-1 {
			break
		}
		// Broadcast the global best (solution + its tabu list) so every
		// TSW restarts the next round from it; under the adaptive
		// scheduler the broadcast also carries each TSW's re-partitioned
		// diversification range.
		rebalanced := false
		if track != nil {
			if next, changed := track.Rebalance(divRanges, 0); changed {
				divRanges = next
				rebalanced = true
			}
		}
		gm := globalMsg{Perm: out.bestPerm, Tabu: bestTabu}
		for i, id := range ts.ids {
			if rebalanced {
				gm.RangeLo, gm.RangeHi = divRanges[i][0], divRanges[i][1]
				gm.Rebalance = true
			}
			env.Send(id, TagGlobal, gm)
		}
		roundStart = env.Now()
	}

	// Shut down and gather counters. From here on replacement requests
	// are declined: a worker lost during the handshake stays lost.
	if ts.rec != nil {
		ts.rec.declining = true
	}
	for _, id := range ts.ids {
		env.Send(id, TagStop, nil)
	}
	expected := len(ts.ids)
	for expected > 0 {
		m := env.Recv(TagStats, TagRespawn, TagCheckpoint, TagBest, pvm.TagExit)
		switch m.Tag {
		case TagStats:
			out.stats.add(m.Data.(WorkerStats))
			expected--
			// Retire the sender on receipt: its host dying *after* the
			// stats handshake (before its task-done frame lands) must not
			// read as a lost TSW and abort a run that actually completed.
			delete(ts.idx, m.From)
		case TagRespawn:
			env.Send(m.From, TagRespawnAck,
				respawnAckMsg{CLWIdx: m.Data.(respawnMsg).CLWIdx, ID: -1})
		case TagCheckpoint, TagBest:
			// Stale pipeline leftovers of a resurrected TSW: drop.
		case pvm.TagExit:
			// A TSW died inside the shutdown handshake — after TagStop was
			// sent, possibly before it forwarded the stop to its CLWs.
			// Nobody can finish those CLWs any more, so tear the run down
			// rather than hang; the result assembled above is intact.
			if _, ok := ts.idx[m.From]; ok {
				out.interrupted = true
				if !pvm.AbortRunOf(env, fmt.Errorf("core: tsw %d lost during shutdown", ts.idx[m.From])) {
					panic("core: task lost on a transport that cannot lose tasks")
				}
				expected--
			}
		}
	}
	if ts.rec != nil {
		out.stats.WorkersLost += ts.rec.lost
		out.stats.WorkersRespawned += ts.rec.respawned
	}

	if cfg.RecordTrace {
		out.trace = envelope(raw)
	}
}

// envelope turns raw improvement observations from many workers into
// the monotone best-cost-versus-time trace: sorted by time, keeping
// only points that improve on everything earlier.
func envelope(raw []improvement) stats.Trace {
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].Time != raw[j].Time {
			return raw[i].Time < raw[j].Time
		}
		return raw[i].Cost < raw[j].Cost
	})
	var tr stats.Trace
	best := 0.0
	for i, p := range raw {
		if i == 0 || p.Cost < best {
			best = p.Cost
			tr.Record(p.Time, best)
		} else if i == len(raw)-1 {
			// Keep the final observation so End() reflects the real
			// make-span of the search phase.
			tr.Record(p.Time, best)
		}
	}
	return tr
}

// bestReports pairs each collected bestMsg with its sender and the
// master-clock time it was received — the arrival latencies the
// adaptive tracker turns into throughput weights.
type bestReports struct {
	msgs []bestMsg
	from []pvm.TaskID
	at   []float64
}

// tswSet is the master's view of its TSWs: identity, each worker's
// latest cumulative counters, and (with recovery on) the respawn
// bookkeeping.
type tswSet struct {
	env    pvm.Env
	cfg    Config
	ids    []pvm.TaskID
	idx    map[pvm.TaskID]int
	latest map[pvm.TaskID]WorkerStats
	rec    *recovery
}

// collect gathers one bestMsg per TSW; in half-sync mode it forces the
// stragglers once half have reported. Recovery traffic — replacement
// requests, checkpoints, and TSW-loss notifications — interleaves with
// the reports and is serviced inline: a lost TSW is resurrected from
// its checkpoint mid-collection, and its successor's report is what
// completes the round.
func (ts *tswSet) collect(halfSync bool) bestReports {
	env := ts.env
	n := len(ts.ids)
	out := bestReports{msgs: make([]bestMsg, 0, n), from: make([]pvm.TaskID, 0, n), at: make([]float64, 0, n)}
	reported := make(map[pvm.TaskID]bool, n)
	take := func() {
		for {
			m := env.Recv(TagBest, TagRespawn, TagCheckpoint, pvm.TagExit)
			switch m.Tag {
			case TagRespawn:
				ts.rec.handleRespawn(m.From, ts.idx[m.From], m.Data.(respawnMsg))
				continue
			case TagCheckpoint:
				if i, ok := ts.idx[m.From]; ok {
					ck := m.Data.(tswCheckpoint)
					ts.rec.noteCheckpoint(i, &ck)
				}
				continue
			case pvm.TagExit:
				ts.onTSWExit(m.From)
				continue
			}
			reported[m.From] = true
			b := m.Data.(bestMsg)
			if b.Checkpoint != nil {
				if i, ok := ts.idx[m.From]; ok && ts.rec != nil {
					ts.rec.noteCheckpoint(i, b.Checkpoint)
				}
			}
			out.msgs = append(out.msgs, b)
			out.from = append(out.from, m.From)
			out.at = append(out.at, env.Now())
			return
		}
	}
	if halfSync && n > 1 {
		half := (n + 1) / 2
		for len(out.msgs) < half {
			take()
		}
		for _, id := range ts.ids {
			if !reported[id] {
				env.Send(id, TagReportNow, nil)
			}
		}
	}
	for len(out.msgs) < n {
		take()
	}
	return out
}

// onTSWExit resurrects a lost TSW from its last checkpoint. The
// successor re-runs the checkpointed round and reports it, so the
// collection in flight (or, if the dead TSW had already reported this
// round, the next one — reports are cumulative, a one-round pipeline
// lag is benign) still completes. A TSW lost before any checkpoint
// arrived is unrecoverable: the run is aborted, which returns the
// best-so-far with Interrupted set — exactly the pre-recovery
// behavior, now confined to the spawn-instant window.
func (ts *tswSet) onTSWExit(from pvm.TaskID) {
	i, ok := ts.idx[from]
	if !ok {
		return // a stale notification for an already-replaced TSW
	}
	id, err := ts.rec.respawnTSW(i)
	if err != nil {
		if !pvm.AbortRunOf(ts.env, err) {
			panic("core: task lost on a transport that cannot lose tasks")
		}
		return
	}
	delete(ts.idx, from)
	ts.idx[id] = i
	ts.ids[i] = id
	// Counter continuity: the successor resumes the predecessor's
	// cumulative stats, so per-round deltas stay meaningful.
	ts.latest[id] = ts.latest[from]
	delete(ts.latest, from)
}

// recovery is the master-side respawn bookkeeping: the latest
// checkpoint per TSW index, and the ledger of replacement CLWs spawned
// whose acknowledgement may have died with the TSW it was sent to.
type recovery struct {
	env       pvm.Env
	prob      Problem
	cfg       Config
	cks       []*tswCheckpoint
	log       [][]respawnEntry
	seq       int
	lost      int64
	respawned int64
	declining bool
}

func newRecovery(env pvm.Env, prob Problem, cfg Config) *recovery {
	return &recovery{
		env:  env,
		prob: prob,
		cfg:  cfg,
		cks:  make([]*tswCheckpoint, cfg.TSWs),
		log:  make([][]respawnEntry, cfg.TSWs),
	}
}

// handleRespawn spawns a replacement CLW for TSW i: the transport
// places it on live capacity — absorbed elastic spare slots first,
// else the least-loaded survivor — and the requesting TSW learns the
// new task's ID through the acknowledgement, seeding it at its next
// resync barrier. While shutting down, requests are declined instead.
func (r *recovery) handleRespawn(from pvm.TaskID, i int, rm respawnMsg) {
	if r.declining {
		r.env.Send(from, TagRespawnAck, respawnAckMsg{CLWIdx: rm.CLWIdx, ID: -1})
		return
	}
	r.seq++
	machine := pvm.RespawnSlotOf(r.env, r.cfg.clwMachine(i, rm.CLWIdx))
	tune := rm.Tune
	id := r.env.SpawnSpec(fmt.Sprintf("clw%d-r%d", rm.CLWIdx, r.seq), machine, pvm.Spec{
		Kind: taskKindCLW,
		Data: clwSpec{Tune: tune},
		Fn: func(e pvm.Env) {
			clwRun(e, r.prob, r.cfg, tune)
		},
	})
	if i >= 0 && i < len(r.log) {
		r.log[i] = append(r.log[i], respawnEntry{CLWIdx: rm.CLWIdx, ID: id})
	}
	r.respawned++
	r.env.Send(from, TagRespawnAck, respawnAckMsg{CLWIdx: rm.CLWIdx, ID: id})
}

// noteCheckpoint records TSW i's latest checkpoint and prunes the
// replacement ledger of entries the checkpoint already accounts for
// (the TSW has attached or parked them), so a later hand-over carries
// only the replacements the TSW never learned about.
func (r *recovery) noteCheckpoint(i int, ck *tswCheckpoint) {
	if i < 0 || i >= len(r.cks) {
		return
	}
	r.cks[i] = ck
	if len(r.log[i]) == 0 {
		return
	}
	known := make(map[pvm.TaskID]bool, len(ck.CLWs))
	for _, s := range ck.CLWs {
		if s.State != clwSlotDead {
			known[s.ID] = true
		}
	}
	kept := r.log[i][:0]
	for _, e := range r.log[i] {
		if !known[e.ID] {
			kept = append(kept, e)
		}
	}
	r.log[i] = kept
}

// respawnTSW resurrects TSW i from its last checkpoint on live
// capacity, handing over the outstanding-replacement ledger so no
// spawned CLW is ever orphaned. The ledger is handed over by copy,
// not cleared: entries leave it only when a checkpoint acknowledges
// them (noteCheckpoint), so a successor that itself dies before
// checkpointing hands the same replacements to the next successor
// instead of stranding them (re-adoption is idempotent — a
// replacement already attached is simply re-seeded by the TagInit).
// The successor is watched like the original.
func (r *recovery) respawnTSW(i int) (pvm.TaskID, error) {
	if i < 0 || i >= len(r.cks) || r.cks[i] == nil {
		return 0, fmt.Errorf("core: tsw %d lost before its first checkpoint; unrecoverable", i)
	}
	ck := *r.cks[i]
	ck.Extra = append([]respawnEntry(nil), r.log[i]...)
	r.seq++
	machine := pvm.RespawnSlotOf(r.env, r.cfg.tswMachine(i))
	resume := &ck
	master := r.env.Self()
	id := r.env.SpawnSpec(fmt.Sprintf("tsw%d-r%d", i, r.seq), machine, pvm.Spec{
		Kind: taskKindTSW,
		Data: tswSpec{Master: master, Resume: resume},
		Fn: func(e pvm.Env) {
			tswRun(e, r.prob, r.cfg, master, resume)
		},
	})
	pvm.NotifyExit(r.env, id)
	r.lost++
	r.respawned++
	return id, nil
}
