package sched

import "fmt"

// Ledger is the fleet-wide capacity account of the serving mode: it
// tracks how many workers the fleet holds, how many each admitted job
// has leased, and refuses over-commitment. Like the rest of the
// package it is runtime-free bookkeeping — the admission layer consults
// it to decide *whether* a job may claim workers, while the transport's
// lease machinery enforces *which* concrete workers (and therefore
// machine slots) each job owns.
//
// The ledger is not safe for concurrent use; callers serialize access
// (the serving scheduler holds its own lock across queue and ledger).
type Ledger struct {
	total  int
	leased map[string]int
}

// NewLedger returns a ledger for a fleet of total workers.
func NewLedger(total int) *Ledger {
	if total < 0 {
		total = 0
	}
	return &Ledger{total: total, leased: make(map[string]int)}
}

// SetTotal updates the fleet size as workers join and leave. Shrinking
// below the currently leased sum is recorded as-is: running jobs keep
// their claims (the transport survives or aborts them), and Free simply
// reports zero until leases release.
func (l *Ledger) SetTotal(total int) {
	if total < 0 {
		total = 0
	}
	l.total = total
}

// Total returns the fleet size last recorded by SetTotal.
func (l *Ledger) Total() int { return l.total }

// Leased returns the sum of all outstanding claims.
func (l *Ledger) Leased() int {
	sum := 0
	for _, n := range l.leased {
		sum += n
	}
	return sum
}

// Free returns how many workers remain claimable: total minus leased,
// floored at zero (the fleet may have shrunk under its commitments).
func (l *Ledger) Free() int {
	free := l.total - l.Leased()
	if free < 0 {
		return 0
	}
	return free
}

// Admissible reports whether a job wanting n workers could EVER be
// admitted on this fleet — n within the total regardless of current
// claims. The admission layer refuses inadmissible jobs outright
// instead of queueing them forever.
func (l *Ledger) Admissible(n int) bool { return n >= 0 && n <= l.total }

// Lease records a claim of n workers under id. It refuses a negative
// or over-committing claim, and a duplicate id (a job never holds two
// claims).
func (l *Ledger) Lease(id string, n int) error {
	if n < 0 {
		return fmt.Errorf("sched: lease %q of %d workers", id, n)
	}
	if _, ok := l.leased[id]; ok {
		return fmt.Errorf("sched: lease %q already outstanding", id)
	}
	if n > l.Free() {
		return fmt.Errorf("sched: lease %q wants %d workers, %d free of %d", id, n, l.Free(), l.total)
	}
	l.leased[id] = n
	return nil
}

// Release drops the claim recorded under id, returning its workers to
// the free pool. Releasing an unknown id is a no-op, so teardown paths
// need not track whether their claim was ever recorded.
func (l *Ledger) Release(id string) {
	delete(l.leased, id)
}

// Outstanding returns how many claims are currently recorded.
func (l *Ledger) Outstanding() int { return len(l.leased) }
