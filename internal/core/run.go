package core

import (
	"context"
	"errors"
	"fmt"

	"pts/internal/cluster"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/pvm"
	"pts/internal/stats"
)

// Mode selects the execution runtime.
type Mode int

const (
	// Virtual runs on the deterministic discrete-event kernel with
	// modeled machine speeds, loads and message latencies. All
	// experiment figures use it.
	Virtual Mode = iota
	// Real runs on goroutines with wall-clock timing.
	Real
)

// Result is the outcome of one parallel tabu search run.
type Result struct {
	// Problem is the solved problem's Name().
	Problem string
	// BestCost is the best cost found (lower is better).
	BestCost float64
	// BestPerm is the best solution as an element permutation.
	BestPerm []int32
	// InitialCost is the cost of the shared initial solution.
	InitialCost float64
	// Elapsed is the run's make-span in seconds (virtual or wall).
	Elapsed float64
	// Rounds is the number of completed global iterations.
	Rounds int
	// Interrupted reports that the run's context was cancelled and the
	// result is the best found up to that point rather than the full
	// iteration budget's.
	Interrupted bool
	// Trace is the best-cost-versus-time curve (one point per global
	// iteration, plus the initial point) when Config.RecordTrace is set.
	Trace stats.Trace
	// Stats aggregates every worker's counters.
	Stats WorkerStats
	// Runtime reports the communication volume of the run.
	Runtime pvm.Counters
	// Details carries problem-specific exact scoring of BestPerm when
	// the problem implements Finalizer; nil otherwise.
	Details any

	// Objectives and CriticalPath are the exact placement objectives of
	// BestPerm. They are populated only by the placement entry points
	// (Run, RunSequential); generic RunProblem results report
	// problem-specific metrics through Details instead.
	Objectives   cost.Objectives
	CriticalPath float64
}

// RunProblem executes the parallel tabu search over any Problem on the
// given cluster. The returned result is deterministic in cfg.Seed when
// mode is Virtual and ctx never fires mid-run.
//
// Cancellation is cooperative: when ctx is cancelled, workers abandon
// their local iterations at the next loop boundary, the master stops
// launching rounds, and the best solution found so far is returned with
// Result.Interrupted set and a nil error.
func RunProblem(ctx context.Context, prob Problem, clus cluster.Cluster, cfg Config, mode Mode) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := clus.Validate(); err != nil {
		return nil, err
	}

	// Shared initial solution, derived once so every worker searches
	// from the same point (paper: the master provides each TSW with the
	// same initial solution).
	st0, err := prob.Initial(cfg.Seed)
	if err != nil {
		return nil, err
	}
	initPerm := st0.Snapshot()
	initCost := st0.Cost()

	res := &Result{
		Problem:     prob.Name(),
		BestCost:    initCost,
		BestPerm:    initPerm,
		InitialCost: initCost,
	}
	if ctx.Err() != nil {
		// Pre-cancelled context: the best-so-far is the initial solution.
		res.Interrupted = true
		return finalize(prob, res)
	}

	// Durable runs: a snapshot left behind by a dead master resumes the
	// run where it stopped. A snapshot whose fingerprint (problem, size,
	// seed) does not match this run's inputs is stale state from a
	// different run under the same RunID — ignored, then overwritten by
	// the first barrier of the fresh run.
	snap := loadSnapshot(prob, cfg, initPerm)

	var ms masterState
	root := func(env pvm.Env) {
		masterRun(env, prob, cfg, initPerm, initCost, snap, &ms)
	}
	var counters pvm.Counters
	opts := pvm.Options{
		Context:       ctx,
		Cluster:       clus,
		Seed:          cfg.Seed,
		Counters:      &counters,
		RealWorkScale: cfg.WorkScale,
		// Adaptive runs absorb late-joining workers as spare capacity;
		// in-process transports ignore the flag.
		Elastic: cfg.Adaptive,
	}
	if mode == Real && cfg.Transport != nil {
		opts.Transport = cfg.Transport
		opts.JobPayload = jobPayload{
			Problem:     prob.Name(),
			Size:        prob.Size(),
			InitialCost: initCost,
			Cfg:         cfg.wire(),
			Spec:        cfg.ProblemSpec,
		}
		opts.Spawner = taskFactory(prob, cfg)
	}
	// Whatever happens from here on, a remote-capable transport must
	// release its worker processes: on success Finish carries the final
	// summary, on any error path it carries nil and just closes the
	// session, so joined daemons never wait forever for a result.
	var summary any
	if f, ok := cfg.Transport.(pvm.Finisher); ok && mode == Real {
		defer func() {
			_ = f.Finish(summary) // failures are the workers' daemons to recover from
		}()
	}

	var elapsed float64
	switch mode {
	case Virtual:
		elapsed, err = pvm.RunVirtual(opts, root)
	case Real:
		elapsed, err = pvm.RunReal(opts, root)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}
	// A transport abort (a worker process died or refused the job
	// mid-run) is not a failed solve: the master state accumulated up to
	// the abort is intact, so report the best-so-far as an interrupted
	// run — exactly like cooperative cancellation.
	aborted := errors.Is(err, pvm.ErrAborted)
	if err != nil && !aborted {
		return nil, err
	}

	if ms.bestPerm != nil { // nil only when an abort beat the master's first step
		res.BestCost = ms.bestCost
		res.BestPerm = ms.bestPerm
	}
	res.Elapsed = elapsed
	res.Rounds = ms.rounds
	res.Interrupted = ms.interrupted || aborted
	res.Trace = ms.trace
	res.Stats = ms.stats
	res.Runtime = counters
	res, err = finalize(prob, res)
	if err != nil {
		return nil, err
	}
	if cfg.Store != nil && !res.Interrupted {
		// Clean completion: the run no longer needs its snapshot. An
		// interrupted run keeps it — that is exactly the state a restart
		// resumes from.
		_ = cfg.Store.Delete(cfg.runKey())
	}
	summary = runSummary{
		Problem:     res.Problem,
		BestCost:    res.BestCost,
		BestPerm:    res.BestPerm,
		InitialCost: res.InitialCost,
		Elapsed:     res.Elapsed,
		Rounds:      res.Rounds,
		Interrupted: res.Interrupted,
	}
	return res, nil
}

// loadSnapshot fetches and validates a persisted run snapshot, or
// returns nil when there is none (or it is unusable). Store read
// failures are treated as "no snapshot": durability must never make a
// fresh run un-startable.
func loadSnapshot(prob Problem, cfg Config, initPerm []int32) *masterSnapshot {
	if cfg.Store == nil {
		return nil
	}
	b, ok, err := cfg.Store.Get(cfg.runKey())
	if err != nil || !ok {
		return nil
	}
	snap, err := decodeSnapshot(b)
	if err != nil {
		return nil
	}
	if snap.Problem != prob.Name() || snap.Size != prob.Size() || snap.Seed != cfg.Seed {
		return nil
	}
	if snap.Round <= 0 || len(snap.BestPerm) != len(initPerm) {
		return nil
	}
	return snap
}

// finalize attaches problem-specific exact scoring when the problem
// offers it.
func finalize(prob Problem, res *Result) (*Result, error) {
	if f, ok := prob.(Finalizer); ok {
		details, err := f.Finalize(res.BestPerm)
		if err != nil {
			return nil, fmt.Errorf("core: best solution invalid: %w", err)
		}
		res.Details = details
	}
	return res, nil
}

// Run executes the parallel tabu search for VLSI placement over circuit
// nl on the given cluster — the original placement-only entry point,
// now a thin wrapper over the problem-agnostic RunProblem. The returned
// result is deterministic in cfg.Seed when mode is Virtual and includes
// the exact placement objectives of the best solution.
func Run(nl *netlist.Netlist, clus cluster.Cluster, cfg Config, mode Mode) (*Result, error) {
	pp := cost.NewPlacementProblem(nl, cfg.Utilization, cfg.Cost)
	res, err := RunProblem(context.Background(), pp, clus, cfg, mode)
	if err != nil {
		return nil, err
	}
	obj, cpd, err := pp.Score(res.BestPerm)
	if err != nil {
		return nil, fmt.Errorf("core: best solution invalid: %w", err)
	}
	res.Objectives, res.CriticalPath = obj, cpd
	return res, nil
}
