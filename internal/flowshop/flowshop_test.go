package flowshop

import (
	"math"
	"testing"

	"pts/internal/rng"
	"pts/internal/schedinst"
	"pts/internal/tabu"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := New("x", [][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := New("x", [][]int{{1, -2}}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := New("x", [][]int{{1, 2}, {3, 4}}); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(7, 4, 42), Random(7, 4, 42)
	for i := range a.Proc {
		for j := range a.Proc[i] {
			if a.Proc[i][j] != b.Proc[i][j] {
				t.Fatal("instances differ for equal seed")
			}
		}
	}
	c := Random(7, 4, 43)
	same := true
	for i := range a.Proc {
		for j := range a.Proc[i] {
			if a.Proc[i][j] != c.Proc[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical instances")
	}
}

// TestIncrementalMatchesOracle drives the state through thousands of
// random swaps and requires cost, delta prediction and the lazily
// rebuilt critical-path caches to agree with the from-scratch DP at
// every step.
func TestIncrementalMatchesOracle(t *testing.T) {
	ins := Random(14, 5, 7)
	s := NewState(ins, 3)
	r := rng.New(9)
	for i := 0; i < 2000; i++ {
		a := int32(r.Intn(ins.Jobs))
		b := int32(r.Intn(ins.Jobs))
		predicted := s.DeltaSwap(a, b)
		before := s.Cost()
		s.ApplySwap(a, b)
		want, err := Makespan(ins, s.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan() != want {
			t.Fatalf("step %d: incremental makespan %d != oracle %d", i, s.Makespan(), want)
		}
		if got := s.Cost() - before; got != predicted {
			t.Fatalf("step %d: delta %v != predicted %v", i, got, predicted)
		}
	}
}

// TestDeltaSwapBatchMatchesScalar fuzzes the batched head/tail kernel
// against per-candidate DeltaSwap bit-for-bit, across many states,
// batch sizes and degenerate a==b candidates.
func TestDeltaSwapBatchMatchesScalar(t *testing.T) {
	ins := Random(30, 6, 6)
	s := NewState(ins, 7)
	r := rng.New(11)
	const maxBatch = 48
	cands := make([]tabu.SwapCand, 0, maxBatch)
	out := make([]float64, maxBatch)
	for batch := 0; batch < 600; batch++ {
		n := 1 + r.Intn(maxBatch)
		cands = cands[:0]
		for i := 0; i < n; i++ {
			cands = append(cands, tabu.SwapCand{
				A: int32(r.Intn(ins.Jobs)),
				B: int32(r.Intn(ins.Jobs)), // a == b allowed
			})
		}
		s.DeltaSwapBatch(cands, out[:n])
		for i, c := range cands {
			want := s.DeltaSwap(c.A, c.B)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("batch %d cand %d (%d,%d): batch %v, scalar %v",
					batch, i, c.A, c.B, out[i], want)
			}
		}
		s.ApplySwap(int32(r.Intn(ins.Jobs)), int32(r.Intn(ins.Jobs)))
	}
}

func TestApplySwapInvolution(t *testing.T) {
	s := NewState(Random(10, 4, 2), 5)
	before := s.Snapshot()
	costBefore := s.Cost()
	s.ApplySwap(2, 7)
	s.ApplySwap(2, 7)
	after := s.Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("double swap changed sequence")
		}
	}
	if s.Cost() != costBefore {
		t.Fatalf("double swap changed cost: %v vs %v", s.Cost(), costBefore)
	}
}

func TestSelfSwapNoop(t *testing.T) {
	s := NewState(Random(6, 3, 3), 1)
	if s.DeltaSwap(4, 4) != 0 {
		t.Error("self delta nonzero")
	}
	before := s.Cost()
	s.ApplySwap(4, 4)
	if s.Cost() != before {
		t.Error("self swap changed cost")
	}
}

func TestRestoreValidation(t *testing.T) {
	s := NewState(Random(5, 2, 4), 2)
	if err := s.Restore([]int32{0, 1}); err == nil {
		t.Error("short snapshot accepted")
	}
	if err := s.Restore([]int32{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range snapshot accepted")
	}
	if err := s.Restore([]int32{0, 1, 2, 2, 3}); err == nil {
		t.Error("duplicate snapshot accepted")
	}
	good := s.Snapshot()
	if err := s.Restore(good); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestBruteForceBounds pins the oracle relationships on tiny random
// instances: lower bound <= optimum <= every random sequence.
func TestBruteForceBounds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ins := Random(6, 3, seed)
		opt := BruteForceOptimum(ins)
		if lb := LowerBound(ins); lb > opt {
			t.Fatalf("seed %d: lower bound %d above brute-force optimum %d", seed, lb, opt)
		}
		for trial := uint64(0); trial < 10; trial++ {
			if s := NewState(ins, trial); s.Makespan() < opt {
				t.Fatalf("seed %d: random sequence %d beats brute-force optimum %d", seed, s.Makespan(), opt)
			}
		}
	}
}

// TestTa001DataIntegrity cross-checks the embedded Taillard instance
// against its published bounds: the machine-based lower bound computed
// from the processing times must reproduce the published 1232 exactly,
// and random schedules must never beat the proven optimum 1278 — both
// would fail if the embedded matrix drifted from Taillard's.
func TestTa001DataIntegrity(t *testing.T) {
	ins, err := schedinst.FlowShopByName("ta001")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Jobs != 20 || ins.Machines != 5 {
		t.Fatalf("ta001 is %dx%d, want 20x5", ins.Jobs, ins.Machines)
	}
	if ins.Upper != 1278 || ins.Lower != 1232 {
		t.Fatalf("ta001 header bounds %d/%d, want 1278/1232", ins.Upper, ins.Lower)
	}
	if lb := LowerBound(ins); lb != 1232 {
		t.Fatalf("computed lower bound %d != published 1232 (instance data drifted?)", lb)
	}
	for seed := uint64(0); seed < 50; seed++ {
		if s := NewState(ins, seed); s.Makespan() < ins.Upper {
			t.Fatalf("random sequence %d beats the proven optimum %d", s.Makespan(), ins.Upper)
		}
	}
}

// TestDeltaSwapBatchAllocFree asserts the batched path allocates
// nothing per call once the state is warm — the same 0 allocs/trial
// contract the placement and cost kernels are held to in CI.
func TestDeltaSwapBatchAllocFree(t *testing.T) {
	ins := Random(40, 8, 1)
	s := NewState(ins, 2)
	r := rng.New(3)
	cands := make([]tabu.SwapCand, 64)
	out := make([]float64, 64)
	refill := func() {
		for i := range cands {
			cands[i] = tabu.SwapCand{A: int32(r.Intn(ins.Jobs)), B: int32(r.Intn(ins.Jobs))}
		}
	}
	refill()
	s.DeltaSwapBatch(cands, out) // warm the caches
	if n := testing.AllocsPerRun(100, func() {
		s.DeltaSwapBatch(cands, out)
	}); n != 0 {
		t.Fatalf("DeltaSwapBatch allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		s.ApplySwap(cands[0].A, cands[0].B)
		_ = s.DeltaSwap(cands[1].A, cands[1].B) // forces the lazy rebuild
	}); n != 0 {
		t.Fatalf("ApplySwap+DeltaSwap allocates %.1f per call, want 0", n)
	}
}

func BenchmarkDeltaSwapBatch(b *testing.B) {
	ins := Random(100, 10, 1)
	s := NewState(ins, 2)
	r := rng.New(3)
	cands := make([]tabu.SwapCand, 64)
	for i := range cands {
		cands[i] = tabu.SwapCand{A: int32(r.Intn(ins.Jobs)), B: int32(r.Intn(ins.Jobs))}
	}
	out := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DeltaSwapBatch(cands, out)
	}
}

func BenchmarkDeltaSwapScalar(b *testing.B) {
	ins := Random(100, 10, 1)
	s := NewState(ins, 2)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.DeltaSwap(int32(r.Intn(ins.Jobs)), int32(r.Intn(ins.Jobs)))
	}
}
