package tabu

import "math/rand"

// Batched neighborhood evaluation: the CLW hot loop generates a whole
// candidate batch per depth step and hands it to the problem in one
// call, so problems with a data-parallel kernel (the placement
// evaluator, the QAP state) amortize per-trial call overhead, share
// cache lines across candidates, and keep their inner loops
// branch-light — the Bukata-style restructuring of the neighborhood
// walk. Problems without a batch kernel transparently fall back to
// per-candidate DeltaSwap, with identical results.

// SwapCand is one candidate swap of a data-parallel evaluation batch.
type SwapCand struct {
	A, B int32
}

// BatchEvaluator is the optional capability a Problem implements to
// evaluate whole candidate batches in one call.
//
// DeltaSwapBatch must write, for every i, out[i] = DeltaSwap(cands[i].A,
// cands[i].B) — bit-for-bit, not merely approximately: the batched
// search must reproduce the scalar search's trajectory exactly, which
// pins the floating-point accumulation order inside the kernel.
// Implementations may evaluate candidates in any internal order (e.g.
// sorted for cache locality) as long as each result lands at its
// candidate's own index. len(out) >= len(cands); the call must not
// retain either slice.
type BatchEvaluator interface {
	DeltaSwapBatch(cands []SwapCand, out []float64)
}

// RelaxedAccumulator is the optional capability a Problem implements to
// offer a relaxed-accumulation batch mode: with it on, DeltaSwapBatch
// may reassociate its internal floating-point sums (multi-lane or
// vector-width accumulation) instead of reproducing the scalar path's
// serial order, trading the bit-identity clause of BatchEvaluator's
// contract for throughput. Relaxed results must still be deterministic
// — the same inputs always produce the same outputs — just not
// necessarily the scalar bits. Off is the mandatory default.
type RelaxedAccumulator interface {
	SetRelaxedAccumulation(on bool)
}

// SetRelaxedAccumulation switches prob's batch accumulation mode when
// it has one, reporting whether it did; problems without the capability
// are always strict.
func SetRelaxedAccumulation(prob Problem, on bool) bool {
	ra, ok := prob.(RelaxedAccumulator)
	if ok {
		ra.SetRelaxedAccumulation(on)
	}
	return ok
}

// EvalPooler is the optional capability a Problem implements to shard
// batch evaluation across a pool of persistent worker goroutines.
// Implementations may ignore the setting outside relaxed-accumulation
// mode. A problem with a pool must also implement Closer; owners call
// Close when retiring the state.
type EvalPooler interface {
	SetEvalWorkers(workers int)
}

// SetEvalWorkers sizes prob's evaluation pool when it has one,
// reporting whether it did.
func SetEvalWorkers(prob Problem, workers int) bool {
	ep, ok := prob.(EvalPooler)
	if ok {
		ep.SetEvalWorkers(workers)
	}
	return ok
}

// Closer is the optional capability of states holding resources beyond
// memory (the evaluation pool's goroutines); Close releases them and
// must be idempotent.
type Closer interface {
	Close()
}

// Close releases prob's resources when it has any.
func Close(prob Problem) {
	if c, ok := prob.(Closer); ok {
		c.Close()
	}
}

// EvalDeltaBatch evaluates a candidate batch through the problem's
// batch kernel when it implements BatchEvaluator, and falls back to
// per-candidate DeltaSwap otherwise. out must have at least len(cands)
// elements; out[i] receives candidate i's delta.
func EvalDeltaBatch(prob Problem, cands []SwapCand, out []float64) {
	if be, ok := prob.(BatchEvaluator); ok {
		be.DeltaSwapBatch(cands, out)
		return
	}
	for i, c := range cands {
		out[i] = prob.DeltaSwap(c.A, c.B)
	}
}

// BatchScratch holds one searcher's reusable candidate-batch storage
// (a CLW or a sequential Search owns one); the zero value is ready to
// use and the buffers grow to the trial budget once.
type BatchScratch struct {
	cands  []SwapCand
	deltas []float64
}

// grow ensures capacity for n candidates.
func (sc *BatchScratch) grow(n int) {
	if cap(sc.cands) < n {
		sc.cands = make([]SwapCand, 0, n)
		sc.deltas = make([]float64, n)
	}
}

// BuildCompoundBatch is BuildCompound restructured around candidate
// batches: each depth step samples all Trials candidate pairs first,
// evaluates them in one EvalDeltaBatch call, and applies the argmin.
// The random stream consumption, the candidate order, and the
// strict-less first-wins argmin tie-breaking are identical to the
// scalar BuildCompound, so fixed-seed runs are bit-identical through
// either path. sc may be nil (a temporary scratch is allocated).
func BuildCompoundBatch(prob Problem, r *rand.Rand, p CompoundParams, sc *BatchScratch, step func() bool) CompoundMove {
	size := prob.Size()
	p = p.normalized(size)
	var move CompoundMove
	if size < 2 || p.RangeHi <= p.RangeLo {
		return move
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	sc.grow(p.Trials)
	for d := 0; d < p.Depth; d++ {
		// Sampling consumes the random stream exactly like the scalar
		// loop: two draws per trial, degenerate a == b pairs dropped
		// after both draws. State does not change between draws and
		// evaluation, so deferring the evaluation preserves results.
		cands := sc.cands[:0]
		for t := 0; t < p.Trials; t++ {
			a := p.RangeLo + int32(r.Intn(int(p.RangeHi-p.RangeLo)))
			b := int32(r.Intn(int(size)))
			if a == b {
				continue
			}
			cands = append(cands, SwapCand{A: a, B: b})
		}
		if len(cands) == 0 {
			// All trials degenerated (a == b); spend the step and go on.
			if step != nil && step() {
				break
			}
			continue
		}
		deltas := sc.deltas[:len(cands)]
		EvalDeltaBatch(prob, cands, deltas)
		// First-wins strict argmin over the generation order: the same
		// tie-breaking as the scalar loop's `delta < bestDelta`.
		best := 0
		for i := 1; i < len(deltas); i++ {
			if deltas[i] < deltas[best] {
				best = i
			}
		}
		prob.ApplySwap(cands[best].A, cands[best].B)
		if move.Swaps == nil {
			// One right-sized allocation per candidate: the move is sent
			// across workers, so it must own its memory.
			move.Swaps = make([]Swap, 0, p.Depth)
		}
		move.Swaps = append(move.Swaps, Swap{A: cands[best].A, B: cands[best].B})
		move.Delta += deltas[best]
		interrupted := step != nil && step()
		if move.Delta < -eps {
			// Improving already: accept without further investigation.
			break
		}
		if interrupted {
			break
		}
	}
	return move
}

// SelectScratch holds one TSW's reusable selection buffers: candidate
// ordering plus the per-candidate tabu state the single-pass admissibility
// filter computes. The zero value is ready to use.
type SelectScratch struct {
	order  []int
	tabu   []bool
	tenure []int64
}

// grow ensures capacity for n candidates.
func (sc *SelectScratch) grow(n int) {
	if cap(sc.order) < n {
		sc.order = make([]int, 0, n)
		sc.tabu = make([]bool, n)
		sc.tenure = make([]int64, n)
	}
}

// SelectAdmissibleBatch is SelectAdmissible with the tabu probing
// amortized: one pass over the whole candidate batch computes every
// candidate's tabu flag and remaining tenure against the list (one
// ring walk per candidate instead of re-probing during selection and
// again in the fallback), then the selection scans by ascending delta
// as before. The verdict is identical to SelectAdmissible's. sc may be
// nil (a temporary scratch is allocated).
func SelectAdmissibleBatch(cands []CompoundMove, curCost, bestCost float64, list *List, iter int64, sc *SelectScratch) Verdict {
	if sc == nil {
		sc = &SelectScratch{}
	}
	n := len(cands)
	sc.grow(n)
	tabu, tenure := sc.tabu[:n], sc.tenure[:n]
	order := sc.order[:0]
	// The single batch pass over the tabu memory.
	for i := range cands {
		if cands[i].Empty() {
			continue
		}
		tabu[i], tenure[i] = list.TabuStateSwaps(cands[i].Swaps, iter)
		order = append(order, i)
	}
	if len(order) == 0 {
		return Verdict{Index: -1}
	}
	// Insertion sort by delta.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && cands[order[j]].Delta < cands[order[j-1]].Delta; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	v := Verdict{Index: -1}
	for _, i := range order {
		if !tabu[i] {
			v.Index = i
			return v
		}
		if curCost+cands[i].Delta < bestCost-eps {
			v.Index = i
			v.Aspired = true
			return v
		}
		v.TabuRejected++
	}
	// Everything tabu and unaspired: least-tabu fallback.
	bestIdx, bestTenure := -1, int64(0)
	for _, i := range order {
		t := tenure[i]
		if bestIdx == -1 || t < bestTenure ||
			(t == bestTenure && cands[i].Delta < cands[bestIdx].Delta) {
			bestIdx, bestTenure = i, t
		}
	}
	v.Index = bestIdx
	v.Fallback = true
	return v
}
