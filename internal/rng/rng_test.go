package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams with equal seed diverged at step %d: %d != %d", i, x, y)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs out of 100", same)
	}
}

func TestDeriveLabelsDistinct(t *testing.T) {
	s := uint64(7)
	seen := map[uint64]string{}
	cases := []struct {
		name   string
		labels []string
	}{
		{"a,b", []string{"a", "b"}},
		{"ab", []string{"ab"}},
		{"b,a", []string{"b", "a"}},
		{"a", []string{"a"}},
		{"", nil},
		{"empty-one", []string{""}},
		{"empty-two", []string{"", ""}},
	}
	for _, c := range cases {
		d := Derive(s, c.labels...)
		if prev, ok := seen[d]; ok {
			t.Errorf("Derive collision between %q and %q", prev, c.name)
		}
		seen[d] = c.name
	}
}

func TestDeriveNDistinct(t *testing.T) {
	s := uint64(99)
	seen := map[uint64][]int{}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			d := DeriveN(s, i, j)
			if prev, ok := seen[d]; ok {
				t.Fatalf("DeriveN collision: %v and %v", prev, []int{i, j})
			}
			seen[d] = []int{i, j}
		}
	}
}

func TestDeriveIsPure(t *testing.T) {
	if Derive(3, "x") != Derive(3, "x") {
		t.Fatal("Derive is not deterministic")
	}
	if DeriveN(3, 1, 2) != DeriveN(3, 1, 2) {
		t.Fatal("DeriveN is not deterministic")
	}
}

// TestUniformity is a coarse chi-squared check on the low byte: splitmix64
// should distribute uniformly across 256 buckets.
func TestUniformity(t *testing.T) {
	g := NewSplitMix64(12345)
	const n = 1 << 16
	var buckets [256]int
	for i := 0; i < n; i++ {
		buckets[g.Uint64()&0xff]++
	}
	expect := float64(n) / 256
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 255 degrees of freedom; mean 255, sd ~22.6. 5 sigma ~ 368.
	if chi2 > 368 {
		t.Fatalf("chi-squared %.1f too high for uniform low byte", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

// Property: deriving with different worker indices never yields the same
// first output as the parent stream (no accidental stream aliasing).
func TestQuickDeriveNoAlias(t *testing.T) {
	f := func(seed uint64, idx uint8) bool {
		parent := New(seed)
		child := New(DeriveN(seed, int(idx)))
		// Compare a few outputs; equality of all would mean aliasing.
		same := 0
		for i := 0; i < 4; i++ {
			if parent.Uint64() == child.Uint64() {
				same++
			}
		}
		return same < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewSplitMix64(0xdeadbeef)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative value %d", v)
		}
	}
}

func BenchmarkSplitMix64(b *testing.B) {
	g := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkDerive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Derive(uint64(i), "tsw", "clw")
	}
}
