package bench

import (
	"fmt"

	"pts/internal/core"
	"pts/internal/netlist"
	"pts/internal/stats"
)

// Fig5 reproduces Figure 5: effect of the number of CLWs (low-level
// parallelization) on the best solution quality, with 4 TSWs, for every
// circuit. One series per circuit: x = #CLWs, y = mean best cost.
func Fig5(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "fig05",
		Title:  "Effect of number of CLWs on solution quality (TSWs=4)",
		XLabel: "CLWs per TSW",
		YLabel: "best fuzzy cost (lower is better)",
	}
	clus := o.testbed()
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		s := stats.Series{Name: name}
		for clws := 1; clws <= 4; clws++ {
			var acc stats.Accumulator
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = 4, clws
				cfg.Seed = o.seedFor("fig5", name, rep)
				res, err := runOne(o, fmt.Sprintf("fig5 %s clw=%d rep=%d", name, clws, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				acc.Add(res.BestCost)
			}
			s.Add(float64(clws), acc.Mean())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper: more CLWs improve quality; tiny 'highway' saturates around 2 CLWs")
	return fig, nil
}

// speedupFigure is the shared engine of Figures 6 and 8: sweep a worker
// axis, define the quality target x per (circuit, repeat) as the final
// best of the 1-worker baseline, and report mean speedup
// t(1,x)/t(n,x).
func speedupFigure(o Opts, id, title, xlabel, figKey string, circuits []string,
	ns []int, configure func(cfg *core.Config, n int)) (*Figure, error) {

	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		YLabel: "speedup t(1,x)/t(n,x)",
	}
	clus := o.testbed()
	unreached := 0
	for _, name := range circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		// Per repeat: run the whole sweep with one seed, using the n=1
		// run as both the baseline trace and the target definition.
		speedups := make([][]float64, len(ns))
		for rep := 0; rep < o.Repeats; rep++ {
			seed := o.seedFor(figKey, name, rep)
			var base *core.Result
			results := make([]*core.Result, len(ns))
			for i, n := range ns {
				cfg := baseConfig(o)
				cfg.Seed = seed
				configure(&cfg, n)
				res, err := runOne(o, fmt.Sprintf("%s %s n=%d rep=%d", figKey, name, n, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				results[i] = res
				if n == 1 {
					base = res
				}
			}
			if base == nil {
				return nil, fmt.Errorf("bench: %s: sweep lacks the n=1 baseline", figKey)
			}
			x := base.BestCost // quality target: what one worker achieved
			for i := range ns {
				sp, reached := stats.Speedup(&base.Trace, &results[i].Trace, x)
				if !reached {
					unreached++
				}
				speedups[i] = append(speedups[i], sp)
			}
		}
		s := stats.Series{Name: name}
		for i, n := range ns {
			s.Add(float64(n), stats.Mean(speedups[i]))
		}
		fig.Series = append(fig.Series, s)
	}
	if unreached > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%d run(s) did not reach the baseline quality; their speedup is a lower bound (end-of-run time used)", unreached))
	}
	return fig, nil
}

// Fig6 reproduces Figure 6: speedup in reaching a fixed solution
// quality for 1..4 CLWs (TSWs=4), on the two circuits the paper plots.
func Fig6(o Opts) (*Figure, error) {
	o = o.withDefaults()
	circuits := intersect(o.Circuits, []string{"c532", "c3540"})
	fig, err := speedupFigure(o, "fig06",
		"Speedup to reach cost < x vs number of CLWs (TSWs=4)",
		"CLWs per TSW", "fig6", circuits, []int{1, 2, 3, 4},
		func(cfg *core.Config, n int) { cfg.TSWs, cfg.CLWs = 4, n })
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: speedup grows with CLWs, steeper for larger circuits")
	return fig, nil
}

// Fig7 reproduces Figure 7: effect of the number of TSWs (high-level
// parallelization) on the best solution quality, with 1 CLW per TSW.
func Fig7(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "fig07",
		Title:  "Effect of number of TSWs on solution quality (CLWs=1)",
		XLabel: "TSWs",
		YLabel: "best fuzzy cost (lower is better)",
	}
	clus := o.testbed()
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		s := stats.Series{Name: name}
		for tsws := 1; tsws <= 8; tsws++ {
			var acc stats.Accumulator
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = tsws, 1
				cfg.Seed = o.seedFor("fig7", name, rep)
				res, err := runOne(o, fmt.Sprintf("fig7 %s tsw=%d rep=%d", name, tsws, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				acc.Add(res.BestCost)
			}
			s.Add(float64(tsws), acc.Mean())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: adding TSWs beyond 4 is not useful")
	return fig, nil
}

// Fig8 reproduces Figure 8: speedup in reaching a fixed solution
// quality for 1..8 TSWs (CLWs=1), on the two circuits the paper plots.
func Fig8(o Opts) (*Figure, error) {
	o = o.withDefaults()
	circuits := intersect(o.Circuits, []string{"c532", "c3540"})
	fig, err := speedupFigure(o, "fig08",
		"Speedup to reach cost < x vs number of TSWs (CLWs=1)",
		"TSWs", "fig8", circuits, []int{1, 2, 3, 4, 5, 6, 7, 8},
		func(cfg *core.Config, n int) { cfg.TSWs, cfg.CLWs = n, 1 })
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: speedup peaks near 4 TSWs (critical point), degrades beyond")
	return fig, nil
}

// Fig9 reproduces Figure 9: effect of the TSW diversification step.
// Two best-cost traces per circuit (4 TSWs, 1 CLW): diversified vs
// non-diversified. The x axis is virtual time.
func Fig9(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "fig09",
		Title:  "Effect of diversification (TSWs=4, CLWs=1)",
		XLabel: "virtual time (s)",
		YLabel: "best fuzzy cost",
	}
	clus := o.testbed()
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		finals := map[string][]float64{}
		for _, div := range []bool{true, false} {
			label := "div"
			if !div {
				label = "nodiv"
			}
			// Traces from different seeds cannot be averaged pointwise:
			// plot the repeat with the median final cost and report the
			// mean finals in the notes.
			results := make([]*core.Result, 0, o.Repeats)
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = 4, 1
				cfg.GlobalIters = 10
				if !div {
					cfg.DiversifyDepth = 0
				}
				cfg.Seed = o.seedFor("fig9", name, rep)
				res, err := runOne(o, fmt.Sprintf("fig9 %s %s rep=%d", name, label, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				finals[label] = append(finals[label], res.BestCost)
			}
			med := medianResult(results)
			s := stats.Series{Name: name + "/" + label}
			for _, p := range med.Trace.Points {
				s.Add(p.Time, p.Cost)
			}
			fig.Series = append(fig.Series, s)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: mean final cost div=%.4f nodiv=%.4f over %d seed(s)",
			name, stats.Mean(finals["div"]), stats.Mean(finals["nodiv"]), o.Repeats))
	}
	fig.Notes = append(fig.Notes, "paper: the diversified run significantly outperforms the non-diversified run")
	return fig, nil
}

// medianResult returns the run whose final best cost is the median of
// the set (ties broken by order).
func medianResult(rs []*core.Result) *core.Result {
	best := append([]*core.Result(nil), rs...)
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && best[j].BestCost < best[j-1].BestCost; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	return best[(len(best)-1)/2]
}

// Fig10 reproduces Figure 10: trading global iterations (more
// diversification) against local iterations (more local investigation)
// at a fixed total budget. x = local iterations per global iteration,
// y = mean best cost; one series per circuit.
func Fig10(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "fig10",
		Title:  "Local versus global iterations at fixed budget",
		XLabel: "local iterations per global iteration",
		YLabel: "best fuzzy cost",
	}
	// Budget = G*L constant; the paper decreases G while increasing L.
	// The extremes bracket the sweet spot: G=64 leaves only a handful of
	// local iterations per round, G=2 almost never synchronizes or
	// diversifies.
	budget := o.scaled(320, 64)
	splits := [][2]int{
		{64, budget / 64}, {32, budget / 32}, {16, budget / 16},
		{8, budget / 8}, {4, budget / 4}, {2, budget / 2},
	}
	clus := o.testbed()
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		s := stats.Series{Name: name}
		for _, gl := range splits {
			g, l := gl[0], gl[1]
			if l < 1 {
				continue
			}
			var acc stats.Accumulator
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = 4, 1
				cfg.GlobalIters, cfg.LocalIters = g, l
				cfg.Seed = o.seedFor("fig10", name, rep)
				res, err := runOne(o, fmt.Sprintf("fig10 %s G=%d L=%d rep=%d", name, g, l, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				acc.Add(res.BestCost)
			}
			s.Add(float64(l), acc.Mean())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: no general conclusion — the best split is instance-dependent")
	return fig, nil
}

// Fig11 reproduces Figure 11: best cost versus runtime for the
// heterogeneous (half-sync) and homogeneous (full barrier) collection
// modes, 4 TSWs x 4 CLWs on the 12-machine testbed.
func Fig11(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "fig11",
		Title:  "Best cost vs runtime: heterogeneous (half-sync) vs homogeneous collection (TSWs=4, CLWs=4)",
		XLabel: "virtual time (s)",
		YLabel: "best fuzzy cost",
	}
	clus := o.testbed()
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		for _, half := range []bool{true, false} {
			cfg := baseConfig(o)
			cfg.TSWs, cfg.CLWs = 4, 4
			cfg.GlobalIters = 10
			// Below ~16 local iterations every compound move still finds
			// an improving first step and early-accepts, so forced
			// reports never land mid-move and the two modes coincide.
			if cfg.LocalIters < 16 {
				cfg.LocalIters = 16
			}
			cfg.HalfSync = half
			cfg.Seed = o.seedFor("fig11", name, 0)
			label := "het"
			if !half {
				label = "hom"
			}
			res, err := runOne(o, fmt.Sprintf("fig11 %s %s", name, label), nl, clus, cfg)
			if err != nil {
				return nil, err
			}
			s := stats.Series{Name: name + "/" + label}
			for _, p := range res.Trace.Points {
				s.Add(p.Time, p.Cost)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	fig.Notes = append(fig.Notes,
		"paper: same final quality, heterogeneous run finishes markedly earlier and is never worse at the end")
	return fig, nil
}

// intersect keeps the elements of want that are present in have,
// preserving want's order; if the intersection is empty it falls back to
// have (so restricted test circuit sets still exercise the driver).
func intersect(have, want []string) []string {
	set := map[string]bool{}
	for _, h := range have {
		set[h] = true
	}
	var out []string
	for _, w := range want {
		if set[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return have
	}
	return out
}
