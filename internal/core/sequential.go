package core

import (
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/stats"
	"pts/internal/tabu"
)

// RunSequential executes a plain single-threaded tabu search with the
// same problem setup and parameters as Run — the "no parallelization"
// baseline every speedup is ultimately judged against. Virtual time is
// charged analytically on one reference machine: no workers, no
// messages, no synchronization cost.
//
// Iteration budget: GlobalIters rounds of LocalIters iterations, with
// the same diversification at each round boundary (restricted to the
// whole cell space, since there is only one searcher).
func RunSequential(nl *netlist.Netlist, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p0, err := placement.New(nl, placement.AutoLayout(nl, cfg.Utilization))
	if err != nil {
		return nil, err
	}
	p0.Randomize(rng.New(rng.Derive(cfg.Seed, "core.initial", nl.Name)))
	ev, err := cost.NewEvaluator(p0, cfg.Cost)
	if err != nil {
		return nil, err
	}
	initCost := ev.Cost()
	prob := cost.Problem{Ev: ev}
	configureEval(prob, cfg, true) // the one searcher batch-evaluates, like a CLW
	defer tabu.Close(prob)
	s := tabu.NewSearch(prob, tabu.Params{
		Tenure:       cfg.Tenure,
		Trials:       cfg.Trials,
		Depth:        cfg.Depth,
		RefreshEvery: cfg.RefreshEvery,
		Seed:         rng.Derive(cfg.Seed, "core.sequential"),
	})

	// Analytic virtual clock: the same work model the parallel runtime
	// charges, on one idle speed-1.0 machine.
	now := 0.0
	iterWork := float64(cfg.Trials*cfg.Depth) * cfg.WorkPerTrial
	divWork := float64(cfg.DiversifyDepth*cfg.Trials) * cfg.WorkPerTrial
	staWork := workSTA(cfg, int32(nl.NumCells()))

	var trace stats.Trace
	trace.Record(0, initCost)
	best := initCost
	note := func() {
		if s.BestCost() < best {
			best = s.BestCost()
			trace.Record(now, best)
		}
	}
	var st WorkerStats
	for g := 0; g < cfg.GlobalIters; g++ {
		if cfg.DiversifyDepth > 0 {
			s.Diversify(cfg.DiversifyDepth, 0, prob.Size())
			now += divWork + staWork
			st.Diversifications++
			note()
		}
		for l := 0; l < cfg.LocalIters; l++ {
			s.Step()
			now += iterWork
			st.LocalIters++
			note()
		}
	}
	trace.Record(now, best)

	st.MovesAccepted = s.Stats.Accepted
	st.TabuRejected = s.Stats.TabuRejected
	st.Aspirations = s.Stats.Aspirations
	st.CandidatesBuilt = s.Stats.Steps
	st.TrialsCharged = s.Stats.Steps * int64(cfg.Trials*cfg.Depth)

	if err := ev.ImportPerm(s.BestSnapshot()); err != nil {
		return nil, err
	}
	return &Result{
		BestCost:     s.BestCost(),
		BestPerm:     s.BestSnapshot(),
		Objectives:   ev.Objectives(),
		CriticalPath: ev.CriticalPath(),
		InitialCost:  initCost,
		Elapsed:      now,
		Rounds:       cfg.GlobalIters,
		Trace:        trace,
		Stats:        st,
	}, nil
}
