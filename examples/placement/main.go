// Placement walkthrough: the full VLSI flow underneath the parallel
// search — build a circuit, place it, inspect the three objectives and
// the fuzzy cost, improve it with the sequential tabu engine, and show
// the before/after layout.
//
//	go run ./examples/placement
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/tabu"
)

func main() {
	// A small custom circuit so the layout fits on screen.
	nl, err := netlist.Generate(netlist.GenConfig{Name: "demo", Cells: 48, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s\n\n", nl.ComputeStats())

	// Random initial placement on an auto-sized slot grid.
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		log.Fatal(err)
	}
	p.Randomize(rng.New(42))

	// The fuzzy evaluator derives goals from this initial solution:
	// reach half the initial wirelength, 60% of the weighted delay, 85%
	// of the layout width.
	ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report := func(tag string) {
		o := ev.Objectives()
		fmt.Printf("%-8s cost=%.4f  wirelength=%-6.0f CPD=%-8.2f width=%.0f\n",
			tag, ev.Cost(), o.Wirelength, ev.CriticalPath(), o.Area)
	}

	fmt.Println("initial layout:")
	fmt.Println(p.ASCII(12))
	report("initial")

	// Sequential tabu search over the same evaluator: this is exactly
	// what one TSW with one CLW computes inside the parallel algorithm.
	s := tabu.NewSearch(cost.Problem{Ev: ev}, tabu.Params{
		Tenure:       8,
		Trials:       10,
		Depth:        3,
		RefreshEvery: 32,
		Seed:         7,
	})
	s.Run(400)

	// Adopt the best solution found and rescore it exactly.
	if err := ev.ImportPerm(s.BestSnapshot()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter 400 tabu iterations:")
	fmt.Println(p.ASCII(12))
	report("final")
	fmt.Printf("\nsearch stats: %+v\n", s.Stats)

	// Everything above is what one worker computes inside the parallel
	// algorithm; the public API runs the whole two-level search in one
	// call on the same kind of generated circuit.
	prob, err := pts.GeneratePlacement("demo", 48, 9)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pts.Solve(context.Background(), prob,
		pts.WithWorkers(2, 2), pts.WithIterations(6, 40), pts.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	d := res.Details.(pts.PlacementDetails)
	fmt.Printf("\npts.Solve on the same circuit: cost %.4f -> %.4f, wirelength %.0f, CPD %.2f ns\n",
		res.InitialCost, res.BestCost, d.Wirelength, d.CriticalPath)
}
