package tabu

import (
	"math"
	"math/rand"
)

// EliteSet is the medium-term memory behind intensification: the k best
// distinct solutions seen so far. The paper lists intensification —
// forcing the search back toward features of recent good solutions —
// as the second use of tabu memory structures; restarting from an
// elite solution is its classic realization.
type EliteSet struct {
	cap   int
	costs []float64
	snaps [][]int32
}

// NewEliteSet creates an elite set holding up to capacity solutions.
func NewEliteSet(capacity int) *EliteSet {
	if capacity < 1 {
		capacity = 1
	}
	return &EliteSet{cap: capacity}
}

// Len returns the number of stored solutions.
func (e *EliteSet) Len() int { return len(e.costs) }

// Best returns the best stored cost, or +Inf when empty.
func (e *EliteSet) Best() float64 {
	if len(e.costs) == 0 {
		return inf()
	}
	return e.costs[0]
}

// Worst returns the worst stored cost, or +Inf when empty.
func (e *EliteSet) Worst() float64 {
	if len(e.costs) == 0 {
		return inf()
	}
	return e.costs[len(e.costs)-1]
}

func inf() float64 { return math.Inf(1) }

// Offer considers a solution for membership. It copies the snapshot
// only when accepted. Duplicate costs are treated as the same solution
// and rejected, which keeps the set diverse without deep comparisons.
func (e *EliteSet) Offer(cost float64, snap []int32) bool {
	// Find insertion point (ascending by cost).
	pos := len(e.costs)
	for i, c := range e.costs {
		if cost == c {
			return false
		}
		if cost < c {
			pos = i
			break
		}
	}
	if pos == e.cap {
		return false
	}
	cp := append([]int32(nil), snap...)
	e.costs = append(e.costs, 0)
	e.snaps = append(e.snaps, nil)
	copy(e.costs[pos+1:], e.costs[pos:])
	copy(e.snaps[pos+1:], e.snaps[pos:])
	e.costs[pos] = cost
	e.snaps[pos] = cp
	if len(e.costs) > e.cap {
		e.costs = e.costs[:e.cap]
		e.snaps = e.snaps[:e.cap]
	}
	return true
}

// Pick returns a stored solution: rank 0 is the best; a negative rank
// picks uniformly at random. The returned snapshot is a copy.
func (e *EliteSet) Pick(r *rand.Rand, rank int) (float64, []int32, bool) {
	if len(e.costs) == 0 {
		return 0, nil, false
	}
	if rank < 0 {
		rank = r.Intn(len(e.costs))
	}
	if rank >= len(e.costs) {
		rank = len(e.costs) - 1
	}
	return e.costs[rank], append([]int32(nil), e.snaps[rank]...), true
}

// Intensify restarts the search from a random elite solution: the
// current solution is replaced, the tabu list cleared (the region is
// deliberately revisited), and the incumbent updated. Reports whether a
// restart happened.
func (s *Search) Intensify(elite *EliteSet) bool {
	_, snap, ok := elite.Pick(s.r, -1)
	if !ok {
		return false
	}
	if err := s.Prob.Restore(snap); err != nil {
		return false
	}
	if rf, ok := s.Prob.(Refresher); ok {
		rf.Refresh()
	}
	s.List.Reset()
	s.noteCost()
	return true
}
