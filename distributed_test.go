package pts

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// distOpts is the shared search configuration of the cross-transport
// equality tests. Half-sync stays off: with full collection the search
// outcome depends only on the seed-derived random streams (which every
// transport derives from the task spawn paths), not on message timing —
// so the TCP run must reproduce the in-process run exactly.
func distOpts() []Option {
	return []Option{
		WithWorkers(3, 2),
		WithIterations(4, 10),
		WithTabu(10, 6, 3),
		WithSeed(7),
		WithHalfSync(false),
	}
}

// TestDistributedMatchesInProcess is the acceptance gate of the TCP
// transport: a fixed-seed run over loopback TCP — one master plus three
// worker processes with distinct speed factors — returns the same best
// cost (and permutation) as the single-process real-mode run.
func TestDistributedMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	ctx := context.Background()
	newProblem := func() Problem { return RandomQAP(26, 11) }

	single, err := Solve(ctx, newProblem(), append(distOpts(), WithRealTime())...)
	if err != nil {
		t.Fatal(err)
	}

	master, err := ListenMaster("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// Three workers with the paper's three speed classes; each builds
	// the problem from the same inputs, as separate processes would.
	speeds := []float64{1.0, 0.55, 0.3}
	var wg sync.WaitGroup
	workerRes := make([]*Result, len(speeds))
	workerErr := make([]error, len(speeds))
	for i, sp := range speeds {
		wg.Add(1)
		go func(i int, sp float64) {
			defer wg.Done()
			workerRes[i], workerErr[i] = Solve(ctx, newProblem(),
				WithJoin(master.Addr()),
				WithNode(fmt.Sprintf("node%d", i), sp, 1),
			)
		}(i, sp)
	}

	dist, err := Solve(ctx, newProblem(), append(distOpts(), WithTransport(master.Transport()))...)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if dist.BestCost != single.BestCost {
		t.Errorf("best cost differs: TCP %.9f, in-process %.9f", dist.BestCost, single.BestCost)
	}
	if !reflect.DeepEqual(dist.Best, single.Best) {
		t.Error("best permutation differs between TCP and in-process runs")
	}
	if dist.Tasks != single.Tasks || dist.Messages != single.Messages {
		t.Errorf("runtime counters differ: TCP %d tasks/%d msgs, in-process %d/%d",
			dist.Tasks, dist.Messages, single.Tasks, single.Messages)
	}
	for i, wr := range workerRes {
		if workerErr[i] != nil {
			t.Errorf("worker %d: %v", i, workerErr[i])
			continue
		}
		if wr.BestCost != dist.BestCost || wr.Rounds != dist.Rounds {
			t.Errorf("worker %d saw best %.9f after %d rounds, master %.9f after %d",
				i, wr.BestCost, wr.Rounds, dist.BestCost, dist.Rounds)
		}
		if !reflect.DeepEqual(wr.Best, dist.Best) {
			t.Errorf("worker %d's best permutation differs from the master's", i)
		}
	}
}

// TestDistributedWithListenSugar covers the WithListen form and a
// worker daemon (Worker) serving the job.
func TestDistributedWithListenSugar(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	newProblem := func() Problem { return RandomQAP(20, 3) }

	// The master's port must be known before Solve binds it, so pick one
	// by probing (WithListen is the CLI's path, where the operator picks
	// the port).
	probe, err := ListenMaster("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	workerDone := make(chan error, 1)
	var workerSaw *Result
	go func() {
		workerDone <- Worker(ctx, newProblem(), addr,
			NodeOptions{Name: "daemon0", Speed: 0.5, Capacity: 2}, 1,
			func(r *Result) { workerSaw = r })
	}()

	res, err := Solve(ctx, newProblem(), append(distOpts(), WithListen(addr, 1))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		t.Fatalf("worker daemon: %v", err)
	}
	if workerSaw == nil || workerSaw.BestCost != res.BestCost {
		t.Errorf("daemon result %+v does not match master best %.9f", workerSaw, res.BestCost)
	}
	if res.BestCost >= res.InitialCost {
		t.Error("no improvement over the initial solution")
	}
}

// TestAdaptiveWorkerLossDegradesGracefully is the loss-tolerance
// acceptance gate: under WithAdaptive, killing a CLW-hosting worker
// process mid-run must NOT abort the run — the dead worker's element
// range is folded back into the survivors, a replacement is respawned
// onto surviving capacity (restoring the pre-kill CLW count), and the
// master returns a complete (non-Interrupted) result over the full
// iteration budget.
func TestAdaptiveWorkerLossDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	ctx := context.Background()
	newProblem := func() Problem { return RandomQAP(30, 11) }

	master, err := ListenMaster("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// Join order fixes the slot ring: with 1 TSW x 3 CLWs over
	// (master + 3 workers), the TSW lands on the first worker and CLWs
	// on the second, third and the master process — so killing the
	// third worker kills exactly one CLW.
	waitJoined := func(want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for len(master.Workers()) < want {
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d workers joined", len(master.Workers()), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	type workerOutcome struct {
		res *Result
		err error
	}
	startWorker := func(wctx context.Context, name string, speed float64) chan workerOutcome {
		ch := make(chan workerOutcome, 1)
		go func() {
			var saw *Result
			err := Worker(wctx, newProblem(), master.Addr(),
				NodeOptions{Name: name, Speed: speed}, 1,
				func(r *Result) { saw = r })
			ch <- workerOutcome{saw, err}
		}()
		return ch
	}

	fastCh := startWorker(ctx, "fast", 4)
	waitJoined(1)
	slowCh := startWorker(ctx, "slow", 1)
	waitJoined(2)
	doomedCtx, killDoomed := context.WithCancel(ctx)
	defer killDoomed()
	doomedCh := startWorker(doomedCtx, "doomed", 1)
	waitJoined(3)

	const rounds = 8
	killed := false
	res, err := Solve(ctx, newProblem(),
		WithWorkers(1, 3),
		WithIterations(rounds, 15),
		WithTabu(10, 6, 3),
		WithSeed(7),
		WithHalfSync(false),
		WithAdaptive(true),
		WithWorkScale(2), // stretch rounds so the kill lands mid-run
		WithTransport(master.Transport()),
		WithProgress(func(s Snapshot) {
			if s.Round == 2 && !killed {
				killed = true
				killDoomed() // kill -9 the CLW host between rounds 2 and 3
			}
		}),
	)
	if err != nil {
		t.Fatalf("adaptive run with a killed worker: %v", err)
	}
	if res.Interrupted {
		t.Fatal("run reported Interrupted; adaptive mode must degrade gracefully")
	}
	if res.Rounds != rounds {
		t.Errorf("completed %d rounds, want the full %d", res.Rounds, rounds)
	}
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
	if res.Stats.WorkersRespawned != 1 {
		t.Errorf("WorkersRespawned = %d, want 1 (parallelism restored, not just degraded)", res.Stats.WorkersRespawned)
	}
	if res.Stats.Rebalances == 0 {
		t.Error("the dead CLW's range was never re-absorbed (no rebalance adopted)")
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("no improvement: %v -> %v", res.InitialCost, res.BestCost)
	}

	// The survivors see the master's completed result; the doomed worker
	// errors out (its job died under it), which is its expected outcome.
	for name, ch := range map[string]chan workerOutcome{"fast": fastCh, "slow": slowCh} {
		select {
		case o := <-ch:
			if o.err != nil {
				t.Errorf("worker %s: %v", name, o.err)
			} else if o.res == nil || o.res.BestCost != res.BestCost || o.res.Interrupted {
				t.Errorf("worker %s result %+v does not match master best %.9f", name, o.res, res.BestCost)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("worker %s never finished", name)
		}
	}
	select {
	case o := <-doomedCh:
		if o.err == nil && o.res != nil && !o.res.Interrupted {
			t.Error("doomed worker reported a clean completed job after being killed")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker never returned")
	}
}

// TestDistributedMasterRestartResumes is the crash-only acceptance
// gate at the process level: a store-backed distributed run whose
// master is cancelled mid-run is picked up by a fresh master — new
// port, new worker processes — over the same state directory, and
// finishes with the same best solution as the run left uninterrupted.
func TestDistributedMasterRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	ctx := context.Background()
	newProblem := func() Problem { return RandomQAP(24, 5) }
	searchOpts := func() []Option {
		return []Option{
			WithWorkers(2, 2),
			WithIterations(6, 10),
			WithTabu(10, 6, 3),
			WithSeed(7),
			WithHalfSync(false),
		}
	}

	// The reference outcome: the same store-backed configuration left
	// uninterrupted. Single-process real mode suffices — with half-sync
	// off the TCP runs reproduce it exactly.
	ref, err := Solve(ctx, newProblem(),
		append(searchOpts(), WithRealTime(), WithStore(NewMemStore()))...)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// runPhase starts a fresh master and two fresh worker processes over
	// st; interruptAt > 0 cancels the master mid-run at that round.
	runPhase := func(interruptAt int) *Result {
		t.Helper()
		master, err := ListenMaster("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer master.Close()

		wctx, wcancel := context.WithTimeout(ctx, time.Minute)
		defer wcancel()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// An interrupted phase kills the job under its workers;
				// their error (if any) is that phase's expected outcome.
				_ = Worker(wctx, newProblem(), master.Addr(),
					NodeOptions{Name: fmt.Sprintf("node%d", i), Speed: 1}, 1,
					func(*Result) {})
			}(i)
		}

		mctx, cancel := context.WithCancel(ctx)
		defer cancel()
		opts := append(searchOpts(),
			WithStore(st),
			WithTransport(master.Transport()),
		)
		if interruptAt > 0 {
			opts = append(opts, WithProgress(func(s Snapshot) {
				if s.Round == interruptAt {
					cancel() // the "crash": the master abandons the run mid-budget
				}
			}))
		}
		res, err := Solve(mctx, newProblem(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		wcancel()
		wg.Wait()
		return res
	}

	first := runPhase(2)
	if !first.Interrupted {
		t.Fatal("first master run was not interrupted")
	}
	if first.Rounds >= 6 {
		t.Fatalf("first master run completed all %d rounds, wanted a mid-run stop", first.Rounds)
	}

	resumed := runPhase(0)
	if resumed.Interrupted {
		t.Fatal("resumed run reported Interrupted")
	}
	if resumed.Rounds != 6 {
		t.Errorf("resumed run completed %d rounds, want the full 6", resumed.Rounds)
	}
	if resumed.BestCost != ref.BestCost {
		t.Errorf("resumed best %.9f != uninterrupted best %.9f", resumed.BestCost, ref.BestCost)
	}
	if !reflect.DeepEqual(resumed.Best, ref.Best) {
		t.Error("resumed best permutation differs from the uninterrupted run's")
	}
	// Clean completion deletes the snapshot: a later run starts fresh.
	if _, ok, _ := st.Get("runs/run"); ok {
		t.Error("snapshot survived clean completion")
	}
}

// TestDistributedOptionValidation pins the configuration errors.
func TestDistributedOptionValidation(t *testing.T) {
	ctx := context.Background()
	q := RandomQAP(8, 1)
	if _, err := Solve(ctx, q, WithListen("127.0.0.1:0", 1), WithVirtualTime()); err == nil {
		t.Error("WithListen + WithVirtualTime accepted")
	}
	if _, err := Solve(ctx, q, WithJoin("127.0.0.1:1"), WithListen("127.0.0.1:0", 1)); err == nil {
		t.Error("WithJoin + WithListen accepted")
	}
	if _, err := Solve(ctx, q, WithListen("127.0.0.1:0", 0)); err == nil {
		t.Error("WithListen with zero workers accepted")
	}
	if _, err := Solve(ctx, q, WithJoin("127.0.0.1:1"), WithVirtualTime()); err == nil {
		t.Error("WithJoin + WithVirtualTime accepted")
	}
}
