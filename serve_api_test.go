package pts

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServerFleet stands up a Server plus n resolver-equipped worker
// goroutines (the in-test stand-ins for `pts -worker -any` processes)
// and an httptest front door. The returned stop function drains the
// workers gracefully.
func startServerFleet(t *testing.T, n int) (*Server, *httptest.Server, func()) {
	t.Helper()
	srv, err := ListenServer(ServerOptions{Logf: t.Logf})
	if err != nil {
		t.Fatalf("ListenServer: %v", err)
	}
	drain := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := Worker(context.Background(), nil, srv.FleetAddr(),
				NodeOptions{Name: fmt.Sprintf("fleet%d", i), Drain: drain}, 0, nil)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.Workers()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", len(srv.Workers()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	hts := httptest.NewServer(srv.Handler())
	stop := func() {
		hts.Close()
		close(drain)
		wg.Wait()
		srv.Close()
	}
	return srv, hts, stop
}

// submitJSON posts a job and decodes the created view.
func submitJSON(t *testing.T, hts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d (%+v)", resp.StatusCode, v)
	}
	return v.ID
}

// jobView is the slice of the daemon's job view these tests consume.
type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Result *struct {
		Problem     string  `json:"Problem"`
		BestCost    float64 `json:"BestCost"`
		BestPerm    []int32 `json:"BestPerm"`
		InitialCost float64 `json:"InitialCost"`
		Rounds      int     `json:"Rounds"`
		Interrupted bool    `json:"Interrupted"`
	} `json:"result"`
}

// waitJob polls GET /v1/jobs/{id} until the job is terminal.
func waitJob(t *testing.T, hts *httptest.Server, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(hts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		resp.Body.Close()
		switch v.Status {
		case "done", "failed", "cancelled":
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerSingleJobMatchesSolve is the daemon's reproducibility
// acceptance gate: a static fixed-seed half-sync-off job submitted over
// HTTP to a 2-worker daemon fleet returns bit-identically the result of
// the plain pts.Solve real-mode run of the same configuration.
func TestServerSingleJobMatchesSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	baseOpts := []Option{
		WithWorkers(2, 1),
		WithIterations(4, 10),
		WithTabu(10, 6, 3),
		WithSeed(7),
		WithHalfSync(false),
		WithRealTime(),
	}
	p, err := PlacementBenchmark("highway")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(context.Background(), p, baseOpts...)
	if err != nil {
		t.Fatal(err)
	}

	_, hts, stop := startServerFleet(t, 2)
	defer stop()
	id := submitJSON(t, hts, `{
	  "problem": {"kind": "placement", "circuit": "highway"},
	  "workers": 2,
	  "config": {"tsws": 2, "clws": 1, "global_iters": 4, "local_iters": 10,
	             "tenure": 10, "trials": 6, "depth": 3, "seed": 7, "half_sync": false}
	}`)
	got := waitJob(t, hts, id, time.Minute)
	if got.Status != "done" || got.Result == nil {
		t.Fatalf("daemon job = %+v, want done with result", got)
	}
	if got.Result.BestCost != want.BestCost {
		t.Errorf("best cost differs: daemon %.9f, Solve %.9f", got.Result.BestCost, want.BestCost)
	}
	if !reflect.DeepEqual(got.Result.BestPerm, want.Best) {
		t.Error("best permutation differs between daemon and Solve runs")
	}
	if got.Result.Rounds != want.Rounds || got.Result.Interrupted {
		t.Errorf("daemon rounds/interrupted = %d/%v, want %d/false",
			got.Result.Rounds, got.Result.Interrupted, want.Rounds)
	}
}

// TestServerConcurrentJobsShareFleet drives three jobs — two placement,
// one QAP — through a 3-worker fleet at once (one worker each) and
// checks they all complete, that at least two genuinely overlapped in
// time, and that the per-job SSE stream carries one progress event per
// global iteration.
func TestServerConcurrentJobsShareFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	_, hts, stop := startServerFleet(t, 3)
	defer stop()

	body := func(problem string) string {
		return fmt.Sprintf(`{
		  "problem": %s,
		  "workers": 1,
		  "config": {"tsws": 1, "clws": 2, "global_iters": 3, "local_iters": 8,
		             "seed": 5, "half_sync": false}
		}`, problem)
	}
	ids := []string{
		submitJSON(t, hts, body(`{"kind": "placement", "circuit": "highway"}`)),
		submitJSON(t, hts, body(`{"kind": "placement", "circuit": "c532"}`)),
		submitJSON(t, hts, body(`{"kind": "qap", "n": 20, "seed": 3}`)),
	}

	// With three 1-worker jobs on a 3-worker fleet, all three must be
	// admitted without queueing.
	var running int
	deadline := time.Now().Add(10 * time.Second)
	for running < 2 && time.Now().Before(deadline) {
		running = 0
		resp, err := http.Get(hts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []jobView `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		done := 0
		for _, j := range list.Jobs {
			switch j.Status {
			case "running":
				running++
			case "done":
				done++
			}
		}
		if done == len(ids) { // too fast to observe overlap; fine
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	for i, id := range ids {
		v := waitJob(t, hts, id, time.Minute)
		if v.Status != "done" || v.Result == nil || v.Result.Interrupted {
			t.Fatalf("job %d (%s) = %+v, want clean completion", i, id, v)
		}
		if v.Result.BestCost > v.Result.InitialCost {
			t.Errorf("job %d did not improve: %v -> %v", i, v.Result.InitialCost, v.Result.BestCost)
		}
	}

	// The event stream of a finished job replays queued..done with one
	// progress event per global iteration.
	resp, err := http.Get(hts.URL + "/v1/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var progress, terminal int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		switch line := sc.Text(); line {
		case "event: progress":
			progress++
		case "event: done":
			terminal++
		}
	}
	if progress != 3 || terminal != 1 {
		t.Errorf("SSE replay: %d progress + %d done events, want 3 + 1", progress, terminal)
	}
}

// TestServerQAPJobMatchesSolve pins the QAP resolver path: the daemon's
// QAP job equals the plain Solve run of the identical instance.
func TestServerQAPJobMatchesSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	want, err := Solve(context.Background(), RandomQAP(22, 9),
		WithWorkers(2, 1), WithIterations(3, 10), WithSeed(4),
		WithHalfSync(false), WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	_, hts, stop := startServerFleet(t, 2)
	defer stop()
	id := submitJSON(t, hts, `{
	  "problem": {"kind": "qap", "n": 22, "seed": 9},
	  "workers": 2,
	  "config": {"tsws": 2, "clws": 1, "global_iters": 3, "local_iters": 10,
	             "seed": 4, "half_sync": false}
	}`)
	got := waitJob(t, hts, id, time.Minute)
	if got.Status != "done" || got.Result == nil {
		t.Fatalf("daemon job = %+v, want done", got)
	}
	if got.Result.BestCost != want.BestCost || !reflect.DeepEqual(got.Result.BestPerm, want.Best) {
		t.Errorf("daemon QAP best %.9f differs from Solve %.9f (or permutation differs)",
			got.Result.BestCost, want.BestCost)
	}
}

// TestServerFlowShopJobMatchesSolve pins the scheduling resolver path:
// a flow shop job submitted over HTTP to a resolver-equipped fleet
// returns bit-identically the plain Solve run of the same embedded
// instance — the master and both workers each construct ta001 from its
// name alone, and the fingerprint handshake proves they built the same
// schedule matrix.
func TestServerFlowShopJobMatchesSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	prob, err := FlowShopBenchmark("ta001")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(context.Background(), prob,
		WithWorkers(2, 1), WithIterations(3, 10), WithSeed(4),
		WithHalfSync(false), WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	_, hts, stop := startServerFleet(t, 2)
	defer stop()
	id := submitJSON(t, hts, `{
	  "problem": {"kind": "flowshop", "instance": "ta001"},
	  "workers": 2,
	  "config": {"tsws": 2, "clws": 1, "global_iters": 3, "local_iters": 10,
	             "seed": 4, "half_sync": false}
	}`)
	got := waitJob(t, hts, id, time.Minute)
	if got.Status != "done" || got.Result == nil {
		t.Fatalf("daemon job = %+v, want done", got)
	}
	if got.Result.BestCost != want.BestCost || !reflect.DeepEqual(got.Result.BestPerm, want.Best) {
		t.Errorf("daemon flow shop best %.0f differs from Solve %.0f (or permutation differs)",
			got.Result.BestCost, want.BestCost)
	}
}

// TestServerJobShopBadInstanceRefused covers the resolver's error path:
// a submission naming a nonexistent embedded instance is refused at the
// front door with the bad_spec envelope, before anything is queued.
func TestServerJobShopBadInstanceRefused(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	_, hts, stop := startServerFleet(t, 1)
	defer stop()
	resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", strings.NewReader(`{
	  "problem": {"kind": "jobshop", "instance": "zz99"},
	  "workers": 0,
	  "config": {"tsws": 2, "clws": 1, "global_iters": 1, "local_iters": 5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || v.Error.Code != "bad_spec" {
		t.Fatalf("unknown instance submission = %d %q, want 400 bad_spec", resp.StatusCode, v.Error.Code)
	}
	if !strings.Contains(v.Error.Message, "zz99") {
		t.Errorf("refusal %q does not name the unknown instance", v.Error.Message)
	}
}
