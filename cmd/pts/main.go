// Command pts runs one parallel tabu search through the public pts API
// and prints the outcome.
//
// Usage:
//
//	pts -circuit c532                          # defaults: 4 TSWs, 1 CLW
//	pts -circuit c3540 -tsws 4 -clws 4 -het=false
//	pts -circuit highway -mode real            # wall-clock goroutine run
//	pts -netlist my.net                        # search a custom circuit
//	pts -netlist s1494.bench                   # a real ISCAS-89 .bench file
//	pts -qap 64                                # quadratic assignment instead
//	pts -flowshop ta001                        # Taillard flow shop benchmark
//	pts -jobshop ft06                          # OR-Library job shop benchmark
//	pts -circuit c3540 -timeout 2s -progress   # bounded, streamed run
//	pts -circuit c532 -state-dir /tmp/run      # durable: re-run the same command to resume after a kill
//
// Distributed mode runs the same protocol across OS processes over TCP
// (every process must be given the same problem inputs):
//
//	pts -circuit c532 -serve :9017 -net-workers 3   # master: wait for 3 workers, then run
//	pts -circuit c532 -worker host:9017 -speed 0.55 # worker daemon: join and host tasks
//	pts -worker host:9017 -any -jobs 0              # fleet worker for ptsd: serve any workload until SIGTERM
//
// Worker daemons drain gracefully on SIGTERM (deregister from the
// master, then exit) and stop hard on Ctrl-C.
//
// The run is context-bound: -timeout and Ctrl-C both cancel it, and the
// best solution found so far is printed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"pts"
)

func main() {
	var (
		circuit  = flag.String("circuit", "c532", "benchmark circuit (highway, c532, c1355, c3540)")
		nlPath   = flag.String("netlist", "", "path to a netlist file (overrides -circuit)")
		qapN     = flag.Int("qap", 0, "solve a random QAP of this size instead of placement")
		fsName   = flag.String("flowshop", "", "solve an embedded flow shop benchmark (ta001) or Taillard file instead of placement")
		jsName   = flag.String("jobshop", "", "solve an embedded job shop benchmark (ft06, ft10, la01) or OR-Library file instead of placement")
		tsws     = flag.Int("tsws", 4, "number of tabu search workers")
		clws     = flag.Int("clws", 1, "candidate-list workers per TSW")
		gIters   = flag.Int("global", 10, "global iterations")
		lIters   = flag.Int("local", 40, "local iterations per global iteration")
		trials   = flag.Int("trials", 12, "trial pairs per compound-move step (m)")
		depth    = flag.Int("depth", 4, "compound move depth (d)")
		tenure   = flag.Int("tenure", 10, "tabu tenure")
		div      = flag.Int("diversify", 12, "diversification depth (0 = off)")
		het      = flag.Bool("het", true, "half-sync heterogeneous collection")
		adaptive = flag.Bool("adaptive", false, "throughput-proportional adaptive scheduling (speed-seeded shares, loss-tolerant distributed runs)")
		respawn  = flag.Bool("respawn", true, "adaptive mode: recover lost workers (respawn CLWs onto live capacity, resurrect TSWs from checkpoints); false = fold-only degradation")
		ckEvery  = flag.Int("checkpoint-every", 1, "adaptive mode: reports between TSW recovery checkpoints")
		mode     = flag.String("mode", "virtual", "runtime: virtual or real")
		stateDir = flag.String("state-dir", "", "directory for durable run state; re-running the same command resumes an interrupted run from it")
		seed     = flag.Uint64("seed", 1, "run seed")
		loadSeed = flag.Uint64("cluster-seed", 12, "testbed load-trace seed (0 = idle machines)")
		timeout  = flag.Duration("timeout", 0, "cancel the run after this long (0 = unbounded)")
		progress = flag.Bool("progress", false, "print one line per global iteration")
		trace    = flag.Bool("trace", false, "print the best-cost trace")
		path     = flag.Bool("path", false, "print the critical path of the best placement")
		jsonOut  = flag.String("json", "", "write the full result as JSON to this file ('-' = stdout)")
		svgOut   = flag.String("svg", "", "write a congestion heat map of the best placement to this SVG file")

		// Distributed mode (real TCP processes instead of goroutines).
		serveAddr  = flag.String("serve", "", "master mode: listen on this address and run distributed (implies -mode real)")
		netWorkers = flag.Int("net-workers", 1, "master mode: worker processes to wait for before starting")
		workerAddr = flag.String("worker", "", "worker mode: join the master at this address and host tasks")
		anyProb    = flag.Bool("any", false, "worker mode: serve any built-in workload named by each job's payload (for ptsd fleets; ignores -circuit/-qap)")
		nodeName   = flag.String("node-name", "", "worker mode: cluster-unique node name (default hostname:pid)")
		speed      = flag.Float64("speed", 1.0, "worker mode: declared relative speed factor of this node")
		capacity   = flag.Int("capacity", 1, "worker mode: machine slots this node contributes")
		jobs       = flag.Int("jobs", 1, "worker mode: jobs to serve before exiting (0 = until Ctrl-C)")
		workScale  = flag.Float64("workscale", 0, "real/master mode: emulate machine speed by sleeping this many wall seconds per modeled second of work (workers receive the scale from the master's job)")
	)
	flag.Parse()

	// The run stops at the next protocol boundary on Ctrl-C or timeout
	// and reports the best solution found so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// A resolver-equipped worker builds each job's problem on demand and
	// needs no local inputs at all.
	if *workerAddr != "" && *anyProb {
		runWorker(ctx, nil, *workerAddr, *nodeName, *speed, *capacity, *jobs)
		return
	}

	// Non-placement workloads make the placement-only flags meaningless.
	warnPlacementOnly := func(sel string) {
		for flagName, set := range map[string]bool{
			"-netlist": *nlPath != "", "-path": *path, "-svg": *svgOut != "",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "pts: warning: %s is placement-only, ignored with %s\n", flagName, sel)
			}
		}
	}

	var selected []string
	for sel, set := range map[string]bool{
		"-qap": *qapN > 0, "-flowshop": *fsName != "", "-jobshop": *jsName != "",
	} {
		if set {
			selected = append(selected, sel)
		}
	}
	if len(selected) > 1 {
		sort.Strings(selected)
		fatal(fmt.Errorf("%s select different workloads; pass exactly one", strings.Join(selected, " and ")))
	}

	var problem pts.Problem
	var placed *pts.PlacementProblem
	switch {
	case *qapN > 0:
		warnPlacementOnly("-qap")
		problem = pts.RandomQAP(*qapN, *seed)
		fmt.Printf("problem %s: %d facilities\n", problem.Name(), *qapN)
	case *fsName != "":
		warnPlacementOnly("-flowshop")
		fs, err := loadFlowShop(*fsName)
		if err != nil {
			fatal(err)
		}
		problem = fs
		fmt.Printf("problem %s: %s\n", fs.Name(), fs.Describe())
	case *jsName != "":
		warnPlacementOnly("-jobshop")
		js, err := loadJobShop(*jsName)
		if err != nil {
			fatal(err)
		}
		problem = js
		fmt.Printf("problem %s: %s\n", js.Name(), js.Describe())
	default:
		var err error
		placed, err = loadCircuit(*nlPath, *circuit)
		if err != nil {
			fatal(err)
		}
		problem = placed
		fmt.Printf("circuit %s: %s\n", placed.Name(), placed.Describe())
	}

	if *workerAddr != "" {
		runWorker(ctx, problem, *workerAddr, *nodeName, *speed, *capacity, *jobs)
		return
	}

	opts := []pts.Option{
		pts.WithWorkers(*tsws, *clws),
		pts.WithIterations(*gIters, *lIters),
		pts.WithTabu(*tenure, *trials, *depth),
		pts.WithDiversification(*div),
		pts.WithHalfSync(*het),
		pts.WithAdaptive(*adaptive),
		pts.WithRespawn(*respawn),
		pts.WithCheckpointEvery(*ckEvery),
		pts.WithSeed(*seed),
		pts.WithCluster(pts.Testbed12(*loadSeed)),
		pts.WithWorkScale(*workScale),
	}
	if *stateDir != "" {
		st, err := pts.NewFileStore(*stateDir)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, pts.WithStore(st))
	}
	if *serveAddr != "" {
		if *mode == "virtual" {
			*mode = "real" // a distributed run is a real-time run
		}
		opts = append(opts, pts.WithListen(*serveAddr, *netWorkers))
		fmt.Printf("serving on %s, waiting for %d worker(s)\n", *serveAddr, *netWorkers)
	}
	switch *mode {
	case "virtual":
		opts = append(opts, pts.WithVirtualTime())
	case "real":
		opts = append(opts, pts.WithRealTime())
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *progress {
		opts = append(opts, pts.WithProgress(func(s pts.Snapshot) {
			fmt.Printf("round %3d/%d  best %.4f  elapsed %8.3fs  reports %d (%d forced)",
				s.Round, s.Rounds, s.BestCost, s.Elapsed, s.Reports, s.Forced)
			if len(s.Shares) > 0 {
				fmt.Printf("  shares %v", formatShares(s.Shares))
			}
			fmt.Println()
		}))
	}

	fmt.Printf("running %d TSWs x %d CLWs, %d global x %d local iterations (%s mode, half-sync=%v, adaptive=%v)\n",
		*tsws, *clws, *gIters, *lIters, *mode, *het, *adaptive)

	res, err := pts.Solve(ctx, problem, opts...)
	if err != nil {
		fatal(err)
	}

	if res.Interrupted {
		fmt.Printf("\nrun interrupted after %d rounds; best so far:\n", res.Rounds)
	}
	fmt.Printf("\ninitial cost   %.4f\n", res.InitialCost)
	fmt.Printf("best cost      %.4f  (%.1f%% better)\n", res.BestCost, 100*res.Improvement())
	if d, ok := res.Details.(pts.PlacementDetails); ok {
		fmt.Printf("wirelength     %.0f\n", d.Wirelength)
		fmt.Printf("critical path  %.2f ns\n", d.CriticalPath)
		fmt.Printf("area (row w)   %.0f\n", d.Area)
	}
	if d, ok := res.Details.(pts.QAPDetails); ok {
		fmt.Printf("exact cost     %.0f\n", d.Cost)
	}
	if d, ok := res.Details.(pts.FlowShopDetails); ok {
		printSchedDetails(d.Makespan, d.LowerBound, d.Optimum)
	}
	if d, ok := res.Details.(pts.JobShopDetails); ok {
		printSchedDetails(d.Makespan, d.LowerBound, d.Optimum)
	}
	fmt.Printf("elapsed        %.3f s (%s)\n", res.Elapsed, *mode)
	fmt.Printf("stats          %+v\n", res.Stats)
	fmt.Printf("runtime        %d tasks, %d messages\n", res.Tasks, res.Messages)

	if *trace {
		fmt.Println("\ntime(s)   best cost")
		for _, p := range res.Trace {
			fmt.Printf("%8.3f  %.4f\n", p.Time, p.Cost)
		}
	}
	if *path && placed != nil {
		text, err := placed.CriticalPathText(res.Best)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\ncritical path:")
		fmt.Print(text)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
	}
	if *svgOut != "" && placed != nil {
		if err := writeSVG(*svgOut, placed, res.Best); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

// formatShares renders the adaptive scheduler's share vector compactly.
func formatShares(shares []float64) string {
	out := "["
	for i, s := range shares {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", s)
	}
	return out + "]"
}

// runWorker runs the worker daemon: join the master, host this node's
// share of the search for each job, and print each job's outcome.
// SIGTERM drains gracefully — the worker deregisters from the master
// (fLeave) instead of just vanishing — while Ctrl-C (SIGINT, via ctx)
// stays the hard stop.
func runWorker(ctx context.Context, problem pts.Problem, addr, name string, speed float64, capacity, jobs int) {
	drain := make(chan struct{})
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	go func() {
		select {
		case <-term:
			fmt.Fprintln(os.Stderr, "pts: SIGTERM, draining worker")
			close(drain)
		case <-ctx.Done():
		}
	}()
	node := pts.NodeOptions{
		Name:     name,
		Speed:    speed,
		Capacity: capacity,
		Drain:    drain,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	fmt.Printf("worker joining %s (speed %.2f, capacity %d)\n", addr, speed, capacity)
	err := pts.Worker(ctx, problem, addr, node, jobs, func(res *pts.Result) {
		state := "completed"
		if res.Interrupted {
			state = "interrupted"
		}
		fmt.Printf("job %s: best cost %.4f (%.1f%% better) after %d rounds in %.3fs\n",
			state, res.BestCost, 100*res.Improvement(), res.Rounds, res.Elapsed)
	})
	if err != nil && ctx.Err() == nil {
		fatal(err)
	}
}

// writeSVG renders the best placement's congestion heat map.
func writeSVG(path string, p *pts.PlacementProblem, perm []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteSVG(f, perm); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSON dumps the result for downstream tooling.
func writeJSON(path string, res *pts.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// loadCircuit resolves the circuit: a named synthetic benchmark or a
// netlist file (text format, or ISCAS-89 .bench by extension).
func loadCircuit(path, name string) (*pts.PlacementProblem, error) {
	if path == "" {
		return pts.PlacementBenchmark(name)
	}
	return pts.PlacementFromFile(path)
}

// loadFlowShop resolves -flowshop: an existing file parses as Taillard
// format, anything else names an embedded benchmark.
func loadFlowShop(s string) (*pts.FlowShopProblem, error) {
	if _, err := os.Stat(s); err == nil {
		return pts.FlowShopFromFile(s)
	}
	return pts.FlowShopBenchmark(s)
}

// loadJobShop resolves -jobshop: an existing file parses as OR-Library
// format, anything else names an embedded benchmark.
func loadJobShop(s string) (*pts.JobShopProblem, error) {
	if _, err := os.Stat(s); err == nil {
		return pts.JobShopFromFile(s)
	}
	return pts.JobShopBenchmark(s)
}

// printSchedDetails renders the exact scoring of a scheduling solution
// with its instance bounds for context.
func printSchedDetails(makespan, lower, optimum int) {
	fmt.Printf("makespan       %d\n", makespan)
	if lower > 0 {
		fmt.Printf("lower bound    %d\n", lower)
	}
	if optimum > 0 {
		fmt.Printf("optimum        %d  (gap %.1f%%)\n", optimum,
			100*float64(makespan-optimum)/float64(optimum))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pts:", err)
	os.Exit(1)
}
