package core

import (
	"fmt"

	"pts/internal/cluster"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/pvm"
	"pts/internal/rng"
	"pts/internal/stats"
)

// Mode selects the execution runtime.
type Mode int

const (
	// Virtual runs on the deterministic discrete-event kernel with
	// modeled machine speeds, loads and message latencies. All
	// experiment figures use it.
	Virtual Mode = iota
	// Real runs on goroutines with wall-clock timing.
	Real
)

// Result is the outcome of one parallel tabu search run.
type Result struct {
	// BestCost is the best fuzzy cost found (lower is better, in [0,1]).
	BestCost float64
	// BestPerm is the best placement as a slot permutation.
	BestPerm []int32
	// Objectives are the exact objective values of BestPerm.
	Objectives cost.Objectives
	// CriticalPath is the exact critical path delay (ns) of BestPerm.
	CriticalPath float64
	// InitialCost is the fuzzy cost of the shared initial solution.
	InitialCost float64
	// Elapsed is the run's make-span in seconds (virtual or wall).
	Elapsed float64
	// Rounds is the number of completed global iterations.
	Rounds int
	// Trace is the best-cost-versus-time curve (one point per global
	// iteration, plus the initial point) when Config.RecordTrace is set.
	Trace stats.Trace
	// Stats aggregates every worker's counters.
	Stats WorkerStats
	// Runtime reports the communication volume of the run.
	Runtime pvm.Counters
}

// Run executes the parallel tabu search over circuit nl on the given
// cluster. The returned result is deterministic in cfg.Seed when mode is
// Virtual.
func Run(nl *netlist.Netlist, clus cluster.Cluster, cfg Config, mode Mode) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := clus.Validate(); err != nil {
		return nil, err
	}

	// Shared initial solution and the run's fuzzy goals, derived once
	// so every worker's costs are comparable (paper: the master provides
	// each TSW with the same initial solution).
	p0 := newLayoutPlacement(nl, cfg)
	p0.Randomize(rng.New(rng.Derive(cfg.Seed, "core.initial", nl.Name)))
	ev0, err := cost.NewEvaluator(p0, cfg.Cost)
	if err != nil {
		return nil, err
	}
	goals := ev0.GoalSet()
	initPerm := ev0.ExportPerm()
	initCost := ev0.Cost()

	var ms masterState
	root := func(env pvm.Env) {
		masterRun(env, nl, cfg, goals, initPerm, initCost, &ms)
	}
	var counters pvm.Counters
	opts := pvm.Options{Cluster: clus, Seed: cfg.Seed, Counters: &counters}
	var elapsed float64
	switch mode {
	case Virtual:
		elapsed, err = pvm.RunVirtual(opts, root)
	case Real:
		elapsed, err = pvm.RunReal(opts, root)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}
	if err != nil {
		return nil, err
	}

	// Score the returned best exactly (full timing analysis).
	if err := ev0.ImportPerm(ms.bestPerm); err != nil {
		return nil, fmt.Errorf("core: best solution invalid: %w", err)
	}
	res := &Result{
		BestCost:     ms.bestCost,
		BestPerm:     ms.bestPerm,
		Objectives:   ev0.Objectives(),
		CriticalPath: ev0.CriticalPath(),
		InitialCost:  initCost,
		Elapsed:      elapsed,
		Rounds:       ms.rounds,
		Trace:        ms.trace,
		Stats:        ms.stats,
		Runtime:      counters,
	}
	return res, nil
}

// newLayoutPlacement builds the slot grid every worker uses; all
// workers must agree on it for permutations to be interchangeable.
func newLayoutPlacement(nl *netlist.Netlist, cfg Config) *placement.Placement {
	p, err := placement.New(nl, placement.AutoLayout(nl, cfg.Utilization))
	if err != nil {
		// AutoLayout always allocates enough slots; a failure here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("core: layout: %v", err))
	}
	return p
}
