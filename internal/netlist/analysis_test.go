package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyzeTiny(t *testing.T) {
	nl := tiny(t)
	a := nl.Analyze()
	if a.NetDegree.Total() != nl.NumNets() {
		t.Errorf("net degree observations %d != %d nets", a.NetDegree.Total(), nl.NumNets())
	}
	// tiny: nets n0(2), n1(3), n2(2), n3(2).
	if a.NetDegree.Count(2) != 3 || a.NetDegree.Count(3) != 1 {
		t.Errorf("net degree histogram wrong: %v", a.NetDegree)
	}
	// Fanin over non-input cells: g0 has 2, g1 has 1, po0 has 2.
	if a.Fanin.Total() != 3 || a.Fanin.Count(2) != 2 || a.Fanin.Count(1) != 1 {
		t.Errorf("fanin histogram wrong")
	}
	if a.Level.Count(0) != 2 { // two inputs at level 0
		t.Errorf("level histogram wrong")
	}
}

func TestAnalyzeBenchmarkRealism(t *testing.T) {
	// The synthetic stand-ins must look like standard-cell circuits:
	// small mean fan-in (2-3), a mode of 2-3 terminals per net, and
	// nontrivial logic depth.
	nl := MustBenchmark("c532")
	a := nl.Analyze()
	if m := a.Fanin.Mean(); m < 1.2 || m > 3.5 {
		t.Errorf("mean fanin %v unrealistic", m)
	}
	if mode, _ := a.NetDegree.Mode(); mode < 2 || mode > 4 {
		t.Errorf("net degree mode %d unrealistic", mode)
	}
	if a.Level.Total() != nl.NumCells() {
		t.Error("level histogram incomplete")
	}
}

func TestWriteReport(t *testing.T) {
	nl := tiny(t)
	var buf bytes.Buffer
	if err := nl.Analyze().WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"net degree", "cell fanout", "cell fanin", "cells per level", "cell width"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	nl := tiny(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, nl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"tiny\"",
		"\"pi0\" [shape=triangle]",
		"\"po0\" [shape=doublecircle]",
		"\"g0\" [shape=box]",
		"\"pi1\" -> \"g0\"",
		"\"g1\" -> \"po0\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge count = total sinks.
	edges := strings.Count(out, "->")
	wantEdges := 0
	for i := range nl.Nets {
		wantEdges += len(nl.Nets[i].Sinks)
	}
	if edges != wantEdges {
		t.Errorf("%d edges, want %d", edges, wantEdges)
	}
}
