package pts

import (
	"context"
	"fmt"

	"pts/internal/core"
)

// Result is the outcome of one Solve call.
type Result struct {
	// Problem is the solved problem's Name().
	Problem string
	// BestCost is the best cost found (lower is better).
	BestCost float64
	// Best is the best solution found, as an element permutation.
	Best []int32
	// InitialCost is the cost of the shared initial solution every
	// worker started from.
	InitialCost float64
	// Elapsed is the run's make-span in seconds: modeled cluster time
	// under WithVirtualTime, wall-clock under WithRealTime.
	Elapsed float64
	// Rounds is the number of completed global iterations.
	Rounds int
	// Interrupted reports that the context was cancelled and the result
	// is the best found up to that point, not the full budget's.
	Interrupted bool
	// Trace is the best-cost-versus-time curve: the initial point plus
	// every incumbent improvement, when tracing is on (the default).
	Trace []TracePoint
	// Stats aggregates every worker's search counters.
	Stats WorkerStats
	// Tasks and Messages report the run's process and communication
	// volume on the PVM-like substrate.
	Tasks    int64
	Messages int64
	// Details carries problem-specific exact scoring of Best when the
	// problem implements Detailer: PlacementDetails for placement,
	// QAPDetails for QAP, nil otherwise.
	Details any
}

// Improvement returns the relative cost improvement over the initial
// solution, in [0, 1].
func (r *Result) Improvement() float64 {
	if r.InitialCost == 0 {
		return 0
	}
	return (r.InitialCost - r.BestCost) / r.InitialCost
}

// TracePoint is one observation of the incumbent best cost.
type TracePoint struct {
	// Time is seconds since the run started (virtual or wall).
	Time float64
	// Cost is the best cost known at Time.
	Cost float64
}

// WorkerStats counts search events across all workers of a run.
type WorkerStats struct {
	// LocalIters is the number of tabu iterations performed.
	LocalIters int64
	// CandidatesBuilt is the number of compound moves constructed.
	CandidatesBuilt int64
	// TrialsCharged is the number of trial swap evaluations.
	TrialsCharged int64
	// MovesAccepted is the number of compound moves applied.
	MovesAccepted int64
	// TabuRejected is the number of moves rejected by the tabu list.
	TabuRejected int64
	// Aspirations is the number of tabu moves accepted by aspiration.
	Aspirations int64
	// Fallbacks is the number of iterations where every candidate was
	// tabu and none aspirated.
	Fallbacks int64
	// ForcedReports is the number of half-sync forced early reports.
	ForcedReports int64
	// Diversifications is the number of diversification phases run.
	Diversifications int64
	// Rebalances is the number of adaptive range re-partitions adopted
	// by workers (0 unless WithAdaptive is on).
	Rebalances int64
	// WorkersLost is the number of workers (candidate-list workers and
	// tabu search workers) written off after their hosting process died
	// mid-run (adaptive distributed runs only; a static run aborts
	// instead).
	WorkersLost int64
	// WorkersRespawned is the number of replacement workers spawned
	// onto surviving capacity to take over for lost ones: CLW
	// replacements re-seeded from their TSW's current solution, plus
	// TSWs resurrected from their piggybacked checkpoints. Equal to
	// WorkersLost when every loss was recovered (see WithRespawn).
	WorkersRespawned int64
}

// newWorkerStats mirrors the engine's counters into the public type.
func newWorkerStats(ws core.WorkerStats) WorkerStats {
	return WorkerStats{
		LocalIters:       ws.LocalIters,
		CandidatesBuilt:  ws.CandidatesBuilt,
		TrialsCharged:    ws.TrialsCharged,
		MovesAccepted:    ws.MovesAccepted,
		TabuRejected:     ws.TabuRejected,
		Aspirations:      ws.Aspirations,
		Fallbacks:        ws.Fallbacks,
		ForcedReports:    ws.ForcedReports,
		Diversifications: ws.Diversifications,
		Rebalances:       ws.Rebalances,
		WorkersLost:      ws.WorkersLost,
		WorkersRespawned: ws.WorkersRespawned,
	}
}

// Snapshot is one per-global-iteration progress observation streamed to
// a WithProgress callback.
type Snapshot struct {
	// Round is the 1-based index of the just-completed global
	// iteration; Rounds is the total planned.
	Round  int
	Rounds int
	// BestCost is the global best cost after this round; InitialCost
	// the shared starting point.
	BestCost    float64
	InitialCost float64
	// Elapsed is seconds since the run started (virtual or wall).
	Elapsed float64
	// Improved reports whether this round improved the global best.
	Improved bool
	// Reports is the number of worker reports collected this round;
	// Forced is how many of them the half-sync adaptation forced early.
	Reports int
	Forced  int
	// Stats aggregates the search counters reported so far.
	Stats WorkerStats
	// Shares is the adaptive scheduler's current element-space share
	// per tabu search worker (summing to 1 over live workers); nil
	// unless WithAdaptive is on.
	Shares []float64
}

// newSnapshot mirrors the engine's snapshot into the public type.
func newSnapshot(cs core.Snapshot) Snapshot {
	return Snapshot{
		Round:       cs.Round,
		Rounds:      cs.Rounds,
		BestCost:    cs.BestCost,
		InitialCost: cs.InitialCost,
		Elapsed:     cs.Elapsed,
		Improved:    cs.Improved,
		Reports:     cs.Reports,
		Forced:      cs.Forced,
		Stats:       newWorkerStats(cs.Stats),
		Shares:      cs.Shares,
	}
}

// Solver runs the parallel tabu search with a reusable base
// configuration. The zero value is ready to use and equals the paper's
// defaults; NewSolver captures base options applied before each call's
// own.
type Solver struct {
	base []Option
}

// NewSolver returns a Solver whose base options are applied to every
// Solve call, before the call's own options.
func NewSolver(opts ...Option) *Solver {
	return &Solver{base: opts}
}

// Solve executes the two-level parallel tabu search over p: a master
// coordinates TSW workers (multi-search threads) that each drive CLW
// candidate-list workers, with the paper's half-sync heterogeneity
// adaptation at both levels.
//
// ctx bounds the run: when it is cancelled or its deadline passes,
// workers abandon their loops at the next boundary and Solve returns
// promptly with the best solution found so far, Result.Interrupted set,
// and a nil error. A nil result is only ever paired with a non-nil
// error (invalid configuration or a problem that failed to initialize).
//
// Virtual-time runs (the default) are deterministic in WithSeed as long
// as ctx does not fire mid-run.
func (s *Solver) Solve(ctx context.Context, p Problem, opts ...Option) (*Result, error) {
	all := make([]Option, 0, len(s.base)+len(opts))
	all = append(all, s.base...)
	all = append(all, opts...)
	st := apply(all)

	// A store-backed run resumes from checkpoints; explicitly disabling
	// them is a contradiction better refused here than discovered after
	// a crash with nothing to resume from.
	if st.cfg.Store != nil && st.checkpointSet && st.cfg.CheckpointEvery == 0 {
		return nil, fmt.Errorf("pts: WithCheckpointEvery(0) disables the checkpoints a WithStore run resumes from; drop one of the two")
	}

	// Distributed execution: a joining call serves the master's run and
	// returns its outcome; a listening or transport-equipped call is the
	// master and must run in real time.
	if st.join != "" {
		if st.listen != nil || st.transport != nil {
			return nil, fmt.Errorf("pts: WithJoin cannot combine with WithListen or WithTransport")
		}
		if st.modeSet && st.mode == core.Virtual {
			return nil, fmt.Errorf("pts: a distributed transport requires real time; drop WithVirtualTime")
		}
		return joinSolve(ctx, p, st)
	}
	if st.listen != nil || st.transport != nil {
		if st.modeSet && st.mode == core.Virtual {
			return nil, fmt.Errorf("pts: a distributed transport requires real time; drop WithVirtualTime")
		}
		st.mode = core.Real
	}
	if st.listen != nil {
		if st.transport != nil {
			return nil, fmt.Errorf("pts: WithListen and WithTransport are mutually exclusive")
		}
		master, err := ListenMaster(st.listen.addr, st.listen.workers)
		if err != nil {
			return nil, err
		}
		// RunProblem's finisher delivers results and closes the master on
		// success; Close here covers every early-error path (idempotent).
		defer master.Close()
		st.transport = master.m
	}
	st.cfg.Transport = st.transport

	res, err := core.RunProblem(ctx, adapt(p), st.clus, st.cfg, st.mode)
	if err != nil {
		return nil, err
	}
	return resultFromCore(res), nil
}

// resultFromCore mirrors the engine's result into the public type.
func resultFromCore(res *core.Result) *Result {
	out := &Result{
		Problem:     res.Problem,
		BestCost:    res.BestCost,
		Best:        res.BestPerm,
		InitialCost: res.InitialCost,
		Elapsed:     res.Elapsed,
		Rounds:      res.Rounds,
		Interrupted: res.Interrupted,
		Stats:       newWorkerStats(res.Stats),
		Tasks:       res.Runtime.Spawns,
		Messages:    res.Runtime.Sends,
		Details:     res.Details,
	}
	if n := res.Trace.Len(); n > 0 {
		out.Trace = make([]TracePoint, n)
		for i, pt := range res.Trace.Points {
			out.Trace[i] = TracePoint{Time: pt.Time, Cost: pt.Cost}
		}
	}
	return out
}

// Solve executes the parallel tabu search over p with a one-off
// configuration — shorthand for NewSolver().Solve(ctx, p, opts...).
func Solve(ctx context.Context, p Problem, opts ...Option) (*Result, error) {
	return NewSolver().Solve(ctx, p, opts...)
}
