package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pts/internal/cluster"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/pvm"
)

// testProblem builds a small placement problem for transport tests.
func testProblem(cfg Config) Problem {
	return cost.NewPlacementProblem(netlist.MustBenchmark("highway"), cfg.Utilization, cfg.Cost)
}

// abortingTransport simulates a distributed run whose worker died
// before anything happened: Run never executes root and reports an
// abort, the way nettrans does after a node loss.
type abortingTransport struct{ ran bool }

func (a *abortingTransport) Run(opts pvm.Options, root pvm.TaskFunc) (float64, error) {
	a.ran = true
	return 0.25, fmt.Errorf("worker \"w0\" lost: %w", pvm.ErrAborted)
}

func TestTransportAbortReportsInterrupted(t *testing.T) {
	cfg := DefaultConfig()
	prob := testProblem(cfg)
	cfg.GlobalIters, cfg.LocalIters = 2, 5
	tr := &abortingTransport{}
	cfg.Transport = tr
	res, err := RunProblem(context.Background(), prob, cluster.Homogeneous(4, 1), cfg, Real)
	if err != nil {
		t.Fatalf("an aborted run must still report best-so-far, got error %v", err)
	}
	if !tr.ran {
		t.Fatal("transport was not used")
	}
	if !res.Interrupted {
		t.Error("Interrupted not set after transport abort")
	}
	if res.BestCost != res.InitialCost || res.BestPerm == nil {
		t.Errorf("best-so-far should be the initial solution, got cost %v", res.BestCost)
	}
}

func TestVirtualModeIgnoresTransport(t *testing.T) {
	cfg := DefaultConfig()
	prob := testProblem(cfg)
	cfg.GlobalIters, cfg.LocalIters = 2, 5
	tr := &abortingTransport{}
	cfg.Transport = tr
	res, err := RunProblem(context.Background(), prob, cluster.Homogeneous(4, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ran {
		t.Error("virtual mode must not touch the transport")
	}
	if res.Interrupted {
		t.Error("virtual run reported interrupted")
	}
}

func TestWireConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSWs, cfg.CLWs = 5, 3
	cfg.HalfSync = false
	cfg.Assignment = AssignBlocked
	cfg.PerTSW = []Tuning{{Trials: 9}, {Depth: 2, Tenure: 7}}
	cfg.Seed = 42
	// Process-local fields must not survive the wire...
	cfg.Progress = func(Snapshot) {}
	cfg.Transport = &abortingTransport{}
	cfg.WorkScale = 0.5

	got := cfg.wire().config()
	want := cfg
	want.Progress = nil
	want.Transport = nil
	want.WorkScale = 0 // travels in the job frame, not the config
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wire round trip mangled the config:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestWorkerHandlerRefusesMismatchedProblem(t *testing.T) {
	cfg := DefaultConfig()
	h := &workerHandler{prob: testProblem(cfg)}
	st, err := h.prob.Initial(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	good := jobPayload{
		Problem:     h.prob.Name(),
		Size:        h.prob.Size(),
		InitialCost: st.Cost(),
		Cfg:         cfg.wire(),
	}
	if _, err := h.Start(good); err != nil {
		t.Fatalf("matching job refused: %v", err)
	}

	bad := good
	bad.Size = good.Size + 1
	_, err = h.Start(bad)
	if err == nil || !strings.Contains(err.Error(), "this worker built") {
		t.Errorf("mismatched size accepted (err = %v)", err)
	}

	// Same name and size but different instance content: the initial
	// cost is the discriminator (e.g. RandomQAP with another seed).
	impostor := good
	impostor.InitialCost = good.InitialCost * 1.5
	_, err = h.Start(impostor)
	if err == nil || !strings.Contains(err.Error(), "does not reproduce") {
		t.Errorf("mismatched instance data accepted (err = %v)", err)
	}

	if _, err := h.Start("nonsense"); err == nil {
		t.Error("garbage payload accepted")
	}
}
