package pts

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// schedOpts is a small but diversified search, enough for the engine to
// find proven optima of tiny instances.
func schedOpts(seed uint64) []Option {
	return []Option{
		WithWorkers(3, 2),
		WithIterations(8, 30),
		WithTabu(8, 8, 4),
		WithDiversification(10),
		WithSeed(seed),
		WithCluster(Homogeneous(12, 1)),
	}
}

// TestFlowShopSolveMatchesBruteForce runs the full engine on tiny
// instances whose optimum an exhaustive search can certify: the engine
// must reach exactly that makespan and never beat it.
func TestFlowShopSolveMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		prob := RandomFlowShop(6, 3, seed)
		opt := float64(prob.BruteForceOptimum())
		res, err := Solve(context.Background(), prob, schedOpts(seed)...)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost < opt {
			t.Fatalf("seed %d: engine makespan %.0f beats certified optimum %.0f", seed, res.BestCost, opt)
		}
		if res.BestCost != opt {
			t.Errorf("seed %d: engine makespan %.0f, brute-force optimum %.0f", seed, res.BestCost, opt)
		}
	}
}

// TestJobShopSolveMatchesBruteForce is the job shop counterpart over
// instances small enough (4 jobs x 3 machines) for the exhaustive
// multiset-permutation oracle.
func TestJobShopSolveMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		prob := RandomJobShop(4, 3, seed)
		opt := float64(prob.BruteForceOptimum())
		res, err := Solve(context.Background(), prob, schedOpts(seed)...)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost < opt {
			t.Fatalf("seed %d: engine makespan %.0f beats certified optimum %.0f", seed, res.BestCost, opt)
		}
		if res.BestCost != opt {
			t.Errorf("seed %d: engine makespan %.0f, brute-force optimum %.0f", seed, res.BestCost, opt)
		}
	}
}

// TestFT06ReachesOptimum is the job shop acceptance gate: at this fixed
// seed the engine must reach ft06's proven optimal makespan 55 — not
// approach it, reach it — and the details must re-derive the same value
// from the returned permutation independently of the incremental path.
func TestFT06ReachesOptimum(t *testing.T) {
	prob, err := JobShopBenchmark("ft06")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), prob,
		WithWorkers(4, 1),
		WithIterations(4, 20),
		WithTabu(10, 12, 4),
		WithDiversification(12),
		WithSeed(1),
		WithCluster(Testbed12(12)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != 55 {
		t.Fatalf("ft06 best makespan %.0f, want the proven optimum 55", res.BestCost)
	}
	d, ok := res.Details.(JobShopDetails)
	if !ok {
		t.Fatalf("Details is %T, want JobShopDetails", res.Details)
	}
	if d.Makespan != 55 || d.Optimum != 55 {
		t.Fatalf("details %+v, want makespan 55 against optimum 55", d)
	}
}

// TestTa001ReachesOptimum is the flow shop acceptance gate: ta001's
// proven optimal makespan is 1278 (the Taillard header's upper bound),
// and at this fixed seed a moderately sized search reaches it exactly.
// The lower-bound direction — no solution below 1278, ever — doubles as
// an end-to-end integrity check of the embedded instance data.
func TestTa001ReachesOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("ta001 optimum needs a few seconds of search")
	}
	prob, err := FlowShopBenchmark("ta001")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), prob,
		WithWorkers(6, 2),
		WithIterations(25, 80),
		WithTabu(10, 16, 5),
		WithDiversification(14),
		WithSeed(1),
		WithCluster(Testbed12(12)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost < 1278 {
		t.Fatalf("ta001 makespan %.0f beats the proven optimum 1278: embedded instance data or engine is wrong", res.BestCost)
	}
	if res.BestCost != 1278 {
		t.Fatalf("ta001 best makespan %.0f, want the proven optimum 1278", res.BestCost)
	}
	d, ok := res.Details.(FlowShopDetails)
	if !ok {
		t.Fatalf("Details is %T, want FlowShopDetails", res.Details)
	}
	if d.Makespan != 1278 || d.Optimum != 1278 || d.LowerBound != 1232 {
		t.Fatalf("details %+v, want makespan 1278, optimum 1278, lower bound 1232", d)
	}
}

// TestDistributedRefusesMismatchedSchedInstance pins the fingerprint
// contract for the scheduling workloads: two random flow shops of the
// same dimensions share a name and a size, so only the deterministic
// initial cost tells them apart — a worker that built the wrong one
// must refuse the job and the master's run must abort, not silently
// search a hybrid problem.
func TestDistributedRefusesMismatchedSchedInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	master, err := ListenMaster("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var workerErr error
	go func() {
		defer wg.Done()
		// Same 18x4 shape, different generator seed: name and size match
		// the master's problem, the schedule matrix does not.
		workerErr = Worker(ctx, RandomFlowShop(18, 4, 2), master.Addr(),
			NodeOptions{Name: "impostor"}, 1, nil)
	}()

	// The iteration budget is deliberately far larger than the abort
	// latency: the refusal must stop the run, not lose a race against a
	// master that finishes before the fJobErr frame lands.
	res, err := Solve(ctx, RandomFlowShop(18, 4, 1),
		WithWorkers(2, 1), WithIterations(500, 40), WithSeed(3),
		WithTransport(master.Transport()))
	if err != nil {
		t.Fatalf("master run errored instead of unwinding to best-so-far: %v", err)
	}
	// The master's contract on a refusal is crash-only: the run aborts
	// and unwinds as an interrupted best-so-far result, it does not
	// search on without the worker.
	if !res.Interrupted {
		t.Fatalf("master run completed %d rounds against a worker that built a different instance", res.Rounds)
	}
	wg.Wait()
	if workerErr == nil || !strings.Contains(workerErr.Error(), "does not reproduce") {
		t.Errorf("worker error = %v, want the initial-cost fingerprint refusal", workerErr)
	}
}
