package bench

import (
	"fmt"

	"pts/internal/core"
	"pts/internal/netlist"
	"pts/internal/stats"
)

// The extras are ablations beyond the paper's figures, probing the
// design choices DESIGN.md §6 calls out. They are reachable via
// `ptsbench -fig assign|corr|mpds`.

// ExtraAssignment compares the two task-to-machine policies on the idle
// heterogeneous testbed (pure speed classes, no load noise): runtime and
// quality per circuit for interleaved versus blocked groups.
func ExtraAssignment(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "extra-assign",
		Title:  "Ablation: task placement policy (interleaved vs blocked groups)",
		XLabel: "policy (0=interleaved, 1=blocked)",
		YLabel: "virtual runtime (s)",
	}
	clus := o.testbed()
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		timeSeries := stats.Series{Name: name + "/time"}
		for pi, asg := range []core.Assignment{core.AssignInterleaved, core.AssignBlocked} {
			var timeAcc, costAcc stats.Accumulator
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = 4, 2
				cfg.Assignment = asg
				cfg.Seed = o.seedFor("extra-assign", name, rep)
				res, err := runOne(o, fmt.Sprintf("assign %s p=%d rep=%d", name, pi, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				timeAcc.Add(res.Elapsed)
				costAcc.Add(res.BestCost)
			}
			timeSeries.Add(float64(pi), timeAcc.Mean())
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s policy=%d: time %.3fs cost %.4f",
				name, pi, timeAcc.Mean(), costAcc.Mean()))
		}
		fig.Series = append(fig.Series, timeSeries)
	}
	fig.Notes = append(fig.Notes,
		"blocked groups concentrate slow machines in whole TSWs; half-sync absorbs them at the master level")
	return fig, nil
}

// ExtraCorrelation measures what independent worker random streams are
// worth: redundant (correlated) versus independent workers, with and
// without diversification — the Fig. 9 mechanism isolated.
func ExtraCorrelation(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "extra-corr",
		Title:  "Ablation: correlated vs independent worker streams, with/without diversification",
		XLabel: "variant (0=corr/nodiv 1=corr/div 2=indep/nodiv 3=indep/div)",
		YLabel: "best fuzzy cost",
	}
	clus := o.testbed()
	variants := []struct {
		corr bool
		div  int
	}{{true, 0}, {true, 12}, {false, 0}, {false, 12}}
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		s := stats.Series{Name: name}
		for vi, v := range variants {
			var acc stats.Accumulator
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = 4, 1
				cfg.CorrelatedWorkers = v.corr
				cfg.DiversifyDepth = v.div
				cfg.Seed = o.seedFor("extra-corr", name, rep)
				res, err := runOne(o, fmt.Sprintf("corr %s v=%d rep=%d", name, vi, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				acc.Add(res.BestCost)
			}
			s.Add(float64(vi), acc.Mean())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"with correlated streams, diversification is the only decorrelator — the regime the paper's Figure 9 describes")
	return fig, nil
}

// ExtraMPDS compares the paper's MPSS (one strategy everywhere) against
// the MPDS extension (each TSW with a different strategy) its taxonomy
// section points at.
func ExtraMPDS(o Opts) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID:     "extra-mpds",
		Title:  "Extension: MPSS vs MPDS (per-TSW strategies)",
		XLabel: "variant (0=MPSS, 1=MPDS)",
		YLabel: "best fuzzy cost",
	}
	clus := o.testbed()
	mpds := []core.Tuning{
		{Trials: 6, Depth: 2},            // light and shallow
		{Trials: 18, Depth: 3},           // heavy sampling
		{Depth: 6, Tenure: 5},            // deep compounds, short memory
		{Tenure: 30, DiversifyDepth: 20}, // long memory, strong kicks
	}
	for _, name := range o.Circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		s := stats.Series{Name: name}
		for vi, per := range [][]core.Tuning{nil, mpds} {
			var acc stats.Accumulator
			for rep := 0; rep < o.Repeats; rep++ {
				cfg := baseConfig(o)
				cfg.TSWs, cfg.CLWs = 4, 1
				cfg.PerTSW = per
				cfg.Seed = o.seedFor("extra-mpds", name, rep)
				res, err := runOne(o, fmt.Sprintf("mpds %s v=%d rep=%d", name, vi, rep), nl, clus, cfg)
				if err != nil {
					return nil, err
				}
				acc.Add(res.BestCost)
			}
			s.Add(float64(vi), acc.Mean())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "MPDS diversifies by construction; MPSS relies on random streams and kicks")
	return fig, nil
}
