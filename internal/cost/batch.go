package cost

import (
	"math"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/tabu"
)

// Batched trial evaluation: the evaluator-level half of the
// data-parallel hot path. The placement kernel produces the three raw
// objective deltas for the whole batch in one fused pass
// (placement.SwapObjectivesBatch), and the fold below turns them into
// fuzzy cost deltas with the membership and OWA arithmetic inlined —
// written term for term like fuzzy.Membership.Eval and OWA.Combine, so
// every out[i] is bit-for-bit the value SwapDelta would return.

// batchScratch holds one evaluator's reusable batch buffers; sized to
// the largest batch seen, so steady-state evaluation allocates nothing.
type batchScratch struct {
	cands []placement.SwapCand
	dLen  []float64
	dW    []float64
	area  []float64
}

// grow ensures capacity for n candidates.
func (sc *batchScratch) grow(n int) {
	if cap(sc.cands) < n {
		sc.cands = make([]placement.SwapCand, 0, n)
		sc.dLen = make([]float64, n)
		sc.dW = make([]float64, n)
		sc.area = make([]float64, n)
	}
}

// DeltaSwapBatch writes, for every candidate i, the exact cost change
// SwapDelta(cands[i].A, cands[i].B) would return — in one data-parallel
// pass instead of len(cands) scalar calls. It implements the tabu
// engine's batch boundary (tabu.BatchEvaluator, via Problem); out must
// have at least len(cands) elements.
func (e *Evaluator) DeltaSwapBatch(cands []tabu.SwapCand, out []float64) {
	n := len(cands)
	if n == 0 {
		return
	}
	sc := &e.batch
	sc.grow(n)
	pc := sc.cands[:0]
	for _, c := range cands {
		pc = append(pc, placement.SwapCand{A: netlist.CellID(c.A), B: netlist.CellID(c.B)})
	}
	dLen, dW, area := sc.dLen[:n], sc.dW[:n], sc.area[:n]
	e.p.SwapObjectivesBatch(pc, e.t.Criticalities(), dLen, dW, area)

	// Fold the raw deltas into fuzzy cost deltas. All evaluator state is
	// hoisted once per batch; the arithmetic mirrors CostOf exactly:
	// membership is the same piecewise-linear division, the OWA combine
	// the same min/sum expression tree.
	wl0, dl0 := e.cur.Wirelength, e.cur.Delay
	wireDelay := e.t.Config().WireDelayPerUnit
	cost0 := e.cost
	gWL, cWL := e.memWL.Goal, e.memWL.Ceiling
	gDL, cDL := e.memDelay.Goal, e.memDelay.Ceiling
	gAR, cAR := e.memArea.Goal, e.memArea.Ceiling
	spanWL, spanDL, spanAR := cWL-gWL, cDL-gDL, cAR-gAR
	beta := e.owa.Beta
	omb := 1 - beta
	// Most candidates leave the widest row untouched, so area[i] repeats
	// the same value run after run; memoizing the last membership reuses
	// the division bit-exactly (equal input, equal output).
	lastArea := math.NaN() // never equal to a real area, so slot 0 computes
	var lastMuA float64
	for i := 0; i < n; i++ {
		if cands[i].A == cands[i].B {
			out[i] = 0 // SwapDelta's self-swap short circuit
			continue
		}
		var muW, muD, muA float64
		switch x := wl0 + dLen[i]; {
		case x <= gWL:
			muW = 1
		case x >= cWL:
			muW = 0
		default:
			muW = (cWL - x) / spanWL
		}
		switch x := dl0 + wireDelay*dW[i]; {
		case x <= gDL:
			muD = 1
		case x >= cDL:
			muD = 0
		default:
			muD = (cDL - x) / spanDL
		}
		if x := area[i]; x == lastArea {
			muA = lastMuA
		} else {
			switch {
			case x <= gAR:
				muA = 1
			case x >= cAR:
				muA = 0
			default:
				muA = (cAR - x) / spanAR
			}
			lastArea, lastMuA = x, muA
		}
		mn := muW
		if muD < mn {
			mn = muD
		}
		if muA < mn {
			mn = muA
		}
		sum := muW + muD + muA
		mu := beta*mn + omb*sum/3
		out[i] = (1 - mu) - cost0
	}
}
