package core

import (
	"testing"

	"pts/internal/cluster"
	"pts/internal/netlist"
)

func TestRunSequentialImproves(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	res, err := RunSequential(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("sequential search did not improve: %v -> %v", res.InitialCost, res.BestCost)
	}
	if res.Elapsed <= 0 {
		t.Error("analytic clock did not advance")
	}
	if res.Trace.Len() < 2 {
		t.Error("trace too short")
	}
	if res.Trace.Final() != res.BestCost {
		t.Errorf("trace final %v != best %v", res.Trace.Final(), res.BestCost)
	}
	if res.Stats.LocalIters != int64(cfg.GlobalIters*cfg.LocalIters) {
		t.Errorf("LocalIters = %d, want %d", res.Stats.LocalIters, cfg.GlobalIters*cfg.LocalIters)
	}
}

func TestRunSequentialDeterministic(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	a, err := RunSequential(nl, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(nl, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Elapsed != b.Elapsed {
		t.Fatal("sequential runs with equal seeds diverged")
	}
}

func TestRunSequentialValidates(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	bad := quickCfg()
	bad.Trials = 0
	if _, err := RunSequential(nl, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunSequentialSharesInitialWithParallel(t *testing.T) {
	// Same seed => same initial solution => same initial cost as the
	// parallel run, so baselines and parallel runs are comparable.
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	seq, err := RunSequential(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(nl, cluster.Homogeneous(4, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if seq.InitialCost != par.InitialCost {
		t.Fatalf("initial costs differ: sequential %v vs parallel %v",
			seq.InitialCost, par.InitialCost)
	}
}

func TestAssignmentPolicies(t *testing.T) {
	// Both policies must produce valid runs; on a heterogeneous cluster
	// with blocked assignment the TSW groups land on machines of uneven
	// speed, which the half-sync master absorbs — verify it forces
	// reports there.
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Testbed12(0) // idle machines: pure speed classes
	for _, asg := range []Assignment{AssignInterleaved, AssignBlocked} {
		cfg := quickCfg()
		cfg.TSWs, cfg.CLWs = 4, 2
		cfg.GlobalIters, cfg.LocalIters = 3, 16
		cfg.Assignment = asg
		res, err := Run(nl, clus, cfg, Virtual)
		if err != nil {
			t.Fatalf("assignment %d: %v", asg, err)
		}
		if res.BestCost >= res.InitialCost {
			t.Fatalf("assignment %d did not improve", asg)
		}
	}
}

func TestBlockedAssignmentMapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSWs, cfg.CLWs = 3, 2
	cfg.Assignment = AssignBlocked
	// Group i occupies [1+3i, 1+3i+2]: TSW then its two CLWs.
	if cfg.tswMachine(0) != 1 || cfg.clwMachine(0, 0) != 2 || cfg.clwMachine(0, 1) != 3 {
		t.Fatalf("group 0 mapping wrong: %d %d %d",
			cfg.tswMachine(0), cfg.clwMachine(0, 0), cfg.clwMachine(0, 1))
	}
	if cfg.tswMachine(1) != 4 || cfg.clwMachine(1, 1) != 6 {
		t.Fatal("group 1 mapping wrong")
	}
	cfg.Assignment = AssignInterleaved
	if cfg.tswMachine(2) != 3 || cfg.clwMachine(2, 1) != 1+3+2*2+1 {
		t.Fatal("interleaved mapping wrong")
	}
}
