// Package cluster models the heterogeneous network of workstations the
// paper ran on: machines with different raw speeds and time-varying
// external load, plus message latency.
//
// A machine's effective speed at time t is Speed / (1 + Load(t)); work is
// expressed in seconds-of-compute-on-a-speed-1.0-idle-machine, so the
// duration of a chunk of work is the integral of effective speed solved
// for the work amount. Load traces are piecewise constant and cyclic,
// which keeps the integration closed-form and deterministic.
//
// Testbed12 reproduces the paper's experimental platform: 12 machines —
// 7 high-speed, 3 medium-speed, 2 low-speed — sharing a LAN.
package cluster

import (
	"fmt"
	"math"

	"pts/internal/rng"
)

// LoadTrace is a cyclic piecewise-constant external load: during segment
// i (of Period seconds) the load is Levels[i mod len(Levels)]. A zero
// trace means an idle machine.
type LoadTrace struct {
	Period float64
	Levels []float64
}

// At returns the load at time t.
func (lt LoadTrace) At(t float64) float64 {
	if len(lt.Levels) == 0 || lt.Period <= 0 {
		return 0
	}
	seg := int(math.Floor(t/lt.Period)) % len(lt.Levels)
	if seg < 0 {
		seg += len(lt.Levels)
	}
	return lt.Levels[seg]
}

// ConstantLoad returns a trace pinned at level l.
func ConstantLoad(l float64) LoadTrace {
	if l == 0 {
		return LoadTrace{}
	}
	return LoadTrace{Period: 1, Levels: []float64{l}}
}

// Machine is one workstation.
type Machine struct {
	Name  string
	Speed float64 // relative raw speed; 1.0 = reference machine
	Load  LoadTrace
}

// EffectiveSpeed returns the machine's speed at time t after external
// load steals its share of cycles.
func (m Machine) EffectiveSpeed(t float64) float64 {
	return m.Speed / (1 + m.Load.At(t))
}

// WorkDuration returns how long the machine needs, starting at time
// start, to complete `work` seconds of reference compute. With no load
// trace this is work/Speed; with one it integrates the piecewise
// effective speed, fast-forwarding whole load cycles.
func (m Machine) WorkDuration(start, work float64) float64 {
	if work <= 0 {
		return 0
	}
	if m.Speed <= 0 {
		return math.Inf(1)
	}
	lt := m.Load
	if len(lt.Levels) == 0 || lt.Period <= 0 {
		return work / m.Speed
	}
	nLevels := int64(len(lt.Levels))
	level := func(seg int64) float64 {
		return lt.Levels[((seg%nLevels)+nLevels)%nLevels]
	}
	// Work in (segment index, offset) space: the segment counter stays
	// integral so repeated float floors cannot misclassify boundaries.
	seg := int64(math.Floor(start / lt.Period))
	off := start - float64(seg)*lt.Period
	if off < 0 {
		off += lt.Period
		seg--
	}
	remaining := work
	dur := 0.0
	// Partial first segment.
	eff := m.Speed / (1 + level(seg))
	if c := eff * (lt.Period - off); c >= remaining {
		return dur + remaining/eff
	} else {
		remaining -= c
		dur += lt.Period - off
		seg++
	}
	// Fast-forward whole load cycles.
	perCycle := 0.0
	for _, l := range lt.Levels {
		perCycle += (m.Speed / (1 + l)) * lt.Period
	}
	if n := math.Floor(remaining / perCycle); n > 0 {
		remaining -= n * perCycle
		dur += n * lt.Period * float64(nLevels)
	}
	// Walk the remaining (< one cycle of) segments; +2 covers float
	// round-off at the cycle edge.
	for i := int64(0); i < nLevels+2; i++ {
		eff = m.Speed / (1 + level(seg))
		if c := eff * lt.Period; c >= remaining {
			return dur + remaining/eff
		} else {
			remaining -= c
			dur += lt.Period
			seg++
		}
	}
	// Unreachable with positive speeds; safe overestimate.
	return dur + remaining/m.Speed
}

// Cluster is a set of machines plus the LAN's message cost model: a
// message of n payload items costs SendLatency + PerItem*n seconds
// end-to-end.
type Cluster struct {
	Machines    []Machine
	SendLatency float64
	PerItem     float64
}

// Validate reports configuration problems.
func (c Cluster) Validate() error {
	if len(c.Machines) == 0 {
		return fmt.Errorf("cluster: no machines")
	}
	for i, m := range c.Machines {
		if m.Speed <= 0 {
			return fmt.Errorf("cluster: machine %d (%s) has nonpositive speed", i, m.Name)
		}
	}
	if c.SendLatency < 0 || c.PerItem < 0 {
		return fmt.Errorf("cluster: negative latency")
	}
	return nil
}

// Machine returns machine i with round-robin wrapping, the assignment
// policy for spawning more tasks than machines.
func (c Cluster) Machine(i int) Machine {
	return c.Machines[((i%len(c.Machines))+len(c.Machines))%len(c.Machines)]
}

// MsgDelay returns the modeled end-to-end latency of a message with n
// payload items.
func (c Cluster) MsgDelay(n int) float64 {
	if n < 0 {
		n = 0
	}
	return c.SendLatency + c.PerItem*float64(n)
}

// defaultLAN is the message cost model used by the presets: ~0.25 ms
// base latency (2003-era 100 Mbit LAN + PVM overhead) plus 40 ns per
// 4-byte payload item.
const (
	defaultSendLatency = 250e-6
	defaultPerItem     = 40e-9
)

// Homogeneous builds n identical idle machines of the given speed.
func Homogeneous(n int, speed float64) Cluster {
	ms := make([]Machine, n)
	for i := range ms {
		ms[i] = Machine{Name: fmt.Sprintf("node%02d", i), Speed: speed}
	}
	return Cluster{Machines: ms, SendLatency: defaultSendLatency, PerItem: defaultPerItem}
}

// Testbed12 builds the paper's 12-machine platform: 7 high-speed
// (speed 1.0), 3 medium-speed (0.55), 2 low-speed (0.3) workstations.
// Each machine carries a light random background load trace (it is a
// shared departmental LAN), deterministic in seed; seed 0 yields idle
// machines so speed differences alone can be studied.
func Testbed12(seed uint64) Cluster {
	type class struct {
		n       int
		speed   float64
		prefix  string
		maxLoad float64
	}
	classes := []class{
		{7, 1.0, "fast", 0.35},
		{3, 0.55, "med", 0.5},
		{2, 0.3, "slow", 0.6},
	}
	var ms []Machine
	r := rng.New(rng.Derive(seed, "cluster.testbed12"))
	for _, cl := range classes {
		for i := 0; i < cl.n; i++ {
			m := Machine{Name: fmt.Sprintf("%s%02d", cl.prefix, i), Speed: cl.speed}
			if seed != 0 {
				levels := make([]float64, 4+r.Intn(4))
				for j := range levels {
					levels[j] = r.Float64() * cl.maxLoad
				}
				m.Load = LoadTrace{Period: 0.25 + r.Float64()*1.75, Levels: levels}
			}
			ms = append(ms, m)
		}
	}
	return Cluster{Machines: ms, SendLatency: defaultSendLatency, PerItem: defaultPerItem}
}
