package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer stands up the HTTP front door over a fake fleet; the
// default (real, in-process) runner is kept unless runJob overrides it.
func newTestServer(t *testing.T, workers, queueDepth int) (*httptest.Server, *Scheduler, *fakeFleet) {
	t.Helper()
	fleet := newFakeFleet(workers)
	s := newTestScheduler(t, fleet, queueDepth, nil)
	srv := httptest.NewServer(NewAPI(s).Handler())
	t.Cleanup(srv.Close)
	return srv, s, fleet
}

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, View) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var v View
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(raw.Bytes(), &v); err != nil {
			t.Fatalf("decode job view: %v (%s)", err, raw)
		}
	}
	return resp, v
}

const tinyJobBody = `{
  "problem": {"kind": "placement", "circuit": "highway"},
  "workers": 1,
  "config": {"tsws": 1, "clws": 1, "global_iters": 3, "local_iters": 2, "half_sync": false}
}`

// decodeErr parses the uniform error envelope and returns its machine
// code, failing the test when the envelope shape is off.
func decodeErr(t *testing.T, raw []byte) string {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decode error envelope: %v (%s)", err, raw)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("error envelope incomplete: %s", raw)
	}
	return body.Error.Code
}

// doErr performs req and returns the status plus the envelope code.
func doErr(t *testing.T, req *http.Request) (int, string) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, decodeErr(t, raw.Bytes())
}

// postErr submits body and returns the status plus the envelope code.
func postErr(t *testing.T, srv *httptest.Server, body string) (int, string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return doErr(t, req)
}

// getErr fetches path and returns the status plus the envelope code.
func getErr(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	return doErr(t, req)
}

func TestHTTPSubmitGetListLifecycle(t *testing.T) {
	srv, _, _ := newTestServer(t, 2, 4)

	resp, v := postJob(t, srv, tinyJobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", resp.StatusCode)
	}
	if v.ID == "" || v.Workers != 1 || v.Spec.Circuit != "highway" {
		t.Fatalf("job view = %+v", v)
	}

	// Poll GET /v1/jobs/{id} until done; the result must ride along.
	deadline := time.After(30 * time.Second)
	var got View
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatalf("decode job: %v", err)
		}
		r.Body.Close()
		if got.Status == "done" {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job stuck in %q", got.Status)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got.Result == nil || got.Result.Rounds != 3 || got.Result.Problem != "highway" {
		t.Fatalf("terminal result = %+v, want 3 rounds on highway", got.Result)
	}

	// The list endpoint reports the job without the result payload.
	r, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET jobs: %v", err)
	}
	var list struct {
		Jobs []View `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	r.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID || list.Jobs[0].Result != nil {
		t.Fatalf("list = %+v, want one result-free entry for %s", list.Jobs, v.ID)
	}

	// Unknown job: 404.
	r, err = http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", r.StatusCode)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	srv, s, _ := newTestServer(t, 1, 1)

	// Workers beyond the fleet: 409 never_admissible.
	if st, code := postErr(t, srv, `{"problem": {"kind": "placement", "circuit": "highway"}, "workers": 5}`); st != http.StatusConflict || code != "never_admissible" {
		t.Fatalf("inadmissible = %d %q, want 409 never_admissible", st, code)
	}
	// Malformed JSON: 400 bad_spec.
	if st, code := postErr(t, srv, `{"problem": `); st != http.StatusBadRequest || code != "bad_spec" {
		t.Fatalf("malformed = %d %q, want 400 bad_spec", st, code)
	}
	// Unknown field: 400 bad_spec.
	if st, code := postErr(t, srv, `{"problem": {"kind": "placement", "circuit": "highway"}, "wrokers": 1}`); st != http.StatusBadRequest || code != "bad_spec" {
		t.Fatalf("unknown-field = %d %q, want 400 bad_spec", st, code)
	}
	// Unknown job: 404 not_found.
	if st, code := getErr(t, srv, "/v1/jobs/nope"); st != http.StatusNotFound || code != "not_found" {
		t.Fatalf("unknown job = %d %q, want 404 not_found", st, code)
	}
	// Fill the single-slot queue behind a held runner, then overflow: 429.
	started := make(chan string, 4)
	runner, step := blockingRunner(started)
	s.runJob = runner
	resp, v1 := postJob(t, srv, tinyJobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("running job status = %d", resp.StatusCode)
	}
	<-started
	resp, _ = postJob(t, srv, tinyJobBody) // fills the depth-1 queue
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("queued job status = %d", resp.StatusCode)
	}
	if st, code := postErr(t, srv, tinyJobBody); st != http.StatusTooManyRequests || code != "queue_full" {
		t.Fatalf("overflow = %d %q, want 429 queue_full", st, code)
	}
	// DELETE the running job: 200, then a second DELETE conflicts: 409
	// terminal.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v1.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp2.StatusCode)
	}
	j, _ := s.Get(v1.ID)
	waitStatus(t, j, Cancelled)
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v1.ID, nil)
	if st, code := doErr(t, req2); st != http.StatusConflict || code != "terminal" {
		t.Fatalf("re-cancel = %d %q, want 409 terminal", st, code)
	}
	<-started // the queued job takes the slot
	step()    // and is allowed to finish
}

// listPage fetches GET /v1/jobs with query and returns ids plus the
// next_after cursor ("" when the page is complete).
func listPage(t *testing.T, srv *httptest.Server, query string) ([]string, string) {
	t.Helper()
	r, err := http.Get(srv.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatalf("GET jobs%s: %v", query, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET jobs%s status = %d", query, r.StatusCode)
	}
	var page struct {
		Jobs      []View `json:"jobs"`
		NextAfter string `json:"next_after"`
	}
	if err := json.NewDecoder(r.Body).Decode(&page); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	ids := make([]string, len(page.Jobs))
	for i, v := range page.Jobs {
		ids[i] = v.ID
	}
	return ids, page.NextAfter
}

func TestHTTPListFilterAndPagination(t *testing.T) {
	srv, s, _ := newTestServer(t, 1, 8)
	started := make(chan string, 8)
	runner, step := blockingRunner(started)
	s.runJob = runner

	// One running job holds the single worker; two more queue behind it.
	var ids []string
	for i := 0; i < 3; i++ {
		resp, v := postJob(t, srv, tinyJobBody)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d status = %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	<-started

	if got, next := listPage(t, srv, ""); len(got) != 3 || next != "" {
		t.Fatalf("unfiltered list = %v next %q", got, next)
	}
	if got, _ := listPage(t, srv, "?status=running"); len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("running filter = %v, want [%s]", got, ids[0])
	}
	if got, _ := listPage(t, srv, "?status=queued"); len(got) != 2 || got[0] != ids[1] || got[1] != ids[2] {
		t.Fatalf("queued filter = %v, want %v", got, ids[1:])
	}
	if got, _ := listPage(t, srv, "?status=done"); len(got) != 0 {
		t.Fatalf("done filter = %v, want empty", got)
	}
	// Pagination walks the stable id order.
	got, next := listPage(t, srv, "?limit=2")
	if len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] || next != ids[1] {
		t.Fatalf("page 1 = %v next %q", got, next)
	}
	got, next = listPage(t, srv, "?limit=2&after="+next)
	if len(got) != 1 || got[0] != ids[2] || next != "" {
		t.Fatalf("page 2 = %v next %q", got, next)
	}
	// Filters compose with the cursor.
	if got, _ := listPage(t, srv, "?status=queued&after="+ids[1]); len(got) != 1 || got[0] != ids[2] {
		t.Fatalf("filtered page = %v, want [%s]", got, ids[2])
	}
	// Malformed parameters: 400 bad_request.
	for _, q := range []string{"?status=bogus", "?limit=0", "?limit=x", "?after=nope"} {
		if st, code := getErr(t, srv, "/v1/jobs"+q); st != http.StatusBadRequest || code != "bad_request" {
			t.Fatalf("%s = %d %q, want 400 bad_request", q, st, code)
		}
	}

	for i := 0; i < 3; i++ {
		step()
		if i < 2 {
			<-started
		}
	}
	j, _ := s.Get(ids[2])
	waitStatus(t, j, Done)
	if got, _ := listPage(t, srv, "?status=done"); len(got) != 3 {
		t.Fatalf("done filter after completion = %v, want all three", got)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE parses an SSE stream until it closes.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

func TestHTTPEventsStreamOnePerGlobalIteration(t *testing.T) {
	srv, _, _ := newTestServer(t, 1, 4)
	resp, v := postJob(t, srv, tinyJobBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// Attach immediately: the stream replays from the start and follows
	// the live run to its terminal event.
	er, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	evs := readSSE(t, er)
	if len(evs) == 0 {
		t.Fatal("no events streamed")
	}
	var kinds []string
	progress := 0
	for _, e := range evs {
		kinds = append(kinds, e.event)
		if e.event == "progress" {
			progress++
			var body struct {
				Snapshot struct {
					Round  int `json:"Round"`
					Rounds int `json:"Rounds"`
				} `json:"snapshot"`
			}
			if err := json.Unmarshal([]byte(e.data), &body); err != nil {
				t.Fatalf("progress payload: %v (%s)", err, e.data)
			}
			if body.Snapshot.Round != progress || body.Snapshot.Rounds != 3 {
				t.Fatalf("progress %d reports round %d/%d", progress, body.Snapshot.Round, body.Snapshot.Rounds)
			}
		}
	}
	if progress != 3 {
		t.Fatalf("progress events = %d (%v), want one per global iteration (3)", progress, kinds)
	}
	if kinds[0] != "queued" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("stream = %v, want queued..done", kinds)
	}

	// Resuming mid-log with ?after= replays only the tail.
	er2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", srv.URL, v.ID, len(evs)-2))
	if err != nil {
		t.Fatalf("GET events tail: %v", err)
	}
	defer er2.Body.Close()
	tail := readSSE(t, er2)
	if len(tail) != 1 || tail[0].event != "done" {
		t.Fatalf("tail = %+v, want just the terminal event", tail)
	}
}

func TestHTTPFleetAndHealth(t *testing.T) {
	srv, _, fleet := newTestServer(t, 3, 4)
	r, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatalf("GET fleet: %v", err)
	}
	var fs struct {
		Total   int        `json:"total"`
		Free    int        `json:"free"`
		Queued  int        `json:"queued"`
		Workers []NodeInfo `json:"workers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&fs); err != nil {
		t.Fatalf("decode fleet: %v", err)
	}
	r.Body.Close()
	if fs.Total != 3 || fs.Free != fleet.FreeWorkers() || len(fs.Workers) != 3 {
		t.Fatalf("fleet = %+v", fs)
	}

	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", r.StatusCode)
	}
	var h map[string]any
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}
}
