package placement

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pts/internal/netlist"
)

// This file is the drift catcher for the incremental engine: long random
// swap+move sequences, after each of which every maintained quantity —
// net boxes with their runner-up statistics, total HPWL, row widths, and
// the top-two row cache — must exactly match a from-scratch recompute,
// and every trial function must match its brute-force
// clone-apply-recompute oracle.

// checkConsistency compares all of p's maintained state against a
// from-scratch recompute.
func checkConsistency(p *Placement) error {
	hpwl := 0.0
	for n := 0; n < p.nl.NumNets(); n++ {
		ref := p.scanBox(netlist.NetID(n))
		if got := p.boxAt(netlist.NetID(n)); got != ref {
			return fmt.Errorf("net %d box drifted: have %+v want %+v", n, got, ref)
		}
		hpwl += boxLength(&ref)
	}
	if math.Abs(hpwl-p.hpwl) > 1e-6*(1+math.Abs(hpwl)) {
		return fmt.Errorf("hpwl drifted: have %v want %v", p.hpwl, hpwl)
	}
	widths := make([]int, p.L.Rows)
	for c := 0; c < p.nl.NumCells(); c++ {
		widths[p.pos[c].Row] += p.nl.Cells[c].Width
	}
	for r, w := range widths {
		if p.rowWidth[r] != w {
			return fmt.Errorf("row %d width drifted: have %d want %d", r, p.rowWidth[r], w)
		}
	}
	// Top-two invariants. The cached rows may differ from a fresh rescan
	// on ties, so check the defining properties, not the identities.
	max1 := 0
	for _, w := range widths {
		if w > max1 {
			max1 = w
		}
	}
	if p.top1W != max1 || widths[p.top1Row] != p.top1W {
		return fmt.Errorf("top1 drifted: have (w=%d,row=%d) want max %d", p.top1W, p.top1Row, max1)
	}
	if p.L.Rows > 1 {
		max2 := -1
		for r, w := range widths {
			if int32(r) != p.top1Row && w > max2 {
				max2 = w
			}
		}
		if p.top2Row == p.top1Row || p.top2W != max2 || widths[p.top2Row] != p.top2W {
			return fmt.Errorf("top2 drifted: have (w=%d,row=%d) want runner-up %d (top1 row %d)",
				p.top2W, p.top2Row, max2, p.top1Row)
		}
	}
	return nil
}

// randomPair returns two distinct random cells.
func randomPair(r *rand.Rand, cells int) (netlist.CellID, netlist.CellID) {
	a := netlist.CellID(r.Intn(cells))
	b := netlist.CellID(r.Intn(cells))
	for b == a {
		b = netlist.CellID(r.Intn(cells))
	}
	return a, b
}

func TestIncrementalMatchesRecomputeUnderRandomOps(t *testing.T) {
	for _, tc := range []struct {
		name string
		util float64
	}{
		{"full-grid", 1.0},   // swaps only (no empty slots)
		{"spare-slots", 0.8}, // swaps + relocations
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl := testNetlist(t, 120, 7)
			p, err := New(nl, AutoLayout(nl, tc.util))
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(11))
			p.Randomize(r)
			cells := nl.NumCells()
			for step := 0; step < 4000; step++ {
				if tc.util < 1 && r.Intn(3) == 0 {
					c := netlist.CellID(r.Intn(cells))
					slot := p.RandomEmptySlot(r)
					if slot < 0 {
						t.Fatal("no empty slot on a spare layout")
					}
					to := p.L.SlotPos(slot)
					// Oracle the trial functions before committing.
					wantD, err := p.HPWLDeltaMove(c, to)
					if err != nil {
						t.Fatal(err)
					}
					wantArea := p.MaxRowWidthAfterMove(c, to)
					before := p.HPWL()
					if err := p.MoveToSlot(c, to); err != nil {
						t.Fatal(err)
					}
					if got := p.HPWL() - before; math.Abs(got-wantD) > 1e-6 {
						t.Fatalf("step %d: HPWLDeltaMove predicted %v, commit yielded %v", step, wantD, got)
					}
					if p.MaxRowWidth() != wantArea {
						t.Fatalf("step %d: MaxRowWidthAfterMove predicted %d, commit yielded %d",
							step, wantArea, p.MaxRowWidth())
					}
				} else {
					a, b := randomPair(r, cells)
					wantD := p.HPWLDeltaSwap(a, b)
					wantArea := p.MaxRowWidthAfterSwap(a, b)
					before := p.HPWL()
					p.SwapCells(a, b)
					if got := p.HPWL() - before; math.Abs(got-wantD) > 1e-6 {
						t.Fatalf("step %d: HPWLDeltaSwap predicted %v, commit yielded %v", step, wantD, got)
					}
					if p.MaxRowWidth() != wantArea {
						t.Fatalf("step %d: MaxRowWidthAfterSwap predicted %d, commit yielded %d",
							step, wantArea, p.MaxRowWidth())
					}
				}
				// Full-state audit periodically plus the final step; every
				// step would make the test quadratic in sequence length.
				if step%97 == 0 || step == 3999 {
					if err := checkConsistency(p); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
		})
	}
}

func TestSwapDeltaWeightedMatchesVisit(t *testing.T) {
	nl := testNetlist(t, 90, 3)
	p, err := New(nl, AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	p.Randomize(r)
	w := make([]float64, nl.NumNets())
	for n := range w {
		w[n] = r.Float64()
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randomPair(r, nl.NumCells())
		wantLen, wantW := 0.0, 0.0
		p.VisitSwapDeltas(a, b, func(n netlist.NetID, oldLen, newLen float64) {
			wantLen += newLen - oldLen
			wantW += w[n] * (newLen - oldLen)
		})
		gotLen, gotW := p.SwapDeltaWeighted(a, b, w)
		if math.Abs(gotLen-wantLen) > 1e-9 || math.Abs(gotW-wantW) > 1e-9 {
			t.Fatalf("trial %d: SwapDeltaWeighted = (%v,%v), visit oracle = (%v,%v)",
				trial, gotLen, gotW, wantLen, wantW)
		}
		p.SwapCells(a, b)
	}
}

// TestSwapObjectivesBatchMatchesScalar fuzzes the batched trial kernel
// against its scalar oracle: thousands of random candidate batches, each
// compared bit-for-bit against per-candidate SwapDeltaWeighted +
// MaxRowWidthAfterSwap. Batch sizes straddle the internal sort threshold
// so both the generation-order and sorted visit paths are exercised, the
// placement mutates between batches, candidates include degenerate a==b
// pairs, and every fifth batch runs unweighted (nil w).
func TestSwapObjectivesBatchMatchesScalar(t *testing.T) {
	nl := testNetlist(t, 120, 7)
	p, err := New(nl, AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(23))
	p.Randomize(r)
	w := make([]float64, nl.NumNets())
	for n := range w {
		w[n] = r.Float64()
	}
	cells := nl.NumCells()
	const maxBatch = 64
	cands := make([]SwapCand, 0, maxBatch)
	dLen := make([]float64, maxBatch)
	dW := make([]float64, maxBatch)
	area := make([]float64, maxBatch)
	for batch := 0; batch < 2500; batch++ {
		n := 1 + r.Intn(maxBatch) // straddles batchSortMin
		cands = cands[:0]
		for i := 0; i < n; i++ {
			a := netlist.CellID(r.Intn(cells))
			b := netlist.CellID(r.Intn(cells)) // a == b allowed
			cands = append(cands, SwapCand{A: a, B: b})
		}
		wv := w
		if batch%5 == 0 {
			wv = nil
		}
		p.SwapObjectivesBatch(cands, wv, dLen, dW, area)
		for i, c := range cands {
			wantL, wantW := p.SwapDeltaWeighted(c.A, c.B, wv)
			wantA := float64(p.MaxRowWidthAfterSwap(c.A, c.B))
			if math.Float64bits(dLen[i]) != math.Float64bits(wantL) ||
				math.Float64bits(dW[i]) != math.Float64bits(wantW) ||
				math.Float64bits(area[i]) != math.Float64bits(wantA) {
				t.Fatalf("batch %d cand %d (%d,%d): batch=(%v,%v,%v) scalar=(%v,%v,%v)",
					batch, i, c.A, c.B, dLen[i], dW[i], area[i], wantL, wantW, wantA)
			}
		}
		a, b := randomPair(r, cells)
		p.SwapCells(a, b) // batches must agree on every placement, not just one
	}
}

// TestSwapObjectivesBatchAllocFree asserts the batched kernel keeps the
// zero-allocation contract once its scratch is warm.
func TestSwapObjectivesBatchAllocFree(t *testing.T) {
	nl := netlist.MustBenchmark("c532")
	p, err := New(nl, AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	p.Randomize(r)
	w := make([]float64, nl.NumNets())
	cands := make([]SwapCand, 64)
	for i := range cands {
		a, b := randomPair(r, nl.NumCells())
		cands[i] = SwapCand{A: a, B: b}
	}
	dLen := make([]float64, len(cands))
	dW := make([]float64, len(cands))
	area := make([]float64, len(cands))
	p.SwapObjectivesBatch(cands, w, dLen, dW, area) // warm the key scratch
	if allocs := testing.AllocsPerRun(200, func() {
		p.SwapObjectivesBatch(cands, w, dLen, dW, area)
	}); allocs != 0 {
		t.Errorf("SwapObjectivesBatch allocates %.1f per batch, want 0", allocs)
	}
}

// TestTrialEvaluationAllocFree asserts the zero-allocation contract of
// the trial kernel; the CI bench-smoke job runs it with -benchmem to
// catch regressions by numbers too.
func TestTrialEvaluationAllocFree(t *testing.T) {
	nl := netlist.MustBenchmark("c532")
	p, err := New(nl, AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(1)))
	w := make([]float64, nl.NumNets())
	a, b := netlist.CellID(3), netlist.CellID(251)
	p.SwapCells(a, b) // warm the rescan scratch buffer to steady-state capacity
	p.SwapCells(a, b)
	for name, fn := range map[string]func(){
		"SwapDeltaWeighted":    func() { p.SwapDeltaWeighted(a, b, w) },
		"HPWLDeltaSwap":        func() { p.HPWLDeltaSwap(a, b) },
		"MaxRowWidthAfterSwap": func() { p.MaxRowWidthAfterSwap(a, b) },
		"SwapCells":            func() { p.SwapCells(a, b) },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}
