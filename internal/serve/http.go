package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pts/internal/core"
)

// API is the daemon's HTTP front door over one Scheduler. Every
// endpoint speaks JSON; the events endpoint streams the per-job event
// log as server-sent events.
//
// The route patterns registered in Handler are the service's source of
// truth: scripts/check-docs.sh cross-checks them against the endpoint
// table in README.md and ARCHITECTURE.md, both directions.
type API struct {
	s     *Scheduler
	start time.Time
}

// NewAPI wraps a scheduler in its HTTP surface.
func NewAPI(s *Scheduler) *API {
	return &API{s: s, start: time.Now()}
}

// Handler returns the daemon's route table.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submitJob)
	mux.HandleFunc("GET /v1/jobs", a.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", a.getJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.jobEvents)
	mux.HandleFunc("GET /v1/fleet", a.fleetStatus)
	mux.HandleFunc("GET /healthz", a.healthz)
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error envelope every non-2xx response
// carries: {"error":{"code":"...","message":"..."}}. The code is the
// machine-readable half of the contract — clients branch on it, the
// message is for humans and may change wording freely.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes of the v1 API.
const (
	codeQueueFull       = "queue_full"       // 429: bounded job queue at capacity
	codeNeverAdmissible = "never_admissible" // 409: more workers requested than the fleet has
	codeTerminal        = "terminal"         // 409: cancel of an already-finished job
	codeDraining        = "draining"         // 503: daemon is shutting down
	codeNotFound        = "not_found"        // 404: no such job
	codeBadSpec         = "bad_spec"         // 400: malformed or invalid submission
	codeBadRequest      = "bad_request"      // 400: malformed query parameter
)

// writeError maps a scheduler error to its status code and machine
// code and emits the error envelope; fallbackCode classifies plain
// errors (decode and validation failures) that carry no sentinel.
func writeError(w http.ResponseWriter, err error, fallbackCode string) {
	status, code := http.StatusBadRequest, fallbackCode
	switch {
	case errors.Is(err, ErrQueueFull):
		status, code = http.StatusTooManyRequests, codeQueueFull
	case errors.Is(err, ErrNeverAdmissible):
		status, code = http.StatusConflict, codeNeverAdmissible
	case errors.Is(err, ErrTerminal):
		status, code = http.StatusConflict, codeTerminal
	case errors.Is(err, ErrDraining):
		status, code = http.StatusServiceUnavailable, codeDraining
	}
	writeJSON(w, status, errorBody{errorInfo{Code: code, Message: err.Error()}})
}

// writeNotFound emits the 404 envelope.
func writeNotFound(w http.ResponseWriter) {
	writeJSON(w, http.StatusNotFound, errorBody{errorInfo{Code: codeNotFound, Message: "no such job"}})
}

// submitPayload is the POST /v1/jobs request body.
type submitPayload struct {
	// Problem names the built-in workload.
	Problem problemPayload `json:"problem"`
	// Workers is how many fleet workers the job leases (0 = run every
	// task in the daemon process).
	Workers int `json:"workers"`
	// Config optionally overrides search parameters; absent fields keep
	// the paper's defaults.
	Config *configPayload `json:"config,omitempty"`
}

// problemPayload selects a workload: {"kind":"placement","circuit":
// "c532"}, {"kind":"qap","n":30,"seed":7}, or a scheduling benchmark
// {"kind":"flowshop","instance":"ta001"} /
// {"kind":"jobshop","instance":"ft06"}.
type problemPayload struct {
	Kind     string `json:"kind"`
	Circuit  string `json:"circuit,omitempty"`
	N        int    `json:"n,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Instance string `json:"instance,omitempty"`
}

// configPayload is the JSON shape of the overridable search knobs.
// Pointers distinguish "absent" (keep the default) from an explicit
// zero.
type configPayload struct {
	TSWs           *int     `json:"tsws,omitempty"`
	CLWs           *int     `json:"clws,omitempty"`
	GlobalIters    *int     `json:"global_iters,omitempty"`
	LocalIters     *int     `json:"local_iters,omitempty"`
	Trials         *int     `json:"trials,omitempty"`
	Depth          *int     `json:"depth,omitempty"`
	Tenure         *int     `json:"tenure,omitempty"`
	DiversifyDepth *int     `json:"diversify_depth,omitempty"`
	HalfSync       *bool    `json:"half_sync,omitempty"`
	Adaptive       *bool    `json:"adaptive,omitempty"`
	Seed           *uint64  `json:"seed,omitempty"`
	WorkScale      *float64 `json:"work_scale,omitempty"`
}

// buildConfig folds the payload's overrides over the defaults.
func (p *configPayload) buildConfig() core.Config {
	cfg := core.DefaultConfig()
	if p == nil {
		return cfg
	}
	if p.TSWs != nil {
		cfg.TSWs = *p.TSWs
	}
	if p.CLWs != nil {
		cfg.CLWs = *p.CLWs
	}
	if p.GlobalIters != nil {
		cfg.GlobalIters = *p.GlobalIters
	}
	if p.LocalIters != nil {
		cfg.LocalIters = *p.LocalIters
	}
	if p.Trials != nil {
		cfg.Trials = *p.Trials
	}
	if p.Depth != nil {
		cfg.Depth = *p.Depth
	}
	if p.Tenure != nil {
		cfg.Tenure = *p.Tenure
	}
	if p.DiversifyDepth != nil {
		cfg.DiversifyDepth = *p.DiversifyDepth
	}
	if p.HalfSync != nil {
		cfg.HalfSync = *p.HalfSync
	}
	if p.Adaptive != nil {
		cfg.Adaptive = *p.Adaptive
	}
	if p.Seed != nil {
		cfg.Seed = *p.Seed
	}
	if p.WorkScale != nil {
		cfg.WorkScale = *p.WorkScale
	}
	return cfg
}

// submitJob handles POST /v1/jobs: decode, enqueue, 201 with the job
// view (or 400/409/429/503 per the scheduler's refusal).
func (a *API) submitJob(w http.ResponseWriter, r *http.Request) {
	var p submitPayload
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		writeError(w, fmt.Errorf("decode request: %w", err), codeBadSpec)
		return
	}
	j, err := a.s.Submit(Request{
		Spec: core.ProblemSpec{
			Kind:     p.Problem.Kind,
			Circuit:  p.Problem.Circuit,
			QAPN:     p.Problem.N,
			QAPSeed:  p.Problem.Seed,
			Instance: p.Problem.Instance,
		},
		Workers: p.Workers,
		Cfg:     p.Config.buildConfig(),
	})
	if err != nil {
		writeError(w, err, codeBadSpec)
		return
	}
	writeJSON(w, http.StatusCreated, j.View(false))
}

// listJobs handles GET /v1/jobs: jobs in submission order (which is
// job-id order — ids are sequential), without the (large) result
// payloads. Optional query parameters filter and paginate:
// ?status=queued|running|done|failed|cancelled keeps one lifecycle
// state, ?limit=N caps the page size, and ?after=<job id> resumes
// after the named job — pages are keyed by the stable job id, so a
// job finishing between requests never shifts the cursor. A truncated
// page carries "next_after": the cursor of the next one.
func (a *API) listJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	statusFilter := ""
	if v := q.Get("status"); v != "" {
		if _, ok := statusFromWire(v); !ok {
			writeError(w, fmt.Errorf("unknown status %q", v), codeBadRequest)
			return
		}
		statusFilter = v
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, fmt.Errorf("limit %q is not a positive integer", v), codeBadRequest)
			return
		}
		limit = n
	}
	after := q.Get("after")

	jobs := a.s.Jobs()
	if after != "" {
		i := 0
		for i < len(jobs) && jobs[i].ID() != after {
			i++
		}
		if i == len(jobs) {
			writeError(w, fmt.Errorf("unknown cursor %q", after), codeBadRequest)
			return
		}
		jobs = jobs[i+1:]
	}
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		v := j.View(false)
		if statusFilter != "" && v.Status != statusFilter {
			continue
		}
		views = append(views, v)
	}
	body := map[string]any{"jobs": views}
	if limit > 0 && len(views) > limit {
		views = views[:limit]
		body["jobs"] = views
		body["next_after"] = views[limit-1].ID
	}
	writeJSON(w, http.StatusOK, body)
}

// getJob handles GET /v1/jobs/{id}: the full view including the run
// result once the job has one.
func (a *API) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := a.s.Get(r.PathValue("id"))
	if !ok {
		writeNotFound(w)
		return
	}
	writeJSON(w, http.StatusOK, j.View(true))
}

// cancelJob handles DELETE /v1/jobs/{id}: dequeue a queued job, stop a
// running one at its best-so-far.
func (a *API) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := a.s.Get(id)
	if !ok {
		writeNotFound(w)
		return
	}
	if err := a.s.Cancel(id); err != nil {
		writeError(w, err, codeBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, j.View(false))
}

// jobEvents handles GET /v1/jobs/{id}/events: the job's event log as
// server-sent events — one "progress" event per completed global
// iteration, bracketed by lifecycle events, closing after the terminal
// one. Replays from the start by default; resume with the standard
// Last-Event-ID header (or ?after=<seq>).
func (a *API) jobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := a.s.Get(r.PathValue("id"))
	if !ok {
		writeNotFound(w)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{errorInfo{Code: "internal", Message: "streaming unsupported"}})
		return
	}
	next := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if id, err := strconv.Atoi(v); err == nil {
			next = id + 1
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		if id, err := strconv.Atoi(v); err == nil {
			next = id + 1
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		evs, terminal, wait := j.EventsSince(next)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				data = []byte(fmt.Sprintf(`{"seq":%d,"kind":%q}`, e.Seq, e.Kind))
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
		}
		next += len(evs)
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		}
	}
}

// fleetStatus handles GET /v1/fleet: the worker registry plus queue
// depth at a glance.
func (a *API) fleetStatus(w http.ResponseWriter, r *http.Request) {
	f := a.s.Fleet()
	nodes := f.Nodes()
	if nodes == nil {
		nodes = []NodeInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   f.TotalWorkers(),
		"free":    f.FreeWorkers(),
		"queued":  a.s.Queued(),
		"workers": nodes,
	})
}

// healthz handles GET /healthz: liveness plus coarse load numbers.
func (a *API) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(a.start).Round(time.Second).String(),
		"jobs":    len(a.s.Jobs()),
		"queued":  a.s.Queued(),
		"workers": a.s.Fleet().TotalWorkers(),
	})
}
