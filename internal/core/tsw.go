package core

import (
	"fmt"
	"math/rand"

	"pts/internal/pvm"
	"pts/internal/tabu"
)

// tswRun is the tabu search worker body (paper Fig. 3). Per global
// iteration it diversifies with respect to its own element range, runs
// LocalIters tabu iterations driven by its CLWs, reports its best
// (solution + tabu list) to the master, and adopts the broadcast global
// best. Rounds are driven by the master's verdicts: a TagGlobal starts
// the next round, a TagStop ends the run — so the master alone decides
// when a cancelled run winds down.
func tswRun(env pvm.Env, problem Problem, cfg Config, master pvm.TaskID) {
	init := env.Recv(TagInit).Data.(initMsg)
	prob := mustState(env, problem, init.Perm)
	tune := cfg.tuningFor(init.WorkerIdx)

	list := tabu.NewList()
	freq := tabu.NewFrequency(prob.Size())
	tswRand := workerRand(env, cfg, "tsw")
	var iter int64
	var stats WorkerStats

	best := prob.Cost()
	bestPerm := prob.Snapshot() // reused buffer; copied on report
	staWork := workSTA(cfg, prob.Size())
	var pending []improvement // incumbent improvements since the last report

	// Spawn this worker's CLWs once; they live for the whole run and
	// sit on the machines the assignment policy dictates.
	clwIDs := make([]pvm.TaskID, cfg.CLWs)
	clwRanges := ranges(prob.Size(), cfg.CLWs)
	for j := 0; j < cfg.CLWs; j++ {
		clwIDs[j] = env.SpawnSpec(fmt.Sprintf("clw%d", j), cfg.clwMachine(init.WorkerIdx, j), pvm.Spec{
			Kind: taskKindCLW,
			Data: clwSpec{Parent: env.Self(), Tune: tune},
			Fn: func(e pvm.Env) {
				clwRun(e, problem, cfg, tune, env.Self())
			},
		})
	}
	for j, id := range clwIDs {
		env.Send(id, TagInit, initMsg{
			Perm:      init.Perm,
			RangeLo:   clwRanges[j][0],
			RangeHi:   clwRanges[j][1],
			WorkerIdx: j,
		})
	}

	noteBest := func() {
		if c := prob.Cost(); c < best {
			best = c
			bestPerm = snapshotInto(prob, bestPerm)
			pending = append(pending, improvement{Time: env.Now(), Cost: c})
		}
	}

	// syncCLWs broadcasts the chosen move of this iteration.
	syncCLWs := func(chosen tabu.CompoundMove) {
		for _, id := range clwIDs {
			env.Send(id, TagSync, syncMsg{Chosen: chosen})
		}
	}

	// resyncState pushes the full current solution to every CLW.
	resyncState := func() {
		perm := prob.Snapshot()
		for _, id := range clwIDs {
			env.Send(id, TagNewState, stateMsg{Perm: perm})
		}
	}

	// Hot-loop scratch, reused across every local iteration so the
	// selection path allocates only when a move is actually accepted.
	collector := newCandCollector(clwIDs)
	var moves []tabu.CompoundMove

	acceptedSinceRefresh := 0
	for {
		forcedByMaster := false
		// Cooperative cancellation: skip the round's search work and
		// report immediately; the master will answer with TagStop once it
		// has observed the cancellation itself.
		if !env.Cancelled() {
			// Diversification w.r.t. this worker's own element range (Kelly
			// et al. [10]): forced swaps of the least-moved elements of the
			// range.
			if tune.DiversifyDepth > 0 {
				diversify(prob, env, tswRand, freq, list, iter, cfg, tune, init.RangeLo, init.RangeHi)
				stats.Diversifications++
				refresh(prob)
				env.Work(staWork)
				noteBest()
			}
			resyncState()

			for l := 0; l < cfg.LocalIters; l++ {
				// Heterogeneity: the master may force us to report early;
				// a cancelled context forces everyone at once.
				if _, ok := env.TryRecv(TagReportNow); ok {
					forcedByMaster = true
					stats.ForcedReports++
					break
				}
				if env.Cancelled() {
					break
				}
				stats.LocalIters++
				iter++

				// Fan the candidate construction out to the CLWs.
				for _, id := range clwIDs {
					env.Send(id, TagSearch, nil)
				}
				cands := collector.collect(env, cfg.HalfSync)
				env.Work(float64(len(cands)) * cfg.WorkPerTrial) // selection cost

				moves = moves[:0]
				for _, c := range cands {
					moves = append(moves, c.Move)
				}
				verdict := tabu.SelectAdmissible(moves, prob.Cost(), best, list, iter)
				var chosen tabu.CompoundMove
				if verdict.Index >= 0 {
					chosen = moves[verdict.Index]
					chosen.Apply(prob)
					env.Work(float64(len(chosen.Swaps)) * cfg.WorkPerTrial)
					for _, s := range chosen.Swaps {
						list.Add(s.Attribute(), iter+int64(tune.Tenure))
					}
					freq.BumpMove(&chosen)
					stats.MovesAccepted++
					acceptedSinceRefresh++
					noteBest()
				}
				stats.TabuRejected += int64(verdict.TabuRejected)
				if verdict.Aspired {
					stats.Aspirations++
				}
				if verdict.Fallback {
					stats.Fallbacks++
				}
				syncCLWs(chosen)

				if cfg.RefreshEvery > 0 && acceptedSinceRefresh >= cfg.RefreshEvery {
					acceptedSinceRefresh = 0
					refresh(prob)
					env.Work(staWork)
					noteBest()
				}
			}
		}

		// Report the best to the master (solution + tabu list, §4.1). The
		// permutation is copied because bestPerm is a reused buffer the
		// next round keeps writing into.
		env.Send(master, TagBest, bestMsg{
			Cost:   best,
			Perm:   append([]int32(nil), bestPerm...),
			Tabu:   list.Export(iter),
			Points: pending,
			Forced: forcedByMaster,
			Stats:  stats,
		})
		pending = nil

		// Wait for the verdict; ignore stale force requests.
		for {
			m := env.Recv(TagGlobal, TagStop, TagReportNow)
			if m.Tag == TagReportNow {
				continue
			}
			if m.Tag == TagStop {
				shutdownCLWs(env, clwIDs, &stats)
				env.Send(master, TagStats, stats)
				return
			}
			gm := m.Data.(globalMsg)
			if err := prob.Restore(gm.Perm); err != nil {
				panic(fmt.Sprintf("core: tsw %s: %v", env.Name(), err))
			}
			env.Work(staWork)
			// Adopt the winner's tabu list with the solution.
			list.Reset()
			list.Import(gm.Tabu, iter)
			noteBest()
			break
		}
	}
}

// candCollector gathers one candidate per CLW each local iteration. Its
// buffers (the output slice and the reported set) are allocated once per
// TSW and reused for every iteration of the run.
type candCollector struct {
	clwIDs   []pvm.TaskID
	out      []candMsg
	reported map[pvm.TaskID]bool
}

func newCandCollector(clwIDs []pvm.TaskID) *candCollector {
	return &candCollector{
		clwIDs:   clwIDs,
		out:      make([]candMsg, 0, len(clwIDs)),
		reported: make(map[pvm.TaskID]bool, len(clwIDs)),
	}
}

// collect returns one candidate per CLW; the returned slice is valid
// until the next collect. In half-sync mode it waits for half of them,
// forces the rest with TagReportNow, then waits for the remainder (they
// arrive promptly, truncated).
func (cc *candCollector) collect(env pvm.Env, halfSync bool) []candMsg {
	n := len(cc.clwIDs)
	cc.out = cc.out[:0]
	for id := range cc.reported {
		delete(cc.reported, id)
	}
	take := func() {
		m := env.Recv(TagCandidate)
		cc.reported[m.From] = true
		cc.out = append(cc.out, m.Data.(candMsg))
	}
	if halfSync && n > 1 {
		half := (n + 1) / 2
		for len(cc.out) < half {
			take()
		}
		for _, id := range cc.clwIDs {
			if !cc.reported[id] {
				env.Send(id, TagReportNow, nil)
			}
		}
	}
	for len(cc.out) < n {
		take()
	}
	return cc.out
}

// diversify performs the Kelly-style diversification "within the TSW
// range" (paper §4.1): each of DiversifyDepth forced swaps moves the
// least-frequently moved element of [lo, hi) — the long-term-memory
// forcing of Kelly et al. [10] — to the best of Trials candidate
// partners from the same range. The move is applied regardless of sign,
// so each TSW drifts into its own region of the solution space, but the
// greedy partner choice bounds the damage to the incumbent. The applied
// attributes become tabu so the jump is not immediately undone.
func diversify(prob tabu.Problem, env pvm.Env, r *rand.Rand, freq *tabu.Frequency, list *tabu.List,
	iter int64, cfg Config, tune Tuning, lo, hi int32) {
	size := prob.Size()
	if hi <= lo+1 || size < 2 {
		return
	}
	for i := 0; i < tune.DiversifyDepth; i++ {
		a := freq.LeastMoved(r, lo, hi)
		bestB, bestDelta := int32(-1), 0.0
		for t := 0; t < tune.Trials; t++ {
			b := lo + int32(r.Intn(int(hi-lo)))
			if b == a {
				continue
			}
			d := prob.DeltaSwap(a, b)
			if bestB < 0 || d < bestDelta {
				bestB, bestDelta = b, d
			}
		}
		env.Work(float64(tune.Trials) * cfg.WorkPerTrial)
		if bestB < 0 {
			continue
		}
		prob.ApplySwap(a, bestB)
		freq.BumpSwap(a, bestB)
		list.Add(tabu.Attr(a, bestB), iter+int64(tune.Tenure))
	}
}

// shutdownCLWs stops every CLW and folds its stats into the TSW's.
func shutdownCLWs(env pvm.Env, clwIDs []pvm.TaskID, stats *WorkerStats) {
	for _, id := range clwIDs {
		env.Send(id, TagStop, nil)
	}
	for range clwIDs {
		m := env.Recv(TagStats)
		stats.add(m.Data.(WorkerStats))
	}
}
