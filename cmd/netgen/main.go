// Command netgen generates or describes the synthetic benchmark
// circuits.
//
// Usage:
//
//	netgen -list                        # list the paper's circuits
//	netgen -circuit c532                # describe one circuit
//	netgen -circuit c532 -o c532.net    # write it in the text format
//	netgen -cells 800 -seed 7 -o x.net  # generate a custom circuit
package main

import (
	"flag"
	"fmt"
	"os"

	"pts/internal/netlist"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the benchmark circuits")
		circuit = flag.String("circuit", "", "benchmark circuit to emit/describe")
		cells   = flag.Int("cells", 0, "generate a custom circuit with this many cells")
		inputs  = flag.Int("inputs", 0, "primary inputs for the custom circuit (0 = auto)")
		outputs = flag.Int("outputs", 0, "primary outputs for the custom circuit (0 = auto)")
		seed    = flag.Uint64("seed", 1, "generator seed for the custom circuit")
		name    = flag.String("name", "custom", "name of the custom circuit")
		out     = flag.String("o", "", "write the netlist to this file (default: describe only)")
		dot     = flag.String("dot", "", "write a Graphviz rendering to this file")
		report  = flag.Bool("report", false, "print structural distributions (degrees, fanout, levels)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark circuits (synthetic stand-ins, see DESIGN.md §4):")
		for _, n := range netlist.BenchmarkNames() {
			fmt.Printf("  %-8s %5d cells\n", n, netlist.BenchmarkCells(n))
		}
		return
	}

	var nl *netlist.Netlist
	var err error
	switch {
	case *circuit != "":
		nl, err = netlist.Benchmark(*circuit)
	case *cells > 0:
		nl, err = netlist.Generate(netlist.GenConfig{
			Name: *name, Cells: *cells, Inputs: *inputs, Outputs: *outputs, Seed: *seed,
		})
	default:
		err = fmt.Errorf("nothing to do: pass -list, -circuit or -cells (see -h)")
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s: %s\n", nl.Name, nl.ComputeStats())
	if *report {
		if err := nl.Analyze().WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *out != "" {
		if err := writeTo(*out, func(f *os.File) error { return netlist.Write(f, nl) }); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dot != "" {
		if err := writeTo(*dot, func(f *os.File) error { return netlist.WriteDOT(f, nl) }); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dot)
	}
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
