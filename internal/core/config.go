// Package core implements the paper's contribution: the two-level
// parallel tabu search (PTS) for VLSI standard-cell placement in a
// heterogeneous environment.
//
// Three process kinds cooperate over the PVM-like substrate
// (pts/internal/pvm):
//
//   - the master spawns TSWs, hands every one the same initial solution,
//     collects their bests each global iteration, and broadcasts the
//     winner (solution plus its tabu list);
//   - Tabu Search Workers (TSWs) each run their own tabu search
//     (multi-search threads, p-control): per global iteration they first
//     diversify with respect to their own cell range, then drive
//     LocalIters tabu iterations using their candidate-list workers;
//   - Candidate-list Workers (CLWs) build the candidate list in parallel
//     (functional decomposition, 1-control): each owns a cell range
//     (probabilistic domain decomposition) and produces one compound
//     move of depth Depth per request, keeping the best of Trials pair
//     swaps per step and accepting early when the cost improves.
//
// Heterogeneity adaptation (Config.HalfSync): a parent collects results
// until half of its children reported, then forces the rest to report
// their best-so-far immediately — at both parallelization levels,
// exactly as in the paper's §4.2.
package core

import (
	"fmt"

	"pts/internal/cost"
	"pts/internal/pvm"
	"pts/internal/store"
)

// Config parameterizes one parallel tabu search run.
type Config struct {
	// TSWs is the number of tabu search workers (high-level
	// parallelization degree).
	TSWs int
	// CLWs is the number of candidate-list workers per TSW (low-level
	// parallelization degree).
	CLWs int
	// GlobalIters is the number of master synchronization rounds.
	GlobalIters int
	// LocalIters is the number of tabu iterations per TSW per global
	// iteration.
	LocalIters int
	// Trials is m: candidate pairs per compound-move step.
	Trials int
	// Depth is d: maximum swaps per compound move.
	Depth int
	// Tenure is the tabu tenure in TSW iterations.
	Tenure int
	// DiversifyDepth is the number of forced diversification swaps each
	// TSW performs at the start of every global iteration; 0 disables
	// diversification.
	DiversifyDepth int
	// HalfSync enables the heterogeneous collection mode: parents force
	// stragglers to report once half their children finished. When
	// false, parents wait for every child (the paper's homogeneous run).
	HalfSync bool
	// Adaptive enables the heterogeneity-aware scheduler
	// (pts/internal/sched): element ranges are seeded proportionally to
	// the declared machine speeds and re-partitioned at synchronization
	// barriers to track each worker's observed throughput, with each
	// CLW's per-step trial budget scaled to its range share so faster
	// workers do proportionally more of the work. Adaptive runs also
	// tolerate CLW loss on distributed transports: a dead CLW's range
	// folds back into the survivors instead of aborting the run, and
	// late-joining workers are absorbed as spare capacity.
	//
	// Off (the default), partitioning is the paper's static equal
	// split; fixed-seed virtual-time runs are bit-identical to earlier
	// releases. On, virtual-time runs remain deterministic in the seed
	// (scheduling decisions key off modeled time), but differ from
	// static runs.
	Adaptive bool
	// DisableRespawn turns off worker recovery in adaptive runs: a
	// lost CLW's range still folds into the survivors (the pre-respawn
	// graceful degradation) but no replacement is requested, TSWs take
	// no checkpoints, and a lost TSW aborts the run. The zero value —
	// recovery on — is the default whenever Adaptive is set; static
	// runs never lose workers tolerably in the first place.
	DisableRespawn bool
	// CheckpointEvery is how many reports a TSW lets pass between
	// piggybacked recovery checkpoints in adaptive runs: 1 (the
	// normalized default for 0) checkpoints on every report, larger
	// values trade recovery freshness for report size. Ignored when
	// respawn is disabled.
	CheckpointEvery int
	// Store, when non-nil, makes the run durable: the master persists a
	// run snapshot (round index, incumbent best, the TSW checkpoint
	// ledger) under "runs/<RunID>" at every resync barrier, and a fresh
	// run that finds a snapshot there resumes it instead of starting
	// over. A store implies checkpointing — TSWs take checkpoints even
	// in static runs — and turns on the durable reseed discipline that
	// makes a resumed static fixed-seed run reproduce the uninterrupted
	// store-enabled run (with CheckpointEvery 1, the default). The
	// snapshot is deleted when the run completes uninterrupted.
	// Process-local (master only), never serialized.
	Store store.Store `json:"-"`
	// RunID names the snapshot key within the store ("runs/<RunID>");
	// empty means "run". Give concurrent runs sharing one store
	// distinct IDs.
	RunID string
	// Durable is the wire twin of Store for worker processes: a
	// distributed master sets it from Store != nil so TSWs and CLWs on
	// other nodes follow the durable checkpoint/reseed discipline
	// without holding the (process-local) store themselves. Callers use
	// Store; Durable alone changes worker behavior but persists
	// nothing.
	Durable bool
	// RelaxedAccumulation opts batch trial evaluation into the
	// reassociated (multi-lane) accumulation kernels where the state
	// supports them (tabu.RelaxedAccumulator). Off (the default), batch
	// evaluation is bit-identical to the scalar path and fixed-seed runs
	// reproduce the strict goldens. On, runs remain deterministic in the
	// seed — relaxed kernels are pure functions too — but pin different
	// (relaxed-mode) goldens. Applied uniformly to every worker via the
	// job payload so distributed processes score identically.
	RelaxedAccumulation bool
	// EvalWorkers, when > 1, sizes the per-CLW evaluation pool: each
	// CLW's state shards its candidate batches across that many
	// persistent goroutines (tabu.EvalPooler). Requires
	// RelaxedAccumulation — strict mode keeps the single-threaded
	// batch path that its bit-identity contract is audited against.
	EvalWorkers int
	// RefreshEvery re-runs timing analysis on a TSW's evaluator every
	// that many accepted moves (0 = only at global sync).
	RefreshEvery int
	// Utilization is the slot-grid fill ratio for the layout.
	Utilization float64
	// Cost configures objectives and fuzzy goals.
	Cost cost.Config
	// WorkPerTrial is the modeled compute cost, in reference seconds, of
	// evaluating one trial swap; it is what the virtual runtime charges.
	WorkPerTrial float64
	// Seed drives the initial solution and every worker's sampling.
	Seed uint64
	// RecordTrace keeps the best-cost-versus-time trace in the result.
	RecordTrace bool
	// Progress, when non-nil, receives one Snapshot per completed global
	// iteration, from the master as soon as the round's reports are in.
	// The callback runs on the master's thread of execution (the virtual
	// kernel's single goroutine in Virtual mode): keep it fast and do
	// not call back into the run from it.
	Progress func(Snapshot) `json:"-"`
	// Transport, when non-nil, hosts Real-mode runs: the in-process
	// goroutine transport when nil, or a nettrans master for
	// distributed runs across processes. Process-local, never
	// serialized.
	Transport pvm.Transport `json:"-"`
	// ProblemSpec, when non-nil, names the built-in workload in a
	// distributed run's job payload, so worker daemons equipped with a
	// resolver (WorkerOptions.Resolve) construct the job's problem on
	// demand instead of serving one fixed problem. Nil (the default)
	// requires every worker to have been started with the master's
	// problem. Ignored outside the distributed path.
	ProblemSpec *ProblemSpec
	// WorkScale, when positive, makes Real-mode runs emulate machine
	// speed: every Env.Work(s) sleeps s*WorkScale/speed wall seconds on
	// its node. It is how a distributed run expresses the paper's
	// heterogeneity on nodes that declared different speed factors; 0
	// (the default) makes Work free in real time.
	WorkScale float64
	// CorrelatedWorkers gives all sibling workers the same random
	// stream instead of independent ones. This emulates the classic
	// unseeded-PRNG deployment of the paper's era, where every PVM
	// process drew the same numbers: without diversification the TSWs
	// then perform identical redundant searches, which is precisely the
	// situation the paper's diversification step (Fig. 9) repairs.
	CorrelatedWorkers bool
	// Assignment selects how tasks map onto cluster machines.
	Assignment Assignment
	// PerTSW optionally overrides search parameters per TSW, turning
	// the algorithm from the paper's MPSS (multiple points, single
	// strategy) into MPDS (multiple points, different strategies) in
	// the Crainic taxonomy — the natural extension the paper's §4
	// classification points at. Index i tunes TSW i; missing entries
	// keep the global parameters.
	PerTSW []Tuning
}

// Tuning is a per-TSW strategy override; zero fields inherit the
// global Config value.
type Tuning struct {
	Trials         int
	Depth          int
	Tenure         int
	DiversifyDepth int
}

// tuningFor resolves the effective parameters of TSW i.
func (c Config) tuningFor(i int) Tuning {
	t := Tuning{
		Trials:         c.Trials,
		Depth:          c.Depth,
		Tenure:         c.Tenure,
		DiversifyDepth: c.DiversifyDepth,
	}
	if i < len(c.PerTSW) {
		o := c.PerTSW[i]
		if o.Trials > 0 {
			t.Trials = o.Trials
		}
		if o.Depth > 0 {
			t.Depth = o.Depth
		}
		if o.Tenure > 0 {
			t.Tenure = o.Tenure
		}
		if o.DiversifyDepth > 0 {
			t.DiversifyDepth = o.DiversifyDepth
		}
	}
	return t
}

// Assignment is the task-to-machine placement policy.
type Assignment int

const (
	// AssignInterleaved emulates PVM's global round-robin: master on
	// machine 0, TSW i on 1+i, CLW j of TSW i on 1+TSWs+i·CLWs+j (all
	// modulo the cluster size). Every TSW group mixes machine speeds.
	AssignInterleaved Assignment = iota
	// AssignBlocked gives each TSW group (the TSW plus its CLWs) a
	// contiguous machine window, so whole groups are fast or slow — the
	// regime where the master-level half-sync matters most.
	AssignBlocked
)

// tswMachine returns the machine index of TSW i.
func (c Config) tswMachine(i int) int {
	if c.Assignment == AssignBlocked {
		return 1 + i*(1+c.CLWs)
	}
	return 1 + i
}

// clwMachine returns the machine index of CLW j of TSW i.
func (c Config) clwMachine(i, j int) int {
	if c.Assignment == AssignBlocked {
		return 1 + i*(1+c.CLWs) + 1 + j
	}
	return 1 + c.TSWs + i*c.CLWs + j
}

// DefaultConfig returns the parameter set used by the experiments
// unless a figure says otherwise.
func DefaultConfig() Config {
	return Config{
		TSWs:           4,
		CLWs:           1,
		GlobalIters:    10,
		LocalIters:     60,
		Trials:         12,
		Depth:          4,
		Tenure:         10,
		DiversifyDepth: 12,
		HalfSync:       true,
		RefreshEvery:   64,
		Utilization:    0.9,
		Cost:           cost.DefaultConfig(),
		// 20 µs per trial evaluation reproduces the paper's 2003-era
		// compute/communication ratio against the ~250 µs LAN latency:
		// one compound move costs ~1 ms, so collection order actually
		// depends on machine speed and load.
		WorkPerTrial: 20e-6,
		Seed:         1,
		RecordTrace:  true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TSWs < 1:
		return fmt.Errorf("core: TSWs %d < 1", c.TSWs)
	case c.CLWs < 1:
		return fmt.Errorf("core: CLWs %d < 1", c.CLWs)
	case c.GlobalIters < 1:
		return fmt.Errorf("core: GlobalIters %d < 1", c.GlobalIters)
	case c.LocalIters < 1:
		return fmt.Errorf("core: LocalIters %d < 1", c.LocalIters)
	case c.Trials < 1:
		return fmt.Errorf("core: Trials %d < 1", c.Trials)
	case c.Depth < 1:
		return fmt.Errorf("core: Depth %d < 1", c.Depth)
	case c.Tenure < 1:
		return fmt.Errorf("core: Tenure %d < 1", c.Tenure)
	case c.DiversifyDepth < 0:
		return fmt.Errorf("core: DiversifyDepth %d < 0", c.DiversifyDepth)
	case c.WorkPerTrial < 0:
		return fmt.Errorf("core: WorkPerTrial %v < 0", c.WorkPerTrial)
	case c.WorkScale < 0:
		return fmt.Errorf("core: WorkScale %v < 0", c.WorkScale)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("core: CheckpointEvery %d < 0", c.CheckpointEvery)
	case c.EvalWorkers < 0:
		return fmt.Errorf("core: EvalWorkers %d < 0", c.EvalWorkers)
	case c.EvalWorkers > 1 && !c.RelaxedAccumulation:
		return fmt.Errorf("core: EvalWorkers %d requires RelaxedAccumulation (the pool reorders accumulation)", c.EvalWorkers)
	case c.Store != nil && !store.ValidKey(c.runKey()):
		return fmt.Errorf("core: RunID %q is not a valid store key segment", c.RunID)
	}
	return nil
}

// respawn reports whether this run recovers lost workers: adaptive
// scheduling on (the only mode that watches for losses at all) and
// recovery not explicitly disabled.
func (c Config) respawn() bool { return c.Adaptive && !c.DisableRespawn }

// durable reports whether this run follows the durable discipline:
// TSWs checkpoint regardless of Adaptive, and workers reseed their
// random streams at every resync barrier so a run resumed from a
// master snapshot reproduces the uninterrupted one. True on the
// master when a Store is attached, and on worker processes through
// the wire flag.
func (c Config) durable() bool { return c.Store != nil || c.Durable }

// checkpoints reports whether TSWs take recovery checkpoints at all:
// for respawn, for durability, or both.
func (c Config) checkpoints() bool { return c.respawn() || c.durable() }

// runKey is the store key of this run's master snapshot.
func (c Config) runKey() string {
	id := c.RunID
	if id == "" {
		id = "run"
	}
	return "runs/" + id
}

// checkpointEvery normalizes the checkpoint cadence.
func (c Config) checkpointEvery() int {
	if c.CheckpointEvery < 1 {
		return 1
	}
	return c.CheckpointEvery
}

// ranges partitions [0, n) into k nearly equal half-open ranges, the
// cell subsets assigned to workers. With more workers than elements
// (k > n) the first n workers get one element each and the rest get
// empty ranges [n, n) — callers skip spawning workers for empty ranges
// rather than running searchers with a degenerate domain.
func ranges(n int32, k int) [][2]int32 {
	out := make([][2]int32, k)
	if int64(k) > int64(n) {
		for i := range out {
			if int32(i) < n {
				out[i] = [2]int32{int32(i), int32(i) + 1}
			} else {
				out[i] = [2]int32{n, n}
			}
		}
		return out
	}
	for i := 0; i < k; i++ {
		lo := int32(int64(n) * int64(i) / int64(k))
		hi := int32(int64(n) * int64(i+1) / int64(k))
		out[i] = [2]int32{lo, hi}
	}
	return out
}

// workSTA is the modeled compute cost of one full state refresh (a full
// timing analysis for placement), scaling with problem size: roughly
// n/8 trial-evaluation equivalents.
func workSTA(cfg Config, size int32) float64 {
	return cfg.WorkPerTrial * float64(size) / 8
}
