package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/pvm/nettrans"
	"pts/internal/serve"
)

// Serving-mode benchmark: the same stream of small solver jobs pushed
// through one ptsd-style scheduler over a loopback worker fleet, first
// one job at a time, then with the fleet's full concurrency. The
// measured quantities are service metrics — jobs per minute and the
// per-job submit-to-done latency distribution — rather than solver
// quality: every job is the identical fixed-seed run, so the comparison
// isolates what multiplexing concurrent runs over disjoint worker
// leases buys (and costs) on a shared fleet.

// ServeOpts configures the -serve scenario.
type ServeOpts struct {
	// Context bounds the runs (nil = background).
	Context context.Context
	// Circuit names the benchmark circuit every job solves (default
	// "highway").
	Circuit string
	// FleetWorkers is the loopback fleet size (default 4).
	FleetWorkers int
	// WorkersPerJob is each job's lease size (default 1, so the fleet
	// admits FleetWorkers jobs at once).
	WorkersPerJob int
	// Jobs is how many jobs each concurrency level pushes through
	// (default 12).
	Jobs int
	// Concurrency lists the in-flight job counts to measure (default
	// {1, FleetWorkers}).
	Concurrency []int
	// GlobalIters and LocalIters set each job's iteration budget
	// (defaults 3 and 10).
	GlobalIters, LocalIters int
	// WorkScale is the wall-seconds-per-modeled-second emulation factor
	// (default 25). Without it every job finishes in a few milliseconds
	// of pure protocol overhead and concurrency has nothing to overlap;
	// with it each job costs real wall time on its leased worker, so the
	// levels measure genuine fleet sharing.
	WorkScale float64
	// Scale multiplies the local iteration budget (ptsbench -scale);
	// <= 0 means 1.0.
	Scale float64
	// Seed fixes every job's run seed (default 7).
	Seed uint64
}

func (o ServeOpts) withDefaults() ServeOpts {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Circuit == "" {
		o.Circuit = "highway"
	}
	if o.FleetWorkers <= 0 {
		o.FleetWorkers = 4
	}
	if o.WorkersPerJob <= 0 {
		o.WorkersPerJob = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = 12
	}
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, o.FleetWorkers}
	}
	if o.GlobalIters <= 0 {
		o.GlobalIters = 3
	}
	if o.LocalIters <= 0 {
		o.LocalIters = 10
	}
	if o.Scale > 0 && o.Scale != 1 {
		o.LocalIters = int(float64(o.LocalIters)*o.Scale + 0.5)
		if o.LocalIters < 1 {
			o.LocalIters = 1
		}
	}
	if o.WorkScale <= 0 {
		o.WorkScale = 25
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// ServeLevel is one concurrency level's service metrics.
type ServeLevel struct {
	Concurrency   int     `json:"concurrency"`
	Jobs          int     `json:"jobs"`
	WallSeconds   float64 `json:"wall_seconds"`
	JobsPerMinute float64 `json:"jobs_per_minute"`
	P50Seconds    float64 `json:"p50_latency_seconds"`
	P95Seconds    float64 `json:"p95_latency_seconds"`
	MaxSeconds    float64 `json:"max_latency_seconds"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Note        string `json:"note"`
	GoVersion   string `json:"go_version"`
	GeneratedAt string `json:"generated_at"`

	Circuit       string  `json:"circuit"`
	FleetWorkers  int     `json:"fleet_workers"`
	WorkersPerJob int     `json:"workers_per_job"`
	GlobalIters   int     `json:"global_iters"`
	LocalIters    int     `json:"local_iters"`
	WorkScale     float64 `json:"work_scale"`
	Seed          uint64  `json:"seed"`

	Levels []ServeLevel `json:"levels"`
	// ThroughputGain is the last level's jobs/minute over the first's —
	// what sharing the fleet across concurrent jobs buys.
	ThroughputGain float64 `json:"throughput_gain"`
}

// serveResolve is the bench fleet's problem resolver (placement only;
// the service benchmark measures scheduling, not workload variety).
func serveResolve(spec core.ProblemSpec) (core.Problem, error) {
	if spec.Kind != "placement" {
		return nil, fmt.Errorf("bench: unsupported job kind %q", spec.Kind)
	}
	nl, err := netlist.Benchmark(spec.Circuit)
	if err != nil {
		return nil, err
	}
	def := core.DefaultConfig()
	return cost.NewPlacementProblem(nl, def.Utilization, def.Cost), nil
}

// Serve measures the multi-job scheduler over a loopback fleet.
func Serve(o ServeOpts) (*ServeReport, error) {
	o = o.withDefaults()

	// One fleet serves every level, as a long-lived daemon would.
	var sched atomic.Pointer[serve.Scheduler]
	m, err := nettrans.Listen(nettrans.MasterConfig{
		Addr: "127.0.0.1:0",
		OnRegistry: func() {
			if s := sched.Load(); s != nil {
				s.Notify()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	s, err := serve.New(serve.Config{
		Fleet:      serve.NettransFleet{M: m},
		Resolve:    serveResolve,
		Cluster:    cluster.Testbed12(12),
		QueueDepth: o.Jobs * len(o.Concurrency),
	})
	if err != nil {
		return nil, err
	}
	sched.Store(s)

	drain := make(chan struct{})
	var wg sync.WaitGroup
	workerErr := make([]error, o.FleetWorkers)
	for i := 0; i < o.FleetWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErr[i] = core.ServeWorker(o.Context, nil, core.WorkerOptions{
				Addr:    m.Addr(),
				Name:    fmt.Sprintf("bench%d", i),
				Speed:   1,
				Resolve: serveResolve,
				Drain:   drain,
			}, nil)
		}(i)
	}
	defer func() {
		close(drain)
		wg.Wait()
	}()
	joinDeadline := time.Now().Add(10 * time.Second)
	for m.TotalWorkers() < o.FleetWorkers {
		if time.Now().After(joinDeadline) {
			return nil, fmt.Errorf("bench: only %d of %d fleet workers joined", m.TotalWorkers(), o.FleetWorkers)
		}
		time.Sleep(2 * time.Millisecond)
	}

	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = 1, 2
	cfg.GlobalIters, cfg.LocalIters = o.GlobalIters, o.LocalIters
	cfg.Seed = o.Seed
	cfg.WorkScale = o.WorkScale
	cfg.HalfSync = false
	cfg.RecordTrace = false
	req := serve.Request{
		Spec:    core.ProblemSpec{Kind: "placement", Circuit: o.Circuit},
		Workers: o.WorkersPerJob,
		Cfg:     cfg,
	}

	rep := &ServeReport{
		Note:          "serving mode: jobs/minute and submit-to-done latency through the multi-job scheduler on a shared loopback fleet; regenerate with: ptsbench -serve",
		GoVersion:     runtime.Version(),
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Circuit:       o.Circuit,
		FleetWorkers:  o.FleetWorkers,
		WorkersPerJob: o.WorkersPerJob,
		GlobalIters:   o.GlobalIters,
		LocalIters:    o.LocalIters,
		WorkScale:     o.WorkScale,
		Seed:          o.Seed,
	}

	for _, conc := range o.Concurrency {
		level, err := serveLevel(o, s, req, conc)
		if err != nil {
			return nil, err
		}
		rep.Levels = append(rep.Levels, *level)
	}
	for i := range workerErr {
		if workerErr[i] != nil && o.Context.Err() == nil {
			return nil, fmt.Errorf("bench: fleet worker %d: %w", i, workerErr[i])
		}
	}
	first, last := rep.Levels[0], rep.Levels[len(rep.Levels)-1]
	if first.JobsPerMinute > 0 {
		rep.ThroughputGain = last.JobsPerMinute / first.JobsPerMinute
	}
	return rep, nil
}

// serveLevel pushes o.Jobs identical jobs through the scheduler with at
// most conc in flight and reports the level's service metrics.
func serveLevel(o ServeOpts, s *serve.Scheduler, req serve.Request, conc int) (*ServeLevel, error) {
	latencies := make([]float64, 0, o.Jobs)
	inflight := make(chan *jobTimer, conc)
	start := time.Now()
	done := 0
	submitted := 0
	for done < o.Jobs {
		for submitted < o.Jobs && len(inflight) < cap(inflight) {
			t0 := time.Now()
			j, err := s.Submit(req)
			if err != nil {
				return nil, fmt.Errorf("bench: submit job %d at concurrency %d: %w", submitted, conc, err)
			}
			inflight <- &jobTimer{j: j, t0: t0}
			submitted++
		}
		t := <-inflight
		select {
		case <-t.j.Done():
		case <-o.Context.Done():
			return nil, o.Context.Err()
		}
		if st := t.j.Status(); st != serve.Done {
			return nil, fmt.Errorf("bench: job %s ended %s (%s)", t.j.ID(), st, t.j.Err())
		}
		latencies = append(latencies, time.Since(t.t0).Seconds())
		done++
	}
	wall := time.Since(start).Seconds()

	sort.Float64s(latencies)
	level := &ServeLevel{
		Concurrency: conc,
		Jobs:        o.Jobs,
		WallSeconds: wall,
		P50Seconds:  percentile(latencies, 0.50),
		P95Seconds:  percentile(latencies, 0.95),
		MaxSeconds:  latencies[len(latencies)-1],
	}
	if wall > 0 {
		level.JobsPerMinute = float64(o.Jobs) / wall * 60
	}
	return level, nil
}

// jobTimer pairs a submitted job with its submission instant.
type jobTimer struct {
	j  *serve.Job
	t0 time.Time
}

// percentile reads the p-quantile from sorted samples (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RenderServe formats the report for the terminal.
func RenderServe(rep *ServeReport) string {
	out := fmt.Sprintf("serve scenario: %s jobs (%dx%d iterations, %d worker(s) each) on a %d-worker fleet\n",
		rep.Circuit, rep.GlobalIters, rep.LocalIters, rep.WorkersPerJob, rep.FleetWorkers)
	for _, l := range rep.Levels {
		out += fmt.Sprintf("  concurrency %d: %5.1f jobs/min   p50 %6.1fms  p95 %6.1fms  (%d jobs in %.2fs)\n",
			l.Concurrency, l.JobsPerMinute, l.P50Seconds*1e3, l.P95Seconds*1e3, l.Jobs, l.WallSeconds)
	}
	out += fmt.Sprintf("  throughput gain %.2fx from sharing the fleet\n", rep.ThroughputGain)
	return out
}

// WriteServe writes the report as <dir>/BENCH_serve.json plus the
// human-readable summary <dir>/bench_serve.md.
func WriteServe(rep *ServeReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_serve.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}

	md := fmt.Sprintf(`# Serving-mode throughput and latency

One ptsd-style scheduler over a shared loopback fleet of %d workers;
every job is the identical fixed-seed %s run (%dx%d iterations,
TSWs=1, CLWs=2, half-sync off) leasing %d worker(s). %d jobs per
level; latency is submit-to-done.

| concurrency | jobs/min | p50 | p95 | max | wall |
|---:|---:|---:|---:|---:|---:|
`, rep.FleetWorkers, rep.Circuit, rep.GlobalIters, rep.LocalIters,
		rep.WorkersPerJob, rep.Levels[0].Jobs)
	for _, l := range rep.Levels {
		md += fmt.Sprintf("| %d | %.1f | %.1f ms | %.1f ms | %.1f ms | %.2f s |\n",
			l.Concurrency, l.JobsPerMinute, l.P50Seconds*1e3, l.P95Seconds*1e3,
			l.MaxSeconds*1e3, l.WallSeconds)
	}
	md += fmt.Sprintf(`
Sharing the fleet across concurrent jobs yields a %.2fx throughput
gain; per-job p50 latency moves from %.1f ms at concurrency 1 to
%.1f ms at concurrency %d — concurrent runs pay a little master and
scheduler contention instead of waiting in line for the whole fleet.
Work emulation (work_scale %.0f) gives each job real wall-time cost
on its leased worker. Generated %s with %s; regenerate with
`+"`ptsbench -serve`"+`.
`, rep.ThroughputGain,
		rep.Levels[0].P50Seconds*1e3,
		rep.Levels[len(rep.Levels)-1].P50Seconds*1e3,
		rep.Levels[len(rep.Levels)-1].Concurrency,
		rep.WorkScale,
		rep.GeneratedAt, rep.GoVersion)
	mdPath := filepath.Join(dir, "bench_serve.md")
	if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
