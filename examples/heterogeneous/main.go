// Heterogeneous-vs-homogeneous walkthrough: the paper's §4.2/§5.4
// claim, reproduced head to head through the public API — the half-sync
// collection scheme reaches the same quality in substantially less
// runtime on a cluster with mixed machine speeds and background load.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
)

func main() {
	p, err := pts.PlacementBenchmark("c532")
	if err != nil {
		log.Fatal(err)
	}
	clus := pts.Testbed12(12) // 7 fast / 3 medium / 2 slow, loaded

	fmt.Println("machines:")
	for i, m := range clus.Machines() {
		load := "idle"
		if m.Loaded {
			load = fmt.Sprintf("loaded (period %.2fs)", m.LoadPeriod)
		}
		fmt.Printf("  %2d %-8s speed %.2f  %s\n", i, m.Name, m.Speed, load)
	}

	run := func(half bool) *pts.Result {
		res, err := pts.Solve(context.Background(), p,
			pts.WithWorkers(4, 4),
			pts.WithIterations(10, 30),
			pts.WithHalfSync(half),
			pts.WithCluster(clus),
			pts.WithSeed(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("\nidentical search, two collection strategies:")
	het := run(true)
	hom := run(false)

	fmt.Printf("\n%-14s %12s %14s %14s\n", "mode", "best cost", "virtual time", "forced reports")
	fmt.Printf("%-14s %12.4f %13.3fs %14d\n", "heterogeneous", het.BestCost, het.Elapsed, het.Stats.ForcedReports)
	fmt.Printf("%-14s %12.4f %13.3fs %14d\n", "homogeneous", hom.BestCost, hom.Elapsed, hom.Stats.ForcedReports)
	fmt.Printf("\nhalf-sync finishes %.2fx sooner at %+.1f%% cost difference\n",
		hom.Elapsed/het.Elapsed, 100*(het.BestCost-hom.BestCost)/hom.BestCost)

	fmt.Println("\nbest-cost traces (time -> cost):")
	fmt.Printf("%-8s %-22s %-22s\n", "round", "heterogeneous", "homogeneous")
	n := len(het.Trace)
	if len(hom.Trace) < n {
		n = len(hom.Trace)
	}
	for i := 0; i < n; i++ {
		hp, op := het.Trace[i], hom.Trace[i]
		fmt.Printf("%-8d %8.3fs -> %-8.4f %8.3fs -> %-8.4f\n", i, hp.Time, hp.Cost, op.Time, op.Cost)
	}
}
