package serve

import (
	"errors"
	"fmt"

	"pts/internal/pvm/nettrans"
)

// NettransFleet adapts a nettrans.Master — the TCP star transport's
// listener plus worker registry — to the Fleet interface. Wire the
// scheduler's Notify into nettrans.MasterConfig.OnRegistry so joins,
// losses and lease releases pump the admission queue.
type NettransFleet struct {
	M *nettrans.Master
}

// Lease claims n idle workers, translating the transport's capacity
// sentinel into the scheduler's.
func (f NettransFleet) Lease(n int) (Lease, error) {
	l, err := f.M.Lease(n)
	if err != nil {
		if errors.Is(err, nettrans.ErrNoCapacity) {
			return nil, fmt.Errorf("%w: %v", ErrNoCapacity, err)
		}
		return nil, err
	}
	return l, nil
}

// FreeWorkers is the number of idle (lobby) workers.
func (f NettransFleet) FreeWorkers() int { return f.M.FreeWorkers() }

// TotalWorkers is the number of registered workers, idle or leased.
func (f NettransFleet) TotalWorkers() int { return f.M.TotalWorkers() }

// Nodes describes every registered worker.
func (f NettransFleet) Nodes() []NodeInfo {
	nodes := f.M.Nodes()
	out := make([]NodeInfo, len(nodes))
	for i, n := range nodes {
		out[i] = NodeInfo{Name: n.Name, Speed: n.Speed, Capacity: n.Capacity, Busy: n.Busy}
	}
	return out
}
