// Heterogeneous-vs-homogeneous walkthrough: the paper's §4.2/§5.4
// claim, reproduced head to head through the public API — the half-sync
// collection scheme reaches the same quality in substantially less
// runtime on a cluster with mixed machine speeds and background load.
//
//	go run ./examples/heterogeneous
//
// After the simulated comparison, the example leaves the single address
// space: it re-launches itself as three worker processes of mixed
// declared speeds (the paper's fast/medium/slow classes) and runs the
// same search distributed over loopback TCP, master plus workers.
// Skip that half with -distributed=false.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"

	"pts"
)

func main() {
	distributed := flag.Bool("distributed", true, "follow up with the multi-process TCP run")
	workerOf := flag.String("as-worker-of", "", "internal: run as a worker process joining this master")
	workerSpeed := flag.Float64("worker-speed", 1.0, "internal: declared speed of the worker process")
	flag.Parse()
	if *workerOf != "" {
		runAsWorker(*workerOf, *workerSpeed)
		return
	}
	virtualComparison()
	if *distributed {
		distributedRun()
	}
}

func virtualComparison() {
	p, err := pts.PlacementBenchmark("c532")
	if err != nil {
		log.Fatal(err)
	}
	clus := pts.Testbed12(12) // 7 fast / 3 medium / 2 slow, loaded

	fmt.Println("machines:")
	for i, m := range clus.Machines() {
		load := "idle"
		if m.Loaded {
			load = fmt.Sprintf("loaded (period %.2fs)", m.LoadPeriod)
		}
		fmt.Printf("  %2d %-8s speed %.2f  %s\n", i, m.Name, m.Speed, load)
	}

	run := func(half bool) *pts.Result {
		res, err := pts.Solve(context.Background(), p,
			pts.WithWorkers(4, 4),
			pts.WithIterations(10, 30),
			pts.WithHalfSync(half),
			pts.WithCluster(clus),
			pts.WithSeed(3),
		)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("\nidentical search, two collection strategies:")
	het := run(true)
	hom := run(false)

	fmt.Printf("\n%-14s %12s %14s %14s\n", "mode", "best cost", "virtual time", "forced reports")
	fmt.Printf("%-14s %12.4f %13.3fs %14d\n", "heterogeneous", het.BestCost, het.Elapsed, het.Stats.ForcedReports)
	fmt.Printf("%-14s %12.4f %13.3fs %14d\n", "homogeneous", hom.BestCost, hom.Elapsed, hom.Stats.ForcedReports)
	fmt.Printf("\nhalf-sync finishes %.2fx sooner at %+.1f%% cost difference\n",
		hom.Elapsed/het.Elapsed, 100*(het.BestCost-hom.BestCost)/hom.BestCost)

	fmt.Println("\nbest-cost traces (time -> cost):")
	fmt.Printf("%-8s %-22s %-22s\n", "round", "heterogeneous", "homogeneous")
	n := len(het.Trace)
	if len(hom.Trace) < n {
		n = len(hom.Trace)
	}
	for i := 0; i < n; i++ {
		hp, op := het.Trace[i], hom.Trace[i]
		fmt.Printf("%-8d %8.3fs -> %-8.4f %8.3fs -> %-8.4f\n", i, hp.Time, hp.Cost, op.Time, op.Cost)
	}
}

// exampleProblem is the circuit every process of the distributed run
// builds locally — SPMD style, only protocol messages cross the wire.
func exampleProblem() pts.Problem {
	p, err := pts.PlacementBenchmark("c532")
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// distributedRun leaves the simulation: one master (this process) plus
// three re-executed worker processes with the paper's speed classes,
// exchanging the same TSW/CLW protocol over loopback TCP.
func distributedRun() {
	fmt.Println("\n--- distributed: the same search across real processes ---")
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot re-exec for worker processes: %v", err)
	}

	master, err := pts.ListenMaster("127.0.0.1:0", 3)
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	fmt.Printf("master listening on %s\n", master.Addr())

	speeds := []float64{1.0, 0.55, 0.3} // one node per paper speed class
	var workers []*exec.Cmd
	for i, sp := range speeds {
		cmd := exec.Command(exe,
			"-as-worker-of", master.Addr(),
			"-worker-speed", fmt.Sprint(sp))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("worker %d: %v", i, err)
		}
		fmt.Printf("launched worker pid %d (speed %.2f)\n", cmd.Process.Pid, sp)
		workers = append(workers, cmd)
	}

	res, err := pts.Solve(context.Background(), exampleProblem(),
		pts.WithWorkers(4, 2),
		pts.WithIterations(6, 30),
		pts.WithSeed(3),
		pts.WithTransport(master.Transport()),
		// A touch of speed emulation so the declared factors matter: fast
		// nodes really do answer sooner, and half-sync forces the slow one.
		pts.WithWorkScale(1e-3),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range workers {
		if err := w.Wait(); err != nil {
			log.Printf("worker pid %d: %v", w.Process.Pid, err)
		}
	}
	fmt.Printf("\ndistributed best cost %.4f (%.1f%% better) in %.3fs wall\n",
		res.BestCost, 100*res.Improvement(), res.Elapsed)
	fmt.Printf("%d tasks across 4 processes, %d protocol messages, %d forced reports\n",
		res.Tasks, res.Messages, res.Stats.ForcedReports)
}

// runAsWorker is the re-executed child: build the same problem, join
// the master, host tasks for one job.
func runAsWorker(addr string, speed float64) {
	err := pts.Worker(context.Background(), exampleProblem(), addr,
		pts.NodeOptions{Speed: speed}, 1, func(res *pts.Result) {
			fmt.Printf("worker pid %d done: best %.4f\n", os.Getpid(), res.BestCost)
		})
	if err != nil {
		log.Fatal(err)
	}
}
