package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"pts/internal/cluster"
	"pts/internal/netlist"
	"pts/internal/pvm"
	"pts/internal/qap"
)

// qapTestProblem adapts internal/qap to the core Problem boundary for
// tests that want a tiny, netlist-free instance.
type qapTestProblem struct {
	ins *qap.Instance
}

func (q *qapTestProblem) Name() string { return fmt.Sprintf("qap%d", q.ins.N) }
func (q *qapTestProblem) Size() int32  { return int32(q.ins.N) }
func (q *qapTestProblem) Initial(seed uint64) (State, error) {
	return qap.NewState(q.ins, seed), nil
}
func (q *qapTestProblem) NewState(snap []int32) (State, error) {
	return qap.NewStateAt(q.ins, snap)
}

func TestRangesMoreWorkersThanElements(t *testing.T) {
	rs := ranges(3, 5)
	want := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {3, 3}}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("ranges(3,5)[%d] = %v, want %v", i, rs[i], want[i])
		}
	}
	// k == n stays the exact equal split.
	for i, r := range ranges(4, 4) {
		if r[0] != int32(i) || r[1] != int32(i+1) {
			t.Fatalf("ranges(4,4)[%d] = %v", i, r)
		}
	}
}

// TestCLWClampWhenWorkersExceedElements is the regression test for the
// degenerate-range bug: with more CLWs than elements the extra workers
// used to be spawned with empty ranges (which the compound builder then
// silently widened to the whole space, breaking the domain
// decomposition). They must now be skipped entirely.
func TestCLWClampWhenWorkersExceedElements(t *testing.T) {
	prob := &qapTestProblem{ins: qap.Random(5, 2)}
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 2, 8 // 8 CLWs over 5 elements
	cfg.GlobalIters, cfg.LocalIters = 3, 8

	res, err := RunProblem(context.Background(), prob, cluster.Homogeneous(4, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("search got worse: %v -> %v", res.InitialCost, res.BestCost)
	}
	// Spawns: the root master, 2 TSWs, and per TSW only min(CLWs, n)=5
	// CLWs — not the configured 8.
	want := int64(1 + 2 + 2*5)
	if res.Runtime.Spawns != want {
		t.Errorf("spawned %d tasks, want %d (empty-range CLWs must be skipped)",
			res.Runtime.Spawns, want)
	}
}

// TestCLWForcedReportPath drives a CLW directly through the
// TagReportNow forced-report protocol (satellite of the heterogeneity
// adaptation): the force must truncate candidate construction, mark the
// candidate and the worker's counters, and — the part only exercised
// incidentally before — leave the CLW's private state consistent with
// its parent's after the following sync.
func TestCLWForcedReportPath(t *testing.T) {
	prob := &qapTestProblem{ins: qap.Random(16, 3)}
	cfg := DefaultConfig()
	cfg.Trials, cfg.Depth, cfg.Tenure = 4, 8, 5
	cfg.Seed = 1
	tune := cfg.tuningFor(0)
	st0, err := prob.Initial(1)
	if err != nil {
		t.Fatal(err)
	}
	initPerm := st0.Snapshot()

	var clwStats WorkerStats
	var forcedCand candMsg
	consistent := true
	var deltaGap float64
	root := func(env pvm.Env) {
		id := env.Spawn("clw0", 1, func(e pvm.Env) { clwRun(e, prob, cfg, tune) })
		env.Send(id, TagInit, initMsg{Perm: initPerm, RangeLo: 0, RangeHi: prob.Size(), WorkerIdx: 0})

		// Force lands while the compound move is being built: the CLW
		// polls TagReportNow between depth steps.
		env.Send(id, TagSearch, nil)
		env.Send(id, TagReportNow, nil)
		forcedCand = env.Recv(TagCandidate).Data.(candMsg)

		// Declare the forced candidate the winner and mirror it on our own
		// state copy, exactly like the TSW does.
		env.Send(id, TagSync, syncMsg{Chosen: forcedCand.Move})
		mine, err := prob.NewState(initPerm)
		if err != nil {
			t.Error(err)
			return
		}
		forcedCand.Move.Apply(mine)

		// A consistent CLW must now score its next candidate exactly as we
		// do: replay its reported swaps on our copy and compare deltas.
		env.Send(id, TagSearch, nil)
		next := env.Recv(TagCandidate).Data.(candMsg)
		sum := 0.0
		for _, s := range next.Move.Swaps {
			sum += mine.DeltaSwap(s.A, s.B)
			mine.ApplySwap(s.A, s.B)
		}
		deltaGap = math.Abs(sum - next.Move.Delta)
		consistent = deltaGap <= 1e-9
		env.Send(id, TagSync, syncMsg{Chosen: next.Move})

		env.Send(id, TagStop, nil)
		clwStats = env.Recv(TagStats).Data.(WorkerStats)
	}
	if _, err := pvm.RunVirtual(pvm.Options{Seed: 1, Cluster: cluster.Homogeneous(2, 1)}, root); err != nil {
		t.Fatal(err)
	}

	if !forcedCand.Forced {
		t.Error("candidate not marked Forced after TagReportNow")
	}
	if clwStats.ForcedReports != 1 {
		t.Errorf("ForcedReports = %d, want 1", clwStats.ForcedReports)
	}
	if clwStats.CandidatesBuilt != 2 {
		t.Errorf("CandidatesBuilt = %d, want 2", clwStats.CandidatesBuilt)
	}
	if !consistent {
		t.Errorf("CLW state inconsistent after forced round: replayed delta differs by %v", deltaGap)
	}
	if forcedCand.CumTrials <= 0 {
		t.Error("forced candidate carries no throughput observation")
	}
}

// TestForcedReportsAcrossRunStayConsistent runs the half-sync
// configuration end to end on a speed-skewed cluster and pins the
// forced-report path's global guarantees: forces happen, the run stays
// deterministic, and the final best is a valid solution (Run rescores
// it exactly and errors on corruption).
func TestForcedReportsAcrossRunStayConsistent(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Testbed12(3)
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 3, 3
	cfg.GlobalIters, cfg.LocalIters = 3, 12
	cfg.HalfSync = true

	a, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.ForcedReports == 0 {
		t.Fatal("no forced reports on a skewed cluster with half-sync on")
	}
	b, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Stats.ForcedReports != b.Stats.ForcedReports {
		t.Errorf("forced-report path not deterministic: (%v,%d) vs (%v,%d)",
			a.BestCost, a.Stats.ForcedReports, b.BestCost, b.Stats.ForcedReports)
	}
}

func TestAdaptiveVirtualDeterministic(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Testbed12(5) // mixed speeds and loads: shares drift
	cfg := quickCfg()
	cfg.CLWs = 3
	cfg.Adaptive = true

	a, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Elapsed != b.Elapsed {
		t.Fatalf("adaptive virtual runs diverged: (%v,%v) vs (%v,%v)",
			a.BestCost, a.Elapsed, b.BestCost, b.Elapsed)
	}
	for i := range a.BestPerm {
		if a.BestPerm[i] != b.BestPerm[i] {
			t.Fatal("adaptive best permutations differ between identical runs")
		}
	}
	if a.BestCost >= a.InitialCost {
		t.Errorf("adaptive run did not improve: %v -> %v", a.InitialCost, a.BestCost)
	}
	// On a loaded, speed-skewed cluster the tracker must adopt at least
	// one re-partition over the run.
	if a.Stats.Rebalances == 0 {
		t.Error("adaptive run on a skewed cluster adopted no rebalances")
	}
}

func TestAdaptiveSharesInProgress(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.Adaptive = true
	var lastShares []float64
	rounds := 0
	cfg.Progress = func(s Snapshot) {
		rounds++
		lastShares = s.Shares
	}
	if _, err := Run(nl, cluster.Testbed12(5), cfg, Virtual); err != nil {
		t.Fatal(err)
	}
	if rounds != cfg.GlobalIters {
		t.Fatalf("progress rounds = %d, want %d", rounds, cfg.GlobalIters)
	}
	if len(lastShares) != cfg.TSWs {
		t.Fatalf("snapshot shares = %v, want one per TSW", lastShares)
	}
	sum := 0.0
	for _, s := range lastShares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", sum)
	}

	// Static mode must not report shares.
	cfg.Adaptive = false
	cfg.Progress = func(s Snapshot) { lastShares = s.Shares }
	if _, err := Run(nl, cluster.Testbed12(5), cfg, Virtual); err != nil {
		t.Fatal(err)
	}
	if lastShares != nil {
		t.Errorf("static run reported shares %v", lastShares)
	}
}

// TestAdaptiveSeedsFromMachineSpeeds pins the speed-proportional
// seeding: on a 4:1:1:1 cluster the master's first snapshot already
// reports a skewed share vector (before any throughput was observed).
// skewedGroupCluster builds the 4:1 test platform: machine 0 hosts the
// master, machines 1-3 the TSWs at speeds 4/1/1, and machines 4-6 each
// TSW's single CLW on a machine of the same speed — whole groups are
// genuinely fast or slow.
func skewedGroupCluster() cluster.Cluster {
	speeds := []float64{1, 4, 1, 1, 4, 1, 1}
	ms := make([]cluster.Machine, len(speeds))
	for i, s := range speeds {
		ms[i] = cluster.Machine{Name: fmt.Sprintf("g%d", i), Speed: s}
	}
	base := cluster.Homogeneous(1, 1)
	return cluster.Cluster{Machines: ms, SendLatency: base.SendLatency, PerItem: base.PerItem}
}

func TestAdaptiveSeedsFromMachineSpeeds(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 3, 1
	// Trial-work-dominated rounds: modeled message latency is speed
	// independent, so tiny budgets would compress the measured ratios.
	cfg.Trials = 48
	cfg.Adaptive = true
	var first []float64
	cfg.Progress = func(s Snapshot) {
		if first == nil {
			first = append([]float64(nil), s.Shares...)
		}
	}
	if _, err := Run(nl, skewedGroupCluster(), cfg, Virtual); err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("first shares = %v", first)
	}
	if first[0] < first[1]*2 {
		t.Errorf("4x machine seeded share %v not clearly above 1x share %v", first[0], first[1])
	}
}

// TestAdaptiveFullSyncKeepsSpeedSkew pins the master-level throughput
// signal under full synchronization: every TSW completes identical
// per-round work there, so only the per-round completion latency
// discriminates — the speed-seeded skew must survive the run instead
// of decaying toward an equal split.
func TestAdaptiveFullSyncKeepsSpeedSkew(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 3, 1
	cfg.GlobalIters, cfg.LocalIters = 6, 15
	cfg.Trials = 48 // work-dominated rounds (see TestAdaptiveSeedsFromMachineSpeeds)
	cfg.HalfSync = false
	cfg.Adaptive = true
	var last []float64
	cfg.Progress = func(s Snapshot) { last = append(last[:0], s.Shares...) }
	if _, err := Run(nl, skewedGroupCluster(), cfg, Virtual); err != nil {
		t.Fatal(err)
	}
	if len(last) != 3 {
		t.Fatalf("final shares = %v", last)
	}
	if last[0] < last[1]*2 || last[0] < last[2]*2 {
		t.Errorf("full-sync run decayed the 4x TSW's share: final shares %v", last)
	}
}
