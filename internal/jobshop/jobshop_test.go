package jobshop

import (
	"math"
	"testing"

	"pts/internal/rng"
	"pts/internal/schedinst"
	"pts/internal/tabu"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, nil); err == nil {
		t.Error("empty routing accepted")
	}
	if _, err := New("x", [][]int{{0, 1}}, [][]int{{1}}); err == nil {
		t.Error("ragged durations accepted")
	}
	if _, err := New("x", [][]int{{0, 2}}, [][]int{{1, 1}}); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if _, err := New("x", [][]int{{0, 0}}, [][]int{{1, 1}}); err == nil {
		t.Error("repeated machine accepted")
	}
	if _, err := New("x", [][]int{{0, 1}}, [][]int{{1, -1}}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := New("x", [][]int{{0, 1}, {1, 0}}, [][]int{{1, 2}, {3, 4}}); err != nil {
		t.Errorf("valid routing rejected: %v", err)
	}
}

// jobSeq projects a token permutation to its decoded job dispatch
// sequence, the MakespanSeq oracle's input.
func jobSeq(s *State) []int32 {
	out := make([]int32, len(s.perm))
	for i, tok := range s.perm {
		out[i] = tok / s.m
	}
	return out
}

// TestDecodeMatchesOracle drives the state through random swaps and
// requires the incremental cost to match the from-scratch dispatch
// oracle at every step.
func TestDecodeMatchesOracle(t *testing.T) {
	ins := Random(6, 4, 7)
	s := NewState(ins, 3)
	r := rng.New(9)
	size := int(s.Size())
	for i := 0; i < 1000; i++ {
		a := int32(r.Intn(size))
		b := int32(r.Intn(size))
		predicted := s.DeltaSwap(a, b)
		before := s.Cost()
		s.ApplySwap(a, b)
		want, err := MakespanSeq(ins, jobSeq(s))
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan() != want {
			t.Fatalf("step %d: state makespan %d != oracle %d", i, s.Makespan(), want)
		}
		if got := s.Cost() - before; got != predicted {
			t.Fatalf("step %d: delta %v != predicted %v", i, got, predicted)
		}
	}
}

// TestSameJobSwapNeutral pins the encoding property the zero-delta
// shortcut relies on: exchanging two tokens of the same job never
// changes the decoded schedule.
func TestSameJobSwapNeutral(t *testing.T) {
	ins := Random(5, 3, 2)
	s := NewState(ins, 4)
	r := rng.New(6)
	size := int(s.Size())
	checked := 0
	for i := 0; i < 5000 && checked < 200; i++ {
		a := int32(r.Intn(size))
		b := int32(r.Intn(size))
		if a == b || s.perm[a]/s.m != s.perm[b]/s.m {
			continue
		}
		checked++
		if d := s.DeltaSwap(a, b); d != 0 {
			t.Fatalf("same-job swap (%d,%d) reports delta %v", a, b, d)
		}
		before := s.Makespan()
		s.ApplySwap(a, b)
		want, err := MakespanSeq(ins, jobSeq(s))
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan() != before || want != before {
			t.Fatalf("same-job swap changed makespan %d -> %d (oracle %d)", before, s.Makespan(), want)
		}
	}
	if checked == 0 {
		t.Fatal("fuzz never found a same-job pair")
	}
}

// TestDeltaSwapBatchMatchesScalar fuzzes the batched recompute kernel
// against per-candidate DeltaSwap bit-for-bit, across many states,
// batch sizes and degenerate candidates.
func TestDeltaSwapBatchMatchesScalar(t *testing.T) {
	ins := Random(6, 5, 6)
	s := NewState(ins, 7)
	r := rng.New(11)
	size := int(s.Size())
	const maxBatch = 48
	cands := make([]tabu.SwapCand, 0, maxBatch)
	out := make([]float64, maxBatch)
	for batch := 0; batch < 600; batch++ {
		n := 1 + r.Intn(maxBatch)
		cands = cands[:0]
		for i := 0; i < n; i++ {
			cands = append(cands, tabu.SwapCand{
				A: int32(r.Intn(size)),
				B: int32(r.Intn(size)), // a == b allowed
			})
		}
		s.DeltaSwapBatch(cands, out[:n])
		for i, c := range cands {
			want := s.DeltaSwap(c.A, c.B)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("batch %d cand %d (%d,%d): batch %v, scalar %v",
					batch, i, c.A, c.B, out[i], want)
			}
		}
		s.ApplySwap(int32(r.Intn(size)), int32(r.Intn(size)))
	}
}

func TestApplySwapInvolution(t *testing.T) {
	s := NewState(Random(4, 3, 2), 5)
	before := s.Snapshot()
	costBefore := s.Cost()
	s.ApplySwap(2, 7)
	s.ApplySwap(2, 7)
	after := s.Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("double swap changed permutation")
		}
	}
	if s.Cost() != costBefore {
		t.Fatalf("double swap changed cost: %v vs %v", s.Cost(), costBefore)
	}
}

func TestRestoreValidation(t *testing.T) {
	s := NewState(Random(2, 2, 4), 2)
	if err := s.Restore([]int32{0, 1}); err == nil {
		t.Error("short snapshot accepted")
	}
	if err := s.Restore([]int32{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range snapshot accepted")
	}
	if err := s.Restore([]int32{0, 1, 1, 2}); err == nil {
		t.Error("duplicate snapshot accepted")
	}
	good := s.Snapshot()
	if err := s.Restore(good); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestBruteForceBounds pins the oracle relationships on tiny random
// instances: lower bound <= optimum <= every random dispatch.
func TestBruteForceBounds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ins := Random(4, 3, seed)
		opt := BruteForceOptimum(ins)
		if lb := LowerBound(ins); lb > opt {
			t.Fatalf("seed %d: lower bound %d above brute-force optimum %d", seed, lb, opt)
		}
		for trial := uint64(0); trial < 10; trial++ {
			if s := NewState(ins, trial); s.Makespan() < opt {
				t.Fatalf("seed %d: random dispatch %d beats brute-force optimum %d", seed, s.Makespan(), opt)
			}
		}
	}
}

// TestEmbeddedInstanceIntegrity cross-checks the embedded OR-Library
// instances against their published optima: random schedules must never
// beat them, and the load lower bound must not exceed them. la01's
// optimum sits exactly on the machine-load bound, which pins that
// instance's data especially tightly.
func TestEmbeddedInstanceIntegrity(t *testing.T) {
	for _, tc := range []struct{ name string }{{"ft06"}, {"ft10"}, {"la01"}} {
		ins, err := schedinst.JobShopByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if ins.Optimum == 0 {
			t.Fatalf("%s: missing published optimum", tc.name)
		}
		if lb := LowerBound(ins); lb > ins.Optimum {
			t.Fatalf("%s: load bound %d above published optimum %d (instance data drifted?)", tc.name, lb, ins.Optimum)
		}
		for seed := uint64(0); seed < 30; seed++ {
			if s := NewState(ins, seed); s.Makespan() < ins.Optimum {
				t.Fatalf("%s: random dispatch %d beats published optimum %d", tc.name, s.Makespan(), ins.Optimum)
			}
		}
	}
	la01, err := schedinst.JobShopByName("la01")
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(la01); lb != la01.Optimum {
		t.Fatalf("la01 load bound %d != published optimum %d", lb, la01.Optimum)
	}
}

// TestDeltaSwapBatchAllocFree asserts the batched path allocates
// nothing per call — the same 0 allocs/trial contract the other
// workloads' kernels are held to in CI.
func TestDeltaSwapBatchAllocFree(t *testing.T) {
	ins := Random(10, 6, 1)
	s := NewState(ins, 2)
	r := rng.New(3)
	size := int(s.Size())
	cands := make([]tabu.SwapCand, 64)
	out := make([]float64, 64)
	for i := range cands {
		cands[i] = tabu.SwapCand{A: int32(r.Intn(size)), B: int32(r.Intn(size))}
	}
	s.DeltaSwapBatch(cands, out)
	if n := testing.AllocsPerRun(100, func() {
		s.DeltaSwapBatch(cands, out)
	}); n != 0 {
		t.Fatalf("DeltaSwapBatch allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		s.ApplySwap(cands[0].A, cands[0].B)
	}); n != 0 {
		t.Fatalf("ApplySwap allocates %.1f per call, want 0", n)
	}
}

func BenchmarkDeltaSwapBatch(b *testing.B) {
	ins := Random(10, 10, 1)
	s := NewState(ins, 2)
	r := rng.New(3)
	size := int(s.Size())
	cands := make([]tabu.SwapCand, 64)
	for i := range cands {
		cands[i] = tabu.SwapCand{A: int32(r.Intn(size)), B: int32(r.Intn(size))}
	}
	out := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DeltaSwapBatch(cands, out)
	}
}
