package cost

import (
	"fmt"
	"sync"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/tabu"
)

// PlacementProblem adapts VLSI standard-cell placement to the parallel
// engine's problem boundary (pts/internal/core.Problem): states are
// fuzzy-cost evaluators over a shared slot grid, snapshots are slot
// permutations.
//
// The fuzzy goals every state scores against are derived once per run,
// from the initial solution Initial produces; all states of the same
// run therefore report comparable costs, exactly as the paper's master
// hands every TSW the same frame of reference. A PlacementProblem value
// supports one run at a time: a second Initial rebases the goals.
type PlacementProblem struct {
	nl   *netlist.Netlist
	util float64
	cfg  Config

	mu       sync.Mutex
	goals    Goals
	hasGoals bool
}

// NewPlacementProblem builds the placement problem over circuit nl with
// the given slot-grid utilization and cost configuration.
func NewPlacementProblem(nl *netlist.Netlist, util float64, cfg Config) *PlacementProblem {
	return &PlacementProblem{nl: nl, util: util, cfg: cfg}
}

// Name returns the circuit name.
func (p *PlacementProblem) Name() string { return p.nl.Name }

// Netlist returns the underlying circuit.
func (p *PlacementProblem) Netlist() *netlist.Netlist { return p.nl }

// Size returns the number of cells.
func (p *PlacementProblem) Size() int32 { return int32(p.nl.NumCells()) }

// layout builds the slot grid every state of this problem uses; all
// states must agree on it for permutations to be interchangeable.
func (p *PlacementProblem) layout() *placement.Placement {
	pl, err := placement.New(p.nl, placement.AutoLayout(p.nl, p.util))
	if err != nil {
		// AutoLayout always allocates enough slots; a failure here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("cost: layout: %v", err))
	}
	return pl
}

// Initial derives the run's shared initial solution from seed and
// rebases the fuzzy goals on it. The derivation labels match the
// original core implementation so historical results stay reproducible.
func (p *PlacementProblem) Initial(seed uint64) (tabu.Problem, error) {
	pl := p.layout()
	pl.Randomize(rng.New(rng.Derive(seed, "core.initial", p.nl.Name)))
	ev, err := NewEvaluator(pl, p.cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.goals = ev.GoalSet()
	p.hasGoals = true
	p.mu.Unlock()
	return Problem{Ev: ev}, nil
}

// goalSet returns the run goals set by Initial.
func (p *PlacementProblem) goalSet() (Goals, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasGoals {
		return Goals{}, fmt.Errorf("cost: placement problem used before Initial")
	}
	return p.goals, nil
}

// NewState builds an independent evaluator positioned at snap, scoring
// against the run goals derived by Initial.
func (p *PlacementProblem) NewState(snap []int32) (tabu.Problem, error) {
	goals, err := p.goalSet()
	if err != nil {
		return nil, err
	}
	pl := p.layout()
	if err := pl.Import(snap); err != nil {
		return nil, err
	}
	ev, err := NewEvaluatorWithGoals(pl, p.cfg.Timing, goals)
	if err != nil {
		return nil, err
	}
	return Problem{Ev: ev}, nil
}

// Placed rebuilds the slot grid with the permutation perm imported —
// the layout a result permutation denotes.
func (p *PlacementProblem) Placed(perm []int32) (*placement.Placement, error) {
	pl := p.layout()
	if err := pl.Import(perm); err != nil {
		return nil, err
	}
	return pl, nil
}

// Score rescores a permutation exactly (fresh full timing analysis)
// against the run goals, returning the objective values and the
// critical path delay.
func (p *PlacementProblem) Score(perm []int32) (Objectives, float64, error) {
	goals, err := p.goalSet()
	if err != nil {
		return Objectives{}, 0, err
	}
	pl, err := p.Placed(perm)
	if err != nil {
		return Objectives{}, 0, err
	}
	ev, err := NewEvaluatorWithGoals(pl, p.cfg.Timing, goals)
	if err != nil {
		return Objectives{}, 0, err
	}
	return ev.Objectives(), ev.CriticalPath(), nil
}
