package tabu_test

import (
	"math"
	"testing"

	"pts/internal/rng"
	"pts/internal/tabu"
)

// Equivalence oracles for the batched hot path: BuildCompoundBatch and
// SelectAdmissibleBatch must be bit-for-bit indistinguishable from their
// scalar reference implementations — same moves, same deltas, same
// random-stream consumption, same verdicts.

// buildEquiv runs the scalar and batched builders on independent but
// identically seeded problem/RNG pairs and asserts they are
// indistinguishable, including in how much of the random stream they
// consumed.
func buildEquiv(t *testing.T, mk func() tabu.Problem, seed uint64, p tabu.CompoundParams, step func(calls *int) func() bool) {
	t.Helper()
	p1, p2 := mk(), mk()
	r1, r2 := rng.New(seed), rng.New(seed)
	var sc tabu.BatchScratch
	var c1, c2 int
	var s1, s2 func() bool
	if step != nil {
		s1, s2 = step(&c1), step(&c2)
	}
	m1 := tabu.BuildCompound(p1, r1, p, s1)
	m2 := tabu.BuildCompoundBatch(p2, r2, p, &sc, s2)
	if len(m1.Swaps) != len(m2.Swaps) {
		t.Fatalf("params %+v: scalar built %d swaps, batch %d", p, len(m1.Swaps), len(m2.Swaps))
	}
	for i := range m1.Swaps {
		if m1.Swaps[i] != m2.Swaps[i] {
			t.Fatalf("params %+v: swap %d differs: %v vs %v", p, i, m1.Swaps[i], m2.Swaps[i])
		}
	}
	if math.Float64bits(m1.Delta) != math.Float64bits(m2.Delta) {
		t.Fatalf("params %+v: delta %v vs %v (bit mismatch)", p, m1.Delta, m2.Delta)
	}
	if math.Float64bits(p1.Cost()) != math.Float64bits(p2.Cost()) {
		t.Fatalf("params %+v: post-move cost %v vs %v", p, p1.Cost(), p2.Cost())
	}
	if c1 != c2 {
		t.Fatalf("params %+v: step callback ran %d vs %d times", p, c1, c2)
	}
	// Same stream position: the builders must have drawn identically.
	if a, b := r1.Int63(), r2.Int63(); a != b {
		t.Fatalf("params %+v: random streams diverged (%d vs %d)", p, a, b)
	}
}

func TestBuildCompoundBatchMatchesScalar(t *testing.T) {
	domains := []struct {
		name string
		mk   func() tabu.Problem
	}{
		{"qap", func() tabu.Problem { return qapProblem(t, 30, 17) }},
		{"placement", func() tabu.Problem { return placementProblem(t, 60, 17) }},
	}
	params := []tabu.CompoundParams{
		{Trials: 1, Depth: 1},
		{Trials: 8, Depth: 3},                            // engine defaults: below the sort threshold
		{Trials: 40, Depth: 5},                           // above batchSortMin: sorted visit order
		{Trials: 25, Depth: 2, RangeLo: 5, RangeHi: 12},  // domain-decomposed range
		{Trials: 13, Depth: 4, RangeLo: 20, RangeHi: 21}, // single-cell range: many a==b degenerates
	}
	for _, dom := range domains {
		t.Run(dom.name, func(t *testing.T) {
			for _, p := range params {
				for seed := uint64(0); seed < 8; seed++ {
					buildEquiv(t, dom.mk, 100+seed, p, nil)
					// And with an interrupting step callback.
					cut := int(seed%3) + 1
					buildEquiv(t, dom.mk, 200+seed, p, func(calls *int) func() bool {
						return func() bool { *calls++; return *calls >= cut }
					})
				}
			}
		})
	}
}

// randomMoves builds a candidate slice with empties, tabu-listed and
// fresh moves, deterministic in seed.
func randomMoves(seed uint64, n int, list *tabu.List, iter int64) []tabu.CompoundMove {
	r := rng.New(seed)
	cands := make([]tabu.CompoundMove, n)
	for i := range cands {
		if r.Intn(6) == 0 {
			continue // empty candidate (failed CLW)
		}
		depth := 1 + r.Intn(3)
		m := tabu.CompoundMove{Swaps: make([]tabu.Swap, depth)}
		for d := range m.Swaps {
			a, b := int32(r.Intn(50)), int32(r.Intn(50))
			m.Swaps[d] = tabu.Swap{A: a, B: b}
			if r.Intn(2) == 0 { // half the attributes go tabu
				list.Add(tabu.Attr(a, b), iter+1+int64(r.Intn(9)))
			}
		}
		m.Delta = r.NormFloat64()
		cands[i] = m
	}
	return cands
}

func TestSelectAdmissibleBatchMatchesScalar(t *testing.T) {
	var sc tabu.SelectScratch
	for seed := uint64(0); seed < 400; seed++ {
		list := tabu.NewList()
		iter := int64(10)
		n := 1 + int(seed%24) // crosses the scalar's 16-entry stack buffer
		cands := randomMoves(seed, n, list, iter)
		r := rng.New(seed + 9000)
		curCost := r.Float64()
		bestCost := curCost - r.Float64() // sometimes reachable by aspiration
		v1 := tabu.SelectAdmissible(cands, curCost, bestCost, list, iter)
		v2 := tabu.SelectAdmissibleBatch(cands, curCost, bestCost, list, iter, &sc)
		if v1 != v2 {
			t.Fatalf("seed %d (n=%d): scalar verdict %+v, batch %+v", seed, n, v1, v2)
		}
	}
}

func TestSelectAdmissibleBatchAllEmpty(t *testing.T) {
	var sc tabu.SelectScratch
	cands := make([]tabu.CompoundMove, 4)
	v := tabu.SelectAdmissibleBatch(cands, 1, 0.5, tabu.NewList(), 3, &sc)
	if v.Index != -1 {
		t.Fatalf("verdict on all-empty candidates: %+v", v)
	}
}

// TestEvalDeltaBatchScalarFallback exercises the evaluator-boundary
// fallback for problems without a batch kernel.
type scalarOnly struct{ tabu.Problem }

func TestEvalDeltaBatchScalarFallback(t *testing.T) {
	prob := scalarOnly{qapProblem(t, 20, 3)}
	cands := []tabu.SwapCand{{A: 1, B: 2}, {A: 3, B: 3}, {A: 0, B: 19}}
	out := make([]float64, len(cands))
	tabu.EvalDeltaBatch(prob, cands, out)
	for i, c := range cands {
		want := prob.DeltaSwap(c.A, c.B)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("cand %d: fallback %v, scalar %v", i, out[i], want)
		}
	}
}
