package cost

import (
	"math"
	"testing"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
)

func newSparseEval(t *testing.T, cells int, seed uint64) *Evaluator {
	t.Helper()
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "mv", Cells: cells, Seed: seed})
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.7)) // spare slots
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rng.New(seed + 5))
	e, err := NewEvaluator(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMoveDeltaMatchesApply(t *testing.T) {
	e := newSparseEval(t, 80, 1)
	r := rng.New(2)
	p := e.Placement()
	for i := 0; i < 200; i++ {
		c := netlist.CellID(r.Intn(80))
		slot := p.RandomEmptySlot(r)
		to := p.Layout().SlotPos(slot)
		predicted := e.MoveDelta(c, to)
		before := e.Cost()
		if err := e.ApplyMove(c, to); err != nil {
			t.Fatal(err)
		}
		if got := e.Cost() - before; math.Abs(got-predicted) > 1e-9 {
			t.Fatalf("step %d: delta %v != predicted %v", i, got, predicted)
		}
	}
	// Maintained objectives stay exact after mixed mutations.
	wl := e.Objectives().Wirelength
	e.Refresh()
	if math.Abs(e.Objectives().Wirelength-wl) > 1e-6 {
		t.Fatalf("wirelength drifted under moves: %v vs %v", wl, e.Objectives().Wirelength)
	}
}

func TestApplyMoveRejectsOccupied(t *testing.T) {
	e := newSparseEval(t, 40, 3)
	p := e.Placement()
	occupied := p.PosOf(7)
	if err := e.ApplyMove(3, occupied); err == nil {
		t.Fatal("move onto occupied slot accepted")
	}
}

func TestMixedMoveSwapConsistency(t *testing.T) {
	e := newSparseEval(t, 60, 4)
	r := rng.New(9)
	p := e.Placement()
	for i := 0; i < 300; i++ {
		if r.Intn(2) == 0 {
			e.ApplySwap(netlist.CellID(r.Intn(60)), netlist.CellID(r.Intn(60)))
		} else {
			c := netlist.CellID(r.Intn(60))
			if err := e.ApplyMove(c, p.Layout().SlotPos(p.RandomEmptySlot(r))); err != nil {
				t.Fatal(err)
			}
		}
	}
	wlBefore := e.Objectives().Wirelength
	areaBefore := e.Objectives().Area
	e.Refresh()
	if math.Abs(e.Objectives().Wirelength-wlBefore) > 1e-6 {
		t.Fatal("wirelength bookkeeping diverged under mixed moves")
	}
	if e.Objectives().Area != areaBefore {
		t.Fatal("area bookkeeping diverged under mixed moves")
	}
}
