package tabu

// List is the short-term memory: recently used move attributes and the
// iteration until which they stay tabu. The zero value is not usable;
// call NewList.
type List struct {
	expiry map[Attribute]int64
	// pruneAt bounds the map's growth: once the map exceeds this size,
	// expired entries are swept during the next Add.
	pruneAt int
}

// NewList creates an empty tabu list.
func NewList() *List {
	return &List{expiry: make(map[Attribute]int64), pruneAt: 1024}
}

// Add marks the attribute tabu until iteration `until` (exclusive): it is
// tabu for iterations iter < until. Re-adding extends but never shortens
// a tenure.
func (l *List) Add(at Attribute, until int64) {
	if cur, ok := l.expiry[at]; ok && cur >= until {
		return
	}
	if len(l.expiry) > l.pruneAt {
		l.prune(until)
	}
	l.expiry[at] = until
}

// prune drops entries that expired before iteration now.
func (l *List) prune(now int64) {
	for at, e := range l.expiry {
		if e <= now {
			delete(l.expiry, at)
		}
	}
	if len(l.expiry) > l.pruneAt/2 {
		l.pruneAt *= 2
	}
}

// IsTabu reports whether the attribute is tabu at iteration iter.
func (l *List) IsTabu(at Attribute, iter int64) bool {
	e, ok := l.expiry[at]
	return ok && iter < e
}

// AnyTabu reports whether any attribute of the list is tabu at iter; the
// paper's TSW rejects a compound move if its move (any of its swaps)
// is tabu.
func (l *List) AnyTabu(attrs []Attribute, iter int64) bool {
	for _, at := range attrs {
		if l.IsTabu(at, iter) {
			return true
		}
	}
	return false
}

// AnyTabuSwaps is AnyTabu over a swap sequence, deriving each attribute
// in place so the per-iteration selection path allocates nothing.
func (l *List) AnyTabuSwaps(swaps []Swap, iter int64) bool {
	for _, s := range swaps {
		if l.IsTabu(s.Attribute(), iter) {
			return true
		}
	}
	return false
}

// RemainingTenure returns the number of iterations (at iter) until every
// attribute in attrs expires; 0 when nothing is tabu. Used as the
// least-tabu fallback ordering when no candidate is admissible.
func (l *List) RemainingTenure(attrs []Attribute, iter int64) int64 {
	var max int64
	for _, at := range attrs {
		if e, ok := l.expiry[at]; ok && e > iter {
			if r := e - iter; r > max {
				max = r
			}
		}
	}
	return max
}

// RemainingTenureSwaps is RemainingTenure over a swap sequence, deriving
// each attribute in place.
func (l *List) RemainingTenureSwaps(swaps []Swap, iter int64) int64 {
	var max int64
	for _, s := range swaps {
		if e, ok := l.expiry[s.Attribute()]; ok && e > iter {
			if r := e - iter; r > max {
				max = r
			}
		}
	}
	return max
}

// TabuStateSwaps reports, in one pass over a swap sequence, whether any
// swap's attribute is tabu at iter and the iterations until every one
// of them expires (0 when nothing is tabu) — AnyTabuSwaps and
// RemainingTenureSwaps fused, so the batched selection probes the
// short-term memory once per candidate.
func (l *List) TabuStateSwaps(swaps []Swap, iter int64) (tabu bool, remaining int64) {
	for _, s := range swaps {
		if e, ok := l.expiry[s.Attribute()]; ok && e > iter {
			tabu = true
			if r := e - iter; r > remaining {
				remaining = r
			}
		}
	}
	return tabu, remaining
}

// Len returns the number of stored attributes (including expired ones
// not yet pruned).
func (l *List) Len() int { return len(l.expiry) }

// Entry is one serialized tabu-list element: an attribute and its
// remaining tenure relative to the exporter's iteration counter.
// The relative form lets workers with different local iteration counters
// exchange lists, as the paper's master and TSWs do.
type Entry struct {
	At        Attribute
	Remaining int64
}

// Export serializes the attributes still tabu at iteration now.
func (l *List) Export(now int64) []Entry {
	out := make([]Entry, 0, len(l.expiry))
	for at, e := range l.expiry {
		if e > now {
			out = append(out, Entry{At: at, Remaining: e - now})
		}
	}
	return out
}

// Import merges exported entries into the list relative to the local
// iteration counter now.
func (l *List) Import(entries []Entry, now int64) {
	for _, en := range entries {
		l.Add(en.At, now+en.Remaining)
	}
}

// Reset clears the list.
func (l *List) Reset() {
	l.expiry = make(map[Attribute]int64)
}
