package sevo

import (
	"math"
	"testing"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
)

func newEval(t testing.TB, cells int, seed uint64) *cost.Evaluator {
	t.Helper()
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "se", Cells: cells, Seed: seed})
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rng.New(seed + 1))
	ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestMinimizeImproves(t *testing.T) {
	ev := newEval(t, 100, 1)
	start := ev.Cost()
	res, err := Minimize(ev, Config{Iterations: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= start {
		t.Fatalf("SimE did not improve: %v -> %v", start, res.BestCost)
	}
	if res.Ripups == 0 || res.Moves == 0 {
		t.Fatalf("no evolution happened: %+v", res)
	}
	if res.Iterations != 40 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.Trace.Len() != 41 {
		t.Errorf("trace points = %d, want 41", res.Trace.Len())
	}
}

func TestBestPermEvaluates(t *testing.T) {
	ev := newEval(t, 80, 3)
	res, err := Minimize(ev, Config{Iterations: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.ImportPerm(res.BestPerm); err != nil {
		t.Fatal(err)
	}
	// ImportPerm refreshes criticalities; allow the timing-weight step.
	if math.Abs(ev.Cost()-res.BestCost) > 0.05 {
		t.Fatalf("best perm scores %v, recorded %v", ev.Cost(), res.BestCost)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		ev := newEval(t, 60, 5)
		res, err := Minimize(ev, Config{Iterations: 15, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestCost
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}

func TestBiasReducesRipups(t *testing.T) {
	low := func(bias float64) int64 {
		ev := newEval(t, 80, 7)
		res, err := Minimize(ev, Config{Iterations: 10, Bias: bias, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ripups
	}
	if !(low(0.6) < low(-0.3)) {
		t.Fatal("higher bias should select fewer cells")
	}
}

func TestValidation(t *testing.T) {
	ev := newEval(t, 30, 9)
	if _, err := Minimize(ev, Config{Bias: 2}); err == nil {
		t.Fatal("bias out of range accepted")
	}
}

func TestTraceMonotone(t *testing.T) {
	ev := newEval(t, 70, 10)
	res, err := Minimize(ev, Config{Iterations: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Trace.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost > pts[i-1].Cost+1e-12 {
			t.Fatal("best-cost trace increased")
		}
	}
}

func BenchmarkSimEIteration(b *testing.B) {
	ev := newEval(b, 395, 1)
	cfg := Config{Iterations: 1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Minimize(ev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
