package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"pts/internal/cluster"
	"pts/internal/pvm"
	"pts/internal/pvm/nettrans"
	"pts/internal/qap"
	"pts/internal/rng"
	"pts/internal/tabu"
)

// stubEnv is a minimal pvm.Env that records sends, for driving the
// clwSet recovery state machine directly (task loss cannot happen on
// the in-process transports, so the lifecycle is unit-tested here and
// integration-tested over nettrans below).
type stubEnv struct {
	sent    []stubSend
	watched []pvm.TaskID
}

type stubSend struct {
	To   pvm.TaskID
	Tag  pvm.Tag
	Data any
}

func (s *stubEnv) Self() pvm.TaskID         { return 1 }
func (s *stubEnv) Name() string             { return "stub" }
func (s *stubEnv) MachineIndex() int        { return 0 }
func (s *stubEnv) Now() float64             { return 0 }
func (s *stubEnv) Rand() *rand.Rand         { return rng.New(1) }
func (s *stubEnv) Cancelled() bool          { return false }
func (s *stubEnv) Work(seconds float64)     {}
func (s *stubEnv) NotifyExit(id pvm.TaskID) { s.watched = append(s.watched, id) }
func (s *stubEnv) Send(to pvm.TaskID, tag pvm.Tag, data any) {
	s.sent = append(s.sent, stubSend{To: to, Tag: tag, Data: data})
}
func (s *stubEnv) Recv(tags ...pvm.Tag) pvm.Message            { panic("stub: Recv") }
func (s *stubEnv) TryRecv(tags ...pvm.Tag) (pvm.Message, bool) { return pvm.Message{}, false }
func (s *stubEnv) Spawn(name string, machine int, fn pvm.TaskFunc) pvm.TaskID {
	panic("stub: Spawn")
}
func (s *stubEnv) SpawnSpec(name string, machine int, spec pvm.Spec) pvm.TaskID {
	panic("stub: SpawnSpec")
}

func (s *stubEnv) sends(tag pvm.Tag) []stubSend {
	var out []stubSend
	for _, m := range s.sent {
		if m.Tag == tag {
			out = append(out, m)
		}
	}
	return out
}

// stubCLWSet builds a live 3-worker set over [0, n) like newCLWSet
// would, without spawning anything.
func stubCLWSet(env pvm.Env, n int32, master pvm.TaskID) *clwSet {
	cfg := quickCfg()
	cfg.CLWs = 3
	cfg.Adaptive = true
	cs := &clwSet{
		cfg:     cfg,
		tune:    cfg.tuningFor(0),
		n:       n,
		widx:    0,
		master:  master,
		respawn: true,
		ids:     []pvm.TaskID{10, 11, 12},
		byID:    map[pvm.TaskID]int{10: 0, 11: 1, 12: 2},
		live:    []bool{true, true, true},
		alive:   3,
		pend:    make(map[int]pvm.TaskID),
	}
	cs.track = seededTracker(env, n, 3, func(int) int { return 0 })
	cs.rng = cs.track.Partition()
	return cs
}

// assertExactPartition checks that the live workers' ranges tile
// [0, n) exactly: no gap, no overlap, no duplicate element ownership.
func assertExactPartition(t *testing.T, cs *clwSet) {
	t.Helper()
	type rng struct {
		j      int
		lo, hi int32
	}
	var rs []rng
	for j := range cs.ids {
		if cs.live[j] && cs.rng[j][1] > cs.rng[j][0] {
			rs = append(rs, rng{j, cs.rng[j][0], cs.rng[j][1]})
		}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].lo < rs[b].lo })
	at := int32(0)
	for _, r := range rs {
		if r.lo != at {
			t.Fatalf("element ownership broken: worker %d starts at %d, want %d (ranges %v, live %v)",
				r.j, r.lo, at, cs.rng, cs.live)
		}
		at = r.hi
	}
	if at != cs.n {
		t.Fatalf("element ownership broken: live ranges end at %d, want %d (ranges %v, live %v)",
			at, cs.n, cs.rng, cs.live)
	}
}

// TestRespawnedCLWInheritsExactPartition is the recovery regression
// test: after a CLW loss, a replacement adoption and the barrier
// attachment, the live workers' element ranges must partition the
// space exactly — no element owned twice (which would double-count
// moves) and none orphaned.
func TestRespawnedCLWInheritsExactPartition(t *testing.T) {
	env := &stubEnv{}
	const master = pvm.TaskID(1)
	cs := stubCLWSet(env, 30, master)
	var ws WorkerStats
	assertExactPartition(t, cs)

	// CLW 1's host dies: written off, range folds at the next barrier,
	// and a replacement is requested from the master.
	cs.onExit(env, 11, &ws)
	if ws.WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", ws.WorkersLost)
	}
	req := env.sends(TagRespawn)
	if len(req) != 1 || req[0].To != master || req[0].Data.(respawnMsg).CLWIdx != 1 {
		t.Fatalf("respawn request = %+v, want one TagRespawn{CLWIdx:1} to the master", req)
	}
	// The fold: rebalance must adopt (membership changed) and the
	// survivors must again own the space exactly.
	if !cs.rebalance(env) {
		t.Fatal("rebalance after a loss was not adopted")
	}
	assertExactPartition(t, cs)
	if cs.alive != 2 {
		t.Fatalf("alive = %d, want 2", cs.alive)
	}

	// The master's ack parks the replacement; the next barrier attaches
	// it with a range carved back out of the survivors.
	cs.onAck(env, respawnAckMsg{CLWIdx: 1, ID: 42})
	if cs.pend[1] != 42 {
		t.Fatalf("pending = %v, want slot 1 -> 42", cs.pend)
	}
	newly := cs.revivePending()
	if len(newly) != 1 || newly[0] != 1 {
		t.Fatalf("revived = %v, want [1]", newly)
	}
	if !cs.rebalance(env) {
		t.Fatal("rebalance after a revival was not adopted")
	}
	perm := make([]int32, 30)
	cs.attach(env, newly, perm, nil)
	if cs.alive != 3 || !cs.live[1] || cs.ids[1] != 42 {
		t.Fatalf("replacement not attached: alive %d, live %v, ids %v", cs.alive, cs.live, cs.ids)
	}
	assertExactPartition(t, cs)

	// The replacement was seeded exactly once, with its adopted range
	// and a positive share-scaled trial budget.
	var seeded []initMsg
	for _, m := range env.sends(TagInit) {
		if m.To == 42 {
			seeded = append(seeded, m.Data.(initMsg))
		}
	}
	if len(seeded) != 1 {
		t.Fatalf("replacement seeded %d times, want 1", len(seeded))
	}
	if got := seeded[0]; got.RangeLo != cs.rng[1][0] || got.RangeHi != cs.rng[1][1] || got.Trials < 1 {
		t.Fatalf("replacement seeded with %+v, want range %v and a positive budget", got, cs.rng[1])
	}

	// A surplus ack for an already-live slot is retired unseeded.
	cs.onAck(env, respawnAckMsg{CLWIdx: 1, ID: 77})
	var stopped bool
	for _, m := range env.sends(TagStop) {
		if m.To == 77 {
			stopped = true
		}
	}
	if !stopped {
		t.Fatal("surplus replacement was not retired with TagStop")
	}
	if _, ok := cs.byID[77]; ok {
		t.Fatal("surplus replacement leaked into the id map")
	}
}

// TestCheckpointRoundTripAdoptsSurvivors pins the checkpoint format: a
// resumed TSW rebuilt from buildCheckpoint's output re-attaches live
// survivors (fresh TagInit + re-armed watch), re-adopts pending
// replacements, and re-requests respawns for dead slots — and the
// restored tabu/frequency memory matches the original.
func TestCheckpointRoundTripAdoptsSurvivors(t *testing.T) {
	env := &stubEnv{}
	const master = pvm.TaskID(1)
	cs := stubCLWSet(env, 30, master)
	var ws WorkerStats
	cs.onExit(env, 12, &ws)                         // slot 2 dead, respawn requested
	cs.onAck(env, respawnAckMsg{CLWIdx: 2, ID: 55}) // parked pending

	prob, err := (&qapTestProblem{ins: qap.Random(30, 5)}).Initial(7)
	if err != nil {
		t.Fatal(err)
	}
	list := tabu.NewList()
	list.Add(tabu.Attr(1, 2), 90)
	freq := tabu.NewFrequency(30)
	freq.BumpSwap(3, 4)
	var stats WorkerStats
	stats.LocalIters = 123
	ck := buildCheckpoint(0, prob, list, freq, rng.New(9), 80, stats, prob.Cost(), prob.Snapshot(), 5, 25, 4, 0, cs)

	if len(ck.CLWs) != 3 {
		t.Fatalf("checkpoint slots = %d, want 3", len(ck.CLWs))
	}
	if ck.CLWs[0].State != clwSlotLive || ck.CLWs[1].State != clwSlotLive {
		t.Fatalf("slots 0/1 not live in checkpoint: %+v", ck.CLWs)
	}
	if ck.CLWs[2].State != clwSlotPending || ck.CLWs[2].ID != 55 {
		t.Fatalf("slot 2 not pending 55 in checkpoint: %+v", ck.CLWs[2])
	}

	env2 := &stubEnv{}
	cfg := cs.cfg
	cs2 := adoptCLWSet(env2, cfg, cs.tune, &ck, master)
	if cs2.alive != 2 || !cs2.live[0] || !cs2.live[1] || cs2.live[2] {
		t.Fatalf("adopted liveness wrong: alive %d, live %v", cs2.alive, cs2.live)
	}
	if cs2.pend[2] != 55 {
		t.Fatalf("pending replacement not re-adopted: %v", cs2.pend)
	}
	// Survivors re-parented (TagInit) and re-watched; the pending one
	// re-watched only.
	inits := env2.sends(TagInit)
	if len(inits) != 2 {
		t.Fatalf("adoption sent %d TagInits, want 2 (one per survivor)", len(inits))
	}
	watched := map[pvm.TaskID]bool{}
	for _, id := range env2.watched {
		watched[id] = true
	}
	for _, id := range []pvm.TaskID{10, 11, 55} {
		if !watched[id] {
			t.Fatalf("task %d not re-watched after adoption (watched %v)", id, env2.watched)
		}
	}
	// Attach the pending replacement and re-check exact ownership. The
	// rebalance may legitimately decline here: the replacement inherits
	// the dead worker's never-folded range, which already tiles the
	// space exactly.
	newly := cs2.revivePending()
	cs2.rebalance(env2)
	cs2.attach(env2, newly, ck.Perm, nil)
	assertExactPartition(t, cs2)

	// Memory round-trip.
	list2 := tabu.NewList()
	list2.Import(ck.Tabu, ck.Iter)
	if !list2.IsTabu(tabu.Attr(1, 2), 85) {
		t.Error("tabu entry lost in the checkpoint round-trip")
	}
	freq2 := tabu.NewFrequency(30)
	freq2.Import(ck.Freq)
	if freq2.Count(3) != 1 || freq2.Count(4) != 1 || freq2.Total() != 2 {
		t.Error("frequency memory lost in the checkpoint round-trip")
	}
	if ck.Stats.LocalIters != 123 {
		t.Error("counters lost in the checkpoint round-trip")
	}
}

// TestRespawnRestoresParallelismOverNettrans is the end-to-end
// recovery gate at the engine level: an adaptive distributed run
// (loopback TCP, one master + three worker processes emulated as
// daemon goroutines) loses one CLW-hosting worker mid-run and must
// complete un-Interrupted over the full budget with the loss both
// counted and repaired: WorkersLost == WorkersRespawned == 1.
func TestRespawnRestoresParallelismOverNettrans(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	res := runKillWorkerScenario(t, 2, false)
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
	if res.Stats.WorkersRespawned != 1 {
		t.Errorf("WorkersRespawned = %d, want 1", res.Stats.WorkersRespawned)
	}
}

// TestFoldOnlyModeDoesNotRespawn pins WithRespawn(false): the PR-4
// behavior — the loss degrades the search (fold into survivors) and
// nothing is respawned.
func TestFoldOnlyModeDoesNotRespawn(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	res := runKillWorkerScenario(t, 2, true)
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
	if res.Stats.WorkersRespawned != 0 {
		t.Errorf("WorkersRespawned = %d, want 0 with respawn disabled", res.Stats.WorkersRespawned)
	}
}

// runKillWorkerScenario runs 1 TSW x 3 CLWs over a loopback nettrans
// cluster (master + 3 single-slot workers), kills the worker hosting
// one CLW once round killAt is reported, and returns the master's
// result. The run must complete un-Interrupted either way.
func runKillWorkerScenario(t *testing.T, killAt int, disableRespawn bool) *Result {
	t.Helper()
	ctx := context.Background()
	newProblem := func() Problem { return &qapTestProblem{ins: qap.Random(30, 11)} }

	master, addr := listenLoopback(t, 3)
	defer master.Close()

	// Join order fixes the slot ring: with 1 TSW x 3 CLWs over
	// (master + 3 workers), the TSW lands on worker 1 and CLWs on
	// workers 2, 3 and the master process — so killing the third
	// worker kills exactly one CLW.
	w1 := startWorkerDaemon(t, ctx, newProblem(), addr, "w1", 4)
	waitWorkers(t, master, 1)
	w2 := startWorkerDaemon(t, ctx, newProblem(), addr, "w2", 1)
	waitWorkers(t, master, 2)
	doomedCtx, killDoomed := context.WithCancel(ctx)
	defer killDoomed()
	w3 := startWorkerDaemon(t, doomedCtx, newProblem(), addr, "w3", 1)
	waitWorkers(t, master, 3)

	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 1, 3
	cfg.GlobalIters, cfg.LocalIters = 8, 15
	cfg.HalfSync = false
	cfg.Adaptive = true
	cfg.DisableRespawn = disableRespawn
	cfg.WorkScale = 2 // stretch rounds so the kill lands mid-run
	cfg.Transport = master
	killed := false
	cfg.Progress = func(s Snapshot) {
		if s.Round == killAt && !killed {
			killed = true
			killDoomed()
		}
	}

	res, err := RunProblem(ctx, newProblem(), clusterForNet(), cfg, Real)
	if err != nil {
		t.Fatalf("adaptive run with a killed worker: %v", err)
	}
	if res.Interrupted {
		t.Fatal("run reported Interrupted; recovery must keep it complete")
	}
	if res.Rounds != cfg.GlobalIters {
		t.Errorf("completed %d rounds, want the full %d", res.Rounds, cfg.GlobalIters)
	}
	for name, ch := range map[string]chan error{"w1": w1, "w2": w2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("worker %s never finished", name)
		}
	}
	select {
	case <-w3: // killed worker errors out; that is its expected outcome
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker never returned")
	}
	return res
}

// TestTSWLossResurrectsFromCheckpoint is the second recovery gate: the
// worker hosting the TSW itself is killed mid-run. The master must
// resurrect the TSW from its piggybacked checkpoint, re-attach the
// surviving CLWs, and still complete the full budget un-Interrupted.
func TestTSWLossResurrectsFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed loopback run")
	}
	ctx := context.Background()
	newProblem := func() Problem { return &qapTestProblem{ins: qap.Random(30, 11)} }

	master, addr := listenLoopback(t, 3)
	defer master.Close()

	// Worker 1 hosts the TSW (slot 1); killing it tests the
	// checkpoint-resurrection path with all three CLWs surviving.
	doomedCtx, killDoomed := context.WithCancel(ctx)
	defer killDoomed()
	w1 := startWorkerDaemon(t, doomedCtx, newProblem(), addr, "w1", 1)
	waitWorkers(t, master, 1)
	w2 := startWorkerDaemon(t, ctx, newProblem(), addr, "w2", 1)
	waitWorkers(t, master, 2)
	w3 := startWorkerDaemon(t, ctx, newProblem(), addr, "w3", 1)
	waitWorkers(t, master, 3)

	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 1, 3
	cfg.GlobalIters, cfg.LocalIters = 8, 15
	cfg.HalfSync = false
	cfg.Adaptive = true
	cfg.WorkScale = 2
	cfg.Transport = master
	killed := false
	cfg.Progress = func(s Snapshot) {
		if s.Round == 2 && !killed {
			killed = true
			killDoomed()
		}
	}

	res, err := RunProblem(ctx, newProblem(), clusterForNet(), cfg, Real)
	if err != nil {
		t.Fatalf("adaptive run with a killed TSW host: %v", err)
	}
	if res.Interrupted {
		t.Fatal("run reported Interrupted; the TSW must be resurrected from its checkpoint")
	}
	if res.Rounds != cfg.GlobalIters {
		t.Errorf("completed %d rounds, want the full %d", res.Rounds, cfg.GlobalIters)
	}
	if res.Stats.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1 (the TSW)", res.Stats.WorkersLost)
	}
	if res.Stats.WorkersRespawned < 1 {
		t.Errorf("WorkersRespawned = %d, want >= 1 (the resurrected TSW)", res.Stats.WorkersRespawned)
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("no improvement: %v -> %v", res.InitialCost, res.BestCost)
	}
	for name, ch := range map[string]chan error{"w2": w2, "w3": w3} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("worker %s never finished", name)
		}
	}
	select {
	case <-w1:
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker never returned")
	}
}

// --- loopback-cluster helpers -----------------------------------------

func listenLoopback(t *testing.T, workers int) (*nettrans.Master, string) {
	t.Helper()
	m, err := nettrans.Listen(nettrans.MasterConfig{Addr: "127.0.0.1:0", Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return m, m.Addr()
}

func startWorkerDaemon(t *testing.T, ctx context.Context, prob Problem, addr, name string, speed float64) chan error {
	t.Helper()
	ch := make(chan error, 1)
	go func() {
		ch <- ServeWorker(ctx, prob, WorkerOptions{
			Addr: addr, Name: name, Speed: speed, Jobs: 1,
		}, nil)
	}()
	return ch
}

func waitWorkers(t *testing.T, m *nettrans.Master, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(m.Nodes()) < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers joined", len(m.Nodes()), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func clusterForNet() cluster.Cluster { return cluster.Homogeneous(4, 1) }
