// Package schedinst parses the classic scheduling benchmark instance
// formats the flow-shop and job-shop workloads consume: Taillard's
// permutation flow shop files and the OR-Library job shop format. A
// small set of standard instances (ta001, ft06, ft10, la01) is embedded
// in the binary so the benchmark workloads need no external files.
//
// Both parsers are strict: truncated files, wrong counts, negative
// durations, out-of-range machine indices and trailing garbage are all
// rejected with errors, never panics — the instance data is external
// ground truth and a silently misparsed instance would invalidate every
// test built on it.
package schedinst

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// FlowShop is a permutation flow shop instance: Jobs jobs visit Machines
// machines in the same machine order 0..Machines-1, and a solution is
// one job sequence shared by all machines.
type FlowShop struct {
	// Name identifies the instance (file stem for embedded instances).
	Name string
	// Jobs and Machines are the instance dimensions.
	Jobs, Machines int
	// Proc[i][j] is the processing time of job j on machine i.
	Proc [][]int
	// Seed is the Taillard header's generator seed (0 when absent).
	Seed int64
	// Upper and Lower are the published upper and lower makespan bounds
	// from the Taillard header (0 when absent). For solved instances
	// Upper is the proven optimum.
	Upper, Lower int
}

// JobShop is a job shop instance: each job is an ordered chain of
// operations, one per machine, with per-operation machine and duration.
type JobShop struct {
	// Name identifies the instance (file stem for embedded instances).
	Name string
	// Jobs and Machines are the instance dimensions.
	Jobs, Machines int
	// Machine[j][o] is the machine of job j's o-th operation.
	Machine [][]int
	// Dur[j][o] is the duration of job j's o-th operation.
	Dur [][]int
	// Optimum is the published optimal makespan (0 = unknown).
	Optimum int
}

// maxDim bounds instance dimensions, so a corrupt header cannot demand
// a multi-gigabyte allocation before validation catches it.
const maxDim = 10000

// tokenizer streams whitespace-separated tokens line by line, skipping
// '#' comments, and remembers how many tokens it has delivered for
// error messages. Scanning whole lines (rather than words) lets the
// header parsers ask whether the current line carries more values.
type tokenizer struct {
	sc      *bufio.Scanner
	pending []string // remaining tokens of the current line
	pos     int
	count   int
}

func newTokenizer(r io.Reader) *tokenizer {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &tokenizer{sc: sc}
}

func (t *tokenizer) next() (string, bool) {
	for {
		if t.pending == nil || t.pos >= len(t.pending) {
			if !t.sc.Scan() {
				return "", false
			}
			line := t.sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			t.pending = strings.Fields(line)
			t.pos = 0
			continue
		}
		tok := t.pending[t.pos]
		t.pos++
		t.count++
		return tok, true
	}
}

func (t *tokenizer) err() error { return t.sc.Err() }

// lineHasMore reports whether the current line still holds unread
// tokens — how the parsers detect optional same-line header fields.
func (t *tokenizer) lineHasMore() bool {
	return t.pending != nil && t.pos < len(t.pending)
}

// Int returns the next token as an integer; what names it in errors.
func (t *tokenizer) Int(what string) (int, error) {
	tok, ok := t.next()
	if !ok {
		if err := t.err(); err != nil {
			return 0, fmt.Errorf("schedinst: reading %s: %w", what, err)
		}
		return 0, fmt.Errorf("schedinst: truncated file: missing %s (after %d values)", what, t.count)
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("schedinst: %s: %q is not an integer", what, tok)
	}
	return v, nil
}

// Done asserts the stream is exhausted (trailing garbage is an error).
func (t *tokenizer) Done() error {
	if tok, ok := t.next(); ok {
		return fmt.Errorf("schedinst: trailing data %q after a complete instance", tok)
	}
	return t.err()
}

// checkDims validates the shared header invariants.
func checkDims(jobs, machines int) error {
	if jobs < 1 || machines < 1 {
		return fmt.Errorf("schedinst: instance needs at least 1 job and 1 machine, got %dx%d", jobs, machines)
	}
	if jobs > maxDim || machines > maxDim {
		return fmt.Errorf("schedinst: instance %dx%d exceeds the %d dimension bound", jobs, machines, maxDim)
	}
	return nil
}

// checkTotal guards the workloads' int32 schedule arithmetic: the sum of
// all durations bounds every completion time.
func checkTotal(total int64) error {
	if total > math.MaxInt32 {
		return fmt.Errorf("schedinst: total processing time %d overflows the schedule arithmetic", total)
	}
	return nil
}

// ParseTaillard reads a Taillard-format permutation flow shop instance:
// a header line `jobs machines [seed upper lower]` followed by machines
// rows of jobs processing times (machine-major, as published). '#'
// starts a comment.
func ParseTaillard(name string, r io.Reader) (*FlowShop, error) {
	t := newTokenizer(r)
	jobs, err := t.Int("job count")
	if err != nil {
		return nil, err
	}
	machines, err := t.Int("machine count")
	if err != nil {
		return nil, err
	}
	if err := checkDims(jobs, machines); err != nil {
		return nil, err
	}
	ins := &FlowShop{Name: name, Jobs: jobs, Machines: machines}
	// The three bound fields are optional as a group: a bare `jobs
	// machines` header is accepted for hand-written instances. If the
	// header line carries 5 numbers, the rest are seed/upper/lower.
	if t.lineHasMore() {
		seed, err := t.Int("header seed")
		if err != nil {
			return nil, err
		}
		upper, err := t.Int("header upper bound")
		if err != nil {
			return nil, err
		}
		lower, err := t.Int("header lower bound")
		if err != nil {
			return nil, err
		}
		if upper < 0 || lower < 0 || (upper > 0 && lower > upper) {
			return nil, fmt.Errorf("schedinst: inconsistent bounds lower %d > upper %d", lower, upper)
		}
		ins.Seed, ins.Upper, ins.Lower = int64(seed), upper, lower
	}
	var total int64
	ins.Proc = make([][]int, machines)
	for i := 0; i < machines; i++ {
		row := make([]int, jobs)
		for j := 0; j < jobs; j++ {
			v, err := t.Int(fmt.Sprintf("processing time of job %d on machine %d", j, i))
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fmt.Errorf("schedinst: negative processing time %d (job %d, machine %d)", v, j, i)
			}
			row[j] = v
			total += int64(v)
		}
		ins.Proc[i] = row
	}
	if err := checkTotal(total); err != nil {
		return nil, err
	}
	if err := t.Done(); err != nil {
		return nil, err
	}
	return ins, nil
}

// ParseORLib reads an OR-Library job shop instance: a header line `jobs
// machines`, then jobs rows of machines (machine, duration) pairs in
// each job's operation order. Every job must visit every machine exactly
// once. '#' starts a comment; an optional third header value is the
// published optimal makespan.
func ParseORLib(name string, r io.Reader) (*JobShop, error) {
	t := newTokenizer(r)
	jobs, err := t.Int("job count")
	if err != nil {
		return nil, err
	}
	machines, err := t.Int("machine count")
	if err != nil {
		return nil, err
	}
	if err := checkDims(jobs, machines); err != nil {
		return nil, err
	}
	ins := &JobShop{Name: name, Jobs: jobs, Machines: machines}
	if t.lineHasMore() {
		opt, err := t.Int("header optimum")
		if err != nil {
			return nil, err
		}
		if opt < 0 {
			return nil, fmt.Errorf("schedinst: negative optimum %d", opt)
		}
		ins.Optimum = opt
	}
	var total int64
	ins.Machine = make([][]int, jobs)
	ins.Dur = make([][]int, jobs)
	seen := make([]int, machines) // last job to visit each machine, offset by 1
	for j := 0; j < jobs; j++ {
		mrow := make([]int, machines)
		drow := make([]int, machines)
		for o := 0; o < machines; o++ {
			m, err := t.Int(fmt.Sprintf("machine of job %d op %d", j, o))
			if err != nil {
				return nil, err
			}
			if m < 0 || m >= machines {
				return nil, fmt.Errorf("schedinst: job %d op %d names machine %d, want [0,%d)", j, o, m, machines)
			}
			if seen[m] == j+1 {
				return nil, fmt.Errorf("schedinst: job %d visits machine %d twice", j, m)
			}
			seen[m] = j + 1
			d, err := t.Int(fmt.Sprintf("duration of job %d op %d", j, o))
			if err != nil {
				return nil, err
			}
			if d < 0 {
				return nil, fmt.Errorf("schedinst: negative duration %d (job %d, op %d)", d, j, o)
			}
			mrow[o], drow[o] = m, d
			total += int64(d)
		}
		ins.Machine[j] = mrow
		ins.Dur[j] = drow
	}
	if err := checkTotal(total); err != nil {
		return nil, err
	}
	if err := t.Done(); err != nil {
		return nil, err
	}
	return ins, nil
}
