package tabu

import "math/rand"

// epsilon below which a delta counts as an improvement; guards float
// round-off from triggering early accepts on no-op moves.
const eps = 1e-12

// CompoundParams shape a compound move, matching the paper's CLW loop:
// Depth steps, each keeping the best of Trials trial swaps whose first
// element is drawn from [RangeLo, RangeHi) and whose second element is
// drawn from the whole space. The range is the probabilistic domain
// decomposition: with distinct ranges, the chance that two workers try
// the same swap is 1/(n-1)² and three can never collide.
type CompoundParams struct {
	Trials int
	Depth  int

	RangeLo, RangeHi int32
}

// normalized returns params with an empty range widened to the whole
// problem and floors applied.
func (p CompoundParams) normalized(size int32) CompoundParams {
	if p.Trials < 1 {
		p.Trials = 1
	}
	if p.Depth < 1 {
		p.Depth = 1
	}
	if p.RangeHi <= p.RangeLo {
		p.RangeLo, p.RangeHi = 0, size
	}
	if p.RangeLo < 0 {
		p.RangeLo = 0
	}
	if p.RangeHi > size {
		p.RangeHi = size
	}
	return p
}

// BuildCompound constructs a compound move on prob and leaves it applied
// (tentatively): callers keep it, or revert with move.Undo(prob).
//
// Each depth step samples p.Trials candidate swaps, applies the best
// one, and stops early once the cumulative delta improves the cost —
// exactly the paper's CLW behaviour. After every applied step the
// optional step callback runs; it exists for the parallel runtime to
// charge virtual compute time and poll force-report interrupts, and
// truncates the move when it returns true. Sampling is deterministic in
// r.
//
// This trial-at-a-time form is the reference implementation; the
// parallel runtime and the sequential Search drive BuildCompoundBatch,
// which produces bit-identical moves from the same random stream (the
// equivalence is asserted by tests) while letting batch-capable
// problems evaluate all trials in one data-parallel call.
func BuildCompound(prob Problem, r *rand.Rand, p CompoundParams, step func() bool) CompoundMove {
	size := prob.Size()
	p = p.normalized(size)
	var move CompoundMove
	if size < 2 || p.RangeHi <= p.RangeLo {
		return move
	}
	for d := 0; d < p.Depth; d++ {
		bestA, bestB := int32(-1), int32(-1)
		bestDelta := 0.0
		found := false
		for t := 0; t < p.Trials; t++ {
			a := p.RangeLo + int32(r.Intn(int(p.RangeHi-p.RangeLo)))
			b := int32(r.Intn(int(size)))
			if a == b {
				continue
			}
			delta := prob.DeltaSwap(a, b)
			if !found || delta < bestDelta {
				bestA, bestB, bestDelta = a, b, delta
				found = true
			}
		}
		if !found {
			// All trials degenerated (a == b); spend the step and go on.
			if step != nil && step() {
				break
			}
			continue
		}
		prob.ApplySwap(bestA, bestB)
		if move.Swaps == nil {
			// One right-sized allocation per candidate: the move is sent
			// across workers, so it must own its memory.
			move.Swaps = make([]Swap, 0, p.Depth)
		}
		move.Swaps = append(move.Swaps, Swap{A: bestA, B: bestB})
		move.Delta += bestDelta
		interrupted := step != nil && step()
		if move.Delta < -eps {
			// Improving already: accept without further investigation.
			break
		}
		if interrupted {
			break
		}
	}
	return move
}

// Verdict reports the outcome of selecting among candidate moves.
type Verdict struct {
	// Index of the chosen candidate, or -1 if every candidate was empty.
	Index int
	// Aspired is true when the chosen move was tabu but beat the best
	// known cost (aspiration criterion).
	Aspired bool
	// Fallback is true when every candidate was tabu and unaspired and
	// the least-tabu one was taken so the search does not stall.
	Fallback bool
	// TabuRejected counts candidates skipped for being tabu.
	TabuRejected int
}

// SelectAdmissible implements the TSW's choice among the compound moves
// its candidate-list workers returned: scan candidates in order of
// ascending delta; take the first that is not tabu, or that is tabu but
// satisfies the aspiration criterion (its resulting cost beats bestCost).
// If everything is tabu, fall back to the candidate whose tabu tenure
// expires soonest.
//
// This per-candidate-probing form is the reference implementation; the
// TSW hot loop drives SelectAdmissibleBatch, which computes the same
// verdict with one tabu-memory pass over the whole batch (the
// equivalence is asserted by tests).
func SelectAdmissible(cands []CompoundMove, curCost, bestCost float64, list *List, iter int64) Verdict {
	// Stack-backed order buffer: candidate counts are tiny (#CLWs), so
	// the whole selection allocates nothing in the common case.
	var orderBuf [16]int
	order := orderBuf[:0]
	for i := range cands {
		if !cands[i].Empty() {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return Verdict{Index: -1}
	}
	// Insertion sort by delta.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && cands[order[j]].Delta < cands[order[j-1]].Delta; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	v := Verdict{Index: -1}
	for _, i := range order {
		if !list.AnyTabuSwaps(cands[i].Swaps, iter) {
			v.Index = i
			return v
		}
		if curCost+cands[i].Delta < bestCost-eps {
			v.Index = i
			v.Aspired = true
			return v
		}
		v.TabuRejected++
	}
	// Everything tabu and unaspired: least-tabu fallback.
	bestIdx, bestTenure := -1, int64(0)
	for _, i := range order {
		t := list.RemainingTenureSwaps(cands[i].Swaps, iter)
		if bestIdx == -1 || t < bestTenure ||
			(t == bestTenure && cands[i].Delta < cands[bestIdx].Delta) {
			bestIdx, bestTenure = i, t
		}
	}
	v.Index = bestIdx
	v.Fallback = true
	return v
}
