module pts

go 1.23
