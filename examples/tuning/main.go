// Tuning walkthrough: the paper's Figure 10 question — given a fixed
// iteration budget, how should it be split between global iterations
// (more diversification) and local iterations (more local
// investigation)? The answer is instance-dependent; this example makes
// the trade-off visible on two circuits, entirely through the public
// API.
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
)

func main() {
	solver := pts.NewSolver(
		pts.WithWorkers(4, 1),
		pts.WithCluster(pts.Testbed12(12)),
		pts.WithSeed(11),
	)
	const budget = 320 // total local iterations per TSW across the run

	splits := [][2]int{{32, 10}, {16, 20}, {8, 40}, {4, 80}, {2, 160}}

	for _, name := range []string{"highway", "c532"} {
		p, err := pts.PlacementBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d cells), budget G*L = %d:\n", name, p.Cells(), budget)
		fmt.Printf("  %-10s %-10s %-12s %-12s\n", "global G", "local L", "best cost", "virtual time")
		bestCost, bestSplit := 2.0, [2]int{}
		for _, gl := range splits {
			res, err := solver.Solve(context.Background(), p,
				pts.WithIterations(gl[0], gl[1]))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10d %-10d %-12.4f %-12.3f\n",
				gl[0], gl[1], res.BestCost, res.Elapsed)
			if res.BestCost < bestCost {
				bestCost, bestSplit = res.BestCost, gl
			}
		}
		fmt.Printf("  -> best split here: G=%d, L=%d (cost %.4f)\n\n",
			bestSplit[0], bestSplit[1], bestCost)
	}
	fmt.Println("As in the paper, no single split wins everywhere: pick per instance.")
}
