package netlist

import (
	"testing"
	"testing/quick"
)

func TestGenerateBasics(t *testing.T) {
	nl, err := Generate(GenConfig{Name: "t", Cells: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 100 {
		t.Fatalf("cells = %d, want 100", nl.NumCells())
	}
	s := nl.ComputeStats()
	if s.Inputs == 0 || s.Outputs == 0 {
		t.Errorf("no pads: %+v", s)
	}
	if s.LogicDepth < 2 {
		t.Errorf("depth %d too shallow for 100 cells", s.LogicDepth)
	}
	if s.AvgNetDegree < 2 {
		t.Errorf("avg degree %v < 2", s.AvgNetDegree)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "det", Cells: 200, Seed: 7}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.NumNets() != b.NumNets() {
		t.Fatalf("net counts differ: %d vs %d", a.NumNets(), b.NumNets())
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
	}
	for i := range a.Nets {
		if a.Nets[i].Driver != b.Nets[i].Driver || len(a.Nets[i].Sinks) != len(b.Nets[i].Sinks) {
			t.Fatalf("net %d differs", i)
		}
		for j := range a.Nets[i].Sinks {
			if a.Nets[i].Sinks[j] != b.Nets[i].Sinks[j] {
				t.Fatalf("net %d sink %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := MustGenerate(GenConfig{Name: "s", Cells: 150, Seed: 1})
	b := MustGenerate(GenConfig{Name: "s", Cells: 150, Seed: 2})
	diff := a.NumNets() != b.NumNets()
	for i := 0; !diff && i < a.NumNets(); i++ {
		an, bn := &a.Nets[i], &b.Nets[i]
		if an.Driver != bn.Driver || len(an.Sinks) != len(bn.Sinks) {
			diff = true
			break
		}
		for j := range an.Sinks {
			if an.Sinks[j] != bn.Sinks[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical circuits")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Name: "x", Cells: 5, Inputs: 3, Outputs: 3}); err == nil {
		t.Error("want error for too-few cells")
	}
	if _, err := Generate(GenConfig{Name: "x", Cells: 50, WidthMin: 9, WidthMax: 3}); err == nil {
		t.Error("want error for bad width range")
	}
	if _, err := Generate(GenConfig{Name: "x", Cells: 50, Locality: 1.5}); err == nil {
		t.Error("want error for Locality > 1")
	}
}

// Property: every generated circuit is structurally valid — Finish
// succeeded (acyclic, all nets have sinks), every gate is observable
// (drives something transitively hitting an output) is guaranteed by
// construction; here we verify no dangling drivers and pad kinds.
func TestQuickGenerateStructure(t *testing.T) {
	f := func(seedRaw uint32, sizeRaw uint8) bool {
		cells := 30 + int(sizeRaw)
		nl, err := Generate(GenConfig{Name: "q", Cells: cells, Seed: uint64(seedRaw)})
		if err != nil {
			return false
		}
		if nl.NumCells() != cells {
			return false
		}
		// Every non-output cell should drive at least one net.
		for c := 0; c < nl.NumCells(); c++ {
			if nl.Cells[c].Kind == Output {
				continue
			}
			if len(nl.Drives(CellID(c))) == 0 {
				return false
			}
		}
		// Every non-input cell should be fed by at least one net.
		for c := 0; c < nl.NumCells(); c++ {
			if nl.Cells[c].Kind == Input {
				continue
			}
			if len(nl.SinkNets(CellID(c))) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarkInstances(t *testing.T) {
	want := map[string]int{"highway": 56, "c532": 395, "c1355": 1451, "c3540": 2243}
	names := BenchmarkNames()
	if len(names) != 4 {
		t.Fatalf("BenchmarkNames = %v", names)
	}
	// Ascending size order.
	prev := 0
	for _, n := range names {
		c := BenchmarkCells(n)
		if c <= prev {
			t.Errorf("BenchmarkNames not ascending at %s", n)
		}
		prev = c
	}
	for name, cells := range want {
		nl, err := Benchmark(name)
		if err != nil {
			t.Fatalf("Benchmark(%s): %v", name, err)
		}
		if nl.NumCells() != cells {
			t.Errorf("%s: %d cells, want %d", name, nl.NumCells(), cells)
		}
		if nl.Name != name {
			t.Errorf("%s: name %q", name, nl.Name)
		}
	}
	if _, err := Benchmark("s38417"); err == nil {
		t.Error("unknown benchmark should error")
	}
	if BenchmarkCells("nope") != 0 {
		t.Error("unknown BenchmarkCells should be 0")
	}
}

func TestBenchmarkStable(t *testing.T) {
	a := MustBenchmark("highway")
	b := MustBenchmark("highway")
	if a.NumNets() != b.NumNets() {
		t.Fatal("benchmark instance not stable across calls")
	}
	for i := range a.Nets {
		if a.Nets[i].Driver != b.Nets[i].Driver {
			t.Fatal("benchmark nets differ across calls")
		}
	}
}

func BenchmarkGenerateC3540Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = MustGenerate(GenConfig{Name: "bench", Cells: 2243, Seed: 42})
	}
}
