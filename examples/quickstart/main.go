// Quickstart: run the parallel tabu search on one of the paper's
// circuits with default parameters and print what it achieved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/netlist"
)

func main() {
	// One of the paper's four circuits (a synthetic stand-in with the
	// same size and connectivity statistics; see DESIGN.md §4).
	nl := netlist.MustBenchmark("c532")

	// The paper's platform: 12 heterogeneous workstations (7 fast,
	// 3 medium, 2 slow) with background load.
	clus := cluster.Testbed12(12)

	// 4 tabu search workers, 2 candidate-list workers each, half-sync
	// heterogeneous collection — all defaults from the paper's setup.
	cfg := core.DefaultConfig()
	cfg.CLWs = 2

	res, err := core.Run(nl, clus, cfg, core.Virtual)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("circuit        %s (%d cells, %d nets)\n", nl.Name, nl.NumCells(), nl.NumNets())
	fmt.Printf("initial cost   %.4f\n", res.InitialCost)
	fmt.Printf("best cost      %.4f (%.1f%% better)\n",
		res.BestCost, 100*(res.InitialCost-res.BestCost)/res.InitialCost)
	fmt.Printf("wirelength     %.0f slot units\n", res.Objectives.Wirelength)
	fmt.Printf("critical path  %.2f ns\n", res.CriticalPath)
	fmt.Printf("layout width   %.0f units (widest row)\n", res.Objectives.Area)
	fmt.Printf("virtual time   %.3f s on the 12-machine testbed\n", res.Elapsed)
}
