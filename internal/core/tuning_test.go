package core

import (
	"testing"

	"pts/internal/cluster"
	"pts/internal/netlist"
)

func TestTuningForResolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials, cfg.Depth, cfg.Tenure, cfg.DiversifyDepth = 10, 3, 7, 5
	cfg.PerTSW = []Tuning{
		{},                     // TSW 0: all inherited
		{Trials: 20},           // TSW 1: trials overridden
		{Depth: 1, Tenure: 30}, // TSW 2
	}
	if got := cfg.tuningFor(0); got != (Tuning{10, 3, 7, 5}) {
		t.Errorf("tsw0 tuning = %+v", got)
	}
	if got := cfg.tuningFor(1); got != (Tuning{20, 3, 7, 5}) {
		t.Errorf("tsw1 tuning = %+v", got)
	}
	if got := cfg.tuningFor(2); got != (Tuning{10, 1, 30, 5}) {
		t.Errorf("tsw2 tuning = %+v", got)
	}
	// Beyond the slice: inherited.
	if got := cfg.tuningFor(9); got != (Tuning{10, 3, 7, 5}) {
		t.Errorf("tsw9 tuning = %+v", got)
	}
}

func TestMPDSRun(t *testing.T) {
	// MPDS mode: every TSW searches with a different strategy; the run
	// must work end-to-end and improve.
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 4, 1
	cfg.PerTSW = []Tuning{
		{Trials: 4, Depth: 1},            // shallow, wide sampling
		{Trials: 16, Depth: 2},           // heavy sampling
		{Depth: 6, Tenure: 4},            // deep compounds, short memory
		{Tenure: 40, DiversifyDepth: 24}, // long memory, strong kicks
	}
	res, err := Run(nl, cluster.Homogeneous(12, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("MPDS run did not improve: %v -> %v", res.InitialCost, res.BestCost)
	}
}

func TestMPDSDeterministic(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.PerTSW = []Tuning{{Trials: 4}, {Depth: 5}}
	a, err := Run(nl, cluster.Testbed12(3), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nl, cluster.Testbed12(3), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Elapsed != b.Elapsed {
		t.Fatal("MPDS runs with equal seeds diverged")
	}
}
