package core

import (
	"math"
	"testing"

	"pts/internal/cluster"
	"pts/internal/netlist"
)

// relaxedCfg is quickCfg with the relaxed kernels and the evaluation
// pool forced on — the configuration the CI -race job drives through
// this file so the pool's goroutine hand-off (channel sends of spans,
// WaitGroup, shared output slices over disjoint ranges) is exercised
// under the race detector.
func relaxedCfg() Config {
	cfg := quickCfg()
	cfg.RelaxedAccumulation = true
	cfg.EvalWorkers = 4
	return cfg
}

// TestRelaxedPoolRace runs full searches with relaxed accumulation and
// the per-CLW evaluation pool on, in both execution modes: real mode
// for genuine parallelism between CLWs and their pool workers, virtual
// mode because that is where the goldens live. Its value is mostly
// under -race (the CI job runs this package with it); without the
// detector it still checks the runs complete and improve.
func TestRelaxedPoolRace(t *testing.T) {
	nl := netlist.MustBenchmark("c532")
	for _, mode := range []Mode{Real, Virtual} {
		res, err := Run(nl, cluster.Homogeneous(12, 1), relaxedCfg(), mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.BestCost >= res.InitialCost {
			t.Errorf("mode %v: no improvement: %v -> %v", mode, res.InitialCost, res.BestCost)
		}
	}
}

// TestRelaxedPoolDeterministicVirtual: the pool shards batches but never
// reorders any candidate's arithmetic, so pooled relaxed virtual runs
// stay bit-reproducible — and identical to the same run without the
// pool.
func TestRelaxedPoolDeterministicVirtual(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Testbed12(5)
	a, err := Run(nl, clus, relaxedCfg(), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(nl, clus, relaxedCfg(), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.BestCost) != math.Float64bits(b.BestCost) {
		t.Errorf("pooled relaxed virtual runs differ: %.17g vs %.17g", a.BestCost, b.BestCost)
	}
	noPool := relaxedCfg()
	noPool.EvalWorkers = 0
	c, err := Run(nl, clus, noPool, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.BestCost) != math.Float64bits(c.BestCost) {
		t.Errorf("pool changed the trajectory: pooled %.17g, unpooled %.17g", a.BestCost, c.BestCost)
	}
}

// TestRelaxedConfigValidation pins the pool's gating: the pool reorders
// which goroutine evaluates a candidate (never the arithmetic), but it
// is specified as a relaxed-mode capability, and strict mode must keep
// the audited single-threaded path.
func TestRelaxedConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvalWorkers = 4
	if err := cfg.Validate(); err == nil {
		t.Error("EvalWorkers > 1 without RelaxedAccumulation accepted")
	}
	cfg.RelaxedAccumulation = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("relaxed pool config rejected: %v", err)
	}
	cfg.EvalWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative EvalWorkers accepted")
	}
}

// TestRelaxedWireRoundTrip: the relaxed flag and pool size travel in the
// job payload so every worker of a distributed run scores with the same
// kernels.
func TestRelaxedWireRoundTrip(t *testing.T) {
	cfg := relaxedCfg()
	got := cfg.wire().config()
	if !got.RelaxedAccumulation || got.EvalWorkers != cfg.EvalWorkers {
		t.Errorf("wire round trip dropped the relaxed fields: %+v", got)
	}
}
