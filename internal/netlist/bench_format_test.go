package netlist

import (
	"strings"
	"testing"
)

// s27ish is a hand-written sequential circuit in .bench syntax,
// structurally modeled on ISCAS-89 s27.
const s27ish = `
# a small sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)

G10 = NAND(G0, G5)
G11 = NOR(G1, G6)
G14 = NOT(G2)
G17 = OR(G10, G11, G14)
`

func TestReadBenchBasics(t *testing.T) {
	nl, err := ReadBench(strings.NewReader(s27ish), "s27ish", 1)
	if err != nil {
		t.Fatal(err)
	}
	st := nl.ComputeStats()
	// Cells: 3 PIs + 2 DFF pseudo-inputs + 4 gates (G10,G11,G14,G17).
	// G17 is an output-kind gate. No dangling pads needed: every signal
	// is consumed (G17 is a primary output).
	if st.Inputs != 5 {
		t.Errorf("inputs = %d, want 5 (3 PI + 2 DFF)", st.Inputs)
	}
	if st.Outputs < 1 {
		t.Errorf("outputs = %d", st.Outputs)
	}
	if nl.NumCells() < 9 {
		t.Errorf("cells = %d", nl.NumCells())
	}
	// The netlist must be acyclic even though the source circuit is
	// sequential (G5 = DFF(G10), G10 = NAND(G0, G5)).
	if st.LogicDepth < 1 {
		t.Error("no combinational depth")
	}
}

func TestReadBenchDFFBreaksCycles(t *testing.T) {
	// Self-loop through a DFF: Q = DFF(Q) plus a consumer.
	src := `
INPUT(A)
OUTPUT(Z)
Q = DFF(Q)
Z = AND(A, Q)
`
	nl, err := ReadBench(strings.NewReader(src), "loop", 2)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() == 0 {
		t.Fatal("empty netlist")
	}
}

func TestReadBenchDanglingGetsPad(t *testing.T) {
	src := `
INPUT(A)
B = NOT(A)
`
	// B drives nothing and is not an OUTPUT: a pseudo pad must appear.
	nl, err := ReadBench(strings.NewReader(src), "dangle", 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range nl.Cells {
		if nl.Cells[i].Name == "B_po" && nl.Cells[i].Kind == Output {
			found = true
		}
	}
	if !found {
		t.Fatal("dangling signal did not get an output pad")
	}
}

func TestReadBenchErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"malformed input", "INPUT G0\n", "malformed"},
		{"empty signal", "INPUT()\n", "empty"},
		{"no assignment", "G1 NAND(G0)\n", "assignment"},
		{"malformed gate", "G1 = NAND G0\n", "malformed"},
		{"no args", "G1 = NAND()\n", "no inputs"},
		{"dup input", "INPUT(A)\nINPUT(A)\n", "duplicate"},
		{"dup signal", "INPUT(A)\nB = NOT(A)\nB = NOT(A)\n", "twice"},
		{"undefined", "INPUT(A)\nOUTPUT(B)\nB = NOT(C)\n", "undefined"},
		{"undefined dff", "INPUT(A)\nB = DFF(C)\n", "undefined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadBench(strings.NewReader(c.src), "x", 1)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestReadBenchDeterministicAttributes(t *testing.T) {
	a, err := ReadBench(strings.NewReader(s27ish), "s27ish", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBench(strings.NewReader(s27ish), "s27ish", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatal("cell attributes differ for equal seeds")
		}
	}
	c, err := ReadBench(strings.NewReader(s27ish), "s27ish", 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Cells {
		if a.Cells[i].Width != c.Cells[i].Width {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical widths (suspicious)")
	}
}

func TestReadBenchPlacesAndSearches(t *testing.T) {
	// End-to-end: a .bench circuit must run through the whole stack.
	nl, err := ReadBench(strings.NewReader(s27ish), "s27ish", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Finish(); err != nil {
		t.Fatalf("refinish: %v", err)
	}
	if nl.TotalWidth() <= 0 {
		t.Fatal("degenerate widths")
	}
}
