// Package jobshop implements the job shop scheduling problem (makespan
// objective) as a fourth domain for the tabu engine, over the
// operation-based permutation encoding.
//
// The encoding is Bierwirth's permutation with repetition, expressed
// over distinct tokens so it fits the engine's permutation contract: a
// solution is a permutation of the n*m operation tokens, token t
// denoting the next unscheduled operation of job t/m. Decoding
// dispatches tokens left to right, starting each operation as soon as
// its job predecessor and its machine are free — a semi-active schedule
// builder, under which every active (hence every optimal) schedule is
// reachable. Two tokens of the same job are interchangeable, so
// swapping them is exactly cost-neutral.
//
// Unlike the flow shop there is no head/tail shortcut for this
// neighborhood: a swap changes the dispatch order globally, so the
// delta is an honest O(nm) re-decode — the stress case for the batched
// evaluator boundary, which here amortizes only call overhead and
// scratch reuse, not asymptotics. All schedule arithmetic is integral
// (int32, guarded by the instance parser), so batch and scalar paths
// are bit-identical by construction.
package jobshop

import (
	"fmt"

	"pts/internal/rng"
	"pts/internal/schedinst"
	"pts/internal/tabu"
)

// New validates per-job machine routes and durations (machine[j][o],
// dur[j][o] for job j's o-th operation) and wraps them as an instance.
// Every job must visit every machine exactly once.
func New(name string, machine, dur [][]int) (*schedinst.JobShop, error) {
	if len(machine) == 0 || len(machine[0]) == 0 {
		return nil, fmt.Errorf("jobshop: empty routing")
	}
	jobs, machines := len(machine), len(machine[0])
	if len(dur) != jobs {
		return nil, fmt.Errorf("jobshop: %d duration rows for %d jobs", len(dur), jobs)
	}
	ins := &schedinst.JobShop{
		Name: name, Jobs: jobs, Machines: machines,
		Machine: machine, Dur: dur,
	}
	total := int64(0)
	seen := make([]int, machines)
	for j := 0; j < jobs; j++ {
		if len(machine[j]) != machines || len(dur[j]) != machines {
			return nil, fmt.Errorf("jobshop: job %d has %d/%d operations, want %d", j, len(machine[j]), len(dur[j]), machines)
		}
		for o := 0; o < machines; o++ {
			m := machine[j][o]
			if m < 0 || m >= machines {
				return nil, fmt.Errorf("jobshop: job %d op %d names machine %d, want [0,%d)", j, o, m, machines)
			}
			if seen[m] == j+1 {
				return nil, fmt.Errorf("jobshop: job %d visits machine %d twice", j, m)
			}
			seen[m] = j + 1
			if dur[j][o] < 0 {
				return nil, fmt.Errorf("jobshop: negative duration %d (job %d, op %d)", dur[j][o], j, o)
			}
			total += int64(dur[j][o])
		}
	}
	if total > 1<<31-1 {
		return nil, fmt.Errorf("jobshop: total processing time %d overflows the schedule arithmetic", total)
	}
	return ins, nil
}

// Random generates a random instance with durations in [1, 100) and a
// random machine route per job, deterministic in seed.
func Random(jobs, machines int, seed uint64) *schedinst.JobShop {
	r := rng.New(rng.Derive(seed, "jobshop"))
	machine := make([][]int, jobs)
	dur := make([][]int, jobs)
	for j := 0; j < jobs; j++ {
		machine[j] = r.Perm(machines)
		row := make([]int, machines)
		for o := range row {
			row[o] = 1 + r.Intn(99)
		}
		dur[j] = row
	}
	ins, err := New(fmt.Sprintf("js%dx%d", jobs, machines), machine, dur)
	if err != nil {
		panic(err) // unreachable: the generator respects the invariants
	}
	return ins
}

// MakespanSeq evaluates a job dispatch sequence (each job id appearing
// exactly Machines times) from scratch — the independent exact oracle
// and the brute-force workhorse.
func MakespanSeq(ins *schedinst.JobShop, jobs []int32) (int, error) {
	if len(jobs) != ins.Jobs*ins.Machines {
		return 0, fmt.Errorf("jobshop: sequence length %d != %d operations", len(jobs), ins.Jobs*ins.Machines)
	}
	jobNext := make([]int, ins.Jobs)
	jobReady := make([]int, ins.Jobs)
	machReady := make([]int, ins.Machines)
	mk := 0
	for _, j := range jobs {
		if j < 0 || int(j) >= ins.Jobs {
			return 0, fmt.Errorf("jobshop: job id %d out of range", j)
		}
		o := jobNext[j]
		if o >= ins.Machines {
			return 0, fmt.Errorf("jobshop: job %d dispatched more than %d times", j, ins.Machines)
		}
		jobNext[j] = o + 1
		m := ins.Machine[j][o]
		t := jobReady[j]
		if machReady[m] > t {
			t = machReady[m]
		}
		t += ins.Dur[j][o]
		jobReady[j], machReady[m] = t, t
		if t > mk {
			mk = t
		}
	}
	return mk, nil
}

// LowerBound is the machine/job load bound: no schedule beats any
// machine's total load or any job's total processing time.
func LowerBound(ins *schedinst.JobShop) int {
	lb := 0
	machLoad := make([]int, ins.Machines)
	for j := 0; j < ins.Jobs; j++ {
		total := 0
		for o := 0; o < ins.Machines; o++ {
			machLoad[ins.Machine[j][o]] += ins.Dur[j][o]
			total += ins.Dur[j][o]
		}
		if total > lb {
			lb = total
		}
	}
	for _, load := range machLoad {
		if load > lb {
			lb = load
		}
	}
	return lb
}

// BruteForceOptimum exhaustively searches every distinct job dispatch
// sequence; limited to tiny instances (n*m <= 12), the test oracle.
func BruteForceOptimum(ins *schedinst.JobShop) int {
	if ins.Jobs*ins.Machines > 12 {
		panic("jobshop: brute force limited to 12 operations")
	}
	remaining := make([]int, ins.Jobs)
	for j := range remaining {
		remaining[j] = ins.Machines
	}
	seq := make([]int32, 0, ins.Jobs*ins.Machines)
	best := -1
	var rec func()
	rec = func() {
		if len(seq) == cap(seq) {
			mk, err := MakespanSeq(ins, seq)
			if err != nil {
				panic(err) // unreachable: the recursion emits valid sequences
			}
			if best < 0 || mk < best {
				best = mk
			}
			return
		}
		for j := 0; j < ins.Jobs; j++ {
			if remaining[j] == 0 {
				continue
			}
			remaining[j]--
			seq = append(seq, int32(j))
			rec()
			seq = seq[:len(seq)-1]
			remaining[j]++
		}
	}
	rec()
	return best
}

// State is a mutable operation-token permutation implementing the tabu
// engine's Problem interface plus the batched evaluation boundary.
// Element indices are dispatch positions; ApplySwap(a, b) exchanges the
// tokens at positions a and b.
type State struct {
	ins  *schedinst.JobShop
	n, m int32 // jobs, machines
	// mach and dur are flat copies: mach[j*m+o], dur[j*m+o].
	mach, dur []int32
	// perm[pos] is the operation token dispatched at position pos; the
	// token's job is perm[pos] / m.
	perm     []int32
	makespan int32
	// Decode scratch, reused across evaluations so the hot path stays
	// allocation-free.
	jobNext, jobReady, machReady []int32
}

// NewState creates a state with a random token permutation drawn from
// seed.
func NewState(ins *schedinst.JobShop, seed uint64) *State {
	s := newState(ins)
	r := rng.New(rng.Derive(seed, "jobshop.state"))
	for i, v := range r.Perm(len(s.perm)) {
		s.perm[i] = int32(v)
	}
	s.makespan = s.decode(-1, -1)
	return s
}

// NewStateAt creates a state positioned at the token permutation snap.
func NewStateAt(ins *schedinst.JobShop, snap []int32) (*State, error) {
	s := newState(ins)
	if err := s.Restore(snap); err != nil {
		return nil, err
	}
	return s, nil
}

func newState(ins *schedinst.JobShop) *State {
	n, m := int32(ins.Jobs), int32(ins.Machines)
	s := &State{
		ins: ins, n: n, m: m,
		mach:      make([]int32, int(n)*int(m)),
		dur:       make([]int32, int(n)*int(m)),
		perm:      make([]int32, int(n)*int(m)),
		jobNext:   make([]int32, n),
		jobReady:  make([]int32, n),
		machReady: make([]int32, m),
	}
	for j := 0; j < ins.Jobs; j++ {
		for o := 0; o < ins.Machines; o++ {
			s.mach[j*int(m)+o] = int32(ins.Machine[j][o])
			s.dur[j*int(m)+o] = int32(ins.Dur[j][o])
		}
	}
	return s
}

// Instance returns the underlying instance.
func (s *State) Instance() *schedinst.JobShop { return s.ins }

// Cost returns the current makespan. Integral by construction, so the
// float64 view is exact.
func (s *State) Cost() float64 { return float64(s.makespan) }

// Makespan returns the current makespan as the integer it is.
func (s *State) Makespan() int { return int(s.makespan) }

// Size returns the number of dispatch positions (n*m operations).
func (s *State) Size() int32 { return s.n * s.m }

// decode computes the makespan of the current permutation, reading
// positions a and b exchanged when a >= 0 — the one full-decode kernel
// behind Cost maintenance, DeltaSwap and the batch path. O(nm).
func (s *State) decode(a, b int32) int32 {
	for i := range s.jobNext {
		s.jobNext[i] = 0
		s.jobReady[i] = 0
	}
	for i := range s.machReady {
		s.machReady[i] = 0
	}
	m := s.m
	mk := int32(0)
	for pos := int32(0); pos < int32(len(s.perm)); pos++ {
		p := pos
		switch pos {
		case a:
			p = b
		case b:
			p = a
		}
		j := s.perm[p] / m
		o := s.jobNext[j]
		s.jobNext[j] = o + 1
		op := j*m + o
		t := s.jobReady[j]
		if mr := s.machReady[s.mach[op]]; mr > t {
			t = mr
		}
		t += s.dur[op]
		s.jobReady[j] = t
		s.machReady[s.mach[op]] = t
		if t > mk {
			mk = t
		}
	}
	return mk
}

// DeltaSwap returns the exact makespan change of exchanging the tokens
// at positions a and b without applying it. Two tokens of the same job
// leave the decoded schedule unchanged, so their swap is exactly zero;
// anything else is an honest O(nm) re-decode.
func (s *State) DeltaSwap(a, b int32) float64 {
	if a == b || s.perm[a]/s.m == s.perm[b]/s.m {
		return 0
	}
	return float64(s.decode(a, b) - s.makespan)
}

// DeltaSwapBatch evaluates a whole candidate batch in one call; out[i]
// is bit-for-bit what DeltaSwap(cands[i].A, cands[i].B) would return.
// Implements tabu.BatchEvaluator. There is no incremental shortcut for
// this neighborhood, so the batch amortizes only call overhead and the
// decode scratch — the honest recompute-on-delta end of the evaluator
// boundary's spectrum.
func (s *State) DeltaSwapBatch(cands []tabu.SwapCand, out []float64) {
	for i, c := range cands {
		if c.A == c.B || s.perm[c.A]/s.m == s.perm[c.B]/s.m {
			out[i] = 0
			continue
		}
		out[i] = float64(s.decode(c.A, c.B) - s.makespan)
	}
}

// ApplySwap exchanges the tokens at positions a and b and updates the
// makespan exactly.
func (s *State) ApplySwap(a, b int32) {
	if a == b {
		return
	}
	sameJob := s.perm[a]/s.m == s.perm[b]/s.m
	s.perm[a], s.perm[b] = s.perm[b], s.perm[a]
	if !sameJob {
		s.makespan = s.decode(-1, -1)
	}
}

// Snapshot copies the current token permutation.
func (s *State) Snapshot() []int32 { return append([]int32(nil), s.perm...) }

// SnapshotInto copies the current token permutation into dst, reusing
// its storage when large enough; the allocation-free variant the
// parallel engine prefers.
func (s *State) SnapshotInto(dst []int32) []int32 {
	if cap(dst) < len(s.perm) {
		dst = make([]int32, len(s.perm))
	}
	dst = dst[:len(s.perm)]
	copy(dst, s.perm)
	return dst
}

// Restore replaces the token permutation with a snapshot and recomputes
// the makespan exactly.
func (s *State) Restore(snap []int32) error {
	if len(snap) != len(s.perm) {
		return fmt.Errorf("jobshop: snapshot length %d != %d", len(snap), len(s.perm))
	}
	seen := make([]bool, len(s.perm))
	for _, v := range snap {
		if v < 0 || int(v) >= len(s.perm) || seen[v] {
			return fmt.Errorf("jobshop: snapshot is not a permutation")
		}
		seen[v] = true
	}
	copy(s.perm, snap)
	s.makespan = s.decode(-1, -1)
	return nil
}
