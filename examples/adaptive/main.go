// Adaptive-scheduling walkthrough: on a cluster where one CLW host is
// 4x faster than the other three, the static equal partition makes
// every iteration wait on a slow node, while WithAdaptive gives the
// fast node a speed-proportional share of the element space and trial
// budget — the same iteration budget completes substantially faster.
//
//	go run ./examples/adaptive
//
// The comparison runs on the deterministic virtual runtime, so the
// makespans are modeled cluster time (bit-reproducible across hosts)
// rather than noisy wall clock; `ptsbench -hetero` measures the same
// scenario with real WorkScale-emulated wall time. The second half
// shows the adaptive scheduler's progress snapshots on a loaded
// cluster, where shares drift as background load shifts throughput.
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
)

func main() {
	speedSkewComparison()
	driftingShares()
}

// speedSkewComparison is the headline number: identical search budget,
// static vs adaptive, on a 4:1 speed-skewed platform.
func speedSkewComparison() {
	p, err := pts.PlacementBenchmark("highway")
	if err != nil {
		log.Fatal(err)
	}
	// Machine 0 hosts the master, machine 1 the single TSW, machines
	// 2..5 its four CLWs: one 4x node and three 1x nodes.
	clus := pts.ClusterOf(1, 4, 4, 1, 1, 1)

	run := func(adaptive bool) *pts.Result {
		res, err := pts.Solve(context.Background(), p,
			pts.WithCluster(clus),
			pts.WithWorkers(1, 4),
			pts.WithIterations(4, 20),
			// One wide sampling step per candidate makes the critical path
			// exactly the per-step trial budget the scheduler balances.
			pts.WithTabu(10, 96, 1),
			pts.WithHalfSync(false), // full collection: equal budgets, comparable makespans
			pts.WithAdaptive(adaptive),
			pts.WithSeed(7),
		)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("4:1 speed-skewed cluster, equal iteration budget:")
	static := run(false)
	adaptive := run(true)
	fmt.Printf("  static    %7.3fs modeled  best %.4f\n", static.Elapsed, static.BestCost)
	fmt.Printf("  adaptive  %7.3fs modeled  best %.4f\n", adaptive.Elapsed, adaptive.BestCost)
	fmt.Printf("  speedup   %.2fx\n\n", static.Elapsed/adaptive.Elapsed)
}

// driftingShares shows the scheduler reacting to load, not just raw
// speed: on the loaded testbed the per-TSW shares shift between rounds
// as background load steals cycles.
func driftingShares() {
	p, err := pts.PlacementBenchmark("highway")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adaptive shares on the loaded 12-machine testbed:")
	res, err := pts.Solve(context.Background(), p,
		pts.WithCluster(pts.Testbed12(12)),
		pts.WithWorkers(4, 2),
		pts.WithIterations(8, 25),
		pts.WithAdaptive(true),
		pts.WithSeed(7),
		pts.WithProgress(func(s pts.Snapshot) {
			fmt.Printf("  round %2d/%d  best %.4f  shares ", s.Round, s.Rounds, s.BestCost)
			for _, sh := range s.Shares {
				fmt.Printf("%5.2f ", sh)
			}
			fmt.Println()
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: best %.4f after %d rounds, %d rebalances adopted\n",
		res.BestCost, res.Rounds, res.Stats.Rebalances)
}
