package cost

import (
	"math"
	"testing"

	"pts/internal/fuzzy"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/timing"
)

func TestGoalSetRoundTrip(t *testing.T) {
	e := newEval(t, 80, 20)
	g := e.GoalSet()
	if err := g.Validate(); err != nil {
		t.Fatalf("derived goals invalid: %v", err)
	}

	// A second evaluator over a different placement of the same circuit
	// with the same goals must produce comparable costs: scoring the
	// same permutation yields the same cost.
	nl := e.Placement().Netlist()
	p2, err := placement.New(nl, e.Placement().Layout())
	if err != nil {
		t.Fatal(err)
	}
	p2.Randomize(rng.New(999))
	e2, err := NewEvaluatorWithGoals(p2, DefaultConfig().Timing, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ImportPerm(e.ExportPerm()); err != nil {
		t.Fatal(err)
	}
	e.Refresh()
	if math.Abs(e2.Cost()-e.Cost()) > 1e-9 {
		t.Fatalf("same perm, same goals, different cost: %v vs %v", e2.Cost(), e.Cost())
	}
	if e2.Timing() == nil {
		t.Fatal("Timing accessor nil")
	}
}

func TestGoalsValidate(t *testing.T) {
	good := fuzzy.Membership{Goal: 1, Ceiling: 2}
	bad := fuzzy.Membership{Goal: 2, Ceiling: 1}
	cases := []Goals{
		{Wirelength: bad, Delay: good, Area: good, Beta: 0.5},
		{Wirelength: good, Delay: bad, Area: good, Beta: 0.5},
		{Wirelength: good, Delay: good, Area: bad, Beta: 0.5},
		{Wirelength: good, Delay: good, Area: good, Beta: 1.5},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid goals accepted", i)
		}
	}
	ok := Goals{Wirelength: good, Delay: good, Area: good, Beta: 0.5}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid goals rejected: %v", err)
	}
	if _, err := NewEvaluatorWithGoals(nil, timing.Config{}, cases[0]); err == nil {
		t.Error("NewEvaluatorWithGoals accepted invalid goals")
	}
}

func TestProblemAdapter(t *testing.T) {
	e := newEval(t, 60, 21)
	prob := Problem{Ev: e}
	if prob.Cost() != e.Cost() {
		t.Error("Cost mismatch")
	}
	if prob.Size() != int32(60) {
		t.Errorf("Size = %d", prob.Size())
	}
	d := prob.DeltaSwap(3, 9)
	before := prob.Cost()
	prob.ApplySwap(3, 9)
	if math.Abs((prob.Cost()-before)-d) > 1e-9 {
		t.Error("adapter delta inconsistent")
	}
	snap := prob.Snapshot()
	prob.ApplySwap(1, 2)
	if err := prob.Restore(snap); err != nil {
		t.Fatal(err)
	}
	prob.Refresh()
	if len(prob.Snapshot()) != 60 {
		t.Error("snapshot length wrong")
	}
	clone := prob.Clone()
	clone.ApplySwap(4, 5)
	if clone.Ev == prob.Ev {
		t.Error("Clone shares the evaluator")
	}
}
