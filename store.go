package pts

import "pts/internal/store"

// Store is durable key-value state for crash-only operation: a solver
// run given one (WithStore) snapshots its progress at every
// synchronization barrier, and a serving daemon given one
// (ServerOptions.Store) journals its jobs — either can then be killed
// at any instant and restarted over the same store to continue where
// it stopped. See WithStore and ServerOptions.Store for the exact
// resume semantics.
//
// A Store is a flat namespace of slash-separated keys to opaque byte
// values; implementations must make Put atomic (a reader sees the old
// value or the new one, never a torn write). The two built-ins cover
// the usual cases: NewFileStore persists to a directory, NewMemStore
// keeps everything in process memory.
type Store = store.Store

// NewFileStore opens a file-backed store rooted at dir, creating the
// directory if needed. Writes are atomic (temp file + rename) and
// fsynced, so state survives a process kill at any instant; one
// directory must not be shared by two live processes.
func NewFileStore(dir string) (Store, error) { return store.Open(dir) }

// NewMemStore returns an in-memory store: the same semantics with
// process-lifetime durability. Useful for tests and for exercising
// resume logic without touching disk.
func NewMemStore() Store { return store.NewMem() }
