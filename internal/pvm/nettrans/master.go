package nettrans

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"pts/internal/pvm"
	"pts/internal/rng"
)

// MasterConfig configures the master side of a distributed run.
type MasterConfig struct {
	// Addr is the TCP listen address (e.g. ":9017" or "127.0.0.1:0").
	Addr string
	// Workers is the minimum number of workers that must have joined
	// before a run starts; every worker joined by then participates.
	Workers int
	// JoinWait bounds how long Run waits for Workers workers to join
	// (default 2 minutes).
	JoinWait time.Duration
	// ByeWait bounds the post-run counter collection per worker
	// (default 5 seconds).
	ByeWait time.Duration
	// Logf, when non-nil, receives one line per registry event (joins,
	// refusals, losses).
	Logf func(format string, args ...any)
	// OnRegistry, when non-nil, is called — without master locks held —
	// after the set of idle workers changes: a join, a drain or loss, or
	// a finished lease returning its nodes. Serving layers use it to pump
	// their admission queue.
	OnRegistry func()
}

// Master is the hub transport: it listens for worker joins, records
// their capacity and speed in the registry, and hosts runs whose tasks
// execute partly in this process and partly on the joined workers.
//
// Two usage modes share the registry. The one-shot mode — Master itself
// implements pvm.Transport and pvm.Finisher — claims every joined
// worker for a single run and shuts the master down when it finishes.
// The serving mode hands out long-lived slices of the fleet instead:
// Lease claims a disjoint subset of idle workers, hosts one run on it
// (each Lease is itself a pvm.Transport and pvm.Finisher), and returns
// the workers — connections intact — to the lobby for the next job, so
// one master multiplexes many concurrent runs without ever sharing a
// machine slot between two of them.
type Master struct {
	cfg MasterConfig
	ln  net.Listener

	mu        sync.Mutex
	cond      *sync.Cond
	lobby     []*node
	names     map[string]*node
	closed    bool
	exclusive *job              // the one-shot Run's job, target of elastic absorption
	active    map[*job]struct{} // every running job, one-shot or leased
}

// node is one registered worker process.
type node struct {
	name     string
	speed    float64
	capacity int
	c        *conn

	firstSlot, slots int

	alive bool   // guarded by its current job's mu
	job   *job   // the run currently hosted on this node; guarded by Master.mu
	lease *Lease // non-nil from Lease() until the nodes are returned; guarded by Master.mu
	gone  bool   // retired from the registry (lost, drained or misbehaving); guarded by Master.mu
	sends int64  // guarded by its current job's mu
	bye   chan struct{}
}

// NodeInfo describes one registry entry.
type NodeInfo struct {
	Name     string
	Speed    float64
	Capacity int
	// Busy reports that the worker is leased to (or hosting) a run
	// rather than idle in the lobby.
	Busy bool
}

// Listen starts a master: it binds cfg.Addr immediately and accepts
// worker joins in the background, so workers may connect before the run
// starts.
func Listen(cfg MasterConfig) (*Master, error) {
	// Workers only gates the one-shot Run (it waits for that many joins
	// before claiming the lobby); a lease-only serving master sets 0.
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("nettrans: negative worker count %d", cfg.Workers)
	}
	if cfg.JoinWait <= 0 {
		cfg.JoinWait = 2 * time.Minute
	}
	if cfg.ByeWait <= 0 {
		cfg.ByeWait = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	m := &Master{cfg: cfg, ln: ln, names: make(map[string]*node), active: make(map[*job]struct{})}
	m.cond = sync.NewCond(&m.mu)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the bound listen address (useful with ":0").
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Nodes lists the currently joined workers — idle, leased or hosting a
// run — in name order.
func (m *Master) Nodes() []NodeInfo {
	m.mu.Lock()
	out := make([]NodeInfo, 0, len(m.names))
	for _, n := range m.names {
		if n.gone {
			continue
		}
		out = append(out, NodeInfo{Name: n.name, Speed: n.speed, Capacity: n.capacity, Busy: n.job != nil || n.lease != nil})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// FreeWorkers returns how many joined workers are idle in the lobby —
// available for the next Lease or one-shot run.
func (m *Master) FreeWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.lobby)
}

// TotalWorkers returns how many workers are joined in any state.
func (m *Master) TotalWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, n := range m.names {
		if !n.gone {
			total++
		}
	}
	return total
}

// notifyRegistry invokes the registry-change hook outside master locks.
func (m *Master) notifyRegistry() {
	if m.cfg.OnRegistry != nil {
		m.cfg.OnRegistry()
	}
}

// Close shuts the master down: the listener stops and every worker
// connection — idle in the lobby or claimed by a run — is dropped, so
// worker daemons never hang on a master that errored out between
// claiming them and finishing a job (their dial loops back off or give
// up). Safe to call more than once.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.lobby = nil
	conns := make([]*conn, 0, len(m.names))
	for _, n := range m.names {
		conns = append(conns, n.c)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	return m.ln.Close()
}

// acceptLoop admits workers: each connection must open with a valid
// fJoin naming a not-yet-registered worker; everything else — garbage
// bytes, oversized frames, duplicate names — is refused and dropped
// without disturbing the registry.
func (m *Master) acceptLoop() {
	for {
		nc, err := m.ln.Accept()
		if err != nil {
			return
		}
		go m.admit(nc)
	}
}

func (m *Master) admit(nc net.Conn) {
	c := newConn(nc)
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := c.read()
	if err != nil || f.Type != fJoin || f.Worker == "" {
		m.cfg.Logf("nettrans: refused connection from %s: malformed join (%v)", nc.RemoteAddr(), err)
		c.close()
		return
	}
	nc.SetReadDeadline(time.Time{})
	if f.Speed <= 0 {
		f.Speed = 1
	}
	if f.Capacity < 1 {
		f.Capacity = 1
	}
	m.mu.Lock()
	switch {
	case m.closed:
		m.mu.Unlock()
		c.write(&frame{Type: fJoinAck, Err: "master closed"})
		c.close()
		return
	case m.names[f.Worker] != nil:
		m.mu.Unlock()
		m.cfg.Logf("nettrans: refused duplicate join %q from %s", f.Worker, nc.RemoteAddr())
		c.write(&frame{Type: fJoinAck, Err: fmt.Sprintf("worker name %q already joined", f.Worker)})
		c.close()
		return
	}
	n := &node{name: f.Worker, speed: f.Speed, capacity: f.Capacity, c: c, alive: true, bye: make(chan struct{})}
	// Reserve the name but do not publish the node yet: the ack must be
	// on the wire before a racing Run can claim the node and write fJob,
	// or the worker would see the job frame ahead of its join ack.
	m.names[f.Worker] = n
	m.mu.Unlock()
	if err := c.write(&frame{Type: fJoinAck}); err != nil {
		m.mu.Lock()
		delete(m.names, n.name)
		m.mu.Unlock()
		c.close()
		return
	}
	m.mu.Lock()
	if m.closed {
		delete(m.names, n.name)
		m.mu.Unlock()
		c.close()
		return
	}
	// Elastic membership: while an exclusive elastic job is running, a
	// late joiner is claimed for it immediately as spare capacity instead
	// of waiting in the lobby for the next job. Leased jobs never absorb
	// — their workers belong to a shared fleet, so spare capacity goes to
	// the lobby where the serving layer's admission queue can use it.
	j := m.exclusive
	absorb := j != nil && j.opts.Elastic
	if absorb {
		n.job = j
	} else {
		m.lobby = append(m.lobby, n)
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if absorb && !j.absorb(n) {
		// The job ended between the check and the claim: park the node in
		// the lobby after all.
		m.mu.Lock()
		n.job = nil
		if m.closed {
			delete(m.names, n.name)
			m.mu.Unlock()
			c.close()
			return
		}
		m.lobby = append(m.lobby, n)
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	m.cfg.Logf("nettrans: worker %q joined (speed %.2f, capacity %d)", n.name, n.speed, n.capacity)
	m.notifyRegistry()
	// One persistent reader owns the connection from here on: it spots a
	// worker dying while idle in the lobby (freeing its name so the
	// daemon's reconnect is not refused as a duplicate, and keeping dead
	// nodes out of the next run) and serves the job frames once claimed.
	go m.serveConn(n)
}

// serveConn is the per-connection read loop, from admission to
// disconnect: job frames are dispatched to the run currently hosted on
// the node, idle frames other than a graceful fLeave (or a straggling
// counter report) are protocol violations, and read errors retire the
// node from whichever state it is in.
func (m *Master) serveConn(n *node) {
	for {
		f, err := n.c.read()
		j := m.jobOf(n)
		if err != nil {
			if j != nil {
				j.nodeLost(n, err)
			} else {
				m.retireIdle(n, err, false)
			}
			return
		}
		if j == nil {
			switch f.Type {
			case fLeave:
				m.retireIdle(n, nil, true)
				return
			case fBye:
				// A counter report that straggled past the job's bye
				// deadline and its release; the counters were forfeited,
				// the worker is fine.
				continue
			}
			m.retireIdle(n, fmt.Errorf("unexpected frame type %d while idle", f.Type), false)
			return
		}
		if !j.handleFrame(n, f) {
			return
		}
	}
}

// jobOf returns the run currently hosted on n, if any.
func (m *Master) jobOf(n *node) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return n.job
}

// retire removes a node from the registry: its name is freed so a
// reconnecting daemon can rejoin, and the node is marked gone so a
// pending lease will not hand it to a new run.
func (m *Master) retire(n *node) {
	m.mu.Lock()
	delete(m.names, n.name)
	n.gone = true
	m.mu.Unlock()
}

// retireIdle retires a worker that left — gracefully (drained) or not —
// while idle in the lobby or leased-but-not-yet-running.
func (m *Master) retireIdle(n *node, cause error, drained bool) {
	m.mu.Lock()
	for i, ln := range m.lobby {
		if ln == n {
			m.lobby = append(m.lobby[:i], m.lobby[i+1:]...)
			break
		}
	}
	delete(m.names, n.name)
	n.gone = true
	m.mu.Unlock()
	n.c.close()
	if drained {
		m.cfg.Logf("nettrans: worker %q drained and left the registry", n.name)
	} else {
		m.cfg.Logf("nettrans: worker %q left the lobby: %v", n.name, cause)
	}
	m.notifyRegistry()
}

// Run implements pvm.Transport: wait for the registry to fill, assign
// machine slots, broadcast the job, then execute root here while the
// joined workers host their share of the spawned tasks. This is the
// one-shot mode: it claims every joined worker and the paired Finish
// shuts the master down.
func (m *Master) Run(opts pvm.Options, root pvm.TaskFunc) (float64, error) {
	nodes, err := m.takeWorkers(opts)
	if err != nil {
		return 0, err
	}
	j, err := m.buildJob(nodes, opts)
	if err != nil {
		return 0, err
	}
	m.launch(j, true)
	return m.runJob(j, opts, root)
}

// buildJob lays out one run over the claimed nodes: slot 0 is this
// process, each worker contributes capacity slots. The slot table must
// be complete before the job is published: once a node's job pointer is
// set, frames from (possibly misbehaving) claimed workers are
// dispatched into j and must never observe totalSlots == 0.
func (m *Master) buildJob(nodes []*node, opts pvm.Options) (*job, error) {
	j := &job{
		m:        m,
		opts:     opts,
		nodes:    nodes,
		local:    make(map[pvm.TaskID]*mTask),
		watchers: make(map[pvm.TaskID][]pvm.TaskID),
		start:    time.Now(),
		allDone:  make(chan struct{}),
	}
	slot := 1
	j.speeds = append(j.speeds, 1.0) // the master's reference slot
	for _, n := range nodes {
		n.firstSlot, n.slots = slot, n.capacity
		slot += n.capacity
		for s := 0; s < n.capacity; s++ {
			j.speeds = append(j.speeds, n.speed)
		}
	}
	j.totalSlots = slot
	payload, err := encodePayload(opts.JobPayload)
	if err != nil {
		return nil, err
	}
	j.payload = payload
	return j, nil
}

// launch publishes the job — binding every claimed node to it and
// resetting the nodes' per-job counters — and ships the fJob frames.
//
// The frame fields are snapshotted before publishing: once the job is
// visible, an elastic late joiner may grow the ring concurrently, and
// the initial workers must all receive the consistent job-start ring
// (they learn about growth via fRing afterwards). Holding absorbMu
// across the initial frame writes keeps any absorption — and its fRing
// broadcast — strictly after every initial fJob is on the wire.
func (m *Master) launch(j *job, exclusive bool) {
	startSlots, startSpeeds := j.totalSlots, j.speeds
	j.absorbMu.Lock()
	m.mu.Lock()
	m.active[j] = struct{}{}
	if exclusive {
		m.exclusive = j
	}
	for _, n := range j.nodes {
		n.job = j
		n.sends = 0
		n.bye = make(chan struct{})
	}
	m.mu.Unlock()

	for _, n := range j.nodes {
		err := n.c.write(&frame{
			Type: fJob, Seed: j.opts.Seed, WorkScale: j.opts.RealWorkScale,
			Slot: n.firstSlot, Slots: n.slots, TotalSlots: startSlots,
			Speeds: startSpeeds, Payload: j.payload,
		})
		if err != nil {
			j.nodeLost(n, err)
		}
	}
	j.absorbMu.Unlock()
}

// runJob executes root as the job's task 0 and waits the run out:
// cooperative cancellation is wired to the options context, counters
// are collected from the surviving workers, and an aborted run reports
// pvm.ErrAborted.
func (m *Master) runJob(j *job, opts pvm.Options, root pvm.TaskFunc) (float64, error) {
	// Cooperative cancellation: tasks everywhere observe Cancelled()
	// and drain the protocol; nothing is killed.
	stopCancel := make(chan struct{})
	defer close(stopCancel)
	if ctxDone := doneChan(opts); ctxDone != nil {
		go func() {
			select {
			case <-ctxDone:
				j.cancel()
			case <-stopCancel:
			}
		}()
	}

	j.spawn("root", 0, pvm.Spec{Fn: root}, nil) //nolint:errcheck // an aborting run closes allDone itself
	<-j.allDone
	elapsed := time.Since(j.start).Seconds()

	j.mu.Lock()
	aborted, abortErr := j.aborted, j.abortErr
	j.mu.Unlock()
	if aborted {
		// Workers volunteer their counters while unwinding from fAbort;
		// collect what arrives quickly so even an interrupted result
		// accounts for the surviving nodes' sends.
		j.awaitByes(time.Second)
	} else {
		j.collectByes()
	}
	if opts.Counters != nil {
		opts.Counters.Spawns = j.spawnCount()
		opts.Counters.Sends = j.sendCount()
	}
	if aborted {
		return elapsed, fmt.Errorf("%w: %v", pvm.ErrAborted, abortErr)
	}
	return elapsed, nil
}

// doneChan mirrors pvm's optional-context handling.
func doneChan(opts pvm.Options) <-chan struct{} {
	if opts.Context == nil {
		return nil
	}
	return opts.Context.Done()
}

// takeWorkers blocks until the configured minimum of workers joined,
// then claims every joined worker for the run.
func (m *Master) takeWorkers(opts pvm.Options) ([]*node, error) {
	deadline := time.Now().Add(m.cfg.JoinWait)
	ctxDone := doneChan(opts)
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.lobby) < m.cfg.Workers {
		if m.closed {
			return nil, fmt.Errorf("nettrans: master closed while waiting for workers")
		}
		select {
		case <-ctxDone:
			return nil, fmt.Errorf("nettrans: cancelled while waiting for workers (%d of %d joined)", len(m.lobby), m.cfg.Workers)
		default:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("nettrans: %d of %d workers joined within %v", len(m.lobby), m.cfg.Workers, m.cfg.JoinWait)
		}
		// Timed wait: re-check cancellation and the deadline every 100ms.
		wake := time.AfterFunc(100*time.Millisecond, m.cond.Broadcast)
		m.cond.Wait()
		wake.Stop()
	}
	nodes := m.lobby
	m.lobby = nil
	return nodes, nil
}

// Finish implements pvm.Finisher for the one-shot mode: deliver the
// program's final summary to every surviving worker, then shut the
// master down.
func (m *Master) Finish(summary any) error {
	m.mu.Lock()
	j := m.exclusive
	m.mu.Unlock()
	var firstErr error
	if j != nil {
		nodes := j.nodeList()
		if err := j.deliverResult(summary); err != nil {
			firstErr = err
		}
		for _, n := range nodes {
			n.c.close()
		}
	}
	if err := m.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// deliverResult ships the program's final summary to the job's
// surviving workers.
func (j *job) deliverResult(summary any) error {
	payload, err := encodePayload(summary)
	if err != nil {
		return err
	}
	var firstErr error
	for _, n := range j.nodeList() {
		if !j.ownerAlive(n) {
			continue
		}
		if err := n.c.write(&frame{Type: fResult, Payload: payload}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ErrNoCapacity reports that a Lease asked for more workers than are
// idle in the lobby; callers queue and retry when the registry changes.
var ErrNoCapacity = fmt.Errorf("nettrans: not enough idle workers")

// Lease is a claimed slice of the fleet: the workers it holds belong to
// exactly one run for the lease's lifetime, so concurrent leases never
// share a machine slot. A Lease is a pvm.Transport (Run hosts one run
// on the leased workers, with slot 0 in the master process) and a
// pvm.Finisher (Finish delivers the final summary and returns the
// surviving workers — connections intact — to the lobby). Release is
// the idempotent cleanup for every other path: a lease abandoned before
// Run, or a run that errored before Finish.
type Lease struct {
	m *Master

	mu       sync.Mutex
	nodes    []*node
	j        *job
	released bool
}

// Lease claims workers idle workers for one run, in join (FIFO) order.
// It never blocks: when fewer than workers are idle it fails with
// ErrNoCapacity and claims nothing. workers may be 0 — the run then
// executes entirely in the master process (slot 0 only).
func (m *Master) Lease(workers int) (*Lease, error) {
	if workers < 0 {
		return nil, fmt.Errorf("nettrans: lease of %d workers", workers)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("nettrans: master closed")
	}
	if len(m.lobby) < workers {
		return nil, fmt.Errorf("%w: %d idle, %d requested", ErrNoCapacity, len(m.lobby), workers)
	}
	l := &Lease{m: m, nodes: append([]*node(nil), m.lobby[:workers]...)}
	m.lobby = append([]*node(nil), m.lobby[workers:]...)
	for _, n := range l.nodes {
		n.lease = l
	}
	return l, nil
}

// Workers returns the leased worker names, in claim order.
func (l *Lease) Workers() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.nodes))
	for i, n := range l.nodes {
		out[i] = n.name
	}
	return out
}

// Run implements pvm.Transport: host one run on the leased workers.
// A leased worker that disconnected between Lease and Run fails the
// run up front — the caller decides whether to re-lease and retry.
func (l *Lease) Run(opts pvm.Options, root pvm.TaskFunc) (float64, error) {
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return 0, fmt.Errorf("nettrans: lease already released")
	}
	if l.j != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("nettrans: lease already ran a job")
	}
	nodes := append([]*node(nil), l.nodes...)
	l.mu.Unlock()

	m := l.m
	m.mu.Lock()
	for _, n := range nodes {
		if n.gone {
			m.mu.Unlock()
			return 0, fmt.Errorf("nettrans: leased worker %q was lost before the run started", n.name)
		}
	}
	m.mu.Unlock()

	j, err := m.buildJob(nodes, opts)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.j = j
	l.mu.Unlock()
	m.launch(j, false)
	return m.runJob(j, opts, root)
}

// Finish implements pvm.Finisher: deliver the final summary to the
// leased workers that survived the run, then return them to the lobby
// for the next job.
func (l *Lease) Finish(summary any) error {
	l.mu.Lock()
	j := l.j
	l.mu.Unlock()
	var firstErr error
	if j != nil {
		firstErr = j.deliverResult(summary)
	}
	l.Release()
	return firstErr
}

// Release returns the lease's surviving workers to the lobby and
// retires the lease. Idempotent; called implicitly by Finish. Workers
// lost during the run are not returned — their names were already freed
// for their daemons' reconnects.
func (l *Lease) Release() {
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return
	}
	l.released = true
	j := l.j
	nodes := append([]*node(nil), l.nodes...)
	l.mu.Unlock()

	// A node is returned only when it is still registered (not gone) and
	// still bound to this lease's job — nodeLost retires the gone ones. A
	// dead-but-not-yet-retired node may slip back into the lobby here;
	// its read loop error then retires it from the lobby as usual.
	m := l.m
	m.mu.Lock()
	if j != nil {
		delete(m.active, j)
	}
	if !m.closed {
		for _, n := range nodes {
			if n.gone || n.lease != l {
				continue
			}
			n.lease = nil
			n.job = nil
			m.lobby = append(m.lobby, n)
		}
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	m.notifyRegistry()
}

// job is the state of one distributed run.
type job struct {
	m     *Master
	opts  pvm.Options
	start time.Time

	mu         sync.Mutex
	absorbMu   sync.Mutex // serializes elastic absorptions (stage→write→commit)
	nodes      []*node    // appended to by elastic absorption; snapshot under mu
	totalSlots int
	speeds     []float64                   // slot-indexed declared speeds (slot 0: master, 1.0)
	payload    []byte                      // encoded job payload, kept for absorbed late joiners
	owners     []taskOwner                 // indexed by TaskID
	watchers   map[pvm.TaskID][]pvm.TaskID // watched task -> watcher tasks
	local      map[pvm.TaskID]*mTask
	localLive  int
	remoteLive int
	finished   bool
	allDone    chan struct{}
	aborted    bool
	abortErr   error
	cancelled  bool
	spawns     int64
	localSends int64
}

// nodeList snapshots the job's node set; callers iterate the snapshot
// so elastic absorption can append concurrently.
func (j *job) nodeList() []*node {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*node(nil), j.nodes...)
}

// taskOwner records where a task lives; a nil node means this process.
// lost distinguishes a task written off with its dying node from one
// that finished cleanly — only lost tasks trigger retroactive exit
// notifications when a watch is registered after the fact.
type taskOwner struct {
	node *node
	slot int
	done bool
	lost bool
}

func (j *job) spawnCount() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spawns
}

func (j *job) sendCount() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	total := j.localSends
	for _, n := range j.nodes {
		total += n.sends
	}
	return total
}

// slotOwnerLocked maps a wrapped machine slot to its owning node (nil:
// the master process itself). Callers hold j.mu.
func (j *job) slotOwnerLocked(slot int) *node {
	if slot == 0 {
		return nil
	}
	for _, n := range j.nodes {
		if slot >= n.firstSlot && slot < n.firstSlot+n.slots {
			return n
		}
	}
	return nil
}

// wrapSlotLocked normalizes a machine index onto the slot ring, exactly
// like the in-process transports wrap onto the cluster size. Callers
// hold j.mu (elastic absorption grows the ring mid-run).
func (j *job) wrapSlotLocked(machine int) int {
	return ((machine % j.totalSlots) + j.totalSlots) % j.totalSlots
}

// place resolves a machine index to its slot and owning node.
func (j *job) place(machine int) (slot int, owner *node) {
	j.mu.Lock()
	defer j.mu.Unlock()
	slot = j.wrapSlotLocked(machine)
	return slot, j.slotOwnerLocked(slot)
}

// slotSpeed returns the declared relative speed of a machine slot; the
// master's slot (and any slot outside the table) is the 1.0 reference.
func (j *job) slotSpeed(machine int) float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	slot := j.wrapSlotLocked(machine)
	if slot >= 0 && slot < len(j.speeds) {
		return j.speeds[slot]
	}
	return 1.0
}

// respawnSlot picks the machine slot a replacement task should be
// spawned on: among slots backed by a live process (the master's slot
// 0 plus every alive node's window), prefer one currently hosting no
// unfinished task — absorbed elastic spare capacity — else take the
// least-loaded, lowest index breaking ties. preferred is only a
// fallback for the impossible empty case (the master process itself is
// always alive).
func (j *job) respawnSlot(preferred int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	live := make([]bool, j.totalSlots)
	if j.totalSlots > 0 {
		live[0] = true // the master process
	}
	for _, n := range j.nodes {
		if !n.alive {
			continue
		}
		for s := n.firstSlot; s < n.firstSlot+n.slots && s < j.totalSlots; s++ {
			live[s] = true
		}
	}
	load := make([]int, j.totalSlots)
	for id := range j.owners {
		o := &j.owners[id]
		if !o.done && o.slot >= 0 && o.slot < len(load) {
			load[o.slot]++
		}
	}
	best, bestLoad := -1, int(^uint(0)>>1)
	for s := 0; s < j.totalSlots; s++ {
		if live[s] && load[s] < bestLoad {
			best, bestLoad = s, load[s]
		}
	}
	if best < 0 {
		return preferred
	}
	return best
}

// absorb claims a late-joining worker for the running elastic job: its
// capacity is appended to the slot ring as spare capacity and the job
// frame is shipped so the node is ready to host tasks. It reports false
// when the job has already finished (or aborted), in which case the
// caller parks the node in the lobby as usual.
//
// Ordering matters: the ring must not grow until the worker's fJob
// frame is on the wire, or a concurrent spawn aimed at the new slot
// could reach the still-idle worker ahead of its job frame (a protocol
// violation that would drop the connection and abort the run). So the
// frame is staged from a snapshot, written, and only then committed —
// with concurrent absorptions serialized so two late joiners cannot
// stage the same slot window.
func (j *job) absorb(n *node) bool {
	j.absorbMu.Lock()
	defer j.absorbMu.Unlock()
	j.mu.Lock()
	if j.finished || j.aborted {
		j.mu.Unlock()
		return false
	}
	first := j.totalSlots
	total := first + n.capacity
	speeds := make([]float64, 0, total)
	speeds = append(speeds, j.speeds...)
	for s := 0; s < n.capacity; s++ {
		speeds = append(speeds, n.speed)
	}
	f := &frame{
		Type: fJob, Seed: j.opts.Seed, WorkScale: j.opts.RealWorkScale,
		Slot: first, Slots: n.capacity, TotalSlots: total,
		Speeds: speeds, Payload: j.payload,
	}
	others := append([]*node(nil), j.nodes...)
	j.mu.Unlock()

	if err := n.c.write(f); err != nil {
		// The node never entered the ring; retire it quietly.
		j.nodeLost(n, err)
		return true
	}

	j.mu.Lock()
	n.firstSlot, n.slots = first, n.capacity
	j.totalSlots = total
	j.speeds = speeds
	j.nodes = append(j.nodes, n)
	j.mu.Unlock()
	// Announce the grown ring to the workers already hosting the job so
	// their machine-index wrapping and speed lookups stay consistent
	// with the master's.
	ring := &frame{Type: fRing, TotalSlots: total, Speeds: speeds}
	for _, o := range others {
		if !j.ownerAlive(o) {
			continue
		}
		if err := o.c.write(ring); err != nil {
			j.nodeLost(o, err)
		}
	}
	j.m.cfg.Logf("nettrans: worker %q absorbed into the running job (slots %d..%d, speed %.2f)",
		n.name, first, total-1, n.speed)
	return true
}

// errAborting reports that a spawn was refused because the run is
// already tearing down.
var errAborting = fmt.Errorf("nettrans: run aborting")

// spawn allocates a TaskID and places the task: in this process when
// its slot is the master's, else on the owning worker. payload, when
// non-nil, is the already-encoded spec data (forwarded spawn requests);
// otherwise spec.Data is encoded on demand for remote placement. A
// non-portable spec aimed at a worker slot is a programming error and
// panics; an aborting run returns errAborting.
func (j *job) spawn(fullName string, machine int, spec pvm.Spec, payload []byte) (pvm.TaskID, error) {
	slot, owner := j.place(machine)
	if owner != nil && payload == nil {
		if spec.Kind == "" {
			panic(fmt.Sprintf("nettrans: task %q is not portable (no spec kind) but machine %d belongs to worker %q",
				fullName, machine, owner.name))
		}
		var err error
		payload, err = encodePayload(spec.Data)
		if err != nil {
			panic(fmt.Sprintf("nettrans: spawn %q: %v", fullName, err))
		}
	}

	j.mu.Lock()
	if j.aborted {
		j.mu.Unlock()
		return 0, errAborting
	}
	if owner != nil && !owner.alive {
		// The slot's node died (tolerated) before this spawn: there is no
		// process to host the task, and silently dropping it would hang
		// the protocol — fail the run instead.
		j.mu.Unlock()
		err := fmt.Errorf("nettrans: spawn %q: worker %q is gone", fullName, owner.name)
		j.abort(err)
		return 0, err
	}
	id := pvm.TaskID(len(j.owners))
	var t *mTask
	if owner == nil {
		fn := spec.Fn
		if fn == nil {
			// A spec-only spawn landing on the master's slot (its own
			// task issued no closure, or a worker's request was forwarded
			// here): rebuild the body like a worker would.
			var err error
			fn, err = j.buildTask(spec.Kind, spec.Data, payload)
			if err != nil {
				j.mu.Unlock()
				j.abort(err)
				return 0, err
			}
		}
		t = &mTask{j: j, id: id, name: fullName, machine: slot, fn: fn,
			r: rng.NewChild(j.opts.Seed, "pvm.task", fullName)}
		t.box.init()
		j.local[id] = t
		j.localLive++
	} else {
		j.remoteLive++
	}
	j.owners = append(j.owners, taskOwner{node: owner, slot: slot})
	j.spawns++
	j.mu.Unlock()

	if owner == nil {
		go t.run()
		return id, nil
	}
	err := owner.c.write(&frame{
		Type: fSpawn, Task: id, Name: fullName, Machine: slot,
		Kind: spec.Kind, Payload: payload,
	})
	if err != nil {
		j.nodeLost(owner, err)
	}
	return id, nil
}

// buildTask rebuilds a portable task body via the program's Spawner,
// from the in-process spec data when the spawner gave one, else from
// the encoded payload of a forwarded request. Callers hold j.mu.
func (j *job) buildTask(kind string, data any, payload []byte) (pvm.TaskFunc, error) {
	if j.opts.Spawner == nil {
		return nil, fmt.Errorf("nettrans: no Spawner configured, cannot host remote-spawned task kind %q", kind)
	}
	if data == nil && payload != nil {
		var err error
		data, err = decodePayload(payload)
		if err != nil {
			return nil, err
		}
	}
	return j.opts.Spawner(kind, data)
}

// send routes one message from a master-local task.
func (j *job) send(from, to pvm.TaskID, tag pvm.Tag, data any) {
	j.mu.Lock()
	j.localSends++
	if int(to) < 0 || int(to) >= len(j.owners) {
		j.mu.Unlock()
		panic(fmt.Sprintf("pvm: send to unknown task %d", to))
	}
	owner := j.owners[to]
	var dst *mTask
	if owner.node == nil {
		dst = j.local[to]
	}
	j.mu.Unlock()

	if dst != nil {
		dst.box.deliver(pvm.Message{From: from, Tag: tag, Data: data})
		return
	}
	if owner.node == nil || owner.done {
		return // task of a lost worker: the run is aborting anyway
	}
	payload, err := encodePayload(data)
	if err != nil {
		panic(fmt.Sprintf("nettrans: send tag %d to task %d: %v", tag, to, err))
	}
	if err := owner.node.c.write(&frame{Type: fMsg, From: from, To: to, Tag: tag, Payload: payload}); err != nil {
		j.nodeLost(owner.node, err)
	}
}

// route forwards or delivers a message frame arriving from a worker.
func (j *job) route(src *node, f *frame) {
	j.mu.Lock()
	if int(f.To) < 0 || int(f.To) >= len(j.owners) {
		j.mu.Unlock()
		j.abortFrom(src, fmt.Errorf("message to unknown task %d", f.To))
		return
	}
	owner := j.owners[f.To]
	var dst *mTask
	if owner.node == nil {
		dst = j.local[f.To]
	}
	j.mu.Unlock()

	if dst != nil {
		data, err := decodePayload(f.Payload)
		if err != nil {
			j.abortFrom(src, err)
			return
		}
		dst.box.deliver(pvm.Message{From: f.From, Tag: f.Tag, Data: data})
		return
	}
	if owner.node == nil || !j.ownerAlive(owner.node) {
		return
	}
	if err := owner.node.c.write(f); err != nil {
		j.nodeLost(owner.node, err)
	}
}

func (j *job) ownerAlive(n *node) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return n.alive
}

// handleFrame services one frame from a claimed worker; false stops
// the connection's read loop.
func (j *job) handleFrame(n *node, f *frame) bool {
	switch f.Type {
	case fSpawnReq:
		id, err := j.spawn(f.Name, f.Machine, pvm.Spec{Kind: f.Kind}, f.Payload)
		if err != nil {
			// The run is aborting; the requester unwinds via fAbort.
			return true
		}
		if err := n.c.write(&frame{Type: fSpawnAck, Seq: f.Seq, Task: id}); err != nil {
			j.nodeLost(n, err)
			return false
		}
	case fMsg:
		j.route(n, f)
	case fNotify:
		j.addWatcher(f.Task, f.From)
	case fTaskDone:
		j.taskDone(f.Task)
	case fJobErr:
		j.abortFrom(n, fmt.Errorf("job refused: %s", f.Err))
	case fBye:
		j.mu.Lock()
		n.sends = f.Sends
		j.mu.Unlock()
		select {
		case <-n.bye:
		default:
			close(n.bye)
		}
	case fLeave:
		// A graceful drain mid-job is an orderly loss: the node's tasks
		// are written off through the same watcher machinery as a crash —
		// adaptive runs fold or respawn them, static runs abort — and the
		// worker deregisters cleanly.
		j.nodeLost(n, errDrained)
		return false
	default:
		j.abortFrom(n, fmt.Errorf("unexpected frame type %d", f.Type))
	}
	return true
}

// taskDone marks a remotely hosted task as finished.
func (j *job) taskDone(id pvm.TaskID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if int(id) < 0 || int(id) >= len(j.owners) || j.owners[id].done {
		return
	}
	j.owners[id].done = true
	if j.owners[id].node != nil {
		j.remoteLive--
	}
	j.checkDoneLocked()
}

// localTaskDone marks a master-local task as finished.
func (j *job) localTaskDone(id pvm.TaskID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.owners[id].done {
		return
	}
	j.owners[id].done = true
	j.localLive--
	j.checkDoneLocked()
}

func (j *job) checkDoneLocked() {
	if !j.finished && j.localLive == 0 && j.remoteLive == 0 {
		j.finished = true
		close(j.allDone)
	}
}

// cancel flips the cooperative-cancellation flag everywhere.
func (j *job) cancel() {
	j.mu.Lock()
	if j.cancelled {
		j.mu.Unlock()
		return
	}
	j.cancelled = true
	nodes := append([]*node(nil), j.nodes...)
	j.mu.Unlock()
	for _, n := range nodes {
		if j.ownerAlive(n) {
			n.c.write(&frame{Type: fCancel})
		}
	}
}

func (j *job) isCancelled() bool {
	select {
	case <-doneChanJob(j):
	default:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.cancelled || j.aborted
	}
	return true
}

func doneChanJob(j *job) <-chan struct{} { return doneChan(j.opts) }

// errDrained is the loss cause of a worker that deregistered
// gracefully (SIGTERM drain) while hosting tasks.
var errDrained = fmt.Errorf("worker drained (graceful deregistration)")

// nodeLost handles a worker dying or misbehaving mid-job. When every
// unfinished task the node hosted has a registered exit watcher, the
// loss is survivable: those tasks are written off, each watcher
// receives a pvm.TagExit notification, and the run continues on the
// survivors (graceful degradation — the program's scheduler folds the
// dead node's work back in). A node hosting any unwatched task still
// aborts the whole run, the pre-elastic behavior. After the run
// finished, a dropped connection is just the natural end of the
// session — the node is retired without aborting anything.
func (j *job) nodeLost(n *node, cause error) {
	j.mu.Lock()
	if !n.alive {
		j.mu.Unlock()
		return
	}
	n.alive = false
	finished := j.finished || j.aborted
	var lost []pvm.TaskID
	tolerable := true
	if !finished {
		for id := range j.owners {
			o := &j.owners[id]
			if o.node == n && !o.done {
				lost = append(lost, pvm.TaskID(id))
				if len(j.watchers[pvm.TaskID(id)]) == 0 {
					tolerable = false
				}
			}
		}
	}
	type exit struct {
		dead    pvm.TaskID
		watcher pvm.TaskID
		local   *mTask
		remote  *node
	}
	var exits []exit
	if !finished && tolerable {
		for _, id := range lost {
			j.owners[id].done = true
			j.owners[id].lost = true
			j.remoteLive--
			for _, w := range j.watchers[id] {
				if int(w) >= len(j.owners) {
					continue
				}
				e := exit{dead: id, watcher: w}
				if wo := j.owners[w]; wo.node == nil {
					if e.local = j.local[w]; e.local == nil {
						continue // local watcher already finished
					}
				} else if wo.node.alive && !wo.done {
					e.remote = wo.node
				} else {
					continue // the watcher is gone too
				}
				exits = append(exits, e)
			}
		}
		j.checkDoneLocked()
	}
	j.mu.Unlock()
	n.c.close()
	j.m.retire(n)
	if finished {
		return
	}
	if tolerable {
		j.m.cfg.Logf("nettrans: worker %q lost with %d watched task(s), run continues: %v",
			n.name, len(lost), cause)
		for _, e := range exits {
			if e.local != nil {
				e.local.box.deliver(pvm.Message{From: e.dead, Tag: pvm.TagExit})
				continue
			}
			f := &frame{Type: fMsg, From: e.dead, To: e.watcher, Tag: pvm.TagExit}
			if err := e.remote.c.write(f); err != nil {
				j.nodeLost(e.remote, err)
			}
		}
		return
	}
	j.m.cfg.Logf("nettrans: worker %q lost: %v", n.name, cause)
	j.abort(fmt.Errorf("worker %q lost: %v", n.name, cause))
}

// addWatcher registers watcher for a TagExit notification on watched.
// Like PVM's pvm_notify, a watch on a task that was already written
// off with its dying node is answered immediately — the respawn
// protocol re-arms watches on tasks adopted from a checkpoint, and a
// task that died in the unwatched gap must still be noticed.
func (j *job) addWatcher(watched, watcher pvm.TaskID) {
	j.mu.Lock()
	already := int(watched) >= 0 && int(watched) < len(j.owners) && j.owners[watched].lost
	if !already {
		j.watchers[watched] = append(j.watchers[watched], watcher)
		j.mu.Unlock()
		return
	}
	var local *mTask
	var remote *node
	if int(watcher) < len(j.owners) {
		if wo := j.owners[watcher]; wo.node == nil {
			local = j.local[watcher]
		} else if wo.node.alive && !wo.done {
			remote = wo.node
		}
	}
	j.mu.Unlock()
	if local != nil {
		local.box.deliver(pvm.Message{From: watched, Tag: pvm.TagExit})
		return
	}
	if remote != nil {
		f := &frame{Type: fMsg, From: watched, To: watcher, Tag: pvm.TagExit}
		if err := remote.c.write(f); err != nil {
			j.nodeLost(remote, err)
		}
	}
}

// abortFrom retires a misbehaving worker (protocol violation, job
// refusal) and aborts the run unconditionally: unlike a connection
// loss, misbehavior is never survivable — the node may have corrupted
// state the watcher protocol cannot reason about.
func (j *job) abortFrom(n *node, cause error) {
	j.mu.Lock()
	wasAlive := n.alive
	n.alive = false
	finished := j.finished || j.aborted
	j.mu.Unlock()
	if wasAlive {
		n.c.close()
		j.m.retire(n)
	}
	if finished {
		return
	}
	j.m.cfg.Logf("nettrans: worker %q: %v", n.name, cause)
	j.abort(fmt.Errorf("worker %q: %v", n.name, cause))
}

// abort tears the run down: every remote task is written off, every
// blocked local task unwinds, surviving workers are told to do the
// same. The master's best-so-far state accumulated before the abort
// stays intact, so the program can still report it.
func (j *job) abort(cause error) {
	j.mu.Lock()
	if j.aborted {
		j.mu.Unlock()
		return
	}
	j.aborted = true
	j.abortErr = cause
	for i := range j.owners {
		if j.owners[i].node != nil && !j.owners[i].done {
			j.owners[i].done = true
			j.remoteLive--
		}
	}
	var wake []*mTask
	for _, t := range j.local {
		wake = append(wake, t)
	}
	nodes := append([]*node(nil), j.nodes...)
	j.checkDoneLocked()
	j.mu.Unlock()

	for _, n := range nodes {
		if j.ownerAlive(n) {
			n.c.write(&frame{Type: fAbort})
		}
	}
	for _, t := range wake {
		t.box.wake()
	}
}

func (j *job) isAborted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.aborted
}

// collectByes gathers per-worker send counters after a clean drain.
func (j *job) collectByes() {
	for _, n := range j.nodeList() {
		if !j.ownerAlive(n) {
			continue
		}
		if err := n.c.write(&frame{Type: fEndJob}); err != nil {
			j.nodeLost(n, err)
		}
	}
	j.awaitByes(j.m.cfg.ByeWait)
}

// awaitByes waits up to d for the counter reports of workers that are
// still reachable; whatever fails to arrive is simply not counted.
func (j *job) awaitByes(d time.Duration) {
	timeout := time.After(d)
	for _, n := range j.nodeList() {
		if !j.ownerAlive(n) {
			continue
		}
		select {
		case <-n.bye:
		case <-timeout:
			return
		}
	}
}

// mTask is a task hosted in the master process.
type mTask struct {
	j       *job
	id      pvm.TaskID
	name    string
	machine int
	fn      pvm.TaskFunc
	r       *rand.Rand
	box     mailbox
}

var _ pvm.Env = (*mTask)(nil)

func (t *mTask) run() {
	pvm.RunTask(t, t.fn)
	t.j.localTaskDone(t.id)
}

func (t *mTask) Self() pvm.TaskID  { return t.id }
func (t *mTask) Name() string      { return t.name }
func (t *mTask) MachineIndex() int { return t.machine }
func (t *mTask) Rand() *rand.Rand  { return t.r }
func (t *mTask) Now() float64      { return time.Since(t.j.start).Seconds() }
func (t *mTask) Cancelled() bool   { return t.j.isCancelled() }

// NotifyExit implements pvm.ExitNotifier against the job's watcher
// registry.
func (t *mTask) NotifyExit(id pvm.TaskID) { t.j.addWatcher(id, t.id) }

// MachineSpeed implements pvm.SpeedReporter from the registry's
// declared node speeds.
func (t *mTask) MachineSpeed(machine int) float64 { return t.j.slotSpeed(machine) }

// RespawnSlot implements pvm.RespawnPlacer: spare absorbed capacity
// first, else the least-loaded surviving node.
func (t *mTask) RespawnSlot(preferred int) int { return t.j.respawnSlot(preferred) }

// AbortRun implements pvm.RunAborter: the program declared a loss
// unrecoverable, so tear the run down like a fatal transport failure.
func (t *mTask) AbortRun(cause error) { t.j.abort(cause) }

func (t *mTask) Spawn(name string, machine int, fn pvm.TaskFunc) pvm.TaskID {
	return t.SpawnSpec(name, machine, pvm.Spec{Fn: fn})
}

func (t *mTask) SpawnSpec(name string, machine int, spec pvm.Spec) pvm.TaskID {
	id, err := t.j.spawn(t.name+"/"+name, machine, spec, nil)
	if err != nil {
		pvm.AbortTask()
	}
	return id
}

func (t *mTask) Send(to pvm.TaskID, tag pvm.Tag, data any) {
	t.j.send(t.id, to, tag, data)
}

func (t *mTask) Recv(tags ...pvm.Tag) pvm.Message {
	return t.box.recv(t.j.isAborted, tags)
}

func (t *mTask) TryRecv(tags ...pvm.Tag) (pvm.Message, bool) {
	return t.box.tryRecv(tags)
}

func (t *mTask) Work(seconds float64) {
	scale := t.j.opts.RealWorkScale
	if seconds <= 0 || scale <= 0 {
		return
	}
	// The master's slot is the reference speed-1.0 machine.
	time.Sleep(time.Duration(seconds * scale * float64(time.Second)))
}
