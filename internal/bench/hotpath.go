package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/tabu"
)

// Hot-path microbenchmark driver: measures the trial-evaluation kernels
// (the batched DeltaSwapBatch a CLW now runs per candidate batch, plus
// the per-call SwapDelta reference) and the commit kernel (ApplySwap)
// on the paper's circuits, in-process and without the testing package,
// so cmd/ptsbench -hotpath can emit machine-readable numbers for the
// perf trajectory. The per-worker trial throughput is what bounds the
// whole parallel search (Figs. 5–8): every CLW iteration is one batched
// evaluation of Trials candidates plus one ApplySwap.

// hotpathBatch is the candidate-batch size of the headline measurement,
// matching the compound-move batches the engine hands DeltaSwapBatch.
const hotpathBatch = 64

// hotpathReps is the best-of-K repetition count: each kernel is timed K
// times and the fastest window is reported. The minimum is the right
// estimator on shared machines — interference only ever adds time — and
// it is what the CI regression guard compares.
const hotpathReps = 5

// HotpathResult is the measurement for one circuit.
//
// Schema notes: ns_per_trial is the batched kernel (batch_size
// candidates per DeltaSwapBatch call) when batch_size is present;
// entries without batch_size predate the batched hot path and measured
// per-call SwapDelta instead. ns_per_apply is absent when the apply
// kernel was not measured — old baselines recorded 0 for circuits the
// pre-PR2 harness skipped, and 0 there means "not measured", never "free".
type HotpathResult struct {
	Circuit string `json:"circuit"`
	Cells   int    `json:"cells"`
	Nets    int    `json:"nets"`
	Pins    int    `json:"pins"`

	BatchSize        int     `json:"batch_size,omitempty"`
	NsPerTrial       float64 `json:"ns_per_trial"`
	TrialsPerSec     float64 `json:"trials_per_sec"`
	NsPerTrialScalar float64 `json:"ns_per_trial_scalar,omitempty"`
	AllocsPerTrial   float64 `json:"allocs_per_trial"`
	NsPerApply       float64 `json:"ns_per_apply,omitempty"`
}

// HotpathReport is the BENCH_hotpath.json schema. Baseline carries the
// previously committed results for before/after comparison; WriteHotpath
// fills it from the file being replaced, so regenerating the report
// always keeps the numbers it superseded.
type HotpathReport struct {
	Note            string          `json:"note,omitempty"`
	GoVersion       string          `json:"go_version"`
	GeneratedAt     string          `json:"generated_at"`
	BaselineComment string          `json:"baseline_comment,omitempty"`
	Baseline        []HotpathResult `json:"baseline,omitempty"`
	Results         []HotpathResult `json:"results"`
}

// measure runs fn in timed batches until targetDur is spent and returns
// ns/op and allocs/op.
func measure(targetDur time.Duration, fn func(i int)) (nsPerOp, allocsPerOp float64) {
	const batch = 4096
	var ms0, ms1 runtime.MemStats
	// Warm-up batch (populates caches and scratch buffers).
	for i := 0; i < batch; i++ {
		fn(i)
	}
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops := 0
	// At least one timed batch, so a degenerate duration can never yield
	// a zero-op (Inf/NaN) measurement.
	for ops == 0 || time.Since(start) < targetDur {
		for i := 0; i < batch; i++ {
			fn(ops + i)
		}
		ops += batch
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(elapsed.Nanoseconds()) / float64(ops),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
}

// measureBest splits targetDur into hotpathReps independent measurement
// windows and returns the fastest (and the worst-case allocs/op, so an
// allocation regression can never hide in a lucky window).
func measureBest(targetDur time.Duration, fn func(i int)) (nsPerOp, allocsPerOp float64) {
	for rep := 0; rep < hotpathReps; rep++ {
		ns, allocs := measure(targetDur/hotpathReps, fn)
		if rep == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if allocs > allocsPerOp {
			allocsPerOp = allocs
		}
	}
	return nsPerOp, allocsPerOp
}

// Hotpath measures the trial-evaluation and commit kernels on the named
// circuits (default: the paper's four) for roughly dur per kernel.
func Hotpath(circuits []string, dur time.Duration) (*HotpathReport, error) {
	if len(circuits) == 0 {
		circuits = netlist.BenchmarkNames()
	}
	if dur <= 0 {
		dur = time.Second
	}
	rep := &HotpathReport{
		Note:        fmt.Sprintf("trial-evaluation hot path, batched kernel headline (best of %d windows); regenerate with: ptsbench -hotpath", hotpathReps),
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, name := range circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
		if err != nil {
			return nil, err
		}
		p.Randomize(rand.New(rand.NewSource(1)))
		ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pairs := netlist.BenchmarkPairs(1024, nl.NumCells())
		st := nl.ComputeStats()

		// The same 1024-pair workload the scalar kernel draws from,
		// grouped hotpathBatch at a time into rotating pre-built batches,
		// so the timer sees only the kernel.
		batches := make([][]tabu.SwapCand, len(pairs)/hotpathBatch)
		for bi := range batches {
			cands := make([]tabu.SwapCand, hotpathBatch)
			for i := range cands {
				pr := pairs[bi*hotpathBatch+i]
				cands[i] = tabu.SwapCand{A: int32(pr[0]), B: int32(pr[1])}
			}
			batches[bi] = cands
		}
		out := make([]float64, hotpathBatch)

		batchNs, batchAllocs := measureBest(dur, func(i int) {
			ev.DeltaSwapBatch(batches[i%len(batches)], out)
		})
		scalarNs, _ := measureBest(dur/2, func(i int) {
			pr := pairs[i&1023]
			ev.SwapDelta(pr[0], pr[1])
		})
		applyNs, _ := measureBest(dur/4, func(i int) {
			pr := pairs[i&1023]
			ev.ApplySwap(pr[0], pr[1])
		})
		trialNs := batchNs / hotpathBatch
		rep.Results = append(rep.Results, HotpathResult{
			Circuit:          name,
			Cells:            st.Cells,
			Nets:             st.Nets,
			Pins:             st.Pins,
			BatchSize:        hotpathBatch,
			NsPerTrial:       trialNs,
			TrialsPerSec:     1e9 / trialNs,
			NsPerTrialScalar: scalarNs,
			AllocsPerTrial:   batchAllocs / hotpathBatch,
			NsPerApply:       applyNs,
		})
	}
	return rep, nil
}

// WriteHotpath writes the report as <dir>/BENCH_hotpath.json. When the
// file already exists, its results become the new file's baseline (with
// a comment recording their provenance), so the before/after comparison
// always spans exactly one regeneration.
func WriteHotpath(rep *HotpathReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_hotpath.json")
	if prev, err := os.ReadFile(path); err == nil {
		var old HotpathReport
		if json.Unmarshal(prev, &old) == nil && len(old.Results) > 0 {
			rep.Baseline = old.Results
			rep.BaselineComment = fmt.Sprintf("previous committed results (%s, %s)", old.GeneratedAt, old.GoVersion)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadHotpath loads a BENCH_hotpath.json report.
func ReadHotpath(path string) (*HotpathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep HotpathReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// HotpathGuard checks a freshly regenerated report (whose baseline
// WriteHotpath filled with the previously committed results) for a
// throughput regression on one circuit: it fails when the new trials/sec
// falls more than tolerance below the baseline's, and when the batched
// kernel allocates. The CI bench-smoke job runs it after ptsbench
// -hotpath so a kernel change that loses more than the tolerance shows
// up as a red build, not a quietly worse committed number.
func HotpathGuard(rep *HotpathReport, circuit string, tolerance float64) (string, error) {
	find := func(rs []HotpathResult) *HotpathResult {
		for i := range rs {
			if rs[i].Circuit == circuit {
				return &rs[i]
			}
		}
		return nil
	}
	cur := find(rep.Results)
	if cur == nil {
		return "", fmt.Errorf("hotpath guard: circuit %q not in results", circuit)
	}
	if cur.AllocsPerTrial != 0 {
		return "", fmt.Errorf("hotpath guard: %s allocates %.2f/trial, want 0", circuit, cur.AllocsPerTrial)
	}
	base := find(rep.Baseline)
	if base == nil {
		return fmt.Sprintf("hotpath guard: no %s baseline to compare against (first run)", circuit), nil
	}
	floor := base.TrialsPerSec * (1 - tolerance)
	msg := fmt.Sprintf("hotpath guard: %s %.0f trials/sec vs baseline %.0f (floor %.0f at %.0f%% tolerance)",
		circuit, cur.TrialsPerSec, base.TrialsPerSec, floor, tolerance*100)
	if cur.TrialsPerSec < floor {
		return "", fmt.Errorf("%s: REGRESSION", msg)
	}
	return msg + ": ok", nil
}

// RenderHotpath renders the report as an aligned text table, with
// speedup columns when a baseline is present.
func RenderHotpath(rep *HotpathReport) string {
	base := make(map[string]HotpathResult, len(rep.Baseline))
	for _, r := range rep.Baseline {
		base[r.Circuit] = r
	}
	out := fmt.Sprintf("hot path (%s)\n%-10s %8s %6s %10s %14s %10s %12s %10s\n",
		rep.GoVersion, "circuit", "cells", "batch", "ns/trial", "trials/sec", "ns/scalar", "allocs/trial", "ns/apply")
	for _, r := range rep.Results {
		out += fmt.Sprintf("%-10s %8d %6d %10.1f %14.0f %10.1f %12.2f %10.1f",
			r.Circuit, r.Cells, r.BatchSize, r.NsPerTrial, r.TrialsPerSec, r.NsPerTrialScalar, r.AllocsPerTrial, r.NsPerApply)
		if b, ok := base[r.Circuit]; ok && r.NsPerTrial > 0 {
			out += fmt.Sprintf("   (%.2fx trials/sec vs baseline)", b.NsPerTrial/r.NsPerTrial)
		}
		out += "\n"
	}
	return out
}
