#!/usr/bin/env bash
# Documentation drift check (CI-blocking): ARCHITECTURE.md's wire-
# protocol table must stay in lockstep with the code.
#
#  1. Every Tag* constant declared in internal/core/messages.go (plus
#     the reserved pvm.TagExit) must appear as a `| `Tag...` |` table
#     row in ARCHITECTURE.md.
#  2. Every Tag* named in an ARCHITECTURE.md table row must still
#     exist in the code — removed messages cannot linger in the doc.
#
# Usage: scripts/check-docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# Tags declared in the protocol (the const block's identifiers).
code_tags=$(grep -oE '^	Tag[A-Za-z0-9]+' internal/core/messages.go | tr -d '\t' | sort -u)
code_tags="$code_tags
TagExit"

for tag in $code_tags; do
  if ! grep -qE "^\| \`$tag\` \|" ARCHITECTURE.md; then
    echo "FAIL: $tag is in the protocol but has no table row in ARCHITECTURE.md"
    fail=1
  fi
done

# Tags documented in ARCHITECTURE.md table rows.
doc_tags=$(grep -oE '^\| `Tag[A-Za-z0-9]+` \|' ARCHITECTURE.md | grep -oE 'Tag[A-Za-z0-9]+' | sort -u)
for tag in $doc_tags; do
  if [ "$tag" = "TagExit" ]; then
    grep -q "TagExit" internal/pvm/pvm.go && continue
  fi
  if ! grep -qE "^	$tag( |$)" internal/core/messages.go; then
    echo "FAIL: ARCHITECTURE.md documents $tag, which no longer exists in internal/core/messages.go"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "ARCHITECTURE.md's wire-protocol table is out of sync with the code."
  exit 1
fi
n=$(echo "$code_tags" | wc -l | tr -d ' ')
echo "PASS: all $n protocol tags documented in ARCHITECTURE.md, no stale rows"
