package pts

// One benchmark per data figure of the paper (5–11), plus the ablation
// benches DESIGN.md §6 calls out. The figure benches run their driver
// at a reduced scale so `go test -bench=.` stays tractable; the full
// paper-scale figures are regenerated with `go run ./cmd/ptsbench`.

import (
	"testing"

	"pts/internal/bench"
	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/tabu"
)

// benchOpts is the reduced-scale configuration of the figure benches.
func benchOpts() bench.Opts {
	return bench.Opts{
		Scale:    0.15,
		Repeats:  1,
		Seed:     2003,
		Circuits: []string{"highway", "c532"},
	}
}

func runFigure(b *testing.B, driver func(bench.Opts) (*bench.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := driver(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series) == 0 {
			b.Fatal("figure produced no data")
		}
	}
}

func BenchmarkFig05CLWQuality(b *testing.B)      { runFigure(b, bench.Fig5) }
func BenchmarkFig06CLWSpeedup(b *testing.B)      { runFigure(b, bench.Fig6) }
func BenchmarkFig07TSWQuality(b *testing.B)      { runFigure(b, bench.Fig7) }
func BenchmarkFig08TSWSpeedup(b *testing.B)      { runFigure(b, bench.Fig8) }
func BenchmarkFig09Diversification(b *testing.B) { runFigure(b, bench.Fig9) }
func BenchmarkFig10LocalVsGlobal(b *testing.B)   { runFigure(b, bench.Fig10) }
func BenchmarkFig11Heterogeneity(b *testing.B)   { runFigure(b, bench.Fig11) }

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationHalfSyncOn/Off quantify what the heterogeneity
// adaptation buys per run on the loaded 12-machine testbed.
func benchHalfSync(b *testing.B, half bool) {
	b.Helper()
	nl := netlist.MustBenchmark("c532")
	clus := cluster.Testbed12(12)
	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = 4, 4
	cfg.GlobalIters, cfg.LocalIters = 4, 16
	cfg.HalfSync = half
	virt := 0.0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := core.Run(nl, clus, cfg, core.Virtual)
		if err != nil {
			b.Fatal(err)
		}
		virt += res.Elapsed
	}
	b.ReportMetric(virt/float64(b.N), "vsec/run")
}

func BenchmarkAblationHalfSyncOn(b *testing.B)  { benchHalfSync(b, true) }
func BenchmarkAblationHalfSyncOff(b *testing.B) { benchHalfSync(b, false) }

// BenchmarkAblationIncremental/FullCost compare the incremental swap
// evaluation against recomputing the objectives from scratch — the
// bookkeeping the whole search rests on.
func BenchmarkAblationIncrementalCost(b *testing.B) {
	ev := newBenchEvaluator(b)
	r := rng.New(1)
	n := int(ev.NumCells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.ApplySwap(netlist.CellID(r.Intn(n)), netlist.CellID(r.Intn(n)))
	}
}

func BenchmarkAblationFullCostRefresh(b *testing.B) {
	ev := newBenchEvaluator(b)
	r := rng.New(1)
	n := int(ev.NumCells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.ApplySwap(netlist.CellID(r.Intn(n)), netlist.CellID(r.Intn(n)))
		ev.Refresh() // what every move would cost without incrementality
	}
}

func newBenchEvaluator(b *testing.B) *cost.Evaluator {
	b.Helper()
	nl := netlist.MustBenchmark("c1355")
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		b.Fatal(err)
	}
	p.Randomize(rng.New(7))
	ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkSequentialTS is the single-threaded engine reference point
// the parallel speedups are judged against.
func BenchmarkSequentialTS(b *testing.B) {
	ev := newBenchEvaluator(b)
	s := tabu.NewSearch(cost.Problem{Ev: ev}, tabu.Params{
		Tenure: 10, Trials: 12, Depth: 4, RefreshEvery: 64, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkAblationAssignment{Interleaved,Blocked} compare the two
// task-to-machine policies on the idle heterogeneous testbed: blocked
// groups make whole TSWs fast or slow, the regime where the paper's
// master-level half-sync matters most.
func benchAssignment(b *testing.B, asg core.Assignment) {
	b.Helper()
	nl := netlist.MustBenchmark("c532")
	clus := cluster.Testbed12(0)
	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = 4, 2
	cfg.GlobalIters, cfg.LocalIters = 4, 16
	cfg.Assignment = asg
	virt := 0.0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := core.Run(nl, clus, cfg, core.Virtual)
		if err != nil {
			b.Fatal(err)
		}
		virt += res.Elapsed
	}
	b.ReportMetric(virt/float64(b.N), "vsec/run")
}

func BenchmarkAblationAssignInterleaved(b *testing.B) { benchAssignment(b, core.AssignInterleaved) }
func BenchmarkAblationAssignBlocked(b *testing.B)     { benchAssignment(b, core.AssignBlocked) }

// BenchmarkAblationCorrelatedWorkers quantifies the redundancy of
// identically-seeded workers (the Fig. 9 discussion in EXPERIMENTS.md).
func BenchmarkAblationCorrelatedWorkers(b *testing.B) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Homogeneous(12, 1)
	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = 4, 1
	cfg.GlobalIters, cfg.LocalIters = 4, 16
	cfg.CorrelatedWorkers = true
	best := 0.0
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := core.Run(nl, clus, cfg, core.Virtual)
		if err != nil {
			b.Fatal(err)
		}
		best += res.BestCost
	}
	b.ReportMetric(best/float64(b.N), "cost/run")
}

// BenchmarkSequentialBaseline runs the no-parallelization reference
// (core.RunSequential) at the same budget as the runtime benches.
func BenchmarkSequentialBaseline(b *testing.B) {
	nl := netlist.MustBenchmark("highway")
	cfg := core.DefaultConfig()
	cfg.GlobalIters, cfg.LocalIters = 3, 10
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := core.RunSequential(nl, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtualRuntime and BenchmarkRealRuntime time one identical
// small PTS run on both runtimes: the difference is the discrete-event
// kernel's overhead versus true goroutine parallelism.
func BenchmarkVirtualRuntime(b *testing.B) {
	benchRuntime(b, core.Virtual)
}

func BenchmarkRealRuntime(b *testing.B) {
	benchRuntime(b, core.Real)
}

func benchRuntime(b *testing.B, mode core.Mode) {
	b.Helper()
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Homogeneous(12, 1)
	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = 4, 2
	cfg.GlobalIters, cfg.LocalIters = 3, 10
	if mode == core.Real {
		cfg.WorkPerTrial = 0
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := core.Run(nl, clus, cfg, mode); err != nil {
			b.Fatal(err)
		}
	}
}
