package tabu_test

import (
	"math"
	"testing"

	"pts/internal/rng"
	"pts/internal/tabu"
)

func TestEliteSetOrdering(t *testing.T) {
	e := tabu.NewEliteSet(3)
	if e.Len() != 0 || !math.IsInf(e.Best(), 1) || !math.IsInf(e.Worst(), 1) {
		t.Fatal("empty elite set wrong")
	}
	snaps := [][]int32{{1}, {2}, {3}, {4}}
	if !e.Offer(5, snaps[0]) || !e.Offer(3, snaps[1]) || !e.Offer(7, snaps[2]) {
		t.Fatal("offers to non-full set rejected")
	}
	if e.Best() != 3 || e.Worst() != 7 || e.Len() != 3 {
		t.Fatalf("best/worst wrong: %v %v", e.Best(), e.Worst())
	}
	// Better than worst: replaces it.
	if !e.Offer(4, snaps[3]) {
		t.Fatal("improving offer rejected")
	}
	if e.Worst() != 5 || e.Len() != 3 {
		t.Fatalf("eviction wrong: worst %v len %d", e.Worst(), e.Len())
	}
	// Worse than everything: rejected.
	if e.Offer(100, snaps[0]) {
		t.Fatal("worst offer accepted into full set")
	}
	// Duplicate cost: rejected.
	if e.Offer(4, snaps[0]) {
		t.Fatal("duplicate cost accepted")
	}
}

func TestEliteSetCopiesSnapshots(t *testing.T) {
	e := tabu.NewEliteSet(2)
	snap := []int32{1, 2, 3}
	e.Offer(1, snap)
	snap[0] = 99 // caller mutates after offering
	_, got, ok := e.Pick(rng.New(1), 0)
	if !ok || got[0] != 1 {
		t.Fatal("elite set shares the caller's snapshot")
	}
	got[1] = 42 // caller mutates the picked copy
	_, again, _ := e.Pick(rng.New(1), 0)
	if again[1] != 2 {
		t.Fatal("Pick returns a shared snapshot")
	}
}

func TestEliteSetPickRanks(t *testing.T) {
	e := tabu.NewEliteSet(4)
	for i, c := range []float64{4, 2, 8, 6} {
		e.Offer(c, []int32{int32(i)})
	}
	r := rng.New(3)
	if c, _, _ := e.Pick(r, 0); c != 2 {
		t.Fatalf("rank 0 = %v, want 2", c)
	}
	if c, _, _ := e.Pick(r, 99); c != 8 {
		t.Fatalf("clamped rank = %v, want 8", c)
	}
	// Random rank returns one of the stored costs.
	for i := 0; i < 20; i++ {
		c, _, ok := e.Pick(r, -1)
		if !ok || (c != 2 && c != 4 && c != 6 && c != 8) {
			t.Fatalf("random pick returned %v", c)
		}
	}
	var empty tabu.EliteSet
	_ = empty
	e2 := tabu.NewEliteSet(1)
	if _, _, ok := e2.Pick(r, -1); ok {
		t.Fatal("pick from empty set succeeded")
	}
}

func TestIntensifyRestartsFromElite(t *testing.T) {
	prob := qapProblem(t, 25, 60)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 8, Trials: 8, Depth: 2, Seed: 5})
	elite := tabu.NewEliteSet(4)
	for i := 0; i < 200; i++ {
		s.Step()
		elite.Offer(prob.Cost(), prob.Snapshot())
	}
	if elite.Len() == 0 {
		t.Fatal("no elites collected")
	}
	// Scramble the current solution badly.
	for i := int32(0); i < 10; i++ {
		prob.ApplySwap(i, i+10)
	}
	scrambled := prob.Cost()
	if !s.Intensify(elite) {
		t.Fatal("intensify failed")
	}
	if prob.Cost() >= scrambled {
		t.Fatalf("intensify did not restore an elite: %v >= %v", prob.Cost(), scrambled)
	}
	if prob.Cost() > elite.Worst()+1e-9 {
		t.Fatalf("restored cost %v worse than elite worst %v", prob.Cost(), elite.Worst())
	}
	if s.List.Len() != 0 {
		t.Fatal("intensify should clear the tabu list")
	}
}

func TestIntensifyEmptyElite(t *testing.T) {
	prob := qapProblem(t, 10, 61)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 5, Trials: 4, Depth: 2, Seed: 6})
	if s.Intensify(tabu.NewEliteSet(3)) {
		t.Fatal("intensify from empty elite set reported success")
	}
}

// An intensified long run should do at least as well as a plain one on
// average; here we only assert it functions end-to-end and never
// worsens the incumbent (which is restore-proof by construction).
func TestIntensifiedRunKeepsIncumbent(t *testing.T) {
	prob := qapProblem(t, 30, 62)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 10, Trials: 8, Depth: 3, Seed: 7})
	elite := tabu.NewEliteSet(5)
	var incumbent []float64
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			s.Step()
			elite.Offer(prob.Cost(), prob.Snapshot())
		}
		incumbent = append(incumbent, s.BestCost())
		s.Intensify(elite)
	}
	for i := 1; i < len(incumbent); i++ {
		if incumbent[i] > incumbent[i-1]+1e-9 {
			t.Fatalf("incumbent worsened across intensification: %v", incumbent)
		}
	}
}
