// Package placement provides the standard-cell layout substrate: a
// row/slot grid, assignment of cells to slots, exact incremental
// half-perimeter wirelength (HPWL), and the row-width area model.
//
// Geometry follows the classic iterative-placement simplification the
// paper's era used: cells sit in uniform slots arranged in rows, and net
// length is measured between slot centers (x = column, y = row, in slot
// units). Cell widths still matter for the area objective: a row's width
// is the sum of its cells' physical widths, and the layout's area is
// proportional to the widest row.
package placement

import (
	"fmt"
	"math"

	"pts/internal/netlist"
)

// Layout describes the slot grid.
type Layout struct {
	Rows, Cols int
}

// Slots returns the total number of slots.
func (l Layout) Slots() int { return l.Rows * l.Cols }

// Validate reports an error for a degenerate layout.
func (l Layout) Validate() error {
	if l.Rows <= 0 || l.Cols <= 0 {
		return fmt.Errorf("placement: degenerate layout %dx%d", l.Rows, l.Cols)
	}
	return nil
}

// AutoLayout chooses a near-square grid with enough slots for every cell
// at the requested utilization (cells/slots). Utilization outside (0,1]
// defaults to 0.9, the typical standard-cell row fill the paper's flows
// used.
func AutoLayout(nl *netlist.Netlist, utilization float64) Layout {
	if utilization <= 0 || utilization > 1 {
		utilization = 0.9
	}
	n := nl.NumCells()
	slots := int(math.Ceil(float64(n) / utilization))
	if slots < n {
		slots = n
	}
	cols := int(math.Ceil(math.Sqrt(float64(slots))))
	if cols < 1 {
		cols = 1
	}
	rows := (slots + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	return Layout{Rows: rows, Cols: cols}
}

// Pos is a slot coordinate.
type Pos struct {
	Row, Col int32
}

// SlotIndex maps a position to its linear slot index.
func (l Layout) SlotIndex(p Pos) int { return int(p.Row)*l.Cols + int(p.Col) }

// SlotPos maps a linear slot index back to a position.
func (l Layout) SlotPos(idx int) Pos {
	return Pos{Row: int32(idx / l.Cols), Col: int32(idx % l.Cols)}
}
