// Package anneal implements simulated annealing over the same Problem
// interface the tabu engine uses.
//
// The paper's introduction positions tabu search against the memoryless
// stochastic heuristics — simulated annealing first among them [2,3] —
// so the repository ships SA as the reference baseline: identical cost
// model, identical swap neighborhood, only the acceptance rule differs
// (Metropolis instead of best-of-candidate-list with memory).
package anneal

import (
	"fmt"
	"math"

	"pts/internal/rng"
	"pts/internal/stats"
	"pts/internal/tabu"
)

// Config parameterizes a run.
type Config struct {
	// InitialTemp is the starting temperature; 0 auto-calibrates so
	// that about 80% of uphill moves are initially accepted (the
	// classic Kirkpatrick-style warm start).
	InitialTemp float64
	// FinalTemp stops the schedule (default: InitialTemp/1e4).
	FinalTemp float64
	// Alpha is the geometric cooling rate in (0,1); default 0.95.
	Alpha float64
	// MovesPerTemp is the number of proposed swaps per temperature;
	// default 16 x problem size.
	MovesPerTemp int
	// Seed drives proposals and acceptance.
	Seed uint64
}

// withDefaults fills the documented defaults for problem size n.
func (c Config) withDefaults(n int32) Config {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.95
	}
	if c.MovesPerTemp <= 0 {
		c.MovesPerTemp = 16 * int(n)
	}
	return c
}

// Validate reports nonsensical parameters.
func (c Config) Validate() error {
	if c.InitialTemp < 0 || c.FinalTemp < 0 {
		return fmt.Errorf("anneal: negative temperature")
	}
	if c.Alpha != 0 && (c.Alpha <= 0 || c.Alpha >= 1) {
		return fmt.Errorf("anneal: alpha %v outside (0,1)", c.Alpha)
	}
	return nil
}

// Result reports a run's outcome.
type Result struct {
	BestCost  float64
	BestSnap  []int32
	Steps     int64
	Accepted  int64
	Uphill    int64 // accepted strictly-worsening moves
	FinalTemp float64
	// Trace records (temperature index, best cost) per temperature.
	Trace stats.Trace
}

// Minimize runs simulated annealing on prob and returns the best
// solution found. prob is left at the last visited solution; restore
// Result.BestSnap for the best one.
func Minimize(prob tabu.Problem, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := prob.Size()
	cfg = cfg.withDefaults(n)
	r := rng.New(rng.Derive(cfg.Seed, "anneal"))
	res := &Result{
		BestCost: prob.Cost(),
		BestSnap: prob.Snapshot(),
	}
	if n < 2 {
		return res, nil
	}

	propose := func() (int32, int32) {
		a := int32(r.Intn(int(n)))
		b := int32(r.Intn(int(n) - 1))
		if b >= a {
			b++
		}
		return a, b
	}

	temp := cfg.InitialTemp
	if temp <= 0 {
		temp = calibrate(prob, r, propose)
	}
	final := cfg.FinalTemp
	if final <= 0 {
		final = temp / 1e4
	}
	if final > temp {
		return nil, fmt.Errorf("anneal: FinalTemp %v above InitialTemp %v", final, temp)
	}

	for ti := 0; temp > final; ti++ {
		for m := 0; m < cfg.MovesPerTemp; m++ {
			a, b := propose()
			delta := prob.DeltaSwap(a, b)
			res.Steps++
			accept := delta <= 0
			if !accept {
				accept = r.Float64() < math.Exp(-delta/temp)
				if accept {
					res.Uphill++
				}
			}
			if !accept {
				continue
			}
			prob.ApplySwap(a, b)
			res.Accepted++
			if c := prob.Cost(); c < res.BestCost {
				res.BestCost = c
				res.BestSnap = prob.Snapshot()
			}
		}
		if rf, ok := prob.(tabu.Refresher); ok {
			rf.Refresh()
			if c := prob.Cost(); c < res.BestCost {
				res.BestCost = c
				res.BestSnap = prob.Snapshot()
			}
		}
		res.Trace.Record(float64(ti), res.BestCost)
		temp *= cfg.Alpha
	}
	res.FinalTemp = temp
	return res, nil
}

// calibrate samples uphill deltas from the initial solution and returns
// the temperature at which ~80% of them would be accepted.
func calibrate(prob tabu.Problem, r interface{ Intn(int) int }, propose func() (int32, int32)) float64 {
	const samples = 200
	sumUp, nUp := 0.0, 0
	for i := 0; i < samples; i++ {
		a, b := propose()
		if d := prob.DeltaSwap(a, b); d > 0 {
			sumUp += d
			nUp++
		}
	}
	if nUp == 0 {
		return 1 // degenerate landscape: any positive temperature works
	}
	mean := sumUp / float64(nUp)
	return -mean / math.Log(0.8)
}
