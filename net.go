package pts

import (
	"context"
	"fmt"
	"os"

	"pts/internal/core"
	"pts/internal/pvm"
	"pts/internal/pvm/nettrans"
)

// Transport selects how a real-time run passes messages between the
// master, TSW and CLW tasks. The zero value (and the default) is the
// in-process transport: every task is a goroutine of the calling
// process. A NetMaster's Transport runs the identical protocol across
// OS processes over TCP.
type Transport struct {
	t pvm.Transport
}

// InProcessTransport returns the default transport explicitly. Like
// every explicit transport it implies WithRealTime — pass no transport
// at all for virtual-time runs.
func InProcessTransport() Transport { return Transport{t: pvm.InProcess()} }

// NetMaster is the master side of a distributed run: a TCP listener
// plus a registry of joined worker processes, each contributing machine
// slots with a declared relative speed — the heterogeneity knobs the
// simulated cluster expresses as machine speed factors. One NetMaster
// hosts one Solve; create it ahead of time (rather than via WithListen)
// when you need the bound address before workers can dial in.
type NetMaster struct {
	m *nettrans.Master
}

// ListenMaster binds addr immediately and starts accepting worker
// joins in the background; the Solve using its Transport starts once
// `workers` workers have joined. Use ":0" to let the OS pick a port and
// Addr to discover it.
func ListenMaster(addr string, workers int) (*NetMaster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("pts: a distributed run needs at least 1 worker, got %d", workers)
	}
	m, err := nettrans.Listen(nettrans.MasterConfig{Addr: addr, Workers: workers})
	if err != nil {
		return nil, err
	}
	return &NetMaster{m: m}, nil
}

// Addr returns the bound listen address.
func (n *NetMaster) Addr() string { return n.m.Addr() }

// WorkerInfo describes one registered worker process.
type WorkerInfo struct {
	// Name is the worker's cluster-unique registry name.
	Name string
	// Speed is its declared relative speed factor.
	Speed float64
	// Capacity is how many machine slots it contributes.
	Capacity int
}

// Workers lists the currently registered worker processes — waiting in
// the lobby before a run, or claimed by the running one (including
// workers absorbed mid-run by an adaptive job).
func (n *NetMaster) Workers() []WorkerInfo {
	nodes := n.m.Nodes()
	out := make([]WorkerInfo, len(nodes))
	for i, nd := range nodes {
		out[i] = WorkerInfo{Name: nd.Name, Speed: nd.Speed, Capacity: nd.Capacity}
	}
	return out
}

// Transport returns the master as a Solve transport (WithTransport).
func (n *NetMaster) Transport() Transport { return Transport{t: n.m} }

// Close releases the listener and drops idle worker connections. Solve
// closes the master itself after a run; Close is for abandoning one
// that never ran.
func (n *NetMaster) Close() error { return n.m.Close() }

// WithTransport selects the message-passing transport of a real-time
// run. Implies WithRealTime: the virtual runtime is single-process by
// construction (its determinism is the point), so combining a network
// transport with WithVirtualTime is a configuration error.
func WithTransport(t Transport) Option {
	return func(s *settings) { s.transport = t.t }
}

// WithListen makes the run distributed with this process as the
// master: listen on addr, wait until `workers` worker processes joined
// (pts.Worker, or `pts -worker`), then run the master/TSW/CLW protocol
// across them, with every joined node hosting its share of the workers.
// Implies WithRealTime. The listener lives for the one Solve call.
func WithListen(addr string, workers int) Option {
	return func(s *settings) { s.listen = &listenConfig{addr: addr, workers: workers} }
}

// WithJoin makes this Solve call a worker of someone else's run: join
// the master at addr (retrying with backoff while it is unreachable),
// host this node's share of TSW/CLW tasks for one job, and return the
// same Result the master computed. The problem passed to Solve must be
// built from the same inputs as the master's — it is fingerprinted and
// the job refused on mismatch. Search options are the master's;
// WithNode declares this node's registry entry.
func WithJoin(addr string) Option {
	return func(s *settings) { s.join = addr }
}

// WithNode declares this process's worker registry entry for WithJoin:
// a cluster-unique name (default "<hostname>:<pid>"), the node's
// relative speed factor recorded in the master registry and used to
// scale emulated work (default 1.0), and how many machine slots the
// node contributes to round-robin task placement (default 1).
func WithNode(name string, speed float64, capacity int) Option {
	return func(s *settings) {
		s.node = nodeConfig{name: name, speed: speed, capacity: capacity}
	}
}

// WithWorkScale makes real-time runs emulate machine speed: every
// modeled work charge of s reference seconds sleeps s*scale/speed wall
// seconds on its node, so nodes with different declared speeds finish
// rounds at different times — the regime the half-sync adaptation
// targets. 0 (the default) makes modeled work free in real time.
func WithWorkScale(scale float64) Option {
	return func(s *settings) { s.cfg.WorkScale = scale }
}

// listenConfig is WithListen's pending master setup.
type listenConfig struct {
	addr    string
	workers int
}

// nodeConfig is WithNode's registry entry.
type nodeConfig struct {
	name     string
	speed    float64
	capacity int
}

// workerName resolves the node name, defaulting to "<hostname>:<pid>".
func (n nodeConfig) workerName() string {
	if n.name != "" {
		return n.name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// Worker runs a distributed-run worker daemon: join the master at
// addr, host tasks for `jobs` jobs (0 = until ctx cancels), and hand
// each job's final Result — the same outcome the master's Solve
// returns — to onJob (which may be nil). This is WithJoin's
// long-running sibling, for dedicated worker processes like
// `pts -worker`, and the worker side of a ListenServer fleet.
//
// p may be non-nil — one fixed problem, built from the same inputs as
// the master's (it is fingerprinted and jobs refused on mismatch) — or
// nil, in which case the worker constructs each job's problem on
// demand from the built-in workload named in the job's payload, as
// multi-job fleets require.
func Worker(ctx context.Context, p Problem, addr string, node NodeOptions, jobs int, onJob func(*Result)) error {
	var deliver func(*core.Result)
	if onJob != nil {
		deliver = func(r *core.Result) { onJob(resultFromCore(r)) }
	}
	var prob core.Problem
	var resolve func(core.ProblemSpec) (core.Problem, error)
	if p != nil {
		prob = adapt(p)
	} else {
		resolve = resolveSpec
	}
	return core.ServeWorker(ctx, prob, core.WorkerOptions{
		Addr:     addr,
		Name:     nodeConfig{name: node.Name}.workerName(),
		Speed:    node.Speed,
		Capacity: node.Capacity,
		Jobs:     jobs,
		Resolve:  resolve,
		Drain:    node.Drain,
		Logf:     node.Logf,
	}, deliver)
}

// NodeOptions is Worker's registry entry (the exported twin of
// WithNode's parameters).
type NodeOptions struct {
	// Name uniquely identifies the node (default "<hostname>:<pid>").
	Name string
	// Speed is the node's relative speed factor (default 1.0).
	Speed float64
	// Capacity is the node's machine-slot count (default 1).
	Capacity int
	// Drain, when non-nil, requests graceful shutdown when it becomes
	// receivable (close it): the worker deregisters from the master —
	// finishing cleanly if idle, having its in-flight tasks written off
	// like a loss but in an orderly fashion if mid-job — and Worker
	// returns nil instead of reconnecting. This is how `pts -worker`
	// and fleet workers honor SIGTERM.
	Drain <-chan struct{}
	// Logf, when non-nil, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

// joinSolve runs the worker side of a distributed Solve.
func joinSolve(ctx context.Context, p Problem, st settings) (*Result, error) {
	res, err := core.JoinWorker(ctx, adapt(p), core.WorkerOptions{
		Addr:     st.join,
		Name:     st.node.workerName(),
		Speed:    st.node.speed,
		Capacity: st.node.capacity,
	})
	if err != nil {
		return nil, err
	}
	return resultFromCore(res), nil
}
