package anneal

import (
	"math"
	"testing"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/qap"
	"pts/internal/rng"
	"pts/internal/tabu"
)

func qapProb(t testing.TB, n int, seed uint64) *qap.State {
	t.Helper()
	return qap.NewState(qap.Random(n, seed), seed+1)
}

func placementProb(t testing.TB, cells int, seed uint64) cost.Problem {
	t.Helper()
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "sa", Cells: cells, Seed: seed})
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rng.New(seed + 3))
	ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cost.Problem{Ev: ev}
}

func TestMinimizeImprovesQAP(t *testing.T) {
	prob := qapProb(t, 25, 1)
	start := prob.Cost()
	res, err := Minimize(prob, Config{Seed: 2, MovesPerTemp: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= start {
		t.Fatalf("SA did not improve: %v -> %v", start, res.BestCost)
	}
	if res.Steps == 0 || res.Accepted == 0 {
		t.Fatalf("no movement: %+v", res)
	}
	// The best snapshot must evaluate to the best cost.
	if err := prob.Restore(res.BestSnap); err != nil {
		t.Fatal(err)
	}
	if math.Abs(prob.Cost()-res.BestCost) > 1e-6 {
		t.Fatalf("snapshot cost %v != recorded %v", prob.Cost(), res.BestCost)
	}
}

func TestMinimizeImprovesPlacement(t *testing.T) {
	prob := placementProb(t, 80, 4)
	start := prob.Cost()
	res, err := Minimize(prob, Config{Seed: 5, MovesPerTemp: 300, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= start {
		t.Fatalf("SA did not improve placement: %v -> %v", start, res.BestCost)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	run := func() float64 {
		prob := qapProb(t, 20, 9)
		res, err := Minimize(prob, Config{Seed: 7, MovesPerTemp: 100})
		if err != nil {
			t.Fatal(err)
		}
		return res.BestCost
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs with equal seed diverged: %v vs %v", a, b)
	}
}

func TestUphillAcceptanceCoolsDown(t *testing.T) {
	// At a scorching fixed temperature nearly every uphill move is
	// accepted; near zero none are. Check the Metropolis rule through
	// the Uphill counter across two short schedules.
	hot := Config{InitialTemp: 1e9, FinalTemp: 1e8, Alpha: 0.5, MovesPerTemp: 300, Seed: 11}
	cold := Config{InitialTemp: 1e-9, FinalTemp: 1e-10, Alpha: 0.5, MovesPerTemp: 300, Seed: 11}

	probHot := qapProb(t, 20, 12)
	resHot, err := Minimize(probHot, hot)
	if err != nil {
		t.Fatal(err)
	}
	probCold := qapProb(t, 20, 12)
	resCold, err := Minimize(probCold, cold)
	if err != nil {
		t.Fatal(err)
	}
	if resHot.Uphill == 0 {
		t.Error("hot schedule accepted no uphill moves")
	}
	if resCold.Uphill != 0 {
		t.Errorf("cold schedule accepted %d uphill moves", resCold.Uphill)
	}
}

func TestAutoCalibration(t *testing.T) {
	prob := qapProb(t, 20, 14)
	res, err := Minimize(prob, Config{Seed: 15, MovesPerTemp: 50, Alpha: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Auto-calibrated start must actually accept uphill moves early.
	if res.Uphill == 0 {
		t.Error("auto-calibrated temperature accepted no uphill moves")
	}
	if res.FinalTemp <= 0 {
		t.Error("final temperature not recorded")
	}
	if res.Trace.Len() == 0 {
		t.Error("no trace recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	prob := qapProb(t, 10, 16)
	if _, err := Minimize(prob, Config{InitialTemp: -1}); err == nil {
		t.Error("negative temperature accepted")
	}
	if _, err := Minimize(prob, Config{Alpha: 1.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := Minimize(prob, Config{InitialTemp: 1, FinalTemp: 10}); err == nil {
		t.Error("final above initial accepted")
	}
}

func TestDegenerateProblem(t *testing.T) {
	prob := qap.NewState(qap.Random(1, 17), 18)
	res, err := Minimize(prob, Config{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 {
		t.Error("size-1 problem should not step")
	}
}

// TestTabuBeatsOrMatchesSAAtEqualBudget is the engine-level sanity the
// paper's premise rests on: with memory, the search should not lose to
// the memoryless baseline at an equal move-evaluation budget (averaged
// over seeds to damp luck).
func TestTabuBeatsOrMatchesSAAtEqualBudget(t *testing.T) {
	var tsTotal, saTotal float64
	const reps = 3
	for s := uint64(0); s < reps; s++ {
		// Budget: SA ~ temps x MovesPerTemp evals; TS ~ iters x m x d.
		saProb := qapProb(t, 30, 20+s)
		saRes, err := Minimize(saProb, Config{Seed: s, MovesPerTemp: 600, Alpha: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		saTotal += saRes.BestCost

		tsProb := qapProb(t, 30, 20+s)
		search := tabu.NewSearch(tsProb, tabu.Params{Tenure: 10, Trials: 12, Depth: 3, Seed: s})
		iters := int(saRes.Steps / int64(12*3))
		search.Run(iters)
		tsTotal += search.BestCost()
	}
	if tsTotal > saTotal*1.05 {
		t.Fatalf("tabu (%.0f) lost to SA (%.0f) by more than 5%% at equal budget",
			tsTotal/reps, saTotal/reps)
	}
}

func BenchmarkSAPlacementC532(b *testing.B) {
	prob := placementProb(b, 395, 1)
	cfg := Config{Seed: 1, MovesPerTemp: 395, Alpha: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Minimize(prob, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
