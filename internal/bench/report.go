package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pts/internal/stats"
	"pts/internal/viz"
)

// RenderASCII renders a figure as a value table followed by a crude
// multi-series line plot, for terminals and EXPERIMENTS.md.
func RenderASCII(f *Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	sb.WriteString(renderTable(f))
	sb.WriteString(renderPlot(f, 64, 16))
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// renderTable prints one row per distinct x with one column per series.
// Series with disjoint x sets (traces) fall back to per-series blocks.
func renderTable(f *Figure) string {
	if len(f.Series) == 0 {
		return "(no data)\n"
	}
	if !alignedXs(f.Series) {
		return renderSummaryTable(f)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Name)
	}
	sb.WriteByte('\n')
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%-12.4g", p.X)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, "%14.4f", s.Points[i].Y)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderSummaryTable summarizes trace-like series: start, end, best, and
// end time for each.
func renderSummaryTable(f *Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s%12s%12s%12s%12s\n", "series", "start", "final", "best", "endTime")
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			continue
		}
		ys := s.Ys()
		fmt.Fprintf(&sb, "%-24s%12.4f%12.4f%12.4f%12.4f\n",
			s.Name, ys[0], ys[len(ys)-1], stats.Min(ys), s.Points[len(s.Points)-1].X)
	}
	return sb.String()
}

// alignedXs reports whether every series shares the first series' x
// values.
func alignedXs(series []stats.Series) bool {
	for _, s := range series[1:] {
		if len(s.Points) != len(series[0].Points) {
			return false
		}
		for i := range s.Points {
			if s.Points[i].X != series[0].Points[i].X {
				return false
			}
		}
	}
	return true
}

// plotMarks are per-series glyphs.
var plotMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^', '=', '$'}

// renderPlot draws all series into one w x h character grid with linear
// axes.
func renderPlot(f *Figure, w, h int) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range f.Series {
		mark := plotMarks[si%len(plotMarks)]
		for _, p := range s.Points {
			c := int(math.Round((p.X - minX) / (maxX - minX) * float64(w-1)))
			r := int(math.Round((maxY - p.Y) / (maxY - minY) * float64(h-1)))
			if r >= 0 && r < h && c >= 0 && c < w {
				grid[r][c] = mark
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\n%10.4g ┌%s┐\n", maxY, strings.Repeat("─", w))
	for r := 0; r < h; r++ {
		label := "          "
		if r == h-1 {
			label = fmt.Sprintf("%10.4g", minY)
		}
		fmt.Fprintf(&sb, "%s │%s│\n", label, grid[r])
	}
	fmt.Fprintf(&sb, "%10s └%s┘\n", "", strings.Repeat("─", w))
	fmt.Fprintf(&sb, "%10s  %-10.4g%s%10.4g\n", "", minX,
		strings.Repeat(" ", maxInt(1, w-20)), maxX)
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", plotMarks[si%len(plotMarks)], s.Name))
	}
	sort.Strings(legend)
	fmt.Fprintf(&sb, "legend: %s\n", strings.Join(legend, "   "))
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteSVG renders the figure as a vector line chart at dir/<id>.svg
// and returns the path.
func WriteSVG(f *Figure, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, f.ID+".svg")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	chart := viz.Chart{
		Title:  fmt.Sprintf("%s: %s", f.ID, f.Title),
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		Series: f.Series,
	}
	if err := viz.WriteChartSVG(file, chart); err != nil {
		file.Close()
		return "", err
	}
	return path, file.Close()
}

// WriteCSV writes the figure in long form (series,x,y) to
// dir/<id>.csv and returns the path.
func WriteCSV(f *Figure, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, f.ID+".csv")
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
