// Package bench is the experiment harness: one driver per data figure
// of the paper's evaluation section (Figures 5–11), plus ASCII and CSV
// reporting. Every driver runs the parallel tabu search on the virtual
// runtime, so results are deterministic in the seeds and independent of
// the host machine.
//
// Figure inventory (see DESIGN.md §3 for the full index):
//
//	Fig5  — best solution quality vs number of CLWs (TSWs=4)
//	Fig6  — speedup to reach quality x vs number of CLWs
//	Fig7  — best solution quality vs number of TSWs (CLWs=1)
//	Fig8  — speedup to reach quality x vs number of TSWs
//	Fig9  — diversification on vs off (best cost traces)
//	Fig10 — local vs global iteration budget split
//	Fig11 — heterogeneous (half-sync) vs homogeneous collection traces
package bench

import (
	"context"
	"fmt"
	"math"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/rng"
	"pts/internal/stats"
)

// Opts scales and seeds the experiments.
type Opts struct {
	// Context, when non-nil, bounds the whole figure sweep: a cancelled
	// context aborts the current run at its next protocol boundary and
	// the driver returns the context's error.
	Context context.Context
	// Scale multiplies the per-run iteration budgets; 1.0 reproduces the
	// full figures, tests use ~0.1.
	Scale float64
	// Repeats averages each data point over this many seeds (default 3,
	// scaled down with Scale but at least 1).
	Repeats int
	// Seed derives every run's seed.
	Seed uint64
	// ClusterSeed drives the testbed's load traces (0 = idle machines).
	ClusterSeed uint64
	// Circuits restricts the benchmark circuits (default: all four).
	Circuits []string
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

// withDefaults normalizes options.
func (o Opts) withDefaults() Opts {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
		if o.Scale < 0.5 {
			o.Repeats = 1
		}
	}
	if o.Seed == 0 {
		o.Seed = 2003
	}
	if o.ClusterSeed == 0 {
		o.ClusterSeed = 12
	}
	if len(o.Circuits) == 0 {
		o.Circuits = netlist.BenchmarkNames()
	}
	return o
}

// scaled rounds n*Scale down to no less than lo.
func (o Opts) scaled(n int, lo int) int {
	v := int(math.Round(float64(n) * o.Scale))
	if v < lo {
		return lo
	}
	return v
}

// Figure is one reproduced figure's data.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
	Notes  []string
}

// baseConfig is the shared parameter set of all figures; individual
// drivers override the axes they sweep.
func baseConfig(o Opts) core.Config {
	cfg := core.DefaultConfig()
	cfg.GlobalIters = 8
	cfg.LocalIters = o.scaled(40, 4)
	cfg.Trials = 12
	cfg.Depth = 4
	cfg.Tenure = 10
	cfg.DiversifyDepth = 12
	cfg.HalfSync = true
	return cfg
}

// testbed returns the paper's 12-machine platform.
func (o Opts) testbed() cluster.Cluster { return cluster.Testbed12(o.ClusterSeed) }

// runOne executes one virtual run and reports progress. The run is
// bound to Opts.Context: an interrupted run aborts the whole sweep
// (partial figure data would be misleading).
func runOne(o Opts, label string, nl *netlist.Netlist, clus cluster.Cluster, cfg core.Config) (*core.Result, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	pp := cost.NewPlacementProblem(nl, cfg.Utilization, cfg.Cost)
	res, err := core.RunProblem(ctx, pp, clus, cfg, core.Virtual)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", label, err)
	}
	if res.Interrupted {
		return nil, fmt.Errorf("bench: %s: %w", label, ctx.Err())
	}
	if o.Progress != nil {
		o.Progress(fmt.Sprintf("%-34s best=%.4f elapsed=%.3fs", label, res.BestCost, res.Elapsed))
	}
	return res, nil
}

// seedFor derives the seed of one repeat of one experiment.
func (o Opts) seedFor(fig, circuit string, repeat int) uint64 {
	return rng.DeriveN(rng.Derive(o.Seed, "bench", fig, circuit), repeat)
}

// All runs every figure driver in paper order.
func All(o Opts) ([]*Figure, error) {
	drivers := []func(Opts) (*Figure, error){Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11}
	figs := make([]*Figure, 0, len(drivers))
	for _, d := range drivers {
		f, err := d(o)
		if err != nil {
			return figs, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}
