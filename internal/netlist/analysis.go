package netlist

import (
	"bufio"
	"fmt"
	"io"

	"pts/internal/stats"
)

// Analysis bundles the structural distributions of a circuit; the
// netgen CLI prints it and tests assert generator realism against it.
type Analysis struct {
	NetDegree *stats.Histogram // terminals per net
	Fanout    *stats.Histogram // nets' sink counts per driving cell
	Fanin     *stats.Histogram // fan-in per non-input cell
	Level     *stats.Histogram // cells per topological level
	Width     *stats.Histogram // cell widths
}

// Analyze computes the distributions. Finish must have been called.
func (nl *Netlist) Analyze() *Analysis {
	a := &Analysis{
		NetDegree: stats.NewHistogram(),
		Fanout:    stats.NewHistogram(),
		Fanin:     stats.NewHistogram(),
		Level:     stats.NewHistogram(),
		Width:     stats.NewHistogram(),
	}
	for i := range nl.Nets {
		a.NetDegree.Add(nl.Nets[i].Degree())
	}
	for c := 0; c < nl.NumCells(); c++ {
		id := CellID(c)
		fanout := 0
		for _, n := range nl.Drives(id) {
			fanout += len(nl.Nets[n].Sinks)
		}
		a.Fanout.Add(fanout)
		if nl.Cells[c].Kind != Input {
			a.Fanin.Add(len(nl.SinkNets(id)))
		}
		a.Level.Add(int(nl.Level(id)))
		a.Width.Add(nl.Cells[c].Width)
	}
	return a
}

// WriteReport renders the analysis for humans.
func (a *Analysis) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sections := []struct {
		name string
		h    *stats.Histogram
	}{
		{"net degree", a.NetDegree},
		{"cell fanout", a.Fanout},
		{"cell fanin", a.Fanin},
		{"cells per level", a.Level},
		{"cell width", a.Width},
	}
	for _, s := range sections {
		mode, _ := s.h.Mode()
		fmt.Fprintf(bw, "%s (n=%d, mean=%.2f, mode=%d):\n%s\n",
			s.name, s.h.Total(), s.h.Mean(), mode, s.h)
	}
	return bw.Flush()
}

// WriteDOT emits the circuit as a Graphviz digraph: cells are nodes
// (inputs as triangles, outputs as double circles), every net an edge
// from its driver to each sink labelled with the net name. Useful for
// eyeballing small circuits.
func WriteDOT(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", nl.Name)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		shape := "box"
		switch c.Kind {
		case Input:
			shape = "triangle"
		case Output:
			shape = "doublecircle"
		}
		fmt.Fprintf(bw, "  %q [shape=%s];\n", c.Name, shape)
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		for _, s := range n.Sinks {
			fmt.Fprintf(bw, "  %q -> %q [label=%q];\n",
				nl.Cells[n.Driver].Name, nl.Cells[s].Name, n.Name)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
