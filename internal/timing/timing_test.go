package timing

import (
	"math"
	"testing"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
)

// chain builds pi -> g0 -> g1 -> po with unit-ish delays, placed on one
// row so wire lengths are exactly the slot distances.
func chain(t *testing.T) (*netlist.Netlist, *placement.Placement) {
	t.Helper()
	nl := &netlist.Netlist{
		Name: "chain",
		Cells: []netlist.Cell{
			{Name: "pi", Width: 1, Delay: 0.0, Kind: netlist.Input},
			{Name: "g0", Width: 1, Delay: 1.0, Kind: netlist.Gate},
			{Name: "g1", Width: 1, Delay: 2.0, Kind: netlist.Gate},
			{Name: "po", Width: 1, Delay: 0.0, Kind: netlist.Output},
		},
		Nets: []netlist.Net{
			{Name: "n0", Driver: 0, Sinks: []netlist.CellID{1}},
			{Name: "n1", Driver: 1, Sinks: []netlist.CellID{2}},
			{Name: "n2", Driver: 2, Sinks: []netlist.CellID{3}},
		},
	}
	if err := nl.Finish(); err != nil {
		t.Fatal(err)
	}
	p, err := placement.New(nl, placement.Layout{Rows: 1, Cols: 4})
	if err != nil {
		t.Fatal(err)
	}
	return nl, p
}

func TestAnalyzeChainByHand(t *testing.T) {
	nl, p := chain(t)
	cfg := Config{LoadFactor: 0.5, WireDelayPerUnit: 0.1}
	a := New(nl, cfg)
	cpd := a.Analyze(p)

	// Cells sit at columns 0..3; every net spans 1 slot => net delay 0.1.
	// cellDelay: pi = 0 + 0.5*1, g0 = 1 + 0.5, g1 = 2 + 0.5, po = 0.
	// arrival(pi) = 0.5
	// arrival(g0) = 0.5 + 0.1 + 1.5 = 2.1
	// arrival(g1) = 2.1 + 0.1 + 2.5 = 4.7
	// arrival(po) = 4.7 + 0.1 + 0   = 4.8
	want := 4.8
	if math.Abs(cpd-want) > 1e-9 {
		t.Fatalf("CPD = %v, want %v", cpd, want)
	}
	if a.CriticalPath() != cpd {
		t.Error("CriticalPath() disagrees with Analyze return")
	}
	// A pure chain is entirely critical: slack 0 everywhere, criticality 1.
	for c := 0; c < nl.NumCells(); c++ {
		if s := a.Slack(netlist.CellID(c)); math.Abs(s) > 1e-9 {
			t.Errorf("cell %d slack = %v, want 0", c, s)
		}
	}
	for n := 0; n < nl.NumNets(); n++ {
		if got := a.Criticality(netlist.NetID(n)); math.Abs(got-1) > 1e-9 {
			t.Errorf("net %d criticality = %v, want 1", n, got)
		}
	}
}

// diamond builds two parallel paths of different intrinsic delay; the
// slow path must be critical and the fast one slack-positive.
func diamond(t *testing.T) (*netlist.Netlist, *placement.Placement) {
	t.Helper()
	nl := &netlist.Netlist{
		Name: "diamond",
		Cells: []netlist.Cell{
			{Name: "pi", Width: 1, Delay: 0, Kind: netlist.Input},
			{Name: "slow", Width: 1, Delay: 10.0, Kind: netlist.Gate},
			{Name: "fast", Width: 1, Delay: 1.0, Kind: netlist.Gate},
			{Name: "po", Width: 1, Delay: 0, Kind: netlist.Output},
		},
		Nets: []netlist.Net{
			{Name: "src", Driver: 0, Sinks: []netlist.CellID{1, 2}},
			{Name: "ns", Driver: 1, Sinks: []netlist.CellID{3}},
			{Name: "nf", Driver: 2, Sinks: []netlist.CellID{3}},
		},
	}
	if err := nl.Finish(); err != nil {
		t.Fatal(err)
	}
	p, err := placement.New(nl, placement.Layout{Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	return nl, p
}

func TestAnalyzeDiamondCriticality(t *testing.T) {
	nl, p := diamond(t)
	a := New(nl, Config{LoadFactor: 0.1, WireDelayPerUnit: 0.01})
	a.Analyze(p)
	slowCrit := a.Criticality(1) // net ns driven by slow
	fastCrit := a.Criticality(2) // net nf driven by fast
	if slowCrit <= fastCrit {
		t.Fatalf("slow path criticality %v should exceed fast path %v", slowCrit, fastCrit)
	}
	if math.Abs(slowCrit-1) > 1e-9 {
		t.Errorf("critical net should have criticality 1, got %v", slowCrit)
	}
	if s := a.Slack(2); s <= 0 {
		t.Errorf("fast gate should have positive slack, got %v", s)
	}
	_ = nl
}

func TestCriticalityBounds(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "cb", Cells: 200, Seed: 4})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	p.Randomize(rng.New(3))
	a := New(nl, DefaultConfig())
	a.Analyze(p)
	for n, c := range a.Criticalities() {
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("net %d criticality %v outside [0,1]", n, c)
		}
	}
	// At least one net must be fully critical (the critical path exists).
	max := 0.0
	for _, c := range a.Criticalities() {
		if c > max {
			max = c
		}
	}
	if max < 1-1e-9 {
		t.Errorf("no critical net found; max criticality %v", max)
	}
}

func TestSlackNonNegative(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "sl", Cells: 150, Seed: 6})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	p.Randomize(rng.New(8))
	a := New(nl, DefaultConfig())
	a.Analyze(p)
	for c := 0; c < nl.NumCells(); c++ {
		if s := a.Slack(netlist.CellID(c)); s < -1e-9 {
			t.Fatalf("cell %d has negative slack %v", c, s)
		}
	}
}

func TestWireDelayScalingMonotone(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "mono", Cells: 120, Seed: 7})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	p.Randomize(rng.New(2))
	prev := 0.0
	for i, w := range []float64{0, 0.01, 0.05, 0.2} {
		a := New(nl, Config{LoadFactor: 0.04, WireDelayPerUnit: w})
		cpd := a.Analyze(p)
		if cpd < prev {
			t.Fatalf("CPD decreased (%v -> %v) when wire delay grew", prev, cpd)
		}
		if i > 0 && cpd == prev {
			t.Fatalf("CPD did not grow with wire delay factor %v", w)
		}
		prev = cpd
	}
}

func TestWeightedWireDelayMatchesManual(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "ww", Cells: 90, Seed: 9})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	p.Randomize(rng.New(4))
	a := New(nl, DefaultConfig())
	a.Analyze(p)
	want := 0.0
	for n := 0; n < nl.NumNets(); n++ {
		want += a.Criticality(netlist.NetID(n)) * a.Config().WireDelayPerUnit * p.NetHPWL(netlist.NetID(n))
	}
	if got := a.WeightedWireDelay(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("WeightedWireDelay %v != manual %v", got, want)
	}
}

func TestWeightedDeltaSwapConsistent(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "wd", Cells: 80, Seed: 10})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	r := rng.New(5)
	p.Randomize(r)
	a := New(nl, DefaultConfig())
	a.Analyze(p)
	for i := 0; i < 200; i++ {
		x := netlist.CellID(r.Intn(nl.NumCells()))
		y := netlist.CellID(r.Intn(nl.NumCells()))
		before := a.WeightedWireDelay(p)
		predicted := a.WeightedDeltaSwap(p, x, y)
		p.SwapCells(x, y)
		after := a.WeightedWireDelay(p)
		if math.Abs((after-before)-predicted) > 1e-6 {
			t.Fatalf("step %d: delta %v != predicted %v", i, after-before, predicted)
		}
	}
}

func TestFreshAnalyzerDefaultsCriticalityOne(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "fr", Cells: 50, Seed: 11})
	a := New(nl, DefaultConfig())
	for n := 0; n < nl.NumNets(); n++ {
		if a.Criticality(netlist.NetID(n)) != 1 {
			t.Fatal("criticalities should default to 1 before first Analyze")
		}
	}
}

func BenchmarkAnalyzeC1355(b *testing.B) {
	nl := netlist.MustBenchmark("c1355")
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	p.Randomize(rng.New(1))
	a := New(nl, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Analyze(p)
	}
}

func BenchmarkWeightedDeltaSwap(b *testing.B) {
	nl := netlist.MustBenchmark("c1355")
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	r := rng.New(1)
	p.Randomize(r)
	a := New(nl, DefaultConfig())
	a.Analyze(p)
	n := nl.NumCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := netlist.CellID(r.Intn(n))
		y := netlist.CellID(r.Intn(n))
		_ = a.WeightedDeltaSwap(p, x, y)
	}
}
