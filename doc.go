// Package pts reproduces "Parallel Tabu Search in a Heterogeneous
// Environment" (Al-Yamani, Sait, Barada, Youssef — IPDPS 2003): a
// two-level parallel tabu search for VLSI standard-cell placement with
// a fuzzy multi-objective cost, running on a PVM-like message-passing
// substrate over a simulated heterogeneous cluster.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); cmd/ holds the executables and examples/ the
// runnable walkthroughs. The root package exists to carry the
// per-figure benchmark harness (bench_test.go).
package pts
