#!/usr/bin/env bash
# Documentation drift check (CI-blocking): ARCHITECTURE.md's wire-
# protocol table and the serving endpoint tables must stay in lockstep
# with the code.
#
#  1. Every Tag* constant declared in internal/core/messages.go (plus
#     the reserved pvm.TagExit) must appear as a `| `Tag...` |` table
#     row in ARCHITECTURE.md.
#  2. Every Tag* named in an ARCHITECTURE.md table row must still
#     exist in the code — removed messages cannot linger in the doc.
#  3. Every route registered in internal/serve/http.go's Handler must
#     appear as a `| `METHOD /path` |` table row in BOTH README.md and
#     ARCHITECTURE.md.
#  4. Every endpoint named in such a table row must still be a
#     registered route — removed endpoints cannot linger in the docs.
#
# Usage: scripts/check-docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# Tags declared in the protocol (the const block's identifiers).
code_tags=$(grep -oE '^	Tag[A-Za-z0-9]+' internal/core/messages.go | tr -d '\t' | sort -u)
code_tags="$code_tags
TagExit"

for tag in $code_tags; do
  if ! grep -qE "^\| \`$tag\` \|" ARCHITECTURE.md; then
    echo "FAIL: $tag is in the protocol but has no table row in ARCHITECTURE.md"
    fail=1
  fi
done

# Tags documented in ARCHITECTURE.md table rows.
doc_tags=$(grep -oE '^\| `Tag[A-Za-z0-9]+` \|' ARCHITECTURE.md | grep -oE 'Tag[A-Za-z0-9]+' | sort -u)
for tag in $doc_tags; do
  if [ "$tag" = "TagExit" ]; then
    grep -q "TagExit" internal/pvm/pvm.go && continue
  fi
  if ! grep -qE "^	$tag( |$)" internal/core/messages.go; then
    echo "FAIL: ARCHITECTURE.md documents $tag, which no longer exists in internal/core/messages.go"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "ARCHITECTURE.md's wire-protocol table is out of sync with the code."
  exit 1
fi
n=$(echo "$code_tags" | wc -l | tr -d ' ')
echo "PASS: all $n protocol tags documented in ARCHITECTURE.md, no stale rows"

# Serving endpoints: the route patterns registered in Handler() are the
# source of truth.
code_routes=$(grep -oE 'HandleFunc\("(GET|POST|PUT|PATCH|DELETE) [^"]+"' internal/serve/http.go \
  | sed -E 's/HandleFunc\("//; s/"$//' | sort -u)
if [ -z "$code_routes" ]; then
  echo "FAIL: no routes found in internal/serve/http.go (check pattern extraction)"
  exit 1
fi

for doc in README.md ARCHITECTURE.md; do
  while IFS= read -r route; do
    if ! grep -qF "| \`$route\` |" "$doc"; then
      echo "FAIL: route '$route' is registered but has no endpoint-table row in $doc"
      fail=1
    fi
  done <<< "$code_routes"

  doc_routes=$(grep -oE '^\| `(GET|POST|PUT|PATCH|DELETE) [^`]+` \|' "$doc" \
    | sed -E 's/^\| `//; s/` \|$//' | sort -u)
  while IFS= read -r route; do
    [ -z "$route" ] && continue
    if ! grep -qF "\"$route\"" internal/serve/http.go; then
      echo "FAIL: $doc documents endpoint '$route', which is not a registered route"
      fail=1
    fi
  done <<< "$doc_routes"
done

if [ "$fail" -ne 0 ]; then
  echo "The serving endpoint tables are out of sync with internal/serve/http.go."
  exit 1
fi
r=$(echo "$code_routes" | wc -l | tr -d ' ')
echo "PASS: all $r serving endpoints documented in README.md and ARCHITECTURE.md, no stale rows"
