package pvm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pts/internal/cluster"
	"pts/internal/rng"
)

// chanTransport is the in-process Transport: tasks are goroutines,
// inboxes are slices guarded by per-task conds. It is the wall-clock
// runtime RunReal always used.
type chanTransport struct{}

// rRuntime is the wall-clock goroutine runtime.
type rRuntime struct {
	c         cluster.Cluster
	seed      uint64
	workScale float64
	spawner   TaskFactory
	done      <-chan struct{}
	start     time.Time

	spawns atomic.Int64
	sends  atomic.Int64

	mu   sync.Mutex
	task []*rTask
	wg   sync.WaitGroup
}

// rTask is one real task.
type rTask struct {
	rt      *rRuntime
	id      TaskID
	name    string
	machine int
	r       *rand.Rand

	mu    sync.Mutex
	cond  *sync.Cond
	inbox []Message
}

var _ Env = (*rTask)(nil)

func (t *rTask) Self() TaskID      { return t.id }
func (t *rTask) Name() string      { return t.name }
func (t *rTask) MachineIndex() int { return t.machine }
func (t *rTask) Rand() *rand.Rand  { return t.r }
func (t *rTask) Now() float64      { return time.Since(t.rt.start).Seconds() }
func (t *rTask) Cancelled() bool   { return cancelled(t.rt.done) }

// MachineSpeed implements SpeedReporter from the cluster model,
// wrapping the index exactly like spawn does.
func (t *rTask) MachineSpeed(machine int) float64 {
	n := len(t.rt.c.Machines)
	machine = ((machine % n) + n) % n
	return t.rt.c.Machine(machine).Speed
}

func (t *rTask) Spawn(name string, machine int, fn TaskFunc) TaskID {
	return t.rt.spawn(t.name+"/"+name, machine, fn)
}

func (t *rTask) SpawnSpec(name string, machine int, spec Spec) TaskID {
	return t.Spawn(name, machine, resolveSpec(t.rt.spawner, t.name+"/"+name, spec))
}

func (rt *rRuntime) spawn(fullName string, machine int, fn TaskFunc) TaskID {
	rt.spawns.Add(1)
	machine = ((machine % len(rt.c.Machines)) + len(rt.c.Machines)) % len(rt.c.Machines)
	child := &rTask{
		rt:      rt,
		name:    fullName,
		machine: machine,
		r:       rng.NewChild(rt.seed, "pvm.task", fullName),
	}
	child.cond = sync.NewCond(&child.mu)
	rt.mu.Lock()
	child.id = TaskID(len(rt.task))
	rt.task = append(rt.task, child)
	rt.mu.Unlock()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		fn(child)
	}()
	return child.id
}

func (rt *rRuntime) lookup(id TaskID) *rTask {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if int(id) < 0 || int(id) >= len(rt.task) {
		return nil
	}
	return rt.task[id]
}

func (t *rTask) Send(to TaskID, tag Tag, data any) {
	t.rt.sends.Add(1)
	dst := t.rt.lookup(to)
	if dst == nil {
		panic(fmt.Sprintf("pvm: send to unknown task %d from %q", to, t.name))
	}
	dst.mu.Lock()
	dst.inbox = append(dst.inbox, Message{From: t.id, Tag: tag, Data: data})
	dst.mu.Unlock()
	dst.cond.Signal()
}

func (t *rTask) Recv(tags ...Tag) Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if m, ok := scanInbox(&t.inbox, tags); ok {
			return m
		}
		t.cond.Wait()
	}
}

func (t *rTask) TryRecv(tags ...Tag) (Message, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return scanInbox(&t.inbox, tags)
}

func (t *rTask) Work(seconds float64) {
	if seconds <= 0 || t.rt.workScale <= 0 {
		return
	}
	m := t.rt.c.Machine(t.machine)
	// Real mode models speed only (loads would just add sleep noise).
	time.Sleep(time.Duration(seconds * t.rt.workScale / m.Speed * float64(time.Second)))
}

// RunReal executes root (and everything it spawns) with wall-clock
// timing on Options.Transport (the in-process goroutine transport when
// nil) and returns the elapsed seconds once every task has finished.
// Unlike RunVirtual it cannot detect deadlocks: a task that waits
// forever hangs the run.
func RunReal(opts Options, root TaskFunc) (elapsed float64, err error) {
	tr := opts.Transport
	if tr == nil {
		tr = InProcess()
	}
	return tr.Run(opts, root)
}

// Run implements Transport on the in-process goroutine runtime.
func (chanTransport) Run(opts Options, root TaskFunc) (elapsed float64, err error) {
	opts = opts.withDefaults()
	if err := opts.Cluster.Validate(); err != nil {
		return 0, err
	}
	rt := &rRuntime{
		c:         opts.Cluster,
		seed:      opts.Seed,
		workScale: opts.RealWorkScale,
		spawner:   opts.Spawner,
		done:      doneChan(opts.Context),
		start:     time.Now(),
	}
	rt.spawn("root", 0, root)
	rt.wg.Wait()
	if opts.Counters != nil {
		opts.Counters.Spawns = rt.spawns.Load()
		opts.Counters.Sends = rt.sends.Load()
	}
	return time.Since(rt.start).Seconds(), nil
}
