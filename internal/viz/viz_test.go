package viz

import (
	"bytes"
	"strings"
	"testing"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/stats"
)

func chartFixture() Chart {
	s1 := stats.Series{Name: "alpha"}
	s1.Add(1, 10)
	s1.Add(2, 8)
	s1.Add(3, 5)
	s2 := stats.Series{Name: "beta <x>"}
	s2.Add(1, 12)
	s2.Add(2, 11)
	s2.Add(3, 9)
	return Chart{
		Title:  "Test & chart",
		XLabel: "workers",
		YLabel: "cost",
		Series: []stats.Series{s1, s2},
	}
}

func TestWriteChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChartSVG(&buf, chartFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"Test &amp; chart", // escaped title
		"beta &lt;x&gt;",   // escaped legend
		"<polyline", "<circle",
		"workers", "cost",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("%d markers, want 6", got)
	}
}

func TestWriteChartSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChartSVG(&buf, Chart{Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("empty chart did not render")
	}
}

func TestWritePlacementSVG(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "v", Cells: 40, Seed: 2})
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rng.New(3))
	var buf bytes.Buffer
	if err := WritePlacementSVG(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// One rect per slot plus the background.
	if got := strings.Count(out, "<rect"); got != p.Layout().Slots()+1 {
		t.Errorf("%d rects, want %d", got, p.Layout().Slots()+1)
	}
}

func TestHeatColorRamp(t *testing.T) {
	if heatColor(0) != "#ffffe6" {
		t.Errorf("cold end = %s", heatColor(0))
	}
	if heatColor(0.5) != "#ffff00" {
		t.Errorf("middle = %s", heatColor(0.5))
	}
	if heatColor(1) != "#ff0000" {
		t.Errorf("hot end = %s", heatColor(1))
	}
	// Clamping.
	if heatColor(-3) != heatColor(0) || heatColor(9) != heatColor(1) {
		t.Error("heatColor does not clamp")
	}
}

func TestErrWriterPropagates(t *testing.T) {
	ew := &errWriter{w: failWriter{}}
	ew.printf("x")
	ew.printf("y") // must not panic, must keep the first error
	if ew.err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errFail
}

var errFail = bytes.ErrTooLarge
