package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// both runs the test against each implementation.
func both(t *testing.T, run func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) { run(t, NewMem()) })
	t.Run("file", func(t *testing.T) {
		fs, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		run(t, fs)
	})
}

func TestStoreRoundTrip(t *testing.T) {
	both(t, func(t *testing.T, s Store) {
		if _, ok, err := s.Get("runs/a"); err != nil || ok {
			t.Fatalf("Get on empty store = ok:%v err:%v", ok, err)
		}
		want := []byte("hello\x00world")
		if err := s.Put("runs/a", want); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Get("runs/a")
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get = %q ok:%v err:%v, want %q", got, ok, err, want)
		}
		// Overwrite replaces.
		if err := s.Put("runs/a", []byte("v2")); err != nil {
			t.Fatal(err)
		}
		got, _, _ = s.Get("runs/a")
		if string(got) != "v2" {
			t.Fatalf("after overwrite Get = %q, want v2", got)
		}
		// Delete removes; deleting again is fine.
		if err := s.Delete("runs/a"); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get("runs/a"); ok {
			t.Fatal("Get after Delete still ok")
		}
		if err := s.Delete("runs/a"); err != nil {
			t.Fatalf("double Delete: %v", err)
		}
	})
}

func TestStoreListPrefix(t *testing.T) {
	both(t, func(t *testing.T, s Store) {
		for _, k := range []string{"jobs/j2", "jobs/j10", "jobs/j1", "runs/job-j1"} {
			if err := s.Put(k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.List("jobs/")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"jobs/j1", "jobs/j10", "jobs/j2"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("List(jobs/) = %v, want %v", got, want)
		}
		all, err := s.List("")
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 4 {
			t.Fatalf("List(\"\") = %v, want 4 keys", all)
		}
	})
}

func TestStoreRejectsInvalidKeys(t *testing.T) {
	bad := []string{"", ".", "..", "../x", "a/../b", "a//b", "a/", "/a", "a b", "a\x00b", "x/.tmp/..", "ü"}
	both(t, func(t *testing.T, s Store) {
		for _, k := range bad {
			if err := s.Put(k, nil); err == nil {
				t.Errorf("Put(%q) accepted", k)
			}
			if _, _, err := s.Get(k); err == nil {
				t.Errorf("Get(%q) accepted", k)
			}
			if err := s.Delete(k); err == nil {
				t.Errorf("Delete(%q) accepted", k)
			}
		}
	})
}

// TestStoreProperty drives a random op sequence against both
// implementations and a plain map model; all three must agree at every
// step. This is the journal→reopen→identical-state property at the KV
// level (the serve-layer version is in internal/serve).
func TestStoreProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMem()
	model := map[string]string{}
	keys := []string{"jobs/a", "jobs/b", "jobs/c", "runs/a", "runs/deep/x"}
	for i := 0; i < 400; i++ {
		k := keys[r.Intn(len(keys))]
		switch r.Intn(4) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", r.Intn(1000))
			model[k] = v
			if err := fs.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			if err := ms.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
		case 2: // delete
			delete(model, k)
			if err := fs.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := ms.Delete(k); err != nil {
				t.Fatal(err)
			}
		case 3: // reopen the file store mid-sequence: state must survive
			fs, err = Open(dir)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range []Store{fs, ms} {
			v, ok, err := s.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			mv, mok := model[k]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("step %d: Get(%q) = %q,%v want %q,%v", i, k, v, ok, mv, mok)
			}
		}
	}
	// Final listing agreement.
	fl, _ := fs.List("")
	ml, _ := ms.List("")
	if !reflect.DeepEqual(fl, ml) {
		t.Fatalf("final listings differ: file %v mem %v", fl, ml)
	}
	if len(fl) != len(model) {
		t.Fatalf("listing has %d keys, model %d", len(fl), len(model))
	}
}

func TestFileStoreIgnoresAbandonedTemps(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("jobs/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between CreateTemp and rename.
	if err := os.WriteFile(filepath.Join(dir, "jobs", ".tmp-crashed"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"jobs/a"}) {
		t.Fatalf("List = %v, want [jobs/a]", keys)
	}
}

func TestStoreConcurrent(t *testing.T) {
	both(t, func(t *testing.T, s Store) {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				k := fmt.Sprintf("jobs/g%d", g)
				for i := 0; i < 50; i++ {
					if err := s.Put(k, []byte(fmt.Sprintf("%d", i))); err != nil {
						t.Error(err)
						return
					}
					if _, ok, err := s.Get(k); err != nil || !ok {
						t.Errorf("Get(%q) = ok:%v err:%v", k, ok, err)
						return
					}
					if _, err := s.List("jobs/"); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
