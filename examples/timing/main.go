// Timing walkthrough: the static timing analysis underneath the delay
// objective — arrival times, the critical path as a cell sequence, net
// criticalities, and how optimizing the placement shortens the path.
//
//	go run ./examples/timing
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/tabu"
	"pts/internal/timing"
)

func main() {
	nl := netlist.MustBenchmark("c532")
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		log.Fatal(err)
	}
	p.Randomize(rng.New(5))

	an := timing.New(nl, timing.DefaultConfig())
	cpd := an.Analyze(p)
	fmt.Printf("random placement of %s: critical path %.3f ns\n\n", nl.Name, cpd)

	fmt.Println("critical path (driver -> ... -> endpoint):")
	path := an.CriticalPathCells(p)
	fmt.Print(timing.FormatPath(nl, path))

	// Criticality distribution: most nets are far off the critical
	// path; the timing-driven part of the cost focuses on the rest.
	crit := an.Criticalities()
	buckets := make([]int, 5)
	for _, c := range crit {
		idx := int(c * 4.9999)
		buckets[idx]++
	}
	fmt.Println("\nnet criticality distribution:")
	labels := []string{"0.0-0.2", "0.2-0.4", "0.4-0.6", "0.6-0.8", "0.8-1.0"}
	for i, b := range buckets {
		fmt.Printf("  %s  %4d nets\n", labels[i], b)
	}

	// Optimize with the tabu engine and re-analyze.
	ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	s := tabu.NewSearch(cost.Problem{Ev: ev}, tabu.Params{
		Tenure: 10, Trials: 12, Depth: 4, RefreshEvery: 64, Seed: 9,
	})
	s.Run(1500)
	if err := ev.ImportPerm(s.BestSnapshot()); err != nil {
		log.Fatal(err)
	}
	after := an.Analyze(ev.Placement())
	fmt.Printf("\nafter 1500 tabu iterations: critical path %.3f ns (%.1f%% shorter)\n",
		after, 100*(cpd-after)/cpd)
	fmt.Println("\nnew critical path:")
	fmt.Print(timing.FormatPath(nl, an.CriticalPathCells(ev.Placement())))

	// The same inspection through the public API: solve in parallel,
	// then ask the problem for the best layout's critical path.
	prob, err := pts.PlacementBenchmark("c532")
	if err != nil {
		log.Fatal(err)
	}
	res, err := pts.Solve(context.Background(), prob,
		pts.WithWorkers(4, 2), pts.WithIterations(6, 40), pts.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	text, err := prob.CriticalPathText(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel search: CPD %.3f ns; its critical path:\n",
		res.Details.(pts.PlacementDetails).CriticalPath)
	fmt.Print(text)
}
