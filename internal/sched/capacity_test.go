package sched

import "testing"

func TestLedgerLeaseRelease(t *testing.T) {
	l := NewLedger(4)
	if l.Total() != 4 || l.Free() != 4 || l.Leased() != 0 {
		t.Fatalf("fresh ledger: total=%d free=%d leased=%d", l.Total(), l.Free(), l.Leased())
	}
	if err := l.Lease("a", 3); err != nil {
		t.Fatalf("lease a: %v", err)
	}
	if l.Free() != 1 || l.Leased() != 3 || l.Outstanding() != 1 {
		t.Fatalf("after a: free=%d leased=%d outstanding=%d", l.Free(), l.Leased(), l.Outstanding())
	}
	if err := l.Lease("b", 2); err == nil {
		t.Fatal("over-commit lease accepted")
	}
	if err := l.Lease("b", 1); err != nil {
		t.Fatalf("lease b: %v", err)
	}
	if l.Free() != 0 {
		t.Fatalf("free = %d, want 0", l.Free())
	}
	l.Release("a")
	if l.Free() != 3 || l.Outstanding() != 1 {
		t.Fatalf("after release a: free=%d outstanding=%d", l.Free(), l.Outstanding())
	}
	l.Release("a") // idempotent
	l.Release("never-leased")
	if l.Free() != 3 {
		t.Fatalf("idempotent release changed free to %d", l.Free())
	}
}

func TestLedgerRefusals(t *testing.T) {
	l := NewLedger(2)
	if err := l.Lease("a", -1); err == nil {
		t.Fatal("negative lease accepted")
	}
	if err := l.Lease("a", 1); err != nil {
		t.Fatalf("lease a: %v", err)
	}
	if err := l.Lease("a", 1); err == nil {
		t.Fatal("duplicate lease id accepted")
	}
}

func TestLedgerAdmissible(t *testing.T) {
	l := NewLedger(3)
	if err := l.Lease("a", 3); err != nil {
		t.Fatalf("lease: %v", err)
	}
	// Admissible ignores current claims: 3 workers could be had once the
	// outstanding lease releases, 4 never.
	if !l.Admissible(3) {
		t.Fatal("3 of 3 reported inadmissible")
	}
	if l.Admissible(4) {
		t.Fatal("4 of 3 reported admissible")
	}
	if l.Admissible(-1) {
		t.Fatal("negative want reported admissible")
	}
	// Master-only runs (0 workers) are always admissible.
	if !NewLedger(0).Admissible(0) {
		t.Fatal("0 of 0 reported inadmissible")
	}
}

func TestLedgerShrinkUnderCommitment(t *testing.T) {
	l := NewLedger(4)
	if err := l.Lease("a", 4); err != nil {
		t.Fatalf("lease: %v", err)
	}
	l.SetTotal(2) // fleet shrank under its commitments
	if l.Free() != 0 {
		t.Fatalf("free = %d, want 0 while over-committed", l.Free())
	}
	if l.Admissible(3) {
		t.Fatal("3 of 2 reported admissible after shrink")
	}
	l.Release("a")
	if l.Free() != 2 {
		t.Fatalf("free = %d after release, want 2", l.Free())
	}
	l.SetTotal(-1)
	if l.Total() != 0 {
		t.Fatalf("negative SetTotal recorded %d", l.Total())
	}
}
