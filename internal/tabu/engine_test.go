package tabu_test

import (
	"math"
	"testing"
	"testing/quick"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/qap"
	"pts/internal/rng"
	"pts/internal/tabu"
)

// Compile-time checks: both domains implement the engine interface.
var (
	_ tabu.Problem   = (*qap.State)(nil)
	_ tabu.Problem   = cost.Problem{}
	_ tabu.Refresher = (*qap.State)(nil)
	_ tabu.Refresher = cost.Problem{}
)

func qapProblem(t testing.TB, n int, seed uint64) *qap.State {
	t.Helper()
	return qap.NewState(qap.Random(n, seed), seed+1)
}

func placementProblem(t testing.TB, cells int, seed uint64) cost.Problem {
	t.Helper()
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "tabu", Cells: cells, Seed: seed})
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rng.New(seed + 7))
	ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cost.Problem{Ev: ev}
}

func TestBuildCompoundLeavesMoveApplied(t *testing.T) {
	prob := qapProblem(t, 20, 1)
	before := prob.Cost()
	r := rng.New(5)
	move := tabu.BuildCompound(prob, r, tabu.CompoundParams{Trials: 6, Depth: 4}, nil)
	if move.Empty() {
		t.Fatal("no move built")
	}
	if math.Abs(prob.Cost()-(before+move.Delta)) > 1e-6 {
		t.Fatalf("cost %v != before %v + delta %v", prob.Cost(), before, move.Delta)
	}
	move.Undo(prob)
	if math.Abs(prob.Cost()-before) > 1e-6 {
		t.Fatalf("undo did not restore cost: %v vs %v", prob.Cost(), before)
	}
}

func TestBuildCompoundEarlyAccept(t *testing.T) {
	// With many trials on a random QAP start, an improving first step is
	// near-certain; depth must then be cut short.
	prob := qapProblem(t, 30, 2)
	r := rng.New(9)
	found := false
	for i := 0; i < 20 && !found; i++ {
		move := tabu.BuildCompound(prob, r, tabu.CompoundParams{Trials: 40, Depth: 5}, nil)
		if move.Delta < 0 && len(move.Swaps) < 5 {
			found = true
		}
		move.Undo(prob)
	}
	if !found {
		t.Fatal("no early-accepted improving compound move in 20 attempts")
	}
}

func TestBuildCompoundRespectsRange(t *testing.T) {
	prob := qapProblem(t, 40, 3)
	r := rng.New(11)
	for i := 0; i < 50; i++ {
		move := tabu.BuildCompound(prob, r, tabu.CompoundParams{
			Trials: 4, Depth: 3, RangeLo: 10, RangeHi: 20,
		}, nil)
		for _, s := range move.Swaps {
			if s.A < 10 || s.A >= 20 {
				t.Fatalf("first element %d outside range [10,20)", s.A)
			}
		}
		move.Undo(prob)
	}
}

func TestBuildCompoundStopCallback(t *testing.T) {
	prob := qapProblem(t, 25, 4)
	r := rng.New(13)
	calls := 0
	move := tabu.BuildCompound(prob, r, tabu.CompoundParams{Trials: 1, Depth: 10}, func() bool {
		calls++
		return calls >= 2 // interrupt after two steps
	})
	if len(move.Swaps) > 2 {
		t.Fatalf("interrupt ignored: %d swaps", len(move.Swaps))
	}
	if calls == 0 {
		t.Fatal("step callback never ran")
	}
	move.Undo(prob)
}

func TestBuildCompoundDegenerate(t *testing.T) {
	// Size < 2: no move possible.
	ins := qap.Random(1, 5)
	prob := qap.NewState(ins, 6)
	move := tabu.BuildCompound(prob, rng.New(1), tabu.CompoundParams{Trials: 3, Depth: 3}, nil)
	if !move.Empty() {
		t.Fatal("move built on size-1 problem")
	}
}

func TestSelectAdmissible(t *testing.T) {
	l := tabu.NewList()
	mk := func(delta float64, swaps ...tabu.Swap) tabu.CompoundMove {
		return tabu.CompoundMove{Swaps: swaps, Delta: delta}
	}
	cands := []tabu.CompoundMove{
		mk(5, tabu.Swap{A: 1, B: 2}),
		mk(-3, tabu.Swap{A: 3, B: 4}),
		mk(-1, tabu.Swap{A: 5, B: 6}),
	}
	// Nothing tabu: best delta wins.
	v := tabu.SelectAdmissible(cands, 100, 90, l, 0)
	if v.Index != 1 || v.Aspired || v.Fallback {
		t.Fatalf("want best candidate 1, got %+v", v)
	}
	// Best is tabu and does not aspire: next best wins.
	l.Add(tabu.Attr(3, 4), 100)
	v = tabu.SelectAdmissible(cands, 100, 90, l, 0)
	if v.Index != 2 || v.TabuRejected != 1 {
		t.Fatalf("want candidate 2 after one rejection, got %+v", v)
	}
	// Best is tabu but aspires (100-3 < 98).
	v = tabu.SelectAdmissible(cands, 100, 98, l, 0)
	if v.Index != 1 || !v.Aspired {
		t.Fatalf("want aspired candidate 1, got %+v", v)
	}
	// All tabu, none aspire: least-tenure fallback.
	l.Add(tabu.Attr(5, 6), 50)
	l.Add(tabu.Attr(1, 2), 60)
	v = tabu.SelectAdmissible(cands, 100, 0, l, 0)
	if !v.Fallback || v.Index != 2 {
		t.Fatalf("want fallback candidate 2 (soonest expiry), got %+v", v)
	}
	// Only empty candidates.
	v = tabu.SelectAdmissible([]tabu.CompoundMove{{}, {}}, 1, 0, l, 0)
	if v.Index != -1 {
		t.Fatalf("want -1 for empty candidates, got %+v", v)
	}
}

func TestSearchImprovesQAP(t *testing.T) {
	prob := qapProblem(t, 30, 10)
	start := prob.Cost()
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 8, Trials: 10, Depth: 3, Seed: 42})
	s.Run(400)
	if s.BestCost() >= start {
		t.Fatalf("search did not improve: %v -> %v", start, s.BestCost())
	}
	if s.Stats.Accepted == 0 {
		t.Fatal("no moves accepted")
	}
	// Best snapshot must evaluate to the best cost.
	if err := prob.Restore(s.BestSnapshot()); err != nil {
		t.Fatal(err)
	}
	if math.Abs(prob.Cost()-s.BestCost()) > 1e-6 {
		t.Fatalf("best snapshot cost %v != recorded best %v", prob.Cost(), s.BestCost())
	}
}

func TestSearchImprovesPlacement(t *testing.T) {
	prob := placementProblem(t, 120, 11)
	start := prob.Cost()
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 10, Trials: 8, Depth: 3, RefreshEvery: 32, Seed: 7})
	s.Run(300)
	if s.BestCost() >= start {
		t.Fatalf("placement search did not improve: %v -> %v", start, s.BestCost())
	}
}

func TestSearchNearsOptimumOnTinyQAP(t *testing.T) {
	ins := qap.Random(7, 21)
	opt := qap.BruteForceOptimum(ins)
	prob := qap.NewState(ins, 22)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 5, Trials: 12, Depth: 2, Seed: 3})
	s.Run(600)
	// Within 2% of optimum on a size-7 instance is a generous bound; the
	// engine typically finds the exact optimum.
	if s.BestCost() > opt*1.02+1e-9 {
		t.Fatalf("best %v too far from optimum %v", s.BestCost(), opt)
	}
	if s.BestCost() < opt-1e-6 {
		t.Fatalf("best %v beats brute-force optimum %v: bug in cost bookkeeping", s.BestCost(), opt)
	}
}

func TestSearchDeterministic(t *testing.T) {
	run := func() float64 {
		prob := qapProblem(t, 25, 30)
		s := tabu.NewSearch(prob, tabu.Params{Tenure: 7, Trials: 6, Depth: 3, Seed: 99})
		s.Run(200)
		return s.BestCost()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds diverged: %v vs %v", a, b)
	}
}

func TestSearchTabuRejectionHappens(t *testing.T) {
	// Tiny problem and long tenure force tabu collisions.
	prob := qapProblem(t, 6, 31)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 50, Trials: 3, Depth: 1, Seed: 5})
	s.Run(300)
	if s.Stats.TabuRejected == 0 {
		t.Fatal("no tabu rejections on a tiny problem with long tenure — memory inert?")
	}
}

func TestSearchAspirationHappens(t *testing.T) {
	// Aspirations are rare; scan seeds until one occurs.
	for seed := uint64(0); seed < 25; seed++ {
		prob := qapProblem(t, 10, seed)
		s := tabu.NewSearch(prob, tabu.Params{Tenure: 30, Trials: 8, Depth: 2, Seed: seed})
		s.Run(400)
		if s.Stats.Aspirations > 0 {
			return
		}
	}
	t.Fatal("no aspiration in 25 seeds — criterion never fires")
}

func TestDiversifyMovesLeastFrequent(t *testing.T) {
	prob := qapProblem(t, 20, 40)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 5, Trials: 6, Depth: 2, Seed: 8})
	s.Run(100)
	before := prob.Snapshot()
	s.Diversify(5, 0, 10)
	after := prob.Snapshot()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("diversification did not change the solution")
	}
	// Frequency memory must have been updated.
	if s.Freq.Total() == 0 {
		t.Fatal("frequency memory empty after diversified run")
	}
}

func TestDiversifyEmptyRangeWidens(t *testing.T) {
	prob := qapProblem(t, 10, 41)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 5, Trials: 4, Depth: 2, Seed: 9})
	before := prob.Snapshot()
	s.Diversify(3, 7, 7) // empty range: should widen to the full space
	after := prob.Snapshot()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("diversify with empty range did nothing")
	}
}

func TestAdoptSolution(t *testing.T) {
	prob := qapProblem(t, 15, 50)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 5, Trials: 6, Depth: 2, Seed: 10})
	s.Run(150)
	best := append([]int32(nil), s.BestSnapshot()...)
	// Scramble the current solution, then adopt the best back.
	prob.ApplySwap(0, 1)
	prob.ApplySwap(2, 3)
	if err := s.AdoptSolution(best); err != nil {
		t.Fatal(err)
	}
	if math.Abs(prob.Cost()-s.BestCost()) > 1e-6 {
		t.Fatalf("adopted cost %v != best %v", prob.Cost(), s.BestCost())
	}
	if err := s.AdoptSolution([]int32{1}); err == nil {
		t.Fatal("bad snapshot accepted")
	}
}

func TestFrequencyLeastMoved(t *testing.T) {
	f := tabu.NewFrequency(10)
	f.BumpSwap(1, 2)
	f.BumpSwap(1, 3)
	r := rng.New(2)
	// Elements 0,4..9 have count 0; LeastMoved must return one of them.
	for i := 0; i < 20; i++ {
		e := f.LeastMoved(r, 0, 10)
		if c := f.Count(e); c != 0 {
			t.Fatalf("LeastMoved returned element with count %d", c)
		}
	}
	// Restricted range containing only moved elements.
	e := f.LeastMoved(r, 2, 4)
	if e != 2 && e != 3 {
		t.Fatalf("LeastMoved out of range: %d", e)
	}
	if f.Total() != 4 {
		t.Fatalf("Total = %d, want 4", f.Total())
	}
	f.Reset()
	if f.Total() != 0 || f.Count(1) != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: BuildCompound followed by Undo restores the exact solution.
func TestQuickCompoundUndoIdentity(t *testing.T) {
	f := func(seed uint64, trials, depth uint8) bool {
		prob := qap.NewState(qap.Random(15, seed), seed)
		before := prob.Snapshot()
		r := rng.New(seed + 1)
		move := tabu.BuildCompound(prob, r, tabu.CompoundParams{
			Trials: int(trials%8) + 1,
			Depth:  int(depth%5) + 1,
		}, nil)
		move.Undo(prob)
		after := prob.Snapshot()
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchStepQAP64(b *testing.B) {
	prob := qapProblem(b, 64, 1)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 10, Trials: 8, Depth: 3, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSearchStepPlacementC532(b *testing.B) {
	prob := placementProblem(b, 395, 1)
	s := tabu.NewSearch(prob, tabu.Params{Tenure: 10, Trials: 8, Depth: 3, RefreshEvery: 64, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
