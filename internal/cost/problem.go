package cost

import (
	"pts/internal/netlist"
	"pts/internal/tabu"
)

// Problem adapts an Evaluator to the element-index interface of the tabu
// engine (pts/internal/tabu.Problem): elements are cells, a solution
// snapshot is the slot permutation.
type Problem struct {
	Ev *Evaluator
}

// Cost returns the current fuzzy cost.
func (p Problem) Cost() float64 { return p.Ev.Cost() }

// Size returns the number of cells.
func (p Problem) Size() int32 { return p.Ev.NumCells() }

// DeltaSwap returns the cost change of swapping cells a and b.
func (p Problem) DeltaSwap(a, b int32) float64 {
	return p.Ev.SwapDelta(netlist.CellID(a), netlist.CellID(b))
}

// DeltaSwapBatch evaluates a whole candidate batch in one data-parallel
// pass; out[i] is bit-for-bit what DeltaSwap(cands[i].A, cands[i].B)
// would return. Implements tabu.BatchEvaluator.
func (p Problem) DeltaSwapBatch(cands []tabu.SwapCand, out []float64) {
	p.Ev.DeltaSwapBatch(cands, out)
}

// SetRelaxedAccumulation switches the evaluator's batch accumulation
// mode. Implements tabu.RelaxedAccumulator.
func (p Problem) SetRelaxedAccumulation(on bool) { p.Ev.SetRelaxedAccumulation(on) }

// SetEvalWorkers sizes the evaluator's batch evaluation pool.
// Implements tabu.EvalPooler.
func (p Problem) SetEvalWorkers(workers int) { p.Ev.SetEvalWorkers(workers) }

// Close releases the evaluation pool, if any. Implements tabu.Closer.
func (p Problem) Close() { p.Ev.Close() }

// ApplySwap swaps cells a and b.
func (p Problem) ApplySwap(a, b int32) {
	p.Ev.ApplySwap(netlist.CellID(a), netlist.CellID(b))
}

// Snapshot captures the solution as a slot permutation.
func (p Problem) Snapshot() []int32 { return p.Ev.ExportPerm() }

// SnapshotInto captures the solution into dst, reusing its storage when
// large enough; the allocation-free variant the parallel engine prefers.
func (p Problem) SnapshotInto(dst []int32) []int32 { return p.Ev.ExportPermInto(dst) }

// Restore replaces the solution with a prior snapshot and refreshes the
// timing model.
func (p Problem) Restore(snap []int32) error { return p.Ev.ImportPerm(snap) }

// Refresh reruns timing analysis; the tabu engine calls it periodically.
func (p Problem) Refresh() { p.Ev.Refresh() }

// Clone returns a Problem over an independent copy of the evaluator.
func (p Problem) Clone() Problem { return Problem{Ev: p.Ev.Clone()} }
