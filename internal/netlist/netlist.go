// Package netlist models the combinational circuits that the placement
// substrate and the tabu search optimize.
//
// A Netlist is a set of cells (standard cells plus primary input/output
// pads) connected by multi-terminal nets. Each net has exactly one driver
// cell and one or more sink cells, so the netlist induces a directed
// graph; the synthetic benchmark generator always produces acyclic
// circuits, which the static timing analyzer requires.
//
// The real evaluation circuits of the paper are ISCAS-89 derivatives that
// are not redistributable; Generate builds synthetic instances with the
// same cell counts and realistic connectivity statistics (see DESIGN.md §4).
package netlist

import (
	"fmt"
)

// CellID identifies a cell by index into Netlist.Cells.
type CellID int32

// NetID identifies a net by index into Netlist.Nets.
type NetID int32

// None marks the absence of a cell (e.g. an empty layout slot).
const None CellID = -1

// CellKind distinguishes core cells from I/O pads.
type CellKind uint8

const (
	// Gate is a placeable standard cell.
	Gate CellKind = iota
	// Input is a primary-input pad.
	Input
	// Output is a primary-output pad.
	Output
)

// String returns the kind's mnemonic.
func (k CellKind) String() string {
	switch k {
	case Gate:
		return "gate"
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Cell is one placeable element of the circuit.
type Cell struct {
	Name  string
	Width int     // layout width in abstract units (>= 1)
	Delay float64 // intrinsic switching delay in ns
	Kind  CellKind
}

// Net is a multi-terminal connection with one driver and >= 1 sinks.
type Net struct {
	Name   string
	Driver CellID
	Sinks  []CellID
}

// Degree returns the number of terminals on the net (driver + sinks).
func (n *Net) Degree() int { return 1 + len(n.Sinks) }

// Netlist is an immutable circuit description plus derived indexes.
// Build the indexes with Finish before using the accessor methods.
//
// The adjacency indexes are stored in CSR (compressed sparse row) form:
// one contiguous flat array per relation plus an offsets array, so that
// the placement evaluator's per-trial walks over a cell's nets and a
// net's pins touch consecutive memory instead of chasing per-cell slice
// headers. Accessors return subslices of the flat arrays.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net

	// Derived CSR indexes (built by Finish). For each relation, off has
	// len+1 entries and row i is flat[off[i]:off[i+1]].
	cellNetsFlat []NetID // all nets touching a cell (as driver or sink)
	cellNetsOff  []int32
	drivesFlat   []NetID // nets driven by a cell
	drivesOff    []int32
	sinksOfFlat  []NetID // nets for which the cell is a sink
	sinksOfOff   []int32
	pinsFlat     []CellID // per net: driver first, then sinks
	pinsOff      []int32

	order    []CellID // topological order, inputs first
	level    []int32  // topological level per cell
	maxLevel int32
}

// NumCells returns the number of cells.
func (nl *Netlist) NumCells() int { return len(nl.Cells) }

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// CellNets returns the IDs of all nets touching cell c, sorted by
// ascending net id — the placement engine's swap evaluator relies on
// the ordering to merge-detect nets shared by two cells. The returned
// slice is a view into the shared CSR index; callers must not modify it.
func (nl *Netlist) CellNets(c CellID) []NetID {
	return nl.cellNetsFlat[nl.cellNetsOff[c]:nl.cellNetsOff[c+1]]
}

// CellNetsCSR exposes the raw cell→nets CSR index — cell c's nets are
// flat[off[c]:off[c+1]], ascending — for kernel-style consumers that
// walk many cells' net lists in one pass (the placement batch
// evaluator) without re-deriving a subslice header per cell. Both
// slices are the shared index; callers must not modify them.
func (nl *Netlist) CellNetsCSR() (off []int32, flat []NetID) {
	return nl.cellNetsOff, nl.cellNetsFlat
}

// Drives returns the nets driven by cell c.
func (nl *Netlist) Drives(c CellID) []NetID {
	return nl.drivesFlat[nl.drivesOff[c]:nl.drivesOff[c+1]]
}

// SinkNets returns the nets that feed cell c (c is a sink).
func (nl *Netlist) SinkNets(c CellID) []NetID {
	return nl.sinksOfFlat[nl.sinksOfOff[c]:nl.sinksOfOff[c+1]]
}

// Pins returns every terminal of net n — the driver first, then the
// sinks — as a view into the shared CSR index; callers must not modify
// it. The placement engine's box rescans iterate this instead of the
// Driver field plus the Sinks slice so one net is one contiguous read.
func (nl *Netlist) Pins(n NetID) []CellID {
	return nl.pinsFlat[nl.pinsOff[n]:nl.pinsOff[n+1]]
}

// TopoOrder returns the cells in topological order (primary inputs
// first). Valid only if the netlist is acyclic.
func (nl *Netlist) TopoOrder() []CellID { return nl.order }

// Level returns the topological level of cell c (0 for primary inputs).
func (nl *Netlist) Level(c CellID) int32 { return nl.level[c] }

// MaxLevel returns the deepest topological level.
func (nl *Netlist) MaxLevel() int32 { return nl.maxLevel }

// TotalWidth returns the sum of all cell widths.
func (nl *Netlist) TotalWidth() int {
	w := 0
	for i := range nl.Cells {
		w += nl.Cells[i].Width
	}
	return w
}

// Finish validates the netlist and builds the derived indexes. It must be
// called after constructing or mutating Cells/Nets and before using the
// accessors. It reports the first structural problem found.
func (nl *Netlist) Finish() error {
	n := len(nl.Cells)
	if n == 0 {
		return fmt.Errorf("netlist %q: no cells", nl.Name)
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Width <= 0 {
			return fmt.Errorf("netlist %q: cell %d (%s) has nonpositive width %d", nl.Name, i, c.Name, c.Width)
		}
		if c.Delay < 0 {
			return fmt.Errorf("netlist %q: cell %d (%s) has negative delay", nl.Name, i, c.Name)
		}
	}
	// Validation pass, counting each relation's row sizes.
	totalPins := 0
	cellNetsCnt := make([]int32, n)
	drivesCnt := make([]int32, n)
	sinksOfCnt := make([]int32, n)
	for i := range nl.Nets {
		net := &nl.Nets[i]
		if net.Driver < 0 || int(net.Driver) >= n {
			return fmt.Errorf("netlist %q: net %d (%s) has invalid driver %d", nl.Name, i, net.Name, net.Driver)
		}
		if len(net.Sinks) == 0 {
			return fmt.Errorf("netlist %q: net %d (%s) has no sinks", nl.Name, i, net.Name)
		}
		drivesCnt[net.Driver]++
		cellNetsCnt[net.Driver]++
		seen := map[CellID]bool{net.Driver: true}
		for _, s := range net.Sinks {
			if s < 0 || int(s) >= n {
				return fmt.Errorf("netlist %q: net %d (%s) has invalid sink %d", nl.Name, i, net.Name, s)
			}
			if seen[s] {
				return fmt.Errorf("netlist %q: net %d (%s) lists cell %d twice", nl.Name, i, net.Name, s)
			}
			seen[s] = true
			sinksOfCnt[s]++
			cellNetsCnt[s]++
		}
		totalPins += net.Degree()
	}

	// CSR offsets from the counts, then the fill pass. Row order matches
	// the historical per-cell append order (nets in ascending id).
	offsets := func(cnt []int32) []int32 {
		off := make([]int32, len(cnt)+1)
		for i, c := range cnt {
			off[i+1] = off[i] + c
		}
		return off
	}
	nl.cellNetsOff = offsets(cellNetsCnt)
	nl.drivesOff = offsets(drivesCnt)
	nl.sinksOfOff = offsets(sinksOfCnt)
	nl.cellNetsFlat = make([]NetID, nl.cellNetsOff[n])
	nl.drivesFlat = make([]NetID, nl.drivesOff[n])
	nl.sinksOfFlat = make([]NetID, nl.sinksOfOff[n])
	nl.pinsOff = make([]int32, len(nl.Nets)+1)
	nl.pinsFlat = make([]CellID, 0, totalPins)
	cellNetsCur := append([]int32(nil), nl.cellNetsOff[:n]...)
	drivesCur := append([]int32(nil), nl.drivesOff[:n]...)
	sinksOfCur := append([]int32(nil), nl.sinksOfOff[:n]...)
	for i := range nl.Nets {
		net := &nl.Nets[i]
		id := NetID(i)
		nl.drivesFlat[drivesCur[net.Driver]] = id
		drivesCur[net.Driver]++
		nl.cellNetsFlat[cellNetsCur[net.Driver]] = id
		cellNetsCur[net.Driver]++
		nl.pinsFlat = append(nl.pinsFlat, net.Driver)
		for _, s := range net.Sinks {
			nl.sinksOfFlat[sinksOfCur[s]] = id
			sinksOfCur[s]++
			nl.cellNetsFlat[cellNetsCur[s]] = id
			cellNetsCur[s]++
			nl.pinsFlat = append(nl.pinsFlat, s)
		}
		nl.pinsOff[i+1] = int32(len(nl.pinsFlat))
	}
	return nl.levelize()
}

// levelize computes a topological order and per-cell levels with Kahn's
// algorithm; an error means the netlist has a combinational cycle.
func (nl *Netlist) levelize() error {
	n := len(nl.Cells)
	indeg := make([]int32, n)
	for c := 0; c < n; c++ {
		indeg[c] = int32(len(nl.SinkNets(CellID(c))))
	}
	nl.order = make([]CellID, 0, n)
	nl.level = make([]int32, n)
	queue := make([]CellID, 0, n)
	for c := 0; c < n; c++ {
		if indeg[c] == 0 {
			queue = append(queue, CellID(c))
		}
	}
	nl.maxLevel = 0
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		nl.order = append(nl.order, c)
		for _, netID := range nl.Drives(c) {
			net := &nl.Nets[netID]
			for _, s := range net.Sinks {
				if lv := nl.level[c] + 1; lv > nl.level[s] {
					nl.level[s] = lv
					if lv > nl.maxLevel {
						nl.maxLevel = lv
					}
				}
				indeg[s]--
				if indeg[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
	}
	if len(nl.order) != n {
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d cells ordered)",
			nl.Name, len(nl.order), n)
	}
	return nil
}

// Stats summarizes a netlist's size and connectivity.
type Stats struct {
	Cells, Nets     int
	Inputs, Outputs int
	Pins            int // total terminals over all nets
	AvgNetDegree    float64
	MaxNetDegree    int
	AvgFanin        float64 // average over gate/output cells
	MaxFanin        int
	LogicDepth      int // max topological level
	TotalWidth      int
}

// ComputeStats derives Stats for the netlist. Finish must have been
// called.
func (nl *Netlist) ComputeStats() Stats {
	var s Stats
	s.Cells = len(nl.Cells)
	s.Nets = len(nl.Nets)
	s.LogicDepth = int(nl.maxLevel)
	s.TotalWidth = nl.TotalWidth()
	for i := range nl.Cells {
		switch nl.Cells[i].Kind {
		case Input:
			s.Inputs++
		case Output:
			s.Outputs++
		}
	}
	for i := range nl.Nets {
		d := nl.Nets[i].Degree()
		s.Pins += d
		if d > s.MaxNetDegree {
			s.MaxNetDegree = d
		}
	}
	if s.Nets > 0 {
		s.AvgNetDegree = float64(s.Pins) / float64(s.Nets)
	}
	gateCells, faninSum := 0, 0
	for c := 0; c < len(nl.Cells); c++ {
		if nl.Cells[c].Kind == Input {
			continue
		}
		gateCells++
		fi := len(nl.SinkNets(CellID(c)))
		faninSum += fi
		if fi > s.MaxFanin {
			s.MaxFanin = fi
		}
	}
	if gateCells > 0 {
		s.AvgFanin = float64(faninSum) / float64(gateCells)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("cells=%d nets=%d pins=%d in=%d out=%d avgDeg=%.2f maxDeg=%d avgFanin=%.2f depth=%d width=%d",
		s.Cells, s.Nets, s.Pins, s.Inputs, s.Outputs, s.AvgNetDegree, s.MaxNetDegree, s.AvgFanin, s.LogicDepth, s.TotalWidth)
}
