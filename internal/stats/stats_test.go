package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{4}, 4},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almost(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7.0) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 8, 0}
	if Min(xs) != -2 || Max(xs) != 8 {
		t.Errorf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); !almost(got, 5) {
		t.Errorf("Median = %v, want 5", got)
	}
}

// Property: the accumulator matches the batch formulas.
func TestQuickAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var acc Accumulator
		for i, v := range raw {
			xs[i] = float64(v)
			acc.Add(float64(v))
		}
		return almostRel(acc.Mean(), Mean(xs)) &&
			almostRel(acc.Variance(), Variance(xs)) &&
			acc.Min() == Min(xs) && acc.Max() == Max(xs) && acc.N() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostRel(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Variance()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator should report NaN")
	}
}

func TestSummarizeString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Med, 2) {
		t.Errorf("Summarize wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "q"
	s.Add(1, 10)
	s.Add(2, 20)
	if got := s.Ys(); len(got) != 2 || got[1] != 20 {
		t.Errorf("Ys = %v", got)
	}
	if got := s.Xs(); len(got) != 2 || got[0] != 1 {
		t.Errorf("Xs = %v", got)
	}
}

func TestTraceBasics(t *testing.T) {
	var tr Trace
	if !math.IsNaN(tr.Final()) || !math.IsNaN(tr.BestCost()) || tr.End() != 0 {
		t.Error("empty trace should be NaN/0")
	}
	tr.Record(0, 100)
	tr.Record(1, 80)
	tr.Record(2, 90) // non-improving observation is kept
	tr.Record(3, 60)
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Final() != 60 || tr.BestCost() != 60 || tr.End() != 3 {
		t.Errorf("Final/BestCost/End wrong: %v %v %v", tr.Final(), tr.BestCost(), tr.End())
	}
}

func TestTimeToReach(t *testing.T) {
	var tr Trace
	tr.Record(0, 100)
	tr.Record(5, 70)
	tr.Record(9, 50)
	if tm, ok := tr.TimeToReach(70); !ok || tm != 5 {
		t.Errorf("TimeToReach(70) = %v,%v", tm, ok)
	}
	if tm, ok := tr.TimeToReach(100); !ok || tm != 0 {
		t.Errorf("TimeToReach(100) = %v,%v", tm, ok)
	}
	if _, ok := tr.TimeToReach(10); ok {
		t.Error("TimeToReach(10) should not be reached")
	}
}

func TestCostAt(t *testing.T) {
	var tr Trace
	tr.Record(1, 100)
	tr.Record(2, 80)
	if !math.IsInf(tr.CostAt(0.5), 1) {
		t.Error("CostAt before first point should be +Inf")
	}
	if tr.CostAt(1.5) != 100 {
		t.Errorf("CostAt(1.5) = %v", tr.CostAt(1.5))
	}
	if tr.CostAt(10) != 80 {
		t.Errorf("CostAt(10) = %v", tr.CostAt(10))
	}
}

func TestSpeedup(t *testing.T) {
	var base, fast, never Trace
	base.Record(0, 100)
	base.Record(10, 50)
	fast.Record(0, 100)
	fast.Record(2, 50)
	never.Record(0, 100)
	never.Record(4, 90)

	if s, ok := Speedup(&base, &fast, 50); !ok || !almost(s, 5) {
		t.Errorf("Speedup = %v,%v want 5,true", s, ok)
	}
	// Not reached: lower bound uses end time 4 -> 10/4 = 2.5, reached=false.
	if s, ok := Speedup(&base, &never, 50); ok || !almost(s, 2.5) {
		t.Errorf("Speedup (unreached) = %v,%v want 2.5,false", s, ok)
	}
	// Base never reaches: NaN.
	if s, ok := Speedup(&never, &fast, 50); ok || !math.IsNaN(s) {
		t.Errorf("Speedup (base unreached) = %v,%v", s, ok)
	}
}

func TestSpeedupInstantReach(t *testing.T) {
	var base, tr Trace
	base.Record(0, 100)
	base.Record(8, 40)
	tr.Record(0, 40) // initial solution already meets the target
	if s, ok := Speedup(&base, &tr, 40); !ok || !math.IsInf(s, 1) {
		t.Errorf("instant reach should be +Inf speedup, got %v,%v", s, ok)
	}
	// Both at time zero.
	var b2 Trace
	b2.Record(0, 40)
	if s, ok := Speedup(&b2, &tr, 40); !ok || s != 1 {
		t.Errorf("both-zero speedup should be 1, got %v,%v", s, ok)
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(raw []int8, qraw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qraw) / 255
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
