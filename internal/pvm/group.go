package pvm

// Group operations built on the point-to-point primitives, mirroring
// PVM's pvm_mcast / gather conveniences.

// Multicast sends the same tagged payload to every listed task.
func Multicast(env Env, ids []TaskID, tag Tag, data any) {
	for _, id := range ids {
		env.Send(id, tag, data)
	}
}

// CollectN blocks until n messages matching tags arrived and returns
// them in arrival order.
func CollectN(env Env, n int, tags ...Tag) []Message {
	out := make([]Message, 0, n)
	for len(out) < n {
		out = append(out, env.Recv(tags...))
	}
	return out
}

// CollectFrom blocks until one matching message from every listed task
// arrived, returning them keyed by sender. Messages from tasks outside
// the set with matching tags are also consumed and returned; callers
// that interleave collections must use distinct tags.
func CollectFrom(env Env, ids []TaskID, tags ...Tag) map[TaskID]Message {
	want := make(map[TaskID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make(map[TaskID]Message, len(ids))
	remaining := len(ids)
	for remaining > 0 {
		m := env.Recv(tags...)
		if want[m.From] {
			if _, dup := out[m.From]; !dup {
				remaining--
			}
		}
		out[m.From] = m
	}
	return out
}
