// Package tabu implements the sequential tabu search engine the parallel
// algorithm builds on: swap moves and compound moves, the short-term
// memory (tabu list) with aspiration, long-term frequency memory, the
// Kelly-style diversification the paper cites, and a self-contained
// sequential Search driver.
//
// The engine is problem-agnostic: anything implementing Problem — the
// VLSI placement evaluator (internal/cost) or the QAP state
// (internal/qap) — can be searched. A move is a swap of two elements; a
// compound move is the paper's depth-d sequence of swaps where each step
// keeps the best of m trials and the sequence stops early as soon as the
// cumulative cost improves.
package tabu

import "fmt"

// Problem is the mutable optimization state the engine searches. Element
// indices are 0..Size()-1 (cells for placement, facilities for QAP).
// Implementations are not required to be safe for concurrent use; each
// worker owns its copy.
type Problem interface {
	// Cost returns the current solution cost; lower is better.
	Cost() float64
	// Size returns the number of swappable elements.
	Size() int32
	// DeltaSwap returns the cost change of swapping elements a and b
	// without applying it.
	DeltaSwap(a, b int32) float64
	// ApplySwap swaps elements a and b and updates the cost. A swap is
	// its own inverse.
	ApplySwap(a, b int32)
	// Snapshot captures the current solution compactly.
	Snapshot() []int32
	// Restore replaces the current solution with a prior snapshot.
	Restore(snap []int32) error
}

// Attribute is the move feature stored in the short-term memory: the
// unordered pair of elements that a swap exchanged.
type Attribute struct {
	A, B int32 // canonical: A < B
}

// Attr builds the canonical attribute of a swap of a and b.
func Attr(a, b int32) Attribute {
	if a > b {
		a, b = b, a
	}
	return Attribute{A: a, B: b}
}

// Swap is one elementary move.
type Swap struct {
	A, B int32
}

// Attribute returns the swap's canonical tabu attribute.
func (s Swap) Attribute() Attribute { return Attr(s.A, s.B) }

// String renders the swap.
func (s Swap) String() string { return fmt.Sprintf("(%d<->%d)", s.A, s.B) }

// CompoundMove is a depth-d sequence of swaps evaluated as one move, the
// unit of work a candidate-list worker produces.
type CompoundMove struct {
	Swaps []Swap
	// Delta is the total cost change of applying all swaps in order.
	Delta float64
}

// Attributes returns the tabu attributes of every swap in the move.
func (m *CompoundMove) Attributes() []Attribute {
	attrs := make([]Attribute, len(m.Swaps))
	for i, s := range m.Swaps {
		attrs[i] = s.Attribute()
	}
	return attrs
}

// Empty reports whether the move contains no swaps.
func (m *CompoundMove) Empty() bool { return len(m.Swaps) == 0 }

// Apply applies the move's swaps in order to prob.
func (m *CompoundMove) Apply(prob Problem) {
	for _, s := range m.Swaps {
		prob.ApplySwap(s.A, s.B)
	}
}

// Undo reverts the move by applying its swaps in reverse order (each
// swap is an involution).
func (m *CompoundMove) Undo(prob Problem) {
	for i := len(m.Swaps) - 1; i >= 0; i-- {
		prob.ApplySwap(m.Swaps[i].A, m.Swaps[i].B)
	}
}
