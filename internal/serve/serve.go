// Package serve turns the solver into a long-lived service: one
// Scheduler owns one distributed worker fleet and multiplexes many
// concurrent solver runs over it.
//
// Jobs are submitted as a ProblemSpec (the named built-in workload),
// a worker count, and a search Config; they wait in a bounded strict-
// FIFO queue until the fleet has enough idle workers, then run on a
// per-job lease of concrete worker processes — no worker ever hosts
// tasks of two jobs at once, so the isolation and resilience machinery
// of a single run (loss tolerance, respawn, checkpoints) applies per
// job unchanged. Progress streams as an append-only per-job event log
// (one event per completed global iteration plus lifecycle markers),
// which the HTTP front door (http.go) exposes as server-sent events.
//
// The package is transport-agnostic behind the Fleet interface;
// NettransFleet adapts a nettrans.Master, and tests substitute fakes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/pvm"
	"pts/internal/sched"
	"pts/internal/store"
)

// Fleet is the scheduler's view of its worker pool: how many worker
// processes exist, how many are idle, and the ability to claim some of
// them exclusively for one job.
type Fleet interface {
	// Lease claims n idle workers FIFO by join order, without blocking.
	// It returns an error satisfying errors.Is(err, ErrNoCapacity) when
	// fewer than n workers are idle right now.
	Lease(n int) (Lease, error)
	// FreeWorkers is the number of currently idle workers.
	FreeWorkers() int
	// TotalWorkers is the number of registered workers, idle or leased.
	TotalWorkers() int
	// Nodes describes every registered worker.
	Nodes() []NodeInfo
}

// Lease is one job's exclusive claim on a set of workers: a transport
// hosting exactly one run over them, plus the finisher that delivers
// the result and returns the survivors to the fleet.
type Lease interface {
	pvm.Transport
	pvm.Finisher
	// Workers names the claimed worker processes.
	Workers() []string
	// Release returns the lease's surviving workers to the fleet without
	// delivering a result; it is idempotent and safe after Finish.
	Release()
}

// NodeInfo describes one fleet worker.
type NodeInfo struct {
	Name     string  `json:"name"`
	Speed    float64 `json:"speed"`
	Capacity int     `json:"capacity"`
	Busy     bool    `json:"busy"`
}

// ErrNoCapacity reports a Lease call that found fewer idle workers
// than requested. Fleet implementations wrap it (or nettrans's
// equivalent sentinel, which NettransFleet translates).
var ErrNoCapacity = errors.New("serve: not enough idle workers")

// Submission errors, distinguished so the HTTP layer can map them to
// status codes.
var (
	// ErrQueueFull rejects a submission when the bounded job queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrNeverAdmissible rejects a job that wants more workers than the
	// fleet has at all — it could wait forever (HTTP 409).
	ErrNeverAdmissible = errors.New("serve: job wants more workers than the fleet has")
	// ErrDraining rejects submissions while the scheduler shuts down
	// (HTTP 503).
	ErrDraining = errors.New("serve: scheduler is draining")
	// ErrTerminal reports a cancel of a job that already finished.
	ErrTerminal = errors.New("serve: job already terminal")
)

// Config parameterizes a Scheduler.
type Config struct {
	// Fleet is the worker pool all jobs share. Required.
	Fleet Fleet
	// Resolve constructs a job's Problem from its spec — the same
	// resolver shape worker daemons use (core.WorkerOptions.Resolve), so
	// master and workers agree on the workload. Required.
	Resolve func(core.ProblemSpec) (core.Problem, error)
	// Cluster is the machine model every run executes against (message
	// latencies; speeds for virtual work emulation). Required.
	Cluster cluster.Cluster
	// QueueDepth bounds how many jobs may wait behind the running ones;
	// 0 means DefaultQueueDepth.
	QueueDepth int
	// Store, when non-nil, makes the scheduler crash-only: every job's
	// spec and lifecycle state is journaled under "jobs/<id>", each run
	// persists its master snapshots under "runs/<id>" in the same store,
	// and a restarted scheduler (New over the same store) re-admits
	// queued and mid-run jobs and still serves terminal results. Nil
	// keeps everything in memory — a restart forgets all jobs.
	Store store.Store
	// Logf, when non-nil, receives scheduler lifecycle lines.
	Logf func(format string, args ...any)
}

// DefaultQueueDepth bounds the job queue when Config.QueueDepth is 0.
const DefaultQueueDepth = 16

// Request describes one job submission.
type Request struct {
	// Spec names the built-in workload; the scheduler resolves it at
	// submit time and embeds it in the job payload so resolver-equipped
	// workers rebuild it on their side.
	Spec core.ProblemSpec
	// Workers is how many fleet workers the job leases for its run; 0
	// runs every task in the daemon process (still a real run, just
	// without remote capacity).
	Workers int
	// Cfg is the search configuration. Transport, ProblemSpec and
	// Progress are owned by the scheduler and overwritten.
	Cfg core.Config
}

// Status is a job's lifecycle state.
type Status int

const (
	// Queued jobs wait for fleet capacity in strict submission order.
	Queued Status = iota
	// Running jobs hold a lease and are executing.
	Running
	// Done jobs completed their full iteration budget.
	Done
	// Failed jobs hit an error or lost their run mid-flight; a partial
	// best-so-far result may still be attached.
	Failed
	// Cancelled jobs were stopped by request (or daemon drain), with the
	// best-so-far result attached when they had started.
	Cancelled
)

// String returns the lowercase wire name of the status.
func (s Status) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Event is one entry of a job's append-only event log: a lifecycle
// transition or a per-global-iteration progress report.
type Event struct {
	// Seq is the event's 0-based position in the job's log.
	Seq int `json:"seq"`
	// Kind is "queued", "running", "progress", "done", "failed" or
	// "cancelled".
	Kind string `json:"kind"`
	// Snapshot is the round's progress report; non-nil only for
	// "progress" events.
	Snapshot *core.Snapshot `json:"snapshot,omitempty"`
	// Error is the failure message on "failed" events.
	Error string `json:"error,omitempty"`
}

// Job is one submitted run. All accessors are safe for concurrent use.
type Job struct {
	id   string
	req  Request
	prob core.Problem

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	status    Status
	cancelReq bool
	errMsg    string
	result    *core.Result
	created   time.Time
	started   time.Time
	finished  time.Time
	events    []Event
	changed   chan struct{} // closed and replaced on every event append
	done      chan struct{} // closed on terminal transition
}

// ID returns the job's scheduler-unique identifier.
func (j *Job) ID() string { return j.id }

// Request returns the submission as accepted.
func (j *Job) Request() Request { return j.req }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure message of a Failed job ("" otherwise).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Result returns the job's run result: the full outcome of a Done job,
// the best-so-far of a Cancelled or aborted one, nil while the job has
// not produced one.
func (j *Job) Result() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Done returns a channel closed when the job reaches a terminal
// status.
func (j *Job) Done() <-chan struct{} { return j.done }

// EventsSince returns the events with Seq >= after, whether the log is
// complete (a terminal event has been appended), and a channel closed
// on the next append — the wait handle for streaming consumers.
func (j *Job) EventsSince(after int) (evs []Event, terminal bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after < len(j.events) {
		evs = append(evs, j.events[after:]...)
	}
	return evs, j.status.Terminal(), j.changed
}

// append records an event; callers hold j.mu.
func (j *Job) append(kind string, snap *core.Snapshot, errMsg string) {
	j.events = append(j.events, Event{Seq: len(j.events), Kind: kind, Snapshot: snap, Error: errMsg})
	close(j.changed)
	j.changed = make(chan struct{})
}

// progress is the run's Progress callback: it records one event per
// completed global iteration. It runs on the master task's thread, so
// it only appends and returns.
func (j *Job) progress(cs core.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.append("progress", &cs, "")
}

// finish moves the job to a terminal status exactly once.
func (j *Job) finish(status Status, res *core.Result, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	j.append(status.String(), nil, errMsg)
	close(j.done)
}

// View is a point-in-time copy of a job's externally visible state.
type View struct {
	ID       string           `json:"id"`
	Spec     core.ProblemSpec `json:"problem"`
	Workers  int              `json:"workers"`
	Status   string           `json:"status"`
	Error    string           `json:"error,omitempty"`
	Created  time.Time        `json:"created"`
	Started  *time.Time       `json:"started,omitempty"`
	Finished *time.Time       `json:"finished,omitempty"`
	Events   int              `json:"events"`
	Result   *core.Result     `json:"result,omitempty"`
}

// View snapshots the job. withResult attaches the (potentially large)
// run result; list endpoints leave it off.
func (j *Job) View(withResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:      j.id,
		Spec:    j.req.Spec,
		Workers: j.req.Workers,
		Status:  j.status.String(),
		Error:   j.errMsg,
		Created: j.created,
		Events:  len(j.events),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// Scheduler multiplexes jobs over one fleet: a bounded FIFO queue, a
// capacity ledger refusing over-commitment, and one runner goroutine
// per admitted job.
type Scheduler struct {
	cfg    Config
	ledger *sched.Ledger

	mu       sync.Mutex
	queue    []*Job          // strictly FIFO; queue[0] is next to admit
	jobs     map[string]*Job // every job ever submitted, by id
	order    []string        // submission order, for listing
	seq      int
	draining bool
	wg       sync.WaitGroup // one count per running job

	// runJob executes an admitted job over its lease. It is the real
	// solver run in production and a test seam in unit tests.
	runJob func(ctx context.Context, j *Job, lease Lease) (*core.Result, error)
}

// New returns a Scheduler over cfg's fleet. It validates the pieces a
// misassembled daemon would otherwise discover at first submission.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("serve: Config.Fleet is required")
	}
	if cfg.Resolve == nil {
		return nil, fmt.Errorf("serve: Config.Resolve is required")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("serve: Config.Cluster: %w", err)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: QueueDepth %d < 0", cfg.QueueDepth)
	}
	s := &Scheduler{
		cfg:    cfg,
		ledger: sched.NewLedger(cfg.Fleet.TotalWorkers()),
		jobs:   make(map[string]*Job),
	}
	s.runJob = s.solve
	if cfg.Store != nil {
		s.recoverJobs()
	}
	return s, nil
}

// logf logs through the configured sink.
func (s *Scheduler) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Notify wakes the admission pump; wire it to the fleet's registry
// callback (nettrans.MasterConfig.OnRegistry) so worker joins, losses
// and lease releases admit waiting jobs promptly.
func (s *Scheduler) Notify() { s.pump() }

// Submit validates and enqueues one job. The search configuration is
// validated now (so the submitter learns immediately), the problem is
// resolved now (so master and workers cannot disagree later), and the
// job is refused outright when the queue is full or the fleet could
// never supply the requested workers.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if req.Workers < 0 {
		return nil, fmt.Errorf("serve: workers %d < 0", req.Workers)
	}
	req.Cfg.Transport = nil
	req.Cfg.Progress = nil
	req.Cfg.ProblemSpec = nil
	// Durability is the scheduler's, not the submitter's: the store (and
	// the run's snapshot namespace) is attached at solve time.
	req.Cfg.Store = nil
	req.Cfg.RunID = ""
	req.Cfg.Durable = false
	if err := req.Cfg.Validate(); err != nil {
		return nil, err
	}
	prob, err := s.cfg.Resolve(req.Spec)
	if err != nil {
		return nil, fmt.Errorf("serve: resolve problem: %w", err)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.ledger.SetTotal(s.cfg.Fleet.TotalWorkers())
	if !s.ledger.Admissible(req.Workers) {
		total := s.ledger.Total()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d requested, %d registered", ErrNeverAdmissible, req.Workers, total)
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d queued", ErrQueueFull, len(s.queue))
	}
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:      fmt.Sprintf("j%d", s.seq),
		req:     req,
		prob:    prob,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	j.append("queued", nil, "")
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	s.mu.Unlock()

	s.persistJob(j)
	s.logf("serve: %s queued (%s, %d workers)", j.id, describeSpec(req.Spec), req.Workers)
	s.pump()
	return j, nil
}

// describeSpec renders a spec for log lines.
func describeSpec(spec core.ProblemSpec) string {
	switch spec.Kind {
	case "qap":
		return fmt.Sprintf("qap n=%d seed=%d", spec.QAPN, spec.QAPSeed)
	case "flowshop", "jobshop":
		return fmt.Sprintf("%s %s", spec.Kind, spec.Instance)
	}
	return fmt.Sprintf("%s %s", spec.Kind, spec.Circuit)
}

// Get returns a job by id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Queued returns how many jobs wait in the queue.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Fleet exposes the scheduler's fleet for status endpoints.
func (s *Scheduler) Fleet() Fleet { return s.cfg.Fleet }

// Cancel stops a job: a queued job leaves the queue immediately, a
// running job has its context cancelled and drains to its best-so-far
// (reported as Cancelled once the run unwinds). Cancelling a terminal
// job returns ErrTerminal.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: no job %q", id)
	}
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.mu.Unlock()
			j.finish(Cancelled, nil, "")
			s.persistJob(j)
			s.cleanupRun(j)
			s.logf("serve: %s cancelled while queued", id)
			s.pump() // queue shifted: a smaller job may now be at the head
			return nil
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.status)
	}
	j.cancelReq = true
	j.mu.Unlock()
	j.cancel()
	s.logf("serve: %s cancel requested", id)
	return nil
}

// pump admits queued jobs in strict FIFO order while the head job's
// worker request fits the idle fleet. The head blocks the line by
// design — a later small job never overtakes an earlier large one.
func (s *Scheduler) pump() {
	for {
		s.mu.Lock()
		if s.draining || len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		s.ledger.SetTotal(s.cfg.Fleet.TotalWorkers())
		j := s.queue[0]
		n := j.req.Workers
		if n > s.ledger.Free() || n > s.cfg.Fleet.FreeWorkers() {
			s.mu.Unlock()
			return
		}
		if err := s.ledger.Lease(j.id, n); err != nil {
			// Unreachable by construction (Free was checked under the same
			// lock); refuse loudly rather than silently wedging the queue.
			s.mu.Unlock()
			s.logf("serve: ledger refused %s: %v", j.id, err)
			return
		}
		lease, err := s.cfg.Fleet.Lease(n)
		if err != nil {
			s.ledger.Release(j.id)
			s.mu.Unlock()
			if errors.Is(err, ErrNoCapacity) {
				// The lobby disagreed with the ledger (a worker died between
				// the check and the claim); the loss notification re-pumps.
				return
			}
			s.dropHead(j)
			j.finish(Failed, nil, fmt.Sprintf("lease workers: %v", err))
			s.persistJob(j)
			s.logf("serve: %s failed to lease: %v", j.id, err)
			continue
		}
		s.queue = s.queue[1:]
		j.mu.Lock()
		j.status = Running
		j.started = time.Now()
		j.append("running", nil, "")
		j.mu.Unlock()
		s.wg.Add(1)
		s.mu.Unlock()

		s.persistJob(j)
		s.logf("serve: %s running on %d worker(s) %v", j.id, n, lease.Workers())
		go s.run(j, lease)
	}
}

// dropHead removes j from the queue head if it is still there.
func (s *Scheduler) dropHead(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) > 0 && s.queue[0] == j {
		s.queue = s.queue[1:]
	}
}

// run executes one admitted job and retires its lease and ledger claim
// no matter how the run ends.
func (s *Scheduler) run(j *Job, lease Lease) {
	defer s.wg.Done()
	res, err := s.runJob(j.ctx, j, lease)
	// The run's own finisher already returned the lease's workers to the
	// fleet on every path through core.RunProblem; Release covers runs
	// that never reached it (idempotent either way).
	lease.Release()
	s.mu.Lock()
	s.ledger.Release(j.id)
	s.mu.Unlock()

	j.mu.Lock()
	userCancel := j.cancelReq
	j.mu.Unlock()
	switch {
	case err != nil:
		j.finish(Failed, nil, err.Error())
		s.logf("serve: %s failed: %v", j.id, err)
	case res.Interrupted && userCancel:
		j.finish(Cancelled, res, "")
		s.logf("serve: %s cancelled at best-so-far %.6g after %d round(s)", j.id, res.BestCost, res.Rounds)
	case res.Interrupted:
		j.finish(Failed, res, "run aborted mid-flight; best-so-far result attached")
		s.logf("serve: %s aborted at best-so-far %.6g after %d round(s)", j.id, res.BestCost, res.Rounds)
	default:
		j.finish(Done, res, "")
		s.logf("serve: %s done: best %.6g in %d round(s)", j.id, res.BestCost, res.Rounds)
	}
	s.persistJob(j)
	s.cleanupRun(j)
	s.pump()
}

// solve is the production runner: the job's search configuration over
// its lease, with progress streamed into the job's event log. The spec
// rides in the job payload so resolver-equipped worker daemons rebuild
// the problem on their side.
func (s *Scheduler) solve(ctx context.Context, j *Job, lease Lease) (*core.Result, error) {
	cfg := j.req.Cfg
	cfg.Transport = lease
	spec := j.req.Spec
	cfg.ProblemSpec = &spec
	cfg.Progress = j.progress
	if s.cfg.Store != nil {
		// Durable run: snapshots under "runs/<job id>", so a daemon
		// restart resumes this job where its last barrier left it.
		cfg.Store = s.cfg.Store
		cfg.RunID = runID(j.id)
	}
	return core.RunProblem(ctx, j.prob, s.cfg.Cluster, cfg, core.Real)
}

// Drain shuts the scheduler down: refuse new submissions, cancel every
// queued job, cancel every running job's context (they unwind to their
// best-so-far as Cancelled), and wait for the runners — or for ctx,
// whichever first.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	queued := s.queue
	s.queue = nil
	var running []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.Status() == Running {
			running = append(running, j)
		}
	}
	s.mu.Unlock()

	for _, j := range queued {
		j.finish(Cancelled, nil, "")
		s.persistJob(j)
		s.cleanupRun(j)
	}
	for _, j := range running {
		j.mu.Lock()
		j.cancelReq = true
		j.mu.Unlock()
		j.cancel()
	}
	if len(queued) > 0 || len(running) > 0 {
		s.logf("serve: draining: cancelled %d queued, interrupting %d running", len(queued), len(running))
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}
