package core

import (
	"testing"

	"pts/internal/cluster"
	"pts/internal/netlist"
)

// TestCorrelatedWorkersAreRedundant verifies the emulation that
// motivates the paper's diversification step: with shared random
// streams, no diversification, and full-barrier collection, four TSWs
// perform the identical search — the run's best equals a single TSW's.
func TestCorrelatedWorkersAreRedundant(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Homogeneous(12, 1)
	mk := func(tsws int) Config {
		cfg := quickCfg()
		cfg.TSWs, cfg.CLWs = tsws, 1
		cfg.DiversifyDepth = 0
		cfg.HalfSync = false // forcing would truncate workers differently
		cfg.CorrelatedWorkers = true
		return cfg
	}
	four, err := Run(nl, clus, mk(4), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(nl, clus, mk(1), Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if four.BestCost != one.BestCost {
		t.Fatalf("correlated TSWs should be redundant: 4 workers %v != 1 worker %v",
			four.BestCost, one.BestCost)
	}
}

// TestDiversificationDecorrelatesWorkers: with correlated streams,
// diversification is the only thing distinguishing the TSWs, so the
// diversified 4-worker run must beat (or match) the redundant one —
// the mechanism behind the paper's Figure 9.
func TestDiversificationDecorrelatesWorkers(t *testing.T) {
	nl := netlist.MustBenchmark("c532")
	clus := cluster.Homogeneous(12, 1)
	mk := func(div int) Config {
		cfg := quickCfg()
		cfg.TSWs, cfg.CLWs = 4, 1
		cfg.GlobalIters, cfg.LocalIters = 5, 25
		cfg.DiversifyDepth = div
		cfg.HalfSync = false
		cfg.CorrelatedWorkers = true
		return cfg
	}
	// Average over a few seeds: single runs are noisy.
	var withDiv, noDiv float64
	const reps = 3
	for s := uint64(0); s < reps; s++ {
		cfg := mk(12)
		cfg.Seed = 100 + s
		a, err := Run(nl, clus, cfg, Virtual)
		if err != nil {
			t.Fatal(err)
		}
		withDiv += a.BestCost
		cfg = mk(0)
		cfg.Seed = 100 + s
		b, err := Run(nl, clus, cfg, Virtual)
		if err != nil {
			t.Fatal(err)
		}
		noDiv += b.BestCost
	}
	withDiv /= reps
	noDiv /= reps
	// Allow a whisker of noise, but diversification must not lose
	// ground when it is the only decorrelator.
	if withDiv > noDiv+0.02 {
		t.Fatalf("diversified mean %v worse than redundant mean %v", withDiv, noDiv)
	}
}
