package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/tabu"
)

// Hot-path microbenchmark driver: measures the trial-evaluation kernels
// (the batched DeltaSwapBatch a CLW now runs per candidate batch, plus
// the per-call SwapDelta reference) and the commit kernel (ApplySwap)
// on the paper's circuits, in-process and without the testing package,
// so cmd/ptsbench -hotpath can emit machine-readable numbers for the
// perf trajectory. The per-worker trial throughput is what bounds the
// whole parallel search (Figs. 5–8): every CLW iteration is one batched
// evaluation of Trials candidates plus one ApplySwap.
//
// The batched kernel is measured twice per circuit: once strict (the
// bit-identity default) and once in relaxed-accumulation mode, so the
// report carries both columns and the relaxed speedup is a same-host,
// same-binary ratio.

// hotpathBatch is the candidate-batch size of the headline measurement,
// matching the compound-move batches the engine hands DeltaSwapBatch.
const hotpathBatch = 64

// DefaultHotpathWindows is the default best-of-K repetition count: each
// kernel is timed K times and the fastest window is reported. The
// minimum is the right estimator on shared machines — interference only
// ever adds time — and it is what the CI regression guard compares. The
// per-window spread is reported alongside (ns_per_trial_stddev) so the
// guard tolerance is justified by data, not folklore; raise the window
// count (ptsbench -windows) when the spread approaches the tolerance.
const DefaultHotpathWindows = 5

// HotpathResult is the measurement for one circuit.
//
// Schema notes: ns_per_trial is the batched kernel (batch_size
// candidates per DeltaSwapBatch call) when batch_size is present;
// entries without batch_size predate the batched hot path and measured
// per-call SwapDelta instead. ns_per_apply is absent when the apply
// kernel was not measured — old baselines recorded 0 for circuits the
// pre-PR2 harness skipped, and 0 there means "not measured", never
// "free". The *_relaxed fields measure the same batched kernel in
// relaxed-accumulation mode and are absent in pre-relaxed baselines;
// relaxed_speedup is strict ns_per_trial over relaxed ns_per_trial on
// the same host and binary. ns_per_trial_stddev is the sample standard
// deviation across the measurement windows of the strict batched
// kernel (the quantity the CI guard compares).
type HotpathResult struct {
	Circuit string `json:"circuit"`
	Cells   int    `json:"cells"`
	Nets    int    `json:"nets"`
	Pins    int    `json:"pins"`

	BatchSize        int     `json:"batch_size,omitempty"`
	NsPerTrial       float64 `json:"ns_per_trial"`
	TrialsPerSec     float64 `json:"trials_per_sec"`
	NsPerTrialStddev float64 `json:"ns_per_trial_stddev,omitempty"`
	NsPerTrialScalar float64 `json:"ns_per_trial_scalar,omitempty"`
	AllocsPerTrial   float64 `json:"allocs_per_trial"`
	NsPerApply       float64 `json:"ns_per_apply,omitempty"`

	NsPerTrialRelaxed     float64 `json:"ns_per_trial_relaxed,omitempty"`
	TrialsPerSecRelaxed   float64 `json:"trials_per_sec_relaxed,omitempty"`
	AllocsPerTrialRelaxed float64 `json:"allocs_per_trial_relaxed"`
	RelaxedSpeedup        float64 `json:"relaxed_speedup,omitempty"`
}

// HotpathReport is the BENCH_hotpath.json schema. Baseline carries the
// previously committed results for before/after comparison; WriteHotpath
// fills it from the file being replaced, so regenerating the report
// always keeps the numbers it superseded.
type HotpathReport struct {
	Note            string          `json:"note,omitempty"`
	GoVersion       string          `json:"go_version"`
	GeneratedAt     string          `json:"generated_at"`
	Windows         int             `json:"windows,omitempty"`
	BaselineComment string          `json:"baseline_comment,omitempty"`
	Baseline        []HotpathResult `json:"baseline,omitempty"`
	Results         []HotpathResult `json:"results"`
}

// measure runs fn in timed batches until targetDur is spent and returns
// ns/op and allocs/op.
func measure(targetDur time.Duration, fn func(i int)) (nsPerOp, allocsPerOp float64) {
	const batch = 4096
	var ms0, ms1 runtime.MemStats
	// Warm-up batch (populates caches and scratch buffers).
	for i := 0; i < batch; i++ {
		fn(i)
	}
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops := 0
	// At least one timed batch, so a degenerate duration can never yield
	// a zero-op (Inf/NaN) measurement.
	for ops == 0 || time.Since(start) < targetDur {
		for i := 0; i < batch; i++ {
			fn(ops + i)
		}
		ops += batch
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(elapsed.Nanoseconds()) / float64(ops),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
}

// measureBest splits targetDur into `windows` independent measurement
// windows and returns the fastest ns/op, the worst-case allocs/op (so
// an allocation regression can never hide in a lucky window), and the
// sample standard deviation of ns/op across the windows — the
// run-to-run noise the guard tolerance has to absorb.
func measureBest(targetDur time.Duration, windows int, fn func(i int)) (nsPerOp, allocsPerOp, stddev float64) {
	if windows < 1 {
		windows = 1
	}
	var sum, sumSq float64
	for rep := 0; rep < windows; rep++ {
		ns, allocs := measure(targetDur/time.Duration(windows), fn)
		if rep == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if allocs > allocsPerOp {
			allocsPerOp = allocs
		}
		sum += ns
		sumSq += ns * ns
	}
	if windows > 1 {
		mean := sum / float64(windows)
		variance := (sumSq - float64(windows)*mean*mean) / float64(windows-1)
		if variance > 0 {
			stddev = math.Sqrt(variance)
		}
	}
	return nsPerOp, allocsPerOp, stddev
}

// Hotpath measures the trial-evaluation and commit kernels on the named
// circuits (default: the paper's four) for roughly dur per kernel,
// best-of-`windows` per kernel (0 means DefaultHotpathWindows).
func Hotpath(circuits []string, dur time.Duration, windows int) (*HotpathReport, error) {
	if len(circuits) == 0 {
		circuits = netlist.BenchmarkNames()
	}
	if dur <= 0 {
		dur = time.Second
	}
	if windows < 1 {
		windows = DefaultHotpathWindows
	}
	rep := &HotpathReport{
		Note:        fmt.Sprintf("trial-evaluation hot path, batched kernel headline (best of %d windows; ns_per_trial_stddev records the cross-window spread, which is large on shared hosts), strict and relaxed-accumulation columns, measured at GOMAXPROCS=%d (the relaxed evaluation pool needs >1 CPU to add throughput on top of the reassociated kernels); regenerate with: ptsbench -hotpath", windows, runtime.GOMAXPROCS(0)),
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Windows:     windows,
	}
	for _, name := range circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
		if err != nil {
			return nil, err
		}
		p.Randomize(rand.New(rand.NewSource(1)))
		ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pairs := netlist.BenchmarkPairs(1024, nl.NumCells())
		st := nl.ComputeStats()

		// The same 1024-pair workload the scalar kernel draws from,
		// grouped hotpathBatch at a time into rotating pre-built batches,
		// so the timer sees only the kernel.
		batches := make([][]tabu.SwapCand, len(pairs)/hotpathBatch)
		for bi := range batches {
			cands := make([]tabu.SwapCand, hotpathBatch)
			for i := range cands {
				pr := pairs[bi*hotpathBatch+i]
				cands[i] = tabu.SwapCand{A: int32(pr[0]), B: int32(pr[1])}
			}
			batches[bi] = cands
		}
		out := make([]float64, hotpathBatch)

		batchNs, batchAllocs, batchDev := measureBest(dur, windows, func(i int) {
			ev.DeltaSwapBatch(batches[i%len(batches)], out)
		})
		ev.SetRelaxedAccumulation(true)
		relaxedNs, relaxedAllocs, _ := measureBest(dur, windows, func(i int) {
			ev.DeltaSwapBatch(batches[i%len(batches)], out)
		})
		ev.SetRelaxedAccumulation(false)
		scalarNs, _, _ := measureBest(dur/2, windows, func(i int) {
			pr := pairs[i&1023]
			ev.SwapDelta(pr[0], pr[1])
		})
		applyNs, _, _ := measureBest(dur/4, windows, func(i int) {
			pr := pairs[i&1023]
			ev.ApplySwap(pr[0], pr[1])
		})
		trialNs := batchNs / hotpathBatch
		relTrialNs := relaxedNs / hotpathBatch
		rep.Results = append(rep.Results, HotpathResult{
			Circuit:          name,
			Cells:            st.Cells,
			Nets:             st.Nets,
			Pins:             st.Pins,
			BatchSize:        hotpathBatch,
			NsPerTrial:       trialNs,
			TrialsPerSec:     1e9 / trialNs,
			NsPerTrialStddev: batchDev / hotpathBatch,
			NsPerTrialScalar: scalarNs,
			AllocsPerTrial:   batchAllocs / hotpathBatch,
			NsPerApply:       applyNs,

			NsPerTrialRelaxed:     relTrialNs,
			TrialsPerSecRelaxed:   1e9 / relTrialNs,
			AllocsPerTrialRelaxed: relaxedAllocs / hotpathBatch,
			RelaxedSpeedup:        trialNs / relTrialNs,
		})
	}
	return rep, nil
}

// WriteHotpath writes the report as <dir>/BENCH_hotpath.json. When the
// file already exists, its results become the new file's baseline (with
// a comment recording their provenance), so the before/after comparison
// always spans exactly one regeneration.
func WriteHotpath(rep *HotpathReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_hotpath.json")
	if prev, err := os.ReadFile(path); err == nil {
		var old HotpathReport
		if json.Unmarshal(prev, &old) == nil && len(old.Results) > 0 {
			rep.Baseline = old.Results
			rep.BaselineComment = fmt.Sprintf("previous committed results (%s, %s)", old.GeneratedAt, old.GoVersion)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadHotpath loads a BENCH_hotpath.json report.
func ReadHotpath(path string) (*HotpathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep HotpathReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// HotpathGuard checks a freshly regenerated report (whose baseline
// WriteHotpath filled with the previously committed results) for
// regressions on the named circuits (comma-separated): for each it
// fails when the new strict trials/sec falls more than tolerance below
// the baseline's, when the relaxed column (if the baseline has one)
// regresses the same way, and when either batched kernel allocates —
// all asserted from the JSON artifact itself, so the committed numbers
// and the guarded numbers can never diverge. The CI bench-smoke job
// runs it after ptsbench -hotpath so a kernel change that loses more
// than the tolerance shows up as a red build, not a quietly worse
// committed number.
func HotpathGuard(rep *HotpathReport, circuits string, tolerance float64) (string, error) {
	find := func(rs []HotpathResult, circuit string) *HotpathResult {
		for i := range rs {
			if rs[i].Circuit == circuit {
				return &rs[i]
			}
		}
		return nil
	}
	var msgs []string
	for _, circuit := range strings.Split(circuits, ",") {
		circuit = strings.TrimSpace(circuit)
		if circuit == "" {
			continue
		}
		cur := find(rep.Results, circuit)
		if cur == nil {
			return "", fmt.Errorf("hotpath guard: circuit %q not in results", circuit)
		}
		if cur.AllocsPerTrial != 0 {
			return "", fmt.Errorf("hotpath guard: %s allocates %.2f/trial, want 0", circuit, cur.AllocsPerTrial)
		}
		if cur.AllocsPerTrialRelaxed != 0 {
			return "", fmt.Errorf("hotpath guard: %s relaxed mode allocates %.2f/trial, want 0", circuit, cur.AllocsPerTrialRelaxed)
		}
		base := find(rep.Baseline, circuit)
		if base == nil {
			msgs = append(msgs, fmt.Sprintf("%s: no baseline to compare against (first run)", circuit))
			continue
		}
		floor := base.TrialsPerSec * (1 - tolerance)
		msg := fmt.Sprintf("%s %.0f trials/sec vs baseline %.0f (floor %.0f at %.0f%% tolerance)",
			circuit, cur.TrialsPerSec, base.TrialsPerSec, floor, tolerance*100)
		if cur.TrialsPerSec < floor {
			return "", fmt.Errorf("hotpath guard: %s: REGRESSION", msg)
		}
		msgs = append(msgs, msg+": ok")
		if base.TrialsPerSecRelaxed > 0 {
			rfloor := base.TrialsPerSecRelaxed * (1 - tolerance)
			rmsg := fmt.Sprintf("%s relaxed %.0f trials/sec vs baseline %.0f (floor %.0f)",
				circuit, cur.TrialsPerSecRelaxed, base.TrialsPerSecRelaxed, rfloor)
			if cur.TrialsPerSecRelaxed < rfloor {
				return "", fmt.Errorf("hotpath guard: %s: REGRESSION", rmsg)
			}
			msgs = append(msgs, rmsg+": ok")
		}
	}
	if len(msgs) == 0 {
		return "", fmt.Errorf("hotpath guard: no circuits named")
	}
	return "hotpath guard: " + strings.Join(msgs, "; "), nil
}

// RenderHotpath renders the report as an aligned text table, with
// speedup columns when a baseline is present.
func RenderHotpath(rep *HotpathReport) string {
	base := make(map[string]HotpathResult, len(rep.Baseline))
	for _, r := range rep.Baseline {
		base[r.Circuit] = r
	}
	out := fmt.Sprintf("hot path (%s)\n%-10s %8s %6s %10s %14s %12s %14s %8s %10s %12s %10s\n",
		rep.GoVersion, "circuit", "cells", "batch", "ns/trial", "trials/sec", "ns/relaxed", "relaxed t/s", "rel-x", "ns/scalar", "allocs/trial", "ns/apply")
	for _, r := range rep.Results {
		out += fmt.Sprintf("%-10s %8d %6d %10.1f %14.0f %12.1f %14.0f %7.2fx %10.1f %12.2f %10.1f",
			r.Circuit, r.Cells, r.BatchSize, r.NsPerTrial, r.TrialsPerSec,
			r.NsPerTrialRelaxed, r.TrialsPerSecRelaxed, r.RelaxedSpeedup,
			r.NsPerTrialScalar, r.AllocsPerTrial, r.NsPerApply)
		if b, ok := base[r.Circuit]; ok && r.NsPerTrial > 0 {
			out += fmt.Sprintf("   (%.2fx trials/sec vs baseline)", b.NsPerTrial/r.NsPerTrial)
		}
		out += "\n"
	}
	return out
}
