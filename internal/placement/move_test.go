package placement

import (
	"math"
	"testing"

	"pts/internal/netlist"
	"pts/internal/rng"
)

func TestEmptySlots(t *testing.T) {
	nl := testNetlist(t, 40, 20)
	p, _ := New(nl, AutoLayout(nl, 0.8))
	empties := p.EmptySlots()
	if len(empties) != p.Layout().Slots()-40 {
		t.Fatalf("empty count %d, want %d", len(empties), p.Layout().Slots()-40)
	}
	for _, i := range empties {
		if p.slot[i] != netlist.None {
			t.Fatal("EmptySlots returned an occupied slot")
		}
	}
}

func TestRandomEmptySlot(t *testing.T) {
	nl := testNetlist(t, 30, 21)
	p, _ := New(nl, AutoLayout(nl, 0.75))
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		s := p.RandomEmptySlot(r)
		if s < 0 || p.slot[s] != netlist.None {
			t.Fatalf("RandomEmptySlot returned bad slot %d", s)
		}
	}
}

func TestRandomEmptySlotFullGrid(t *testing.T) {
	nl := &netlist.Netlist{
		Name: "full",
		Cells: []netlist.Cell{
			{Name: "a", Width: 1, Kind: netlist.Input},
			{Name: "b", Width: 1, Kind: netlist.Output},
		},
		Nets: []netlist.Net{{Name: "n", Driver: 0, Sinks: []netlist.CellID{1}}},
	}
	if err := nl.Finish(); err != nil {
		t.Fatal(err)
	}
	p, err := New(nl, Layout{Rows: 1, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.RandomEmptySlot(rng.New(1)); s != -1 {
		t.Fatalf("full grid should return -1, got %d", s)
	}
}

func TestMoveToSlotIncremental(t *testing.T) {
	nl := testNetlist(t, 60, 22)
	p, _ := New(nl, AutoLayout(nl, 0.7))
	r := rng.New(9)
	p.Randomize(r)
	for i := 0; i < 300; i++ {
		c := netlist.CellID(r.Intn(nl.NumCells()))
		to := p.Layout().SlotPos(p.RandomEmptySlot(r))
		predicted, err := p.HPWLDeltaMove(c, to)
		if err != nil {
			t.Fatal(err)
		}
		before := p.HPWL()
		if err := p.MoveToSlot(c, to); err != nil {
			t.Fatal(err)
		}
		if got := p.HPWL() - before; math.Abs(got-predicted) > 1e-6 {
			t.Fatalf("step %d: delta %v != predicted %v", i, got, predicted)
		}
		if full := fullHPWL(p); math.Abs(p.HPWL()-full) > 1e-6 {
			t.Fatalf("step %d: incremental %v != full %v", i, p.HPWL(), full)
		}
		if full := fullMaxRowWidth(p); p.MaxRowWidth() != full {
			t.Fatalf("step %d: maxRowWidth %d != full %d", i, p.MaxRowWidth(), full)
		}
	}
}

func TestMoveToSlotRejectsOccupied(t *testing.T) {
	nl := testNetlist(t, 30, 23)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	occupied := p.PosOf(5)
	if err := p.MoveToSlot(3, occupied); err == nil {
		t.Fatal("move onto an occupied slot accepted")
	}
	if _, err := p.HPWLDeltaMove(3, occupied); err == nil {
		t.Fatal("delta onto an occupied slot accepted")
	}
}

func TestMoveToSlotSelf(t *testing.T) {
	nl := testNetlist(t, 30, 24)
	p, _ := New(nl, AutoLayout(nl, 0.7))
	// Move a cell to its own slot: "occupied" by itself, must error
	// (the slot is not empty), documenting the API contract.
	if err := p.MoveToSlot(2, p.PosOf(2)); err == nil {
		t.Fatal("move onto own slot should report occupied")
	}
}

func TestMoveThenSwapConsistency(t *testing.T) {
	// Interleave the two move kinds and check the oracle throughout.
	nl := testNetlist(t, 50, 25)
	p, _ := New(nl, AutoLayout(nl, 0.8))
	r := rng.New(17)
	p.Randomize(r)
	for i := 0; i < 200; i++ {
		if r.Intn(2) == 0 {
			a := netlist.CellID(r.Intn(nl.NumCells()))
			b := netlist.CellID(r.Intn(nl.NumCells()))
			p.SwapCells(a, b)
		} else {
			c := netlist.CellID(r.Intn(nl.NumCells()))
			to := p.Layout().SlotPos(p.RandomEmptySlot(r))
			if err := p.MoveToSlot(c, to); err != nil {
				t.Fatal(err)
			}
		}
	}
	if math.Abs(p.HPWL()-fullHPWL(p)) > 1e-6 {
		t.Fatal("HPWL diverged under mixed moves")
	}
	if p.MaxRowWidth() != fullMaxRowWidth(p) {
		t.Fatal("row widths diverged under mixed moves")
	}
	// Slot table still consistent.
	for c := 0; c < nl.NumCells(); c++ {
		if p.CellAt(p.PosOf(netlist.CellID(c))) != netlist.CellID(c) {
			t.Fatal("slot table inconsistent")
		}
	}
}

func TestPinDensity(t *testing.T) {
	nl := testNetlist(t, 60, 26)
	p, _ := New(nl, AutoLayout(nl, 0.9))
	p.Randomize(rng.New(2))
	grid := p.PinDensity()
	if len(grid) != p.Layout().Rows || len(grid[0]) != p.Layout().Cols {
		t.Fatal("density grid has wrong shape")
	}
	// Total density mass equals total pins: each net spreads its degree
	// over its bounding box with total weight = degree.
	total := 0.0
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				t.Fatal("negative density")
			}
			total += v
		}
	}
	wantPins := 0.0
	for i := range nl.Nets {
		wantPins += float64(nl.Nets[i].Degree())
	}
	if math.Abs(total-wantPins) > 1e-6 {
		t.Fatalf("density mass %v != total pins %v", total, wantPins)
	}
}
