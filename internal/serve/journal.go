package serve

import (
	"context"
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"time"

	"pts/internal/core"
)

// Job journaling: with Config.Store set, the scheduler records every
// job's spec and lifecycle state as JSON under "jobs/<id>", updated at
// each transition (queued, running, terminal). A restarted daemon
// replays the journal (recover): terminal jobs come back with their
// final result still served by GET /v1/jobs/{id}, and queued or
// running jobs re-enter the queue in their original submission order —
// a job that was mid-run resumes from the master snapshot its run
// persisted under "runs/<id>" in the same store, so the work done
// before the crash is not repeated.
//
// The journal is the job ledger, not the event log: per-round progress
// events live in memory only, and a recovered job starts a fresh log.
// Writes are best-effort — a failing store degrades durability, never
// the job in flight — and the at-least-once discipline applies: a
// daemon killed between a run's completion and the journal write
// re-admits the job and re-runs it (finding no snapshot, from the
// start) rather than losing it.

// jobRecord is the journaled form of one job.
type jobRecord struct {
	ID       string           `json:"id"`
	Spec     core.ProblemSpec `json:"problem"`
	Workers  int              `json:"workers"`
	Cfg      core.Config      `json:"config"`
	Status   string           `json:"status"`
	Error    string           `json:"error,omitempty"`
	Created  time.Time        `json:"created"`
	Started  *time.Time       `json:"started,omitempty"`
	Finished *time.Time       `json:"finished,omitempty"`
	Result   *core.Result     `json:"result,omitempty"`
}

// jobKey is the store key of a job's journal entry.
func jobKey(id string) string { return "jobs/" + id }

// runID is the store namespace a job's run snapshots under; the core
// layer prefixes it to "runs/<id>".
func runID(id string) string { return id }

// persistJob journals the job's current state. Best-effort: failures
// are logged and the job carries on in memory.
func (s *Scheduler) persistJob(j *Job) {
	if s.cfg.Store == nil {
		return
	}
	j.mu.Lock()
	rec := jobRecord{
		ID:      j.id,
		Spec:    j.req.Spec,
		Workers: j.req.Workers,
		Cfg:     j.req.Cfg,
		Status:  j.status.String(),
		Error:   j.errMsg,
		Created: j.created,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		rec.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		rec.Finished = &t
	}
	j.mu.Unlock()

	b, err := json.Marshal(rec)
	if err != nil {
		s.logf("serve: journal %s: marshal: %v", j.id, err)
		return
	}
	if err := s.cfg.Store.Put(jobKey(j.id), b); err != nil {
		s.logf("serve: journal %s: %v", j.id, err)
	}
}

// cleanupRun deletes a terminal job's run snapshot: the core layer
// removes it after a clean completion, this covers the cancelled and
// failed endings (a terminal job is never resumed).
func (s *Scheduler) cleanupRun(j *Job) {
	if s.cfg.Store == nil {
		return
	}
	_ = s.cfg.Store.Delete("runs/" + runID(j.id))
}

// statusFromWire parses a journaled status name.
func statusFromWire(name string) (Status, bool) {
	for _, st := range []Status{Queued, Running, Done, Failed, Cancelled} {
		if st.String() == name {
			return st, true
		}
	}
	return 0, false
}

// jobSeq extracts the numeric part of a job id ("j12" -> 12) for
// recovery ordering; malformed ids sort first.
func jobSeq(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0
	}
	return n
}

// recoverJobs replays the job journal into a freshly constructed
// scheduler. Terminal jobs are restored as served history; queued and
// running jobs re-enter the queue in submission order — admission
// checks are not re-applied, because these jobs were admitted by the
// previous daemon and the fleet they wait for re-registers
// asynchronously. Called from New, before any submission can race it.
func (s *Scheduler) recoverJobs() {
	keys, err := s.cfg.Store.List("jobs/")
	if err != nil {
		s.logf("serve: recover: list journal: %v", err)
		return
	}
	var recs []jobRecord
	for _, k := range keys {
		b, ok, err := s.cfg.Store.Get(k)
		if err != nil || !ok {
			s.logf("serve: recover: read %s: %v", k, err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			s.logf("serve: recover: decode %s: %v", k, err)
			continue
		}
		if rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return jobSeq(recs[i].ID) < jobSeq(recs[j].ID) })

	requeued, restored := 0, 0
	for _, rec := range recs {
		status, ok := statusFromWire(rec.Status)
		if !ok {
			s.logf("serve: recover: %s has unknown status %q", rec.ID, rec.Status)
			continue
		}
		if n := jobSeq(rec.ID); n > s.seq {
			s.seq = n
		}
		j := &Job{
			id:      rec.ID,
			req:     Request{Spec: rec.Spec, Workers: rec.Workers, Cfg: rec.Cfg},
			created: rec.Created,
			changed: make(chan struct{}),
			done:    make(chan struct{}),
		}
		if rec.Started != nil {
			j.started = *rec.Started
		}
		if rec.Finished != nil {
			j.finished = *rec.Finished
		}
		if status.Terminal() {
			// History: the final state (and result) stays queryable; the
			// event log restarts at the terminal marker.
			j.status = status
			j.errMsg = rec.Error
			j.result = rec.Result
			j.append(status.String(), nil, rec.Error)
			close(j.done)
			restored++
		} else {
			// Queued and running jobs alike re-enter the queue: the old
			// daemon's leases died with it, and a re-admitted run resumes
			// from its master snapshot when one was persisted.
			prob, err := s.cfg.Resolve(rec.Spec)
			if err != nil {
				j.status = Failed
				j.errMsg = "recover: resolve problem: " + err.Error()
				j.append("failed", nil, j.errMsg)
				close(j.done)
				s.jobs[j.id] = j
				s.order = append(s.order, j.id)
				s.persistJob(j)
				continue
			}
			j.prob = prob
			j.ctx, j.cancel = context.WithCancel(context.Background())
			j.status = Queued
			j.append("queued", nil, "")
			s.queue = append(s.queue, j)
			requeued++
			if status == Running {
				s.persistJob(j) // journal the running->queued demotion
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	if requeued > 0 || restored > 0 {
		s.logf("serve: recovered %d terminal job(s), re-admitted %d", restored, requeued)
	}
}
