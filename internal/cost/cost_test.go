package cost

import (
	"math"
	"testing"
	"testing/quick"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
)

func newEval(t testing.TB, cells int, seed uint64) *Evaluator {
	t.Helper()
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "cost", Cells: cells, Seed: seed})
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rng.New(seed + 100))
	e, err := NewEvaluator(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorInitialCost(t *testing.T) {
	e := newEval(t, 100, 1)
	c := e.Cost()
	if c < 0 || c > 1 || math.IsNaN(c) {
		t.Fatalf("initial cost %v outside [0,1]", c)
	}
	// Initial objectives sit strictly between goal and ceiling, so the
	// cost must be interior (gradient exists in both directions).
	if c == 0 || c == 1 {
		t.Fatalf("initial cost %v should be interior", c)
	}
	o := e.Objectives()
	if o.Wirelength <= 0 || o.Delay <= 0 || o.Area <= 0 {
		t.Fatalf("degenerate initial objectives: %+v", o)
	}
}

func TestBadBetaRejected(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "b", Cells: 50, Seed: 2})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	cfg := DefaultConfig()
	cfg.Beta = 1.5
	if _, err := NewEvaluator(p, cfg); err == nil {
		t.Fatal("beta out of range accepted")
	}
}

func TestSwapDeltaMatchesApply(t *testing.T) {
	e := newEval(t, 90, 3)
	r := rng.New(7)
	n := int(e.NumCells())
	for i := 0; i < 300; i++ {
		a := netlist.CellID(r.Intn(n))
		b := netlist.CellID(r.Intn(n))
		before := e.Cost()
		predicted := e.SwapDelta(a, b)
		e.ApplySwap(a, b)
		got := e.Cost() - before
		if math.Abs(got-predicted) > 1e-9 {
			t.Fatalf("step %d: applied delta %v != predicted %v", i, got, predicted)
		}
	}
}

func TestApplySwapIsInvolution(t *testing.T) {
	e := newEval(t, 70, 4)
	before := e.Cost()
	beforeObj := e.Objectives()
	e.ApplySwap(3, 40)
	e.ApplySwap(3, 40)
	if math.Abs(e.Cost()-before) > 1e-9 {
		t.Fatalf("cost after double swap %v != %v", e.Cost(), before)
	}
	o := e.Objectives()
	if math.Abs(o.Wirelength-beforeObj.Wirelength) > 1e-6 ||
		math.Abs(o.Delay-beforeObj.Delay) > 1e-9 ||
		o.Area != beforeObj.Area {
		t.Fatalf("objectives after double swap %+v != %+v", o, beforeObj)
	}
}

func TestSelfSwapIsFree(t *testing.T) {
	e := newEval(t, 50, 5)
	if e.SwapDelta(7, 7) != 0 {
		t.Error("self swap delta should be 0")
	}
	before := e.Cost()
	e.ApplySwap(7, 7)
	if e.Cost() != before {
		t.Error("self swap changed cost")
	}
}

func TestRefreshClearsDrift(t *testing.T) {
	e := newEval(t, 80, 6)
	r := rng.New(11)
	n := int(e.NumCells())
	for i := 0; i < 500; i++ {
		e.ApplySwap(netlist.CellID(r.Intn(n)), netlist.CellID(r.Intn(n)))
	}
	objBefore := e.Objectives()
	e.Refresh()
	objAfter := e.Objectives()
	// Wirelength and area are maintained exactly; delay may step because
	// criticalities move.
	if math.Abs(objBefore.Wirelength-objAfter.Wirelength) > 1e-6 {
		t.Errorf("wirelength drifted: %v vs %v", objBefore.Wirelength, objAfter.Wirelength)
	}
	if objBefore.Area != objAfter.Area {
		t.Errorf("area drifted: %v vs %v", objBefore.Area, objAfter.Area)
	}
	if e.CriticalPath() <= 0 {
		t.Error("CPD should be positive after Refresh")
	}
}

func TestCostMonotoneInObjectives(t *testing.T) {
	e := newEval(t, 60, 7)
	o := e.Objectives()
	base := e.CostOf(o)
	worse := o
	worse.Wirelength *= 1.05
	if e.CostOf(worse) < base {
		t.Error("cost decreased when wirelength worsened")
	}
	better := o
	better.Wirelength *= 0.95
	if e.CostOf(better) > base {
		t.Error("cost increased when wirelength improved")
	}
}

// Property: cost is always within [0,1] for arbitrary objective vectors.
func TestQuickCostBounds(t *testing.T) {
	e := newEval(t, 40, 8)
	f := func(w, d, a uint32) bool {
		o := Objectives{
			Wirelength: float64(w),
			Delay:      float64(d) / 1000,
			Area:       float64(a % 10000),
		}
		c := e.CostOf(o)
		return c >= 0 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExportImportPerm(t *testing.T) {
	e := newEval(t, 70, 9)
	r := rng.New(13)
	n := int(e.NumCells())
	for i := 0; i < 50; i++ {
		e.ApplySwap(netlist.CellID(r.Intn(n)), netlist.CellID(r.Intn(n)))
	}
	perm := e.ExportPerm()
	cost := e.Cost()

	e2 := newEval(t, 70, 9) // same circuit and goals, different state
	if err := e2.ImportPerm(perm); err != nil {
		t.Fatal(err)
	}
	// Imported evaluator refreshes criticalities, so compare after
	// refreshing e too.
	e.Refresh()
	if math.Abs(e2.Cost()-e.Cost()) > 1e-9 {
		t.Fatalf("imported cost %v != %v", e2.Cost(), e.Cost())
	}
	if math.Abs(cost-e.Cost()) > 0.2 {
		t.Fatalf("refresh moved cost implausibly: %v -> %v", cost, e.Cost())
	}
	if err := e2.ImportPerm(perm[:3]); err == nil {
		t.Error("short perm accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := newEval(t, 60, 10)
	c := e.Clone()
	if math.Abs(c.Cost()-e.Cost()) > 1e-12 {
		t.Fatalf("clone cost differs: %v vs %v", c.Cost(), e.Cost())
	}
	c.ApplySwap(1, 2)
	if math.Abs(c.Cost()-e.Cost()) < 1e-15 && c.Objectives() == e.Objectives() {
		t.Error("clone mutation did not diverge (suspicious sharing)")
	}
	// Original still consistent.
	before := e.Cost()
	e.Refresh()
	if math.Abs(e.Cost()-before) > 0.1 {
		t.Errorf("original corrupted by clone: %v -> %v", before, e.Cost())
	}
	// Deltas agree between clone and original on the clone's own state.
	d := c.SwapDelta(3, 4)
	cBefore := c.Cost()
	c.ApplySwap(3, 4)
	if math.Abs((c.Cost()-cBefore)-d) > 1e-9 {
		t.Error("clone delta inconsistent")
	}
}

func TestImprovingSwapsReduceCost(t *testing.T) {
	// Greedy descent over random swaps must reduce the cost — the
	// evaluator provides a usable gradient for the search.
	e := newEval(t, 120, 11)
	r := rng.New(17)
	n := int(e.NumCells())
	start := e.Cost()
	improved := 0
	for i := 0; i < 3000; i++ {
		a := netlist.CellID(r.Intn(n))
		b := netlist.CellID(r.Intn(n))
		if e.SwapDelta(a, b) < 0 {
			e.ApplySwap(a, b)
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("no improving swap found in 3000 trials")
	}
	if e.Cost() >= start {
		t.Fatalf("greedy descent did not reduce cost: %v -> %v", start, e.Cost())
	}
}

// The hot-path benchmarks (BenchmarkSwapDelta, BenchmarkApplySwap) live
// in bench_test.go and run on the paper's named circuits.
