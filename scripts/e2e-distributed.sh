#!/usr/bin/env bash
# Multi-process end-to-end check of the distributed TCP transport:
# build cmd/pts, run the same fixed-seed search once in a single
# process and once as one master plus three loopback TCP workers with
# distinct declared speed factors, and require the distributed best
# cost to be exactly the single-process one (with half-sync off the
# search outcome depends only on the seed, not on timing — so "no
# worse" is provable as "identical").
#
# Usage: scripts/e2e-distributed.sh [path-to-pts-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${1:-}
if [ -z "$BIN" ]; then
  BIN=$(mktemp -d)/pts
  go build -o "$BIN" ./cmd/pts
fi

PORT=${PTS_E2E_PORT:-19471}
ADDR="127.0.0.1:${PORT}"
OUT=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$OUT"' EXIT

# One search configuration for both runs. -het=false makes the outcome
# timing-independent; the worker count and speed factors match the
# acceptance criterion (3 TSWs x 2 CLWs over nodes 1.0/0.55/0.3).
FLAGS=(-circuit c532 -seed 7 -het=false -tsws 3 -clws 2 -global 4 -local 15)

echo "== single-process real-mode run"
"$BIN" "${FLAGS[@]}" -mode real -json "$OUT/single.json" > "$OUT/single.log"

echo "== distributed run: 1 master + 3 TCP workers on $ADDR"
"$BIN" "${FLAGS[@]}" -serve "$ADDR" -net-workers 3 -json "$OUT/net.json" > "$OUT/master.log" 2>&1 &
MASTER=$!
sleep 1
for i in 1 2 3; do
  case $i in
    1) SPEED=1.0 ;;
    2) SPEED=0.55 ;;
    3) SPEED=0.3 ;;
  esac
  "$BIN" -circuit c532 -worker "$ADDR" -node-name "w$i" -speed "$SPEED" -jobs 1 \
    > "$OUT/worker$i.log" 2>&1 &
done

if ! wait "$MASTER"; then
  echo "master failed:"; cat "$OUT/master.log"
  exit 1
fi
wait

extract_cost() {
  grep -o '"BestCost": [0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}

SINGLE=$(extract_cost "$OUT/single.json")
DIST=$(extract_cost "$OUT/net.json")
echo "single-process best cost: $SINGLE"
echo "distributed  best cost:   $DIST"

if [ -z "$SINGLE" ] || [ -z "$DIST" ]; then
  echo "FAIL: missing best cost"; exit 1
fi
if [ "$SINGLE" != "$DIST" ]; then
  echo "FAIL: distributed best cost differs from the single-process run"
  exit 1
fi
for i in 1 2 3; do
  grep -q "job completed" "$OUT/worker$i.log" || {
    echo "FAIL: worker $i did not report a completed job"; cat "$OUT/worker$i.log"; exit 1
  }
done
echo "PASS: distributed run reproduces the single-process best cost exactly"
