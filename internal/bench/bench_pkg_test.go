package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pts/internal/stats"
)

// tinyOpts keeps driver tests fast: the smallest circuit, minimal
// budgets, one repeat.
func tinyOpts() Opts {
	return Opts{
		Scale:    0.1,
		Repeats:  1,
		Seed:     5,
		Circuits: []string{"highway"},
	}
}

func TestOptsDefaults(t *testing.T) {
	o := Opts{}.withDefaults()
	if o.Scale != 1 || o.Repeats != 3 || o.Seed == 0 || len(o.Circuits) != 4 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	small := Opts{Scale: 0.1}.withDefaults()
	if small.Repeats != 1 {
		t.Errorf("small scale should reduce repeats, got %d", small.Repeats)
	}
	if got := o.scaled(100, 5); got != 100 {
		t.Errorf("scaled(100) = %d", got)
	}
	if got := small.scaled(100, 5); got != 10 {
		t.Errorf("scaled(100) at 0.1 = %d", got)
	}
	if got := small.scaled(10, 5); got != 5 {
		t.Errorf("scaled floor broken: %d", got)
	}
}

func TestSeedForDistinct(t *testing.T) {
	o := tinyOpts().withDefaults()
	seen := map[uint64]bool{}
	for _, fig := range []string{"fig5", "fig7"} {
		for _, c := range []string{"highway", "c532"} {
			for rep := 0; rep < 3; rep++ {
				s := o.seedFor(fig, c, rep)
				if seen[s] {
					t.Fatalf("seed collision at %s/%s/%d", fig, c, rep)
				}
				seen[s] = true
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	f, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig05" || len(f.Series) != 1 {
		t.Fatalf("figure shape wrong: %s, %d series", f.ID, len(f.Series))
	}
	s := f.Series[0]
	if len(s.Points) != 4 {
		t.Fatalf("want 4 CLW points, got %d", len(s.Points))
	}
	for i, p := range s.Points {
		if p.X != float64(i+1) {
			t.Errorf("x[%d] = %v", i, p.X)
		}
		if p.Y <= 0 || p.Y >= 1 {
			t.Errorf("quality %v outside (0,1)", p.Y)
		}
	}
}

func TestFig6SpeedupBaseline(t *testing.T) {
	o := tinyOpts()
	o.Circuits = []string{"highway"} // intersect falls back to it
	f, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if len(s.Points) != 4 {
			t.Fatalf("want 4 points, got %d", len(s.Points))
		}
		// n=1 compares the baseline against itself: speedup exactly 1.
		if s.Points[0].X != 1 || s.Points[0].Y != 1 {
			t.Errorf("baseline speedup should be 1 at n=1, got %+v", s.Points[0])
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("nonpositive speedup %v", p.Y)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	f, err := Fig7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 1 || len(f.Series[0].Points) != 8 {
		t.Fatalf("want 1 series with 8 points, got %d/%d",
			len(f.Series), len(f.Series[0].Points))
	}
}

func TestFig9TracePairs(t *testing.T) {
	f, err := Fig9(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("want div+nodiv series, got %d", len(f.Series))
	}
	names := f.Series[0].Name + " " + f.Series[1].Name
	if !strings.Contains(names, "/div") || !strings.Contains(names, "/nodiv") {
		t.Fatalf("series misnamed: %s", names)
	}
	for _, s := range f.Series {
		if len(s.Points) < 2 {
			t.Fatalf("trace too short: %d points", len(s.Points))
		}
	}
}

func TestFig10BudgetSweep(t *testing.T) {
	f, err := Fig10(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.Points) < 3 {
		t.Fatalf("too few budget splits: %d", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].X <= s.Points[i-1].X {
			t.Fatal("local-iteration axis not increasing")
		}
	}
}

func TestFig11HetVsHom(t *testing.T) {
	f, err := Fig11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("want het+hom, got %d series", len(f.Series))
	}
	var het, hom *stats.Series
	for i := range f.Series {
		if strings.HasSuffix(f.Series[i].Name, "/het") {
			het = &f.Series[i]
		}
		if strings.HasSuffix(f.Series[i].Name, "/hom") {
			hom = &f.Series[i]
		}
	}
	if het == nil || hom == nil {
		t.Fatal("missing series")
	}
	// The paper's claim: het finishes earlier (same iteration budget).
	hetEnd := het.Points[len(het.Points)-1].X
	homEnd := hom.Points[len(hom.Points)-1].X
	if hetEnd >= homEnd {
		t.Fatalf("het end %v not earlier than hom end %v", hetEnd, homEnd)
	}
}

func TestProgressCallback(t *testing.T) {
	o := tinyOpts()
	var lines []string
	o.Progress = func(s string) { lines = append(lines, s) }
	if _, err := Fig5(o); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 { // 4 CLW settings x 1 repeat x 1 circuit
		t.Fatalf("progress lines = %d, want 4", len(lines))
	}
}

func TestRenderASCII(t *testing.T) {
	f, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderASCII(f)
	for _, want := range []string{"fig05", "highway", "legend:", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q", want)
		}
	}
	// Trace-style figures use the summary table.
	f9, err := Fig9(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	out9 := RenderASCII(f9)
	if !strings.Contains(out9, "final") {
		t.Errorf("trace figure should use the summary table:\n%s", out9)
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	f := &Figure{ID: "x", Title: "empty"}
	if out := RenderASCII(f); !strings.Contains(out, "(no data)") {
		t.Errorf("empty figure render: %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	f, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := WriteCSV(f, dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "fig05.csv" {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+4 {
		t.Errorf("want 5 lines, got %d", len(lines))
	}
}

func TestIntersect(t *testing.T) {
	if got := intersect([]string{"a", "b", "c"}, []string{"c", "a"}); len(got) != 2 || got[0] != "c" {
		t.Errorf("intersect = %v", got)
	}
	if got := intersect([]string{"a"}, []string{"z"}); len(got) != 1 || got[0] != "a" {
		t.Errorf("fallback broken: %v", got)
	}
}

func TestHeteroSmoke(t *testing.T) {
	// Tiny budget with near-free work emulation: exercises both sides of
	// the comparison and the report plumbing without meaningful sleeps.
	rep, err := Hetero(HeteroOpts{
		WorkScale:   1e-6,
		GlobalIters: 1,
		LocalIters:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Static.WallSeconds <= 0 || rep.Adaptive.WallSeconds <= 0 {
		t.Errorf("degenerate wall times: %+v", rep)
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup = %v", rep.Speedup)
	}
	if len(rep.Static.Trace) == 0 || len(rep.Adaptive.Trace) == 0 {
		t.Error("missing best-cost trajectories")
	}
	if len(rep.MachineSpeeds) != 6 {
		t.Errorf("machine speeds = %v", rep.MachineSpeeds)
	}
	dir := t.TempDir()
	path, err := WriteHetero(rep, dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_hetero.json" {
		t.Errorf("path = %s", path)
	}
}

func TestServeSmoke(t *testing.T) {
	// Tiny fleet and job budget with near-free work emulation: exercises
	// the scheduler-over-loopback-fleet plumbing, both concurrency
	// levels, and both output files without meaningful sleeps.
	rep, err := Serve(ServeOpts{
		FleetWorkers: 2,
		Jobs:         3,
		GlobalIters:  1,
		LocalIters:   2,
		WorkScale:    1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 2 || rep.Levels[0].Concurrency != 1 || rep.Levels[1].Concurrency != 2 {
		t.Fatalf("levels = %+v", rep.Levels)
	}
	for _, l := range rep.Levels {
		if l.Jobs != 3 || l.JobsPerMinute <= 0 || l.P50Seconds <= 0 || l.P95Seconds < l.P50Seconds {
			t.Errorf("degenerate level: %+v", l)
		}
	}
	if rep.ThroughputGain <= 0 {
		t.Errorf("throughput gain = %v", rep.ThroughputGain)
	}
	dir := t.TempDir()
	path, err := WriteServe(rep, dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_serve.json" {
		t.Errorf("path = %s", path)
	}
	if _, err := os.Stat(filepath.Join(dir, "bench_serve.md")); err != nil {
		t.Errorf("bench_serve.md not written: %v", err)
	}
}
