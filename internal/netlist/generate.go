package netlist

import (
	"fmt"
	"sort"

	"pts/internal/rng"
)

// GenConfig parameterizes the synthetic circuit generator.
//
// The generator builds a random combinational DAG in topological order:
// primary inputs first, then gates, then primary outputs. Each gate draws
// a fan-in between 1 and MaxFanin (biased toward 2–3, matching typical
// standard-cell libraries) and picks its sources among already-created
// cells with a locality bias: with probability Locality a source is drawn
// from a geometric window over the most recent cells, otherwise uniformly.
// Locality produces the clustered connectivity (Rent's-rule behaviour)
// that makes placement non-trivial; Locality=0 gives a uniform random
// hypergraph.
type GenConfig struct {
	Name    string
	Cells   int // total cells, including input and output pads
	Inputs  int // number of primary inputs (default max(3, Cells/12))
	Outputs int // number of primary outputs (default max(2, Cells/16))

	MaxFanin int     // default 4
	Locality float64 // 0..1, default 0.8

	WidthMin, WidthMax int     // cell widths, defaults 4 and 12
	DelayMin, DelayMax float64 // intrinsic delays in ns, defaults 0.08 and 0.6

	Seed uint64
}

// withDefaults fills zero fields with the documented defaults.
func (c GenConfig) withDefaults() GenConfig {
	if c.Inputs == 0 {
		c.Inputs = c.Cells / 12
		if c.Inputs < 3 {
			c.Inputs = 3
		}
	}
	if c.Outputs == 0 {
		c.Outputs = c.Cells / 16
		if c.Outputs < 2 {
			c.Outputs = 2
		}
	}
	if c.MaxFanin == 0 {
		c.MaxFanin = 4
	}
	if c.Locality == 0 {
		c.Locality = 0.8
	}
	if c.WidthMin == 0 {
		c.WidthMin = 4
	}
	if c.WidthMax == 0 {
		c.WidthMax = 12
	}
	if c.DelayMin == 0 {
		c.DelayMin = 0.08
	}
	if c.DelayMax == 0 {
		c.DelayMax = 0.6
	}
	return c
}

// Generate builds a synthetic combinational circuit from cfg. The result
// is finished (indexes built) and guaranteed acyclic. Generation is fully
// deterministic in cfg.Seed.
func Generate(cfg GenConfig) (*Netlist, error) {
	cfg = cfg.withDefaults()
	if cfg.Cells < cfg.Inputs+cfg.Outputs+1 {
		return nil, fmt.Errorf("netlist: Cells=%d too small for %d inputs + %d outputs",
			cfg.Cells, cfg.Inputs, cfg.Outputs)
	}
	if cfg.WidthMin > cfg.WidthMax || cfg.WidthMin <= 0 {
		return nil, fmt.Errorf("netlist: bad width range [%d,%d]", cfg.WidthMin, cfg.WidthMax)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("netlist: Locality %v outside [0,1]", cfg.Locality)
	}
	r := rng.New(rng.Derive(cfg.Seed, "netlist", cfg.Name))

	nl := &Netlist{Name: cfg.Name}
	nGates := cfg.Cells - cfg.Inputs - cfg.Outputs

	width := func() int { return cfg.WidthMin + r.Intn(cfg.WidthMax-cfg.WidthMin+1) }
	delay := func() float64 { return cfg.DelayMin + r.Float64()*(cfg.DelayMax-cfg.DelayMin) }

	// Primary inputs.
	for i := 0; i < cfg.Inputs; i++ {
		nl.Cells = append(nl.Cells, Cell{
			Name:  fmt.Sprintf("pi%d", i),
			Width: width(),
			Delay: 0.02, // pad buffer delay
			Kind:  Input,
		})
	}

	// pickSource selects a fan-in source among cells [0, limit) with the
	// configured locality bias.
	pickSource := func(limit int) CellID {
		if limit == 1 {
			return 0
		}
		if r.Float64() < cfg.Locality {
			// Geometric window over recent cells: clustered connectivity.
			w := 1 + int(r.ExpFloat64()*float64(limit)/8)
			if w > limit {
				w = limit
			}
			return CellID(limit - 1 - r.Intn(w))
		}
		return CellID(r.Intn(limit))
	}

	// sinksByDriver accumulates net sinks keyed by the driving cell; one
	// cell drives at most one net (standard single-output cells).
	sinksByDriver := make(map[CellID][]CellID)

	// faninCount draws a gate fan-in biased toward 2-3.
	faninCount := func() int {
		x := r.Float64()
		switch {
		case x < 0.15:
			return 1
		case x < 0.55:
			return 2
		case x < 0.85:
			return minInt(3, cfg.MaxFanin)
		default:
			return cfg.MaxFanin
		}
	}

	// Gates.
	for g := 0; g < nGates; g++ {
		id := CellID(len(nl.Cells))
		nl.Cells = append(nl.Cells, Cell{
			Name:  fmt.Sprintf("g%d", g),
			Width: width(),
			Delay: delay(),
			Kind:  Gate,
		})
		k := faninCount()
		used := map[CellID]bool{}
		for f := 0; f < k; f++ {
			src := pickSource(int(id))
			if used[src] {
				continue // duplicate fan-in collapses, like a real gate
			}
			used[src] = true
			sinksByDriver[src] = append(sinksByDriver[src], id)
		}
	}

	// Primary outputs: each taps one signal, preferring cells that do not
	// yet drive anything so the circuit has no dangling logic.
	undriven := make([]CellID, 0)
	for c := 0; c < len(nl.Cells); c++ {
		if len(sinksByDriver[CellID(c)]) == 0 {
			undriven = append(undriven, CellID(c))
		}
	}
	r.Shuffle(len(undriven), func(i, j int) { undriven[i], undriven[j] = undriven[j], undriven[i] })
	for o := 0; o < cfg.Outputs; o++ {
		id := CellID(len(nl.Cells))
		nl.Cells = append(nl.Cells, Cell{
			Name:  fmt.Sprintf("po%d", o),
			Width: width(),
			Delay: 0.02,
			Kind:  Output,
		})
		var src CellID
		if len(undriven) > 0 {
			src = undriven[len(undriven)-1]
			undriven = undriven[:len(undriven)-1]
		} else {
			// All cells drive something; tap a random gate.
			src = CellID(cfg.Inputs + r.Intn(nGates))
		}
		sinksByDriver[src] = append(sinksByDriver[src], id)
	}
	// Remaining undriven cells are wired in so no logic dangles: undriven
	// primary inputs feed a random gate (gates come after all inputs, so
	// the graph stays acyclic); undriven gates feed a random output pad
	// (pads come last).
	for _, c := range undriven {
		var sink CellID
		if nl.Cells[c].Kind == Input && nGates > 0 {
			sink = CellID(cfg.Inputs + r.Intn(nGates))
		} else {
			sink = CellID(cfg.Inputs + nGates + r.Intn(cfg.Outputs))
		}
		sinksByDriver[c] = append(sinksByDriver[c], sink)
	}

	// Materialize nets in driver order for determinism.
	drivers := make([]CellID, 0, len(sinksByDriver))
	for d := range sinksByDriver {
		drivers = append(drivers, d)
	}
	sort.Slice(drivers, func(i, j int) bool { return drivers[i] < drivers[j] })
	for _, d := range drivers {
		sinks := dedupeSinks(sinksByDriver[d])
		nl.Nets = append(nl.Nets, Net{
			Name:   fmt.Sprintf("n_%s", nl.Cells[d].Name),
			Driver: d,
			Sinks:  sinks,
		})
	}

	if err := nl.Finish(); err != nil {
		return nil, err
	}
	return nl, nil
}

func dedupeSinks(sinks []CellID) []CellID {
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
	out := sinks[:0]
	var prev CellID = -2
	for _, s := range sinks {
		if s != prev {
			out = append(out, s)
			prev = s
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MustGenerate is Generate but panics on error; for tests and examples
// with known-good configs.
func MustGenerate(cfg GenConfig) *Netlist {
	nl, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return nl
}
