package pvm

import "testing"

func TestMulticastAndCollectN(t *testing.T) {
	_, err := RunVirtual(Options{Seed: 21}, func(env Env) {
		var ids []TaskID
		for i := 0; i < 5; i++ {
			i := i
			ids = append(ids, env.Spawn("w", 0, func(e Env) {
				m := e.Recv(tagPing)
				e.Send(0, tagPong, m.Data.(int)+i)
			}))
		}
		Multicast(env, ids, tagPing, 100)
		got := CollectN(env, 5, tagPong)
		if len(got) != 5 {
			t.Fatalf("collected %d", len(got))
		}
		sum := 0
		for _, m := range got {
			sum += m.Data.(int)
		}
		if sum != 5*100+0+1+2+3+4 {
			t.Fatalf("sum = %d", sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectFrom(t *testing.T) {
	_, err := RunVirtual(Options{Seed: 22}, func(env Env) {
		var ids []TaskID
		for i := 0; i < 4; i++ {
			i := i
			ids = append(ids, env.Spawn("w", i, func(e Env) {
				e.Send(0, tagData, int(e.Self())*10+i)
			}))
		}
		got := CollectFrom(env, ids, tagData)
		if len(got) != 4 {
			t.Fatalf("collected %d senders", len(got))
		}
		for _, id := range ids {
			if _, ok := got[id]; !ok {
				t.Fatalf("missing message from %d", id)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
