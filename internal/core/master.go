package core

import (
	"fmt"
	"sort"

	"pts/internal/pvm"
	"pts/internal/sched"
	"pts/internal/stats"
	"pts/internal/tabu"
)

// masterState is what the master process writes back to RunProblem.
type masterState struct {
	bestCost    float64
	bestPerm    []int32
	trace       stats.Trace
	stats       WorkerStats
	rounds      int
	interrupted bool
}

// masterRun is the master process body (paper Fig. 2): spawn the TSWs,
// give every one the same initial solution, then per global iteration
// collect their bests (half-sync in heterogeneous mode), select the
// overall best and broadcast it together with its tabu list.
//
// When the run's context is cancelled, the master finishes collecting
// the round in flight, skips the remaining rounds and proceeds straight
// to the shutdown handshake, so every worker drains cleanly and the
// best-so-far is preserved.
func masterRun(env pvm.Env, prob Problem, cfg Config,
	initPerm []int32, initCost float64, out *masterState) {

	out.bestCost = initCost
	out.bestPerm = append([]int32(nil), initPerm...)
	// raw gathers every incumbent improvement any TSW observed; the
	// monotone envelope becomes the run's trace at the end.
	var raw []improvement
	raw = append(raw, improvement{Time: env.Now(), Cost: initCost})

	// The master occupies machine 0; workers go where the assignment
	// policy says.
	tswIDs := make([]pvm.TaskID, cfg.TSWs)
	for i := 0; i < cfg.TSWs; i++ {
		tswIDs[i] = env.SpawnSpec(fmt.Sprintf("tsw%d", i), cfg.tswMachine(i), pvm.Spec{
			Kind: taskKindTSW,
			Data: tswSpec{Master: env.Self()},
			Fn: func(e pvm.Env) {
				tswRun(e, prob, cfg, env.Self())
			},
		})
	}
	// Diversification ranges over the TSWs: the static equal split, or
	// (adaptive) speed-seeded shares re-partitioned by each TSW's
	// observed iteration throughput — the master-level half of the
	// scheduler.
	divRanges := ranges(prob.Size(), cfg.TSWs)
	var track *sched.Tracker
	if cfg.Adaptive {
		track = seededTracker(env, prob.Size(), cfg.TSWs, cfg.tswMachine)
		divRanges = track.Partition()
	}
	tswIdx := make(map[pvm.TaskID]int, cfg.TSWs)
	for i, id := range tswIDs {
		tswIdx[id] = i
		env.Send(id, TagInit, initMsg{
			Perm:      initPerm,
			RangeLo:   divRanges[i][0],
			RangeHi:   divRanges[i][1],
			WorkerIdx: i,
		})
	}

	// latest remembers each TSW's most recent cumulative counters so a
	// progress snapshot can aggregate worker activity mid-run.
	latest := make(map[pvm.TaskID]WorkerStats, cfg.TSWs)

	var bestTabu []tabu.Entry
	roundStart := env.Now()
	for g := 0; g < cfg.GlobalIters; g++ {
		reports := collectBests(env, tswIDs, cfg.HalfSync)
		env.Work(float64(len(reports.msgs)) * cfg.WorkPerTrial)
		improved := false
		forced := 0
		for i, r := range reports.msgs {
			raw = append(raw, r.Points...)
			idx := tswIdx[reports.from[i]]
			if track != nil {
				// One throughput observation per TSW per round: local
				// iterations completed this round over the TSW's report
				// latency from the round start — all on the master's own
				// clock. Latency (not the shared collection time) is what
				// still discriminates under full sync, where every TSW does
				// identical per-round work by construction and only how
				// long it took differs.
				dIters := float64(r.Stats.LocalIters - latest[reports.from[i]].LocalIters)
				track.ObserveWindow(idx, dIters, reports.at[i]-roundStart)
			}
			latest[reports.from[i]] = r.Stats
			if r.Forced {
				forced++
			}
			if r.Cost < out.bestCost {
				out.bestCost = r.Cost
				out.bestPerm = append(out.bestPerm[:0], r.Perm...)
				bestTabu = r.Tabu
				improved = true
			}
		}
		out.rounds++
		// The round-end observation keeps the trace's time axis spanning
		// the full run even when no TSW improved this round.
		raw = append(raw, improvement{Time: env.Now(), Cost: out.bestCost})

		if cfg.Progress != nil {
			snap := Snapshot{
				Round:       g + 1,
				Rounds:      cfg.GlobalIters,
				BestCost:    out.bestCost,
				InitialCost: initCost,
				Elapsed:     env.Now(),
				Improved:    improved,
				Reports:     len(reports.msgs),
				Forced:      forced,
			}
			if track != nil {
				snap.Shares = track.Shares()
			}
			for _, ws := range latest {
				snap.Stats.add(ws)
			}
			cfg.Progress(snap)
		}

		if env.Cancelled() {
			out.interrupted = true
			break
		}
		if g == cfg.GlobalIters-1 {
			break
		}
		// Broadcast the global best (solution + its tabu list) so every
		// TSW restarts the next round from it; under the adaptive
		// scheduler the broadcast also carries each TSW's re-partitioned
		// diversification range.
		rebalanced := false
		if track != nil {
			if next, changed := track.Rebalance(divRanges, 0); changed {
				divRanges = next
				rebalanced = true
			}
		}
		gm := globalMsg{Perm: out.bestPerm, Tabu: bestTabu}
		for i, id := range tswIDs {
			if rebalanced {
				gm.RangeLo, gm.RangeHi = divRanges[i][0], divRanges[i][1]
				gm.Rebalance = true
			}
			env.Send(id, TagGlobal, gm)
		}
		roundStart = env.Now()
	}

	// Shut down and gather counters.
	for _, id := range tswIDs {
		env.Send(id, TagStop, nil)
	}
	for range tswIDs {
		m := env.Recv(TagStats)
		out.stats.add(m.Data.(WorkerStats))
	}

	if cfg.RecordTrace {
		out.trace = envelope(raw)
	}
}

// envelope turns raw improvement observations from many workers into
// the monotone best-cost-versus-time trace: sorted by time, keeping
// only points that improve on everything earlier.
func envelope(raw []improvement) stats.Trace {
	sort.SliceStable(raw, func(i, j int) bool {
		if raw[i].Time != raw[j].Time {
			return raw[i].Time < raw[j].Time
		}
		return raw[i].Cost < raw[j].Cost
	})
	var tr stats.Trace
	best := 0.0
	for i, p := range raw {
		if i == 0 || p.Cost < best {
			best = p.Cost
			tr.Record(p.Time, best)
		} else if i == len(raw)-1 {
			// Keep the final observation so End() reflects the real
			// make-span of the search phase.
			tr.Record(p.Time, best)
		}
	}
	return tr
}

// bestReports pairs each collected bestMsg with its sender and the
// master-clock time it was received — the arrival latencies the
// adaptive tracker turns into throughput weights.
type bestReports struct {
	msgs []bestMsg
	from []pvm.TaskID
	at   []float64
}

// collectBests gathers one bestMsg per TSW; in half-sync mode it forces
// the stragglers once half have reported.
func collectBests(env pvm.Env, tswIDs []pvm.TaskID, halfSync bool) bestReports {
	n := len(tswIDs)
	out := bestReports{msgs: make([]bestMsg, 0, n), from: make([]pvm.TaskID, 0, n), at: make([]float64, 0, n)}
	reported := make(map[pvm.TaskID]bool, n)
	take := func() {
		m := env.Recv(TagBest)
		reported[m.From] = true
		out.msgs = append(out.msgs, m.Data.(bestMsg))
		out.from = append(out.from, m.From)
		out.at = append(out.at, env.Now())
	}
	if halfSync && n > 1 {
		half := (n + 1) / 2
		for len(out.msgs) < half {
			take()
		}
		for _, id := range tswIDs {
			if !reported[id] {
				env.Send(id, TagReportNow, nil)
			}
		}
	}
	for len(out.msgs) < n {
		take()
	}
	return out
}
