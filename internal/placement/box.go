package placement

// L1-compact net boxes: the box array is the trial kernel's hottest
// data structure (every candidate loads one box per affected net), and
// at c1355 scale the int32 layout is ~45 KB — past a 32 KB L1d. Grid
// coordinates are tiny (a few thousand slots per axis at most), so the
// boxes are stored as int16 whenever the layout fits, halving the array
// to ~22 KB and doubling the boxes per cache line; layouts whose
// dimensions could overflow int16 keep the int32 layout. The two
// layouts share one generic implementation and produce bit-identical
// results: every per-net delta is an exact small integer computed the
// same way in either width, and the float accumulation that consumes
// the deltas never sees the storage type.

// coord is a net-box coordinate type: int16 in the compact layout,
// int32 in the wide fallback.
type coord interface{ ~int16 | ~int32 }

// netBoxT is a net's bounding box over its terminals' slot coordinates,
// augmented per axis with the runner-up order statistics: minX2 is the
// second-smallest pin column (equal to minX when several pins share the
// boundary — the boundary-multiplicity encoding), maxX2 the second
// largest, and likewise for rows. The runner-ups make every single-pin
// trial move O(1) with no fallback: removing the pin at a boundary
// exposes the runner-up as the new extreme, removing any other pin
// leaves the boundary alone, and the added pin can only push a boundary
// outward — the classic HPWL bookkeeping of timing-driven placers.
// Nets always have ≥ 2 pins (netlist.Finish enforces a driver plus at
// least one sink), so both statistics exist.
type netBoxT[C coord] struct {
	minX, minX2, maxX2, maxX C
	minY, minY2, maxY2, maxY C
}

// netBox is the wide (int32) layout, also the scan/rebuild currency:
// boxes are always computed wide and narrowed on store when compact.
type netBox = netBoxT[int32]

// compactMaxDim is the largest per-axis layout dimension the compact
// int16 box layout accepts: coordinates then span [0, compactMaxDim-1],
// strictly inside int16 range. Anything larger falls back to the int32
// layout (see Placement.boxes16 == nil).
const compactMaxDim = 1 << 15 // 32768; max coordinate 32767 = MaxInt16

// compactFits reports whether a layout's coordinates fit the int16 box
// layout.
func compactFits(l Layout) bool {
	return l.Rows <= compactMaxDim && l.Cols <= compactMaxDim
}

// length returns the half-perimeter of the box.
func boxLength[C coord](b *netBoxT[C]) float64 {
	return float64(b.maxX-b.minX) + float64(b.maxY-b.minY)
}

// narrowBox converts a wide box to the compact layout; callers
// guarantee the coordinates fit (compactFits held at construction).
func narrowBox(b netBox) netBoxT[int16] {
	return netBoxT[int16]{
		minX: int16(b.minX), minX2: int16(b.minX2), maxX2: int16(b.maxX2), maxX: int16(b.maxX),
		minY: int16(b.minY), minY2: int16(b.minY2), maxY2: int16(b.maxY2), maxY: int16(b.maxY),
	}
}

// widenBox converts a compact box back to the wide currency (cold
// paths: invariant checks, density maps, per-net HPWL queries).
func widenBox(b netBoxT[int16]) netBox {
	return netBox{
		minX: int32(b.minX), minX2: int32(b.minX2), maxX2: int32(b.maxX2), maxX: int32(b.maxX),
		minY: int32(b.minY), minY2: int32(b.minY2), maxY2: int32(b.maxY2), maxY: int32(b.maxY),
	}
}

// axisExtent returns one axis' extent after removing a pin at `from`
// and adding one at `to`, given the (m1 ≤ m2 … M2 ≤ M1) order
// statistics: the runner-up takes over when the boundary pin leaves,
// and the new pin can only push a boundary outward. Small enough to
// inline, and every conditional compiles to a CMOV; instantiated per
// coordinate width with identical integer results.
func axisExtent[C coord](m1, m2, M2, M1, from, to C) C {
	lo, hi := m1, M1
	if from == lo {
		lo = m2
	}
	if from == hi {
		hi = M2
	}
	if to < lo {
		lo = to
	}
	if to > hi {
		hi = to
	}
	return hi - lo
}

// trialDelta returns the integer change of the net's half-perimeter if
// one pin relocated from `from` to `to`, in O(1) with no pin access.
// Extents are non-negative and bounded by the axis dimension, so they
// widen to int32 exactly in either layout.
func trialDelta[C coord](b *netBoxT[C], from, to Pos) int32 {
	return int32(axisExtent(b.minX, b.minX2, b.maxX2, b.maxX, C(from.Col), C(to.Col))) - int32(b.maxX-b.minX) +
		int32(axisExtent(b.minY, b.minY2, b.maxY2, b.maxY, C(from.Row), C(to.Row))) - int32(b.maxY-b.minY)
}

// commitAxis resolves one axis of a committed single-pin move against
// the (m1 ≤ m2 … M2 ≤ M1) order statistics. Removing a pin that sits at
// one of the four tracked statistics would expose an untracked third
// statistic, so ok=false demands a rescan; otherwise the removal leaves
// the statistics alone and the addition updates them exactly.
func commitAxis[C coord](m1, m2, M2, M1, from, to C) (C, C, C, C, bool) {
	if from == to {
		return m1, m2, M2, M1, true
	}
	if from <= m2 || from >= M2 {
		return 0, 0, 0, 0, false
	}
	if to <= m1 {
		m2, m1 = m1, to
	} else if to < m2 {
		m2 = to
	}
	if to >= M1 {
		M2, M1 = M1, to
	} else if to > M2 {
		M2 = to
	}
	return m1, m2, M2, M1, true
}
