package pvm

import (
	"errors"
	"fmt"
)

// Transport hosts one real-time run of a PVM program: it owns where
// tasks execute and how messages travel between them, while the Env
// contract the task bodies see — Spawn/Send/Recv and the group
// operations built on them — stays identical.
//
// Two implementations ship with the repository:
//
//   - InProcess (the default) executes every task as a goroutine of the
//     calling process with in-memory inboxes — the behavior RunReal
//     always had, bit for bit.
//   - nettrans.Master / nettrans worker daemons execute the same
//     protocol across OS processes over TCP, with the master process
//     routing length-prefixed gob frames between nodes.
//
// Run executes root (and everything it spawns) and returns the elapsed
// wall-clock seconds once every task has finished. A transport that
// loses a remote peer mid-run tears the run down and returns an error
// wrapping ErrAborted; the in-process transport never aborts.
type Transport interface {
	Run(opts Options, root TaskFunc) (elapsed float64, err error)
}

// Finisher is an optional Transport capability: after Run has returned
// and the program has assembled its final result, Finish delivers a
// summary of it to every remote peer (so worker processes can report
// the same outcome as the master) and releases them. Transports without
// remote peers need not implement it.
type Finisher interface {
	Finish(summary any) error
}

// Spec describes a spawnable task portably. Fn is the task body used
// whenever the task is hosted in the spawning process (the in-process
// transports always use it); Kind plus Data let a network transport
// rebuild an equivalent body in another process through the program's
// Options.Spawner. Data must be gob-encodable (and its concrete type
// gob-registered) for specs that may cross a process boundary.
type Spec struct {
	Kind string
	Data any
	Fn   TaskFunc
}

// ErrAborted is wrapped by Transport.Run errors when a run was torn
// down rather than drained: a remote worker process died or rejected
// the job mid-run. The program's best-so-far state assembled before the
// abort remains valid — callers typically report it with an
// "interrupted" marker.
var ErrAborted = errors.New("pvm: run aborted")

// taskAbort is the panic value used to unwind a task blocked in Recv
// (or any other blocking primitive) when its transport aborts the run.
// Task goroutine wrappers recover it; any other panic propagates.
type taskAbort struct{}

// recoverAbort is the deferred handler every abortable task runner
// installs: it swallows taskAbort unwinds and re-panics everything
// else.
func recoverAbort() {
	if r := recover(); r != nil {
		if _, ok := r.(taskAbort); !ok {
			panic(r)
		}
	}
}

// InProcess returns the default transport: every task is a goroutine of
// the calling process, messages are in-memory inbox appends. It is the
// exact runtime RunReal used before transports existed.
func InProcess() Transport { return chanTransport{} }

// resolveSpec returns the body of a spec-spawned task hosted in this
// process: the inline Fn when the spawner provided one, else the body
// the program's Spawner rebuilds — the same path a remote host takes.
// A spec with neither is a programming error.
func resolveSpec(spawner TaskFactory, name string, spec Spec) TaskFunc {
	if spec.Fn != nil {
		return spec.Fn
	}
	if spawner == nil {
		panic(fmt.Sprintf("pvm: spawn %q: spec has no Fn and no Options.Spawner is configured", name))
	}
	fn, err := spawner(spec.Kind, spec.Data)
	if err != nil {
		panic(fmt.Sprintf("pvm: spawn %q: %v", name, err))
	}
	return fn
}
