package timing

import (
	"fmt"
	"strings"

	"pts/internal/netlist"
	"pts/internal/placement"
)

// PathElem is one hop of a critical path report.
type PathElem struct {
	Cell     netlist.CellID
	Arrival  float64       // departure time at this cell's output
	ViaNet   netlist.NetID // net that fed this cell (-1 for the start)
	NetDelay float64       // interconnect delay of ViaNet
}

// CriticalPathCells extracts the cells along the critical path of the
// last Analyze, from a primary input to the cell whose departure equals
// the critical path delay. It must be called after Analyze.
func (a *Analyzer) CriticalPathCells(p *placement.Placement) []PathElem {
	// Find the endpoint: the cell with the largest arrival.
	end := netlist.CellID(0)
	for c := 1; c < len(a.arrival); c++ {
		if a.arrival[c] > a.arrival[end] {
			end = netlist.CellID(c)
		}
	}
	// Walk backwards: at each cell pick the fan-in arc that determined
	// its arrival.
	var rev []PathElem
	cur := end
	via := netlist.NetID(-1)
	viaDelay := 0.0
	for {
		rev = append(rev, PathElem{Cell: cur, Arrival: a.arrival[cur], ViaNet: via, NetDelay: viaDelay})
		bestNet := netlist.NetID(-1)
		bestDrv := netlist.CellID(-1)
		bestIn, bestNd := -1.0, 0.0
		for _, n := range a.nl.SinkNets(cur) {
			net := &a.nl.Nets[n]
			nd := a.netDelay(p, n)
			in := a.arrival[net.Driver] + nd
			if in > bestIn {
				bestIn, bestNd = in, nd
				bestNet, bestDrv = n, net.Driver
			}
		}
		if bestNet < 0 {
			break // reached a primary input
		}
		via, viaDelay = bestNet, bestNd
		cur = bestDrv
	}
	// Reverse into source-to-sink order. The ViaNet of element i is the
	// net from element i-1 to element i.
	out := make([]PathElem, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	// Shift the via annotations: rev recorded the net that *fed* each
	// element while walking backwards, which after reversal belongs to
	// the next element.
	for i := len(out) - 1; i > 0; i-- {
		out[i].ViaNet, out[i].NetDelay = out[i-1].ViaNet, out[i-1].NetDelay
	}
	out[0].ViaNet, out[0].NetDelay = -1, 0
	return out
}

// FormatPath renders a critical path report for humans.
func FormatPath(nl *netlist.Netlist, path []PathElem) string {
	var sb strings.Builder
	for i, e := range path {
		cell := &nl.Cells[e.Cell]
		if i == 0 {
			fmt.Fprintf(&sb, "%-10s              arrival %7.3f\n", cell.Name, e.Arrival)
			continue
		}
		fmt.Fprintf(&sb, "%-10s net %-9s arrival %7.3f (wire %.3f)\n",
			cell.Name, nl.Nets[e.ViaNet].Name, e.Arrival, e.NetDelay)
	}
	return sb.String()
}
