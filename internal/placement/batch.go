package placement

import (
	"slices"

	"pts/internal/netlist"
)

// Batched trial evaluation: the data-parallel counterpart of
// SwapDeltaWeighted + MaxRowWidthAfterSwap. One call evaluates a whole
// candidate batch with the per-trial call overhead paid once: the CSR
// adjacency, the net-box array, the position array and the row/width
// state are hoisted into locals for the duration of the batch, and every
// box delta is computed by the same hand-inlined runner-up-statistics
// walk the scalar kernel uses, in one branch-light loop the out-of-order
// core can overlap across candidates. Batches large enough for the
// working set to fall out of cache are additionally visited in ascending
// first-cell order so neighboring candidates share net-box and row-cache
// loads.
//
// Determinism contract: for every candidate i the three outputs are
// bit-for-bit the values the scalar calls would produce — the merge
// walk visits affected nets in globally ascending net id exactly like
// SwapDeltaWeighted, so the float accumulation order is identical, and
// results land at the candidate's own index regardless of the internal
// visit order.

// SwapCand is one candidate pairwise exchange of a data-parallel
// evaluation batch, in cell-id terms.
type SwapCand struct {
	A, B netlist.CellID
}

// batchSortMin is the batch size from which SwapObjectivesBatch visits
// candidates in ascending first-cell order. Below it the sort costs more
// than the shared loads buy: at CLW batch sizes the boxes and CSR rows
// of benchmark-scale circuits are cache-resident anyway (profiling shows
// the sort at ~20% of batch time with no offsetting hit-rate gain), so
// sorting only pays once batches are large enough to thrash cache.
const batchSortMin = 512

// SwapObjectivesBatch evaluates every candidate swap's trial
// objectives against the current placement, without modifying it and
// without allocating (given warm scratch). For candidate i it writes:
//
//	dLen[i]      — the total HPWL change (SwapDeltaWeighted's first result)
//	dWeighted[i] — the w-weighted HPWL change (its second result)
//	area[i]      — the post-swap area objective (MaxRowWidthAfterSwap)
//
// w is indexed by net id (pass nil to skip the weighted sum, as in
// SwapDeltaWeighted); its entries must be finite. The three output
// slices must each have at least len(cands) elements.
func (p *Placement) SwapObjectivesBatch(cands []SwapCand, w []float64, dLen, dWeighted, area []float64) {
	n := len(cands)
	if n == 0 {
		return
	}
	if w == nil {
		// A zero weight vector reproduces the nil-w scalar result (a
		// weighted delta of exactly +0.0) without a branch in the walk.
		if len(p.batchZeroW) < p.nl.NumNets() {
			p.batchZeroW = make([]float64, p.nl.NumNets())
		}
		w = p.batchZeroW
	}

	// Large batches are visited in ascending first-cell order so
	// candidates touching the same region walk the same stretch of the
	// CSR adjacency and net-box arrays back to back. The original index
	// rides in the key's low half; results are written through it, so the
	// visit order is invisible to callers. Small (hot-loop) batches skip
	// the key indirection entirely.
	sorted := n >= batchSortMin
	keys := p.batchKeys
	if sorted {
		if cap(keys) < n {
			keys = make([]int64, n)
			p.batchKeys = keys
		}
		keys = keys[:n]
		for i, c := range cands {
			keys[i] = int64(c.A)<<32 | int64(uint32(i))
		}
		slices.Sort(keys)
	}

	// Batch-wide hoists: one load each instead of one per trial.
	pos := p.pos
	boxes := p.boxes
	off, flat := p.nl.CellNetsCSR()
	widths := p.cellWidth
	rowW := p.rowWidth
	top1W, top2W := p.top1W, p.top2W
	top1Row, top2Row := p.top1Row, p.top2Row

	for t := 0; t < n; t++ {
		idx := t
		if sorted { // loop-invariant: predicted perfectly
			idx = int(uint32(keys[t]))
		}
		a, b := cands[idx].A, cands[idx].B
		pa, pb := pos[a], pos[b]
		var di int32
		var dW float64
		if pa != pb {
			// Merge walk over the two sorted CSR net lists, skipping
			// shared nets; identical structure, arithmetic and
			// accumulation order to SwapDeltaWeighted.
			an := flat[off[a]:off[a+1]]
			bn := flat[off[b]:off[b+1]]
			i, j := 0, 0
			for i < len(an) && j < len(bn) {
				na, nb := an[i], bn[j]
				if na == nb { // shared net: box unchanged
					i++
					j++
					continue
				}
				nid := na
				from, to := pa, pb
				if na > nb {
					nid = nb
					from, to = pb, pa
					j++
				} else {
					i++
				}
				bx := &boxes[nid]
				d := axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, from.Col, to.Col) - (bx.maxX - bx.minX) +
					axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, from.Row, to.Row) - (bx.maxY - bx.minY)
				if d != 0 {
					di += d
					dW += w[nid] * float64(d)
				}
			}
			for ; i < len(an); i++ {
				nid := an[i]
				bx := &boxes[nid]
				d := axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pa.Col, pb.Col) - (bx.maxX - bx.minX) +
					axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pa.Row, pb.Row) - (bx.maxY - bx.minY)
				if d != 0 {
					di += d
					dW += w[nid] * float64(d)
				}
			}
			for ; j < len(bn); j++ {
				nid := bn[j]
				bx := &boxes[nid]
				d := axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pb.Col, pa.Col) - (bx.maxX - bx.minX) +
					axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pb.Row, pa.Row) - (bx.maxY - bx.minY)
				if d != 0 {
					di += d
					dW += w[nid] * float64(d)
				}
			}
		}
		dLen[idx] = float64(di)
		dWeighted[idx] = dW

		// Area via the top-two row cache, inlined MaxRowWidthAfterSwap.
		m := top1W
		if ra, rb := pa.Row, pb.Row; ra != rb {
			wa, wb := widths[a], widths[b]
			if wa != wb {
				na := rowW[ra] + int(wb-wa)
				nb := rowW[rb] + int(wa-wb)
				// topExcluding(ra, rb), inlined.
				m = 0
				if top1Row != ra && top1Row != rb {
					m = top1W
				} else if top2Row >= 0 && top2Row != ra && top2Row != rb {
					m = top2W
				}
				if na > m {
					m = na
				}
				if nb > m {
					m = nb
				}
			}
		}
		area[idx] = float64(m)
	}
}
