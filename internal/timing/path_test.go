package timing

import (
	"math"
	"strings"
	"testing"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
)

func TestCriticalPathCellsChain(t *testing.T) {
	nl, p := chain(t)
	a := New(nl, Config{LoadFactor: 0.5, WireDelayPerUnit: 0.1})
	a.Analyze(p)
	path := a.CriticalPathCells(p)
	// The chain's critical path is the whole chain: pi, g0, g1, po.
	if len(path) != 4 {
		t.Fatalf("path length %d, want 4", len(path))
	}
	wantCells := []netlist.CellID{0, 1, 2, 3}
	for i, e := range path {
		if e.Cell != wantCells[i] {
			t.Errorf("hop %d: cell %d, want %d", i, e.Cell, wantCells[i])
		}
	}
	// Arrivals must be strictly increasing and end at the CPD.
	for i := 1; i < len(path); i++ {
		if path[i].Arrival <= path[i-1].Arrival {
			t.Error("arrivals not increasing along the path")
		}
		if path[i].ViaNet < 0 {
			t.Errorf("hop %d missing via net", i)
		}
	}
	if path[0].ViaNet != -1 {
		t.Error("first hop should have no via net")
	}
	if math.Abs(path[len(path)-1].Arrival-a.CriticalPath()) > 1e-9 {
		t.Errorf("endpoint arrival %v != CPD %v", path[len(path)-1].Arrival, a.CriticalPath())
	}
}

func TestCriticalPathCellsGenerated(t *testing.T) {
	nl := netlist.MustGenerate(netlist.GenConfig{Name: "cp", Cells: 200, Seed: 5})
	p, _ := placement.New(nl, placement.AutoLayout(nl, 0.9))
	p.Randomize(rng.New(3))
	a := New(nl, DefaultConfig())
	a.Analyze(p)
	path := a.CriticalPathCells(p)
	if len(path) < 2 {
		t.Fatalf("degenerate path: %d hops", len(path))
	}
	// Path must start at a primary input (level 0, no fan-in).
	if len(nl.SinkNets(path[0].Cell)) != 0 {
		t.Error("path does not start at a source cell")
	}
	// Each consecutive pair must be connected by the reported net, and
	// the arrival recurrence must hold.
	for i := 1; i < len(path); i++ {
		net := &nl.Nets[path[i].ViaNet]
		if net.Driver != path[i-1].Cell {
			t.Fatalf("hop %d: via net %d not driven by previous cell", i, path[i].ViaNet)
		}
		found := false
		for _, s := range net.Sinks {
			if s == path[i].Cell {
				found = true
			}
		}
		if !found {
			t.Fatalf("hop %d: cell %d not a sink of via net", i, path[i].Cell)
		}
	}
	if math.Abs(path[len(path)-1].Arrival-a.CriticalPath()) > 1e-9 {
		t.Error("path endpoint is not the critical endpoint")
	}
	// Every hop on the critical path has (near-)zero slack.
	for _, e := range path {
		if s := a.Slack(e.Cell); math.Abs(s) > 1e-6 {
			t.Errorf("cell %d on critical path has slack %v", e.Cell, s)
		}
	}
}

func TestFormatPath(t *testing.T) {
	nl, p := chain(t)
	a := New(nl, Config{LoadFactor: 0.5, WireDelayPerUnit: 0.1})
	a.Analyze(p)
	out := FormatPath(nl, a.CriticalPathCells(p))
	for _, want := range []string{"pi", "g0", "g1", "po", "arrival"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted path missing %q:\n%s", want, out)
		}
	}
}
