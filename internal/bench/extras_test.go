package bench

import "testing"

func TestExtraAssignment(t *testing.T) {
	f, err := ExtraAssignment(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "extra-assign" || len(f.Series) != 1 {
		t.Fatalf("figure shape wrong: %s %d", f.ID, len(f.Series))
	}
	if len(f.Series[0].Points) != 2 {
		t.Fatalf("want 2 policies, got %d", len(f.Series[0].Points))
	}
	for _, p := range f.Series[0].Points {
		if p.Y <= 0 {
			t.Fatal("nonpositive runtime")
		}
	}
	if len(f.Notes) < 3 {
		t.Error("missing per-policy notes")
	}
}

func TestExtraCorrelation(t *testing.T) {
	f, err := ExtraCorrelation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.Points) != 4 {
		t.Fatalf("want 4 variants, got %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Y <= 0 || p.Y >= 1 {
			t.Fatalf("cost %v out of range", p.Y)
		}
	}
}

func TestExtraMPDS(t *testing.T) {
	f, err := ExtraMPDS(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.Points) != 2 {
		t.Fatalf("want MPSS+MPDS, got %d points", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Y <= 0 || p.Y >= 1 {
			t.Fatalf("cost %v out of range", p.Y)
		}
	}
}
