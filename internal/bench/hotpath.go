package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
)

// Hot-path microbenchmark driver: measures the trial-evaluation kernel
// (the full evaluator SwapDelta a CLW runs per trial) and the commit
// kernel (ApplySwap) on the paper's circuits, in-process and without the
// testing package, so cmd/ptsbench -hotpath can emit machine-readable
// numbers for the perf trajectory. The per-worker trial throughput is
// what bounds the whole parallel search (Figs. 5–8): every CLW iteration
// is Trials × SwapDelta plus one ApplySwap.

// HotpathResult is the measurement for one circuit.
type HotpathResult struct {
	Circuit string `json:"circuit"`
	Cells   int    `json:"cells"`
	Nets    int    `json:"nets"`
	Pins    int    `json:"pins"`

	NsPerTrial     float64 `json:"ns_per_trial"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	NsPerApply     float64 `json:"ns_per_apply"`
}

// HotpathReport is the BENCH_hotpath.json schema. Baseline carries the
// numbers of an earlier kernel for before/after comparison; WriteHotpath
// preserves any baseline already present in the output file, so
// regenerating the report keeps the historical reference.
type HotpathReport struct {
	Note            string          `json:"note,omitempty"`
	GoVersion       string          `json:"go_version"`
	GeneratedAt     string          `json:"generated_at"`
	BaselineComment string          `json:"baseline_comment,omitempty"`
	Baseline        []HotpathResult `json:"baseline,omitempty"`
	Results         []HotpathResult `json:"results"`
}

// measure runs fn in timed batches until targetDur is spent and returns
// ns/op and allocs/op.
func measure(targetDur time.Duration, fn func(i int)) (nsPerOp, allocsPerOp float64) {
	const batch = 4096
	var ms0, ms1 runtime.MemStats
	// Warm-up batch (populates caches and scratch buffers).
	for i := 0; i < batch; i++ {
		fn(i)
	}
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops := 0
	// At least one timed batch, so a degenerate duration can never yield
	// a zero-op (Inf/NaN) measurement.
	for ops == 0 || time.Since(start) < targetDur {
		for i := 0; i < batch; i++ {
			fn(ops + i)
		}
		ops += batch
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(elapsed.Nanoseconds()) / float64(ops),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
}

// Hotpath measures the trial-evaluation and commit kernels on the named
// circuits (default: the paper's four) for roughly dur per kernel.
func Hotpath(circuits []string, dur time.Duration) (*HotpathReport, error) {
	if len(circuits) == 0 {
		circuits = netlist.BenchmarkNames()
	}
	if dur <= 0 {
		dur = time.Second
	}
	rep := &HotpathReport{
		Note:        "trial-evaluation hot path; regenerate with: ptsbench -hotpath",
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, name := range circuits {
		nl, err := netlist.Benchmark(name)
		if err != nil {
			return nil, err
		}
		p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
		if err != nil {
			return nil, err
		}
		p.Randomize(rand.New(rand.NewSource(1)))
		ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pairs := netlist.BenchmarkPairs(1024, nl.NumCells())
		st := nl.ComputeStats()

		trialNs, trialAllocs := measure(dur, func(i int) {
			pr := pairs[i&1023]
			ev.SwapDelta(pr[0], pr[1])
		})
		applyNs, _ := measure(dur/4, func(i int) {
			pr := pairs[i&1023]
			ev.ApplySwap(pr[0], pr[1])
		})
		rep.Results = append(rep.Results, HotpathResult{
			Circuit:        name,
			Cells:          st.Cells,
			Nets:           st.Nets,
			Pins:           st.Pins,
			NsPerTrial:     trialNs,
			TrialsPerSec:   1e9 / trialNs,
			AllocsPerTrial: trialAllocs,
			NsPerApply:     applyNs,
		})
	}
	return rep, nil
}

// WriteHotpath writes the report as <dir>/BENCH_hotpath.json. When the
// file already exists, its baseline section (or, lacking one, its
// previous results) is carried over as the new file's baseline so the
// before/after comparison survives regeneration.
func WriteHotpath(rep *HotpathReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_hotpath.json")
	if prev, err := os.ReadFile(path); err == nil {
		var old HotpathReport
		if json.Unmarshal(prev, &old) == nil {
			rep.Baseline = old.Baseline
			rep.BaselineComment = old.BaselineComment
			if len(rep.Baseline) == 0 {
				rep.Baseline = old.Results
				rep.BaselineComment = fmt.Sprintf("previous results (%s, %s)", old.GeneratedAt, old.GoVersion)
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderHotpath renders the report as an aligned text table, with
// speedup columns when a baseline is present.
func RenderHotpath(rep *HotpathReport) string {
	base := make(map[string]HotpathResult, len(rep.Baseline))
	for _, r := range rep.Baseline {
		base[r.Circuit] = r
	}
	out := fmt.Sprintf("hot path (%s)\n%-10s %8s %10s %14s %12s %10s\n",
		rep.GoVersion, "circuit", "cells", "ns/trial", "trials/sec", "allocs/trial", "ns/apply")
	for _, r := range rep.Results {
		out += fmt.Sprintf("%-10s %8d %10.1f %14.0f %12.2f %10.1f",
			r.Circuit, r.Cells, r.NsPerTrial, r.TrialsPerSec, r.AllocsPerTrial, r.NsPerApply)
		if b, ok := base[r.Circuit]; ok && r.NsPerTrial > 0 {
			out += fmt.Sprintf("   (%.2fx trials/sec vs baseline)", b.NsPerTrial/r.NsPerTrial)
		}
		out += "\n"
	}
	return out
}
