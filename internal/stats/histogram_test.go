package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram wrong")
	}
	if v, c := h.Mode(); v != 0 || c != 0 {
		t.Fatal("empty mode wrong")
	}
	for _, v := range []int{2, 3, 2, 5, 2, 3} {
		h.Add(v)
	}
	if h.Total() != 6 || h.Count(2) != 3 || h.Count(3) != 2 || h.Count(5) != 1 || h.Count(9) != 0 {
		t.Fatalf("counts wrong")
	}
	if got := h.Values(); len(got) != 3 || got[0] != 2 || got[2] != 5 {
		t.Fatalf("Values = %v", got)
	}
	if math.Abs(h.Mean()-17.0/6) > 1e-9 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if v, c := h.Mode(); v != 2 || c != 3 {
		t.Fatalf("Mode = %d,%d", v, c)
	}
}

func TestHistogramModeTieBreaksSmallest(t *testing.T) {
	h := NewHistogram()
	h.Add(7)
	h.Add(3)
	if v, _ := h.Mode(); v != 3 {
		t.Fatalf("tie should pick smallest value, got %d", v)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty render wrong")
	}
	h.Add(1)
	h.Add(1)
	h.Add(4)
	out := h.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "4") {
		t.Errorf("render missing bars: %q", out)
	}
	// Mode bar is the longest.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if strings.Count(lines[0], "#") <= strings.Count(lines[1], "#") {
		t.Error("mode bar not longest")
	}
}
