// Package rng provides deterministic random number generation for the
// whole repository.
//
// Every process in the parallel tabu search (master, TSW, CLW), every
// synthetic circuit, and every experiment derives its generator from a
// single master seed through a labelled split. Two runs with the same
// master seed therefore produce bit-identical results, no matter how the
// work is distributed across goroutines, and two components never share a
// stream by accident.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014): tiny state, full
// 64-bit output, passes BigCrush, and — unlike math/rand's global source —
// cheap to fork per component.
package rng

import (
	"math/rand"
)

// golden is the splitmix64 increment, floor(2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// mix is the splitmix64 output function applied to a state value.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMix64 is a splitmix64 PRNG. The zero value is a valid generator
// seeded with 0. It implements math/rand.Source and math/rand.Source64.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Int63 implements math/rand.Source.
func (s *SplitMix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed implements math/rand.Source.
func (s *SplitMix64) Seed(seed int64) {
	s.state = uint64(seed)
}

// New returns a *rand.Rand backed by a splitmix64 source with the given
// seed. The returned generator is NOT safe for concurrent use; derive one
// per goroutine instead of sharing.
func New(seed uint64) *rand.Rand {
	return rand.New(NewSplitMix64(seed))
}

// Derive deterministically derives a child seed from a parent seed and a
// sequence of labels. Labels are hashed with an FNV-1a style fold followed
// by a splitmix64 finalizer, so Derive(s, "a", "b") != Derive(s, "ab") and
// sibling streams are statistically independent.
func Derive(seed uint64, labels ...string) uint64 {
	h := seed
	for _, l := range labels {
		h ^= 0xcbf29ce484222325
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 0x100000001b3
		}
		h = mix(h + golden)
	}
	return h
}

// DeriveN derives a child seed from a parent seed and a sequence of
// integer indices (e.g. worker numbers). Like Derive, the mapping is
// injective over practical inputs and avalanche-mixed.
func DeriveN(seed uint64, idx ...int) uint64 {
	h := seed
	for _, i := range idx {
		h = mix(h ^ (uint64(i)+golden)*0xff51afd7ed558ccd)
	}
	return h
}

// NewChild is shorthand for New(Derive(seed, labels...)).
func NewChild(seed uint64, labels ...string) *rand.Rand {
	return New(Derive(seed, labels...))
}
