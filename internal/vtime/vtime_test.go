package vtime

import (
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at1, at2 Time
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1.5)
		at1 = p.Now()
		p.Sleep(0.5)
		at2 = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 1.5 || at2 != 2.0 {
		t.Fatalf("times: %v %v, want 1.5 2.0", at1, at2)
	}
	if k.Now() != 2.0 {
		t.Fatalf("final clock %v", k.Now())
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(1.0)
				log = append(log, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(1.5)
				log = append(log, "b")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	// a wakes at 1,2,3; b wakes at 1.5,3. At t=3 b's event was scheduled
	// first (at t=1.5) so it fires first.
	want := []string{"a", "b", "a", "b", "a"}
	for trial := 0; trial < 10; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("log %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: log %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.After(1.0, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestSuspendWake(t *testing.T) {
	k := NewKernel()
	var woken Time
	var p *Proc
	p = k.Spawn("sleeper", func(p *Proc) {
		p.Suspend()
		woken = p.Now()
	})
	k.After(3.0, func() { k.Wake(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3.0 {
		t.Fatalf("woken at %v, want 3.0", woken)
	}
	if len(k.Stalled()) != 0 {
		t.Fatalf("stalled: %v", k.Stalled())
	}
}

func TestSpuriousWakeDoesNotBreakSleep(t *testing.T) {
	k := NewKernel()
	var end Time
	p := k.Spawn("w", func(p *Proc) {
		p.Sleep(5.0)
		end = p.Now()
	})
	// Wake aimed at a *sleeping* process must be ignored.
	k.After(1.0, func() { k.Wake(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 5.0 {
		t.Fatalf("sleep ended at %v, want 5.0 (spurious wake broke it)", end)
	}
}

func TestStaleSleepTimerIgnored(t *testing.T) {
	// A process that sleeps, is woken by its timer, then suspends must
	// not be woken by anything but an explicit Wake.
	k := NewKernel()
	var woken Time
	var p *Proc
	p = k.Spawn("x", func(p *Proc) {
		p.Sleep(1.0)
		p.Suspend()
		woken = p.Now()
	})
	k.After(10.0, func() { k.Wake(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 10.0 {
		t.Fatalf("woken at %v, want 10.0", woken)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(2.0)
		p.k.Spawn("child", func(c *Proc) {
			c.Sleep(1.0)
			childTime = c.Now()
		})
		p.Sleep(5.0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 3.0 {
		t.Fatalf("child finished at %v, want 3.0", childTime)
	}
}

func TestAbandonedProcessKilled(t *testing.T) {
	k := NewKernel()
	cleanup := false
	k.Spawn("stuck", func(p *Proc) {
		defer func() { cleanup = false }() // must NOT run user-visible logic... but defers do run
		p.Suspend()                        // nobody wakes us
	})
	k.Spawn("done", func(p *Proc) {
		p.Sleep(1.0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	stalled := k.Stalled()
	if len(stalled) != 1 || stalled[0] != "stuck" {
		t.Fatalf("stalled = %v, want [stuck]", stalled)
	}
	_ = cleanup
}

func TestMaxEvents(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 100
	k.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(0.001)
		}
	})
	if err := k.Run(); err != ErrEventLimit {
		t.Fatalf("want ErrEventLimit, got %v", err)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(1.0)
		panic("boom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("process panic did not propagate")
		}
	}()
	_ = k.Run()
}

func TestNegativeDurationsClamp(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("n", func(p *Proc) {
		p.Sleep(-5)
		at = p.Now()
	})
	k.After(-1, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("negative sleep advanced clock to %v", at)
	}
}

func TestRunTwiceAfterDrain(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) { p.Sleep(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Re-running a drained kernel is a no-op, not a crash.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcesses(t *testing.T) {
	k := NewKernel()
	const n = 200
	count := 0
	for i := 0; i < n; i++ {
		d := Time(i%7) * 0.1
		k.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			count++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ran %d of %d processes", count, n)
	}
}

func BenchmarkSleepWakeCycle(b *testing.B) {
	k := NewKernel()
	k.Spawn("w", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(0.001)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
