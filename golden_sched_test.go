package pts

import (
	"context"
	"math"
	"testing"
)

// Golden reproduction runs for the scheduling workloads, one instance
// per family, captured when the workloads landed. Unlike the placement
// and QAP goldens these pin searches whose delta evaluation is not
// O(1) — the flow shop recomputes critical-path sections and the job
// shop re-decodes whole schedules inside DeltaSwapBatch — so they
// additionally guard the batch kernels' bit-identity to the scalar
// path under the engine's real candidate streams. Costs are integral
// makespans widened to float64, so any drift is a whole unit, never
// rounding.
func TestGoldenSchedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds each")
	}
	opts := []Option{
		WithWorkers(3, 2),
		WithIterations(6, 25),
		WithTabu(10, 6, 3),
		WithSeed(42),
		WithCluster(Homogeneous(12, 1)),
	}
	for _, tc := range []struct {
		name          string
		best, initial float64
		permhash      uint64
	}{
		{"flowshop-ta001", 1297, 1514, 0x6a86a00f60f730d5},
		{"jobshop-ft06", 55, 87, 0x5e5c29fb8f6d29b5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var prob Problem
			var err error
			if tc.name == "flowshop-ta001" {
				prob, err = FlowShopBenchmark("ta001")
			} else {
				prob, err = JobShopBenchmark("ft06")
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(context.Background(), prob, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(res.BestCost) != math.Float64bits(tc.best) {
				t.Errorf("BestCost = %.17g, golden %.17g (bit mismatch)", res.BestCost, tc.best)
			}
			if math.Float64bits(res.InitialCost) != math.Float64bits(tc.initial) {
				t.Errorf("InitialCost = %.17g, golden %.17g (bit mismatch)", res.InitialCost, tc.initial)
			}
			if h := goldenHash(res.Best); h != tc.permhash {
				t.Errorf("permhash = %#x, golden %#x", h, tc.permhash)
			}

			// Integer makespans are immune to floating-point
			// reassociation, so relaxed accumulation must reproduce the
			// strict trajectory exactly — for these workloads the flag is
			// a provable no-op, unlike the fuzzy placement cost where the
			// relaxed golden legitimately diverges.
			relaxed, err := Solve(context.Background(), prob,
				append(append([]Option{}, opts...), WithRelaxedAccumulation(true))...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(relaxed.BestCost) != math.Float64bits(tc.best) ||
				goldenHash(relaxed.Best) != tc.permhash {
				t.Errorf("relaxed run diverged: BestCost %.17g hash %#x, golden %.17g %#x",
					relaxed.BestCost, goldenHash(relaxed.Best), tc.best, tc.permhash)
			}
		})
	}
}
