// Command ptsd is the solver-as-a-service daemon: one long-lived
// worker fleet multiplexing many concurrent parallel-tabu-search jobs,
// fronted by an HTTP API.
//
// Start the daemon, then point workers at its fleet address:
//
//	ptsd -fleet :9017 -http :8080
//	pts -worker localhost:9017 -jobs 0       # as many as you like
//
// Submit and watch jobs over HTTP:
//
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "problem": {"kind": "placement", "circuit": "c532"},
//	  "workers": 2,
//	  "config": {"seed": 7, "half_sync": false}
//	}'
//	curl localhost:8080/v1/jobs                # list
//	curl localhost:8080/v1/jobs/j1             # status + result
//	curl -N localhost:8080/v1/jobs/j1/events   # SSE: one event per global iteration
//	curl -X DELETE localhost:8080/v1/jobs/j1   # cancel at best-so-far
//	curl localhost:8080/v1/fleet               # worker registry
//
// Jobs queue FIFO behind the fleet's capacity; each running job leases
// its own disjoint set of workers. On SIGTERM/SIGINT the daemon drains:
// queued jobs are cancelled, running jobs stop at their next protocol
// boundary and report their best-so-far, then the process exits.
//
// With -state-dir the daemon is crash-only: job specs, lifecycle and
// results are journaled to the directory, and a restarted ptsd over the
// same directory re-serves completed results, re-admits queued jobs,
// and resumes interrupted runs from their last synchronization barrier
// — kill -9 loses at most the tail of a round.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pts"
)

func main() {
	var (
		fleetAddr    = flag.String("fleet", ":9017", "TCP address worker daemons dial")
		httpAddr     = flag.String("http", ":8080", "HTTP API listen address")
		queueDepth   = flag.Int("queue", 0, "max queued jobs behind the running ones (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs to stop at a boundary")
		stateDir     = flag.String("state-dir", "", "directory for durable job state; restarts recover jobs from it (empty = in-memory only)")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle log lines")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	var st pts.Store
	if *stateDir != "" {
		var err error
		if st, err = pts.NewFileStore(*stateDir); err != nil {
			fatal(err)
		}
	}

	srv, err := pts.ListenServer(pts.ServerOptions{
		FleetAddr:  *fleetAddr,
		QueueDepth: *queueDepth,
		Store:      st,
		Logf:       logf,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	fmt.Printf("ptsd: fleet on %s, http on %s\n", srv.FleetAddr(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		fatal(fmt.Errorf("http: %w", err))
	}

	fmt.Println("ptsd: draining (running jobs stop at their next boundary)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "ptsd:", err)
	}
	_ = hs.Shutdown(dctx)
	fmt.Println("ptsd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptsd:", err)
	os.Exit(1)
}
