package placement

import (
	"fmt"
	"math/rand"
	"strings"

	"pts/internal/netlist"
)

// bbox is a net's bounding box over its terminals' slot coordinates.
type bbox struct {
	minX, maxX, minY, maxY int32
}

// length returns the half-perimeter of the box.
func (b bbox) length() float64 {
	return float64(b.maxX-b.minX) + float64(b.maxY-b.minY)
}

// Placement assigns every cell of a netlist to a distinct slot of a
// layout and maintains, incrementally and exactly:
//
//   - each net's bounding box and the total HPWL,
//   - each row's occupied width (sum of cell widths).
//
// Placement is not safe for concurrent use; parallel workers clone it.
type Placement struct {
	nl *netlist.Netlist
	L  Layout

	pos   []Pos            // cell -> slot position
	slot  []netlist.CellID // linear slot index -> cell (None if empty)
	boxes []bbox           // per-net bounding boxes
	hpwl  float64          // total half-perimeter wirelength

	rowWidth []int // per-row sum of cell widths
	maxRowW  int   // cached max of rowWidth

	// Scratch for deduplicating affected nets during delta evaluation.
	netStamp []uint32
	stampGen uint32
}

// New creates a placement with cells assigned to slots in index order
// (cell i in slot i). Fails if the layout has fewer slots than cells.
func New(nl *netlist.Netlist, l Layout) (*Placement, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Slots() < nl.NumCells() {
		return nil, fmt.Errorf("placement: %d slots < %d cells", l.Slots(), nl.NumCells())
	}
	p := &Placement{
		nl:       nl,
		L:        l,
		pos:      make([]Pos, nl.NumCells()),
		slot:     make([]netlist.CellID, l.Slots()),
		boxes:    make([]bbox, nl.NumNets()),
		rowWidth: make([]int, l.Rows),
		netStamp: make([]uint32, nl.NumNets()),
	}
	for i := range p.slot {
		p.slot[i] = netlist.None
	}
	for c := 0; c < nl.NumCells(); c++ {
		p.placeInitial(netlist.CellID(c), l.SlotPos(c))
	}
	p.recomputeAll()
	return p, nil
}

// placeInitial puts a cell into an empty slot without cost bookkeeping;
// used only during construction and import.
func (p *Placement) placeInitial(c netlist.CellID, at Pos) {
	p.pos[c] = at
	p.slot[p.L.SlotIndex(at)] = c
}

// Netlist returns the placed netlist.
func (p *Placement) Netlist() *netlist.Netlist { return p.nl }

// Layout returns the slot grid.
func (p *Placement) Layout() Layout { return p.L }

// PosOf returns the slot position of cell c.
func (p *Placement) PosOf(c netlist.CellID) Pos { return p.pos[c] }

// CellAt returns the cell in the slot at pos, or netlist.None.
func (p *Placement) CellAt(at Pos) netlist.CellID { return p.slot[p.L.SlotIndex(at)] }

// HPWL returns the maintained total half-perimeter wirelength.
func (p *Placement) HPWL() float64 { return p.hpwl }

// NetHPWL returns the maintained half-perimeter of one net.
func (p *Placement) NetHPWL(n netlist.NetID) float64 { return p.boxes[n].length() }

// MaxRowWidth returns the width of the widest row, the area objective.
func (p *Placement) MaxRowWidth() int { return p.maxRowW }

// RowWidth returns the occupied width of one row.
func (p *Placement) RowWidth(row int) int { return p.rowWidth[row] }

// recomputeAll rebuilds every net box, the total HPWL, and the row
// widths from scratch. O(pins + rows).
func (p *Placement) recomputeAll() {
	p.hpwl = 0
	for n := 0; n < p.nl.NumNets(); n++ {
		p.boxes[n] = p.computeBox(netlist.NetID(n), netlist.None, netlist.None, Pos{}, Pos{})
		p.hpwl += p.boxes[n].length()
	}
	for r := range p.rowWidth {
		p.rowWidth[r] = 0
	}
	for c := 0; c < p.nl.NumCells(); c++ {
		p.rowWidth[p.pos[c].Row] += p.nl.Cells[c].Width
	}
	p.maxRowW = 0
	for _, w := range p.rowWidth {
		if w > p.maxRowW {
			p.maxRowW = w
		}
	}
}

// computeBox computes a net's bounding box, pretending that cells ca and
// cb (when not None) sit at pa and pb respectively. Passing None for both
// computes the current box.
func (p *Placement) computeBox(n netlist.NetID, ca, cb netlist.CellID, pa, pb Pos) bbox {
	net := &p.nl.Nets[n]
	at := func(c netlist.CellID) Pos {
		switch c {
		case ca:
			return pa
		case cb:
			return pb
		default:
			return p.pos[c]
		}
	}
	first := at(net.Driver)
	b := bbox{minX: first.Col, maxX: first.Col, minY: first.Row, maxY: first.Row}
	for _, s := range net.Sinks {
		q := at(s)
		if q.Col < b.minX {
			b.minX = q.Col
		}
		if q.Col > b.maxX {
			b.maxX = q.Col
		}
		if q.Row < b.minY {
			b.minY = q.Row
		}
		if q.Row > b.maxY {
			b.maxY = q.Row
		}
	}
	return b
}

// VisitSwapDeltas calls fn once for every net whose bounding box changes
// when cells a and b exchange positions, passing the net and its old and
// new half-perimeter lengths. It does not modify the placement. The cost
// evaluator uses this single pass to derive both the wirelength delta and
// the criticality-weighted timing delta of a trial swap.
func (p *Placement) VisitSwapDeltas(a, b netlist.CellID, fn func(n netlist.NetID, oldLen, newLen float64)) {
	pa, pb := p.pos[a], p.pos[b]
	if pa == pb {
		return
	}
	p.stampGen++
	gen := p.stampGen
	visit := func(nets []netlist.NetID) {
		for _, n := range nets {
			if p.netStamp[n] == gen {
				continue
			}
			p.netStamp[n] = gen
			oldLen := p.boxes[n].length()
			newLen := p.computeBox(n, a, b, pb, pa).length()
			if oldLen != newLen {
				fn(n, oldLen, newLen)
			}
		}
	}
	visit(p.nl.CellNets(a))
	visit(p.nl.CellNets(b))
}

// HPWLDeltaSwap returns the total HPWL change if cells a and b exchanged
// positions, without modifying the placement.
func (p *Placement) HPWLDeltaSwap(a, b netlist.CellID) float64 {
	d := 0.0
	p.VisitSwapDeltas(a, b, func(_ netlist.NetID, oldLen, newLen float64) {
		d += newLen - oldLen
	})
	return d
}

// MaxRowWidthAfterSwap returns the area objective's value if cells a and
// b exchanged positions, without modifying the placement. O(rows) when
// the swap crosses rows, O(1) otherwise.
func (p *Placement) MaxRowWidthAfterSwap(a, b netlist.CellID) int {
	ra, rb := p.pos[a].Row, p.pos[b].Row
	if ra == rb {
		return p.maxRowW
	}
	wa, wb := p.nl.Cells[a].Width, p.nl.Cells[b].Width
	if wa == wb {
		return p.maxRowW
	}
	max := 0
	for r, w := range p.rowWidth {
		switch int32(r) {
		case ra:
			w += wb - wa
		case rb:
			w += wa - wb
		}
		if w > max {
			max = w
		}
	}
	return max
}

// SwapCells exchanges the positions of two cells and updates all
// maintained quantities incrementally. Swapping a cell with itself is a
// no-op.
func (p *Placement) SwapCells(a, b netlist.CellID) {
	if a == b {
		return
	}
	pa, pb := p.pos[a], p.pos[b]

	// Net boxes and total HPWL.
	p.stampGen++
	gen := p.stampGen
	update := func(nets []netlist.NetID) {
		for _, n := range nets {
			if p.netStamp[n] == gen {
				continue
			}
			p.netStamp[n] = gen
			nb := p.computeBox(n, a, b, pb, pa)
			p.hpwl += nb.length() - p.boxes[n].length()
			p.boxes[n] = nb
		}
	}
	update(p.nl.CellNets(a))
	update(p.nl.CellNets(b))

	// Row widths.
	if pa.Row != pb.Row {
		wa, wb := p.nl.Cells[a].Width, p.nl.Cells[b].Width
		if wa != wb {
			p.rowWidth[pa.Row] += wb - wa
			p.rowWidth[pb.Row] += wa - wb
			p.refreshMaxRow()
		}
	}

	// Positions last (computeBox consults p.pos for unrelated cells).
	p.pos[a], p.pos[b] = pb, pa
	p.slot[p.L.SlotIndex(pa)] = b
	p.slot[p.L.SlotIndex(pb)] = a
}

func (p *Placement) refreshMaxRow() {
	max := 0
	for _, w := range p.rowWidth {
		if w > max {
			max = w
		}
	}
	p.maxRowW = max
}

// Randomize shuffles all cells across all slots using r.
func (p *Placement) Randomize(r *rand.Rand) {
	n := p.nl.NumCells()
	slots := p.L.Slots()
	perm := r.Perm(slots)
	for i := range p.slot {
		p.slot[i] = netlist.None
	}
	for c := 0; c < n; c++ {
		p.pos[netlist.CellID(c)] = p.L.SlotPos(perm[c])
		p.slot[perm[c]] = netlist.CellID(c)
	}
	p.recomputeAll()
}

// Export returns the placement as a permutation: element c is the linear
// slot index of cell c. The result is independent of p's internals and
// safe to send between workers.
func (p *Placement) Export() []int32 {
	out := make([]int32, p.nl.NumCells())
	for c := range out {
		out[c] = int32(p.L.SlotIndex(p.pos[c]))
	}
	return out
}

// Import replaces the assignment with the given exported permutation and
// rebuilds the maintained quantities. It validates lengths, bounds and
// slot uniqueness.
func (p *Placement) Import(perm []int32) error {
	if len(perm) != p.nl.NumCells() {
		return fmt.Errorf("placement: import length %d != %d cells", len(perm), p.nl.NumCells())
	}
	seen := make([]bool, p.L.Slots())
	for c, s := range perm {
		if s < 0 || int(s) >= p.L.Slots() {
			return fmt.Errorf("placement: import: cell %d slot %d out of range", c, s)
		}
		if seen[s] {
			return fmt.Errorf("placement: import: slot %d assigned twice", s)
		}
		seen[s] = true
	}
	for i := range p.slot {
		p.slot[i] = netlist.None
	}
	for c, s := range perm {
		p.pos[c] = p.L.SlotPos(int(s))
		p.slot[s] = netlist.CellID(c)
	}
	p.recomputeAll()
	return nil
}

// Clone returns an independent deep copy sharing only the immutable
// netlist.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		nl:       p.nl,
		L:        p.L,
		pos:      append([]Pos(nil), p.pos...),
		slot:     append([]netlist.CellID(nil), p.slot...),
		boxes:    append([]bbox(nil), p.boxes...),
		hpwl:     p.hpwl,
		rowWidth: append([]int(nil), p.rowWidth...),
		maxRowW:  p.maxRowW,
		netStamp: make([]uint32, p.nl.NumNets()),
	}
	return q
}

// ASCII renders small placements as a grid of cell names for examples
// and debugging; layouts wider than maxCols columns render as a summary
// line instead.
func (p *Placement) ASCII(maxCols int) string {
	if p.L.Cols > maxCols {
		return fmt.Sprintf("[%dx%d layout, hpwl=%.0f, maxRowWidth=%d]",
			p.L.Rows, p.L.Cols, p.hpwl, p.maxRowW)
	}
	var sb strings.Builder
	for r := 0; r < p.L.Rows; r++ {
		for c := 0; c < p.L.Cols; c++ {
			id := p.slot[r*p.L.Cols+c]
			if id == netlist.None {
				sb.WriteString(fmt.Sprintf("%-8s", "."))
			} else {
				sb.WriteString(fmt.Sprintf("%-8s", p.nl.Cells[id].Name))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
