#!/usr/bin/env bash
# Multi-process end-to-end check of the distributed TCP transport:
# build cmd/pts, run the same fixed-seed search once in a single
# process and once as one master plus three loopback TCP workers with
# distinct declared speed factors, and require the distributed best
# cost to be exactly the single-process one (with half-sync off the
# search outcome depends only on the seed, not on timing — so "no
# worse" is provable as "identical").
#
# Usage: scripts/e2e-distributed.sh [path-to-pts-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${1:-}
if [ -z "$BIN" ]; then
  BIN=$(mktemp -d)/pts
  go build -o "$BIN" ./cmd/pts
fi

PORT=${PTS_E2E_PORT:-19471}
ADDR="127.0.0.1:${PORT}"
OUT=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$OUT"' EXIT

# One search configuration for both runs. -het=false makes the outcome
# timing-independent; the worker count and speed factors match the
# acceptance criterion (3 TSWs x 2 CLWs over nodes 1.0/0.55/0.3).
FLAGS=(-circuit c532 -seed 7 -het=false -tsws 3 -clws 2 -global 4 -local 15)

echo "== single-process real-mode run"
"$BIN" "${FLAGS[@]}" -mode real -json "$OUT/single.json" > "$OUT/single.log"

echo "== distributed run: 1 master + 3 TCP workers on $ADDR"
"$BIN" "${FLAGS[@]}" -serve "$ADDR" -net-workers 3 -json "$OUT/net.json" > "$OUT/master.log" 2>&1 &
MASTER=$!
sleep 1
for i in 1 2 3; do
  case $i in
    1) SPEED=1.0 ;;
    2) SPEED=0.55 ;;
    3) SPEED=0.3 ;;
  esac
  "$BIN" -circuit c532 -worker "$ADDR" -node-name "w$i" -speed "$SPEED" -jobs 1 \
    > "$OUT/worker$i.log" 2>&1 &
done

if ! wait "$MASTER"; then
  echo "master failed:"; cat "$OUT/master.log"
  exit 1
fi
wait

extract_cost() {
  grep -o '"BestCost": [0-9.eE+-]*' "$1" | head -1 | awk '{print $2}'
}

SINGLE=$(extract_cost "$OUT/single.json")
DIST=$(extract_cost "$OUT/net.json")
echo "single-process best cost: $SINGLE"
echo "distributed  best cost:   $DIST"

if [ -z "$SINGLE" ] || [ -z "$DIST" ]; then
  echo "FAIL: missing best cost"; exit 1
fi
if [ "$SINGLE" != "$DIST" ]; then
  echo "FAIL: distributed best cost differs from the single-process run"
  exit 1
fi
# Pin the trajectory itself, not just single == distributed: this literal
# was captured before the batched hot path landed, so any change to
# candidate generation order, batch evaluation or argmin tie-breaking
# that perturbs the fixed-seed search shows up here as a mismatch.
GOLDEN=0.3713116793094111
if [ "$SINGLE" != "$GOLDEN" ]; then
  echo "FAIL: best cost $SINGLE differs from the golden static-run cost $GOLDEN"
  exit 1
fi
for i in 1 2 3; do
  grep -q "job completed" "$OUT/worker$i.log" || {
    echo "FAIL: worker $i did not report a completed job"; cat "$OUT/worker$i.log"; exit 1
  }
done
echo "PASS: distributed run reproduces the single-process best cost exactly"

# ---------------------------------------------------------------------------
# Job shop variant: the same master + 3 TCP workers protocol over the
# ft06 scheduling workload, where swap deltas re-decode whole schedules
# instead of O(1) table lookups. Every process constructs the instance
# from its embedded name; the golden literal pins the fixed-seed
# trajectory (which at this budget reaches ft06's proven optimum 55).
echo "== distributed job shop run: 1 master + 3 TCP workers"
JADDR="127.0.0.1:$((PORT + 3))"
JFLAGS=(-jobshop ft06 -seed 7 -het=false -tsws 3 -clws 2 -global 4 -local 15)

"$BIN" "${JFLAGS[@]}" -mode real -json "$OUT/jsingle.json" > "$OUT/jsingle.log"
"$BIN" "${JFLAGS[@]}" -serve "$JADDR" -net-workers 3 -json "$OUT/jnet.json" > "$OUT/jmaster.log" 2>&1 &
JMASTER=$!
sleep 1
for i in 1 2 3; do
  case $i in
    1) SPEED=1.0 ;;
    2) SPEED=0.55 ;;
    3) SPEED=0.3 ;;
  esac
  "$BIN" -jobshop ft06 -worker "$JADDR" -node-name "js$i" -speed "$SPEED" -jobs 1 \
    > "$OUT/jsworker$i.log" 2>&1 &
done

if ! wait "$JMASTER"; then
  echo "job shop master failed:"; cat "$OUT/jmaster.log"
  exit 1
fi
wait

JSINGLE=$(extract_cost "$OUT/jsingle.json")
JDIST=$(extract_cost "$OUT/jnet.json")
echo "single-process job shop makespan: $JSINGLE"
echo "distributed  job shop makespan:   $JDIST"
if [ -z "$JSINGLE" ] || [ "$JSINGLE" != "$JDIST" ]; then
  echo "FAIL: distributed job shop makespan differs from the single-process run"
  exit 1
fi
# The golden fixed-seed makespan — ft06's proven optimum, reached at
# this budget when the workload landed.
JGOLDEN=55
if [ "$JSINGLE" != "$JGOLDEN" ]; then
  echo "FAIL: job shop makespan $JSINGLE differs from the golden $JGOLDEN"
  exit 1
fi
for i in 1 2 3; do
  grep -q "job completed" "$OUT/jsworker$i.log" || {
    echo "FAIL: job shop worker $i did not report a completed job"; cat "$OUT/jsworker$i.log"; exit 1
  }
done
echo "PASS: distributed job shop run reproduces the golden optimum makespan $JGOLDEN"

# ---------------------------------------------------------------------------
# Adaptive variant: 1 master + 3 workers with declared speeds 4/1/1, one
# slow CLW-hosting worker killed (-9) mid-run. Under -adaptive the run
# must complete un-Interrupted over the full iteration budget, with the
# loss both counted and repaired: the dead CLW's range is re-absorbed,
# a replacement CLW is respawned onto surviving capacity and re-seeded
# from the TSW's current solution (WorkersLost:1 AND WorkersRespawned:1
# in the master's stats — the post-recovery CLW count equals the
# pre-kill count). Join order fixes the slot ring: with 1 TSW x 3 CLWs
# the first worker hosts the TSW and the second/third host one CLW each
# (the third CLW lands on the master process).
echo "== adaptive distributed run: kill one slow CLW-hosting worker mid-run"
ADDR2="127.0.0.1:$((PORT + 1))"
AFLAGS=(-circuit c532 -seed 7 -het=false -adaptive -tsws 1 -clws 3 -global 10 -local 25 -workscale 8)

"$BIN" "${AFLAGS[@]}" -serve "$ADDR2" -net-workers 3 -progress -json "$OUT/adaptive.json" \
  > "$OUT/amaster.log" 2>&1 &
AMASTER=$!
sleep 1
"$BIN" -circuit c532 -worker "$ADDR2" -node-name a1 -speed 4 -jobs 1 > "$OUT/aworker1.log" 2>&1 &
A1=$!
sleep 0.5
"$BIN" -circuit c532 -worker "$ADDR2" -node-name a2 -speed 1 -jobs 1 > "$OUT/aworker2.log" 2>&1 &
A2=$!
sleep 0.5
"$BIN" -circuit c532 -worker "$ADDR2" -node-name a3 -speed 1 -jobs 1 > "$OUT/aworker3.log" 2>&1 &
DOOMED=$!

# Wait until the run is visibly in flight (round 2 reported), then kill
# the slow worker hosting a CLW.
for _ in $(seq 1 150); do
  grep -q "round   2/" "$OUT/amaster.log" 2>/dev/null && break
  sleep 0.2
done
grep -q "round   2/" "$OUT/amaster.log" || {
  echo "FAIL: adaptive run never reached round 2"; cat "$OUT/amaster.log"; exit 1
}
kill -9 "$DOOMED" 2>/dev/null || true

if ! wait "$AMASTER"; then
  echo "FAIL: adaptive master exited non-zero:"; cat "$OUT/amaster.log"; exit 1
fi
# Check each survivor's exit status separately: `wait p1 p2` only
# propagates the last PID's status.
wait "$A1" || {
  echo "FAIL: surviving worker a1 exited non-zero"; cat "$OUT/aworker1.log"; exit 1
}
wait "$A2" || {
  echo "FAIL: surviving worker a2 exited non-zero"; cat "$OUT/aworker2.log"; exit 1
}
wait "$DOOMED" 2>/dev/null || true

if grep -q "interrupted" "$OUT/amaster.log"; then
  echo "FAIL: adaptive run reported an interrupted result"; cat "$OUT/amaster.log"; exit 1
fi
grep -q "WorkersLost:1" "$OUT/amaster.log" || {
  echo "FAIL: master stats do not record the lost worker"; cat "$OUT/amaster.log"; exit 1
}
grep -q "WorkersRespawned:1" "$OUT/amaster.log" || {
  echo "FAIL: master stats do not record the respawned replacement (parallelism not restored)"
  cat "$OUT/amaster.log"; exit 1
}
grep -q "best cost" "$OUT/amaster.log" || {
  echo "FAIL: adaptive master reported no best cost"; cat "$OUT/amaster.log"; exit 1
}
grep -q '"Interrupted": false' "$OUT/adaptive.json" || {
  echo "FAIL: adaptive result JSON is marked Interrupted"; exit 1
}
for i in 1 2; do
  grep -q "job completed" "$OUT/aworker$i.log" || {
    echo "FAIL: surviving worker a$i did not report a completed job"; cat "$OUT/aworker$i.log"; exit 1
  }
done
echo "PASS: adaptive run survived the worker kill with parallelism restored (WorkersLost:1, WorkersRespawned:1)"

# ---------------------------------------------------------------------------
# TSW-kill variant: same topology, but the FIRST worker — the one
# hosting the TSW itself — is killed -9 mid-run. The master must
# resurrect the TSW from its piggybacked checkpoint on surviving
# capacity, re-attach the three surviving CLWs, and still complete the
# full budget un-Interrupted.
echo "== adaptive distributed run: kill the TSW-hosting worker mid-run"
ADDR3="127.0.0.1:$((PORT + 2))"

"$BIN" "${AFLAGS[@]}" -serve "$ADDR3" -net-workers 3 -progress -json "$OUT/tswkill.json" \
  > "$OUT/tmaster.log" 2>&1 &
TMASTER=$!
sleep 1
"$BIN" -circuit c532 -worker "$ADDR3" -node-name t1 -speed 4 -jobs 1 > "$OUT/tworker1.log" 2>&1 &
TDOOMED=$!
sleep 0.5
"$BIN" -circuit c532 -worker "$ADDR3" -node-name t2 -speed 1 -jobs 1 > "$OUT/tworker2.log" 2>&1 &
T2=$!
sleep 0.5
"$BIN" -circuit c532 -worker "$ADDR3" -node-name t3 -speed 1 -jobs 1 > "$OUT/tworker3.log" 2>&1 &
T3=$!

for _ in $(seq 1 150); do
  grep -q "round   2/" "$OUT/tmaster.log" 2>/dev/null && break
  sleep 0.2
done
grep -q "round   2/" "$OUT/tmaster.log" || {
  echo "FAIL: TSW-kill run never reached round 2"; cat "$OUT/tmaster.log"; exit 1
}
kill -9 "$TDOOMED" 2>/dev/null || true

if ! wait "$TMASTER"; then
  echo "FAIL: TSW-kill master exited non-zero:"; cat "$OUT/tmaster.log"; exit 1
fi
wait "$T2" || {
  echo "FAIL: surviving worker t2 exited non-zero"; cat "$OUT/tworker2.log"; exit 1
}
wait "$T3" || {
  echo "FAIL: surviving worker t3 exited non-zero"; cat "$OUT/tworker3.log"; exit 1
}
wait "$TDOOMED" 2>/dev/null || true

if grep -q "interrupted" "$OUT/tmaster.log"; then
  echo "FAIL: TSW-kill run reported an interrupted result"; cat "$OUT/tmaster.log"; exit 1
fi
grep -q '"Interrupted": false' "$OUT/tswkill.json" || {
  echo "FAIL: TSW-kill result JSON is marked Interrupted"; exit 1
}
grep -Eq "WorkersLost:[1-9]" "$OUT/tmaster.log" || {
  echo "FAIL: master stats do not record the lost TSW"; cat "$OUT/tmaster.log"; exit 1
}
grep -Eq "WorkersRespawned:[1-9]" "$OUT/tmaster.log" || {
  echo "FAIL: master stats do not record the resurrected TSW"; cat "$OUT/tmaster.log"; exit 1
}
for i in 2 3; do
  grep -q "job completed" "$OUT/tworker$i.log" || {
    echo "FAIL: surviving worker t$i did not report a completed job"; cat "$OUT/tworker$i.log"; exit 1
  }
done
echo "PASS: TSW kill resurrected from checkpoint, run completed un-Interrupted"
