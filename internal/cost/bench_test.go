package cost

import (
	"math/rand"
	"testing"

	"pts/internal/netlist"
	"pts/internal/placement"
)

// Full-evaluator trial benchmarks: the exact per-trial work a CLW does
// (wirelength + criticality-weighted delay + area, fuzzy-combined).
// This is the kernel whose throughput bounds the whole parallel
// search's iteration rate.

func benchEvaluator(b testing.TB, circuit string) *Evaluator {
	b.Helper()
	nl := netlist.MustBenchmark(circuit)
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		b.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(1)))
	ev, err := NewEvaluator(p, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// benchCellPairs is the shared deterministic trial workload.
func benchCellPairs(n, cells int) [][2]netlist.CellID {
	return netlist.BenchmarkPairs(n, cells)
}

// TestTrialEvaluationAllocFree asserts the full evaluator trial —
// wirelength + weighted delay + area + fuzzy combine — allocates
// nothing; this is the assertion the CI bench-smoke job enforces.
func TestTrialEvaluationAllocFree(t *testing.T) {
	ev := benchEvaluator(t, "c532")
	a, c := netlist.CellID(3), netlist.CellID(251)
	ev.ApplySwap(a, c) // warm scratch buffers to steady-state capacity
	ev.ApplySwap(a, c)
	for name, fn := range map[string]func(){
		"SwapDelta": func() { ev.SwapDelta(a, c) },
		"ApplySwap": func() { ev.ApplySwap(a, c) },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}

func BenchmarkSwapDelta(b *testing.B) {
	for _, circuit := range []string{"c532", "c1355"} {
		b.Run(circuit, func(b *testing.B) {
			ev := benchEvaluator(b, circuit)
			pairs := benchCellPairs(1024, int(ev.NumCells()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := pairs[i&1023]
				ev.SwapDelta(pr[0], pr[1])
			}
		})
	}
}

func BenchmarkApplySwap(b *testing.B) {
	ev := benchEvaluator(b, "c532")
	pairs := benchCellPairs(1024, int(ev.NumCells()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i&1023]
		ev.ApplySwap(pr[0], pr[1])
	}
}
