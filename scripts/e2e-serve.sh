#!/usr/bin/env bash
# Multi-process end-to-end check of the serving daemon: build cmd/pts
# and cmd/ptsd, start one ptsd over three loopback `pts -worker -any`
# processes, and drive four jobs — two placement, one QAP, one flow
# shop — through the HTTP front door.
#
#  1. The two static fixed-seed placement jobs must reproduce their
#     single-process `pts -mode real` best costs exactly (with
#     half-sync off the outcome depends only on the seed, so "the
#     daemon does not distort the search" is provable as "identical").
#     Both sides run with a state dir: a durable run uses the
#     checkpoint-relative RNG protocol, a deliberately different (but
#     equally deterministic) trajectory than a storeless run.
#     A ta001 flow shop job then proves the same identity for the
#     scheduling workloads: the `-any` workers resolve the instance
#     from its embedded name and the daemon's makespan must equal the
#     single-process `pts -flowshop ta001` run bit for bit.
#  2. While the long adaptive QAP job is still running, its leased
#     worker — found via GET /v1/fleet busy flags — is killed -9. The
#     job must still complete un-Interrupted (TSW resurrected from its
#     checkpoint onto surviving lease capacity), and the already-
#     finished neighbors prove the kill touched only the leasing job.
#  3. Crash-only restart: with one job mid-run and one queued, ptsd is
#     killed -9 and restarted over the same -state-dir. The restarted
#     daemon must still serve the first job's completed result, resume
#     the mid-run job, and re-admit the queued one — all finishing
#     un-Interrupted.
#  4. SIGTERM to a worker drains it cleanly (exit 0, deregistered);
#     SIGTERM to ptsd shuts the daemon down cleanly.
#
# Usage: scripts/e2e-serve.sh [path-to-pts-binary] [path-to-ptsd-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

PTS=${1:-}
PTSD=${2:-}
if [ -z "$PTS" ]; then
  PTS=$(mktemp -d)/pts
  go build -o "$PTS" ./cmd/pts
fi
if [ -z "$PTSD" ]; then
  PTSD=$(mktemp -d)/ptsd
  go build -o "$PTSD" ./cmd/ptsd
fi

FLEET_PORT=${PTS_E2E_PORT:-19481}
FLEET="127.0.0.1:${FLEET_PORT}"
HTTP="127.0.0.1:$((FLEET_PORT + 1))"
BASE="http://$HTTP"
OUT=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$OUT"' EXIT

# The static jobs' knobs, identical on the CLI and in the job payload.
# CLI -qap N uses the run seed for the instance, so the QAP payload
# below pins the same instance with problem seed == config seed.
STATIC=(-mode real -het=false -tsws 1 -clws 2 -global 3 -local 8
        -trials 6 -depth 3 -tenure 10 -diversify 12 -seed 5)

echo "== single-process baselines (durable, like the daemon's jobs)"
"$PTS" -circuit highway "${STATIC[@]}" -state-dir "$OUT/base-state-hw" -json "$OUT/base-highway.json" > /dev/null
"$PTS" -circuit c532 "${STATIC[@]}" -state-dir "$OUT/base-state-c532" -json "$OUT/base-c532.json" > /dev/null
"$PTS" -flowshop ta001 "${STATIC[@]}" -state-dir "$OUT/base-state-fs" -json "$OUT/base-flowshop.json" > /dev/null

echo "== start ptsd on $FLEET (http $BASE) + 3 any-workload workers"
"$PTSD" -fleet "$FLEET" -http "$HTTP" -state-dir "$OUT/state" > "$OUT/ptsd.log" 2>&1 &
DAEMON=$!
sleep 0.5
declare -A WPID
for i in 1 2 3; do
  "$PTS" -worker "$FLEET" -any -node-name "w$i" -jobs 0 > "$OUT/worker$i.log" 2>&1 &
  WPID[w$i]=$!
  sleep 0.2
done

total=0
for _ in $(seq 1 100); do
  total=$(curl -sf "$BASE/v1/fleet" | jq -r '.total' 2>/dev/null || echo 0)
  [ "$total" = 3 ] && break
  sleep 0.2
done
if [ "$total" != 3 ]; then
  echo "FAIL: fleet never reached 3 workers"; cat "$OUT/ptsd.log"; exit 1
fi

submit() {
  curl -sf -X POST "$BASE/v1/jobs" -H 'Content-Type: application/json' -d "$1" | jq -r '.id'
}

CFG='"tsws":1,"clws":2,"global_iters":3,"local_iters":8,"trials":6,"depth":3,"tenure":10,"diversify_depth":12,"seed":5,"half_sync":false'
echo "== submit 3 concurrent jobs (2 placement + 1 QAP)"
J1=$(submit "{\"problem\":{\"kind\":\"placement\",\"circuit\":\"highway\"},\"workers\":1,\"config\":{$CFG}}")
J2=$(submit "{\"problem\":{\"kind\":\"placement\",\"circuit\":\"c532\"},\"workers\":1,\"config\":{$CFG}}")
# The kill target: adaptive, with work emulation so it outlives its
# neighbors by seconds and is mid-flight when its worker dies.
J3=$(submit '{"problem":{"kind":"qap","n":20,"seed":5},"workers":1,
              "config":{"tsws":1,"clws":2,"global_iters":10,"local_iters":10,
                        "seed":5,"half_sync":false,"adaptive":true,"work_scale":40}}')
echo "jobs: $J1 (highway) $J2 (c532) $J3 (qap, kill target)"
for j in "$J1" "$J2" "$J3"; do
  [ -n "$j" ] && [ "$j" != null ] || { echo "FAIL: submit failed"; cat "$OUT/ptsd.log"; exit 1; }
done

wait_done() { # id timeout-seconds -> job JSON on stdout, fails on timeout
  local id=$1 budget=$((${2} * 10)) v st
  for _ in $(seq 1 "$budget"); do
    v=$(curl -sf "$BASE/v1/jobs/$id")
    st=$(echo "$v" | jq -r '.status')
    case "$st" in done|failed|cancelled) echo "$v"; return 0 ;; esac
    sleep 0.1
  done
  echo "FAIL: job $id never finished (last status $st)" >&2
  return 1
}

# With three 1-worker jobs on a 3-worker fleet all must be admitted at
# once: no job may still be queued.
sleep 0.5
queued=$(curl -sf "$BASE/v1/fleet" | jq -r '.queued')
if [ "$queued" != 0 ]; then
  echo "FAIL: $queued job(s) queued on a fleet with capacity for all three"
  curl -sf "$BASE/v1/jobs" | jq .; exit 1
fi

echo "== static jobs must match their baselines exactly"
V1=$(wait_done "$J1" 60)
V2=$(wait_done "$J2" 60)
for pair in "highway:$J1" "c532:$J2"; do
  circuit=${pair%%:*} id=${pair##*:}
  case $circuit in highway) v=$V1 ;; *) v=$V2 ;; esac
  st=$(echo "$v" | jq -r '.status')
  intr=$(echo "$v" | jq -r '.result.Interrupted')
  got=$(echo "$v" | jq -r '.result.BestCost')
  want=$(jq -r '.BestCost' "$OUT/base-$circuit.json")
  echo "$circuit: daemon $got, single-process $want"
  if [ "$st" != done ] || [ "$intr" != false ]; then
    echo "FAIL: $circuit job $id = $st (interrupted $intr)"; echo "$v" | jq .; exit 1
  fi
  if [ "$got" != "$want" ]; then
    echo "FAIL: $circuit daemon best cost differs from the single-process run"; exit 1
  fi
done
echo "PASS: both placement jobs reproduce their single-process costs exactly"

echo "== flow shop job through the daemon must match its baseline exactly"
J6=$(submit "{\"problem\":{\"kind\":\"flowshop\",\"instance\":\"ta001\"},\"workers\":1,\"config\":{$CFG}}")
[ -n "$J6" ] && [ "$J6" != null ] || { echo "FAIL: flow shop submit failed"; cat "$OUT/ptsd.log"; exit 1; }
V6=$(wait_done "$J6" 60)
st=$(echo "$V6" | jq -r '.status')
intr=$(echo "$V6" | jq -r '.result.Interrupted')
got=$(echo "$V6" | jq -r '.result.BestCost')
want=$(jq -r '.BestCost' "$OUT/base-flowshop.json")
echo "ta001: daemon makespan $got, single-process $want"
if [ "$st" != done ] || [ "$intr" != false ]; then
  echo "FAIL: flow shop job $J6 = $st (interrupted $intr)"; echo "$V6" | jq .; exit 1
fi
if [ "$got" != "$want" ]; then
  echo "FAIL: daemon flow shop makespan differs from the single-process run"; exit 1
fi
echo "PASS: flow shop job reproduces the single-process makespan exactly"

echo "== kill the worker leased by the running QAP job"
st=$(curl -sf "$BASE/v1/jobs/$J3" | jq -r '.status')
if [ "$st" != running ]; then
  echo "FAIL: QAP job is $st, expected still running for the kill"; exit 1
fi
# Progress must be visibly mid-flight before the kill.
events=0
for _ in $(seq 1 200); do
  events=$(curl -sf "$BASE/v1/jobs/$J3" | jq -r '.events')
  [ "$events" -ge 3 ] && break # queued + running + >=1 progress
  sleep 0.1
done
[ "$events" -ge 3 ] || { echo "FAIL: QAP job shows no progress events"; exit 1; }
busy=$(curl -sf "$BASE/v1/fleet" | jq -r '.workers[] | select(.busy) | .name')
if [ "$(echo "$busy" | wc -w)" != 1 ]; then
  echo "FAIL: expected exactly one busy worker, got: $busy"; exit 1
fi
echo "killing $busy (pid ${WPID[$busy]}) mid-run"
kill -9 "${WPID[$busy]}"

V3=$(wait_done "$J3" 120)
st=$(echo "$V3" | jq -r '.status')
intr=$(echo "$V3" | jq -r '.result.Interrupted')
init=$(echo "$V3" | jq -r '.result.InitialCost')
best=$(echo "$V3" | jq -r '.result.BestCost')
if [ "$st" != done ] || [ "$intr" != false ]; then
  echo "FAIL: QAP job after worker kill = $st (interrupted $intr)"
  echo "$V3" | jq '.'; cat "$OUT/ptsd.log"; exit 1
fi
if ! awk -v b="$best" -v i="$init" 'BEGIN { exit !(b <= i) }'; then
  echo "FAIL: QAP job did not improve ($init -> $best)"; exit 1
fi
total=$(curl -sf "$BASE/v1/fleet" | jq -r '.total')
if [ "$total" != 2 ]; then
  echo "FAIL: fleet still reports $total workers after the kill"; exit 1
fi
echo "PASS: QAP job survived its worker's death un-Interrupted ($init -> $best), fleet down to 2"

echo "== crash-only: kill -9 ptsd with one job mid-run + one queued, restart"
# Occupy both surviving workers with a long job, queue a quick one
# behind it, then kill the daemon with both in flight.
J4=$(submit '{"problem":{"kind":"qap","n":20,"seed":5},"workers":2,
              "config":{"tsws":1,"clws":2,"global_iters":6,"local_iters":10,
                        "seed":5,"half_sync":false,"work_scale":20}}')
st=""
for _ in $(seq 1 100); do
  st=$(curl -sf "$BASE/v1/jobs/$J4" | jq -r '.status')
  [ "$st" = running ] && break
  sleep 0.1
done
[ "$st" = running ] || { echo "FAIL: $J4 is $st, expected running"; exit 1; }
J5=$(submit "{\"problem\":{\"kind\":\"placement\",\"circuit\":\"highway\"},\"workers\":1,\"config\":{$CFG}}")
st=$(curl -sf "$BASE/v1/jobs/$J5" | jq -r '.status')
[ "$st" = queued ] || { echo "FAIL: $J5 is $st, expected queued behind $J4"; exit 1; }
J1BEST=$(curl -sf "$BASE/v1/jobs/$J1" | jq -r '.result.BestCost')

echo "kill -9 ptsd (pid $DAEMON) with $J4 running and $J5 queued"
kill -9 "$DAEMON"
"$PTSD" -fleet "$FLEET" -http "$HTTP" -state-dir "$OUT/state" > "$OUT/ptsd2.log" 2>&1 &
DAEMON=$!

total=0
for _ in $(seq 1 150); do
  total=$(curl -sf "$BASE/v1/fleet" | jq -r '.total' 2>/dev/null || echo 0)
  [ "$total" = 2 ] && break
  sleep 0.2
done
if [ "$total" != 2 ]; then
  echo "FAIL: workers never re-joined the restarted ptsd (total $total)"
  cat "$OUT/ptsd2.log"; exit 1
fi

# The completed job's result is still served, from the journal alone.
v=$(curl -sf "$BASE/v1/jobs/$J1")
st=$(echo "$v" | jq -r '.status')
got=$(echo "$v" | jq -r '.result.BestCost')
if [ "$st" != done ] || [ "$got" != "$J1BEST" ]; then
  echo "FAIL: restart lost $J1 (status $st, best $got; want done, $J1BEST)"; exit 1
fi

V4=$(wait_done "$J4" 120)
V5=$(wait_done "$J5" 120)
for pair in "$J4|$V4" "$J5|$V5"; do
  id=${pair%%|*} v=${pair#*|}
  st=$(echo "$v" | jq -r '.status')
  intr=$(echo "$v" | jq -r '.result.Interrupted')
  if [ "$st" != done ] || [ "$intr" != false ]; then
    echo "FAIL: recovered job $id = $st (interrupted $intr)"
    echo "$v" | jq .; cat "$OUT/ptsd2.log"; exit 1
  fi
done
echo "PASS: restart re-served $J1's result, resumed $J4, re-admitted queued $J5"

echo "== SIGTERM drains a worker cleanly and shuts the daemon down"
kill -TERM "${WPID[w1]}" 2>/dev/null || kill -TERM "${WPID[w2]}" 2>/dev/null || true
sleep 1
total=$(curl -sf "$BASE/v1/fleet" | jq -r '.total')
if [ "$total" != 1 ]; then
  echo "FAIL: drained worker still registered (fleet total $total)"; exit 1
fi
kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
  echo "FAIL: ptsd exited non-zero on SIGTERM"; cat "$OUT/ptsd2.log"; exit 1
fi
grep -q "bye" "$OUT/ptsd2.log" || {
  echo "FAIL: ptsd did not report a clean shutdown"; cat "$OUT/ptsd2.log"; exit 1
}
echo "PASS: serving daemon e2e complete"
