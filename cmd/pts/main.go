// Command pts runs one parallel tabu search for VLSI standard-cell
// placement and prints the outcome.
//
// Usage:
//
//	pts -circuit c532                          # defaults: 4 TSWs, 1 CLW
//	pts -circuit c3540 -tsws 4 -clws 4 -het=false
//	pts -circuit highway -mode real            # wall-clock goroutine run
//	pts -netlist my.net                        # search a custom circuit
//	pts -netlist s1494.bench                   # a real ISCAS-89 .bench file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/timing"
	"pts/internal/viz"
)

func main() {
	var (
		circuit  = flag.String("circuit", "c532", "benchmark circuit (highway, c532, c1355, c3540)")
		nlPath   = flag.String("netlist", "", "path to a netlist file (overrides -circuit)")
		tsws     = flag.Int("tsws", 4, "number of tabu search workers")
		clws     = flag.Int("clws", 1, "candidate-list workers per TSW")
		gIters   = flag.Int("global", 10, "global iterations")
		lIters   = flag.Int("local", 40, "local iterations per global iteration")
		trials   = flag.Int("trials", 12, "trial pairs per compound-move step (m)")
		depth    = flag.Int("depth", 4, "compound move depth (d)")
		tenure   = flag.Int("tenure", 10, "tabu tenure")
		div      = flag.Int("diversify", 12, "diversification depth (0 = off)")
		het      = flag.Bool("het", true, "half-sync heterogeneous collection")
		mode     = flag.String("mode", "virtual", "runtime: virtual or real")
		seed     = flag.Uint64("seed", 1, "run seed")
		loadSeed = flag.Uint64("cluster-seed", 12, "testbed load-trace seed (0 = idle machines)")
		trace    = flag.Bool("trace", false, "print the best-cost trace")
		path     = flag.Bool("path", false, "print the critical path of the best placement")
		jsonOut  = flag.String("json", "", "write the full result as JSON to this file ('-' = stdout)")
		svgOut   = flag.String("svg", "", "write a congestion heat map of the best placement to this SVG file")
	)
	flag.Parse()

	nl, err := loadCircuit(*nlPath, *circuit)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = *tsws, *clws
	cfg.GlobalIters, cfg.LocalIters = *gIters, *lIters
	cfg.Trials, cfg.Depth, cfg.Tenure = *trials, *depth, *tenure
	cfg.DiversifyDepth = *div
	cfg.HalfSync = *het
	cfg.Seed = *seed

	var m core.Mode
	switch *mode {
	case "virtual":
		m = core.Virtual
	case "real":
		m = core.Real
		cfg.WorkPerTrial = 0 // real compute is the cost
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	st := nl.ComputeStats()
	fmt.Printf("circuit %s: %s\n", nl.Name, st)
	fmt.Printf("running %d TSWs x %d CLWs, %d global x %d local iterations (%s mode, half-sync=%v)\n",
		cfg.TSWs, cfg.CLWs, cfg.GlobalIters, cfg.LocalIters, *mode, cfg.HalfSync)

	res, err := core.Run(nl, cluster.Testbed12(*loadSeed), cfg, m)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ninitial cost   %.4f\n", res.InitialCost)
	fmt.Printf("best cost      %.4f  (%.1f%% better)\n", res.BestCost,
		100*(res.InitialCost-res.BestCost)/res.InitialCost)
	fmt.Printf("wirelength     %.0f\n", res.Objectives.Wirelength)
	fmt.Printf("critical path  %.2f ns\n", res.CriticalPath)
	fmt.Printf("area (row w)   %.0f\n", res.Objectives.Area)
	fmt.Printf("elapsed        %.3f s (%s)\n", res.Elapsed, *mode)
	fmt.Printf("stats          %+v\n", res.Stats)
	fmt.Printf("runtime        %d tasks, %d messages\n", res.Runtime.Spawns, res.Runtime.Sends)

	if *trace {
		fmt.Println("\ntime(s)   best cost")
		for _, p := range res.Trace.Points {
			fmt.Printf("%8.3f  %.4f\n", p.Time, p.Cost)
		}
	}
	if *path {
		if err := printCriticalPath(nl, res.BestPerm); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
	}
	if *svgOut != "" {
		if err := writeSVG(*svgOut, nl, res.BestPerm); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

// writeSVG renders the best placement's congestion heat map.
func writeSVG(path string, nl *netlist.Netlist, perm []int32) error {
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		return err
	}
	if err := p.Import(perm); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := viz.WritePlacementSVG(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printCriticalPath rebuilds the best placement and reports its
// critical path hop by hop.
func printCriticalPath(nl *netlist.Netlist, perm []int32) error {
	p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
	if err != nil {
		return err
	}
	if err := p.Import(perm); err != nil {
		return err
	}
	an := timing.New(nl, timing.DefaultConfig())
	an.Analyze(p)
	fmt.Println("\ncritical path:")
	fmt.Print(timing.FormatPath(nl, an.CriticalPathCells(p)))
	return nil
}

// writeJSON dumps the result for downstream tooling.
func writeJSON(path string, res *core.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// loadCircuit resolves the circuit: a named synthetic benchmark, a
// netlist in this repository's text format, or a real ISCAS-89 .bench
// file (detected by extension).
func loadCircuit(path, name string) (*netlist.Netlist, error) {
	if path == "" {
		return netlist.Benchmark(name)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bench") {
		base := strings.TrimSuffix(filepath.Base(path), ".bench")
		return netlist.ReadBench(f, base, 1)
	}
	return netlist.Read(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pts:", err)
	os.Exit(1)
}
