// Package sched is the heterogeneity-aware work-distribution subsystem
// of the parallel tabu search: it decides how the element space is
// partitioned among workers of unequal speed, and re-decides as the
// workers' observed throughput drifts.
//
// The package is deliberately runtime-free — pure arithmetic over
// observations the protocol layers feed it — so the same scheduler is
// exact on the deterministic virtual kernel (observations carry modeled
// time) and on real clusters (observations carry wall time). All
// decisions are integer-quantized and deterministic in the observation
// stream.
//
// Three pieces cooperate:
//
//   - Partition apportions [0, n) contiguously and proportionally to a
//     weight vector (largest-remainder method), guaranteeing every
//     positive-weight worker a non-empty range while n allows.
//   - Tracker folds per-worker cumulative work counters into smoothed
//     throughput weights (exponential moving average over observation
//     windows) and knows which workers are still alive.
//   - Rebalance applies hysteresis: a new partition is adopted only
//     when it moves more than a configured fraction of the element
//     space, or when membership changed (a worker died), so ranges do
//     not churn over measurement noise.
package sched

// DefaultAlpha is the EWMA smoothing factor for throughput updates:
// weight' = alpha*rate + (1-alpha)*weight. 0.5 follows fresh rates
// quickly while still damping single-window spikes.
const DefaultAlpha = 0.5

// DefaultMinShift is the rebalance hysteresis: a proposed partition is
// adopted only when the total element movement exceeds this fraction of
// the element space (unless membership changed, which always
// rebalances).
const DefaultMinShift = 0.05

// Partition splits [0, n) into len(weights) contiguous half-open
// ranges with sizes proportional to the weights, using the
// largest-remainder method (deterministic, ties broken by lower
// index). Workers with non-positive weight receive an empty range.
// Every positive-weight worker is guaranteed a non-empty range as long
// as n is at least the number of such workers; when n is smaller, the
// lowest-indexed positive-weight workers get one element each and the
// rest go empty.
func Partition(n int32, weights []float64) [][2]int32 {
	k := len(weights)
	out := make([][2]int32, k)
	total := 0.0
	alive := 0
	for _, w := range weights {
		if w > 0 {
			total += w
			alive++
		}
	}
	if n <= 0 || alive == 0 || total <= 0 {
		return out // all empty at [0, 0)
	}

	// Compute floor sizes and remainders in float64 — the same IEEE
	// arithmetic everywhere, so results are deterministic across hosts —
	// and let the largest-remainder pass absorb the rounding.
	sizes := make([]int32, k)
	rems := make([]float64, k)
	var assigned int32
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		ideal := float64(n) * w / total
		fl := int32(ideal) // truncation toward zero: fl <= ideal
		sizes[i] = fl
		rems[i] = ideal - float64(fl)
		assigned += fl
	}
	// Distribute the remainder one element at a time to the largest
	// fractional parts (ties: lowest index).
	for assigned < n {
		best, bestRem := -1, -1.0
		for i, w := range weights {
			if w <= 0 {
				continue
			}
			if rems[i] > bestRem {
				best, bestRem = i, rems[i]
			}
		}
		sizes[best]++
		rems[best] = -2 // consumed
		assigned++
	}
	// Min-1 guarantee: steal from the largest range for every starved
	// positive-weight worker, while elements remain.
	for {
		starved := -1
		for i, w := range weights {
			if w > 0 && sizes[i] == 0 {
				starved = i
				break
			}
		}
		if starved < 0 {
			break
		}
		donor, donorSz := -1, int32(1)
		for i := range sizes {
			if sizes[i] > donorSz {
				donor, donorSz = i, sizes[i]
			}
		}
		if donor < 0 {
			break // n < alive: nothing left to steal without starving the donor
		}
		sizes[donor]--
		sizes[starved]++
	}

	var at int32
	for i := range out {
		out[i] = [2]int32{at, at + sizes[i]}
		at += sizes[i]
	}
	return out
}

// Moved returns how many elements change hands between two partitions
// of the same space: the sum over workers of the non-overlapping part
// of their old and new ranges, divided by two (each moved element
// leaves one worker and enters another).
func Moved(old, new [][2]int32) int32 {
	if len(old) != len(new) {
		return 1 << 30
	}
	var moved int32
	for i := range old {
		lo := max32(old[i][0], new[i][0])
		hi := min32(old[i][1], new[i][1])
		overlap := hi - lo
		if overlap < 0 {
			overlap = 0
		}
		moved += (old[i][1] - old[i][0]) - overlap
	}
	return moved
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Tracker maintains per-worker throughput weights from cumulative work
// observations. It is not safe for concurrent use; each owning task
// (a TSW for its CLWs, the master for its TSWs) drives its own.
type Tracker struct {
	n     int32
	alpha float64
	w     []workerState
}

type workerState struct {
	weight float64 // smoothed throughput (work units per second)
	alive  bool
	seen   bool    // at least one observation recorded
	base   float64 // cumulative work at the last observation
	at     float64 // time of the last observation
}

// NewTracker builds a tracker over an element space of size n with one
// entry per seed weight. Seed weights are typically the declared
// machine speeds, so the very first partition is already
// speed-skewed; non-positive seeds are lifted to 1 (unknown machines
// count as reference speed).
func NewTracker(n int32, seeds []float64) *Tracker {
	t := &Tracker{n: n, alpha: DefaultAlpha, w: make([]workerState, len(seeds))}
	for i, s := range seeds {
		if s <= 0 {
			s = 1
		}
		t.w[i] = workerState{weight: s, alive: true}
	}
	return t
}

// Observe folds one cumulative work reading (e.g. trials charged so
// far) taken at the given time into worker i's throughput weight. The
// first observation only establishes the baseline; subsequent ones
// update the EWMA with the window rate. Readings with a non-positive
// time delta are ignored.
func (t *Tracker) Observe(i int, cumWork, now float64) {
	if i < 0 || i >= len(t.w) || !t.w[i].alive {
		return
	}
	w := &t.w[i]
	if !w.seen {
		w.seen, w.base, w.at = true, cumWork, now
		return
	}
	dt := now - w.at
	dwork := cumWork - w.base
	if dt <= 0 || dwork < 0 {
		return
	}
	rate := dwork / dt
	w.weight = t.alpha*rate + (1-t.alpha)*w.weight
	w.base, w.at = cumWork, now
	if w.weight <= 0 {
		// A fully stalled worker keeps an infinitesimal positive weight
		// so it is never starved outright while alive.
		w.weight = 1e-9
	}
}

// ObserveWindow folds one complete measurement window — work units
// done over dt seconds — into worker i's throughput weight. Unlike
// Observe it needs no baseline: callers use it when they measure each
// window directly (e.g. a coordinator timing how long a worker's round
// took on its own clock), which keeps the signal meaningful even under
// a full barrier where every worker does identical work per round and
// only the completion latency differs. Non-positive windows are
// ignored.
func (t *Tracker) ObserveWindow(i int, work, dt float64) {
	if i < 0 || i >= len(t.w) || !t.w[i].alive || dt <= 0 || work < 0 {
		return
	}
	w := &t.w[i]
	w.weight = t.alpha*(work/dt) + (1-t.alpha)*w.weight
	if w.weight <= 0 {
		w.weight = 1e-9
	}
}

// Kill marks worker i dead: its weight drops to zero and the next
// partition folds its range into the survivors.
func (t *Tracker) Kill(i int) {
	if i < 0 || i >= len(t.w) {
		return
	}
	t.w[i].alive = false
	t.w[i].weight = 0
}

// Revive marks worker i alive again with a fresh seed weight — the
// respawn path, where a replacement worker takes over a dead worker's
// index. Its observation baseline is reset (the replacement's
// cumulative counters start over), and the next Rebalance always
// adopts because an alive worker now holds an empty range.
// Non-positive seeds are lifted to 1, like NewTracker's.
func (t *Tracker) Revive(i int, seed float64) {
	if i < 0 || i >= len(t.w) {
		return
	}
	if seed <= 0 {
		seed = 1
	}
	t.w[i] = workerState{weight: seed, alive: true}
}

// MeanAliveWeight returns the average weight of the live workers (1 if
// none) — the neutral seed a revived worker re-enters the pool with
// when its new host's speed is unknown.
func (t *Tracker) MeanAliveWeight() float64 {
	total, n := 0.0, 0
	for i := range t.w {
		if t.w[i].alive && t.w[i].weight > 0 {
			total += t.w[i].weight
			n++
		}
	}
	if n == 0 || total <= 0 {
		return 1
	}
	return total / float64(n)
}

// Alive returns how many workers are still alive.
func (t *Tracker) Alive() int {
	n := 0
	for i := range t.w {
		if t.w[i].alive {
			n++
		}
	}
	return n
}

// Weights returns a copy of the current weight vector (zero for dead
// workers).
func (t *Tracker) Weights() []float64 {
	out := make([]float64, len(t.w))
	for i := range t.w {
		if t.w[i].alive {
			out[i] = t.w[i].weight
		}
	}
	return out
}

// Shares returns each worker's fraction of the total live weight, the
// quantity progress snapshots report.
func (t *Tracker) Shares() []float64 {
	out := t.Weights()
	total := 0.0
	for _, w := range out {
		total += w
	}
	if total <= 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Partition apportions the tracker's element space over the current
// weights.
func (t *Tracker) Partition() [][2]int32 {
	return Partition(t.n, t.Weights())
}

// Rebalance proposes a new partition and reports whether it should be
// adopted over cur: always when membership changed — a dead worker
// still holds a non-empty range, or a live (e.g. just-revived) worker
// holds an empty one the proposal would fill — otherwise only when the
// total element movement exceeds minShift×n. minShift <= 0 uses
// DefaultMinShift.
func (t *Tracker) Rebalance(cur [][2]int32, minShift float64) ([][2]int32, bool) {
	if minShift <= 0 {
		minShift = DefaultMinShift
	}
	next := Partition(t.n, t.Weights())
	if len(cur) != len(next) {
		return next, true
	}
	for i := range t.w {
		if !t.w[i].alive && cur[i][1] > cur[i][0] {
			return next, true // a dead worker still holds elements
		}
		if t.w[i].alive && cur[i][1] <= cur[i][0] && next[i][1] > next[i][0] {
			return next, true // a revived worker is owed a range
		}
	}
	if float64(Moved(cur, next)) > minShift*float64(t.n) {
		return next, true
	}
	return cur, false
}
