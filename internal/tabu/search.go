package tabu

import (
	"math/rand"

	"pts/internal/rng"
)

// Params configure a sequential tabu search.
type Params struct {
	// Tenure is how many iterations a used attribute stays tabu.
	Tenure int
	// Trials is m: candidate pairs examined per compound-move step.
	Trials int
	// Depth is d: the maximum number of swaps in a compound move.
	Depth int
	// RangeLo/RangeHi restrict the first element of every trial swap to
	// [RangeLo, RangeHi); zero values mean the whole problem.
	RangeLo, RangeHi int32
	// RefreshEvery triggers Problem refreshes (full timing analysis for
	// placement) every that many accepted moves; 0 disables.
	RefreshEvery int
	// Seed drives all sampling.
	Seed uint64
}

// DefaultParams returns the engine defaults used across experiments.
func DefaultParams() Params {
	return Params{Tenure: 10, Trials: 8, Depth: 3, RefreshEvery: 64}
}

// Refresher is implemented by problems that can resynchronize cached
// models (the placement evaluator's timing criticalities).
type Refresher interface{ Refresh() }

// Stats counts search events.
type Stats struct {
	Steps        int64
	Accepted     int64
	TabuRejected int64
	Aspirations  int64
	EarlyAccepts int64
	Improvements int64
}

// Search is a self-contained sequential tabu search over a Problem —
// what one TSW with one candidate-list worker computes, and the n=1
// baseline of every speedup figure.
type Search struct {
	Prob  Problem
	P     Params
	List  *List
	Freq  *Frequency
	Stats Stats
	r     *rand.Rand
	iter  int64
	best  float64
	snap  []int32
	sc    BatchScratch // candidate-batch buffers reused across Steps
}

// NewSearch builds a search over prob; the current solution becomes the
// incumbent best.
func NewSearch(prob Problem, p Params) *Search {
	if p.Tenure < 1 {
		p.Tenure = 1
	}
	s := &Search{
		Prob: prob,
		P:    p,
		List: NewList(),
		Freq: NewFrequency(prob.Size()),
		r:    rng.New(rng.Derive(p.Seed, "tabu.search")),
		best: prob.Cost(),
		snap: prob.Snapshot(),
	}
	return s
}

// BestCost returns the incumbent best cost.
func (s *Search) BestCost() float64 { return s.best }

// BestSnapshot returns the incumbent best solution. The returned slice
// is owned by the search; callers must not modify it.
func (s *Search) BestSnapshot() []int32 { return s.snap }

// Iter returns the number of iterations performed.
func (s *Search) Iter() int64 { return s.iter }

// noteCost updates the incumbent if the current solution improves on it.
func (s *Search) noteCost() {
	if c := s.Prob.Cost(); c < s.best-eps {
		s.best = c
		s.snap = s.Prob.Snapshot()
		s.Stats.Improvements++
	}
}

// Step performs one tabu search iteration: build a compound move (the
// candidate list), test it against the short-term memory and the
// aspiration criterion, and accept or revert it.
func (s *Search) Step() {
	s.iter++
	s.Stats.Steps++
	cur := s.Prob.Cost()
	move := BuildCompoundBatch(s.Prob, s.r, CompoundParams{
		Trials:  s.P.Trials,
		Depth:   s.P.Depth,
		RangeLo: s.P.RangeLo,
		RangeHi: s.P.RangeHi,
	}, &s.sc, nil)
	if move.Empty() {
		return
	}
	if move.Delta < -eps && len(move.Swaps) < s.P.Depth {
		s.Stats.EarlyAccepts++
	}
	attrs := move.Attributes()
	if s.List.AnyTabu(attrs, s.iter) {
		if cur+move.Delta < s.best-eps {
			s.Stats.Aspirations++
		} else {
			move.Undo(s.Prob)
			s.Stats.TabuRejected++
			return
		}
	}
	s.accept(&move, attrs)
}

// accept commits an applied move: records memory, counters, incumbent,
// and periodic refreshes.
func (s *Search) accept(move *CompoundMove, attrs []Attribute) {
	for _, at := range attrs {
		s.List.Add(at, s.iter+int64(s.P.Tenure))
	}
	s.Freq.BumpMove(move)
	s.Stats.Accepted++
	s.noteCost()
	if s.P.RefreshEvery > 0 && s.Stats.Accepted%int64(s.P.RefreshEvery) == 0 {
		if rf, ok := s.Prob.(Refresher); ok {
			rf.Refresh()
			s.noteCost()
		}
	}
}

// Run performs n iterations.
func (s *Search) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Diversify applies the Kelly et al. frequency-based diversification
// within [lo, hi): depth forced swaps whose first element is the least
// frequently moved element of the range and whose second element is
// uniform over the whole space. The applied attributes are made tabu so
// the search does not immediately undo the jump. Costs are ignored —
// diversification deliberately accepts bad moves.
func (s *Search) Diversify(depth int, lo, hi int32) {
	size := s.Prob.Size()
	if hi <= lo {
		lo, hi = 0, size
	}
	if hi > size {
		hi = size
	}
	if lo < 0 {
		lo = 0
	}
	if hi-lo < 1 || size < 2 {
		return
	}
	for i := 0; i < depth; i++ {
		a := s.Freq.LeastMoved(s.r, lo, hi)
		b := int32(s.r.Intn(int(size)))
		if a == b {
			continue
		}
		s.Prob.ApplySwap(a, b)
		s.Freq.BumpSwap(a, b)
		s.List.Add(Attr(a, b), s.iter+int64(s.P.Tenure))
	}
	s.noteCost()
}

// AdoptSolution replaces the current solution (e.g. with the global best
// broadcast by the master) and, when better, the incumbent.
func (s *Search) AdoptSolution(snap []int32) error {
	if err := s.Prob.Restore(snap); err != nil {
		return err
	}
	if rf, ok := s.Prob.(Refresher); ok {
		rf.Refresh()
	}
	s.noteCost()
	return nil
}
