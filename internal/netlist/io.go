package netlist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text netlist format is line-oriented:
//
//	circuit <name>
//	cell <name> <width> <delay> <kind>     # kind in {gate, input, output}
//	net <name> <driver> <sink> [<sink>...] # cells referenced by name
//	# comment
//
// Cells must be declared before the nets that reference them. The format
// is stable and diff-friendly, meant for checked-in fixtures and the
// netgen CLI.

// Write serializes the netlist in the text format.
func Write(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", nl.Name)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		fmt.Fprintf(bw, "cell %s %d %g %s\n", c.Name, c.Width, c.Delay, c.Kind)
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		fmt.Fprintf(bw, "net %s %s", n.Name, nl.Cells[n.Driver].Name)
		for _, s := range n.Sinks {
			fmt.Fprintf(bw, " %s", nl.Cells[s].Name)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses the text format and returns a finished netlist.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	nl := &Netlist{}
	byName := map[string]CellID{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: want 'circuit <name>'", lineNo)
			}
			nl.Name = fields[1]
		case "cell":
			if len(fields) != 5 {
				return nil, fmt.Errorf("netlist: line %d: want 'cell <name> <width> <delay> <kind>'", lineNo)
			}
			width, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: bad width: %v", lineNo, err)
			}
			delay, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: bad delay: %v", lineNo, err)
			}
			kind, err := parseKind(fields[4])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			if _, dup := byName[fields[1]]; dup {
				return nil, fmt.Errorf("netlist: line %d: duplicate cell %q", lineNo, fields[1])
			}
			byName[fields[1]] = CellID(len(nl.Cells))
			nl.Cells = append(nl.Cells, Cell{Name: fields[1], Width: width, Delay: delay, Kind: kind})
		case "net":
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: want 'net <name> <driver> <sink>...'", lineNo)
			}
			driver, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown driver cell %q", lineNo, fields[2])
			}
			net := Net{Name: fields[1], Driver: driver}
			for _, sn := range fields[3:] {
				s, ok := byName[sn]
				if !ok {
					return nil, fmt.Errorf("netlist: line %d: unknown sink cell %q", lineNo, sn)
				}
				net.Sinks = append(net.Sinks, s)
			}
			nl.Nets = append(nl.Nets, net)
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := nl.Finish(); err != nil {
		return nil, err
	}
	return nl, nil
}

func parseKind(s string) (CellKind, error) {
	switch s {
	case "gate":
		return Gate, nil
	case "input":
		return Input, nil
	case "output":
		return Output, nil
	default:
		return 0, fmt.Errorf("unknown cell kind %q", s)
	}
}

// jsonNetlist is the JSON wire form; it avoids exposing internal indexes.
type jsonNetlist struct {
	Name  string `json:"name"`
	Cells []Cell `json:"cells"`
	Nets  []Net  `json:"nets"`
}

// MarshalJSON encodes the netlist (cells and nets only; indexes are
// rebuilt on decode).
func (nl *Netlist) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonNetlist{Name: nl.Name, Cells: nl.Cells, Nets: nl.Nets})
}

// UnmarshalJSON decodes and finishes the netlist.
func (nl *Netlist) UnmarshalJSON(data []byte) error {
	var j jsonNetlist
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	nl.Name, nl.Cells, nl.Nets = j.Name, j.Cells, j.Nets
	return nl.Finish()
}
