package pts

import (
	"io"
	"os"
	"path/filepath"
	"strings"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/timing"
	"pts/internal/viz"
)

// PlacementProblem is the paper's workload: VLSI standard-cell
// placement under the fuzzy multi-objective cost (wirelength, timing,
// area). It implements Problem — states are incremental evaluators over
// a shared slot grid — and Detailer, so Result.Details carries a
// PlacementDetails with the exact objectives of the best layout.
//
// A PlacementProblem value supports one run at a time: the fuzzy goals
// every state scores against are rebased on each run's initial
// solution.
type PlacementProblem struct {
	nl *netlist.Netlist
	pp *cost.PlacementProblem
}

// placementUtilization is the slot-grid fill ratio of the experiments.
const placementUtilization = 0.9

// newPlacement wraps a loaded circuit.
func newPlacement(nl *netlist.Netlist) *PlacementProblem {
	return &PlacementProblem{
		nl: nl,
		pp: cost.NewPlacementProblem(nl, placementUtilization, cost.DefaultConfig()),
	}
}

// PlacementBenchmark returns the placement problem over one of the
// repository's named benchmark circuits (highway, c532, c1355, c3540 —
// synthetic stand-ins matched to the paper's circuits).
func PlacementBenchmark(name string) (*PlacementProblem, error) {
	nl, err := netlist.Benchmark(name)
	if err != nil {
		return nil, err
	}
	return newPlacement(nl), nil
}

// PlacementFromFile loads a circuit from disk and returns its placement
// problem. Files ending in ".bench" are parsed as ISCAS-89 benchmark
// netlists; anything else as this repository's text netlist format.
func PlacementFromFile(path string) (*PlacementProblem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var nl *netlist.Netlist
	if strings.HasSuffix(path, ".bench") {
		base := strings.TrimSuffix(filepath.Base(path), ".bench")
		nl, err = netlist.ReadBench(f, base, 1)
	} else {
		nl, err = netlist.Read(f)
	}
	if err != nil {
		return nil, err
	}
	return newPlacement(nl), nil
}

// GeneratePlacement synthesizes a random circuit with the given name
// and cell count, deterministic in seed, and returns its placement
// problem.
func GeneratePlacement(name string, cells int, seed uint64) (*PlacementProblem, error) {
	nl, err := netlist.Generate(netlist.GenConfig{Name: name, Cells: cells, Seed: seed})
	if err != nil {
		return nil, err
	}
	return newPlacement(nl), nil
}

// Name returns the circuit name.
func (p *PlacementProblem) Name() string { return p.pp.Name() }

// Size returns the number of cells.
func (p *PlacementProblem) Size() int32 { return p.pp.Size() }

// Initial derives the run's shared initial placement from seed and
// rebases the fuzzy goals on it.
func (p *PlacementProblem) Initial(seed uint64) (State, error) { return p.pp.Initial(seed) }

// NewState builds an independent evaluator positioned at snap.
func (p *PlacementProblem) NewState(snap []int32) (State, error) { return p.pp.NewState(snap) }

// Details rescores a solution exactly (fresh full timing analysis) and
// returns a PlacementDetails.
func (p *PlacementProblem) Details(best []int32) (any, error) {
	obj, cpd, err := p.pp.Score(best)
	if err != nil {
		return nil, err
	}
	return PlacementDetails{
		Wirelength:   obj.Wirelength,
		Delay:        obj.Delay,
		Area:         obj.Area,
		CriticalPath: cpd,
	}, nil
}

// Describe returns a one-line circuit summary (cells, nets, pin
// statistics).
func (p *PlacementProblem) Describe() string { return p.nl.ComputeStats().String() }

// Cells returns the circuit's cell count.
func (p *PlacementProblem) Cells() int { return p.nl.NumCells() }

// Nets returns the circuit's net count.
func (p *PlacementProblem) Nets() int { return p.nl.NumNets() }

// WriteSVG renders the layout a solution permutation denotes as a
// congestion heat map.
func (p *PlacementProblem) WriteSVG(w io.Writer, perm []int32) error {
	pl, err := p.pp.Placed(perm)
	if err != nil {
		return err
	}
	return viz.WritePlacementSVG(w, pl)
}

// CriticalPathText formats the critical path of a solution permutation
// hop by hop.
func (p *PlacementProblem) CriticalPathText(perm []int32) (string, error) {
	pl, err := p.pp.Placed(perm)
	if err != nil {
		return "", err
	}
	an := timing.New(p.nl, timing.DefaultConfig())
	an.Analyze(pl)
	return timing.FormatPath(p.nl, an.CriticalPathCells(pl)), nil
}

// PlacementDetails is the exact scoring of a placement solution.
type PlacementDetails struct {
	// Wirelength is the total half-perimeter wirelength in slot units.
	Wirelength float64
	// Delay is the criticality-weighted interconnect delay surrogate.
	Delay float64
	// Area is the width of the widest row in slot units.
	Area float64
	// CriticalPath is the exact critical path delay in nanoseconds.
	CriticalPath float64
}
