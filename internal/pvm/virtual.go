package pvm

import (
	"fmt"
	"math/rand"

	"pts/internal/cluster"
	"pts/internal/rng"
	"pts/internal/vtime"
)

// vRuntime is the deterministic virtual-time runtime.
type vRuntime struct {
	k       *vtime.Kernel
	c       cluster.Cluster
	seed    uint64
	spawner TaskFactory
	done    <-chan struct{}
	task    []*vTask
	spawns  int64
	sends   int64
}

// vTask is one virtual task.
type vTask struct {
	rt       *vRuntime
	id       TaskID
	name     string
	machine  int
	proc     *vtime.Proc
	inbox    []Message
	waiting  bool
	finished bool
	r        *rand.Rand
	// lastTo tracks, per destination, the latest scheduled arrival of a
	// message this task sent there: PVM (like TCP) guarantees messages
	// between two tasks arrive in the order sent, so a later small
	// message must not overtake an earlier big one.
	lastTo map[TaskID]vtime.Time
}

var _ Env = (*vTask)(nil)

func (t *vTask) Self() TaskID      { return t.id }
func (t *vTask) Name() string      { return t.name }
func (t *vTask) MachineIndex() int { return t.machine }
func (t *vTask) Rand() *rand.Rand  { return t.r }
func (t *vTask) Now() float64      { return float64(t.rt.k.Now()) }
func (t *vTask) Cancelled() bool   { return cancelled(t.rt.done) }

// MachineSpeed implements SpeedReporter from the cluster model,
// wrapping the index exactly like spawn does.
func (t *vTask) MachineSpeed(machine int) float64 {
	n := len(t.rt.c.Machines)
	machine = ((machine % n) + n) % n
	return t.rt.c.Machine(machine).Speed
}

func (t *vTask) Spawn(name string, machine int, fn TaskFunc) TaskID {
	return t.rt.spawn(t.name+"/"+name, machine, fn)
}

func (t *vTask) SpawnSpec(name string, machine int, spec Spec) TaskID {
	return t.Spawn(name, machine, resolveSpec(t.rt.spawner, t.name+"/"+name, spec))
}

func (rt *vRuntime) spawn(fullName string, machine int, fn TaskFunc) TaskID {
	rt.spawns++
	machine = ((machine % len(rt.c.Machines)) + len(rt.c.Machines)) % len(rt.c.Machines)
	child := &vTask{
		rt:      rt,
		id:      TaskID(len(rt.task)),
		name:    fullName,
		machine: machine,
		r:       rng.NewChild(rt.seed, "pvm.task", fullName),
	}
	rt.task = append(rt.task, child)
	child.proc = rt.k.Spawn(fullName, func(*vtime.Proc) {
		fn(child)
		child.finished = true
	})
	return child.id
}

func (t *vTask) Send(to TaskID, tag Tag, data any) {
	rt := t.rt
	rt.sends++
	if int(to) < 0 || int(to) >= len(rt.task) {
		panic(fmt.Sprintf("pvm: send to unknown task %d from %q", to, t.name))
	}
	dst := rt.task[to]
	msg := Message{From: t.id, Tag: tag, Data: data}
	items := payloadItems(data)
	delay := rt.c.MsgDelay(items)
	if dst.machine == t.machine {
		// Same machine: no LAN traversal, just software overhead plus the
		// memory copy.
		delay = rt.c.SendLatency/4 + rt.c.PerItem*float64(items)
	}
	// Per-pair FIFO: never schedule an arrival before an earlier message
	// to the same destination.
	arrival := rt.k.Now() + vtime.Time(delay)
	if t.lastTo == nil {
		t.lastTo = make(map[TaskID]vtime.Time)
	}
	if prev := t.lastTo[to]; arrival < prev {
		arrival = prev
	}
	t.lastTo[to] = arrival
	rt.k.After(arrival-rt.k.Now(), func() {
		dst.inbox = append(dst.inbox, msg)
		if dst.waiting {
			rt.k.Wake(dst.proc)
		}
	})
}

func (t *vTask) Recv(tags ...Tag) Message {
	for {
		if m, ok := scanInbox(&t.inbox, tags); ok {
			return m
		}
		t.waiting = true
		t.proc.Suspend()
		t.waiting = false
	}
}

func (t *vTask) TryRecv(tags ...Tag) (Message, bool) {
	return scanInbox(&t.inbox, tags)
}

func (t *vTask) Work(seconds float64) {
	if seconds <= 0 {
		return
	}
	m := t.rt.c.Machine(t.machine)
	d := m.WorkDuration(float64(t.rt.k.Now()), seconds)
	t.proc.Sleep(vtime.Time(d))
}

// RunVirtual executes root (and everything it spawns) on the
// discrete-event kernel and returns the virtual make-span in seconds.
// It returns an error if the cluster is invalid, the event limit was
// hit, or tasks were still blocked when the event queue drained (a
// protocol bug in the task code).
func RunVirtual(opts Options, root TaskFunc) (elapsed float64, err error) {
	opts = opts.withDefaults()
	if err := opts.Cluster.Validate(); err != nil {
		return 0, err
	}
	rt := &vRuntime{
		k:       vtime.NewKernel(),
		c:       opts.Cluster,
		seed:    opts.Seed,
		spawner: opts.Spawner,
		done:    doneChan(opts.Context),
	}
	rt.k.MaxEvents = opts.MaxEvents
	rt.spawn("root", 0, root)
	runErr := rt.k.Run()
	elapsed = float64(rt.k.Now())
	if opts.Counters != nil {
		opts.Counters.Spawns = rt.spawns
		opts.Counters.Sends = rt.sends
		opts.Counters.Events = int64(rt.k.Events())
	}
	if runErr != nil {
		return elapsed, runErr
	}
	var stalled []string
	for _, t := range rt.task {
		if !t.finished {
			stalled = append(stalled, t.name)
		}
	}
	if len(stalled) > 0 {
		return elapsed, fmt.Errorf("pvm: tasks blocked at shutdown: %v", stalled)
	}
	return elapsed, nil
}
