package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/flowshop"
	"pts/internal/jobshop"
	"pts/internal/rng"
	"pts/internal/schedinst"
	"pts/internal/tabu"
)

// Scheduling-workload benchmark: runs the engine over every embedded
// flow shop and job shop instance at a fixed virtual-time budget and
// measures the delta-evaluation kernels' throughput. Unlike the
// placement and QAP workloads these problems have non-O(1) swap deltas
// — the flow shop recomputes a critical-path section per candidate, the
// job shop re-decodes the whole schedule — so the absolute deltas/sec
// figures quantify how much heavier these evaluators are, and the
// batch-vs-scalar ratio documents that the BatchEvaluator path adds no
// overhead even where it cannot add speed (both paths amortize the same
// lazily rebuilt caches; the batch contract here buys bit-identical
// pluggability, not extra throughput).

// SchedOpts configures the -sched scenario.
type SchedOpts struct {
	// Context bounds the runs (nil = background).
	Context context.Context
	// GlobalIters and LocalIters set the search budget per instance
	// (defaults 10 and 60).
	GlobalIters, LocalIters int
	// Scale multiplies the local iteration budget (ptsbench -scale);
	// <= 0 means 1.0.
	Scale float64
	// Seed fixes the run seed (default 1).
	Seed uint64
	// MeasureDur is the sampling window per throughput kernel
	// (default 300ms).
	MeasureDur time.Duration
}

func (o SchedOpts) withDefaults() SchedOpts {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.GlobalIters <= 0 {
		o.GlobalIters = 10
	}
	if o.LocalIters <= 0 {
		o.LocalIters = 60
	}
	if o.Scale > 0 && o.Scale != 1 {
		o.LocalIters = int(float64(o.LocalIters)*o.Scale + 0.5)
		if o.LocalIters < 1 {
			o.LocalIters = 1
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MeasureDur <= 0 {
		o.MeasureDur = 300 * time.Millisecond
	}
	return o
}

// SchedInstance is one instance's search outcome plus kernel
// throughput.
type SchedInstance struct {
	Instance string `json:"instance"`
	Family   string `json:"family"` // "flowshop" or "jobshop"
	Jobs     int    `json:"jobs"`
	Machines int    `json:"machines"`

	InitialMakespan int `json:"initial_makespan"`
	BestMakespan    int `json:"best_makespan"`
	// Optimum is the published optimal makespan (flow shop: the Taillard
	// header's proven upper bound), 0 when unknown.
	Optimum int `json:"optimum,omitempty"`
	// LowerBound is the instance's load-based lower bound.
	LowerBound int `json:"lower_bound"`
	// GapPercent is (best - optimum) / optimum in percent, when the
	// optimum is known.
	GapPercent float64 `json:"gap_percent"`
	// ModeledSeconds is the virtual-clock makespan of the search run.
	ModeledSeconds float64 `json:"modeled_seconds"`

	// Deltas/second through the scalar DeltaSwap loop and the batched
	// DeltaSwapBatch kernel, and their ratio.
	ScalarDeltasPerSec float64 `json:"scalar_deltas_per_sec"`
	BatchDeltasPerSec  float64 `json:"batch_deltas_per_sec"`
	BatchSpeedup       float64 `json:"batch_speedup"`
}

// SchedReport is the BENCH_sched.json schema.
type SchedReport struct {
	Note        string `json:"note"`
	GoVersion   string `json:"go_version"`
	GeneratedAt string `json:"generated_at"`

	GlobalIters int    `json:"global_iters"`
	LocalIters  int    `json:"local_iters"`
	Seed        uint64 `json:"seed"`

	Instances []SchedInstance `json:"instances"`
}

// schedState is the common surface of the two workloads' states the
// throughput sampler drives.
type schedState interface {
	core.State
	DeltaSwapBatch(cands []tabu.SwapCand, out []float64)
}

// fsProblem adapts a flow shop instance to core.Problem. The initial
// derivation label matches the public facade's, so makespans here
// correspond one-to-one to `pts -flowshop` runs at the same seed.
type fsProblem struct{ ins *schedinst.FlowShop }

func (p fsProblem) Name() string { return "flowshop-" + p.ins.Name }
func (p fsProblem) Size() int32  { return int32(p.ins.Jobs) }
func (p fsProblem) Initial(seed uint64) (core.State, error) {
	return flowshop.NewState(p.ins, rng.Derive(seed, "pts.flowshop.initial")), nil
}
func (p fsProblem) NewState(snap []int32) (core.State, error) {
	return flowshop.NewStateAt(p.ins, snap)
}

// jsProblem adapts a job shop instance to core.Problem.
type jsProblem struct{ ins *schedinst.JobShop }

func (p jsProblem) Name() string { return "jobshop-" + p.ins.Name }
func (p jsProblem) Size() int32  { return int32(p.ins.Jobs * p.ins.Machines) }
func (p jsProblem) Initial(seed uint64) (core.State, error) {
	return jobshop.NewState(p.ins, rng.Derive(seed, "pts.jobshop.initial")), nil
}
func (p jsProblem) NewState(snap []int32) (core.State, error) {
	return jobshop.NewStateAt(p.ins, snap)
}

// measureSchedKernels samples the scalar and batched delta kernels on a
// warm state for dur each and returns deltas/second.
func measureSchedKernels(st schedState, dur time.Duration) (scalar, batch float64) {
	const batchLen = 64
	size := int(st.Size())
	r := rng.New(99)
	cands := make([]tabu.SwapCand, batchLen)
	for i := range cands {
		cands[i] = tabu.SwapCand{A: int32(r.Intn(size)), B: int32(r.Intn(size))}
	}
	out := make([]float64, batchLen)
	st.DeltaSwapBatch(cands, out) // warm caches

	deadline := time.Now().Add(dur)
	var n int64
	start := time.Now()
	for time.Now().Before(deadline) {
		for i := range cands {
			out[i] = st.DeltaSwap(cands[i].A, cands[i].B)
		}
		n += batchLen
	}
	scalar = float64(n) / time.Since(start).Seconds()

	deadline = time.Now().Add(dur)
	n = 0
	start = time.Now()
	for time.Now().Before(deadline) {
		st.DeltaSwapBatch(cands, out)
		n += batchLen
	}
	batch = float64(n) / time.Since(start).Seconds()
	return scalar, batch
}

// Sched runs the scheduling-workload benchmark and returns the report.
func Sched(o SchedOpts) (*SchedReport, error) {
	o = o.withDefaults()
	rep := &SchedReport{
		Note:        "scheduling workloads: engine search quality and delta-kernel throughput per embedded instance; regenerate with: ptsbench -sched",
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GlobalIters: o.GlobalIters,
		LocalIters:  o.LocalIters,
		Seed:        o.Seed,
	}

	type entry struct {
		prob           core.Problem
		family         string
		jobs, machines int
		optimum, lower int
	}
	var entries []entry
	for _, name := range schedinst.FlowShopNames() {
		ins, err := schedinst.FlowShopByName(name)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{
			prob: fsProblem{ins: ins}, family: "flowshop",
			jobs: ins.Jobs, machines: ins.Machines,
			optimum: ins.Upper, lower: flowshop.LowerBound(ins),
		})
	}
	for _, name := range schedinst.JobShopNames() {
		ins, err := schedinst.JobShopByName(name)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{
			prob: jsProblem{ins: ins}, family: "jobshop",
			jobs: ins.Jobs, machines: ins.Machines,
			optimum: ins.Optimum, lower: jobshop.LowerBound(ins),
		})
	}

	cfg := core.DefaultConfig()
	cfg.GlobalIters, cfg.LocalIters = o.GlobalIters, o.LocalIters
	cfg.Seed = o.Seed
	clus := cluster.Homogeneous(12, 1)

	for _, e := range entries {
		res, err := core.RunProblem(o.Context, e.prob, clus, cfg, core.Virtual)
		if err != nil {
			return nil, err
		}
		si := SchedInstance{
			Instance:        e.prob.Name(),
			Family:          e.family,
			Jobs:            e.jobs,
			Machines:        e.machines,
			InitialMakespan: int(res.InitialCost),
			BestMakespan:    int(res.BestCost),
			Optimum:         e.optimum,
			LowerBound:      e.lower,
			ModeledSeconds:  res.Elapsed,
		}
		if e.optimum > 0 {
			si.GapPercent = 100 * float64(si.BestMakespan-e.optimum) / float64(e.optimum)
		}
		st, err := e.prob.Initial(o.Seed)
		if err != nil {
			return nil, err
		}
		ss, ok := st.(schedState)
		if !ok {
			return nil, fmt.Errorf("bench: %s state %T lacks DeltaSwapBatch", e.prob.Name(), st)
		}
		sc, ba := measureSchedKernels(ss, o.MeasureDur)
		si.ScalarDeltasPerSec, si.BatchDeltasPerSec = sc, ba
		if sc > 0 {
			si.BatchSpeedup = ba / sc
		}
		rep.Instances = append(rep.Instances, si)
	}
	return rep, nil
}

// RenderSched formats the report for the terminal.
func RenderSched(rep *SchedReport) string {
	out := fmt.Sprintf("scheduling workloads: %dx%d iterations, seed %d\n",
		rep.GlobalIters, rep.LocalIters, rep.Seed)
	for _, si := range rep.Instances {
		line := fmt.Sprintf("  %-16s %2dx%-2d  initial %5d  best %5d",
			si.Instance, si.Jobs, si.Machines, si.InitialMakespan, si.BestMakespan)
		if si.Optimum > 0 {
			line += fmt.Sprintf("  optimum %5d (gap %.1f%%)", si.Optimum, si.GapPercent)
		} else {
			line += fmt.Sprintf("  lower bound %5d", si.LowerBound)
		}
		line += fmt.Sprintf("  deltas/s scalar %.2e batch %.2e (%.2fx)\n",
			si.ScalarDeltasPerSec, si.BatchDeltasPerSec, si.BatchSpeedup)
		out += line
	}
	return out
}

// WriteSched writes the report as <dir>/BENCH_sched.json.
func WriteSched(rep *SchedReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_sched.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
