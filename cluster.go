package pts

import (
	"fmt"

	"pts/internal/cluster"
)

// Cluster describes the machines a run executes on: their relative
// speeds, background load, and the LAN message cost model the virtual
// runtime charges. Construct one with Homogeneous, Testbed12 or
// ClusterOf and pass it via WithCluster.
type Cluster struct {
	c cluster.Cluster
}

// Homogeneous builds n identical idle machines of the given relative
// speed — the control platform of every speedup comparison.
func Homogeneous(n int, speed float64) Cluster {
	return Cluster{c: cluster.Homogeneous(n, speed)}
}

// Testbed12 builds the paper's 12-machine platform: 7 high-speed, 3
// medium-speed and 2 low-speed workstations, each carrying a random
// background load trace deterministic in loadSeed. loadSeed 0 yields
// idle machines so speed differences alone can be studied.
func Testbed12(loadSeed uint64) Cluster {
	return Cluster{c: cluster.Testbed12(loadSeed)}
}

// ClusterOf builds idle machines with the given relative speeds and the
// default LAN cost model — the quickest way to sketch a heterogeneous
// platform.
func ClusterOf(speeds ...float64) Cluster {
	ms := make([]cluster.Machine, len(speeds))
	for i, s := range speeds {
		ms[i] = cluster.Machine{Name: fmt.Sprintf("node%02d", i), Speed: s}
	}
	base := cluster.Homogeneous(1, 1)
	return Cluster{c: cluster.Cluster{
		Machines:    ms,
		SendLatency: base.SendLatency,
		PerItem:     base.PerItem,
	}}
}

// MachineInfo describes one machine of a Cluster.
type MachineInfo struct {
	// Name is the machine's label (e.g. "fast03").
	Name string
	// Speed is the machine's relative compute speed (1.0 = reference).
	Speed float64
	// Loaded reports whether the machine carries a background load
	// trace; LoadPeriod is that trace's period in seconds.
	Loaded     bool
	LoadPeriod float64
}

// Machines lists the cluster's machines.
func (c Cluster) Machines() []MachineInfo {
	out := make([]MachineInfo, len(c.c.Machines))
	for i, m := range c.c.Machines {
		out[i] = MachineInfo{
			Name:       m.Name,
			Speed:      m.Speed,
			Loaded:     len(m.Load.Levels) > 0,
			LoadPeriod: m.Load.Period,
		}
	}
	return out
}
