package nettrans

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"net"
	"sync"
	"syscall"
	"time"

	"pts/internal/pvm"
	"pts/internal/rng"
)

// TaskFactory rebuilds a portable task body from its spec kind and
// decoded data — the worker-process counterpart of pvm.Options.Spawner,
// and the same type.
type TaskFactory = pvm.TaskFactory

// Handler is the program side of a worker process: nettrans moves the
// frames, the Handler supplies what the frames mean.
type Handler interface {
	// Start is called when the master opens a job, with the decoded
	// program payload. It validates that this process is prepared for
	// the job (e.g. that its locally constructed problem matches the
	// master's fingerprint) and returns the factory that builds the
	// bodies of tasks placed here. A non-nil error refuses the job and
	// aborts the master's run.
	Start(payload any) (TaskFactory, error)
	// Done is called when the job closed cleanly, with the master's
	// final summary (nil when the master finished without one).
	Done(summary any)
}

// WorkerConfig configures one worker daemon.
type WorkerConfig struct {
	// Addr is the master's TCP address.
	Addr string
	// Name identifies this worker in the master registry; it must be
	// unique across the cluster (default "<hostname>:<pid>" chosen by
	// the caller — nettrans refuses an empty name).
	Name string
	// Speed is the node's relative compute speed recorded in the
	// registry, the heterogeneity knob matching the in-process cluster
	// model's machine speed factors (default 1.0).
	Speed float64
	// Capacity is how many machine slots this node contributes — how
	// many of the run's round-robin task placements land here per cycle
	// (default 1).
	Capacity int
	// Jobs bounds how many jobs to serve before returning (0 = serve
	// until the context is cancelled).
	Jobs int
	// MaxBackoff caps the reconnect backoff (default 5s; dialing starts
	// at 100ms and doubles per failure, with ±50% jitter so a fleet of
	// daemons does not retry a restarted master in lockstep).
	MaxBackoff time.Duration
	// Drain, when non-nil, requests a graceful shutdown when it becomes
	// readable (typically a closed channel or a context's Done): the
	// worker deregisters from the master with an fLeave frame instead of
	// dropping the connection — an idle worker leaves the registry
	// quietly; one hosting tasks has them written off deliberately
	// through the master's exit-watch (pvm.TagExit) machinery — and
	// RunWorker returns nil without reconnecting.
	Drain <-chan struct{}
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

// ErrJoinRefused is wrapped by RunWorker errors when the master
// explicitly refused the registration (duplicate name, closed master) —
// retrying would refuse again, so the daemon stops instead of backing
// off.
var ErrJoinRefused = errors.New("nettrans: join refused")

// RunWorker runs a worker daemon: dial the master (reconnecting with
// exponential backoff while it is unreachable), register, then host
// this node's share of tasks for each job the master starts. It
// returns once cfg.Jobs jobs ended — nil when the last ended cleanly,
// its error when it aborted or was refused — or ctx.Err() once the
// context is cancelled, or the refusal error if the master rejects the
// registration.
func RunWorker(ctx context.Context, cfg WorkerConfig, h Handler) error {
	if cfg.Name == "" {
		return fmt.Errorf("nettrans: worker needs a name")
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	served := 0
	everJoined := false
	backoff := 100 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-cfg.Drain:
			// Drained while disconnected: there is nothing to deregister.
			cfg.Logf("nettrans: worker %q drained", cfg.Name)
			return nil
		default:
		}
		c, err := dialJoin(ctx, cfg)
		if err != nil {
			if errors.Is(err, ErrJoinRefused) || ctx.Err() != nil {
				return err
			}
			// A bounded worker that once reached its master and now finds
			// nobody listening is waiting for a job that cannot come (a
			// restarted master would be listening again); only unbounded
			// daemons keep waiting for the address to come back to life.
			if cfg.Jobs > 0 && everJoined && errors.Is(err, syscall.ECONNREFUSED) {
				return fmt.Errorf("nettrans: master %s is gone before the job ended: %w", cfg.Addr, err)
			}
			// Jittered backoff, uniform in [backoff/2, backoff*1.5): after
			// a master restart the whole fleet holds the same schedule, and
			// without jitter every daemon would hammer the new master in
			// lockstep.
			sleep := backoff/2 + time.Duration(randv2.Int64N(int64(backoff)))
			cfg.Logf("nettrans: worker %q: %v (retrying in %v)", cfg.Name, err, sleep)
			select {
			case <-time.After(sleep):
			case <-cfg.Drain:
				cfg.Logf("nettrans: worker %q drained", cfg.Name)
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
			if backoff *= 2; backoff > cfg.MaxBackoff {
				backoff = cfg.MaxBackoff
			}
			continue
		}
		backoff = 100 * time.Millisecond
		everJoined = true
		cfg.Logf("nettrans: worker %q joined %s", cfg.Name, cfg.Addr)
		// The session blocks in reads; honoring cancellation means
		// closing the connection out from under them. A drain request is
		// gentler: announce the departure with fLeave and let the master
		// retire this node and close the connection.
		stop := context.AfterFunc(ctx, func() { c.close() })
		stopDrain := make(chan struct{})
		if cfg.Drain != nil {
			go func() {
				select {
				case <-cfg.Drain:
					cfg.Logf("nettrans: worker %q draining, deregistering from %s", cfg.Name, cfg.Addr)
					c.write(&frame{Type: fLeave}) //nolint:errcheck // a broken conn retires us anyway
				case <-stopDrain:
				}
			}()
		}
		n, err := serveSession(ctx, cfg, c, h)
		stop()
		close(stopDrain)
		served += n
		select {
		case <-cfg.Drain:
			cfg.Logf("nettrans: worker %q drained after %d job(s)", cfg.Name, served)
			return nil
		default:
		}
		if cfg.Jobs > 0 && served >= cfg.Jobs {
			// The budget is met by ended jobs; err reports whether the
			// last one finished cleanly or aborted under us.
			return err
		}
		if err != nil && ctx.Err() == nil {
			cfg.Logf("nettrans: worker %q session ended: %v", cfg.Name, err)
		}
	}
}

// dialJoin connects and registers, distinguishing refusals (terminal)
// from unreachability (retried).
func dialJoin(ctx context.Context, cfg WorkerConfig) (*conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := newConn(nc)
	if err := c.write(&frame{Type: fJoin, Worker: cfg.Name, Speed: cfg.Speed, Capacity: cfg.Capacity}); err != nil {
		c.close()
		return nil, err
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	ack, err := c.read()
	if err != nil {
		c.close()
		return nil, err
	}
	nc.SetReadDeadline(time.Time{})
	if ack.Type != fJoinAck {
		c.close()
		return nil, fmt.Errorf("nettrans: unexpected %d frame instead of join ack", ack.Type)
	}
	if ack.Err != "" {
		c.close()
		return nil, fmt.Errorf("%w: %s", ErrJoinRefused, ack.Err)
	}
	return c, nil
}

// serveSession hosts jobs over one registered connection until it
// drops, returning how many jobs ended — cleanly or not. A job that
// aborted still counts as ended: it is over for good (the master never
// replays it), so bounded daemons and JoinWorker must not wait for a
// replacement that cannot come.
func serveSession(ctx context.Context, cfg WorkerConfig, c *conn, h Handler) (int, error) {
	defer c.close()
	ended := 0
	for {
		f, err := c.read()
		if err != nil {
			return ended, err
		}
		if f.Type != fJob {
			return ended, fmt.Errorf("nettrans: unexpected %d frame while idle", f.Type)
		}
		err = serveJob(ctx, cfg, c, h, f)
		ended++
		if cfg.Jobs > 0 && ended >= cfg.Jobs {
			return ended, err
		}
		if err != nil {
			return ended, err
		}
	}
}

// wjob is one job being hosted on this worker.
type wjob struct {
	c       *conn
	factory TaskFactory
	seed    uint64
	scale   float64
	speed   float64
	slots   int       // the run's slot-ring size (grows with fRing updates); under mu
	speeds  []float64 // slot-indexed declared speeds; under mu
	start   time.Time
	ctx     context.Context

	mu        sync.Mutex
	local     map[pvm.TaskID]*wTask
	live      int
	sends     int64
	seq       uint64
	spawnAcks map[uint64]chan pvm.TaskID
	aborted   bool
	cancelled bool
	idle      *sync.Cond // signalled when live drops to 0
}

// serveJob hosts one job until it ends: nil means the master's final
// result was delivered; any error means the job died under us (abort,
// refusal, or a broken connection).
func serveJob(ctx context.Context, cfg WorkerConfig, c *conn, h Handler, f *frame) error {
	payload, err := decodePayload(f.Payload)
	if err != nil {
		c.write(&frame{Type: fJobErr, Err: err.Error()})
		return err
	}
	factory, err := h.Start(payload)
	if err != nil {
		c.write(&frame{Type: fJobErr, Err: err.Error()})
		return fmt.Errorf("nettrans: job refused: %w", err)
	}
	j := &wjob{
		c: c, factory: factory,
		seed: f.Seed, scale: f.WorkScale, speed: cfg.Speed,
		slots: f.TotalSlots, speeds: f.Speeds,
		start: time.Now(), ctx: ctx,
		local:     make(map[pvm.TaskID]*wTask),
		spawnAcks: make(map[uint64]chan pvm.TaskID),
	}
	j.idle = sync.NewCond(&j.mu)

	for {
		f, err := c.read()
		if err != nil {
			j.abort()
			j.waitIdle()
			return err
		}
		switch f.Type {
		case fSpawn:
			if err := j.host(f); err != nil {
				j.abort()
				j.waitIdle()
				c.write(&frame{Type: fJobErr, Err: err.Error()})
				return err
			}
		case fSpawnAck:
			j.mu.Lock()
			if ch, ok := j.spawnAcks[f.Seq]; ok {
				delete(j.spawnAcks, f.Seq)
				ch <- f.Task
			}
			j.mu.Unlock()
		case fMsg:
			if err := j.deliver(f); err != nil {
				j.abort()
				j.waitIdle()
				c.write(&frame{Type: fJobErr, Err: err.Error()})
				return err
			}
		case fRing:
			// Elastic ring growth: adopt the master's new slot table so
			// machine-index wrapping and speed lookups stay consistent
			// with where the master actually places tasks.
			j.mu.Lock()
			if f.TotalSlots > j.slots {
				j.slots = f.TotalSlots
				j.speeds = f.Speeds
			}
			j.mu.Unlock()
		case fCancel:
			j.mu.Lock()
			j.cancelled = true
			j.mu.Unlock()
		case fAbort:
			j.abort()
			j.waitIdle()
			// Best-effort counter report so the master's interrupted
			// result still accounts for this node's sends.
			j.mu.Lock()
			sends := j.sends
			j.mu.Unlock()
			c.write(&frame{Type: fBye, Sends: sends})
			return fmt.Errorf("nettrans: job aborted by master")
		case fEndJob:
			j.waitIdle()
			j.mu.Lock()
			sends := j.sends
			j.mu.Unlock()
			if err := c.write(&frame{Type: fBye, Sends: sends}); err != nil {
				return err
			}
		case fResult:
			summary, err := decodePayload(f.Payload)
			if err != nil {
				return err
			}
			h.Done(summary)
			return nil
		default:
			j.abort()
			j.waitIdle()
			return fmt.Errorf("nettrans: unexpected frame type %d mid-job", f.Type)
		}
	}
}

// host starts one task assigned to this node.
func (j *wjob) host(f *frame) error {
	data, err := decodePayload(f.Payload)
	if err != nil {
		return err
	}
	fn, err := j.factory(f.Kind, data)
	if err != nil {
		return fmt.Errorf("nettrans: build task %q (kind %q): %w", f.Name, f.Kind, err)
	}
	t := &wTask{j: j, id: f.Task, name: f.Name, machine: f.Machine, fn: fn,
		r: rng.NewChild(j.seed, "pvm.task", f.Name)}
	t.box.init()
	j.mu.Lock()
	j.local[f.Task] = t
	j.live++
	j.mu.Unlock()
	go t.run()
	return nil
}

// deliver routes an incoming message to its local task.
func (j *wjob) deliver(f *frame) error {
	j.mu.Lock()
	t := j.local[f.To]
	j.mu.Unlock()
	if t == nil {
		return fmt.Errorf("nettrans: message for task %d not hosted here", f.To)
	}
	data, err := decodePayload(f.Payload)
	if err != nil {
		return err
	}
	t.box.deliver(pvm.Message{From: f.From, Tag: f.Tag, Data: data})
	return nil
}

// abort unwinds every hosted task that is still blocked.
func (j *wjob) abort() {
	j.mu.Lock()
	if j.aborted {
		j.mu.Unlock()
		return
	}
	j.aborted = true
	var wake []*wTask
	for _, t := range j.local {
		wake = append(wake, t)
	}
	acks := j.spawnAcks
	j.spawnAcks = make(map[uint64]chan pvm.TaskID)
	j.mu.Unlock()
	for _, ch := range acks {
		close(ch)
	}
	for _, t := range wake {
		t.box.wake()
	}
}

// waitIdle blocks until every hosted task has finished (they unwind
// promptly after abort, or drain normally otherwise).
func (j *wjob) waitIdle() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.live > 0 {
		j.idle.Wait()
	}
}

func (j *wjob) isAborted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.aborted
}

func (j *wjob) isCancelled() bool {
	if j.ctx != nil && j.ctx.Err() != nil {
		return true
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled || j.aborted
}

// wTask is a task hosted on this worker.
type wTask struct {
	j       *wjob
	id      pvm.TaskID
	name    string
	machine int
	fn      pvm.TaskFunc
	r       *rand.Rand
	box     mailbox
}

var _ pvm.Env = (*wTask)(nil)

func (t *wTask) run() {
	pvm.RunTask(t, t.fn)
	j := t.j
	j.mu.Lock()
	j.live--
	aborted := j.aborted
	if j.live == 0 {
		j.idle.Broadcast()
	}
	j.mu.Unlock()
	if !aborted {
		j.c.write(&frame{Type: fTaskDone, Task: t.id})
	}
}

func (t *wTask) Self() pvm.TaskID  { return t.id }
func (t *wTask) Name() string      { return t.name }
func (t *wTask) MachineIndex() int { return t.machine }
func (t *wTask) Rand() *rand.Rand  { return t.r }
func (t *wTask) Now() float64      { return time.Since(t.j.start).Seconds() }
func (t *wTask) Cancelled() bool   { return t.j.isCancelled() }

// MachineSpeed implements pvm.SpeedReporter from the job's slot-speed
// table (kept in sync with elastic ring growth via fRing frames);
// anything outside the table reports the 1.0 reference.
func (t *wTask) MachineSpeed(machine int) float64 {
	t.j.mu.Lock()
	slots, speeds := t.j.slots, t.j.speeds
	t.j.mu.Unlock()
	if slots <= 0 {
		return 1.0
	}
	slot := ((machine % slots) + slots) % slots
	if slot < len(speeds) && speeds[slot] > 0 {
		return speeds[slot]
	}
	return 1.0
}

// NotifyExit implements pvm.ExitNotifier: the watch is registered in
// the master's registry, which owns liveness.
func (t *wTask) NotifyExit(id pvm.TaskID) {
	if err := t.j.c.write(&frame{Type: fNotify, Task: id, From: t.id}); err != nil {
		pvm.AbortTask() // connection gone: the session is tearing down
	}
}

func (t *wTask) Spawn(name string, machine int, fn pvm.TaskFunc) pvm.TaskID {
	panic(fmt.Sprintf("nettrans: task %q used Spawn on a worker node; distributed programs must use SpawnSpec", t.name))
}

// SpawnSpec asks the master to allocate and place the task, blocking on
// the round-trip (spawns happen during protocol setup, never in the hot
// loop).
func (t *wTask) SpawnSpec(name string, machine int, spec pvm.Spec) pvm.TaskID {
	if spec.Kind == "" {
		panic(fmt.Sprintf("nettrans: task %q spawned a non-portable task %q from a worker node", t.name, name))
	}
	payload, err := encodePayload(spec.Data)
	if err != nil {
		panic(fmt.Sprintf("nettrans: spawn %q: %v", name, err))
	}
	j := t.j
	ch := make(chan pvm.TaskID, 1)
	j.mu.Lock()
	if j.aborted {
		j.mu.Unlock()
		pvm.AbortTask()
	}
	j.seq++
	seq := j.seq
	j.spawnAcks[seq] = ch
	j.mu.Unlock()
	err = j.c.write(&frame{
		Type: fSpawnReq, Seq: seq, Name: t.name + "/" + name,
		Machine: machine, Kind: spec.Kind, Payload: payload,
	})
	if err != nil {
		pvm.AbortTask() // connection gone: the session is tearing down
	}
	id, ok := <-ch
	if !ok {
		pvm.AbortTask()
	}
	return id
}

func (t *wTask) Send(to pvm.TaskID, tag pvm.Tag, data any) {
	j := t.j
	j.mu.Lock()
	j.sends++
	dst := j.local[to]
	j.mu.Unlock()
	if dst != nil {
		dst.box.deliver(pvm.Message{From: t.id, Tag: tag, Data: data})
		return
	}
	payload, err := encodePayload(data)
	if err != nil {
		panic(fmt.Sprintf("nettrans: send tag %d to task %d: %v", tag, to, err))
	}
	if err := j.c.write(&frame{Type: fMsg, From: t.id, To: to, Tag: tag, Payload: payload}); err != nil {
		pvm.AbortTask()
	}
}

func (t *wTask) Recv(tags ...pvm.Tag) pvm.Message {
	return t.box.recv(t.j.isAborted, tags)
}

func (t *wTask) TryRecv(tags ...pvm.Tag) (pvm.Message, bool) {
	return t.box.tryRecv(tags)
}

// Work emulates the node's speed exactly like the in-process transport:
// sleep seconds*scale/speed.
func (t *wTask) Work(seconds float64) {
	if seconds <= 0 || t.j.scale <= 0 {
		return
	}
	time.Sleep(time.Duration(seconds * t.j.scale / t.j.speed * float64(time.Second)))
}
