package pvm

import "testing"

func TestCountersVirtual(t *testing.T) {
	var c Counters
	_, err := RunVirtual(Options{Seed: 31, Counters: &c}, func(env Env) {
		child := env.Spawn("c", 0, func(e Env) {
			e.Recv(tagPing)
			e.Send(0, tagPong, nil)
		})
		env.Send(child, tagPing, nil)
		env.Recv(tagPong)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Spawns != 2 {
		t.Errorf("Spawns = %d, want 2", c.Spawns)
	}
	if c.Sends != 2 {
		t.Errorf("Sends = %d, want 2", c.Sends)
	}
	if c.Events == 0 {
		t.Error("Events not counted")
	}
}

func TestCountersReal(t *testing.T) {
	var c Counters
	_, err := RunReal(Options{Seed: 32, Counters: &c}, func(env Env) {
		for i := 0; i < 3; i++ {
			child := env.Spawn("c", 0, func(e Env) {
				e.Send(0, tagPong, nil)
			})
			_ = child
		}
		for i := 0; i < 3; i++ {
			env.Recv(tagPong)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Spawns != 4 { // root + 3 children
		t.Errorf("Spawns = %d, want 4", c.Spawns)
	}
	if c.Sends != 3 {
		t.Errorf("Sends = %d, want 3", c.Sends)
	}
}

func TestCountersOptional(t *testing.T) {
	// No counters attached: must not crash.
	if _, err := RunVirtual(Options{Seed: 33}, func(env Env) {}); err != nil {
		t.Fatal(err)
	}
}
