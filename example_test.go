package pts_test

import (
	"context"
	"fmt"
	"log"
	"math"

	"pts"
)

// The basic flow: pick a Problem, call Solve, read the Result.
// Virtual time (the default) makes the run deterministic in the seed,
// so this example's output is stable.
func ExampleSolve() {
	p, err := pts.PlacementBenchmark("highway")
	if err != nil {
		log.Fatal(err)
	}
	res, err := pts.Solve(context.Background(), p,
		pts.WithWorkers(2, 1),     // 2 TSWs x 1 CLW
		pts.WithIterations(4, 20), // 4 global rounds x 20 local iterations
		pts.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %s\n", res.Problem)
	fmt.Printf("rounds: %d\n", res.Rounds)
	fmt.Printf("improved over initial: %v\n", res.BestCost < res.InitialCost)
	fmt.Printf("interrupted: %v\n", res.Interrupted)
	// Output:
	// problem: highway
	// rounds: 4
	// improved over initial: true
	// interrupted: false
}

// Any type implementing Problem runs through the same engine. The
// built-in QAP workload shows the problem-agnostic path, including the
// per-problem Details: an exact from-scratch recheck of the best cost.
func ExampleSolve_qap() {
	q := pts.RandomQAP(16, 3) // 16 facilities, deterministic in the seed
	res, err := pts.Solve(context.Background(), q,
		pts.WithWorkers(2, 1),
		pts.WithIterations(3, 15),
		pts.WithTabu(8, 10, 3),
		pts.WithSeed(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	d := res.Details.(pts.QAPDetails)
	fmt.Printf("problem: %s\n", res.Problem)
	// Details.Cost is the exact from-scratch recheck; the incremental
	// cost the search tracked agrees to floating-point noise.
	fmt.Printf("exact recheck matches: %v\n", math.Abs(d.Cost-res.BestCost) < 1e-6*d.Cost)
	fmt.Printf("improvement > 10%%: %v\n", res.Improvement() > 0.10)
	// Output:
	// problem: qap16
	// exact recheck matches: true
	// improvement > 10%: true
}

// WithProgress streams one Snapshot per completed global iteration
// while the run is in flight — the hook for live dashboards, early
// stopping (cancel the context from the callback), or logging.
func ExampleWithProgress() {
	p, err := pts.PlacementBenchmark("highway")
	if err != nil {
		log.Fatal(err)
	}
	rounds := 0
	monotone := true
	last := 0.0
	_, err = pts.Solve(context.Background(), p,
		pts.WithWorkers(2, 1),
		pts.WithIterations(5, 15),
		pts.WithSeed(1),
		pts.WithProgress(func(s pts.Snapshot) {
			if rounds > 0 && s.BestCost > last {
				monotone = false
			}
			rounds, last = s.Round, s.BestCost
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots: %d\n", rounds)
	fmt.Printf("best cost is monotone: %v\n", monotone)
	// Output:
	// snapshots: 5
	// best cost is monotone: true
}

// ExampleListenMaster runs a genuinely distributed solve on loopback
// TCP: this process is the master, a second "process" (a goroutine
// here; normally another machine) joins as a worker and hosts its
// share of the search. With half-sync off, the fixed-seed distributed
// result is identical to the single-process one, so the output is
// stable even though the run crosses real sockets.
func ExampleListenMaster() {
	newProblem := func() pts.Problem { return pts.RandomQAP(20, 9) }

	master, err := pts.ListenMaster("127.0.0.1:0", 1) // any free port, wait for 1 worker
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()

	// The worker side: same problem inputs, one job. In production this
	// is `pts -worker <addr>` or pts.Worker on another machine.
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- pts.Worker(context.Background(), newProblem(), master.Addr(),
			pts.NodeOptions{Name: "node0", Speed: 1}, 1, nil)
	}()

	res, err := pts.Solve(context.Background(), newProblem(),
		pts.WithWorkers(2, 1),
		pts.WithIterations(3, 10),
		pts.WithSeed(7),
		pts.WithHalfSync(false),
		pts.WithTransport(master.Transport()),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-workerDone; err != nil {
		log.Fatal(err)
	}

	single, err := pts.Solve(context.Background(), newProblem(),
		pts.WithWorkers(2, 1),
		pts.WithIterations(3, 10),
		pts.WithSeed(7),
		pts.WithHalfSync(false),
		pts.WithRealTime(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run completed %d rounds\n", res.Rounds)
	fmt.Printf("matches single-process result: %v\n", res.BestCost == single.BestCost)
	// Output:
	// distributed run completed 3 rounds
	// matches single-process result: true
}
