package core

import (
	"fmt"
	"math/rand"

	"pts/internal/pvm"
	"pts/internal/sched"
	"pts/internal/tabu"
)

// tswRun is the tabu search worker body (paper Fig. 3). Per global
// iteration it diversifies with respect to its own element range, runs
// LocalIters tabu iterations driven by its CLWs, reports its best
// (solution + tabu list) to the master, and adopts the broadcast global
// best. Rounds are driven by the master's verdicts: a TagGlobal starts
// the next round, a TagStop ends the run — so the master alone decides
// when a cancelled run winds down.
//
// In adaptive mode (Config.Adaptive) the TSW additionally owns a
// scheduler over its CLWs: their element ranges are seeded from the
// declared machine speeds, re-partitioned at every resync barrier to
// track observed throughput, and a CLW whose hosting process dies
// (pvm.TagExit) is written off with its range folded back into the
// survivors instead of stalling the protocol.
func tswRun(env pvm.Env, problem Problem, cfg Config, master pvm.TaskID) {
	init := env.Recv(TagInit).Data.(initMsg)
	prob := mustState(env, problem, init.Perm)
	tune := cfg.tuningFor(init.WorkerIdx)

	list := tabu.NewList()
	freq := tabu.NewFrequency(prob.Size())
	tswRand := workerRand(env, cfg, "tsw")
	var iter int64
	var stats WorkerStats

	best := prob.Cost()
	bestPerm := prob.Snapshot() // reused buffer; copied on report
	staWork := workSTA(cfg, prob.Size())
	var pending []improvement // incumbent improvements since the last report

	// The diversification range: fixed at spawn in static mode, updated
	// by master-level rebalances (globalMsg) in adaptive mode.
	divLo, divHi := init.RangeLo, init.RangeHi

	// Spawn this worker's CLWs once; they live for the whole run and
	// sit on the machines the assignment policy dictates.
	cs := newCLWSet(env, problem, cfg, tune, init, prob.Size())

	noteBest := func() {
		if c := prob.Cost(); c < best {
			best = c
			bestPerm = snapshotInto(prob, bestPerm)
			pending = append(pending, improvement{Time: env.Now(), Cost: c})
		}
	}

	// syncCLWs broadcasts the chosen move of this iteration.
	syncCLWs := func(chosen tabu.CompoundMove) {
		for j, id := range cs.ids {
			if cs.live[j] {
				env.Send(id, TagSync, syncMsg{Chosen: chosen})
			}
		}
	}

	// resyncState pushes the full current solution to every CLW.
	resyncState := func() {
		perm := prob.Snapshot()
		for j, id := range cs.ids {
			if cs.live[j] {
				env.Send(id, TagNewState, stateMsg{Perm: perm})
			}
		}
	}

	// Hot-loop scratch, reused across every local iteration so the
	// selection path allocates only when a move is actually accepted.
	collector := newCandCollector(cs)
	var moves []tabu.CompoundMove

	acceptedSinceRefresh := 0
	firstRound := true
	for {
		forcedByMaster := false
		// Cooperative cancellation: skip the round's search work and
		// report immediately; the master will answer with TagStop once it
		// has observed the cancellation itself. A TSW whose CLWs all died
		// likewise degrades to reporting its standing best.
		if !env.Cancelled() && cs.alive > 0 {
			// Diversification w.r.t. this worker's own element range (Kelly
			// et al. [10]): forced swaps of the least-moved elements of the
			// range.
			if tune.DiversifyDepth > 0 {
				diversify(prob, env, tswRand, freq, list, iter, cfg, tune, divLo, divHi)
				stats.Diversifications++
				refresh(prob)
				env.Work(staWork)
				noteBest()
			}
			// Adaptive re-partition at the resync barrier: ranges only ever
			// change here, immediately before the full state push, so no
			// candidate built against an old range is in flight.
			if !firstRound && cs.rebalance(env) {
				stats.Rebalances++
			}
			resyncState()

			for l := 0; l < cfg.LocalIters; l++ {
				// Heterogeneity: the master may force us to report early;
				// a cancelled context forces everyone at once.
				if _, ok := env.TryRecv(TagReportNow); ok {
					forcedByMaster = true
					stats.ForcedReports++
					break
				}
				if env.Cancelled() {
					break
				}
				stats.LocalIters++
				iter++

				// Fan the candidate construction out to the CLWs.
				for j, id := range cs.ids {
					if cs.live[j] {
						env.Send(id, TagSearch, nil)
					}
				}
				cands := collector.collect(env, cfg.HalfSync, &stats)
				if len(cands) == 0 {
					break // every CLW died mid-iteration
				}
				env.Work(float64(len(cands)) * cfg.WorkPerTrial) // selection cost

				moves = moves[:0]
				for _, c := range cands {
					moves = append(moves, c.Move)
				}
				verdict := tabu.SelectAdmissible(moves, prob.Cost(), best, list, iter)
				var chosen tabu.CompoundMove
				if verdict.Index >= 0 {
					chosen = moves[verdict.Index]
					chosen.Apply(prob)
					env.Work(float64(len(chosen.Swaps)) * cfg.WorkPerTrial)
					for _, s := range chosen.Swaps {
						list.Add(s.Attribute(), iter+int64(tune.Tenure))
					}
					freq.BumpMove(&chosen)
					stats.MovesAccepted++
					acceptedSinceRefresh++
					noteBest()
				}
				stats.TabuRejected += int64(verdict.TabuRejected)
				if verdict.Aspired {
					stats.Aspirations++
				}
				if verdict.Fallback {
					stats.Fallbacks++
				}
				syncCLWs(chosen)

				if cfg.RefreshEvery > 0 && acceptedSinceRefresh >= cfg.RefreshEvery {
					acceptedSinceRefresh = 0
					refresh(prob)
					env.Work(staWork)
					noteBest()
				}
			}
		}
		firstRound = false

		// Report the best to the master (solution + tabu list, §4.1). The
		// permutation is copied because bestPerm is a reused buffer the
		// next round keeps writing into.
		env.Send(master, TagBest, bestMsg{
			Cost:   best,
			Perm:   append([]int32(nil), bestPerm...),
			Tabu:   list.Export(iter),
			Points: pending,
			Forced: forcedByMaster,
			Stats:  stats,
		})
		pending = nil

		// Wait for the verdict; ignore stale force requests.
		for {
			m := env.Recv(TagGlobal, TagStop, TagReportNow, pvm.TagExit)
			if m.Tag == TagReportNow {
				continue
			}
			if m.Tag == pvm.TagExit {
				cs.onExit(m.From, &stats)
				continue
			}
			if m.Tag == TagStop {
				cs.shutdown(env, &stats)
				env.Send(master, TagStats, stats)
				return
			}
			gm := m.Data.(globalMsg)
			if err := prob.Restore(gm.Perm); err != nil {
				panic(fmt.Sprintf("core: tsw %s: %v", env.Name(), err))
			}
			if gm.Rebalance {
				divLo, divHi = gm.RangeLo, gm.RangeHi
			}
			env.Work(staWork)
			// Adopt the winner's tabu list with the solution.
			list.Reset()
			list.Import(gm.Tabu, iter)
			noteBest()
			break
		}
	}
}

// clwSet is a TSW's view of its candidate-list workers: identity,
// liveness, current element ranges and per-step trial budgets, plus
// (in adaptive mode) the throughput tracker that re-partitions them.
type clwSet struct {
	cfg   Config
	tune  Tuning
	n     int32
	ids   []pvm.TaskID
	byID  map[pvm.TaskID]int
	rng   [][2]int32
	live  []bool
	alive int
	track *sched.Tracker // nil in static mode
}

// newCLWSet spawns the TSW's CLWs and initializes them. Element ranges
// are the static equal split by default, or speed-proportional shares
// (seeded from the declared machine speeds) in adaptive mode. CLWs
// whose range is empty — more workers than elements — are not spawned
// at all.
func newCLWSet(env pvm.Env, problem Problem, cfg Config, tune Tuning, init initMsg, n int32) *clwSet {
	cs := &clwSet{
		cfg:  cfg,
		tune: tune,
		n:    n,
		ids:  make([]pvm.TaskID, cfg.CLWs),
		byID: make(map[pvm.TaskID]int, cfg.CLWs),
		live: make([]bool, cfg.CLWs),
	}
	cs.rng = ranges(n, cfg.CLWs)
	if cfg.Adaptive {
		cs.track = seededTracker(env, n, cfg.CLWs, func(j int) int {
			return cfg.clwMachine(init.WorkerIdx, j)
		})
		cs.rng = cs.track.Partition()
	}

	for j := 0; j < cfg.CLWs; j++ {
		if cs.rng[j][1] <= cs.rng[j][0] {
			continue // empty range: nothing for this worker to search
		}
		cs.live[j] = true
		cs.alive++
		cs.ids[j] = env.SpawnSpec(fmt.Sprintf("clw%d", j), cfg.clwMachine(init.WorkerIdx, j), pvm.Spec{
			Kind: taskKindCLW,
			Data: clwSpec{Parent: env.Self(), Tune: tune},
			Fn: func(e pvm.Env) {
				clwRun(e, problem, cfg, tune, env.Self())
			},
		})
		cs.byID[cs.ids[j]] = j
	}
	for j, id := range cs.ids {
		if !cs.live[j] {
			continue
		}
		// Adaptive loss tolerance: watch each CLW so a lost hosting
		// process degrades the search instead of aborting the run. In
		// static mode no watch is registered and a loss aborts, the
		// pre-adaptive behavior.
		if cfg.Adaptive {
			pvm.NotifyExit(env, id)
		}
		env.Send(id, TagInit, initMsg{
			Perm:      init.Perm,
			RangeLo:   cs.rng[j][0],
			RangeHi:   cs.rng[j][1],
			WorkerIdx: j,
			Trials:    cs.trialsFor(j),
		})
	}
	return cs
}

// seededTracker builds the adaptive throughput tracker shared by both
// scheduler halves (the master over its TSWs, each TSW over its CLWs):
// k workers over [0, n), weights seeded from the declared speed of the
// machine each worker is placed on, and workers beyond the element
// count dead from the start — matching the empty-range spawn guard.
func seededTracker(env pvm.Env, n int32, k int, machineOf func(int) int) *sched.Tracker {
	seeds := make([]float64, k)
	for i := range seeds {
		seeds[i] = pvm.MachineSpeedOf(env, machineOf(i))
	}
	t := sched.NewTracker(n, seeds)
	for i := int(n); i < k; i++ {
		t.Kill(i)
	}
	return t
}

// trialsFor returns CLW j's per-step trial budget: the tuned constant
// in static mode, or a budget proportional to its range share in
// adaptive mode (total budget conserved at Trials×CLWs per step, every
// live worker guaranteed at least one trial). Integer arithmetic keeps
// the result bit-deterministic.
func (cs *clwSet) trialsFor(j int) int {
	if cs.track == nil {
		return 0 // initMsg semantics: keep the tuned default
	}
	lo, hi := cs.rng[j][0], cs.rng[j][1]
	if hi <= lo || cs.n <= 0 {
		return 1
	}
	t := int((int64(cs.tune.Trials)*int64(cs.cfg.CLWs)*int64(hi-lo) + int64(cs.n)/2) / int64(cs.n))
	if t < 1 {
		t = 1
	}
	return t
}

// rebalance re-partitions the live CLWs' ranges by observed throughput
// and ships the updates; it reports whether a new partition was
// adopted. Static mode never rebalances.
func (cs *clwSet) rebalance(env pvm.Env) bool {
	if cs.track == nil || cs.alive == 0 {
		return false
	}
	next, changed := cs.track.Rebalance(cs.rng, 0)
	if !changed {
		return false
	}
	cs.rng = next
	for j, id := range cs.ids {
		if !cs.live[j] {
			continue
		}
		env.Send(id, TagRebalance, rebalanceMsg{
			RangeLo: next[j][0],
			RangeHi: next[j][1],
			Trials:  cs.trialsFor(j),
		})
	}
	return true
}

// observe feeds one CLW report into the throughput tracker.
func (cs *clwSet) observe(from pvm.TaskID, c candMsg) {
	if cs.track == nil {
		return
	}
	if j, ok := cs.byID[from]; ok {
		cs.track.Observe(j, float64(c.CumTrials), c.At)
	}
}

// onExit writes off a CLW whose hosting process died: it stops being
// scheduled, its range folds into the survivors at the next resync
// barrier, and the loss is counted.
func (cs *clwSet) onExit(from pvm.TaskID, stats *WorkerStats) {
	j, ok := cs.byID[from]
	if !ok || !cs.live[j] {
		return
	}
	cs.live[j] = false
	cs.alive--
	stats.WorkersLost++
	if cs.track != nil {
		cs.track.Kill(j)
	}
}

// shutdown stops every surviving CLW and folds its stats into the
// TSW's; CLWs dying during the handshake are written off like any
// other loss.
func (cs *clwSet) shutdown(env pvm.Env, stats *WorkerStats) {
	for j, id := range cs.ids {
		if cs.live[j] {
			env.Send(id, TagStop, nil)
		}
	}
	expected := cs.alive
	for expected > 0 {
		m := env.Recv(TagStats, pvm.TagExit)
		if m.Tag == pvm.TagExit {
			was := cs.alive
			cs.onExit(m.From, stats)
			expected -= was - cs.alive
			continue
		}
		// Retire the sender on receipt: its hosting process dying *after*
		// the stats handshake must not decrement expectations a second
		// time (the late TagExit then finds the worker already retired).
		if j, ok := cs.byID[m.From]; ok && cs.live[j] {
			cs.live[j] = false
			cs.alive--
		}
		stats.add(m.Data.(WorkerStats))
		expected--
	}
}

// candCollector gathers one candidate per live CLW each local
// iteration. Its buffers (the output slice and the reported set) are
// allocated once per TSW and reused for every iteration of the run.
type candCollector struct {
	cs       *clwSet
	out      []candMsg
	reported map[pvm.TaskID]bool
}

func newCandCollector(cs *clwSet) *candCollector {
	return &candCollector{
		cs:       cs,
		out:      make([]candMsg, 0, len(cs.ids)),
		reported: make(map[pvm.TaskID]bool, len(cs.ids)),
	}
}

// collect returns one candidate per live CLW; the returned slice is
// valid until the next collect. In half-sync mode it waits for half of
// them, forces the rest with TagReportNow, then waits for the
// remainder (they arrive promptly, truncated). A CLW dying mid-collect
// is written off and no longer awaited.
func (cc *candCollector) collect(env pvm.Env, halfSync bool, stats *WorkerStats) []candMsg {
	cs := cc.cs
	expected := cs.alive
	cc.out = cc.out[:0]
	for id := range cc.reported {
		delete(cc.reported, id)
	}
	take := func() {
		m := env.Recv(TagCandidate, pvm.TagExit)
		if m.Tag == pvm.TagExit {
			if j, ok := cs.byID[m.From]; ok && cs.live[j] && !cc.reported[m.From] {
				expected--
			}
			cs.onExit(m.From, stats)
			return
		}
		cc.reported[m.From] = true
		c := m.Data.(candMsg)
		cs.observe(m.From, c)
		cc.out = append(cc.out, c)
	}
	if halfSync && expected > 1 {
		half := (expected + 1) / 2
		for len(cc.out) < half && len(cc.out) < expected {
			take()
		}
		for j, id := range cs.ids {
			if cs.live[j] && !cc.reported[id] {
				env.Send(id, TagReportNow, nil)
			}
		}
	}
	for len(cc.out) < expected {
		take()
	}
	return cc.out
}

// diversify performs the Kelly-style diversification "within the TSW
// range" (paper §4.1): each of DiversifyDepth forced swaps moves the
// least-frequently moved element of [lo, hi) — the long-term-memory
// forcing of Kelly et al. [10] — to the best of Trials candidate
// partners from the same range. The move is applied regardless of sign,
// so each TSW drifts into its own region of the solution space, but the
// greedy partner choice bounds the damage to the incumbent. The applied
// attributes become tabu so the jump is not immediately undone.
func diversify(prob tabu.Problem, env pvm.Env, r *rand.Rand, freq *tabu.Frequency, list *tabu.List,
	iter int64, cfg Config, tune Tuning, lo, hi int32) {
	size := prob.Size()
	if hi <= lo+1 || size < 2 {
		return
	}
	for i := 0; i < tune.DiversifyDepth; i++ {
		a := freq.LeastMoved(r, lo, hi)
		bestB, bestDelta := int32(-1), 0.0
		for t := 0; t < tune.Trials; t++ {
			b := lo + int32(r.Intn(int(hi-lo)))
			if b == a {
				continue
			}
			d := prob.DeltaSwap(a, b)
			if bestB < 0 || d < bestDelta {
				bestB, bestDelta = b, d
			}
		}
		env.Work(float64(tune.Trials) * cfg.WorkPerTrial)
		if bestB < 0 {
			continue
		}
		prob.ApplySwap(a, bestB)
		freq.BumpSwap(a, bestB)
		list.Add(tabu.Attr(a, bestB), iter+int64(tune.Tenure))
	}
}
