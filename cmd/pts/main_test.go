package main

import (
	"os"
	"path/filepath"
	"testing"

	"pts/internal/netlist"
)

func TestLoadCircuitBenchmarkName(t *testing.T) {
	nl, err := loadCircuit("", "highway")
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 56 {
		t.Errorf("cells = %d", nl.NumCells())
	}
	if _, err := loadCircuit("", "nonexistent"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestLoadCircuitTextFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.net")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	src := netlist.MustGenerate(netlist.GenConfig{Name: "file", Cells: 40, Seed: 1})
	if err := netlist.Write(f, src); err != nil {
		t.Fatal(err)
	}
	f.Close()

	nl, err := loadCircuit(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 40 || nl.Name != "file" {
		t.Errorf("loaded %s with %d cells", nl.Name, nl.NumCells())
	}
}

func TestLoadCircuitBenchFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.bench")
	src := `INPUT(A)
INPUT(B)
OUTPUT(Z)
Z = NAND(A, B)
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	nl, err := loadCircuit(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "tiny" {
		t.Errorf("name = %q, want base of file", nl.Name)
	}
	if nl.NumCells() != 3 {
		t.Errorf("cells = %d, want 3", nl.NumCells())
	}
}

func TestLoadCircuitMissingFile(t *testing.T) {
	if _, err := loadCircuit("/nonexistent/x.net", ""); err == nil {
		t.Error("missing file accepted")
	}
}
