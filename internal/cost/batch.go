package cost

import (
	"math"

	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/tabu"
)

// Batched trial evaluation: the evaluator-level half of the
// data-parallel hot path. The placement kernel produces the three raw
// objective deltas for the whole batch in one fused pass
// (placement.SwapObjectivesBatch), and the fold below turns them into
// fuzzy cost deltas with the membership and OWA arithmetic inlined.
//
// Two folds exist, mirroring the placement kernels:
//
//   - Strict (the default): written term for term like
//     fuzzy.Membership.Eval and OWA.Combine — the same piecewise-linear
//     divisions, the same expression tree — so every out[i] is
//     bit-for-bit the value SwapDelta would return.
//   - Relaxed (SetRelaxedAccumulation(true)): the three membership
//     divisions become multiplications by reciprocals hoisted once per
//     batch, and the OWA's sum/3 folds into a precomputed (1-β)/3
//     factor — legal only because relaxed mode gives up final-ulp
//     identity with the scalar path (x/y and x·(1/y) can differ by one
//     ulp). Like the relaxed placement kernel, the result is still a
//     deterministic, reproducible function of the inputs.
//
// Relaxed mode may additionally shard a batch across the evaluation
// pool (SetEvalWorkers): every candidate is a trial against the same
// frozen placement, so candidates are evaluated independently by
// construction and shards over disjoint index ranges write disjoint
// output ranges. Strict mode never uses the pool — it keeps the
// single-threaded serial path bit-identical.

// batchScratch holds one evaluator's reusable batch buffers; sized to
// the largest batch seen, so steady-state evaluation allocates nothing.
type batchScratch struct {
	cands []placement.SwapCand
	dLen  []float64
	dW    []float64
	area  []float64
}

// grow ensures capacity for n candidates.
func (sc *batchScratch) grow(n int) {
	if cap(sc.cands) < n {
		sc.cands = make([]placement.SwapCand, 0, n)
		sc.dLen = make([]float64, n)
		sc.dW = make([]float64, n)
		sc.area = make([]float64, n)
	}
}

// DeltaSwapBatch writes, for every candidate i, the cost change
// SwapDelta(cands[i].A, cands[i].B) would return — in one data-parallel
// pass instead of len(cands) scalar calls, bit-exactly so in strict
// mode. It implements the tabu engine's batch boundary
// (tabu.BatchEvaluator, via Problem); out must have at least
// len(cands) elements.
func (e *Evaluator) DeltaSwapBatch(cands []tabu.SwapCand, out []float64) {
	n := len(cands)
	if n == 0 {
		return
	}
	sc := &e.batch
	sc.grow(n)
	pc := sc.cands[:0]
	for _, c := range cands {
		pc = append(pc, placement.SwapCand{A: netlist.CellID(c.A), B: netlist.CellID(c.B)})
	}
	dLen, dW, area := sc.dLen[:n], sc.dW[:n], sc.area[:n]

	if e.relaxed {
		if e.pool != nil && n >= poolMinBatch {
			e.pool.run(cands, pc, e.t.Criticalities(), dLen, dW, area, out)
			return
		}
		e.p.SwapObjectivesBatch(pc, e.t.Criticalities(), dLen, dW, area)
		e.foldRelaxed(cands, dLen, dW, area, out, 0, n)
		return
	}
	e.p.SwapObjectivesBatch(pc, e.t.Criticalities(), dLen, dW, area)
	e.foldStrict(cands, dLen, dW, area, out)
}

// evalRange evaluates one shard [lo, hi) end to end — placement kernel
// plus relaxed fold — against read-only evaluator state; the pool's
// per-worker unit. Shards are at most placement.MaxConcurrentBatch
// candidates so the placement call is race-free (see that constant).
func (e *Evaluator) evalRange(cands []tabu.SwapCand, pc []placement.SwapCand, crit, dLen, dW, area, out []float64, lo, hi int) {
	e.p.SwapObjectivesBatch(pc[lo:hi], crit, dLen[lo:hi], dW[lo:hi], area[lo:hi])
	e.foldRelaxed(cands, dLen, dW, area, out, lo, hi)
}

// foldStrict folds raw objective deltas into fuzzy cost deltas with the
// arithmetic mirroring CostOf exactly: membership is the same
// piecewise-linear division, the OWA combine the same min/sum
// expression tree, so every out[i] is bit-for-bit SwapDelta's value.
func (e *Evaluator) foldStrict(cands []tabu.SwapCand, dLen, dW, area, out []float64) {
	// All evaluator state is hoisted once per batch.
	wl0, dl0 := e.cur.Wirelength, e.cur.Delay
	wireDelay := e.t.Config().WireDelayPerUnit
	cost0 := e.cost
	gWL, cWL := e.memWL.Goal, e.memWL.Ceiling
	gDL, cDL := e.memDelay.Goal, e.memDelay.Ceiling
	gAR, cAR := e.memArea.Goal, e.memArea.Ceiling
	spanWL, spanDL, spanAR := cWL-gWL, cDL-gDL, cAR-gAR
	beta := e.owa.Beta
	omb := 1 - beta
	// Most candidates leave the widest row untouched, so area[i] repeats
	// the same value run after run; memoizing the last membership reuses
	// the division bit-exactly (equal input, equal output).
	lastArea := math.NaN() // never equal to a real area, so slot 0 computes
	var lastMuA float64
	for i := 0; i < len(cands); i++ {
		if cands[i].A == cands[i].B {
			out[i] = 0 // SwapDelta's self-swap short circuit
			continue
		}
		var muW, muD, muA float64
		switch x := wl0 + dLen[i]; {
		case x <= gWL:
			muW = 1
		case x >= cWL:
			muW = 0
		default:
			muW = (cWL - x) / spanWL
		}
		switch x := dl0 + wireDelay*dW[i]; {
		case x <= gDL:
			muD = 1
		case x >= cDL:
			muD = 0
		default:
			muD = (cDL - x) / spanDL
		}
		if x := area[i]; x == lastArea {
			muA = lastMuA
		} else {
			switch {
			case x <= gAR:
				muA = 1
			case x >= cAR:
				muA = 0
			default:
				muA = (cAR - x) / spanAR
			}
			lastArea, lastMuA = x, muA
		}
		mn := muW
		if muD < mn {
			mn = muD
		}
		if muA < mn {
			mn = muA
		}
		sum := muW + muD + muA
		mu := beta*mn + omb*sum/3
		out[i] = (1 - mu) - cost0
	}
}

// foldRelaxed is the reassociated fold over [lo, hi): the three
// membership divisions become one reciprocal multiply each (reciprocals
// hoisted per call), the memberships clamp with branch-light min/max
// instead of the three-way switch, and the OWA sum multiplies a
// precomputed (1-β)/3. Safe to run concurrently over disjoint ranges —
// it reads only immutable evaluator state.
func (e *Evaluator) foldRelaxed(cands []tabu.SwapCand, dLen, dW, area, out []float64, lo, hi int) {
	wl0, dl0 := e.cur.Wirelength, e.cur.Delay
	wireDelay := e.t.Config().WireDelayPerUnit
	cost0 := e.cost
	cWL := e.memWL.Ceiling
	cDL := e.memDelay.Ceiling
	cAR := e.memArea.Ceiling
	invWL := 1 / (cWL - e.memWL.Goal)
	invDL := 1 / (cDL - e.memDelay.Goal)
	invAR := 1 / (cAR - e.memArea.Goal)
	beta := e.owa.Beta
	ombThird := (1 - beta) / 3
	for i := lo; i < hi; i++ {
		if cands[i].A == cands[i].B {
			out[i] = 0 // SwapDelta's self-swap short circuit
			continue
		}
		muW := min(1, max(0, (cWL-(wl0+dLen[i]))*invWL))
		muD := min(1, max(0, (cDL-(dl0+wireDelay*dW[i]))*invDL))
		muA := min(1, max(0, (cAR-area[i])*invAR))
		mn := min(muW, min(muD, muA))
		mu := beta*mn + ombThird*(muW+muD+muA)
		out[i] = (1 - mu) - cost0
	}
}
