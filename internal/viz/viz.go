// Package viz renders placements and experiment figures as SVG with
// nothing but the standard library. The ptsbench CLI uses it to emit
// vector versions of every reproduced figure, and the pts CLI to draw
// the final placement heat map.
package viz

import (
	"fmt"
	"io"
	"math"

	"pts/internal/placement"
	"pts/internal/stats"
)

// palette cycles through visually distinct series colors.
var palette = []string{
	"#1b6ca8", "#d1495b", "#66a182", "#edae49",
	"#8d5a97", "#00798c", "#a44a3f", "#2e4057",
}

// Chart describes a line chart to render.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
	// W and H are the pixel dimensions (defaults 720x420).
	W, H int
}

// WriteChartSVG renders the chart as a standalone SVG document.
func WriteChartSVG(w io.Writer, c Chart) error {
	if c.W <= 0 {
		c.W = 720
	}
	if c.H <= 0 {
		c.H = 420
	}
	const marginL, marginR, marginT, marginB = 64, 16, 36, 46
	plotW := float64(c.W - marginL - marginR)
	plotH := float64(c.H - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(marginL) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (maxY-y)/(maxY-minY)*plotH }

	b := &errWriter{w: w}
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", c.W, c.H)
	b.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", c.W, c.H)
	b.printf(`<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(c.Title))

	// Axes with 5 ticks each.
	b.printf(`<g stroke="#888" stroke-width="1">` + "\n")
	b.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n", marginL, marginT, marginL, c.H-marginB)
	b.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n", marginL, c.H-marginB, c.W-marginR, c.H-marginB)
	b.printf(`</g>` + "\n")
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		b.printf(`<text x="%.1f" y="%d" text-anchor="middle" fill="#444">%.3g</text>`+"\n",
			px(fx), c.H-marginB+16, fx)
		b.printf(`<text x="%d" y="%.1f" text-anchor="end" fill="#444">%.3g</text>`+"\n",
			marginL-6, py(fy)+4, fy)
		b.printf(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee"/>`+"\n",
			px(fx), marginT, px(fx), c.H-marginB)
	}
	b.printf(`<text x="%.1f" y="%d" text-anchor="middle" fill="#222">%s</text>`+"\n",
		float64(marginL)+plotW/2, c.H-10, xmlEscape(c.XLabel))
	b.printf(`<text x="14" y="%.1f" text-anchor="middle" fill="#222" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(c.YLabel))

	// Series polylines + markers.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		b.printf(`<polyline fill="none" stroke="%s" stroke-width="1.8" points="`, color)
		for _, p := range s.Points {
			b.printf("%.1f,%.1f ", px(p.X), py(p.Y))
		}
		b.printf(`"/>` + "\n")
		for _, p := range s.Points {
			b.printf(`<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n", px(p.X), py(p.Y), color)
		}
		// Legend entry.
		ly := marginT + 14*si
		b.printf(`<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", c.W-marginR-150, ly, color)
		b.printf(`<text x="%d" y="%d" fill="#222">%s</text>`+"\n", c.W-marginR-136, ly+9, xmlEscape(s.Name))
	}
	b.printf("</svg>\n")
	return b.err
}

// WritePlacementSVG renders the slot grid colored by pin density (a
// congestion heat map); cells are outlined, empty slots left white.
func WritePlacementSVG(w io.Writer, p *placement.Placement) error {
	l := p.Layout()
	const cell = 10
	width := l.Cols*cell + 20
	height := l.Rows*cell + 20

	density := p.PinDensity()
	maxD := 0.0
	for _, row := range density {
		for _, v := range row {
			if v > maxD {
				maxD = v
			}
		}
	}
	if maxD == 0 {
		maxD = 1
	}

	b := &errWriter{w: w}
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	b.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for r := 0; r < l.Rows; r++ {
		for col := 0; col < l.Cols; col++ {
			x, y := 10+col*cell, 10+r*cell
			occupied := p.CellAt(placement.Pos{Row: int32(r), Col: int32(col)}) >= 0
			if occupied {
				heat := density[r][col] / maxD
				b.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#ccc" stroke-width="0.4"/>`+"\n",
					x, y, cell, cell, heatColor(heat))
			} else {
				b.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="white" stroke="#eee" stroke-width="0.4"/>`+"\n",
					x, y, cell, cell)
			}
		}
	}
	b.printf("</svg>\n")
	return b.err
}

// heatColor maps [0,1] to a white->yellow->red ramp.
func heatColor(h float64) string {
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	// 0: near-white, 0.5: yellow, 1: red.
	var r, g, b int
	if h < 0.5 {
		t := h * 2
		r = 255
		g = 255
		b = int(230 * (1 - t))
	} else {
		t := (h - 0.5) * 2
		r = 255
		g = int(255 * (1 - t))
		b = 0
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// xmlEscape escapes the characters SVG text nodes care about.
func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// errWriter folds the first write error, keeping render code linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
