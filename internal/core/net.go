// Distributed execution: what crosses a process boundary when the
// parallel tabu search runs on the nettrans TCP transport.
//
// The deployment is SPMD like classic PVM applications: every process —
// master and workers — constructs the same Problem from its own inputs
// (the same circuit file, the same QAP seed), so only the protocol
// messages, a small job description and tiny spawn specs travel on the
// wire. The job description carries a problem fingerprint (name + size)
// so a worker pointed at the wrong inputs refuses the job instead of
// corrupting the search.
package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"math"

	"pts/internal/cost"
	"pts/internal/pvm"
	"pts/internal/pvm/nettrans"
)

// Portable task kinds of the PTS protocol.
const (
	taskKindTSW = "pts.tsw"
	taskKindCLW = "pts.clw"
)

// tswSpec rebuilds a TSW body on whichever process hosts it. Resume,
// when non-nil, is the checkpoint a replacement TSW continues from
// instead of awaiting a fresh TagInit — the master sets it when
// resurrecting a lost TSW.
type tswSpec struct {
	Master pvm.TaskID
	Resume *tswCheckpoint
}

// clwSpec rebuilds a CLW body on whichever process hosts it. The CLW
// learns its parent from its first TagInit's sender, so the spec
// carries only the tuning.
type clwSpec struct {
	Tune Tuning
}

// ProblemSpec names a built-in workload well enough for any process to
// construct it deterministically — the serving mode's answer to SPMD
// problem construction: instead of starting every worker with one fixed
// problem, a daemon fleet resolves each job's problem on demand from
// the spec in its payload. The usual fingerprint validation still runs
// afterwards, so a resolver that builds the wrong instance refuses the
// job rather than corrupting the search.
type ProblemSpec struct {
	// Kind selects the workload family: "placement", "qap", "flowshop"
	// or "jobshop".
	Kind string
	// Circuit is the placement benchmark name (e.g. "c532") or circuit
	// file path, for Kind "placement".
	Circuit string
	// QAPN and QAPSeed parameterize the random QAP instance, for Kind
	// "qap".
	QAPN    int
	QAPSeed uint64
	// Instance is the embedded scheduling benchmark name (e.g. "ta001",
	// "ft06"), for Kinds "flowshop" and "jobshop".
	Instance string
}

// jobPayload is the job description the master ships to every worker
// when a distributed run starts.
type jobPayload struct {
	// Problem, Size and InitialCost fingerprint the master's problem; a
	// worker whose locally constructed problem disagrees refuses the
	// job. InitialCost is the discriminating part: it is derived from
	// the full instance data (matrices, netlist, cost goals) by the
	// deterministic Initial(seed), so two same-named instances of equal
	// size but different content (e.g. RandomQAP with another seed)
	// still collide with probability ~0.
	Problem     string
	Size        int32
	InitialCost float64
	Cfg         wireConfig
	// Spec, when non-nil, lets resolver-equipped workers construct the
	// job's problem on demand (Config.ProblemSpec on the master side).
	Spec *ProblemSpec
}

// runSummary is the final outcome the master reports back to workers,
// so a joining process returns the same result as the master.
type runSummary struct {
	Problem     string
	BestCost    float64
	BestPerm    []int32
	InitialCost float64
	Elapsed     float64
	Rounds      int
	Interrupted bool
}

// wireConfig mirrors Config's serializable fields for the job payload;
// process-local fields (Progress, Transport) stay behind. Keep it in
// sync when Config grows a field workers need.
type wireConfig struct {
	TSWs, CLWs              int
	GlobalIters, LocalIters int
	Trials, Depth, Tenure   int
	DiversifyDepth          int
	HalfSync                bool
	Adaptive                bool
	DisableRespawn          bool
	CheckpointEvery         int
	Durable                 bool
	RelaxedAccumulation     bool
	EvalWorkers             int
	RefreshEvery            int
	Utilization             float64
	Cost                    cost.Config
	WorkPerTrial            float64
	Seed                    uint64
	RecordTrace             bool
	CorrelatedWorkers       bool
	Assignment              Assignment
	PerTSW                  []Tuning
}

func (c Config) wire() wireConfig {
	return wireConfig{
		TSWs: c.TSWs, CLWs: c.CLWs,
		GlobalIters: c.GlobalIters, LocalIters: c.LocalIters,
		Trials: c.Trials, Depth: c.Depth, Tenure: c.Tenure,
		DiversifyDepth:  c.DiversifyDepth,
		HalfSync:        c.HalfSync,
		Adaptive:        c.Adaptive,
		DisableRespawn:  c.DisableRespawn,
		CheckpointEvery: c.CheckpointEvery,
		// The store itself never crosses the wire; workers only need
		// the durable discipline flag (checkpoints + barrier reseeds).
		Durable:             c.durable(),
		RelaxedAccumulation: c.RelaxedAccumulation,
		EvalWorkers:         c.EvalWorkers,
		RefreshEvery:        c.RefreshEvery,
		Utilization:         c.Utilization,
		Cost:                c.Cost,
		WorkPerTrial:        c.WorkPerTrial,
		Seed:                c.Seed,
		RecordTrace:         c.RecordTrace,
		CorrelatedWorkers:   c.CorrelatedWorkers,
		Assignment:          c.Assignment,
		PerTSW:              c.PerTSW,
	}
}

func (w wireConfig) config() Config {
	cfg := Config{
		TSWs: w.TSWs, CLWs: w.CLWs,
		GlobalIters: w.GlobalIters, LocalIters: w.LocalIters,
		Trials: w.Trials, Depth: w.Depth, Tenure: w.Tenure,
		DiversifyDepth:      w.DiversifyDepth,
		HalfSync:            w.HalfSync,
		Adaptive:            w.Adaptive,
		DisableRespawn:      w.DisableRespawn,
		CheckpointEvery:     w.CheckpointEvery,
		Durable:             w.Durable,
		RelaxedAccumulation: w.RelaxedAccumulation,
		EvalWorkers:         w.EvalWorkers,
		RefreshEvery:        w.RefreshEvery,
		Utilization:         w.Utilization,
		WorkPerTrial:        w.WorkPerTrial,
		Seed:                w.Seed,
		RecordTrace:         w.RecordTrace,
		CorrelatedWorkers:   w.CorrelatedWorkers,
		Assignment:          w.Assignment,
		PerTSW:              w.PerTSW,
	}
	cfg.Cost = w.Cost
	return cfg
}

func init() {
	// Everything that crosses the wire as an interface value must be
	// gob-registered identically in every process of the cluster.
	gob.Register(initMsg{})
	gob.Register(candMsg{})
	gob.Register(rebalanceMsg{})
	gob.Register(respawnMsg{})
	gob.Register(respawnAckMsg{})
	gob.Register(tswCheckpoint{})
	gob.Register(syncMsg{})
	gob.Register(stateMsg{})
	gob.Register(bestMsg{})
	gob.Register(globalMsg{})
	gob.Register(WorkerStats{})
	gob.Register(tswSpec{})
	gob.Register(clwSpec{})
	gob.Register(jobPayload{})
	gob.Register(runSummary{})
}

// taskFactory rebuilds the protocol's portable task bodies over the
// process's own problem and configuration — pvm.Options.Spawner on the
// master, the nettrans.TaskFactory on workers. The same factory serving
// both sides is what keeps a task's behavior independent of where it
// lands.
func taskFactory(prob Problem, cfg Config) pvm.TaskFactory {
	return func(kind string, data any) (pvm.TaskFunc, error) {
		switch kind {
		case taskKindTSW:
			spec, ok := data.(tswSpec)
			if !ok {
				return nil, fmt.Errorf("core: task kind %q wants tswSpec, got %T", kind, data)
			}
			return func(env pvm.Env) { tswRun(env, prob, cfg, spec.Master, spec.Resume) }, nil
		case taskKindCLW:
			spec, ok := data.(clwSpec)
			if !ok {
				return nil, fmt.Errorf("core: task kind %q wants clwSpec, got %T", kind, data)
			}
			return func(env pvm.Env) { clwRun(env, prob, cfg, spec.Tune) }, nil
		default:
			return nil, fmt.Errorf("core: unknown task kind %q", kind)
		}
	}
}

// nearlyEqual compares fingerprint costs to within 1e-9 relative — far
// below any real instance difference, above any FMA-contraction drift.
func nearlyEqual(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// WorkerOptions configures a worker process of a distributed run.
type WorkerOptions struct {
	// Addr is the master's TCP address.
	Addr string
	// Name uniquely identifies the worker in the master registry.
	Name string
	// Speed is the node's declared relative compute speed (default 1.0).
	Speed float64
	// Capacity is how many machine slots the node contributes
	// (default 1).
	Capacity int
	// Jobs bounds how many jobs to serve (0 = until ctx cancels).
	Jobs int
	// Resolve, when non-nil, constructs a job's problem from the
	// ProblemSpec in its payload, letting one daemon serve any built-in
	// workload. A worker started with a fixed problem ignores it; a
	// worker started with a nil problem requires it.
	Resolve func(ProblemSpec) (Problem, error)
	// Drain, when non-nil, requests a graceful shutdown when it becomes
	// readable (typically a closed channel): the worker deregisters from
	// the master cleanly instead of dropping its connection, and
	// ServeWorker returns nil.
	Drain <-chan struct{}
	// Logf, when non-nil, receives connection and job lifecycle lines.
	Logf func(format string, args ...any)
}

// workerHandler is the program half of a worker daemon: it validates
// incoming jobs against the locally constructed problem and records the
// final summaries.
type workerHandler struct {
	prob    Problem // fixed problem; nil for resolver-equipped daemons
	resolve func(ProblemSpec) (Problem, error)
	onJob   func(*Result)
	cur     Problem // the current job's problem (jobs are served sequentially)
}

func (h *workerHandler) Start(payload any) (nettrans.TaskFactory, error) {
	jp, ok := payload.(jobPayload)
	if !ok {
		return nil, fmt.Errorf("core: unexpected job payload %T", payload)
	}
	prob := h.prob
	if prob == nil {
		// Serving mode: construct the job's problem from its spec.
		if jp.Spec == nil {
			return nil, fmt.Errorf("core: job %s carries no problem spec and this worker has no fixed problem", jp.Problem)
		}
		p, err := h.resolve(*jp.Spec)
		if err != nil {
			return nil, fmt.Errorf("core: resolving job problem %s: %w", jp.Problem, err)
		}
		prob = p
	}
	if jp.Problem != prob.Name() || jp.Size != prob.Size() {
		return nil, fmt.Errorf("core: job is %s (%d elements) but this worker built %s (%d elements); start the worker with the master's inputs",
			jp.Problem, jp.Size, prob.Name(), prob.Size())
	}
	cfg := jp.Cfg.config()
	// Derive the run-scoped shared context (e.g. the placement fuzzy
	// goals) exactly as the master did, so locally minted states score
	// identically. Initial is deterministic in the seed, so the state
	// itself is discarded — but its cost must reproduce the master's
	// exactly, or this process was built over different instance data
	// (or different cost goals) and would corrupt the search.
	st, err := prob.Initial(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: deriving shared initial state: %w", err)
	}
	// A tight relative tolerance (not bitwise equality): hardware that
	// contracts a*b+c into an FMA may differ from the master in the last
	// ulps on identical inputs, while genuinely different instance data
	// lands orders of magnitude away.
	if c := st.Cost(); !nearlyEqual(c, jp.InitialCost) {
		return nil, fmt.Errorf("core: job %s: this worker's initial cost %v does not reproduce the master's %v; the problem inputs (or cost configuration) differ",
			jp.Problem, c, jp.InitialCost)
	}
	h.cur = prob
	return taskFactory(prob, cfg), nil
}

func (h *workerHandler) Done(summary any) {
	rs, ok := summary.(runSummary)
	if !ok || h.onJob == nil {
		return
	}
	res := &Result{
		Problem:     rs.Problem,
		BestCost:    rs.BestCost,
		BestPerm:    rs.BestPerm,
		InitialCost: rs.InitialCost,
		Elapsed:     rs.Elapsed,
		Rounds:      rs.Rounds,
		Interrupted: rs.Interrupted,
	}
	if prob := h.cur; prob != nil {
		if r, err := finalize(prob, res); err == nil {
			res = r
		}
	}
	h.onJob(res)
}

// ServeWorker runs a worker daemon for distributed solves: join the
// master at opts.Addr (reconnecting with backoff while unreachable),
// host this node's share of TSW/CLW tasks for each job, and hand every
// job's final result — the same outcome the master returns — to onJob
// (which may be nil). It returns after opts.Jobs jobs, or when ctx is
// cancelled.
//
// prob may be nil when opts.Resolve is set: the daemon then serves any
// built-in workload, constructing each job's problem from the spec in
// its payload.
func ServeWorker(ctx context.Context, prob Problem, opts WorkerOptions, onJob func(*Result)) error {
	if prob == nil && opts.Resolve == nil {
		return fmt.Errorf("core: worker needs a problem or a resolver")
	}
	return nettrans.RunWorker(ctx, nettrans.WorkerConfig{
		Addr:     opts.Addr,
		Name:     opts.Name,
		Speed:    opts.Speed,
		Capacity: opts.Capacity,
		Jobs:     opts.Jobs,
		Drain:    opts.Drain,
		Logf:     opts.Logf,
	}, &workerHandler{prob: prob, resolve: opts.Resolve, onJob: onJob})
}

// JoinWorker serves exactly one job as a worker of a distributed run
// and returns that job's final result.
func JoinWorker(ctx context.Context, prob Problem, opts WorkerOptions) (*Result, error) {
	opts.Jobs = 1
	var res *Result
	if err := ServeWorker(ctx, prob, opts, func(r *Result) { res = r }); err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("core: job ended without a result from the master")
	}
	return res, nil
}
