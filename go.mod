module pts

go 1.24
