// Package timing implements the static timing analysis the placement
// cost's delay objective needs.
//
// The model is the lumped linear model of the paper's era: a cell's
// switching delay is its intrinsic delay plus a load term proportional to
// its fanout, and a net's interconnect delay is proportional to its
// half-perimeter wirelength in the current placement. A forward pass over
// the levelized netlist yields arrival times and the critical path delay;
// a backward pass yields required times, per-net slacks, and net
// criticalities in [0,1].
//
// Because a full analysis is O(cells+pins), the search evaluates trial
// moves against the cheaper surrogate WeightedWireDelay — the sum of
// criticality-weighted net delays — and refreshes criticalities with a
// full Analyze periodically (the classic net-weighting scheme of
// timing-driven placement).
package timing

import (
	"math"

	"pts/internal/netlist"
	"pts/internal/placement"
)

// Config holds the delay model parameters.
type Config struct {
	// LoadFactor is the extra switching delay per driven sink, in ns.
	LoadFactor float64
	// WireDelayPerUnit is the interconnect delay per slot unit of net
	// half-perimeter, in ns.
	WireDelayPerUnit float64
}

// DefaultConfig returns parameters that make interconnect delay
// comparable to gate delay on the synthetic benchmarks, as in row-based
// technologies of the paper's era.
func DefaultConfig() Config {
	return Config{LoadFactor: 0.04, WireDelayPerUnit: 0.03}
}

// Analyzer performs static timing analysis over one netlist. It is
// reusable across placements of the same netlist and keeps the last
// analysis' arrival/required times and criticalities. Not safe for
// concurrent use; parallel workers each build their own.
type Analyzer struct {
	nl  *netlist.Netlist
	cfg Config

	arrival  []float64 // per cell: departure time at the cell output
	required []float64 // per cell: latest allowed departure
	crit     []float64 // per net: criticality in [0,1]
	cpd      float64
	analyzed bool
}

// New creates an analyzer for nl. Criticalities start at 1 (all nets
// timing-relevant) until the first Analyze.
func New(nl *netlist.Netlist, cfg Config) *Analyzer {
	a := &Analyzer{
		nl:       nl,
		cfg:      cfg,
		arrival:  make([]float64, nl.NumCells()),
		required: make([]float64, nl.NumCells()),
		crit:     make([]float64, nl.NumNets()),
	}
	for i := range a.crit {
		a.crit[i] = 1
	}
	return a
}

// Config returns the analyzer's delay model parameters.
func (a *Analyzer) Config() Config { return a.cfg }

// cellDelay returns the switching delay of c including fanout load.
func (a *Analyzer) cellDelay(c netlist.CellID) float64 {
	d := a.nl.Cells[c].Delay
	for _, n := range a.nl.Drives(c) {
		d += a.cfg.LoadFactor * float64(len(a.nl.Nets[n].Sinks))
	}
	return d
}

// netDelay returns the interconnect delay of net n in placement p.
func (a *Analyzer) netDelay(p *placement.Placement, n netlist.NetID) float64 {
	return a.cfg.WireDelayPerUnit * p.NetHPWL(n)
}

// Analyze runs a full forward/backward pass against placement p and
// returns the critical path delay. It refreshes arrival and required
// times and all net criticalities.
func (a *Analyzer) Analyze(p *placement.Placement) float64 {
	nl := a.nl
	order := nl.TopoOrder()

	// Forward: departure time per cell.
	for _, c := range order {
		in := 0.0
		for _, n := range nl.SinkNets(c) {
			net := &nl.Nets[n]
			t := a.arrival[net.Driver] + a.netDelay(p, n)
			if t > in {
				in = t
			}
		}
		a.arrival[c] = in + a.cellDelay(c)
	}
	cpd := 0.0
	for c := range a.arrival {
		if a.arrival[c] > cpd {
			cpd = a.arrival[c]
		}
	}
	a.cpd = cpd

	// Backward: required departure per cell.
	for c := range a.required {
		a.required[c] = cpd
	}
	for i := len(order) - 1; i >= 0; i-- {
		c := order[i]
		req := cpd
		for _, n := range nl.Drives(c) {
			net := &nl.Nets[n]
			nd := a.netDelay(p, n)
			for _, s := range net.Sinks {
				// Latest departure of c so that sink s still meets its
				// own required departure.
				t := a.required[s] - a.cellDelay(s) - nd
				if t < req {
					req = t
				}
			}
		}
		a.required[c] = req
	}

	// Net criticalities from slack.
	for n := range a.crit {
		a.crit[n] = a.netCriticality(p, netlist.NetID(n))
	}
	a.analyzed = true
	return cpd
}

// netCriticality derives the criticality of net n from the current
// arrival/required times: 1 on the critical path, falling linearly to 0
// at slack == cpd.
func (a *Analyzer) netCriticality(p *placement.Placement, n netlist.NetID) float64 {
	if a.cpd <= 0 {
		return 1
	}
	net := &a.nl.Nets[n]
	nd := a.netDelay(p, n)
	slack := math.Inf(1)
	for _, s := range net.Sinks {
		sl := (a.required[s] - a.cellDelay(s)) - (a.arrival[net.Driver] + nd)
		if sl < slack {
			slack = sl
		}
	}
	c := 1 - slack/a.cpd
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// CriticalPath returns the critical path delay from the last Analyze.
func (a *Analyzer) CriticalPath() float64 { return a.cpd }

// Criticality returns the last computed criticality of net n.
func (a *Analyzer) Criticality(n netlist.NetID) float64 { return a.crit[n] }

// Criticalities returns the per-net criticality slice from the last
// Analyze (1 for every net before the first). The slice is shared;
// callers must not modify it.
func (a *Analyzer) Criticalities() []float64 { return a.crit }

// Slack returns the departure slack of cell c from the last Analyze.
func (a *Analyzer) Slack(c netlist.CellID) float64 { return a.required[c] - a.arrival[c] }

// WeightedWireDelay computes the timing surrogate the search optimizes:
// the criticality-weighted sum of net interconnect delays under placement
// p, using the criticalities of the last Analyze.
func (a *Analyzer) WeightedWireDelay(p *placement.Placement) float64 {
	total := 0.0
	for n := 0; n < a.nl.NumNets(); n++ {
		total += a.crit[n] * a.netDelay(p, netlist.NetID(n))
	}
	return total
}

// WeightedDeltaSwap returns the change of WeightedWireDelay if cells x
// and y exchanged positions, without modifying anything. One
// allocation-free pass over the affected nets via
// placement.SwapDeltaWeighted.
func (a *Analyzer) WeightedDeltaSwap(p *placement.Placement, x, y netlist.CellID) float64 {
	_, dCrit := p.SwapDeltaWeighted(x, y, a.crit)
	return a.cfg.WireDelayPerUnit * dCrit
}
