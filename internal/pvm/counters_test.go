package pvm_test

// External test package: the cross-transport assertions need
// pvm/nettrans, which imports pvm — an in-package test would cycle.

import (
	"context"
	"encoding/gob"
	"fmt"
	"testing"

	"pts/internal/pvm"
	"pts/internal/pvm/nettrans"
)

const (
	ctrPing pvm.Tag = iota + 101
	ctrPong
)

func TestCountersVirtual(t *testing.T) {
	var c pvm.Counters
	_, err := pvm.RunVirtual(pvm.Options{Seed: 31, Counters: &c}, func(env pvm.Env) {
		child := env.Spawn("c", 0, func(e pvm.Env) {
			e.Recv(ctrPing)
			e.Send(0, ctrPong, nil)
		})
		env.Send(child, ctrPing, nil)
		env.Recv(ctrPong)
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Spawns != 2 {
		t.Errorf("Spawns = %d, want 2", c.Spawns)
	}
	if c.Sends != 2 {
		t.Errorf("Sends = %d, want 2", c.Sends)
	}
	if c.Events == 0 {
		t.Error("Events not counted")
	}
}

func TestCountersReal(t *testing.T) {
	var c pvm.Counters
	_, err := pvm.RunReal(pvm.Options{Seed: 32, Counters: &c}, func(env pvm.Env) {
		for i := 0; i < 3; i++ {
			child := env.Spawn("c", 0, func(e pvm.Env) {
				e.Send(0, ctrPong, nil)
			})
			_ = child
		}
		for i := 0; i < 3; i++ {
			env.Recv(ctrPong)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Spawns != 4 { // root + 3 children
		t.Errorf("Spawns = %d, want 4", c.Spawns)
	}
	if c.Sends != 3 {
		t.Errorf("Sends = %d, want 3", c.Sends)
	}
}

func TestCountersOptional(t *testing.T) {
	// No counters attached: must not crash.
	if _, err := pvm.RunVirtual(pvm.Options{Seed: 33}, func(env pvm.Env) {}); err != nil {
		t.Fatal(err)
	}
}

// ctrSpec parameterizes the portable relay task of the parity test.
type ctrSpec struct {
	Parent pvm.TaskID
	Hops   int
}

func init() { gob.Register(ctrSpec{}) }

// ctrFactory builds a relay: receive Hops pings, answer each.
func ctrFactory(kind string, data any) (pvm.TaskFunc, error) {
	spec, ok := data.(ctrSpec)
	if !ok {
		return nil, fmt.Errorf("want ctrSpec, got %T", data)
	}
	return func(env pvm.Env) {
		for i := 0; i < spec.Hops; i++ {
			env.Recv(ctrPing)
			env.Send(spec.Parent, ctrPong, nil)
		}
	}, nil
}

// countersProgram is the same portable program run on every transport:
// root spawns 4 relays across machines, plays 3 rounds with each.
func countersProgram(env pvm.Env) {
	const relays, hops = 4, 3
	ids := make([]pvm.TaskID, relays)
	for i := range ids {
		spec := ctrSpec{Parent: env.Self(), Hops: hops}
		fn, err := ctrFactory("ctr.relay", spec)
		if err != nil {
			panic(err)
		}
		ids[i] = env.SpawnSpec(fmt.Sprintf("relay%d", i), 1+i, pvm.Spec{
			Kind: "ctr.relay", Data: spec, Fn: fn,
		})
	}
	for h := 0; h < hops; h++ {
		for _, id := range ids {
			env.Send(id, ctrPing, nil)
		}
		for range ids {
			env.Recv(ctrPong)
		}
	}
}

type ctrHandler struct{}

func (ctrHandler) Start(payload any) (nettrans.TaskFactory, error) { return ctrFactory, nil }
func (ctrHandler) Done(any)                                        {}

// TestCountersIdenticalAcrossTransports is the cross-transport
// contract: one Env.Spawn* is one Spawns tick and one Env.Send is one
// Sends tick on every transport — in-process channels and the TCP
// transport must agree exactly, whichever process a task landed in.
func TestCountersIdenticalAcrossTransports(t *testing.T) {
	run := func(tr pvm.Transport) pvm.Counters {
		t.Helper()
		var c pvm.Counters
		_, err := pvm.RunReal(pvm.Options{
			Seed: 34, Counters: &c, Transport: tr, Spawner: ctrFactory,
		}, countersProgram)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return c
	}

	inproc := run(nil) // default in-process channel transport

	m, err := nettrans.Listen(nettrans.MasterConfig{Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cfg := nettrans.WorkerConfig{
			Addr: m.Addr(), Name: fmt.Sprintf("ctr%d", i),
			Speed: 1 - 0.4*float64(i), Jobs: 1,
		}
		go func() { workerErrs <- nettrans.RunWorker(context.Background(), cfg, ctrHandler{}) }()
	}
	dist := run(m)
	if err := m.Finish(nil); err != nil {
		t.Errorf("finish: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-workerErrs; err != nil {
			t.Errorf("worker: %v", err)
		}
	}

	if inproc.Spawns != 5 { // root + 4 relays
		t.Errorf("in-process Spawns = %d, want 5", inproc.Spawns)
	}
	if inproc.Sends != 24 { // 3 rounds x 4 relays x (ping + pong)
		t.Errorf("in-process Sends = %d, want 24", inproc.Sends)
	}
	if dist.Spawns != inproc.Spawns {
		t.Errorf("Spawns differ: TCP %d, in-process %d", dist.Spawns, inproc.Spawns)
	}
	if dist.Sends != inproc.Sends {
		t.Errorf("Sends differ: TCP %d, in-process %d", dist.Sends, inproc.Sends)
	}
}
